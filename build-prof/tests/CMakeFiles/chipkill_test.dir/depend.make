# Empty dependencies file for chipkill_test.
# This may be replaced when dependencies are built.
