file(REMOVE_RECURSE
  "CMakeFiles/digest_test.dir/digest_test.cpp.o"
  "CMakeFiles/digest_test.dir/digest_test.cpp.o.d"
  "digest_test"
  "digest_test.pdb"
  "digest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
