# Empty dependencies file for ondie_ecc_test.
# This may be replaced when dependencies are built.
