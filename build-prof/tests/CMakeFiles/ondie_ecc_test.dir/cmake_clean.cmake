file(REMOVE_RECURSE
  "CMakeFiles/ondie_ecc_test.dir/ondie_ecc_test.cpp.o"
  "CMakeFiles/ondie_ecc_test.dir/ondie_ecc_test.cpp.o.d"
  "ondie_ecc_test"
  "ondie_ecc_test.pdb"
  "ondie_ecc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ondie_ecc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
