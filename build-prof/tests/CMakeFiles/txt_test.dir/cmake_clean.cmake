file(REMOVE_RECURSE
  "CMakeFiles/txt_test.dir/txt_test.cpp.o"
  "CMakeFiles/txt_test.dir/txt_test.cpp.o.d"
  "txt_test"
  "txt_test.pdb"
  "txt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
