file(REMOVE_RECURSE
  "CMakeFiles/coper_codec_test.dir/coper_codec_test.cpp.o"
  "CMakeFiles/coper_codec_test.dir/coper_codec_test.cpp.o.d"
  "coper_codec_test"
  "coper_codec_test.pdb"
  "coper_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coper_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
