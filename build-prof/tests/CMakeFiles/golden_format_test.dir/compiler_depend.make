# Empty compiler generated dependencies file for golden_format_test.
# This may be replaced when dependencies are built.
