file(REMOVE_RECURSE
  "CMakeFiles/golden_format_test.dir/golden_format_test.cpp.o"
  "CMakeFiles/golden_format_test.dir/golden_format_test.cpp.o.d"
  "golden_format_test"
  "golden_format_test.pdb"
  "golden_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
