# Empty dependencies file for bandwidth_mode_test.
# This may be replaced when dependencies are built.
