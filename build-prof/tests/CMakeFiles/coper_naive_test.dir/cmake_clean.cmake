file(REMOVE_RECURSE
  "CMakeFiles/coper_naive_test.dir/coper_naive_test.cpp.o"
  "CMakeFiles/coper_naive_test.dir/coper_naive_test.cpp.o.d"
  "coper_naive_test"
  "coper_naive_test.pdb"
  "coper_naive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coper_naive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
