# Empty compiler generated dependencies file for ecc_region_test.
# This may be replaced when dependencies are built.
