file(REMOVE_RECURSE
  "CMakeFiles/encode_memo_test.dir/encode_memo_test.cpp.o"
  "CMakeFiles/encode_memo_test.dir/encode_memo_test.cpp.o.d"
  "encode_memo_test"
  "encode_memo_test.pdb"
  "encode_memo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encode_memo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
