# Empty compiler generated dependencies file for encode_memo_test.
# This may be replaced when dependencies are built.
