file(REMOVE_RECURSE
  "CMakeFiles/failure_modes_test.dir/failure_modes_test.cpp.o"
  "CMakeFiles/failure_modes_test.dir/failure_modes_test.cpp.o.d"
  "failure_modes_test"
  "failure_modes_test.pdb"
  "failure_modes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
