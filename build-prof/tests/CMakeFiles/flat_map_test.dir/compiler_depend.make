# Empty compiler generated dependencies file for flat_map_test.
# This may be replaced when dependencies are built.
