file(REMOVE_RECURSE
  "CMakeFiles/vuln_log_test.dir/vuln_log_test.cpp.o"
  "CMakeFiles/vuln_log_test.dir/vuln_log_test.cpp.o.d"
  "vuln_log_test"
  "vuln_log_test.pdb"
  "vuln_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vuln_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
