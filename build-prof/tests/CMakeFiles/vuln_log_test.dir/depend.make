# Empty dependencies file for vuln_log_test.
# This may be replaced when dependencies are built.
