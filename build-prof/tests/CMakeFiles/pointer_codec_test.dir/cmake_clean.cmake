file(REMOVE_RECURSE
  "CMakeFiles/pointer_codec_test.dir/pointer_codec_test.cpp.o"
  "CMakeFiles/pointer_codec_test.dir/pointer_codec_test.cpp.o.d"
  "pointer_codec_test"
  "pointer_codec_test.pdb"
  "pointer_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pointer_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
