file(REMOVE_RECURSE
  "CMakeFiles/bdi_test.dir/bdi_test.cpp.o"
  "CMakeFiles/bdi_test.dir/bdi_test.cpp.o.d"
  "bdi_test"
  "bdi_test.pdb"
  "bdi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
