# Empty compiler generated dependencies file for rle_test.
# This may be replaced when dependencies are built.
