file(REMOVE_RECURSE
  "CMakeFiles/rle_test.dir/rle_test.cpp.o"
  "CMakeFiles/rle_test.dir/rle_test.cpp.o.d"
  "rle_test"
  "rle_test.pdb"
  "rle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
