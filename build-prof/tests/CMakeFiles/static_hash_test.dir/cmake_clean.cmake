file(REMOVE_RECURSE
  "CMakeFiles/static_hash_test.dir/static_hash_test.cpp.o"
  "CMakeFiles/static_hash_test.dir/static_hash_test.cpp.o.d"
  "static_hash_test"
  "static_hash_test.pdb"
  "static_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
