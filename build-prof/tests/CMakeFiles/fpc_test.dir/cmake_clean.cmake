file(REMOVE_RECURSE
  "CMakeFiles/fpc_test.dir/fpc_test.cpp.o"
  "CMakeFiles/fpc_test.dir/fpc_test.cpp.o.d"
  "fpc_test"
  "fpc_test.pdb"
  "fpc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
