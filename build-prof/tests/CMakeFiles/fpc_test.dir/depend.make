# Empty dependencies file for fpc_test.
# This may be replaced when dependencies are built.
