file(REMOVE_RECURSE
  "CMakeFiles/content_cache_test.dir/content_cache_test.cpp.o"
  "CMakeFiles/content_cache_test.dir/content_cache_test.cpp.o.d"
  "content_cache_test"
  "content_cache_test.pdb"
  "content_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/content_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
