# Empty compiler generated dependencies file for content_cache_test.
# This may be replaced when dependencies are built.
