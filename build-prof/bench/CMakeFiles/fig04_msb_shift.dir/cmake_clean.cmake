file(REMOVE_RECURSE
  "CMakeFiles/fig04_msb_shift.dir/fig04_msb_shift.cpp.o"
  "CMakeFiles/fig04_msb_shift.dir/fig04_msb_shift.cpp.o.d"
  "fig04_msb_shift"
  "fig04_msb_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_msb_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
