# Empty dependencies file for fig04_msb_shift.
# This may be replaced when dependencies are built.
