# Empty compiler generated dependencies file for ecc_dimm_compare.
# This may be replaced when dependencies are built.
