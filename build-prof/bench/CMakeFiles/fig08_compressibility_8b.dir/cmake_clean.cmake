file(REMOVE_RECURSE
  "CMakeFiles/fig08_compressibility_8b.dir/fig08_compressibility_8b.cpp.o"
  "CMakeFiles/fig08_compressibility_8b.dir/fig08_compressibility_8b.cpp.o.d"
  "fig08_compressibility_8b"
  "fig08_compressibility_8b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_compressibility_8b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
