file(REMOVE_RECURSE
  "CMakeFiles/failure_mode_study.dir/failure_mode_study.cpp.o"
  "CMakeFiles/failure_mode_study.dir/failure_mode_study.cpp.o.d"
  "failure_mode_study"
  "failure_mode_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_mode_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
