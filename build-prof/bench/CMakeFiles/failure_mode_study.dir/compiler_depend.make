# Empty compiler generated dependencies file for failure_mode_study.
# This may be replaced when dependencies are built.
