file(REMOVE_RECURSE
  "CMakeFiles/fig10_error_rate.dir/fig10_error_rate.cpp.o"
  "CMakeFiles/fig10_error_rate.dir/fig10_error_rate.cpp.o.d"
  "fig10_error_rate"
  "fig10_error_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_error_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
