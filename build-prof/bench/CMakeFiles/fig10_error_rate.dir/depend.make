# Empty dependencies file for fig10_error_rate.
# This may be replaced when dependencies are built.
