# Empty dependencies file for ablation_msb_bdi.
# This may be replaced when dependencies are built.
