# Empty compiler generated dependencies file for fig12_ecc_storage.
# This may be replaced when dependencies are built.
