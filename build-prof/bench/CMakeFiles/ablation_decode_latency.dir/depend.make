# Empty dependencies file for ablation_decode_latency.
# This may be replaced when dependencies are built.
