file(REMOVE_RECURSE
  "CMakeFiles/ablation_decode_latency.dir/ablation_decode_latency.cpp.o"
  "CMakeFiles/ablation_decode_latency.dir/ablation_decode_latency.cpp.o.d"
  "ablation_decode_latency"
  "ablation_decode_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_decode_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
