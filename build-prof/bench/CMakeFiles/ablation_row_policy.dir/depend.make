# Empty dependencies file for ablation_row_policy.
# This may be replaced when dependencies are built.
