file(REMOVE_RECURSE
  "CMakeFiles/fig09_compressibility_4b.dir/fig09_compressibility_4b.cpp.o"
  "CMakeFiles/fig09_compressibility_4b.dir/fig09_compressibility_4b.cpp.o.d"
  "fig09_compressibility_4b"
  "fig09_compressibility_4b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_compressibility_4b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
