# Empty dependencies file for ablation_naive_coper.
# This may be replaced when dependencies are built.
