file(REMOVE_RECURSE
  "CMakeFiles/ablation_naive_coper.dir/ablation_naive_coper.cpp.o"
  "CMakeFiles/ablation_naive_coper.dir/ablation_naive_coper.cpp.o.d"
  "ablation_naive_coper"
  "ablation_naive_coper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_naive_coper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
