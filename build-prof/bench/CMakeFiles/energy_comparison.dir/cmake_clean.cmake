file(REMOVE_RECURSE
  "CMakeFiles/energy_comparison.dir/energy_comparison.cpp.o"
  "CMakeFiles/energy_comparison.dir/energy_comparison.cpp.o.d"
  "energy_comparison"
  "energy_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
