# Empty dependencies file for fig01_fpc_ratio_sweep.
# This may be replaced when dependencies are built.
