# Empty compiler generated dependencies file for table3_alias_census.
# This may be replaced when dependencies are built.
