file(REMOVE_RECURSE
  "CMakeFiles/extension_chipkill.dir/extension_chipkill.cpp.o"
  "CMakeFiles/extension_chipkill.dir/extension_chipkill.cpp.o.d"
  "extension_chipkill"
  "extension_chipkill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_chipkill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
