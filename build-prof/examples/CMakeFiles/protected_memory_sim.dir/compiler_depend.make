# Empty compiler generated dependencies file for protected_memory_sim.
# This may be replaced when dependencies are built.
