# Empty dependencies file for cop_sim_cli.
# This may be replaced when dependencies are built.
