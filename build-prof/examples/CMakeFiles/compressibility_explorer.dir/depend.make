# Empty dependencies file for compressibility_explorer.
# This may be replaced when dependencies are built.
