# Empty dependencies file for fault_injection_demo.
# This may be replaced when dependencies are built.
