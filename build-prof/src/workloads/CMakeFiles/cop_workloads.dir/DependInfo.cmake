
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/block_gen.cpp" "src/workloads/CMakeFiles/cop_workloads.dir/block_gen.cpp.o" "gcc" "src/workloads/CMakeFiles/cop_workloads.dir/block_gen.cpp.o.d"
  "/root/repo/src/workloads/profile.cpp" "src/workloads/CMakeFiles/cop_workloads.dir/profile.cpp.o" "gcc" "src/workloads/CMakeFiles/cop_workloads.dir/profile.cpp.o.d"
  "/root/repo/src/workloads/profile_io.cpp" "src/workloads/CMakeFiles/cop_workloads.dir/profile_io.cpp.o" "gcc" "src/workloads/CMakeFiles/cop_workloads.dir/profile_io.cpp.o.d"
  "/root/repo/src/workloads/trace_gen.cpp" "src/workloads/CMakeFiles/cop_workloads.dir/trace_gen.cpp.o" "gcc" "src/workloads/CMakeFiles/cop_workloads.dir/trace_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/src/common/CMakeFiles/cop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
