file(REMOVE_RECURSE
  "CMakeFiles/cop_compress.dir/bdi.cpp.o"
  "CMakeFiles/cop_compress.dir/bdi.cpp.o.d"
  "CMakeFiles/cop_compress.dir/combined.cpp.o"
  "CMakeFiles/cop_compress.dir/combined.cpp.o.d"
  "CMakeFiles/cop_compress.dir/fpc.cpp.o"
  "CMakeFiles/cop_compress.dir/fpc.cpp.o.d"
  "CMakeFiles/cop_compress.dir/msb.cpp.o"
  "CMakeFiles/cop_compress.dir/msb.cpp.o.d"
  "CMakeFiles/cop_compress.dir/rle.cpp.o"
  "CMakeFiles/cop_compress.dir/rle.cpp.o.d"
  "CMakeFiles/cop_compress.dir/txt.cpp.o"
  "CMakeFiles/cop_compress.dir/txt.cpp.o.d"
  "libcop_compress.a"
  "libcop_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cop_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
