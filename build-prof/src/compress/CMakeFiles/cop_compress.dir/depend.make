# Empty dependencies file for cop_compress.
# This may be replaced when dependencies are built.
