file(REMOVE_RECURSE
  "CMakeFiles/cop_stats.dir/stats_registry.cpp.o"
  "CMakeFiles/cop_stats.dir/stats_registry.cpp.o.d"
  "libcop_stats.a"
  "libcop_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cop_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
