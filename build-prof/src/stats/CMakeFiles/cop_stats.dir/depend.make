# Empty dependencies file for cop_stats.
# This may be replaced when dependencies are built.
