file(REMOVE_RECURSE
  "CMakeFiles/cop_cache.dir/set_assoc_cache.cpp.o"
  "CMakeFiles/cop_cache.dir/set_assoc_cache.cpp.o.d"
  "libcop_cache.a"
  "libcop_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cop_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
