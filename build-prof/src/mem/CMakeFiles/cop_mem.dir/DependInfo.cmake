
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/controller.cpp" "src/mem/CMakeFiles/cop_mem.dir/controller.cpp.o" "gcc" "src/mem/CMakeFiles/cop_mem.dir/controller.cpp.o.d"
  "/root/repo/src/mem/cop_controller.cpp" "src/mem/CMakeFiles/cop_mem.dir/cop_controller.cpp.o" "gcc" "src/mem/CMakeFiles/cop_mem.dir/cop_controller.cpp.o.d"
  "/root/repo/src/mem/coper_controller.cpp" "src/mem/CMakeFiles/cop_mem.dir/coper_controller.cpp.o" "gcc" "src/mem/CMakeFiles/cop_mem.dir/coper_controller.cpp.o.d"
  "/root/repo/src/mem/coper_naive_controller.cpp" "src/mem/CMakeFiles/cop_mem.dir/coper_naive_controller.cpp.o" "gcc" "src/mem/CMakeFiles/cop_mem.dir/coper_naive_controller.cpp.o.d"
  "/root/repo/src/mem/ecc_region_controller.cpp" "src/mem/CMakeFiles/cop_mem.dir/ecc_region_controller.cpp.o" "gcc" "src/mem/CMakeFiles/cop_mem.dir/ecc_region_controller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/src/common/CMakeFiles/cop_common.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/core/CMakeFiles/cop_core.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/dram/CMakeFiles/cop_dram.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/cache/CMakeFiles/cop_cache.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/ecc/CMakeFiles/cop_ecc.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/compress/CMakeFiles/cop_compress.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/stats/CMakeFiles/cop_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
