file(REMOVE_RECURSE
  "CMakeFiles/cop_reliability.dir/error_model.cpp.o"
  "CMakeFiles/cop_reliability.dir/error_model.cpp.o.d"
  "CMakeFiles/cop_reliability.dir/failure_modes.cpp.o"
  "CMakeFiles/cop_reliability.dir/failure_modes.cpp.o.d"
  "CMakeFiles/cop_reliability.dir/fault_injector.cpp.o"
  "CMakeFiles/cop_reliability.dir/fault_injector.cpp.o.d"
  "CMakeFiles/cop_reliability.dir/live_injector.cpp.o"
  "CMakeFiles/cop_reliability.dir/live_injector.cpp.o.d"
  "CMakeFiles/cop_reliability.dir/ondie_ecc.cpp.o"
  "CMakeFiles/cop_reliability.dir/ondie_ecc.cpp.o.d"
  "libcop_reliability.a"
  "libcop_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cop_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
