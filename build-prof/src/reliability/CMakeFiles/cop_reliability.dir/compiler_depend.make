# Empty compiler generated dependencies file for cop_reliability.
# This may be replaced when dependencies are built.
