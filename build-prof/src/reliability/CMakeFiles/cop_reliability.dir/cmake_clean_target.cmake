file(REMOVE_RECURSE
  "libcop_reliability.a"
)
