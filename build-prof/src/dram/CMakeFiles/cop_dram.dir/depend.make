# Empty dependencies file for cop_dram.
# This may be replaced when dependencies are built.
