file(REMOVE_RECURSE
  "CMakeFiles/cop_dram.dir/dram_system.cpp.o"
  "CMakeFiles/cop_dram.dir/dram_system.cpp.o.d"
  "libcop_dram.a"
  "libcop_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cop_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
