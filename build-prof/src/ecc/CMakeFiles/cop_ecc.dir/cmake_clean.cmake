file(REMOVE_RECURSE
  "CMakeFiles/cop_ecc.dir/reed_solomon.cpp.o"
  "CMakeFiles/cop_ecc.dir/reed_solomon.cpp.o.d"
  "CMakeFiles/cop_ecc.dir/secded.cpp.o"
  "CMakeFiles/cop_ecc.dir/secded.cpp.o.d"
  "libcop_ecc.a"
  "libcop_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cop_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
