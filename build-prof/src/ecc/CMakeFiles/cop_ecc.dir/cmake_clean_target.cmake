file(REMOVE_RECURSE
  "libcop_ecc.a"
)
