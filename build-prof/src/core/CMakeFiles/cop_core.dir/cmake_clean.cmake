file(REMOVE_RECURSE
  "CMakeFiles/cop_core.dir/chipkill_codec.cpp.o"
  "CMakeFiles/cop_core.dir/chipkill_codec.cpp.o.d"
  "CMakeFiles/cop_core.dir/codec.cpp.o"
  "CMakeFiles/cop_core.dir/codec.cpp.o.d"
  "CMakeFiles/cop_core.dir/coper_codec.cpp.o"
  "CMakeFiles/cop_core.dir/coper_codec.cpp.o.d"
  "CMakeFiles/cop_core.dir/ecc_region.cpp.o"
  "CMakeFiles/cop_core.dir/ecc_region.cpp.o.d"
  "CMakeFiles/cop_core.dir/pointer_codec.cpp.o"
  "CMakeFiles/cop_core.dir/pointer_codec.cpp.o.d"
  "CMakeFiles/cop_core.dir/static_hash.cpp.o"
  "CMakeFiles/cop_core.dir/static_hash.cpp.o.d"
  "libcop_core.a"
  "libcop_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cop_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
