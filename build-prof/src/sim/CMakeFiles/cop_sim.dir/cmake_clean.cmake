file(REMOVE_RECURSE
  "CMakeFiles/cop_sim.dir/report.cpp.o"
  "CMakeFiles/cop_sim.dir/report.cpp.o.d"
  "CMakeFiles/cop_sim.dir/runner.cpp.o"
  "CMakeFiles/cop_sim.dir/runner.cpp.o.d"
  "CMakeFiles/cop_sim.dir/system.cpp.o"
  "CMakeFiles/cop_sim.dir/system.cpp.o.d"
  "CMakeFiles/cop_sim.dir/trace_io.cpp.o"
  "CMakeFiles/cop_sim.dir/trace_io.cpp.o.d"
  "libcop_sim.a"
  "libcop_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cop_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
