file(REMOVE_RECURSE
  "CMakeFiles/cop_common.dir/cache_block.cpp.o"
  "CMakeFiles/cop_common.dir/cache_block.cpp.o.d"
  "libcop_common.a"
  "libcop_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cop_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
