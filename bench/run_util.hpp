/**
 * @file
 * Bench glue over the experiment runner (src/sim/runner.hpp): declare
 * a (benchmark × scheme) grid of full-system cells, execute it under
 * COP_BENCH_JOBS workers (or --serial), then format tables from the
 * collected results exactly as the old hand-rolled serial loops did —
 * declaration, execution and formatting are separate phases, so the
 * printed table is byte-identical whatever the worker count.
 *
 * Each run also writes a machine-readable results sink:
 *   bench/results/<bench>.json         deterministic per-cell metrics
 *   bench/results/<bench>.timing.json  per-cell wall times (varies)
 * The directory is COP_BENCH_RESULTS if set, else bench/results
 * relative to the working directory.
 */

#ifndef COP_BENCH_RUN_UTIL_HPP
#define COP_BENCH_RUN_UTIL_HPP

#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <utility>

#include "sim/runner.hpp"
#include "sim_util.hpp"

namespace cop::bench {

/**
 * Directory for per-cell stats traces (JSONL), or "" when tracing is
 * off. Setting COP_TRACE_STATS=<dir> makes every grid cell write
 * <dir>/<bench>.<benchmark>.<scheme>.jsonl via
 * SystemConfig::traceStatsPath; leaving it unset keeps every run
 * byte-identical to a build without the observability layer.
 */
inline std::string
traceStatsDir()
{
    if (const char *env = std::getenv("COP_TRACE_STATS"))
        return env;
    return "";
}

/** Directory for the JSON results sinks. */
inline std::string
resultsDir()
{
    if (const char *env = std::getenv("COP_BENCH_RESULTS"))
        return env;
    return "bench/results";
}

/** Incremental builder for one flat JSON object. */
class JsonObjectBuilder
{
  public:
    void
    add(const std::string &name, u64 value)
    {
        prefix(name);
        body_ += std::to_string(static_cast<unsigned long long>(value));
    }

    void
    add(const std::string &name, double value)
    {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        prefix(name);
        body_ += buf;
    }

    void
    add(const std::string &name, const std::string &value)
    {
        prefix(name);
        body_ += '"';
        body_ += jsonEscape(value);
        body_ += '"';
    }

    /** Add a pre-serialised JSON value (object, array, ...). */
    void
    addRaw(const std::string &name, const std::string &json)
    {
        prefix(name);
        body_ += json;
    }

    std::string str() const { return "{" + body_ + "}"; }

  private:
    void
    prefix(const std::string &name)
    {
        if (!body_.empty())
            body_ += ',';
        body_ += '"';
        body_ += jsonEscape(name);
        body_ += "\":";
    }

    std::string body_;
};

/** Write @p text to @p dir/@p filename, creating the directory. */
inline void
writeResultsFile(const std::string &filename, const std::string &text)
{
    const std::filesystem::path dir(resultsDir());
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        std::fprintf(stderr,
                     "[runner] warning: cannot create %s (%s); "
                     "skipping %s\n",
                     dir.string().c_str(), ec.message().c_str(),
                     filename.c_str());
        return;
    }
    const std::filesystem::path path = dir / filename;
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "[runner] warning: cannot write %s\n",
                     path.string().c_str());
        return;
    }
    out << text << "\n";
}

/**
 * A grid of independent full-system cells. Usage:
 *
 *   GridRunner grid("fig11_performance", argc, argv);
 *   for (p : profiles) for (k : kinds) grid.add(*p, k);
 *   grid.run();
 *   ... format the table from grid.result(p, k) ...
 *   grid.writeJson();
 */
class GridRunner
{
  public:
    GridRunner(std::string bench_name, int argc, char **argv)
        : name_(std::move(bench_name)),
          opts_(parseRunnerOptions(argc, argv))
    {
    }

    /** Add a Table-1 cell for @p kind; scheme label is the kind name. */
    size_t
    add(const WorkloadProfile &profile, ControllerKind kind)
    {
        return add(profile, paperConfig(kind), controllerKindName(kind));
    }

    /** Add a custom-config cell under an explicit scheme label. */
    size_t
    add(const WorkloadProfile &profile, const SystemConfig &cfg,
        const std::string &scheme_label)
    {
        COP_ASSERT(results_.empty()); // declare before run()
        const size_t idx = cells_.size();
        cells_.push_back(Cell{&profile, cfg, scheme_label});
        const bool fresh =
            index_.emplace(key(profile.name, scheme_label), idx).second;
        COP_ASSERT(fresh); // duplicate (benchmark, scheme) cell
        attachTraceSink(cells_.back());
        return idx;
    }

    /** Execute every declared cell; results keyed by cell. */
    void
    run()
    {
        COP_ASSERT(results_.empty());
        applySimThreads();
        using Clock = std::chrono::steady_clock;
        const Clock::time_point start = Clock::now();
        results_ = runCollected<SystemResults>(
            cells_.size(),
            [this](size_t i) {
                System sys(*cells_[i].profile, cells_[i].cfg);
                return sys.run();
            },
            opts_, &wallMs_);
        elapsedMs_ = std::chrono::duration<double, std::milli>(
                         Clock::now() - start)
                         .count();
        reportTiming();
    }

    const SystemResults &
    result(size_t idx) const
    {
        COP_ASSERT(idx < results_.size());
        return results_[idx];
    }

    const SystemResults &
    result(const WorkloadProfile &profile, ControllerKind kind) const
    {
        return result(profile.name, controllerKindName(kind));
    }

    const SystemResults &
    result(const std::string &bench, const std::string &scheme) const
    {
        const auto it = index_.find(key(bench, scheme));
        if (it == index_.end())
            COP_PANIC("no grid cell (" + bench + ", " + scheme + ")");
        return result(it->second);
    }

    size_t cellCount() const { return cells_.size(); }
    double totalWallMs() const { return totalMs_; }
    const RunnerOptions &options() const { return opts_; }

    /** Attach a derived scalar to the JSON sink (e.g. a geomean). */
    void
    addScalar(const std::string &name, double value)
    {
        derived_.add(name, value);
    }

    /** Write the deterministic results sink and the timing sidecar. */
    void
    writeJson() const
    {
        COP_ASSERT(results_.size() == cells_.size());
        std::string cells;
        for (size_t i = 0; i < cells_.size(); ++i) {
            if (i)
                cells += ',';
            JsonObjectBuilder cell;
            cell.add("benchmark", cells_[i].profile->name);
            cell.add("scheme", cells_[i].scheme);
            cell.add("epochs_per_core", cells_[i].cfg.epochsPerCore);
            std::string metrics;
            appendResultsJson(metrics, results_[i]);
            cell.addRaw("metrics", metrics);
            cells += cell.str();
        }
        JsonObjectBuilder top;
        top.add("bench", name_);
        top.addRaw("derived", derived_.str());
        top.addRaw("cells", "[" + cells + "]");
        writeResultsFile(name_ + ".json", top.str());

        std::string timing;
        for (size_t i = 0; i < cells_.size(); ++i) {
            if (i)
                timing += ',';
            JsonObjectBuilder cell;
            cell.add("benchmark", cells_[i].profile->name);
            cell.add("scheme", cells_[i].scheme);
            cell.add("wall_ms", wallMs_[i]);
            cell.add("epochs_per_sec", cellEpochsPerSec(i));
            timing += cell.str();
        }
        JsonObjectBuilder top_timing;
        top_timing.add("bench", name_);
        top_timing.add("jobs", static_cast<u64>(opts_.effectiveJobs()));
        top_timing.add("sim_threads", static_cast<u64>(simThreads_));
        top_timing.add("sim_threads_requested",
                       static_cast<u64>(opts_.simThreads));
        top_timing.add("sim_threads_clamped",
                       static_cast<u64>(simThreadsClamped_ ? 1 : 0));
        top_timing.add("fast_timing", static_cast<u64>(fastTiming_ ? 1 : 0));
        top_timing.add("fast_timing_clamped",
                       static_cast<u64>(fastTimingClamped_ ? 1 : 0));
        top_timing.add("wall_ms_total", totalMs_);
        top_timing.add("elapsed_ms", elapsedMs_);
        top_timing.add("cells_per_sec",
                       elapsedMs_ > 0
                           ? static_cast<double>(cells_.size()) /
                                 (elapsedMs_ / 1000.0)
                           : 0.0);
        top_timing.addRaw("cells", "[" + timing + "]");
        writeResultsFile(name_ + ".timing.json", top_timing.str());
    }

  private:
    struct Cell
    {
        const WorkloadProfile *profile;
        SystemConfig cfg;
        std::string scheme;
    };

    static std::pair<std::string, std::string>
    key(const std::string &bench, const std::string &scheme)
    {
        return {bench, scheme};
    }

    /**
     * Propagate the requested per-cell simThreads into every cell's
     * config. Grid workers and shard workers multiply, so when the
     * grid itself is parallel (effectiveJobs > 1) a request for
     * intra-cell threading is clamped to 1 — loudly, because the user
     * asked for something the run is not doing.
     */
    void
    applySimThreads()
    {
        simThreads_ = opts_.simThreads;
        if (simThreads_ != 1 && opts_.effectiveJobs() > 1 &&
            cells_.size() > 1) {
            std::fprintf(
                stderr,
                "[runner] %s: --sim-threads %u ignored (clamped to 1): "
                "%u grid jobs already oversubscribe the host; use "
                "--serial or --jobs 1 for intra-cell threading\n",
                name_.c_str(), opts_.simThreads, opts_.effectiveJobs());
            simThreads_ = 1;
            simThreadsClamped_ = true;
        }
        for (Cell &cell : cells_)
            cell.cfg.simThreads = simThreads_;

        // Fast timing rides on intra-cell threads: with simThreads
        // clamped to 1 there is nothing to shard, so the request is
        // dropped with the same loud clamp (and recorded in the timing
        // sidecar as fast_timing_clamped).
        fastTiming_ = opts_.fastTiming;
        if (fastTiming_ && simThreads_ == 1) {
            std::fprintf(
                stderr,
                "[runner] %s: --fast-timing ignored (clamped off): it "
                "needs intra-cell threads (--sim-threads >= 2 under "
                "--serial or --jobs 1)\n",
                name_.c_str());
            fastTiming_ = false;
            fastTimingClamped_ = true;
        }
        for (Cell &cell : cells_)
            cell.cfg.fastTiming = fastTiming_;
    }

    /** Point a cell's trace sink into COP_TRACE_STATS, if set. */
    void
    attachTraceSink(Cell &cell)
    {
        const std::string dir = traceStatsDir();
        if (dir.empty())
            return;
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        auto sanitize = [](const std::string &s) {
            std::string out;
            for (const char c : s)
                out += std::isalnum(static_cast<unsigned char>(c))
                           ? c
                           : '_';
            return out;
        };
        cell.cfg.traceStatsPath =
            (std::filesystem::path(dir) /
             (name_ + "." + sanitize(cell.profile->name) + "." +
              sanitize(cell.scheme) + ".jsonl"))
                .string();
    }

    /** Simulated epochs per wall-second for cell @p i. */
    double
    cellEpochsPerSec(size_t i) const
    {
        if (wallMs_[i] <= 0)
            return 0.0;
        const double epochs =
            static_cast<double>(cells_[i].cfg.epochsPerCore) *
            cells_[i].cfg.cores;
        return epochs / (wallMs_[i] / 1000.0);
    }

    void
    reportTiming()
    {
        totalMs_ = 0;
        double slowest = 0;
        size_t slowest_idx = 0;
        for (size_t i = 0; i < wallMs_.size(); ++i) {
            totalMs_ += wallMs_[i];
            if (wallMs_[i] > slowest) {
                slowest = wallMs_[i];
                slowest_idx = i;
            }
        }
        if (cells_.empty())
            return;
        std::fprintf(stderr,
                     "[runner] %s: %zu cells, jobs=%u, "
                     "cell-time sum %.0f ms, elapsed %.0f ms "
                     "(%.2f cells/s), slowest cell %s/%s %.0f ms\n",
                     name_.c_str(), cells_.size(), opts_.effectiveJobs(),
                     totalMs_, elapsedMs_,
                     elapsedMs_ > 0 ? static_cast<double>(cells_.size()) /
                                          (elapsedMs_ / 1000.0)
                                    : 0.0,
                     cells_[slowest_idx].profile->name.c_str(),
                     cells_[slowest_idx].scheme.c_str(), slowest);
    }

    std::string name_;
    RunnerOptions opts_;
    std::vector<Cell> cells_;
    std::map<std::pair<std::string, std::string>, size_t> index_;
    std::vector<SystemResults> results_;
    std::vector<double> wallMs_;
    double totalMs_ = 0;
    double elapsedMs_ = 0;
    unsigned simThreads_ = 1;
    bool simThreadsClamped_ = false;
    bool fastTiming_ = false;
    bool fastTimingClamped_ = false;
    JsonObjectBuilder derived_;
};

} // namespace cop::bench

#endif // COP_BENCH_RUN_UTIL_HPP
