/**
 * @file
 * Ablation of the decoder's valid-code-word threshold (Section 3.1's
 * discussion): threshold 2 recovers two-errors-in-different-words at
 * the cost of orders of magnitude more aliases; threshold 4 has no
 * aliases among damaged blocks but cannot even tolerate one error.
 * Each threshold is an independent cell on the experiment runner; the
 * cells draw identical random samples, so the comparison is paired.
 */

#include "core/codec.hpp"
#include "reliability/fault_injector.hpp"
#include "run_util.hpp"

using namespace cop;

namespace {

struct ThresholdResult
{
    double aliasRate = 0;
    double oneFlipPct = 0;
    double twoFlipPct = 0;
};

ThresholdResult
evaluateThreshold(unsigned threshold)
{
    CopConfig cfg = CopConfig::fourByte();
    cfg.threshold = threshold;
    const CopCodec codec(cfg);

    // Alias rate over random (incompressible-like) blocks. The same
    // seed for every threshold: a paired sample.
    Rng rng(11);
    constexpr int kBlocks = 400000;
    u64 aliases = 0;
    for (int i = 0; i < kBlocks; ++i) {
        CacheBlock b;
        for (unsigned w = 0; w < 8; ++w)
            b.setWord64(w, rng.next());
        aliases += codec.isAlias(b);
    }

    // Correction behaviour on a protected block.
    Rng data_rng(3);
    CacheBlock data;
    const u64 base = 0x0012340000000000ULL;
    for (unsigned w = 0; w < 8; ++w)
        data.setWord64(w, base + data_rng.below(1u << 20));
    const CopEncodeResult enc = codec.encode(data);
    COP_ASSERT(enc.isProtected());

    u64 one_ok = 0, two_ok = 0;
    constexpr int kTrials = 4000;
    for (int t = 0; t < kTrials; ++t) {
        CacheBlock s1 = enc.stored;
        s1.flipBit(static_cast<unsigned>(data_rng.below(512)));
        one_ok += codec.decode(s1).data == data;

        CacheBlock s2 = enc.stored;
        const unsigned w1 = data_rng.below(4);
        unsigned w2 = data_rng.below(4);
        while (w2 == w1)
            w2 = data_rng.below(4);
        s2.flipBit(w1 * 128 + data_rng.below(128));
        s2.flipBit(w2 * 128 + data_rng.below(128));
        two_ok += codec.decode(s2).data == data;
    }

    return ThresholdResult{100.0 * aliases / kBlocks,
                           100.0 * one_ok / kTrials,
                           100.0 * two_ok / kTrials};
}

} // namespace

int
main(int argc, char **argv)
{
    static const unsigned thresholds[] = {2u, 3u, 4u};

    const RunnerOptions opts = parseRunnerOptions(argc, argv);
    const std::vector<ThresholdResult> results =
        runCollected<ThresholdResult>(
            std::size(thresholds),
            [&](size_t i) { return evaluateThreshold(thresholds[i]); },
            opts);

    std::printf("Ablation: decoder valid-code-word threshold "
                "(4-byte COP configuration)\n\n");
    std::printf("%-10s %16s %18s %18s\n", "threshold",
                "alias rate", "1-flip corrected", "2-flip (2 words)");
    std::printf("%s\n", std::string(66, '-').c_str());

    for (size_t i = 0; i < std::size(thresholds); ++i) {
        std::printf("%-10u %15.5f%% %17.1f%% %17.1f%%\n", thresholds[i],
                    results[i].aliasRate, results[i].oneFlipPct,
                    results[i].twoFlipPct);
    }

    std::printf("\nThreshold 3 (the paper's choice) is the only point "
                "with both ~zero aliases\nand full single-error "
                "correction; threshold 2 fixes split double errors but\n"
                "multiplies aliases by orders of magnitude; threshold 4 "
                "cannot correct at all.\n");

    std::string cells;
    for (size_t i = 0; i < std::size(thresholds); ++i) {
        if (i)
            cells += ',';
        bench::JsonObjectBuilder cell;
        cell.add("threshold", static_cast<u64>(thresholds[i]));
        cell.add("alias_rate_pct", results[i].aliasRate);
        cell.add("one_flip_corrected_pct", results[i].oneFlipPct);
        cell.add("two_flip_corrected_pct", results[i].twoFlipPct);
        cells += cell.str();
    }
    bench::JsonObjectBuilder top;
    top.add("bench", std::string("ablation_threshold"));
    top.addRaw("cells", "[" + cells + "]");
    bench::writeResultsFile("ablation_threshold.json", top.str());
    return 0;
}
