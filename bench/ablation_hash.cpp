/**
 * @file
 * Ablation of the static hash (Section 3.1): without it, application
 * data made of one repeated value aliases whenever that value happens
 * to form a valid code word, wildly skewing the odds the alias
 * analysis depends on. With the per-segment hash the alias rate drops
 * to the random-data level (~2e-7).
 */

#include <cstring>

#include "bench_util.hpp"
#include "core/codec.hpp"

using namespace cop;

namespace {

/** Fraction of repeated-segment blocks that alias under @p codec. */
double
aliasRateRepeatedSegments(const CopCodec &codec, u64 seed, int n)
{
    // Worst-case repeated data: one 128-bit pattern that is itself a
    // valid code word, repeated across the whole block. Any repeated
    // 16-byte pattern has a 2^-8 chance of this in real data; we
    // construct it directly.
    Rng rng(seed);
    int aliases = 0;
    for (int i = 0; i < n; ++i) {
        std::array<u8, 16> segment{};
        for (unsigned b = 0; b < 15; ++b)
            segment[b] = static_cast<u8>(rng.next());
        codes::full128().encode(segment);
        CacheBlock block;
        for (unsigned s = 0; s < 4; ++s)
            std::memcpy(block.data() + 16 * s, segment.data(), 16);
        aliases += codec.isAlias(block);
    }
    return static_cast<double>(aliases) / n;
}

/** Fraction of repeated-word blocks (realistic case) that alias. */
double
aliasRateRepeatedWords(const CopCodec &codec, u64 seed, int n)
{
    Rng rng(seed);
    int aliases = 0;
    for (int i = 0; i < n; ++i) {
        CacheBlock block;
        const u64 v = rng.next();
        for (unsigned w = 0; w < 8; ++w)
            block.setWord64(w, v);
        aliases += codec.isAlias(block);
    }
    return static_cast<double>(aliases) / n;
}

} // namespace

int
main()
{
    CopConfig hashed = CopConfig::fourByte();
    CopConfig unhashed = CopConfig::fourByte();
    unhashed.useStaticHash = false;
    const CopCodec with(hashed), without(unhashed);

    constexpr int kTrials = 100000;
    std::printf("Ablation: the per-segment static hash "
                "(alias rate on repeated-value data)\n\n");
    std::printf("%-34s %14s %14s\n", "data pattern", "no hash",
                "with hash");
    std::printf("%s\n", std::string(64, '-').c_str());
    std::printf("%-34s %13.4f%% %13.4f%%\n",
                "repeated valid-code-word segment",
                100 * aliasRateRepeatedSegments(without, 1, kTrials),
                100 * aliasRateRepeatedSegments(with, 1, kTrials));
    std::printf("%-34s %13.4f%% %13.4f%%\n", "repeated 64-bit word",
                100 * aliasRateRepeatedWords(without, 2, kTrials),
                100 * aliasRateRepeatedWords(with, 2, kTrials));

    std::printf("\nWithout the hash, a repeated 16-byte pattern that is "
                "a valid code word makes\nthe whole block an alias "
                "(100%% above); the hash makes each segment see\n"
                "different bits, restoring the 2^-24-scale odds of "
                "Section 3.1.\n");
    return 0;
}
