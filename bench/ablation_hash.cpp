/**
 * @file
 * Ablation of the static hash (Section 3.1): without it, application
 * data made of one repeated value aliases whenever that value happens
 * to form a valid code word, wildly skewing the odds the alias
 * analysis depends on. With the per-segment hash the alias rate drops
 * to the random-data level (~2e-7). The four (pattern x codec) cells
 * execute on the experiment runner.
 */

#include <cstring>

#include "core/codec.hpp"
#include "run_util.hpp"

using namespace cop;

namespace {

/** Fraction of repeated-segment blocks that alias under @p codec. */
double
aliasRateRepeatedSegments(const CopCodec &codec, u64 seed, int n)
{
    // Worst-case repeated data: one 128-bit pattern that is itself a
    // valid code word, repeated across the whole block. Any repeated
    // 16-byte pattern has a 2^-8 chance of this in real data; we
    // construct it directly.
    Rng rng(seed);
    int aliases = 0;
    for (int i = 0; i < n; ++i) {
        std::array<u8, 16> segment{};
        for (unsigned b = 0; b < 15; ++b)
            segment[b] = static_cast<u8>(rng.next());
        codes::full128().encode(segment);
        CacheBlock block;
        for (unsigned s = 0; s < 4; ++s)
            std::memcpy(block.data() + 16 * s, segment.data(), 16);
        aliases += codec.isAlias(block);
    }
    return static_cast<double>(aliases) / n;
}

/** Fraction of repeated-word blocks (realistic case) that alias. */
double
aliasRateRepeatedWords(const CopCodec &codec, u64 seed, int n)
{
    Rng rng(seed);
    int aliases = 0;
    for (int i = 0; i < n; ++i) {
        CacheBlock block;
        const u64 v = rng.next();
        for (unsigned w = 0; w < 8; ++w)
            block.setWord64(w, v);
        aliases += codec.isAlias(block);
    }
    return static_cast<double>(aliases) / n;
}

} // namespace

int
main(int argc, char **argv)
{
    CopConfig hashed = CopConfig::fourByte();
    CopConfig unhashed = CopConfig::fourByte();
    unhashed.useStaticHash = false;
    const CopCodec with(hashed), without(unhashed);

    constexpr int kTrials = 100000;

    // Cells: {segments, words} x {no hash, with hash} — same seeds and
    // trial counts as the serial loop, so output is unchanged.
    const RunnerOptions opts = parseRunnerOptions(argc, argv);
    const std::vector<double> rates = runCollected<double>(
        4,
        [&](size_t cell) {
            const CopCodec &codec = (cell % 2) ? with : without;
            return cell < 2
                       ? aliasRateRepeatedSegments(codec, 1, kTrials)
                       : aliasRateRepeatedWords(codec, 2, kTrials);
        },
        opts);

    std::printf("Ablation: the per-segment static hash "
                "(alias rate on repeated-value data)\n\n");
    std::printf("%-34s %14s %14s\n", "data pattern", "no hash",
                "with hash");
    std::printf("%s\n", std::string(64, '-').c_str());
    std::printf("%-34s %13.4f%% %13.4f%%\n",
                "repeated valid-code-word segment", 100 * rates[0],
                100 * rates[1]);
    std::printf("%-34s %13.4f%% %13.4f%%\n", "repeated 64-bit word",
                100 * rates[2], 100 * rates[3]);

    std::printf("\nWithout the hash, a repeated 16-byte pattern that is "
                "a valid code word makes\nthe whole block an alias "
                "(100%% above); the hash makes each segment see\n"
                "different bits, restoring the 2^-24-scale odds of "
                "Section 3.1.\n");

    bench::JsonObjectBuilder top;
    top.add("bench", std::string("ablation_hash"));
    top.add("segments_no_hash", rates[0]);
    top.add("segments_with_hash", rates[1]);
    top.add("words_no_hash", rates[2]);
    top.add("words_with_hash", rates[3]);
    bench::writeResultsFile("ablation_hash.json", top.str());
    return 0;
}
