/**
 * @file
 * Live fault-injection campaign: a (benchmark x scheme x flips-per-
 * event) grid of full-system runs with the in-simulation injector
 * striking real stored images at an accelerated Poisson rate, the
 * recovery pipeline (retry, scrub-on-read, page retirement) armed, and
 * verifyData acting as the ground-truth SDC oracle. For every scheme
 * the measured outcome split (benign / corrected / detected / silent)
 * is printed next to the analytic conditional-outcome prediction of
 * the Section 4 error model — the live counterpart of Figure 10's
 * purely analytic comparison, and the end-to-end check that the
 * decoders, the recovery path and the model agree about what N flips
 * do to each scheme.
 *
 * The split is aggregated per scheme rather than per protection class
 * because the interesting COP failure mode crosses classes: a 2-flip
 * cross-word pattern makes a compressed block decode as raw, so the
 * silent fill is observed under the raw class even though the block
 * was stored as CopProtected4.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "reliability/error_model.hpp"
#include "run_util.hpp"

using namespace cop;

namespace {

/**
 * Accelerated fault rate: high enough that a bench-length run observes
 * hundreds of events per cell, low enough that multi-event pile-up on
 * one block before its next read stays a small correction.
 */
constexpr double kEventsPerMegacycle = 800.0;

SystemConfig
faultConfig(ControllerKind kind, unsigned flips)
{
    SystemConfig cfg = bench::paperConfig(kind);
    // Shrink the LLC so faulted blocks are re-read from DRAM instead
    // of staying resident (a fault is only observable at a fill).
    cfg.llc = CacheConfig{256ULL << 10, 8, 34};
    cfg.fault.enabled = true;
    cfg.fault.eventsPerMegacycle = kEventsPerMegacycle;
    cfg.fault.flipsPerEvent = flips;
    cfg.fault.seed = 0xC0FFEE;
    return cfg;
}

std::string
schemeLabel(ControllerKind kind, unsigned flips)
{
    return std::string(controllerKindName(kind)) + " f" +
           std::to_string(flips);
}

/**
 * The protection class that covers the overwhelming share of a
 * scheme's stored blocks on compressible (SPEC-like) data — the class
 * whose conditional outcome the measured scheme-level split should
 * track.
 */
VulnClass
primaryClass(ControllerKind kind)
{
    switch (kind) {
      case ControllerKind::Unprotected: return VulnClass::Unprotected;
      case ControllerKind::EccDimm: return VulnClass::EccDimm;
      case ControllerKind::EccRegion: return VulnClass::WideCode;
      case ControllerKind::Cop4: return VulnClass::CopProtected4;
      case ControllerKind::Cop8: return VulnClass::CopProtected8;
      // COP-ER turns COP's silent misdecodes into detected losses: a
      // cross-word double decodes as raw, but the pointer chase then
      // hits an unallocated ECC-region entry. Every uncorrected
      // outcome is detected — the CopErUncompressed conditional split.
      case ControllerKind::CopEr: return VulnClass::CopErUncompressed;
      case ControllerKind::CopErNaive:
        return VulnClass::CopErUncompressed;
    }
    COP_PANIC("bad controller kind");
}

double
frac(u64 part, u64 whole)
{
    return whole ? static_cast<double>(part) / whole : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    static const ControllerKind kinds[] = {
        ControllerKind::Unprotected, ControllerKind::EccDimm,
        ControllerKind::EccRegion,   ControllerKind::Cop4,
        ControllerKind::Cop8,        ControllerKind::CopEr,
        ControllerKind::CopErNaive};
    static const unsigned flipCounts[] = {1, 2};

    // Two memory-intensive benchmarks, with the working set shrunk so
    // a bench-length run touches a substantial share of it: uniform
    // strikes over a pristine multi-gigabyte footprint would nearly
    // all land on blocks with no stored image yet (counted as cold,
    // observed never), starving the statistics.
    const auto intensive = WorkloadRegistry::memoryIntensive();
    std::vector<WorkloadProfile> campaign;
    campaign.reserve(2);
    for (size_t i = 0; i < 2; ++i) {
        WorkloadProfile p = *intensive[i];
        p.footprintBlocks = 1u << 13; // 512 KB/core: misses, but warm
        campaign.push_back(p);
    }
    std::vector<const WorkloadProfile *> profiles;
    for (const WorkloadProfile &p : campaign)
        profiles.push_back(&p);

    bench::GridRunner grid("fault_campaign", argc, argv);
    for (const auto *p : profiles) {
        for (const ControllerKind kind : kinds) {
            for (const unsigned flips : flipCounts)
                grid.add(*p, faultConfig(kind, flips),
                         schemeLabel(kind, flips));
        }
    }
    grid.run();

    std::printf("Fault campaign: live injection at %.0f events/Mcycle, "
                "recovery armed\n", kEventsPerMegacycle);
    std::printf("(observed = fault outcomes at demand reads, summed over"
                " %zu benchmarks)\n\n", profiles.size());
    std::printf("%-11s %2s %6s  %7s %7s %7s %7s   %7s %7s %7s\n",
                "scheme", "f", "obs", "benign", "corr", "DUE", "silent",
                "corr*", "DUE*", "silent*");
    std::printf("%s\n", std::string(82, '-').c_str());

    double cop4MeasSilent2 = -1, cop4ModelSilent2 = -1;
    for (const ControllerKind kind : kinds) {
        for (const unsigned flips : flipCounts) {
            // Scheme-level outcome totals over the benchmarks.
            u64 benign = 0, corrected = 0, detected = 0, silent = 0;
            for (const auto *p : profiles) {
                const ErrorLog &e =
                    grid.result(p->name, schemeLabel(kind, flips))
                        .errors;
                benign += e.benign;
                corrected += e.corrected;
                detected += e.detected;
                silent += e.silent;
            }
            const u64 n = benign + corrected + detected + silent;
            const ConditionalOutcome model =
                ErrorRateModel::conditionalOutcome(primaryClass(kind),
                                                   flips);
            std::printf("%-11s %2u %6llu  %6.1f%% %6.1f%% %6.1f%% "
                        "%6.1f%%   %6.1f%% %6.1f%% %6.1f%%\n",
                        controllerKindName(kind), flips,
                        static_cast<unsigned long long>(n),
                        100.0 * frac(benign, n),
                        100.0 * frac(corrected, n),
                        100.0 * frac(detected, n),
                        100.0 * frac(silent, n),
                        100.0 * model.corrected, 100.0 * model.detected,
                        100.0 * model.silent);
            if (kind == ControllerKind::Cop4 && flips == 2) {
                const u64 uncorrected = detected + silent;
                cop4MeasSilent2 = frac(silent, uncorrected);
                cop4ModelSilent2 =
                    model.silent / (model.silent + model.detected);
            }
        }
    }
    std::printf("\n(corr*/DUE*/silent* = analytic conditional outcome "
                "for exactly f uniform flips\nin the scheme's dominant "
                "protection class; measured rows drift from the model\n"
                "when blocks are stored raw, or when separate events "
                "pile up on one block\nbefore its next read.)\n");

    grid.addScalar("events_per_megacycle", kEventsPerMegacycle);
    grid.addScalar("cop4_f2_measured_silent_frac", cop4MeasSilent2);
    grid.addScalar("cop4_f2_model_silent_frac", cop4ModelSilent2);
    grid.writeJson();
    return 0;
}
