/**
 * @file
 * Live fault-injection campaign: a (benchmark x scheme x flips-per-
 * event x on-die-ECC) grid of full-system runs with the in-simulation
 * injector striking real stored images at an accelerated Poisson rate,
 * the recovery pipeline (retry, scrub-on-read, page retirement) armed,
 * and verifyData acting as the ground-truth SDC oracle. For every
 * scheme the measured outcome split (benign / corrected / detected /
 * silent) is printed next to the analytic conditional-outcome
 * prediction of the Section 4 error model — the live counterpart of
 * Figure 10's purely analytic comparison, and the end-to-end check
 * that the decoders, the recovery path and the model agree about what
 * N flips do to each scheme.
 *
 * PR 7 extensions: an on-die SEC filter column (each scheme rerun with
 * per-chip (136,128) correction beneath the rank-level code, analytic
 * columns from the OndieEcc Monte-Carlo model), 3-flip rows exercising
 * the Monte-Carlo extension of the conditional-outcome model, and
 * adaptive ECC-region-capacity cells (ECC Reg. / COP-ER) measuring
 * reclaimed metadata capacity with live faults in flight. A --quick
 * mode runs a reduced grid sized for the CI perf-smoke budget while
 * still producing every gated scalar.
 *
 * The split is aggregated per scheme rather than per protection class
 * because the interesting COP failure mode crosses classes: a 2-flip
 * cross-word pattern makes a compressed block decode as raw, so the
 * silent fill is observed under the raw class even though the block
 * was stored as CopProtected4.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "reliability/error_model.hpp"
#include "reliability/ondie_ecc.hpp"
#include "run_util.hpp"

using namespace cop;

namespace {

/**
 * Accelerated fault rate: high enough that a bench-length run observes
 * hundreds of events per cell, low enough that multi-event pile-up on
 * one block before its next read stays a small correction.
 */
constexpr double kEventsPerMegacycle = 800.0;

/** Trials / seed of the analytic on-die model columns. */
constexpr u64 kOndieModelTrials = 200000;
constexpr u64 kOndieModelSeed = 0x0D1E0DE1ULL;

/** One grid cell beyond the (benchmark) axis. */
struct CellSpec
{
    ControllerKind kind;
    unsigned flips;
    bool ondie = false;
    bool adaptive = false;
};

SystemConfig
faultConfig(const CellSpec &cell, u64 epochs)
{
    SystemConfig cfg = bench::paperConfig(cell.kind);
    cfg.epochsPerCore = epochs;
    // Shrink the LLC so faulted blocks are re-read from DRAM instead
    // of staying resident (a fault is only observable at a fill).
    cfg.llc = CacheConfig{256ULL << 10, 8, 34};
    cfg.fault.enabled = true;
    cfg.fault.eventsPerMegacycle = kEventsPerMegacycle;
    cfg.fault.flipsPerEvent = cell.flips;
    cfg.fault.seed = 0xC0FFEE;
    cfg.fault.ondieEcc = cell.ondie;
    cfg.adaptiveEccCapacity = cell.adaptive;
    return cfg;
}

std::string
cellLabel(const CellSpec &cell)
{
    std::string label = std::string(controllerKindName(cell.kind)) +
                        " f" + std::to_string(cell.flips);
    if (cell.ondie)
        label += "+od";
    if (cell.adaptive)
        label += "+ad";
    return label;
}

/**
 * The protection class that covers the overwhelming share of a
 * scheme's stored blocks on compressible (SPEC-like) data — the class
 * whose conditional outcome the measured scheme-level split should
 * track.
 */
VulnClass
primaryClass(ControllerKind kind)
{
    switch (kind) {
      case ControllerKind::Unprotected: return VulnClass::Unprotected;
      case ControllerKind::EccDimm: return VulnClass::EccDimm;
      case ControllerKind::EccRegion: return VulnClass::WideCode;
      case ControllerKind::Cop4: return VulnClass::CopProtected4;
      case ControllerKind::Cop8: return VulnClass::CopProtected8;
      // COP-ER turns COP's silent misdecodes into detected losses: a
      // cross-word double decodes as raw, but the pointer chase then
      // hits an unallocated ECC-region entry. Every uncorrected
      // outcome is detected — the CopErUncompressed conditional split.
      case ControllerKind::CopEr: return VulnClass::CopErUncompressed;
      case ControllerKind::CopErNaive:
        return VulnClass::CopErUncompressed;
    }
    COP_PANIC("bad controller kind");
}

double
frac(u64 part, u64 whole)
{
    return whole ? static_cast<double>(part) / whole : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }

    static const ControllerKind kAllKinds[] = {
        ControllerKind::Unprotected, ControllerKind::EccDimm,
        ControllerKind::EccRegion,   ControllerKind::Cop4,
        ControllerKind::Cop8,        ControllerKind::CopEr,
        ControllerKind::CopErNaive};
    static const ControllerKind kQuickKinds[] = {
        ControllerKind::EccDimm, ControllerKind::Cop4,
        ControllerKind::CopEr};
    // Multi-flip Monte-Carlo extension rows (3 flips exceed the closed
    // forms, so the analytic columns come from the seeded estimator).
    static const ControllerKind kTripleKinds[] = {
        ControllerKind::EccDimm, ControllerKind::Cop4,
        ControllerKind::CopEr};
    // Adaptive-capacity cells: the two schemes with an ECC region.
    static const ControllerKind kAdaptiveKinds[] = {
        ControllerKind::EccRegion, ControllerKind::CopEr};

    std::vector<CellSpec> cells;
    if (quick) {
        for (const ControllerKind kind : kQuickKinds) {
            cells.push_back({kind, 2, false, false});
            cells.push_back({kind, 2, true, false});
        }
    } else {
        for (const ControllerKind kind : kAllKinds) {
            for (const unsigned flips : {1u, 2u}) {
                cells.push_back({kind, flips, false, false});
                cells.push_back({kind, flips, true, false});
            }
        }
        for (const ControllerKind kind : kTripleKinds)
            cells.push_back({kind, 3, false, false});
    }
    for (const ControllerKind kind : kAdaptiveKinds)
        cells.push_back({kind, 1, false, true});

    // Two memory-intensive benchmarks, with the working set shrunk so
    // a bench-length run touches a substantial share of it: uniform
    // strikes over a pristine multi-gigabyte footprint would nearly
    // all land on blocks with no stored image yet (counted as cold,
    // observed never), starving the statistics.
    const auto intensive = WorkloadRegistry::memoryIntensive();
    const size_t nProfiles = quick ? 1 : 2;
    std::vector<WorkloadProfile> campaign;
    campaign.reserve(nProfiles);
    for (size_t i = 0; i < nProfiles; ++i) {
        WorkloadProfile p = *intensive[i];
        p.footprintBlocks = 1u << 13; // 512 KB/core: misses, but warm
        campaign.push_back(p);
    }
    std::vector<const WorkloadProfile *> profiles;
    for (const WorkloadProfile &p : campaign)
        profiles.push_back(&p);

    const u64 epochs =
        quick ? std::min<u64>(bench::benchEpochs(), 3000)
              : bench::benchEpochs();

    bench::GridRunner grid("fault_campaign", argc, argv);
    for (const auto *p : profiles) {
        for (const CellSpec &cell : cells)
            grid.add(*p, faultConfig(cell, epochs), cellLabel(cell));
    }
    grid.run();

    std::printf("Fault campaign: live injection at %.0f events/Mcycle, "
                "recovery armed%s\n", kEventsPerMegacycle,
                quick ? " (--quick grid)" : "");
    std::printf("(observed = fault outcomes at demand reads, summed over"
                " %zu benchmarks;\n +od = per-chip on-die SEC beneath "
                "the scheme, +ad = adaptive ECC capacity)\n\n",
                profiles.size());
    std::printf("%-14s %2s %6s  %7s %7s %7s %7s   %7s %7s %7s\n",
                "scheme", "f", "obs", "benign", "corr", "DUE", "silent",
                "corr*", "DUE*", "silent*");
    std::printf("%s\n", std::string(85, '-').c_str());

    double cop4MeasSilent2 = -1, cop4ModelSilent2 = -1;
    double cop4OndieSilent2 = -1;
    u64 ondieF2Injected = 0, ondieF2Miscorrected = 0;
    u64 adaptiveReclaimed = 0, adaptiveDemotions = 0;
    u64 adaptiveSilent = 0, injectSkipped = 0;
    for (const CellSpec &cell : cells) {
        // Scheme-level outcome totals over the benchmarks.
        u64 benign = 0, corrected = 0, detected = 0, silent = 0;
        u64 odInjected = 0, odMiscorrected = 0;
        for (const auto *p : profiles) {
            const SystemResults &r =
                grid.result(p->name, cellLabel(cell));
            benign += r.errors.benign;
            corrected += r.errors.corrected;
            detected += r.errors.detected;
            silent += r.errors.silent;
            odInjected += r.errors.ondieInjected;
            odMiscorrected += r.errors.ondieMiscorrected;
            injectSkipped += r.errors.injectSkipped;
            if (cell.adaptive) {
                adaptiveReclaimed += r.adaptive.slotsReclaimed;
                adaptiveDemotions += r.adaptive.demotions;
                adaptiveSilent += r.errors.silent;
            }
        }
        const u64 n = benign + corrected + detected + silent;
        // Analytic columns: raw-flip conditional outcome, or — under
        // the on-die filter — the outcome conditioned on a pattern
        // arriving at the rank-level decoder at all.
        ConditionalOutcome model;
        if (cell.ondie) {
            model = OndieEcc::model(primaryClass(cell.kind), cell.flips,
                                    kOndieModelTrials, kOndieModelSeed)
                        .onArrival;
        } else {
            model = ErrorRateModel::conditionalOutcome(
                primaryClass(cell.kind), cell.flips);
        }
        std::printf("%-14s %2u %6llu  %6.1f%% %6.1f%% %6.1f%% "
                    "%6.1f%%   %6.1f%% %6.1f%% %6.1f%%\n",
                    cellLabel(cell).c_str(), cell.flips,
                    static_cast<unsigned long long>(n),
                    100.0 * frac(benign, n), 100.0 * frac(corrected, n),
                    100.0 * frac(detected, n), 100.0 * frac(silent, n),
                    100.0 * model.corrected, 100.0 * model.detected,
                    100.0 * model.silent);
        if (cell.kind == ControllerKind::Cop4 && cell.flips == 2 &&
            !cell.adaptive) {
            const u64 uncorrected = detected + silent;
            if (cell.ondie) {
                cop4OndieSilent2 = frac(silent, uncorrected);
            } else {
                cop4MeasSilent2 = frac(silent, uncorrected);
                cop4ModelSilent2 =
                    model.silent / (model.silent + model.detected);
            }
        }
        if (cell.ondie && cell.flips == 2) {
            ondieF2Injected += odInjected;
            ondieF2Miscorrected += odMiscorrected;
        }
    }
    std::printf("\n(corr*/DUE*/silent* = analytic conditional outcome "
                "for exactly f uniform flips\nin the scheme's dominant "
                "protection class; +od rows condition on the pattern\n"
                "surviving the on-die filter. Measured rows drift from "
                "the model when blocks\nare stored raw, or when separate "
                "events pile up on one block before its\nnext read.)\n");

    const double ondieMcFrac = frac(ondieF2Miscorrected, ondieF2Injected);
    std::printf("\non-die filter, f=2 raw events: %llu injected, "
                "%.3f miscorrected on die\n",
                static_cast<unsigned long long>(ondieF2Injected),
                ondieMcFrac);
    std::printf("adaptive cells (f=1): %llu region slots reclaimed, "
                "%llu demotions, %llu silent\n",
                static_cast<unsigned long long>(adaptiveReclaimed),
                static_cast<unsigned long long>(adaptiveDemotions),
                static_cast<unsigned long long>(adaptiveSilent));

    grid.addScalar("events_per_megacycle", kEventsPerMegacycle);
    grid.addScalar("cop4_f2_measured_silent_frac", cop4MeasSilent2);
    grid.addScalar("cop4_f2_model_silent_frac", cop4ModelSilent2);
    grid.addScalar("cop4_f2_ondie_silent_frac", cop4OndieSilent2);
    grid.addScalar("ondie_f2_miscorrect_frac", ondieMcFrac);
    grid.addScalar("adaptive_slots_reclaimed",
                   static_cast<double>(adaptiveReclaimed));
    grid.addScalar("adaptive_demotions",
                   static_cast<double>(adaptiveDemotions));
    grid.addScalar("adaptive_f1_silent",
                   static_cast<double>(adaptiveSilent));
    grid.addScalar("inject_skipped",
                   static_cast<double>(injectSkipped));
    grid.writeJson();
    return 0;
}
