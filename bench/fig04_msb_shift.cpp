/**
 * @file
 * Figure 4 reproduction: compressibility improvement of MSB compression
 * on SPECfp 2006 when the 5-bit comparison is shifted by one bit to
 * skip the IEEE-754 sign bit. Mixed-sign floating-point data with
 * similar exponents compresses only under the shifted comparison.
 */

#include "bench_util.hpp"
#include "compress/msb.hpp"

using namespace cop;

int
main()
{
    const MsbCompressor unshifted(5, false);
    const MsbCompressor shifted(5, true);
    constexpr unsigned kBudget = 478; // free 4 bytes + 2 tag bits

    bench::printHeader(
        "Figure 4: MSB compressibility, unshifted vs shifted comparison "
        "(4 bytes freed)",
        {"Unshifted", "Shifted", "Gain"});

    std::vector<double> col_unshift, col_shift;
    for (const auto *p : WorkloadRegistry::specFpFigure4()) {
        const auto blocks = bench::sampleFor(*p);
        const double u =
            bench::fractionCompressible(blocks, unshifted, kBudget);
        const double s =
            bench::fractionCompressible(blocks, shifted, kBudget);
        bench::printPctRow(p->name, {u, s, s - u});
        col_unshift.push_back(u);
        col_shift.push_back(s);
    }
    const double mu = bench::mean(col_unshift);
    const double ms = bench::mean(col_shift);
    std::printf("%s\n", std::string(16 + 3 * 13, '-').c_str());
    bench::printPctRow("Average", {mu, ms, ms - mu});
    std::printf("\nPaper: shifting the comparison improves SPECfp "
                "compressibility by ~15%%.\n");
    return 0;
}
