/**
 * @file
 * Figure 11 reproduction: IPC of COP, COP-ER and the ECC-region
 * baseline, normalised to the unprotected system, on the 4-core
 * Table 1 configuration. The paper's shape: COP costs only the 4-cycle
 * decode latency; COP-ER adds occasional entry fetches; the ECC-region
 * baseline pays extra DRAM traffic on most fills and trails COP-ER by
 * ~8%.
 *
 * Run with --config to print the Table 1 configuration block; the
 * (benchmark x scheme) grid executes on the experiment runner
 * (COP_BENCH_JOBS workers, --serial for in-order execution).
 */

#include <cstring>

#include "run_util.hpp"

using namespace cop;

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--config") == 0)
        bench::printTable1();

    static const ControllerKind kinds[] = {
        ControllerKind::Unprotected, ControllerKind::Cop4,
        ControllerKind::CopEr, ControllerKind::EccRegion};

    bench::GridRunner grid("fig11_performance", argc, argv);
    for (const auto *p : WorkloadRegistry::memoryIntensive()) {
        for (const ControllerKind kind : kinds)
            grid.add(*p, kind);
    }
    grid.run();

    bench::printHeader(
        "Figure 11: IPC normalised to the unprotected system (4 cores)",
        {"Unprot.", "COP", "COP-ER", "ECC Reg."});

    bench::SuiteAverager avg;
    std::vector<double> geo_cop, geo_coper, geo_eccreg;
    for (const auto *p : WorkloadRegistry::memoryIntensive()) {
        const double unprot =
            grid.result(*p, ControllerKind::Unprotected).ipc;
        const double cop =
            grid.result(*p, ControllerKind::Cop4).ipc / unprot;
        const double coper =
            grid.result(*p, ControllerKind::CopEr).ipc / unprot;
        const double eccreg =
            grid.result(*p, ControllerKind::EccRegion).ipc / unprot;
        const std::vector<double> row = {1.0, cop, coper, eccreg};
        bench::printRow(p->name, row);
        avg.add(*p, row);
        geo_cop.push_back(cop);
        geo_coper.push_back(coper);
        geo_eccreg.push_back(eccreg);
    }

    std::printf("%s\n", std::string(16 + 4 * 13, '-').c_str());
    bench::printRow("Geomean", {1.0, bench::geomean(geo_cop),
                                bench::geomean(geo_coper),
                                bench::geomean(geo_eccreg)});
    {
        auto spec = avg.intRows;
        spec.insert(spec.end(), avg.fpRows.begin(), avg.fpRows.end());
        bench::printRow("SPEC2006", bench::SuiteAverager::average(spec));
    }
    bench::printRow("PARSEC",
                    bench::SuiteAverager::average(avg.parsecRows));

    std::printf("\nPaper: COP slightly below unprotected (decode "
                "latency); COP-ER slightly below\nCOP (entry fetches); "
                "COP-ER ~8%% better than the ECC Reg. baseline.\n");

    grid.addScalar("geomean_cop", bench::geomean(geo_cop));
    grid.addScalar("geomean_coper", bench::geomean(geo_coper));
    grid.addScalar("geomean_eccreg", bench::geomean(geo_eccreg));
    grid.writeJson();
    return 0;
}
