/**
 * @file
 * Microbenchmarks (google-benchmark) of the software codec: per-scheme
 * compression/decompression, SECDED syndrome generation, full COP
 * encode/decode, and the COP-ER reconstruction path. These are
 * software-throughput proxies for the "simple hardware" claims of
 * Sections 3.1-3.2 — the relative ordering (MSB < RLE < FPC work)
 * mirrors the relative logic complexity.
 */

#include <benchmark/benchmark.h>

#include "compress/bdi.hpp"
#include "compress/combined.hpp"
#include "compress/fpc.hpp"
#include "core/coper_codec.hpp"
#include "workloads/block_gen.hpp"

namespace cop {
namespace {

std::vector<CacheBlock>
blocksOf(BlockCategory c, unsigned n)
{
    Rng rng(42);
    BlockGenParams params;
    std::vector<CacheBlock> out;
    out.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        out.push_back(generateBlock(c, params, rng));
    return out;
}

void
BM_SecdedSyndrome128(benchmark::State &state)
{
    const auto blocks = blocksOf(BlockCategory::Random, 256);
    const HsiaoCode &code = codes::full128();
    size_t i = 0;
    for (auto _ : state) {
        const auto &b = blocks[i++ % blocks.size()];
        for (unsigned s = 0; s < 4; ++s) {
            benchmark::DoNotOptimize(
                code.syndrome(b.bytes().subspan(s * 16, 16)));
        }
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            kBlockBytes);
}
BENCHMARK(BM_SecdedSyndrome128);

void
BM_SecdedSyndromeWide523(benchmark::State &state)
{
    Rng rng(1);
    std::array<u8, 66> cw{};
    for (auto &b : cw)
        b = static_cast<u8>(rng.next());
    cw[65] &= 0x07;
    const HsiaoCode &code = codes::wide523();
    for (auto _ : state)
        benchmark::DoNotOptimize(code.syndrome(cw));
}
BENCHMARK(BM_SecdedSyndromeWide523);

template <typename Compressor, BlockCategory Cat, unsigned Budget>
void
BM_Compress(benchmark::State &state)
{
    const Compressor comp;
    const auto blocks = blocksOf(Cat, 256);
    std::array<u8, kBlockBytes + 8> buf{};
    size_t i = 0;
    for (auto _ : state) {
        buf.fill(0);
        BitWriter writer(buf);
        benchmark::DoNotOptimize(
            comp.compress(blocks[i++ % blocks.size()], Budget, writer));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            kBlockBytes);
}
BENCHMARK(BM_Compress<RleCompressor, BlockCategory::SmallInt64, 478>)
    ->Name("BM_CompressRLE");
BENCHMARK(BM_Compress<FpcCompressor, BlockCategory::SmallInt32, 560>)
    ->Name("BM_CompressFPC");
BENCHMARK(BM_Compress<BdiCompressor, BlockCategory::Pointer, 478>)
    ->Name("BM_CompressBDI");
BENCHMARK(BM_Compress<TxtCompressor, BlockCategory::Text, 478>)
    ->Name("BM_CompressTXT");

void
BM_CompressMSB(benchmark::State &state)
{
    const MsbCompressor comp(5, true);
    const auto blocks = blocksOf(BlockCategory::FpSimilar, 256);
    std::array<u8, kBlockBytes + 8> buf{};
    size_t i = 0;
    for (auto _ : state) {
        buf.fill(0);
        BitWriter writer(buf);
        benchmark::DoNotOptimize(
            comp.compress(blocks[i++ % blocks.size()], 478, writer));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            kBlockBytes);
}
BENCHMARK(BM_CompressMSB);

void
BM_CopEncode(benchmark::State &state)
{
    const CopCodec codec(CopConfig::fourByte());
    const auto blocks = blocksOf(BlockCategory::FpSimilar, 256);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            codec.encode(blocks[i++ % blocks.size()]));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            kBlockBytes);
}
BENCHMARK(BM_CopEncode);

void
BM_CopDecode(benchmark::State &state)
{
    const CopCodec codec(CopConfig::fourByte());
    const auto blocks = blocksOf(BlockCategory::FpSimilar, 256);
    std::vector<CacheBlock> stored;
    for (const auto &b : blocks)
        stored.push_back(codec.encode(b).stored);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            codec.decode(stored[i++ % stored.size()]));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            kBlockBytes);
}
BENCHMARK(BM_CopDecode);

void
BM_CopDecodeRawPassThrough(benchmark::State &state)
{
    const CopCodec codec(CopConfig::fourByte());
    const auto blocks = blocksOf(BlockCategory::Random, 256);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            codec.decode(blocks[i++ % blocks.size()]));
    }
}
BENCHMARK(BM_CopDecodeRawPassThrough);

void
BM_CoperReconstruct(benchmark::State &state)
{
    const CopCodec codec(CopConfig::fourByte());
    const CoperCodec coper(codec);
    const auto blocks = blocksOf(BlockCategory::Random, 64);
    std::vector<std::pair<CacheBlock, EccEntry>> stored;
    for (const auto &b : blocks) {
        const auto enc = coper.encodeIncompressible(b, 123);
        stored.push_back(
            {enc.stored, EccEntry{true, enc.displaced, enc.check}});
    }
    size_t i = 0;
    for (auto _ : state) {
        const auto &[img, entry] = stored[i++ % stored.size()];
        benchmark::DoNotOptimize(coper.reconstruct(img, entry));
    }
}
BENCHMARK(BM_CoperReconstruct);

void
BM_AliasCheck(benchmark::State &state)
{
    const CopCodec codec(CopConfig::fourByte());
    const auto blocks = blocksOf(BlockCategory::Random, 256);
    size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(codec.isAlias(blocks[i++ % blocks.size()]));
}
BENCHMARK(BM_AliasCheck);

} // namespace
} // namespace cop

BENCHMARK_MAIN();
