/**
 * @file
 * Codec throughput harness: blocks/sec for the full COP encode/decode
 * paths, countValidCodewords, each standalone compression scheme, and
 * Hsiao syndrome generation, over a deterministic 9-category block mix.
 * Results print to stdout and land in bench/results/micro_codec.json
 * (directory overridable via COP_BENCH_RESULTS). BENCH_codec.json at
 * the repo root records the before/after numbers of the word-wise
 * kernel rewrite measured with this exact methodology (regeneration
 * steps in EXPERIMENTS.md).
 *
 * `--quick` shortens each measurement window for the CI perf-smoke
 * job; the numbers are noisier but the regression gate in
 * scripts/check_perf.py leaves margin for that.
 *
 * These are software-throughput proxies for the "simple hardware"
 * claims of paper Sections 3.1-3.2 — the relative ordering
 * (MSB < RLE < FPC work) mirrors the relative logic complexity.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "compress/bdi.hpp"
#include "compress/combined.hpp"
#include "compress/fpc.hpp"
#include "core/codec.hpp"
#include "core/encode_memo.hpp"
#include "run_util.hpp"
#include "workloads/block_gen.hpp"

namespace cop {
namespace {

/**
 * The measurement corpus: @p per_category blocks of each of the nine
 * generator categories, interleaved so every pass sweeps all content
 * kinds uniformly. Fixed seed — identical across runs and machines,
 * and identical to the pre-rewrite baseline run.
 */
std::vector<CacheBlock>
defaultMix(unsigned per_category)
{
    Rng rng(42);
    BlockGenParams params;
    std::vector<std::vector<CacheBlock>> by_cat(kBlockCategories);
    for (unsigned c = 0; c < kBlockCategories; ++c) {
        for (unsigned i = 0; i < per_category; ++i) {
            by_cat[c].push_back(generateBlock(
                static_cast<BlockCategory>(c), params, rng));
        }
    }
    std::vector<CacheBlock> mix;
    mix.reserve(static_cast<size_t>(per_category) * kBlockCategories);
    for (unsigned i = 0; i < per_category; ++i)
        for (unsigned c = 0; c < kBlockCategories; ++c)
            mix.push_back(by_cat[c][i]);
    return mix;
}

double
nowMs()
{
    using Clock = std::chrono::steady_clock;
    return std::chrono::duration<double, std::milli>(
               Clock::now().time_since_epoch())
        .count();
}

/** Keeps the optimiser from deleting measured work. */
volatile unsigned g_sink = 0;

bench::JsonObjectBuilder g_numbers;

/**
 * Run @p pass (one full sweep over the corpus) repeatedly for at least
 * @p target_ms after one untimed warm-up pass; report blocks/sec.
 */
template <typename Pass>
double
measure(const char *name, size_t blocks_per_pass, double target_ms,
        Pass &&pass)
{
    g_sink = g_sink + pass(); // warm-up
    u64 passes = 0;
    const double t0 = nowMs();
    double t1 = t0;
    do {
        g_sink = g_sink + pass();
        ++passes;
        t1 = nowMs();
    } while (t1 - t0 < target_ms);
    const double bps = static_cast<double>(passes * blocks_per_pass) /
                       ((t1 - t0) / 1000.0);
    std::printf("%-18s %12.0f blocks/s\n", name, bps);
    g_numbers.add(name, bps);
    return bps;
}

int
run(bool quick)
{
    const double target_ms = quick ? 80 : 400;
    const auto mix = defaultMix(256);
    const size_t n = mix.size();

    const CopCodec codec4(CopConfig::fourByte());
    const CopCodec codec8(CopConfig::eightByte());

    std::vector<CacheBlock> stored4;
    stored4.reserve(n);
    for (const auto &b : mix)
        stored4.push_back(codec4.encode(b).stored);

    measure("encode_cop4", n, target_ms, [&] {
        unsigned acc = 0;
        for (const auto &b : mix)
            acc += static_cast<unsigned>(codec4.encode(b).status);
        return acc;
    });
    measure("encode_cop8", n, target_ms, [&] {
        unsigned acc = 0;
        for (const auto &b : mix)
            acc += static_cast<unsigned>(codec8.encode(b).status);
        return acc;
    });

    // Steady-state memoized encode: the warm-up pass fills the memo,
    // so timed passes are ~pure hits — the rewrite-of-unchanged-content
    // case the System-level memo exists for.
    EncodeMemo memo(1u << 13);
    measure("encode_cop4_memo", n, target_ms, [&] {
        unsigned acc = 0;
        for (const auto &b : mix)
            acc += static_cast<unsigned>(memo.encode(codec4, b).status);
        return acc;
    });
    g_numbers.add("memo_hit_rate",
                  static_cast<double>(memo.hits()) /
                      static_cast<double>(memo.lookups()));

    measure("decode_cop4", n, target_ms, [&] {
        unsigned acc = 0;
        for (const auto &b : stored4)
            acc += codec4.decode(b).validCodewords;
        return acc;
    });
    measure("count_valid_cop4", n, target_ms, [&] {
        unsigned acc = 0;
        for (const auto &b : mix)
            acc += codec4.countValidCodewords(b);
        return acc;
    });

    const MsbCompressor msb(5, true);
    const RleCompressor rle;
    const TxtCompressor txt;
    const FpcCompressor fpc;
    const BdiCompressor bdi;
    std::array<u8, kBlockBytes + 16> buf{};
    auto compressPass = [&](const BlockCompressor &comp, unsigned budget) {
        unsigned acc = 0;
        for (const auto &b : mix) {
            buf.fill(0);
            BitWriter writer(buf);
            acc += comp.compress(b, budget, writer);
        }
        return acc;
    };
    measure("compress_msb", n, target_ms,
            [&] { return compressPass(msb, 478); });
    measure("compress_rle", n, target_ms,
            [&] { return compressPass(rle, 478); });
    measure("compress_txt", n, target_ms,
            [&] { return compressPass(txt, 478); });
    measure("compress_fpc", n, target_ms,
            [&] { return compressPass(fpc, 560); });
    measure("compress_bdi", n, target_ms,
            [&] { return compressPass(bdi, 478); });

    const HsiaoCode &code128 = codes::full128();
    measure("syndrome128", n, target_ms, [&] {
        unsigned acc = 0;
        for (const auto &b : mix)
            for (unsigned s = 0; s < 4; ++s)
                acc += code128.syndrome(b.bytes().subspan(s * 16, 16));
        return acc;
    });
    const HsiaoCode &code523 = codes::wide523();
    std::vector<std::array<u8, 66>> wide;
    {
        Rng rng(1);
        for (unsigned i = 0; i < 64; ++i) {
            std::array<u8, 66> cw{};
            for (auto &v : cw)
                v = static_cast<u8>(rng.next());
            cw[65] &= 0x07; // bits past n = 523 must stay zero
            wide.push_back(cw);
        }
    }
    measure("syndrome_wide523", wide.size(), target_ms, [&] {
        unsigned acc = 0;
        for (const auto &cw : wide)
            acc += code523.syndrome(cw);
        return acc;
    });

    g_numbers.add("blocks_per_pass", static_cast<u64>(n));
    bench::JsonObjectBuilder top;
    top.add("bench", std::string("micro_codec"));
    top.add("quick", static_cast<u64>(quick ? 1 : 0));
    top.addRaw("throughput_blocks_per_sec", g_numbers.str());
    bench::writeResultsFile("micro_codec.json", top.str());
    return 0;
}

} // namespace
} // namespace cop

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else {
            std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
            return 2;
        }
    }
    return cop::run(quick);
}
