/**
 * @file
 * Energy comparison backing the paper's motivation (Section 1): an ECC
 * DIMM pays a 9th chip on every access and in standby; the ECC-region
 * approach keeps 8 chips but adds DRAM traffic; COP keeps both the
 * chip count and the access count. The bandwidth-compression column
 * (COP+BW) additionally ships compressed blocks in shortened bursts,
 * so burst and I/O energy scale with beats actually transferred.
 * Reported as memory-system energy per kilo-instruction for a
 * representative benchmark slice; the (benchmark x scheme) grid
 * executes on the experiment runner.
 */

#include "dram/energy.hpp"
#include "run_util.hpp"

using namespace cop;

namespace {

SystemConfig
bwConfig(ControllerKind kind)
{
    SystemConfig cfg = bench::paperConfig(kind);
    cfg.bandwidthCompression = true;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    static const char *names[] = {"mcf", "lbm", "omnetpp",
                                  "streamcluster"};
    static const ControllerKind kinds[] = {
        ControllerKind::Unprotected, ControllerKind::EccDimm,
        ControllerKind::EccRegion, ControllerKind::Cop4,
        ControllerKind::CopEr};
    const DramEnergyModel model;

    bench::GridRunner grid("energy_comparison", argc, argv);
    for (const char *name : names) {
        const WorkloadProfile &p = WorkloadRegistry::byName(name);
        for (const ControllerKind kind : kinds)
            grid.add(p, kind);
        grid.add(p, bwConfig(ControllerKind::Cop4), "COP+BW");
    }
    grid.run();

    std::printf("Memory-system energy (nJ per kilo-instruction), "
                "4-core Table 1 system\n\n");
    std::printf("%-14s %10s %10s %10s %10s %10s %10s\n", "benchmark",
                "Unprot.", "ECC DIMM", "ECC Reg.", "COP", "COP-ER",
                "COP+BW");
    std::printf("%s\n", std::string(81, '-').c_str());

    auto njPerKi = [&model](const SystemResults &r, unsigned chips) {
        const DramEnergyReport e = model.evaluate(r.dram, r.cycles, chips);
        return e.totalMj() * 1e6 /
               (static_cast<double>(r.instructions) / 1000.0);
    };

    std::vector<double> sums(6, 0.0);
    for (const char *name : names) {
        const WorkloadProfile &p = WorkloadRegistry::byName(name);
        std::printf("%-14s", name);
        unsigned col = 0;
        for (const ControllerKind kind : kinds) {
            const SystemResults &r = grid.result(p, kind);
            const unsigned chips =
                kind == ControllerKind::EccDimm ? 9 : 8;
            const double nj_per_ki = njPerKi(r, chips);
            std::printf(" %10.1f", nj_per_ki);
            sums[col++] += nj_per_ki;
        }
        const double bw_nj = njPerKi(grid.result(p.name, "COP+BW"), 8);
        std::printf(" %10.1f\n", bw_nj);
        sums[col] += bw_nj;
    }
    std::printf("%s\n", std::string(81, '-').c_str());
    std::printf("%-14s", "mean");
    for (const double s : sums)
        std::printf(" %10.1f", s / 4.0);
    std::printf("\n\nECC DIMM pays the 9th chip everywhere (~12.5%% "
                "dynamic + background);\nECC Reg. pays extra accesses "
                "and longer runtime; COP pays neither; COP+BW\nalso "
                "saves burst + I/O energy on every shortened "
                "transfer.\n");

    grid.addScalar("mean_nj_per_ki_unprot", sums[0] / 4.0);
    grid.addScalar("mean_nj_per_ki_eccdimm", sums[1] / 4.0);
    grid.addScalar("mean_nj_per_ki_eccreg", sums[2] / 4.0);
    grid.addScalar("mean_nj_per_ki_cop", sums[3] / 4.0);
    grid.addScalar("mean_nj_per_ki_coper", sums[4] / 4.0);
    grid.addScalar("mean_nj_per_ki_cop_bw", sums[5] / 4.0);
    grid.writeJson();
    return 0;
}
