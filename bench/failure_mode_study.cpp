/**
 * @file
 * Field failure-mode study (paper Section 4's discussion of Sridharan
 * & Liberty's data): fraction of each failure mode fully recovered by
 * each scheme, Monte-Carlo through the real decoders. Quantifies the
 * paper's qualitative claims — single-bit and single-column failures
 * are corrected by SECDED/COP alike; same-word multi-bit and row
 * failures defeat both; only the chipkill extension absorbs a dead
 * chip.
 */

#include "reliability/failure_modes.hpp"
#include "reliability/fault_injector.hpp"
#include "workloads/block_gen.hpp"

using namespace cop;

int
main()
{
    constexpr u64 kTrials = 4000;
    FaultInjector injector(0x57CDu);
    Rng rng(1);
    BlockGenParams params;

    // Compressible data for COP/chipkill (19+ shared MSBs — chipkill's
    // deep budget is out of reach for FP mantissas), incompressible
    // for COP-ER.
    CacheBlock fp;
    for (unsigned w = 0; w < 8; ++w)
        fp.setWord64(w, 0x0000123400000000ULL + rng.below(1u << 24));
    CacheBlock raw = generateBlock(BlockCategory::Random, params, rng);
    const CopCodec cop4(CopConfig::fourByte());
    while (cop4.encode(raw).status != EncodeStatus::Unprotected)
        raw = generateBlock(BlockCategory::Random, params, rng);
    const CopCodec cop8(CopConfig::eightByte());
    const CoperCodec coper(cop4);
    const ChipkillCodec chipkill;

    std::printf("Failure-mode study: %% of events fully recovered "
                "(%llu trials/cell)\n",
                static_cast<unsigned long long>(kTrials));
    std::printf("field fractions after Sridharan & Liberty (paper "
                "Section 4)\n\n");
    std::printf("%-18s %6s %9s %8s %8s %8s %9s\n", "mode", "field",
                "ECC DIMM", "COP-4B", "COP-8B", "COP-ER", "chipkill");
    std::printf("%s\n", std::string(72, '-').c_str());

    for (unsigned m = 0; m < kFailureModes; ++m) {
        const auto mode = static_cast<FailureMode>(m);
        const FaultInjector::FlipGen gen =
            [mode](Rng &r, std::vector<unsigned> &bits) {
                generateFailureFlips(mode, r, bits);
            };
        auto recovered = [](const InjectionOutcome &o) {
            return 100.0 * (o.benign + o.corrected) / o.trials;
        };

        const double dimm =
            recovered(injector.injectEccDimmPattern(raw, gen, kTrials));
        const double c4 =
            recovered(injector.injectCopPattern(cop4, fp, gen, kTrials));
        const double c8 =
            recovered(injector.injectCopPattern(cop8, fp, gen, kTrials));
        const double er = recovered(
            injector.injectCopErPattern(coper, raw, gen, kTrials));
        const double ck = recovered(
            injector.injectChipkillPattern(chipkill, fp, gen, kTrials));

        std::printf("%-18s %5.1f%% %8.1f%% %7.1f%% %7.1f%% %7.1f%% "
                    "%8.1f%%\n",
                    failureModeName(mode),
                    100 * failureModeFieldFraction(mode), dimm, c4, c8,
                    er, ck);
    }

    std::printf("\nReading: SECDED-class schemes (ECC DIMM, COP, "
                "COP-ER) recover single-bit and\nsingle-column events "
                "and lose same-word/row events — the paper's premise "
                "for\nusing a single-bit failure model. Only the "
                "chipkill extension survives a dead\nchip. (COP "
                "protects its compressible majority; its "
                "incompressible residue is\nthe Figure 10 gap.)\n");
    return 0;
}
