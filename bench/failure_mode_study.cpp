/**
 * @file
 * Field failure-mode study (paper Section 4's discussion of Sridharan
 * & Liberty's data): fraction of each failure mode fully recovered by
 * each scheme, Monte-Carlo through the real decoders. Quantifies the
 * paper's qualitative claims — single-bit and single-column failures
 * are corrected by SECDED/COP alike; same-word multi-bit and row
 * failures defeat both; only the chipkill extension absorbs a dead
 * chip. Every (mode x scheme) campaign is an independent cell on the
 * experiment runner with its own injector stream.
 */

#include "reliability/failure_modes.hpp"
#include "reliability/fault_injector.hpp"
#include "run_util.hpp"
#include "workloads/block_gen.hpp"

using namespace cop;

int
main(int argc, char **argv)
{
    constexpr u64 kTrials = 4000;
    Rng rng(1);
    BlockGenParams params;

    // Compressible data for COP/chipkill (19+ shared MSBs — chipkill's
    // deep budget is out of reach for FP mantissas), incompressible
    // for COP-ER.
    CacheBlock fp;
    for (unsigned w = 0; w < 8; ++w)
        fp.setWord64(w, 0x0000123400000000ULL + rng.below(1u << 24));
    CacheBlock raw = generateBlock(BlockCategory::Random, params, rng);
    const CopCodec cop4(CopConfig::fourByte());
    while (cop4.encode(raw).status != EncodeStatus::Unprotected)
        raw = generateBlock(BlockCategory::Random, params, rng);
    const CopCodec cop8(CopConfig::eightByte());
    const CoperCodec coper(cop4);
    const ChipkillCodec chipkill;

    constexpr unsigned kSchemes = 5;
    static const char *scheme_names[kSchemes] = {
        "ECC DIMM", "COP-4B", "COP-8B", "COP-ER", "chipkill"};

    // One cell per (mode, scheme), each with a deterministic private
    // injector stream so cells parallelise bit-identically.
    const RunnerOptions opts = parseRunnerOptions(argc, argv);
    const std::vector<double> recovered_pct = runCollected<double>(
        kFailureModes * kSchemes,
        [&](size_t cell) {
            const auto mode = static_cast<FailureMode>(cell / kSchemes);
            const unsigned scheme = cell % kSchemes;
            const FaultInjector::FlipGen gen =
                [mode](Rng &r, std::vector<unsigned> &bits) {
                    generateFailureFlips(mode, r, bits);
                };
            FaultInjector injector(0x57CDu + cell);
            InjectionOutcome out;
            switch (scheme) {
              case 0:
                out = injector.injectEccDimmPattern(raw, gen, kTrials);
                break;
              case 1:
                out = injector.injectCopPattern(cop4, fp, gen, kTrials);
                break;
              case 2:
                out = injector.injectCopPattern(cop8, fp, gen, kTrials);
                break;
              case 3:
                out = injector.injectCopErPattern(coper, raw, gen,
                                                  kTrials);
                break;
              default:
                out = injector.injectChipkillPattern(chipkill, fp, gen,
                                                     kTrials);
                break;
            }
            return 100.0 * (out.benign + out.corrected) / out.trials;
        },
        opts);

    std::printf("Failure-mode study: %% of events fully recovered "
                "(%llu trials/cell)\n",
                static_cast<unsigned long long>(kTrials));
    std::printf("field fractions after Sridharan & Liberty (paper "
                "Section 4)\n\n");
    std::printf("%-18s %6s %9s %8s %8s %8s %9s\n", "mode", "field",
                "ECC DIMM", "COP-4B", "COP-8B", "COP-ER", "chipkill");
    std::printf("%s\n", std::string(72, '-').c_str());

    for (unsigned m = 0; m < kFailureModes; ++m) {
        const auto mode = static_cast<FailureMode>(m);
        const double *row = &recovered_pct[m * kSchemes];
        std::printf("%-18s %5.1f%% %8.1f%% %7.1f%% %7.1f%% %7.1f%% "
                    "%8.1f%%\n",
                    failureModeName(mode),
                    100 * failureModeFieldFraction(mode), row[0], row[1],
                    row[2], row[3], row[4]);
    }

    std::printf("\nReading: SECDED-class schemes (ECC DIMM, COP, "
                "COP-ER) recover single-bit and\nsingle-column events "
                "and lose same-word/row events — the paper's premise "
                "for\nusing a single-bit failure model. Only the "
                "chipkill extension survives a dead\nchip. (COP "
                "protects its compressible majority; its "
                "incompressible residue is\nthe Figure 10 gap.)\n");

    std::string cells;
    for (unsigned m = 0; m < kFailureModes; ++m) {
        for (unsigned s = 0; s < kSchemes; ++s) {
            if (m + s)
                cells += ',';
            bench::JsonObjectBuilder cell;
            cell.add("mode", std::string(failureModeName(
                                 static_cast<FailureMode>(m))));
            cell.add("scheme", std::string(scheme_names[s]));
            cell.add("recovered_pct", recovered_pct[m * kSchemes + s]);
            cells += cell.str();
        }
    }
    bench::JsonObjectBuilder top;
    top.add("bench", std::string("failure_mode_study"));
    top.add("trials_per_cell", kTrials);
    top.addRaw("cells", "[" + cells + "]");
    bench::writeResultsFile("failure_mode_study.json", top.str());
    return 0;
}
