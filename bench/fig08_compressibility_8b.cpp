/**
 * @file
 * Figure 8 reproduction: fraction of accessed blocks compressible when
 * freeing 8 bytes per 64-byte block — MSB (10-bit shifted compare),
 * RLE, FPC, and the combined MSB+RLE scheme, for the Table 2
 * memory-intensive benchmarks plus suite averages. (TXT cannot free 8
 * bytes and is absent, as in the paper.)
 */

#include "bench_util.hpp"
#include "compress/combined.hpp"
#include "compress/fpc.hpp"

using namespace cop;

int
main()
{
    const MsbCompressor msb(10, true);
    const RleCompressor rle;
    const FpcCompressor fpc;
    const CombinedCompressor combined(8);
    const unsigned budget = combined.streamBudget(); // 446 bits

    bench::printHeader(
        "Figure 8: compressible blocks when freeing 8 bytes per block",
        {"MSB", "RLE", "FPC", "MSB+RLE"});

    bench::SuiteAverager avg;
    for (const auto *p : WorkloadRegistry::memoryIntensive()) {
        const auto blocks = bench::sampleFor(*p);
        unsigned comb_ok = 0;
        for (const auto &b : blocks)
            comb_ok += combined.compressible(b);
        const std::vector<double> row = {
            bench::fractionCompressible(blocks, msb, budget),
            bench::fractionCompressible(blocks, rle, budget),
            bench::fractionCompressible(blocks, fpc, budget),
            static_cast<double>(comb_ok) / blocks.size(),
        };
        bench::printPctRow(p->name, row);
        avg.add(*p, row);
    }

    std::printf("%s\n", std::string(16 + 4 * 13, '-').c_str());
    bench::printPctRow("SPEC2006",
                       bench::SuiteAverager::average([&] {
                           auto rows = avg.intRows;
                           rows.insert(rows.end(), avg.fpRows.begin(),
                                       avg.fpRows.end());
                           return rows;
                       }()));
    bench::printPctRow("PARSEC",
                       bench::SuiteAverager::average(avg.parsecRows));
    bench::printPctRow("Average",
                       bench::SuiteAverager::average(avg.allRows));
    return 0;
}
