/**
 * @file
 * Shared helpers for the figure/table reproduction benches: fixed-width
 * table printing, averages, and block sampling from workload profiles.
 */

#ifndef COP_BENCH_BENCH_UTIL_HPP
#define COP_BENCH_BENCH_UTIL_HPP

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "compress/compressor.hpp"
#include "workloads/trace_gen.hpp"

namespace cop::bench {

/** Blocks sampled per benchmark for compressibility experiments. */
inline constexpr unsigned kSampleBlocks = 20000;

/** Draw the standard block sample for a profile. */
inline std::vector<CacheBlock>
sampleFor(const WorkloadProfile &profile, u64 seed = 1)
{
    const BlockContentPool pool(profile);
    return pool.sample(kSampleBlocks, seed);
}

/** Fraction of blocks a compressor fits into @p budget bits. */
inline double
fractionCompressible(const std::vector<CacheBlock> &blocks,
                     const BlockCompressor &comp, unsigned budget)
{
    unsigned ok = 0;
    for (const auto &b : blocks)
        ok += comp.canCompress(b, budget);
    return static_cast<double>(ok) / blocks.size();
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0;
    double s = 0;
    for (const double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

/** Geometric mean. */
inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0;
    double s = 0;
    for (const double x : v)
        s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
}

/** Print a table header: benchmark column plus named value columns. */
inline void
printHeader(const char *title, const std::vector<std::string> &columns)
{
    std::printf("%s\n", title);
    std::printf("%-16s", "benchmark");
    for (const auto &c : columns)
        std::printf(" %12s", c.c_str());
    std::printf("\n");
    for (unsigned i = 0; i < 16 + columns.size() * 13; ++i)
        std::printf("-");
    std::printf("\n");
}

/** Print one row of percentages. */
inline void
printPctRow(const std::string &name, const std::vector<double> &values)
{
    std::printf("%-16s", name.c_str());
    for (const double v : values)
        std::printf(" %11.1f%%", v * 100.0);
    std::printf("\n");
}

/** Print one row of raw doubles. */
inline void
printRow(const std::string &name, const std::vector<double> &values,
         const char *fmt = " %12.3f")
{
    std::printf("%-16s", name.c_str());
    for (const double v : values)
        std::printf(fmt, v);
    std::printf("\n");
}

/** Per-suite and overall averaging over (profile, row) pairs. */
struct SuiteAverager
{
    std::vector<double> specInt, specFp, parsec, all;
    unsigned columns = 0;
    std::vector<std::vector<double>> intRows, fpRows, parsecRows, allRows;

    void
    add(const WorkloadProfile &p, const std::vector<double> &row)
    {
        allRows.push_back(row);
        switch (p.suite) {
          case Suite::SpecInt: intRows.push_back(row); break;
          case Suite::SpecFp: fpRows.push_back(row); break;
          case Suite::Parsec: parsecRows.push_back(row); break;
        }
    }

    static std::vector<double>
    average(const std::vector<std::vector<double>> &rows)
    {
        if (rows.empty())
            return {};
        std::vector<double> avg(rows[0].size(), 0.0);
        for (const auto &row : rows) {
            for (size_t i = 0; i < row.size(); ++i)
                avg[i] += row[i];
        }
        for (double &v : avg)
            v /= static_cast<double>(rows.size());
        return avg;
    }
};

} // namespace cop::bench

#endif // COP_BENCH_BENCH_UTIL_HPP
