/**
 * @file
 * Table 3 reproduction: valid code words found in *incompressible*
 * data blocks (after the static hash), plus the analytic alias
 * probabilities of Section 3.1. Blocks with >= 3 valid code words are
 * aliases and must stay in the LLC; the paper observed a single
 * 3-code-word block and none with 4 across all benchmarks.
 */

#include <cinttypes>

#include "bench_util.hpp"
#include "core/codec.hpp"

using namespace cop;

int
main()
{
    const CopCodec codec(CopConfig::fourByte());

    // ------------------------------------------------------------------
    // Analytic section (Section 3.1).
    // ------------------------------------------------------------------
    std::printf("Section 3.1 analytic alias probabilities "
                "((128,120) SECDED):\n");
    const double p_word = 1.0 / 256.0;
    std::printf("  P(random 128-bit word is a valid code word) = "
                "2^-8 = %.2f%%\n", p_word * 100);
    double p3 = 0;
    for (int k = 3; k <= 4; ++k) {
        double comb = (k == 3) ? 4.0 : 1.0;
        p3 += comb * std::pow(p_word, k) *
              std::pow(1 - p_word, 4 - k);
    }
    std::printf("  P(random 512-bit block has >= 3 valid words) = "
                "%.7f%%  (paper: 0.00002%%)\n\n", p3 * 100);

    // ------------------------------------------------------------------
    // Monte-Carlo census over incompressible blocks from all Table 2
    // benchmarks (plus uniform random blocks as a reference).
    // ------------------------------------------------------------------
    std::array<u64, 5> histogram{};
    u64 incompressible = 0;
    for (const auto *p : WorkloadRegistry::memoryIntensive()) {
        const BlockContentPool pool(*p);
        for (const auto &b : pool.sample(bench::kSampleBlocks, 3)) {
            if (codec.compressor().compressible(b))
                continue;
            ++incompressible;
            ++histogram[codec.countValidCodewords(b)];
        }
    }

    std::printf("Table 3: code words in incompressible data blocks "
                "(%" PRIu64 " blocks sampled)\n", incompressible);
    std::printf("%-16s %16s %20s\n", "# code words", "pct of blocks",
                "equiv 8GB blocks");
    const double total_8gb = (8ULL << 30) / kBlockBytes;
    for (unsigned k = 1; k <= 4; ++k) {
        const double pct =
            incompressible
                ? static_cast<double>(histogram[k]) / incompressible
                : 0.0;
        std::printf("%-16u %15.6f%% %20.0f\n", k, pct * 100,
                    pct * total_8gb);
    }
    std::printf("\nPaper row for reference: 1 -> 1.4%%, 2 -> 0.005%%, "
                "3 -> 0.000002%%, 4 -> 0%%.\n");
    std::printf("(>= 3 valid code words = incompressible alias: pinned "
                "in the LLC, never in DRAM.)\n");
    return 0;
}
