/**
 * @file
 * Future-work extension bench (paper Section 5): chipkill-COP. How
 * much coverage survives when compression must free 16 bytes per block
 * for per-beat RS(8,6) symbol correction — and what that buys: any
 * single-chip (x8) failure corrected inline, no ECC DIMM. The
 * per-benchmark coverage cells execute on the experiment runner.
 */

#include "core/chipkill_codec.hpp"
#include "run_util.hpp"

using namespace cop;

int
main(int argc, char **argv)
{
    const ChipkillCodec chipkill;
    const CopCodec cop4(CopConfig::fourByte());

    const auto profiles = WorkloadRegistry::memoryIntensive();
    const RunnerOptions opts = parseRunnerOptions(argc, argv);

    struct Row
    {
        double cop = 0, ck = 0;
    };
    const std::vector<Row> rows = runCollected<Row>(
        profiles.size(),
        [&](size_t i) {
            const auto blocks = bench::sampleFor(*profiles[i]);
            unsigned cop_ok = 0, ck_ok = 0;
            for (const auto &b : blocks) {
                cop_ok += cop4.compressor().compressible(b);
                ck_ok += chipkill.compressible(b);
            }
            return Row{static_cast<double>(cop_ok) / blocks.size(),
                       static_cast<double>(ck_ok) / blocks.size()};
        },
        opts);

    bench::printHeader(
        "Extension: chipkill-COP coverage (free 16 bytes, RS(8,6) per "
        "beat) vs COP 4-byte",
        {"COP 4-byte", "chipkill"});

    std::vector<double> cop_col, ck_col;
    for (size_t i = 0; i < profiles.size(); ++i) {
        bench::printPctRow(profiles[i]->name, {rows[i].cop, rows[i].ck});
        cop_col.push_back(rows[i].cop);
        ck_col.push_back(rows[i].ck);
    }
    std::printf("%s\n", std::string(16 + 2 * 13, '-').c_str());
    bench::printPctRow("Average",
                       {bench::mean(cop_col), bench::mean(ck_col)});

    // --------------------------------------------------------------
    // Chip-failure Monte Carlo on protected blocks.
    // --------------------------------------------------------------
    Rng rng(0xC41Bu);
    CacheBlock data;
    for (unsigned w = 0; w < 8; ++w)
        data.setWord64(w, 0x0000777000000000ULL + rng.below(1u << 24));
    const CopEncodeResult enc = chipkill.encode(data);
    COP_ASSERT(enc.isProtected());

    constexpr int kTrials = 20000;
    unsigned recovered = 0;
    for (int t = 0; t < kTrials; ++t) {
        CacheBlock stored = enc.stored;
        const unsigned chip = rng.below(8);
        for (unsigned beat = 0; beat < 8; ++beat) {
            stored.setByte(beat * 8 + chip,
                           stored.byte(beat * 8 + chip) ^
                               static_cast<u8>(rng.range(1, 255)));
        }
        recovered += chipkill.decode(stored).data == data;
    }
    std::printf("\nWhole-chip (x8) failure recovery on protected "
                "blocks: %.2f%% of %d trials\n",
                100.0 * recovered / kTrials, kTrials);
    std::printf("Coverage is the cost: a 25%% compression target "
                "protects far fewer blocks\nthan COP's 6.25%% — the "
                "quantitative version of the trade-off the paper\n"
                "leaves to future work.\n");

    std::string cells;
    for (size_t i = 0; i < profiles.size(); ++i) {
        if (i)
            cells += ',';
        bench::JsonObjectBuilder cell;
        cell.add("benchmark", profiles[i]->name);
        cell.add("cop4_coverage", rows[i].cop);
        cell.add("chipkill_coverage", rows[i].ck);
        cells += cell.str();
    }
    bench::JsonObjectBuilder top;
    top.add("bench", std::string("extension_chipkill"));
    top.add("avg_cop4_coverage", bench::mean(cop_col));
    top.add("avg_chipkill_coverage", bench::mean(ck_col));
    top.add("chip_failure_recovery",
            static_cast<double>(recovered) / kTrials);
    top.addRaw("cells", "[" + cells + "]");
    bench::writeResultsFile("extension_chipkill.json", top.str());
    return 0;
}
