/**
 * @file
 * Future-work extension bench (paper Section 5): chipkill-COP. How
 * much coverage survives when compression must free 16 bytes per block
 * for per-beat RS(8,6) symbol correction — and what that buys: any
 * single-chip (x8) failure corrected inline, no ECC DIMM.
 */

#include "bench_util.hpp"
#include "core/chipkill_codec.hpp"

using namespace cop;

int
main()
{
    const ChipkillCodec chipkill;
    const CopCodec cop4(CopConfig::fourByte());

    bench::printHeader(
        "Extension: chipkill-COP coverage (free 16 bytes, RS(8,6) per "
        "beat) vs COP 4-byte",
        {"COP 4-byte", "chipkill"});

    std::vector<double> cop_col, ck_col;
    for (const auto *p : WorkloadRegistry::memoryIntensive()) {
        const auto blocks = bench::sampleFor(*p);
        unsigned cop_ok = 0, ck_ok = 0;
        for (const auto &b : blocks) {
            cop_ok += cop4.compressor().compressible(b);
            ck_ok += chipkill.compressible(b);
        }
        const std::vector<double> row = {
            static_cast<double>(cop_ok) / blocks.size(),
            static_cast<double>(ck_ok) / blocks.size(),
        };
        bench::printPctRow(p->name, row);
        cop_col.push_back(row[0]);
        ck_col.push_back(row[1]);
    }
    std::printf("%s\n", std::string(16 + 2 * 13, '-').c_str());
    bench::printPctRow("Average",
                       {bench::mean(cop_col), bench::mean(ck_col)});

    // --------------------------------------------------------------
    // Chip-failure Monte Carlo on protected blocks.
    // --------------------------------------------------------------
    Rng rng(0xC41Bu);
    CacheBlock data;
    for (unsigned w = 0; w < 8; ++w)
        data.setWord64(w, 0x0000777000000000ULL + rng.below(1u << 24));
    const CopEncodeResult enc = chipkill.encode(data);
    COP_ASSERT(enc.isProtected());

    constexpr int kTrials = 20000;
    unsigned recovered = 0;
    for (int t = 0; t < kTrials; ++t) {
        CacheBlock stored = enc.stored;
        const unsigned chip = rng.below(8);
        for (unsigned beat = 0; beat < 8; ++beat) {
            stored.setByte(beat * 8 + chip,
                           stored.byte(beat * 8 + chip) ^
                               static_cast<u8>(rng.range(1, 255)));
        }
        recovered += chipkill.decode(stored).data == data;
    }
    std::printf("\nWhole-chip (x8) failure recovery on protected "
                "blocks: %.2f%% of %d trials\n",
                100.0 * recovered / kTrials, kTrials);
    std::printf("Coverage is the cost: a 25%% compression target "
                "protects far fewer blocks\nthan COP's 6.25%% — the "
                "quantitative version of the trade-off the paper\n"
                "leaves to future work.\n");
    return 0;
}
