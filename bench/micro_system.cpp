/**
 * @file
 * End-to-end system throughput harness: simulated epochs/sec and LLC
 * misses/sec for a full Table-1 System per memory-controller kind, on
 * one memory-intensive profile. Where micro_codec measures the codec
 * kernels in isolation, this measures everything the grid runner pays
 * for per cell — trace generation, the LLC, functional memory
 * (BlockContentPool), the controller decode/encode paths and the DRAM
 * timing model — so wins and regressions in any layer show up here.
 *
 * Construction is excluded from the timed region: each pass builds its
 * System untimed and times run() alone, so the numbers isolate the
 * steady-state simulation loop from allocator noise (the loop is what
 * the sharded core accelerates; a grid cell pays construction once but
 * runs tens of thousands of epochs).
 *
 * Results print to stdout and land in bench/results/micro_system.json
 * (directory overridable via COP_BENCH_RESULTS). BENCH_system.json at
 * the repo root records the before/after numbers of the end-to-end
 * throughput work measured with this exact methodology.
 *
 * `--threads N` (N > 1) switches to the thread-sweep mode for the
 * sharded simulation core (SystemConfig::simThreads): serial and
 * N-thread passes alternate per scheme, and the results — wall
 * speedup, plus the deterministic offload telemetry the modeled
 * speedup derives from — land in bench/results/
 * micro_system_threads.json. The modeled speedup is Amdahl over the
 * gprof-measured offloadable share of a COP cell (~53% of run() is
 * content generation + codec encode/decode, see BENCH_system.json)
 * scaled by the warm-store hit rate; unlike the wall ratio it is a
 * pure function of the simulation and thus gateable on any host,
 * including single-CPU CI containers where a wall-clock speedup is
 * physically impossible.
 *
 * `--quick` shortens the run for the CI perf-smoke job; the numbers
 * are noisier but the regression gate in scripts/check_perf.py leaves
 * margin for that.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "run_util.hpp"

namespace cop {
namespace {

double
nowMs()
{
    using Clock = std::chrono::steady_clock;
    return std::chrono::duration<double, std::milli>(
               Clock::now().time_since_epoch())
        .count();
}

struct KindRow
{
    ControllerKind kind;
    const char *key; ///< JSON key (stable across schemes renames).
};

constexpr KindRow kKinds[] = {
    {ControllerKind::Unprotected, "unprot"},
    {ControllerKind::EccDimm, "ecc_dimm"},
    {ControllerKind::EccRegion, "ecc_region"},
    {ControllerKind::Cop4, "cop4"},
    {ControllerKind::Cop8, "cop8"},
    {ControllerKind::CopEr, "coper"},
    {ControllerKind::CopErNaive, "coper_naive"},
};

/**
 * Offload-model weights: relative cost of one warm-store-covered unit
 * of work, from BENCH_codec.json kernel timings (encode = 1, decode =
 * 0.54, content generation = 0.35).
 */
constexpr double kWeightEncode = 1.0;
constexpr double kWeightDecode = 0.54;
constexpr double kWeightContent = 0.35;

/**
 * gprof-measured share of a COP-scheme run() spent in offloadable work
 * (epoch generation + content generation + encode + decode; the rest —
 * LLC, DRAM timing, controller bookkeeping — is serial by the
 * byte-identity design). See BENCH_system.json.
 */
constexpr double kOffloadableShare = 0.53;

/** Accumulated measurements of one (scheme, simThreads) series. */
struct Series
{
    double timedMs = 0;
    u64 passes = 0;
    u64 misses = 0;
    u64 poolCalls = 0;
    u64 poolHits = 0;
    double ipc = 0;       ///< Last pass (deterministic, so any pass).
    ShardTelemetry telem; ///< Last pass (deterministic, so any pass).
};

/** One untimed-construction / timed-run pass. */
void
onePass(const WorkloadProfile &profile, const SystemConfig &cfg,
        Series &series)
{
    System sys(profile, cfg);
    const double t0 = nowMs();
    const SystemResults r = sys.run();
    series.timedMs += nowMs() - t0;
    ++series.passes;
    series.misses += r.llcMisses;
    series.poolCalls += r.poolBlockForCalls;
    series.poolHits += r.poolContentCacheHits;
    series.ipc = r.ipc;
    series.telem = sys.shardTelemetry();
}

double
epochsPerSec(const Series &series, const SystemConfig &cfg)
{
    if (series.timedMs <= 0)
        return 0.0;
    const double epochs = static_cast<double>(
        series.passes * cfg.epochsPerCore * cfg.cores);
    return epochs / (series.timedMs / 1000.0);
}

/**
 * Weighted warm-store hit rate of a sharded series: how much of the
 * offloadable work the workers actually delivered ahead of time.
 */
double
offloadHitRate(const ShardTelemetry &t)
{
    const double lookups = kWeightEncode *
                               static_cast<double>(t.warmEncodeLookups) +
                           kWeightDecode *
                               static_cast<double>(t.warmDecodeLookups) +
                           kWeightContent *
                               static_cast<double>(t.warmContentLookups);
    if (lookups <= 0)
        return 0.0;
    const double hits =
        kWeightEncode * static_cast<double>(t.warmEncodeHits) +
        kWeightDecode * static_cast<double>(t.warmDecodeHits) +
        kWeightContent * static_cast<double>(t.warmContentHits);
    return hits / lookups;
}

/**
 * Amdahl ceiling: serial time 1 shrinks to 1 - share*hit_rate when
 * every warm-hit unit of work is fully hidden behind the merge loop.
 * Deterministic — a regression gate that works on a 1-CPU host.
 */
double
modeledSpeedup(const ShardTelemetry &t)
{
    const double hidden = kOffloadableShare * offloadHitRate(t);
    return 1.0 / (1.0 - hidden);
}

double
rate(u64 hits, u64 lookups)
{
    return lookups ? static_cast<double>(hits) /
                         static_cast<double>(lookups)
                   : 0.0;
}

int
run(bool quick, const std::string &profile_name, unsigned threads)
{
    // Fixed epoch count per System run: every pass constructs a fresh
    // System (untimed), runs it to completion and times run() alone.
    // Deliberately independent of COP_BENCH_EPOCHS so the measurement
    // is not silently reconfigurable.
    const u64 epochs_per_core = quick ? 250 : 1500;
    const double target_ms = quick ? 200 : 1500;
    const WorkloadProfile &profile =
        WorkloadRegistry::byName(profile_name);
    const bool sweep = threads > 1;

    bench::JsonObjectBuilder eps_serial;
    bench::JsonObjectBuilder eps_threaded;
    bench::JsonObjectBuilder eps_fast;
    bench::JsonObjectBuilder wall_speedup;
    bench::JsonObjectBuilder fast_wall_speedup;
    bench::JsonObjectBuilder ft_divergence;
    bench::JsonObjectBuilder hit_rate_json;
    bench::JsonObjectBuilder hit_rate_encode;
    bench::JsonObjectBuilder hit_rate_decode;
    bench::JsonObjectBuilder hit_rate_content;
    bench::JsonObjectBuilder conflicts_json;
    bench::JsonObjectBuilder modeled_json;
    bench::JsonObjectBuilder misses_per_sec;
    bench::JsonObjectBuilder blockfor_hit_rate;
    double modeled_cop4 = 0;
    double modeled_coper = 0;
    double fast_cop4 = 0;
    double fast_coper = 0;
    double ft_div_max = 0;

    if (sweep)
        std::printf("%-12s %12s %12s %7s %7s %7s %7s %8s\n", "scheme",
                    "epochs/s(1)", "epochs/s(N)", "wall x", "model x",
                    "fast x", "offl%", "ft div%");
    else
        std::printf("%-12s %14s %14s %12s\n", "scheme", "epochs/s",
                    "misses/s", "pool hit%");

    for (const KindRow &row : kKinds) {
        SystemConfig cfg = bench::paperConfig(row.kind);
        cfg.epochsPerCore = epochs_per_core;
        SystemConfig threaded_cfg = cfg;
        threaded_cfg.simThreads = threads;
        SystemConfig fast_cfg = threaded_cfg;
        fast_cfg.fastTiming = true;

        Series serial;
        Series threaded;
        Series fast;
        {
            // Untimed warm-up pass (allocator, page cache).
            System sys(profile, cfg);
            (void)sys.run();
        }
        // Alternate serial and threaded passes so OS noise drifts into
        // both series equally (the threaded series is skipped entirely
        // in plain mode).
        do {
            onePass(profile, cfg, serial);
            if (sweep) {
                onePass(profile, threaded_cfg, threaded);
                onePass(profile, fast_cfg, fast);
            }
        } while (serial.timedMs < target_ms);

        const double eps = epochsPerSec(serial, cfg);
        if (sweep) {
            const double eps_n = epochsPerSec(threaded, threaded_cfg);
            const double eps_f = epochsPerSec(fast, fast_cfg);
            const double ratio = eps > 0 ? eps_n / eps : 0.0;
            const double fast_ratio = eps > 0 ? eps_f / eps : 0.0;
            // The divergence the relaxed mode trades for throughput:
            // fast-timing IPC vs. the simThreads=1 oracle's, relative.
            // Deterministic (both IPCs are), so gateable on any host.
            const double ft_div =
                serial.ipc > 0
                    ? std::abs(fast.ipc - serial.ipc) / serial.ipc
                    : 0.0;
            const double hit_rate = offloadHitRate(threaded.telem);
            const double modeled = modeledSpeedup(threaded.telem);
            const ShardTelemetry &t = threaded.telem;
            std::printf("%-12s %12.0f %12.0f %6.2fx %6.2fx %6.2fx "
                        "%6.1f%% %7.2f%%\n",
                        row.key, eps, eps_n, ratio, modeled, fast_ratio,
                        hit_rate * 100.0, ft_div * 100.0);
            eps_serial.add(row.key, eps);
            eps_threaded.add(row.key, eps_n);
            eps_fast.add(row.key, eps_f);
            wall_speedup.add(row.key, ratio);
            fast_wall_speedup.add(row.key, fast_ratio);
            ft_divergence.add(row.key, ft_div);
            hit_rate_json.add(row.key, hit_rate);
            hit_rate_encode.add(
                row.key, rate(t.warmEncodeHits, t.warmEncodeLookups));
            hit_rate_decode.add(
                row.key, rate(t.warmDecodeHits, t.warmDecodeLookups));
            hit_rate_content.add(
                row.key, rate(t.warmContentHits, t.warmContentLookups));
            conflicts_json.add(row.key,
                               t.warmEncodeConflicts +
                                   t.warmDecodeConflicts +
                                   t.warmContentConflicts);
            modeled_json.add(row.key, modeled);
            ft_div_max = std::max(ft_div_max, ft_div);
            if (std::strcmp(row.key, "cop4") == 0) {
                modeled_cop4 = modeled;
                fast_cop4 = fast_ratio;
            } else if (std::strcmp(row.key, "coper") == 0) {
                modeled_coper = modeled;
                fast_coper = fast_ratio;
            }
        } else {
            const double mps = static_cast<double>(serial.misses) /
                               (serial.timedMs / 1000.0);
            const double hit_rate =
                serial.poolCalls
                    ? static_cast<double>(serial.poolHits) /
                          static_cast<double>(serial.poolCalls)
                    : 0.0;
            std::printf("%-12s %14.0f %14.0f %11.1f%%\n", row.key, eps,
                        mps, hit_rate * 100.0);
            eps_serial.add(row.key, eps);
            misses_per_sec.add(row.key, mps);
            blockfor_hit_rate.add(row.key, hit_rate);
        }
    }

    const unsigned host_cpus = std::thread::hardware_concurrency();
    if (sweep) {
        if (host_cpus < threads) {
            std::printf("note: host has %u CPU(s) < %u threads — wall "
                        "speedup is not expected here; the modeled "
                        "column is the gateable metric\n",
                        host_cpus, threads);
        }
        bench::JsonObjectBuilder top;
        top.add("bench", std::string("micro_system_threads"));
        top.add("quick", static_cast<u64>(quick ? 1 : 0));
        top.add("profile", profile.name);
        top.add("epochs_per_core", epochs_per_core);
        top.add("threads", static_cast<u64>(threads));
        top.add("host_cpus", static_cast<u64>(host_cpus));
        top.addRaw("epochs_per_sec", eps_serial.str());
        top.addRaw("epochs_per_sec_threaded", eps_threaded.str());
        top.addRaw("epochs_per_sec_fast", eps_fast.str());
        top.addRaw("wall_speedup", wall_speedup.str());
        top.addRaw("fast_wall_speedup", fast_wall_speedup.str());
        top.addRaw("ft_ipc_divergence", ft_divergence.str());
        top.addRaw("offload_hit_rate", hit_rate_json.str());
        top.addRaw("offload_hit_rate_encode", hit_rate_encode.str());
        top.addRaw("offload_hit_rate_decode", hit_rate_decode.str());
        top.addRaw("offload_hit_rate_content", hit_rate_content.str());
        top.addRaw("offload_conflicts", conflicts_json.str());
        top.addRaw("modeled_speedup", modeled_json.str());
        top.add("sharded_speedup_min",
                std::min(modeled_cop4, modeled_coper));
        // Wall gate (host_cpus >= threads only) and divergence gate
        // (any host — deterministic) for scripts/check_perf.py.
        top.add("fast_timing_speedup_min",
                std::min(fast_cop4, fast_coper));
        top.add("ft_ipc_divergence_max", ft_div_max);
        bench::writeResultsFile("micro_system_threads.json", top.str());
        return 0;
    }

    bench::JsonObjectBuilder top;
    top.add("bench", std::string("micro_system"));
    top.add("quick", static_cast<u64>(quick ? 1 : 0));
    top.add("profile", profile.name);
    top.add("epochs_per_core", epochs_per_core);
    top.addRaw("epochs_per_sec", eps_serial.str());
    top.addRaw("misses_per_sec", misses_per_sec.str());
    top.addRaw("blockfor_hit_rate", blockfor_hit_rate.str());
    bench::writeResultsFile("micro_system.json", top.str());
    return 0;
}

} // namespace
} // namespace cop

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string profile = "gcc";
    unsigned threads = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--profile") == 0 &&
                   i + 1 < argc) {
            profile = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            threads = static_cast<unsigned>(std::strtoul(argv[++i],
                                                         nullptr, 10));
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--quick] [--profile NAME] [--threads N]\n",
                argv[0]);
            return 2;
        }
    }
    return cop::run(quick, profile, threads);
}
