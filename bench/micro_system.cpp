/**
 * @file
 * End-to-end system throughput harness: simulated epochs/sec and LLC
 * misses/sec for a full Table-1 System per memory-controller kind, on
 * one memory-intensive profile. Where micro_codec measures the codec
 * kernels in isolation, this measures everything the grid runner pays
 * for per cell — trace generation, the LLC, functional memory
 * (BlockContentPool), the controller decode/encode paths and the DRAM
 * timing model — so wins and regressions in any layer show up here.
 *
 * Results print to stdout and land in bench/results/micro_system.json
 * (directory overridable via COP_BENCH_RESULTS). BENCH_system.json at
 * the repo root records the before/after numbers of the end-to-end
 * throughput work (content cache + flat hash storage + hot-path
 * dedup) measured with this exact methodology.
 *
 * `--quick` shortens the run for the CI perf-smoke job; the numbers
 * are noisier but the regression gate in scripts/check_perf.py leaves
 * margin for that.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "run_util.hpp"

namespace cop {
namespace {

double
nowMs()
{
    using Clock = std::chrono::steady_clock;
    return std::chrono::duration<double, std::milli>(
               Clock::now().time_since_epoch())
        .count();
}

struct KindRow
{
    ControllerKind kind;
    const char *key; ///< JSON key (stable across schemes renames).
};

constexpr KindRow kKinds[] = {
    {ControllerKind::Unprotected, "unprot"},
    {ControllerKind::EccDimm, "ecc_dimm"},
    {ControllerKind::EccRegion, "ecc_region"},
    {ControllerKind::Cop4, "cop4"},
    {ControllerKind::Cop8, "cop8"},
    {ControllerKind::CopEr, "coper"},
    {ControllerKind::CopErNaive, "coper_naive"},
};

int
run(bool quick, const std::string &profile_name)
{
    // Fixed epoch count per System run: every pass constructs a fresh
    // System (state does not carry over), runs it to completion and is
    // timed end to end, construction included — exactly what one grid
    // cell costs. Deliberately independent of COP_BENCH_EPOCHS so the
    // measurement is not silently reconfigurable.
    const u64 epochs_per_core = quick ? 250 : 1500;
    const double target_ms = quick ? 200 : 1500;
    const WorkloadProfile &profile =
        WorkloadRegistry::byName(profile_name);

    bench::JsonObjectBuilder epochs_per_sec;
    bench::JsonObjectBuilder misses_per_sec;
    bench::JsonObjectBuilder blockfor_hit_rate;
    std::printf("%-12s %14s %14s %12s\n", "scheme", "epochs/s",
                "misses/s", "pool hit%");
    for (const KindRow &row : kKinds) {
        SystemConfig cfg = bench::paperConfig(row.kind);
        cfg.epochsPerCore = epochs_per_core;

        u64 passes = 0;
        u64 misses = 0;
        u64 pool_calls = 0;
        u64 pool_hits = 0;
        {
            // Untimed warm-up pass (allocator, page cache).
            System sys(profile, cfg);
            (void)sys.run();
        }
        const double t0 = nowMs();
        double t1 = t0;
        do {
            System sys(profile, cfg);
            const SystemResults r = sys.run();
            misses += r.llcMisses;
            pool_calls += r.poolBlockForCalls;
            pool_hits += r.poolContentCacheHits;
            ++passes;
            t1 = nowMs();
        } while (t1 - t0 < target_ms);
        const double secs = (t1 - t0) / 1000.0;
        const double epochs =
            static_cast<double>(passes * epochs_per_core * cfg.cores);
        const double eps = epochs / secs;
        const double mps = static_cast<double>(misses) / secs;
        const double hit_rate =
            pool_calls ? static_cast<double>(pool_hits) /
                             static_cast<double>(pool_calls)
                       : 0.0;
        std::printf("%-12s %14.0f %14.0f %11.1f%%\n", row.key, eps, mps,
                    hit_rate * 100.0);
        epochs_per_sec.add(row.key, eps);
        misses_per_sec.add(row.key, mps);
        blockfor_hit_rate.add(row.key, hit_rate);
    }

    bench::JsonObjectBuilder top;
    top.add("bench", std::string("micro_system"));
    top.add("quick", static_cast<u64>(quick ? 1 : 0));
    top.add("profile", profile.name);
    top.add("epochs_per_core", epochs_per_core);
    top.addRaw("epochs_per_sec", epochs_per_sec.str());
    top.addRaw("misses_per_sec", misses_per_sec.str());
    top.addRaw("blockfor_hit_rate", blockfor_hit_rate.str());
    bench::writeResultsFile("micro_system.json", top.str());
    return 0;
}

} // namespace
} // namespace cop

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string profile = "gcc";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--profile") == 0 &&
                   i + 1 < argc) {
            profile = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--profile NAME]\n",
                         argv[0]);
            return 2;
        }
    }
    return cop::run(quick, profile);
}
