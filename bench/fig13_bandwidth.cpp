/**
 * @file
 * Bandwidth-compression study (the repo's "Figure 13", CRAM-style
 * extension of the paper's Figure 11): IPC and DRAM read latency of the
 * COP-family schemes with and without the shortened-burst bandwidth
 * mode, normalised to the unprotected system, on the bandwidth-bound
 * slice of the Table 2 memory-intensive set (high MLP x high L3 APKI —
 * the profiles whose epochs pile overlappable misses onto the data
 * bus, so burst length is on the critical path).
 *
 * Expected shape: protection-only COP trails the unprotected system by
 * the decode latency; COP+BW claws IPC back by shipping compressed
 * blocks in 5-7-beat bursts, beating protection-only COP wherever the
 * bus (not the bank) is the bottleneck. Protection-only results are
 * byte-identical to a build without the mode (see
 * tests/bandwidth_mode_test.cpp for the enforced identity).
 *
 * `--quick` shortens the run for the CI perf-smoke job, which gates on
 * the recorded cop_bw_best_speedup scalar (scripts/check_perf.py).
 * The (benchmark x scheme) grid executes on the experiment runner
 * (COP_BENCH_JOBS workers, --serial for in-order execution).
 */

#include <cstring>

#include "run_util.hpp"

using namespace cop;

namespace {

/**
 * The bandwidth-bound slice: memory-intensive profiles with enough
 * memory-level parallelism and reference rate that epoch latency is
 * dominated by serialised data-bus bursts rather than isolated misses.
 */
std::vector<const WorkloadProfile *>
bandwidthBound()
{
    std::vector<const WorkloadProfile *> out;
    for (const auto *p : WorkloadRegistry::memoryIntensive()) {
        if (p->mlp >= 5 && p->l3Apki >= 12)
            out.push_back(p);
    }
    return out;
}

SystemConfig
bwConfig(ControllerKind kind, bool bandwidth, u64 epochs)
{
    SystemConfig cfg = bench::paperConfig(kind);
    cfg.epochsPerCore = epochs;
    cfg.bandwidthCompression = bandwidth;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--config") == 0)
            bench::printTable1();
    }
    const u64 epochs = quick ? 3000 : bench::benchEpochs();

    struct Scheme
    {
        const char *label;
        ControllerKind kind;
        bool bandwidth;
    };
    static const Scheme schemes[] = {
        {"Unprot.", ControllerKind::Unprotected, false},
        {"COP", ControllerKind::Cop4, false},
        {"COP+BW", ControllerKind::Cop4, true},
        {"COP-ER", ControllerKind::CopEr, false},
        {"COP-ER+BW", ControllerKind::CopEr, true},
    };

    const std::vector<const WorkloadProfile *> profiles = bandwidthBound();
    bench::GridRunner grid("fig13_bandwidth", argc, argv);
    for (const auto *p : profiles) {
        for (const Scheme &s : schemes)
            grid.add(*p, bwConfig(s.kind, s.bandwidth, epochs), s.label);
    }
    grid.run();

    bench::printHeader(
        "Figure 13: IPC normalised to the unprotected system "
        "(bandwidth-bound slice)",
        {"Unprot.", "COP", "COP+BW", "COP-ER", "COP-ER+BW"});

    std::vector<double> geo_cop, geo_cop_bw, geo_coper, geo_coper_bw;
    double best_cop_speedup = 0, best_coper_speedup = 0;
    const WorkloadProfile *best_cop_profile = nullptr;
    for (const auto *p : profiles) {
        const double unprot = grid.result(p->name, "Unprot.").ipc;
        const double cop = grid.result(p->name, "COP").ipc / unprot;
        const double cop_bw = grid.result(p->name, "COP+BW").ipc / unprot;
        const double coper = grid.result(p->name, "COP-ER").ipc / unprot;
        const double coper_bw =
            grid.result(p->name, "COP-ER+BW").ipc / unprot;
        bench::printRow(p->name, {1.0, cop, cop_bw, coper, coper_bw});
        geo_cop.push_back(cop);
        geo_cop_bw.push_back(cop_bw);
        geo_coper.push_back(coper);
        geo_coper_bw.push_back(coper_bw);
        if (cop_bw / cop > best_cop_speedup) {
            best_cop_speedup = cop_bw / cop;
            best_cop_profile = p;
        }
        best_coper_speedup =
            std::max(best_coper_speedup, coper_bw / coper);
    }

    std::printf("%s\n", std::string(16 + 5 * 13, '-').c_str());
    bench::printRow("Geomean",
                    {1.0, bench::geomean(geo_cop),
                     bench::geomean(geo_cop_bw), bench::geomean(geo_coper),
                     bench::geomean(geo_coper_bw)});

    std::printf("\nDRAM avg read latency (cycles) and bus beats saved, "
                "COP vs COP+BW\n");
    std::printf("%-16s %12s %12s %14s %12s\n", "benchmark", "COP",
                "COP+BW", "beats saved", "bus util");
    std::printf("%s\n", std::string(70, '-').c_str());
    for (const auto *p : profiles) {
        const SystemResults &base = grid.result(p->name, "COP");
        const SystemResults &bw = grid.result(p->name, "COP+BW");
        const double util =
            bw.cycles > 0 ? static_cast<double>(bw.dram.busBusyCycles) /
                                (static_cast<double>(bw.cycles) * 2)
                          : 0.0;
        std::printf("%-16s %12.1f %12.1f %14llu %11.1f%%\n",
                    p->name.c_str(), base.dram.avgReadLatency(),
                    bw.dram.avgReadLatency(),
                    static_cast<unsigned long long>(bw.dram.beatsSaved),
                    util * 100.0);
    }

    if (best_cop_profile != nullptr) {
        std::printf("\nBest COP+BW speedup over protection-only COP: "
                    "%.3fx on %s\n",
                    best_cop_speedup, best_cop_profile->name.c_str());
    }
    std::printf("Shortened bursts cut serialised bus occupancy on the "
                "high-MLP profiles;\nprotection-only behaviour (and its "
                "results JSON) is unchanged.\n");

    grid.addScalar("geomean_cop", bench::geomean(geo_cop));
    grid.addScalar("geomean_cop_bw", bench::geomean(geo_cop_bw));
    grid.addScalar("geomean_coper", bench::geomean(geo_coper));
    grid.addScalar("geomean_coper_bw", bench::geomean(geo_coper_bw));
    grid.addScalar("cop_bw_best_speedup", best_cop_speedup);
    grid.addScalar("coper_bw_best_speedup", best_coper_speedup);
    grid.writeJson();
    return 0;
}
