/**
 * @file
 * Figure 12 reproduction: reduction in ECC-region storage of COP-ER vs
 * the ECC-region baseline. The baseline reserves a 2-byte entry for
 * every data block of the touched footprint; COP-ER keeps a 46-bit
 * entry (11 per 64-byte block, plus the valid-bit tree) only for
 * blocks that were ever incompressible in DRAM during execution, with
 * no entries deallocated — exactly the paper's accounting. The
 * per-benchmark runs execute on the experiment runner.
 */

#include "mem/ecc_region_controller.hpp"
#include "run_util.hpp"

using namespace cop;

int
main(int argc, char **argv)
{
    bench::GridRunner grid("fig12_ecc_storage", argc, argv);
    for (const auto *p : WorkloadRegistry::memoryIntensive())
        grid.add(*p, ControllerKind::CopEr);
    grid.run();

    bench::printHeader(
        "Figure 12: reduction in ECC storage, COP-ER vs ECC Reg. "
        "baseline",
        {"ever-incmp", "COP-ER KB", "base KB", "Reduction"});

    std::vector<double> reductions;
    for (const auto *p : WorkloadRegistry::memoryIntensive()) {
        const SystemResults &r = grid.result(*p, ControllerKind::CopEr);
        const u64 coper_bytes = r.eccRegionBytesNoDealloc;
        const u64 base_bytes =
            EccRegionController::storageBytesFor(r.touchedBlocks);
        const double reduction =
            base_bytes ? 1.0 - static_cast<double>(coper_bytes) /
                                   static_cast<double>(base_bytes)
                       : 0.0;
        const double ever_frac =
            r.touchedBlocks
                ? static_cast<double>(r.everUncompressedBlocks) /
                      static_cast<double>(r.touchedBlocks)
                : 0.0;
        std::printf("%-16s %11.1f%% %12.1f %12.1f %11.1f%%\n",
                    p->name.c_str(), ever_frac * 100.0,
                    coper_bytes / 1024.0, base_bytes / 1024.0,
                    reduction * 100.0);
        reductions.push_back(reduction);
    }

    std::printf("%s\n", std::string(16 + 4 * 13, '-').c_str());
    std::printf("%-16s %38s %11.1f%%\n", "Average", "",
                bench::mean(reductions) * 100.0);
    std::printf("\nPaper: COP-ER reduces ECC storage by 80%% on "
                "average.\n");

    grid.addScalar("avg_storage_reduction", bench::mean(reductions));
    grid.writeJson();
    return 0;
}
