/**
 * @file
 * Sensitivity of COP's performance to the decoder/decompressor latency
 * (the paper assumes 4 cycles, Section 4). Sweeping 0..16 cycles shows
 * how much headroom the "simple hardware" requirement really has: even
 * a pessimistic decoder leaves COP within a whisker of unprotected.
 * The (benchmark x latency) grid executes on the experiment runner.
 */

#include "run_util.hpp"

using namespace cop;

int
main(int argc, char **argv)
{
    static const char *names[] = {"mcf", "lbm", "omnetpp", "x264"};
    static const Cycle latencies[] = {0, 2, 4, 8, 16};

    auto label = [](Cycle l) {
        return "cop4@" + std::to_string(l) + "cyc";
    };

    bench::GridRunner grid("ablation_decode_latency", argc, argv);
    for (const char *name : names) {
        const WorkloadProfile &p = WorkloadRegistry::byName(name);
        grid.add(p, ControllerKind::Unprotected);
        for (const Cycle l : latencies) {
            SystemConfig cfg = bench::paperConfig(ControllerKind::Cop4);
            cfg.decodeLatency = l;
            grid.add(p, cfg, label(l));
        }
    }
    grid.run();

    std::printf("Ablation: COP fill latency adder (IPC normalised to "
                "unprotected)\n\n");
    std::printf("%-14s", "benchmark");
    for (const Cycle l : latencies)
        std::printf(" %7llu cyc", static_cast<unsigned long long>(l));
    std::printf("\n%s\n", std::string(14 + 5 * 12, '-').c_str());

    for (const char *name : names) {
        const WorkloadProfile &p = WorkloadRegistry::byName(name);
        const double unprot =
            grid.result(p, ControllerKind::Unprotected).ipc;
        std::printf("%-14s", name);
        for (const Cycle l : latencies) {
            std::printf(" %11.3f",
                        grid.result(p.name, label(l)).ipc / unprot);
        }
        std::printf("\n");
    }
    std::printf("\nPaper operating point: 4 cycles.\n");

    grid.writeJson();
    return 0;
}
