/**
 * @file
 * Figure 1 reproduction: percent of blocks compressible with FPC as a
 * function of the target compression ratio, for astar, gcc, libquantum,
 * mcf and the SPECint 2006 average. The paper's point: when only a low
 * compression ratio is required (COP needs ~6.25%), many more blocks
 * count as compressible — even for "incompressible" applications like
 * libquantum.
 */

#include "bench_util.hpp"
#include "compress/fpc.hpp"

using namespace cop;

int
main()
{
    const FpcCompressor fpc;

    std::printf("Figure 1: blocks compressible with FPC vs target "
                "compression ratio\n");
    std::printf("(percent of blocks whose FPC output fits "
                "512*(1-ratio) bits)\n\n");

    const auto named = WorkloadRegistry::specIntFigure1();
    const auto spec_int = WorkloadRegistry::bySuite(Suite::SpecInt);

    // Compressed-size distribution per benchmark.
    std::vector<std::pair<std::string, std::vector<int>>> sizes;
    for (const auto *p : named) {
        std::vector<int> s;
        for (const auto &b : bench::sampleFor(*p))
            s.push_back(fpc.compressedBits(b));
        sizes.emplace_back(p->name, std::move(s));
    }
    {
        // SPECint 2006 average: pooled sample across the whole suite.
        std::vector<int> s;
        for (const auto *p : spec_int) {
            const BlockContentPool pool(*p);
            for (const auto &b :
                 pool.sample(bench::kSampleBlocks / 4, 2)) {
                s.push_back(fpc.compressedBits(b));
            }
        }
        sizes.emplace_back("SPECint 2006", std::move(s));
    }

    std::printf("%-8s", "ratio");
    for (const auto &[name, s] : sizes)
        std::printf(" %13s", name.c_str());
    std::printf("\n");
    for (unsigned i = 0; i < 8 + sizes.size() * 14; ++i)
        std::printf("-");
    std::printf("\n");

    for (int ratio_pct = 0; ratio_pct <= 100; ratio_pct += 5) {
        const double limit = 512.0 * (1.0 - ratio_pct / 100.0);
        std::printf("%6d%% ", ratio_pct);
        for (const auto &[name, s] : sizes) {
            unsigned ok = 0;
            for (const int bits : s)
                ok += bits >= 0 && bits <= limit;
            std::printf(" %12.1f%%",
                        100.0 * ok / static_cast<double>(s.size()));
        }
        std::printf("\n");
    }

    std::printf("\nCOP's operating point is ~6.25%% (free 4 bytes per "
                "64-byte block).\n");
    return 0;
}
