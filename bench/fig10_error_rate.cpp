/**
 * @file
 * Figure 10 reproduction: reduction in DRAM soft-error rate for COP
 * with 8-byte ECC, COP with 4-byte ECC, and COP-ER (4-byte), relative
 * to an unprotected non-ECC DIMM. Methodology as in the paper: a
 * PARMA-style vulnerability clock per block (write -> next read),
 * 5000 FIT/Mbit raw rate, evaluated over full-system simulations of
 * the Table 2 benchmarks, executed on the experiment runner.
 */

#include "reliability/error_model.hpp"
#include "run_util.hpp"

using namespace cop;

int
main(int argc, char **argv)
{
    const ErrorRateModel model;
    static const ControllerKind kinds[] = {ControllerKind::Cop8,
                                           ControllerKind::Cop4,
                                           ControllerKind::CopEr};

    bench::GridRunner grid("fig10_error_rate", argc, argv);
    for (const auto *p : WorkloadRegistry::memoryIntensive()) {
        for (const ControllerKind kind : kinds)
            grid.add(*p, kind);
    }
    grid.run();

    bench::printHeader(
        "Figure 10: reduction in soft-error rate vs unprotected DRAM",
        {"COP 8-byte", "COP 4-byte", "COP-ER 4B"});

    bench::SuiteAverager avg;
    for (const auto *p : WorkloadRegistry::memoryIntensive()) {
        std::vector<double> row;
        for (const ControllerKind kind : kinds) {
            const SystemResults &r = grid.result(*p, kind);
            row.push_back(model.evaluate(r.vuln).reduction());
        }
        bench::printPctRow(p->name, row);
        avg.add(*p, row);
    }

    std::printf("%s\n", std::string(16 + 3 * 13, '-').c_str());
    {
        auto spec = avg.intRows;
        spec.insert(spec.end(), avg.fpRows.begin(), avg.fpRows.end());
        bench::printPctRow("SPEC2006",
                           bench::SuiteAverager::average(spec));
    }
    bench::printPctRow("PARSEC",
                       bench::SuiteAverager::average(avg.parsecRows));
    const std::vector<double> overall =
        bench::SuiteAverager::average(avg.allRows);
    bench::printPctRow("Average", overall);
    std::printf("\nPaper: COP 4-byte reduces the error rate by 93%% on "
                "average; COP-ER is ~100%%\n(all single-bit errors "
                "corrected). The 4-byte version beats 8-byte because\n"
                "less required compression protects more blocks.\n");

    grid.addScalar("avg_reduction_cop8", overall[0]);
    grid.addScalar("avg_reduction_cop4", overall[1]);
    grid.addScalar("avg_reduction_coper", overall[2]);
    grid.writeJson();
    return 0;
}
