/**
 * @file
 * Ablation backing Section 3.2.1's design choice: COP's MSB scheme is
 * a simplification of BDI that needs no adders. At COP's low target
 * ratio, MSB matches or beats full BDI on the blocks that matter
 * (similar-magnitude values, floating point), because what COP needs
 * is *coverage at a small budget*, not a high compression ratio.
 */

#include "bench_util.hpp"
#include "compress/bdi.hpp"
#include "compress/msb.hpp"

using namespace cop;

int
main()
{
    const MsbCompressor msb(5, true);
    const BdiCompressor bdi;
    constexpr unsigned kBudget = 478;

    bench::printHeader(
        "Ablation: MSB (COP's simplification) vs full BDI at the "
        "4-byte budget",
        {"MSB", "BDI", "delta"});

    std::vector<double> msb_col, bdi_col;
    for (const auto *p : WorkloadRegistry::memoryIntensive()) {
        const auto blocks = bench::sampleFor(*p);
        const double m = bench::fractionCompressible(blocks, msb, kBudget);
        const double b = bench::fractionCompressible(blocks, bdi, kBudget);
        bench::printPctRow(p->name, {m, b, m - b});
        msb_col.push_back(m);
        bdi_col.push_back(b);
    }
    std::printf("%s\n", std::string(16 + 3 * 13, '-').c_str());
    bench::printPctRow("Average", {bench::mean(msb_col),
                                   bench::mean(bdi_col),
                                   bench::mean(msb_col) -
                                       bench::mean(bdi_col)});
    std::printf("\nMSB needs only a 5-bit comparator per word (no "
                "adders); BDI needs a\nsubtractor per element plus "
                "base-selection logic. Floating-point blocks\nwith "
                "mixed signs favour MSB's shifted comparison; "
                "BDI's arithmetic deltas\nfail on left-normalised "
                "significands (Section 3.2.1).\n");
    return 0;
}
