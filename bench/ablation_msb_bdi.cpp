/**
 * @file
 * Ablation backing Section 3.2.1's design choice: COP's MSB scheme is
 * a simplification of BDI that needs no adders. At COP's low target
 * ratio, MSB matches or beats full BDI on the blocks that matter
 * (similar-magnitude values, floating point), because what COP needs
 * is *coverage at a small budget*, not a high compression ratio. The
 * per-benchmark sampling cells execute on the experiment runner.
 */

#include "compress/bdi.hpp"
#include "compress/msb.hpp"
#include "run_util.hpp"

using namespace cop;

int
main(int argc, char **argv)
{
    const MsbCompressor msb(5, true);
    const BdiCompressor bdi;
    constexpr unsigned kBudget = 478;

    const auto profiles = WorkloadRegistry::memoryIntensive();
    const RunnerOptions opts = parseRunnerOptions(argc, argv);

    struct Row
    {
        double msb = 0, bdi = 0;
    };
    const std::vector<Row> rows = runCollected<Row>(
        profiles.size(),
        [&](size_t i) {
            const auto blocks = bench::sampleFor(*profiles[i]);
            return Row{
                bench::fractionCompressible(blocks, msb, kBudget),
                bench::fractionCompressible(blocks, bdi, kBudget)};
        },
        opts);

    bench::printHeader(
        "Ablation: MSB (COP's simplification) vs full BDI at the "
        "4-byte budget",
        {"MSB", "BDI", "delta"});

    std::vector<double> msb_col, bdi_col;
    for (size_t i = 0; i < profiles.size(); ++i) {
        const double m = rows[i].msb, b = rows[i].bdi;
        bench::printPctRow(profiles[i]->name, {m, b, m - b});
        msb_col.push_back(m);
        bdi_col.push_back(b);
    }
    std::printf("%s\n", std::string(16 + 3 * 13, '-').c_str());
    bench::printPctRow("Average", {bench::mean(msb_col),
                                   bench::mean(bdi_col),
                                   bench::mean(msb_col) -
                                       bench::mean(bdi_col)});
    std::printf("\nMSB needs only a 5-bit comparator per word (no "
                "adders); BDI needs a\nsubtractor per element plus "
                "base-selection logic. Floating-point blocks\nwith "
                "mixed signs favour MSB's shifted comparison; "
                "BDI's arithmetic deltas\nfail on left-normalised "
                "significands (Section 3.2.1).\n");

    std::string cells;
    for (size_t i = 0; i < profiles.size(); ++i) {
        if (i)
            cells += ',';
        bench::JsonObjectBuilder cell;
        cell.add("benchmark", profiles[i]->name);
        cell.add("msb_coverage", rows[i].msb);
        cell.add("bdi_coverage", rows[i].bdi);
        cells += cell.str();
    }
    bench::JsonObjectBuilder top;
    top.add("bench", std::string("ablation_msb_bdi"));
    top.add("avg_msb_coverage", bench::mean(msb_col));
    top.add("avg_bdi_coverage", bench::mean(bdi_col));
    top.addRaw("cells", "[" + cells + "]");
    bench::writeResultsFile("ablation_msb_bdi.json", top.str());
    return 0;
}
