/**
 * @file
 * Shared simulation driver for the system-level benches (Figures
 * 10-12): standard Table 1 configuration with a bench-friendly run
 * length, overridable via the COP_BENCH_EPOCHS environment variable.
 */

#ifndef COP_BENCH_SIM_UTIL_HPP
#define COP_BENCH_SIM_UTIL_HPP

#include <cstdlib>

#include "bench_util.hpp"
#include "common/parse.hpp"
#include "sim/system.hpp"

namespace cop::bench {

/**
 * Epochs per core for the system benches. A malformed or zero
 * COP_BENCH_EPOCHS is fatal: a 0-epoch run would print a perfectly
 * formatted table of meaningless numbers.
 */
inline u64
benchEpochs(u64 fallback = 12000)
{
    if (const char *env = std::getenv("COP_BENCH_EPOCHS"))
        return parsePositiveU64(env, "COP_BENCH_EPOCHS");
    return fallback;
}

/** Table 1 system configuration for one controller kind. */
inline SystemConfig
paperConfig(ControllerKind kind)
{
    SystemConfig cfg;
    cfg.cores = 4;
    cfg.llc = CacheConfig{4ULL << 20, 16, 34};
    cfg.kind = kind;
    cfg.epochsPerCore = benchEpochs();
    cfg.verifyData = true;
    return cfg;
}

/** Run one benchmark under one scheme. */
inline SystemResults
runSystem(const WorkloadProfile &profile, ControllerKind kind)
{
    System sys(profile, paperConfig(kind));
    return sys.run();
}

/** Print the Table 1 configuration block. */
inline void
printTable1()
{
    std::printf("Table 1: simulator configuration\n");
    std::printf("  OoO core    : 3.2 GHz, 4-wide issue, 128-entry window "
                "(interval model,\n");
    std::printf("                per-benchmark perfect-L3 IPC)\n");
    std::printf("  L3          : 4 MB, 16-way, 34-cycle latency, shared "
                "by 4 cores\n");
    std::printf("  Memory      : DDR3-1600, 64-bit bus, 8 GB, 2 channels, "
                "1 DIMM/channel,\n");
    std::printf("                2 ranks/DIMM, 8 chips/rank, open-row, "
                "FR-FCFS-style banking\n");
    std::printf("  COP decode  : +4 cycles per fill\n\n");
}

} // namespace cop::bench

#endif // COP_BENCH_SIM_UTIL_HPP
