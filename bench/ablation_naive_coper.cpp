/**
 * @file
 * Ablation of COP-ER's optimised ECC region (Section 3.3): three
 * design points on the storage/performance plane —
 *
 *   ECC Reg.       : full-size region, accessed on *every* fill;
 *   naive COP-ER   : full-size region, accessed only for
 *                    incompressible fills (performance win, no storage
 *                    win);
 *   COP-ER         : pointer-indexed packed region (performance win
 *                    AND ~80% storage win).
 *
 * Run on a representative slice of the Table 2 benchmarks on the
 * experiment runner.
 */

#include "mem/ecc_region_controller.hpp"
#include "run_util.hpp"

using namespace cop;

int
main(int argc, char **argv)
{
    static const char *names[] = {"mcf", "bzip2", "lbm", "canneal",
                                  "streamcluster"};
    static const ControllerKind kinds[] = {
        ControllerKind::Unprotected, ControllerKind::EccRegion,
        ControllerKind::CopErNaive, ControllerKind::CopEr};

    bench::GridRunner grid("ablation_naive_coper", argc, argv);
    for (const char *name : names) {
        const WorkloadProfile &p = WorkloadRegistry::byName(name);
        for (const ControllerKind kind : kinds)
            grid.add(p, kind);
    }
    grid.run();

    std::printf("Ablation: ECC-region designs (IPC normalised to "
                "unprotected; region KB)\n\n");
    std::printf("%-14s %10s %10s %10s | %10s %10s\n", "benchmark",
                "ECC Reg.", "naive", "COP-ER", "full KB", "packed KB");
    std::printf("%s\n", std::string(72, '-').c_str());

    std::vector<double> base_col, naive_col, coper_col;
    for (const char *name : names) {
        const WorkloadProfile &p = WorkloadRegistry::byName(name);
        const double unprot =
            grid.result(p, ControllerKind::Unprotected).ipc;
        const double eccreg =
            grid.result(p, ControllerKind::EccRegion).ipc / unprot;
        const double naive =
            grid.result(p, ControllerKind::CopErNaive).ipc / unprot;
        const SystemResults &er = grid.result(p, ControllerKind::CopEr);
        const double coper = er.ipc / unprot;

        const double full_kb =
            EccRegionController::storageBytesFor(er.touchedBlocks) /
            1024.0;
        const double packed_kb = er.eccRegionBytesNoDealloc / 1024.0;
        std::printf("%-14s %10.3f %10.3f %10.3f | %10.1f %10.1f\n",
                    name, eccreg, naive, coper, full_kb, packed_kb);
        base_col.push_back(eccreg);
        naive_col.push_back(naive);
        coper_col.push_back(coper);
    }
    std::printf("%s\n", std::string(72, '-').c_str());
    std::printf("%-14s %10.3f %10.3f %10.3f\n", "geomean",
                bench::geomean(base_col), bench::geomean(naive_col),
                bench::geomean(coper_col));
    std::printf("\nThe naive variant already recovers most of the "
                "performance (inline check bits\nfor the ~90%% "
                "compressible fills); the pointer-indexed region then "
                "removes the\nstorage overhead without giving that "
                "performance back.\n");

    grid.addScalar("geomean_eccreg", bench::geomean(base_col));
    grid.addScalar("geomean_naive", bench::geomean(naive_col));
    grid.addScalar("geomean_coper", bench::geomean(coper_col));
    grid.writeJson();
    return 0;
}
