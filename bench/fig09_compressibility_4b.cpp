/**
 * @file
 * Figure 9 reproduction: fraction of accessed blocks compressible when
 * freeing 4 bytes per 64-byte block — TXT, MSB (5-bit shifted compare),
 * RLE, FPC, and the combined TXT+MSB+RLE scheme (the paper's preferred
 * configuration, ~94% compressible on average).
 */

#include "bench_util.hpp"
#include "compress/combined.hpp"
#include "compress/fpc.hpp"

using namespace cop;

int
main()
{
    const TxtCompressor txt;
    const MsbCompressor msb(5, true);
    const RleCompressor rle;
    const FpcCompressor fpc;
    const CombinedCompressor combined(4);
    const unsigned budget = combined.streamBudget(); // 478 bits

    bench::printHeader(
        "Figure 9: compressible blocks when freeing 4 bytes per block",
        {"TXT", "MSB", "RLE", "FPC", "TXT+MSB+RLE"});

    bench::SuiteAverager avg;
    for (const auto *p : WorkloadRegistry::memoryIntensive()) {
        const auto blocks = bench::sampleFor(*p);
        unsigned comb_ok = 0;
        for (const auto &b : blocks)
            comb_ok += combined.compressible(b);
        const std::vector<double> row = {
            bench::fractionCompressible(blocks, txt, budget),
            bench::fractionCompressible(blocks, msb, budget),
            bench::fractionCompressible(blocks, rle, budget),
            bench::fractionCompressible(blocks, fpc, budget),
            static_cast<double>(comb_ok) / blocks.size(),
        };
        bench::printPctRow(p->name, row);
        avg.add(*p, row);
    }

    std::printf("%s\n", std::string(16 + 5 * 13, '-').c_str());
    {
        auto spec = avg.intRows;
        spec.insert(spec.end(), avg.fpRows.begin(), avg.fpRows.end());
        bench::printPctRow("SPEC2006", bench::SuiteAverager::average(spec));
    }
    bench::printPctRow("PARSEC",
                       bench::SuiteAverager::average(avg.parsecRows));
    bench::printPctRow("Average",
                       bench::SuiteAverager::average(avg.allRows));
    std::printf("\nPaper: the combined approach compresses 94%% of "
                "blocks on average.\n");
    return 0;
}
