/**
 * @file
 * Row-buffer policy ablation. The related work the paper builds on
 * (embedded ECC, Section 2) relies on an open-row policy to make
 * same-row ECC accesses cheap; this bench shows how the schemes fare
 * when the controller auto-precharges instead — the ECC-region designs
 * lose their row-locality discount on metadata accesses. The
 * (benchmark x policy x scheme) grid executes on the experiment
 * runner.
 */

#include "run_util.hpp"

using namespace cop;

int
main(int argc, char **argv)
{
    static const char *names[] = {"lbm", "mcf", "streamcluster"};
    static const ControllerKind kinds[] = {ControllerKind::Unprotected,
                                           ControllerKind::Cop4,
                                           ControllerKind::CopEr,
                                           ControllerKind::EccRegion};

    auto label = [](ControllerKind kind, RowPolicy policy) {
        return std::string(controllerKindName(kind)) +
               (policy == RowPolicy::Open ? "@open" : "@closed");
    };

    bench::GridRunner grid("ablation_row_policy", argc, argv);
    for (const char *name : names) {
        const WorkloadProfile &p = WorkloadRegistry::byName(name);
        for (const RowPolicy policy :
             {RowPolicy::Open, RowPolicy::Closed}) {
            for (const ControllerKind kind : kinds) {
                SystemConfig cfg = bench::paperConfig(kind);
                cfg.dram.rowPolicy = policy;
                grid.add(p, cfg, label(kind, policy));
            }
        }
    }
    grid.run();

    // The two policies must actually diverge: closed-page auto-
    // precharges after every column access, so it can never score a
    // row hit, while open-row must score plenty on these streaming
    // workloads. A dead policy switch (both branches behaving
    // identically) would silently turn this ablation into a no-op.
    for (const char *name : names) {
        const WorkloadProfile &p = WorkloadRegistry::byName(name);
        for (const ControllerKind kind : kinds) {
            const DramStats &open =
                grid.result(p.name, label(kind, RowPolicy::Open)).dram;
            const DramStats &closed =
                grid.result(p.name, label(kind, RowPolicy::Closed)).dram;
            if (closed.rowHits != 0) {
                COP_FATAL("closed-page policy scored row hits for " +
                          p.name + "/" + controllerKindName(kind));
            }
            if (open.rowHits == 0) {
                COP_FATAL("open-row policy scored no row hits for " +
                          p.name + "/" + controllerKindName(kind));
            }
        }
    }

    std::printf("Ablation: row-buffer policy (IPC normalised to "
                "unprotected under the same policy)\n\n");
    std::printf("%-14s | %9s %9s %9s | %9s %9s %9s\n", "",
                "open-row", "", "", "closed", "", "");
    std::printf("%-14s | %9s %9s %9s | %9s %9s %9s\n", "benchmark",
                "COP", "COP-ER", "ECC Reg.", "COP", "COP-ER",
                "ECC Reg.");
    std::printf("%s\n", std::string(78, '-').c_str());

    for (const char *name : names) {
        const WorkloadProfile &p = WorkloadRegistry::byName(name);
        std::printf("%-14s |", name);
        for (const RowPolicy policy :
             {RowPolicy::Open, RowPolicy::Closed}) {
            const double unprot =
                grid.result(p.name,
                            label(ControllerKind::Unprotected, policy))
                    .ipc;
            for (const ControllerKind kind :
                 {ControllerKind::Cop4, ControllerKind::CopEr,
                  ControllerKind::EccRegion}) {
                std::printf(" %9.3f",
                            grid.result(p.name, label(kind, policy))
                                    .ipc /
                                unprot);
            }
            if (policy == RowPolicy::Open)
                std::printf(" |");
        }
        std::printf("\n");
    }
    std::printf("\nCOP's inline check bits are policy-insensitive; the "
                "region-based designs lean\non row locality for their "
                "metadata traffic.\n");

    grid.writeJson();
    return 0;
}
