/**
 * @file
 * Row-buffer policy ablation. The related work the paper builds on
 * (embedded ECC, Section 2) relies on an open-row policy to make
 * same-row ECC accesses cheap; this bench shows how the schemes fare
 * when the controller auto-precharges instead — the ECC-region designs
 * lose their row-locality discount on metadata accesses.
 */

#include "sim_util.hpp"

using namespace cop;

int
main()
{
    static const char *names[] = {"lbm", "mcf", "streamcluster"};

    std::printf("Ablation: row-buffer policy (IPC normalised to "
                "unprotected under the same policy)\n\n");
    std::printf("%-14s | %9s %9s %9s | %9s %9s %9s\n", "",
                "open-row", "", "", "closed", "", "");
    std::printf("%-14s | %9s %9s %9s | %9s %9s %9s\n", "benchmark",
                "COP", "COP-ER", "ECC Reg.", "COP", "COP-ER",
                "ECC Reg.");
    std::printf("%s\n", std::string(78, '-').c_str());

    for (const char *name : names) {
        const WorkloadProfile &p = WorkloadRegistry::byName(name);
        std::printf("%-14s |", name);
        for (const RowPolicy policy :
             {RowPolicy::Open, RowPolicy::Closed}) {
            SystemConfig base = bench::paperConfig(
                ControllerKind::Unprotected);
            base.dram.rowPolicy = policy;
            const double unprot = System(p, base).run().ipc;
            for (const ControllerKind kind :
                 {ControllerKind::Cop4, ControllerKind::CopEr,
                  ControllerKind::EccRegion}) {
                SystemConfig cfg = bench::paperConfig(kind);
                cfg.dram.rowPolicy = policy;
                std::printf(" %9.3f", System(p, cfg).run().ipc / unprot);
            }
            if (policy == RowPolicy::Open)
                std::printf(" |");
        }
        std::printf("\n");
    }
    std::printf("\nCOP's inline check bits are policy-insensitive; the "
                "region-based designs lean\non row locality for their "
                "metadata traffic.\n");
    return 0;
}
