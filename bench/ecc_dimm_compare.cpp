/**
 * @file
 * Section 4's COP-ER vs ECC-DIMM comparison: with uncorrectable errors
 * dominated by double-bit hits in one code word, COP-ER's wide
 * (523,512) code loses to the ECC DIMM's eight (72,64) words by ~6x.
 * Reproduced twice: analytically from the error model and empirically
 * by Monte-Carlo fault injection through the real decoders. The two
 * injection campaigns are independent cells on the experiment runner,
 * each with its own injector stream.
 */

#include "reliability/error_model.hpp"
#include "reliability/fault_injector.hpp"
#include "run_util.hpp"
#include "workloads/trace_gen.hpp"

using namespace cop;

int
main(int argc, char **argv)
{
    // ------------------------------------------------------------------
    // Analytic ratio.
    // ------------------------------------------------------------------
    const ErrorRateModel model;
    std::printf("COP-ER vs ECC DIMM uncorrectable-error comparison\n\n");
    std::printf("Analytic (double-error-in-one-word dominates):\n");
    std::printf("  word-width argument: 523^2 / (8 * 72^2) = %.2f\n",
                523.0 * 523.0 / (8 * 72.0 * 72.0));
    std::printf("  error-model ratio at equal exposure: %.2f\n\n",
                model.copErVsEccDimmRatio(1e12));

    // ------------------------------------------------------------------
    // Monte-Carlo: inject 2 flips, measure uncorrected fractions.
    // ------------------------------------------------------------------
    const CopCodec codec(CopConfig::fourByte());
    const CoperCodec coper(codec);
    Rng rng(7);

    // Incompressible data (the class COP-ER stores via entries).
    CacheBlock data;
    do {
        for (unsigned w = 0; w < 8; ++w)
            data.setWord64(w, rng.next());
    } while (codec.encode(data).status != EncodeStatus::Unprotected);

    constexpr u64 kTrials = 200000;
    const RunnerOptions opts = parseRunnerOptions(argc, argv);
    const std::vector<InjectionOutcome> outcomes =
        runCollected<InjectionOutcome>(
            2,
            [&](size_t cell) {
                // Per-cell injector: the campaigns stay independent
                // (and bit-identical) whatever the worker count.
                FaultInjector injector(2024 + static_cast<u64>(cell));
                return cell == 0
                           ? injector.injectCopEr(coper, data, 2,
                                                  kTrials)
                           : injector.injectEccDimm(data, 2, kTrials);
            },
            opts);
    const InjectionOutcome &coper_out = outcomes[0];
    const InjectionOutcome &dimm_out = outcomes[1];

    std::printf("Monte-Carlo, 2 random flips per block, %llu trials:\n",
                static_cast<unsigned long long>(kTrials));
    std::printf("  %-10s %12s %12s %12s %12s\n", "scheme", "corrected",
                "benign", "detected", "silent");
    std::printf("  %-10s %12llu %12llu %12llu %12llu\n", "COP-ER",
                (unsigned long long)coper_out.corrected,
                (unsigned long long)coper_out.benign,
                (unsigned long long)coper_out.detected,
                (unsigned long long)coper_out.silent);
    std::printf("  %-10s %12llu %12llu %12llu %12llu\n", "ECC DIMM",
                (unsigned long long)dimm_out.corrected,
                (unsigned long long)dimm_out.benign,
                (unsigned long long)dimm_out.detected,
                (unsigned long long)dimm_out.silent);

    // Note: the ECC-DIMM image has 576 bits vs COP-ER's 512 in the data
    // block, so per-flip-pair rates need no exposure scaling here; the
    // ratio of uncorrected fractions is the headline number.
    const double ratio = coper_out.uncorrectedRate() /
                         (dimm_out.uncorrectedRate() + 1e-12);
    std::printf("\n  uncorrected ratio (COP-ER / ECC DIMM) = %.2f "
                "(paper: ~6x)\n", ratio);
    std::printf("  ...both schemes still correct all single-bit errors; "
                "vs unprotected DRAM\n  either reduces the error rate "
                "by orders of magnitude.\n");

    std::string cells;
    static const char *labels[] = {"COP-ER", "ECC DIMM"};
    for (size_t i = 0; i < 2; ++i) {
        if (i)
            cells += ',';
        bench::JsonObjectBuilder cell;
        cell.add("scheme", std::string(labels[i]));
        cell.add("trials", outcomes[i].trials);
        cell.add("corrected", outcomes[i].corrected);
        cell.add("benign", outcomes[i].benign);
        cell.add("detected", outcomes[i].detected);
        cell.add("silent", outcomes[i].silent);
        cells += cell.str();
    }
    bench::JsonObjectBuilder top;
    top.add("bench", std::string("ecc_dimm_compare"));
    top.add("analytic_ratio", model.copErVsEccDimmRatio(1e12));
    top.add("monte_carlo_ratio", ratio);
    top.addRaw("cells", "[" + cells + "]");
    bench::writeResultsFile("ecc_dimm_compare.json", top.str());
    return 0;
}
