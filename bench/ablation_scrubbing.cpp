/**
 * @file
 * Scrubbing extension, analytic x live: COP's 4-byte configuration
 * loses data when two errors accumulate in one block before it is read
 * (Section 3.1), and a background scrubber bounds that accumulation
 * window — an S-times shorter window cuts the double-error rate
 * ~S-fold over a fixed residency (T/S windows of S^2 risk). This bench
 * cross-validates the two implementations of that claim in one table:
 * each scrub-interval point runs a full system under COP 4-byte with
 * the *live* injector flipping single bits at an accelerated Poisson
 * rate and the patrol scrubber sweeping DRAM at that interval; the
 * same run's vulnerability log is then fed to the analytic model at
 * the injector's equivalent FIT rate, so the measured uncorrected
 * count and the model's expectation sit side by side. The sweep points
 * are independent cells on the experiment runner.
 */

#include <cstdio>
#include <string>

#include "reliability/error_model.hpp"
#include "run_util.hpp"

using namespace cop;

namespace {

/** Accelerated single-bit fault rate (events per megacycle). */
constexpr double kEventsPerMegacycle = 4000.0;

/**
 * The FIT/Mbit rate at which the analytic model's per-bit flip process
 * matches the injector: rate events/Mcycle, one flip each, uniform
 * over the run's footprint bits.
 */
double
equivalentFitPerMbit(double total_bits, double core_ghz)
{
    const double lambda_per_bit_per_cycle =
        kEventsPerMegacycle * 1e-6 / total_bits;
    const double cycles_per_hour = 3600.0 * core_ghz * 1e9;
    return lambda_per_bit_per_cycle * cycles_per_hour * (1u << 20) *
           1e9;
}

} // namespace

int
main(int argc, char **argv)
{
    struct Point
    {
        const char *label;
        Cycle interval; ///< Patrol scrub interval, 0 = disabled.
    };
    static const Point points[] = {
        {"disabled", 0},
        {"2 Mcycles", 2000000},
        {"1 Mcycles", 1000000},
        {"500 kcycles", 500000},
        {"250 kcycles", 250000},
    };

    // One memory-intensive benchmark with its working set shrunk so
    // uniform strikes mostly find warm images (see fault_campaign).
    WorkloadProfile profile = *WorkloadRegistry::memoryIntensive()[0];
    profile.footprintBlocks = 1u << 12;

    const RunnerOptions opts = parseRunnerOptions(argc, argv);
    const std::vector<SystemResults> runs =
        runCollected<SystemResults>(
            std::size(points),
            [&](size_t i) {
                SystemConfig cfg = bench::paperConfig(
                    ControllerKind::Cop4);
                // A small LLC keeps blocks cycling through DRAM, so
                // accumulated faults are actually observed at fills.
                cfg.llc = CacheConfig{64ULL << 10, 8, 34};
                cfg.fault.enabled = true;
                cfg.fault.eventsPerMegacycle = kEventsPerMegacycle;
                cfg.fault.flipsPerEvent = 1;
                cfg.fault.seed = 0x5C22B;
                cfg.fault.scrubIntervalCycles = points[i].interval;
                System sys(profile, cfg);
                return sys.run();
            },
            opts);

    const u64 regions = profile.sharedFootprint ? 1 : 4;
    const double total_bits = static_cast<double>(regions) *
                              profile.footprintBlocks * kBlockBits;

    std::printf("Scrubbing sweep under COP 4-byte, live single-bit "
                "injection at %.0f events/Mcycle\n(%s, analytic column "
                "= error model on the same run's vulnerability log\n"
                "at the injector-equivalent FIT rate)\n\n",
                kEventsPerMegacycle, profile.name.c_str());
    std::printf("%-13s %10s %10s %12s %12s %12s\n", "interval",
                "predicted", "measured", "scrub-corr", "scrub-reads",
                "vs no scrub");
    std::printf("%s\n", std::string(74, '-').c_str());

    const double base_measured =
        static_cast<double>(runs[0].errors.detected +
                            runs[0].errors.silent);
    std::string cells;
    for (size_t i = 0; i < std::size(points); ++i) {
        const SystemResults &r = runs[i];
        ReliabilityParams params;
        params.fitPerMbit =
            equivalentFitPerMbit(total_bits, params.coreGHz);
        params.scrubIntervalCycles =
            static_cast<double>(points[i].interval);
        const double predicted =
            ErrorRateModel(params).evaluate(r.vuln).uncorrected;
        const u64 measured = r.errors.detected + r.errors.silent;

        std::printf("%-13s %10.2f %10llu %12llu %12llu %11.2fx\n",
                    points[i].label, predicted,
                    static_cast<unsigned long long>(measured),
                    static_cast<unsigned long long>(
                        r.errors.scrubCorrected),
                    static_cast<unsigned long long>(
                        r.errors.scrubReads),
                    base_measured /
                        (measured ? static_cast<double>(measured)
                                  : base_measured));

        if (i)
            cells += ',';
        bench::JsonObjectBuilder cell;
        cell.add("scrub_interval", std::string(points[i].label));
        cell.add("scrub_interval_cycles",
                 static_cast<u64>(points[i].interval));
        cell.add("predicted_uncorrected", predicted);
        cell.add("measured_uncorrected", measured);
        cell.add("scrub_corrected", r.errors.scrubCorrected);
        cell.add("scrub_reads", r.errors.scrubReads);
        cell.add("fault_events", r.errors.faultEvents);
        cells += cell.str();
    }
    std::printf("\nDouble-error probability scales with the square of "
                "the accumulation window,\nso an S-times shorter window "
                "cuts the uncorrected rate ~S-fold over a fixed\n"
                "residency (T/S windows of S^2 risk); the live scrubber "
                "additionally pays the\nDRAM reads counted above. "
                "Measured sits below predicted at these accelerated\n"
                "rates because the recovery pipeline also heals on every "
                "demand read\n(scrub-on-read), which the paper's "
                "analytic model does not credit; the\nscrub-interval "
                "*trend* is the cross-validated quantity.\n");

    bench::JsonObjectBuilder top;
    top.add("bench", std::string("ablation_scrubbing"));
    top.add("events_per_megacycle", kEventsPerMegacycle);
    top.addRaw("cells", "[" + cells + "]");
    bench::writeResultsFile("ablation_scrubbing.json", top.str());
    return 0;
}
