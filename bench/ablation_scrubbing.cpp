/**
 * @file
 * Scrubbing extension: COP's 4-byte configuration loses data when two
 * errors accumulate in one block before it is read (Section 3.1). A
 * background scrubber bounds that accumulation window. This bench
 * sweeps the scrub interval and reports the residual uncorrected-error
 * rate of long-resident protected blocks — an extension beyond the
 * paper's model showing how cheap scrubbing closes COP's double-error
 * gap.
 */

#include <cstdio>

#include "reliability/error_model.hpp"

using namespace cop;

int
main()
{
    // A population of protected blocks resident for ~1 hour at 3.2 GHz
    // (cold data: the worst case for error accumulation).
    const double residency = 3600.0 * 3.2e9;
    VulnLog log;
    for (int i = 0; i < 1000; ++i)
        log.record(VulnClass::CopProtected4, residency);

    std::printf("Scrubbing sweep: cold COP-protected data "
                "(1h residency, 5000 FIT/Mbit)\n\n");
    std::printf("%-22s %22s %14s\n", "scrub interval",
                "expected uncorrected", "vs no scrub");
    std::printf("%s\n", std::string(60, '-').c_str());

    ReliabilityParams params;
    const double baseline =
        ErrorRateModel(params).evaluate(log).uncorrected;

    struct Point
    {
        const char *label;
        double seconds;
    };
    static const Point points[] = {
        {"disabled", 0},    {"1 hour", 3600},
        {"10 minutes", 600}, {"1 minute", 60},
        {"1 second", 1},
    };
    for (const Point &pt : points) {
        params.scrubIntervalCycles = pt.seconds * params.coreGHz * 1e9;
        const double rate =
            ErrorRateModel(params).evaluate(log).uncorrected;
        std::printf("%-22s %22.3e %13.1fx\n", pt.label, rate,
                    baseline / (rate > 0 ? rate : baseline));
    }
    std::printf("\nDouble-error probability scales with the square of "
                "the accumulation window,\nso an S-times shorter window "
                "cuts the uncorrected rate ~S-fold over a fixed\n"
                "residency (T/S windows of S^2 risk).\n");
    return 0;
}
