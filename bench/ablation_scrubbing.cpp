/**
 * @file
 * Scrubbing extension: COP's 4-byte configuration loses data when two
 * errors accumulate in one block before it is read (Section 3.1). A
 * background scrubber bounds that accumulation window. This bench
 * sweeps the scrub interval and reports the residual uncorrected-error
 * rate of long-resident protected blocks — an extension beyond the
 * paper's model showing how cheap scrubbing closes COP's double-error
 * gap. The sweep points are independent cells on the experiment
 * runner.
 */

#include <cstdio>

#include "reliability/error_model.hpp"
#include "run_util.hpp"

using namespace cop;

int
main(int argc, char **argv)
{
    // A population of protected blocks resident for ~1 hour at 3.2 GHz
    // (cold data: the worst case for error accumulation).
    const double residency = 3600.0 * 3.2e9;
    VulnLog log;
    for (int i = 0; i < 1000; ++i)
        log.record(VulnClass::CopProtected4, residency);

    struct Point
    {
        const char *label;
        double seconds;
    };
    static const Point points[] = {
        {"disabled", 0},    {"1 hour", 3600},
        {"10 minutes", 600}, {"1 minute", 60},
        {"1 second", 1},
    };

    const RunnerOptions opts = parseRunnerOptions(argc, argv);
    const std::vector<double> rates = runCollected<double>(
        std::size(points),
        [&](size_t i) {
            ReliabilityParams params;
            params.scrubIntervalCycles =
                points[i].seconds * params.coreGHz * 1e9;
            return ErrorRateModel(params).evaluate(log).uncorrected;
        },
        opts);

    std::printf("Scrubbing sweep: cold COP-protected data "
                "(1h residency, 5000 FIT/Mbit)\n\n");
    std::printf("%-22s %22s %14s\n", "scrub interval",
                "expected uncorrected", "vs no scrub");
    std::printf("%s\n", std::string(60, '-').c_str());

    const double baseline = rates[0];
    for (size_t i = 0; i < std::size(points); ++i) {
        const double rate = rates[i];
        std::printf("%-22s %22.3e %13.1fx\n", points[i].label, rate,
                    baseline / (rate > 0 ? rate : baseline));
    }
    std::printf("\nDouble-error probability scales with the square of "
                "the accumulation window,\nso an S-times shorter window "
                "cuts the uncorrected rate ~S-fold over a fixed\n"
                "residency (T/S windows of S^2 risk).\n");

    std::string cells;
    for (size_t i = 0; i < std::size(points); ++i) {
        if (i)
            cells += ',';
        bench::JsonObjectBuilder cell;
        cell.add("scrub_interval", std::string(points[i].label));
        cell.add("expected_uncorrected", rates[i]);
        cells += cell.str();
    }
    bench::JsonObjectBuilder top;
    top.add("bench", std::string("ablation_scrubbing"));
    top.addRaw("cells", "[" + cells + "]");
    bench::writeResultsFile("ablation_scrubbing.json", top.str());
    return 0;
}
