/**
 * @file
 * Trace-replay grid: captures per-core traces of one benchmark, then
 * runs the same (scheme × source) cells from the synthetic generator
 * and from binary / text / gzip replays of the capture — and asserts
 * that every replay cell's results JSON is byte-identical to its
 * synthetic twin (DESIGN.md §9's determinism contract, exercised as a
 * bench so the ingestion smoke job gates on it).
 *
 * Usage: trace_replay [--profile NAME] [runner options]
 * Results land in bench/results/trace_replay.json; exit status is
 * non-zero when any replay diverges from its synthetic twin.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "run_util.hpp"
#include "sim/trace_io.hpp"
#include "trace/gzip_source.hpp"
#include "trace/replay.hpp"
#include "trace/text_source.hpp"

namespace cop {
namespace {

struct SchemeRow
{
    ControllerKind kind;
    const char *key;
};

constexpr SchemeRow kSchemes[] = {
    {ControllerKind::Cop4, "cop4"},
    {ControllerKind::CopEr, "coper"},
};

constexpr const char *kSources[] = {"bin", "text", "gz"};

std::filesystem::path
captureDir()
{
    const auto dir = std::filesystem::temp_directory_path() /
                     "cop_trace_replay_bench";
    std::filesystem::create_directories(dir);
    return dir;
}

/** Capture one core's stream in all three encodings. */
void
captureAllFormats(const WorkloadProfile &profile, unsigned core,
                  u64 epochs, const std::filesystem::path &stem)
{
    {
        std::ofstream out(stem.string() + ".coptrc", std::ios::binary);
        if (!out)
            COP_FATAL("cannot write " + stem.string() + ".coptrc");
        captureTrace(profile, core, epochs, out);
    }
    {
        const auto src = openTraceSource(stem.string() + ".coptrc");
        std::ofstream out(stem.string() + ".txt");
        writeTextTrace(*src, out);
    }
    {
        const auto src = openTraceSource(stem.string() + ".coptrc");
        auto file = std::make_unique<std::ofstream>(
            stem.string() + ".coptrc.gz", std::ios::binary);
        const auto gz = makeGzipOstream(std::move(file));
        TraceWriter writer(*gz, src->declaredEpochs());
        Epoch epoch;
        while (src->next(epoch))
            writer.write(epoch);
        writer.finish();
    }
}

std::vector<std::string>
pathsFor(const std::filesystem::path &dir, const std::string &profile,
         unsigned cores, const char *source)
{
    const char *ext = std::strcmp(source, "text") == 0 ? ".txt"
                      : std::strcmp(source, "gz") == 0 ? ".coptrc.gz"
                                                       : ".coptrc";
    std::vector<std::string> paths;
    for (unsigned c = 0; c < cores; ++c) {
        paths.push_back(
            (dir / (profile + ".c" + std::to_string(c) + ext)).string());
    }
    return paths;
}

int
run(int argc, char **argv, const std::string &profile_name)
{
    const WorkloadProfile &profile =
        WorkloadRegistry::byName(profile_name);
    const u64 epochs = bench::benchEpochs(2000);
    const auto dir = captureDir();

    // Phase 1 (untimed setup): capture each core's stream once, in all
    // three encodings.
    SystemConfig base = bench::paperConfig(ControllerKind::Cop4);
    const unsigned cores = base.cores;
    for (unsigned c = 0; c < cores; ++c) {
        captureAllFormats(
            profile, c, epochs,
            dir / (profile.name + ".c" + std::to_string(c)));
    }

    // Phase 2: the grid — every scheme from the synthetic generator
    // and from each encoding of the captured streams.
    bench::GridRunner grid("trace_replay", argc, argv);
    for (const SchemeRow &scheme : kSchemes) {
        SystemConfig cfg = bench::paperConfig(scheme.kind);
        cfg.epochsPerCore = epochs;
        grid.add(profile, cfg, std::string(scheme.key) + "/synthetic");
        for (const char *source : kSources) {
            SystemConfig replay = cfg;
            replay.epochSource = makeTraceReplayFactory(
                profile, pathsFor(dir, profile.name, cores, source));
            grid.add(profile, replay,
                     std::string(scheme.key) + "/" + source);
        }
    }
    grid.run();

    // Phase 3: byte-identity verdicts.
    std::printf("%-10s %-6s %s\n", "scheme", "source", "verdict");
    unsigned mismatches = 0;
    for (const SchemeRow &scheme : kSchemes) {
        std::string synth;
        appendResultsJson(
            synth,
            grid.result(profile.name,
                        std::string(scheme.key) + "/synthetic"));
        for (const char *source : kSources) {
            std::string replay;
            appendResultsJson(
                replay,
                grid.result(profile.name,
                            std::string(scheme.key) + "/" + source));
            const bool match = replay == synth;
            mismatches += !match;
            std::printf("%-10s %-6s %s\n", scheme.key, source,
                        match ? "byte-identical" : "MISMATCH");
        }
    }
    grid.addScalar("replay_mismatches", static_cast<double>(mismatches));
    grid.writeJson();
    if (mismatches != 0) {
        std::fprintf(stderr,
                     "trace_replay: %u replay cell(s) diverged from "
                     "their synthetic twin\n",
                     mismatches);
        return 1;
    }
    return 0;
}

} // namespace
} // namespace cop

int
main(int argc, char **argv)
{
    std::string profile = "mcf";
    // Strip --profile; everything else passes through to the runner.
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
            profile = argv[++i];
        } else {
            rest.push_back(argv[i]);
        }
    }
    return cop::run(static_cast<int>(rest.size()), rest.data(), profile);
}
