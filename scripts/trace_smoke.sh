#!/usr/bin/env bash
# Ingestion smoke test: capture per-core traces, re-encode them as text
# and gzip, replay all three encodings through a two-scheme grid, and
# require every replay report to be byte-identical to the synthetic run
# that produced the capture (the DESIGN.md §9 contract, end to end
# through the CLI).
#
#   scripts/trace_smoke.sh [BUILD_DIR]        quick grid (CI)
#   scripts/trace_smoke.sh [BUILD_DIR] --big  also stream a >= 1 GiB
#                                             trace and verify bounded
#                                             memory (slow; not in CI)
set -euo pipefail

BUILD=${1:-build}
BIG=${2:-}
TOOL="$BUILD/examples/trace_tool"
CLI="$BUILD/examples/cop_sim_cli"
for bin in "$TOOL" "$CLI"; do
    if [ ! -x "$bin" ]; then
        echo "trace_smoke: $bin not built (pass the build dir?)" >&2
        exit 1
    fi
done

WORK=$(mktemp -d "${TMPDIR:-/tmp}/cop_trace_smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

BENCH=mcf
CORES=2
EPOCHS=400

echo "== capture + convert ($BENCH, $CORES cores, $EPOCHS epochs)"
for ((c = 0; c < CORES; ++c)); do
    "$TOOL" capture "$BENCH" "$EPOCHS" "$WORK/t.c$c.coptrc" "$c" >/dev/null
    "$TOOL" convert "$WORK/t.c$c.coptrc" "$WORK/t.c$c.txt" text >/dev/null
    "$TOOL" convert "$WORK/t.c$c.coptrc" "$WORK/t.c$c.coptrc.gz" gz \
        >/dev/null
done

echo "== replay grid (synthetic vs bin/text/gz, serial + sharded)"
for scheme in cop4 coper; do
    "$CLI" --bench "$BENCH" --scheme "$scheme" --cores "$CORES" \
        --epochs "$EPOCHS" >"$WORK/synth.$scheme"
    for ext in coptrc txt coptrc.gz; do
        "$CLI" --bench "$BENCH" --scheme "$scheme" \
            --trace-in "$WORK/t.c0.$ext" --trace-in "$WORK/t.c1.$ext" \
            >"$WORK/replay.$scheme.$ext"
        cmp "$WORK/synth.$scheme" "$WORK/replay.$scheme.$ext"
        echo "   $scheme/$ext: byte-identical"
    done
    # Sharded replay must match too (coordinator-authoritative streams).
    "$CLI" --bench "$BENCH" --scheme "$scheme" --sim-threads 4 \
        --trace-in "$WORK/t.c0.coptrc" --trace-in "$WORK/t.c1.coptrc" \
        >"$WORK/replay.$scheme.sharded"
    cmp "$WORK/synth.$scheme" "$WORK/replay.$scheme.sharded"
    echo "   $scheme/sharded: byte-identical"
done

if [ "$BIG" != "--big" ]; then
    echo "trace_smoke: OK (pass --big for the bounded-memory check)"
    exit 0
fi

echo "== big mode: >= 1 GiB trace, bounded-memory streaming replay"
# Probe the per-epoch size, then capture enough epochs to cross 1 GiB.
"$TOOL" capture "$BENCH" 10000 "$WORK/probe.coptrc" >/dev/null
PROBE_BYTES=$(wc -c <"$WORK/probe.coptrc")
BIG_EPOCHS=$(((1 << 30) / (PROBE_BYTES / 10000) + 10000))
rm -f "$WORK/probe.coptrc"
echo "   capturing $BIG_EPOCHS epochs (~$((PROBE_BYTES / 10000)) B/epoch)"
"$TOOL" capture "$BENCH" "$BIG_EPOCHS" "$WORK/big.coptrc.gz" >/dev/null

# The simulator's own memory legitimately grows with run length
# (per-write version accounting), so an absolute cap would measure the
# simulator, not the ingester. The bounded-memory contract is a DELTA:
# replaying the >= 1 GiB gzip stream (the unseekable, chunked-inflate
# path — nothing may materialise the trace) must cost at most a small
# constant more than the synthetic run of identical length.
if [ ! -r /proc/self/status ]; then
    echo "trace_smoke: no /proc; skipping the bounded-memory check" >&2
    exit 0
fi

# Run "$@", print its peak RSS (VmHWM, kB); fails if the command fails.
peak_rss_kb() {
    "$@" >/dev/null &
    local pid=$! peak=0 v
    while kill -0 "$pid" 2>/dev/null; do
        v=$(awk '/VmHWM/ {print $2}' "/proc/$pid/status" 2>/dev/null ||
            true)
        [ -n "${v:-}" ] && peak=$v
        sleep 0.2
    done
    wait "$pid"
    echo "$peak"
}

SYNTH_KB=$(peak_rss_kb "$CLI" --bench "$BENCH" --scheme unprot \
    --cores 1 --epochs "$BIG_EPOCHS")
REPLAY_KB=$(peak_rss_kb "$CLI" --bench "$BENCH" --scheme unprot \
    --trace-in "$WORK/big.coptrc.gz")
SLACK_KB=$((192 * 1024))
echo "   peak RSS: synthetic ${SYNTH_KB} kB, gzip replay ${REPLAY_KB} kB" \
    "(allowed delta ${SLACK_KB} kB, trace >= 1 GiB uncompressed)"
if [ "$REPLAY_KB" -gt $((SYNTH_KB + SLACK_KB)) ]; then
    echo "trace_smoke: FAIL: ingestion added more than ${SLACK_KB} kB" \
        "over the synthetic run — the trace is being materialised" >&2
    exit 1
fi
echo "trace_smoke: OK (including --big)"
