#!/usr/bin/env python3
"""CI perf-smoke gate for the codec hot paths and the end-to-end
simulation loop.

Three independent gates. The first two compare a fresh `--quick` bench
run against a checked-in baseline at the repo root:

  codec   `micro_codec --quick`   vs BENCH_codec.json  ("after")
  system  `micro_system --quick`  vs BENCH_system.json ("after")

The third is self-relative: `fig13_bandwidth --quick` records the best
COP+BW speedup over protection-only COP across the bandwidth-bound
profiles, and the gate requires it to stay above 1.0 — the shortened-
burst mode must keep beating protection-only somewhere, or the mode
has silently stopped shortening. The speedup is a ratio of simulated
IPCs (deterministic), so unlike the throughput gates it is immune to
runner noise.

A gate fails when throughput regresses by more than the allowed
fraction; a gate whose fresh-results file is missing is skipped with a
notice (so partial local runs still work).

The threshold is deliberately loose (30%): --quick runs on shared CI
runners are noisy, and the gates exist to catch order-of-magnitude
regressions (a kernel silently falling back to the bit-serial path, a
content-cache or flat-map path reverting to regeneration), not
single-digit drift. For a change that legitimately trades throughput
away, apply the `perf-override` label to the PR — the CI job skips
itself when the label is present — and refresh the baseline file per
EXPERIMENTS.md.

A sharded-core gate covers the thread-parallel simulation path:
`micro_system --quick --threads 4` records, per scheme, the wall
speedup of simThreads=4 over simThreads=1 plus the deterministic
offload telemetry (warm-store hit rates, and the Amdahl speedup
modeled from them). The modeled `sharded_speedup_min` scalar and the
COP-scheme offload hit rates are pure functions of the seeded
simulation, so they gate on any host; the wall-clock ratio is gated
only when the recording host had >= 4 CPUs (on smaller hosts — like
single-CPU CI containers — a wall speedup is physically impossible and
the check is skipped loudly).

The same thread-sweep results carry the fast-timing gates
(SystemConfig::fastTiming, DESIGN.md §8.2): the IPC divergence of the
relaxed mode vs. the simThreads=1 oracle on the default profile is a
ratio of two deterministic simulated IPCs and must stay under its
contract ceiling (2% for cop4) on any host, while the fast-timing wall
speedup — the whole point of trading byte-identity away — is gated
only when the recording host had >= 4 CPUs, like the sharded wall
gate.

A fourth gate is fully deterministic: `fault_campaign --quick` records
the fraction of injected 2-flip raw events the on-die SEC filter
miscorrects and the number of ECC-region slots the adaptive-capacity
mode reclaims. Both are functions of seeded simulation state, so they
are gated as exact bands rather than noise-tolerant floors: the
miscorrection fraction must sit in [0.02, 0.40] (outside it the filter
is either inert or pathologically expanding patterns) and the
reclaimed-slot count must be positive on the campaign's compressible
profiles.

Usage: scripts/check_perf.py
         [--codec-baseline BENCH_codec.json]
         [--codec-results bench/results/micro_codec.json]
         [--system-baseline BENCH_system.json]
         [--system-results bench/results/micro_system.json]
         [--system-threads-results
              bench/results/micro_system_threads.json]
         [--bandwidth-results bench/results/fig13_bandwidth.json]
         [--fault-results bench/results/fault_campaign.json]
         [--max-regression 0.30]
         [--sharded-speedup-min 1.8]
"""

import argparse
import json
import os
import sys

CODEC_KEYS = ["encode_cop4", "encode_cop8"]
# End-to-end epochs/sec per controller scheme. The COP-family schemes
# are the ones the content-cache / flat-hash / dedup work targets (and
# the ones a regression would silently slow down); the unprotected
# baseline rides along as a sanity floor for the System loop itself.
SYSTEM_KEYS = ["unprot", "cop4", "cop8", "coper", "coper_naive"]


def gate(name, pairs, max_regression):
    """pairs: list of (key, baseline, fresh). Returns True on failure."""
    floor_frac = 1.0 - max_regression
    failed = False
    for key, base, now in pairs:
        floor = base * floor_frac
        verdict = "ok" if now >= floor else "FAIL"
        print(f"{name}/{key}: {now:,.0f}/s vs baseline {base:,.0f} "
              f"(floor {floor:,.0f}) ... {verdict}")
        failed |= now < floor
    return failed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--codec-baseline", default="BENCH_codec.json")
    parser.add_argument("--codec-results",
                        default="bench/results/micro_codec.json")
    parser.add_argument("--system-baseline", default="BENCH_system.json")
    parser.add_argument("--system-results",
                        default="bench/results/micro_system.json")
    parser.add_argument("--system-threads-results",
                        default="bench/results/micro_system_threads.json")
    parser.add_argument("--bandwidth-results",
                        default="bench/results/fig13_bandwidth.json")
    parser.add_argument("--fault-results",
                        default="bench/results/fault_campaign.json")
    # Back-compat aliases for the original codec-only interface.
    parser.add_argument("--baseline", dest="codec_baseline",
                        help=argparse.SUPPRESS)
    parser.add_argument("--results", dest="codec_results",
                        help=argparse.SUPPRESS)
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="maximum allowed fractional drop (0.30 = "
                             "fail below 70%% of baseline)")
    parser.add_argument("--sharded-speedup-min", type=float, default=1.8,
                        help="floor for the deterministic modeled "
                             "sharded speedup (min over cop4/coper)")
    parser.add_argument("--fast-timing-speedup-min", type=float,
                        default=2.5,
                        help="floor for the fast-timing wall speedup "
                             "(min over cop4/coper; only gated when "
                             "the recording host had >= 4 CPUs)")
    parser.add_argument("--ft-divergence-max", type=float, default=0.02,
                        help="ceiling for the fast-timing IPC "
                             "divergence vs. the simThreads=1 oracle "
                             "on the default profile (cop4)")
    args = parser.parse_args()

    failed = False
    ran_any = False

    if os.path.exists(args.codec_results):
        ran_any = True
        with open(args.codec_baseline) as f:
            base = json.load(f)["after"]
        with open(args.codec_results) as f:
            fresh = json.load(f)["throughput_blocks_per_sec"]
        failed |= gate("codec",
                       [(k, float(base[k]), float(fresh[k]))
                        for k in CODEC_KEYS],
                       args.max_regression)
    else:
        print(f"codec: {args.codec_results} not found, skipping gate")

    if os.path.exists(args.system_results):
        ran_any = True
        # Gate against the recorded --quick floor, not the full-mode
        # "after" showcase: quick passes are constructor-dominated and
        # systematically slower than full passes.
        with open(args.system_baseline) as f:
            base = json.load(f)["after_quick"]["epochs_per_sec"]
        with open(args.system_results) as f:
            fresh = json.load(f)["epochs_per_sec"]
        failed |= gate("system",
                       [(k, float(base[k]), float(fresh[k]))
                        for k in SYSTEM_KEYS],
                       args.max_regression)
    else:
        print(f"system: {args.system_results} not found, skipping gate")

    if os.path.exists(args.system_threads_results):
        ran_any = True
        with open(args.system_threads_results) as f:
            sweep = json.load(f)
        # Deterministic gates first: the modeled speedup and the warm-
        # store hit rates are pure functions of the seeded simulation.
        smin = float(sweep["sharded_speedup_min"])
        smin_ok = smin >= args.sharded_speedup_min
        print(f"sharded/sharded_speedup_min: {smin:.2f}x "
              f"(floor {args.sharded_speedup_min:.2f}x) "
              f"... {'ok' if smin_ok else 'FAIL'}")
        if not smin_ok:
            failed = True
            print("sharded: the modeled sharded speedup fell below its "
                  "floor — the workers are no longer delivering the "
                  "offloadable work ahead of the merge loop.",
                  file=sys.stderr)
        for key in ("cop4", "coper"):
            hr = float(sweep["offload_hit_rate"][key])
            hr_ok = hr >= 0.75
            print(f"sharded/offload_hit_rate/{key}: {hr:.3f} "
                  f"(floor 0.75) ... {'ok' if hr_ok else 'FAIL'}")
            if not hr_ok:
                failed = True
                print(f"sharded: warm-store hit rate for {key} "
                      "collapsed — staged results no longer cover the "
                      "inline hot paths.", file=sys.stderr)
        # Wall-clock ratio only means something with real parallelism
        # under it: skip (loudly) when the recording host was too small.
        host_cpus = int(sweep["host_cpus"])
        if host_cpus >= 4:
            wall = float(sweep["wall_speedup"]["cop4"])
            wall_ok = wall >= 1.1
            print(f"sharded/wall_speedup/cop4: {wall:.2f}x "
                  f"(floor 1.10x, host_cpus={host_cpus}) "
                  f"... {'ok' if wall_ok else 'FAIL'}")
            if not wall_ok:
                failed = True
                print("sharded: simThreads=4 is not beating serial on "
                      "a multi-core host — the sharded path costs more "
                      "than it hides.", file=sys.stderr)
        else:
            print(f"sharded/wall_speedup: skipped (host_cpus="
                  f"{host_cpus} < 4 — no parallelism to measure; the "
                  "modeled gate above still applies)")
        # Fast-timing gates. The IPC divergence vs. the simThreads=1
        # oracle is a ratio of two deterministic simulated IPCs, so it
        # gates on any host; the wall speedup again needs real cores
        # under it. Guarded on key presence so the gate still accepts
        # results files recorded before the fast-timing mode existed.
        if "ft_ipc_divergence" in sweep:
            div = float(sweep["ft_ipc_divergence"]["cop4"])
            div_ok = div <= args.ft_divergence_max
            print(f"fast-timing/ft_ipc_divergence/cop4: {div:.4f} "
                  f"(ceiling {args.ft_divergence_max:.2f}) "
                  f"... {'ok' if div_ok else 'FAIL'}")
            if not div_ok:
                failed = True
                print("fast-timing: the relaxed mode's IPC diverged "
                      "from the serial oracle beyond its contract on "
                      "the default profile — the ambient-contention "
                      "model is mis-calibrated or broken.",
                      file=sys.stderr)
            if host_cpus >= 4:
                ftw = float(sweep["fast_timing_speedup_min"])
                ftw_ok = ftw >= args.fast_timing_speedup_min
                print(f"fast-timing/fast_timing_speedup_min: "
                      f"{ftw:.2f}x "
                      f"(floor {args.fast_timing_speedup_min:.2f}x, "
                      f"host_cpus={host_cpus}) "
                      f"... {'ok' if ftw_ok else 'FAIL'}")
                if not ftw_ok:
                    failed = True
                    print("fast-timing: the relaxed mode no longer "
                          "beats the byte-identical ceiling on a "
                          "multi-core host — the shard barriers or "
                          "the partitioned LLC are costing more than "
                          "the parallelism pays.", file=sys.stderr)
            else:
                print(f"fast-timing/fast_timing_speedup_min: skipped "
                      f"(host_cpus={host_cpus} < 4 — no parallelism "
                      "to measure; the divergence gate above still "
                      "applies)")
    else:
        print(f"sharded: {args.system_threads_results} not found, "
              "skipping gate")

    if os.path.exists(args.bandwidth_results):
        ran_any = True
        with open(args.bandwidth_results) as f:
            derived = json.load(f)["derived"]
        best = float(derived["cop_bw_best_speedup"])
        verdict = "ok" if best > 1.0 else "FAIL"
        print(f"bandwidth/cop_bw_best_speedup: {best:.3f}x "
              f"(must exceed 1.0) ... {verdict}")
        if best <= 1.0:
            failed = True
            print("bandwidth: COP+BW no longer beats protection-only "
                  "COP on any bandwidth-bound profile — the shortened-"
                  "burst mode has stopped paying for itself.",
                  file=sys.stderr)
    else:
        print(f"bandwidth: {args.bandwidth_results} not found, "
              "skipping gate")

    if os.path.exists(args.fault_results):
        ran_any = True
        with open(args.fault_results) as f:
            derived = json.load(f)["derived"]
        # Deterministic band, not a noise floor: both scalars are pure
        # functions of the seeded simulation.
        mc_frac = float(derived["ondie_f2_miscorrect_frac"])
        mc_ok = 0.02 <= mc_frac <= 0.40
        print(f"fault/ondie_f2_miscorrect_frac: {mc_frac:.3f} "
              f"(band [0.02, 0.40]) ... {'ok' if mc_ok else 'FAIL'}")
        if not mc_ok:
            failed = True
            print("fault: the on-die SEC filter's 2-flip miscorrection "
                  "fraction left its band — the filter is inert or "
                  "mis-wired.", file=sys.stderr)
        reclaimed = float(derived["adaptive_slots_reclaimed"])
        ad_ok = reclaimed > 0
        print(f"fault/adaptive_slots_reclaimed: {reclaimed:.0f} "
              f"(must be positive) ... {'ok' if ad_ok else 'FAIL'}")
        if not ad_ok:
            failed = True
            print("fault: adaptive capacity reclaimed nothing on the "
                  "campaign's compressible profiles.", file=sys.stderr)
        ad_silent = float(derived["adaptive_f1_silent"])
        sdc_ok = ad_silent == 0
        print(f"fault/adaptive_f1_silent: {ad_silent:.0f} "
              f"(must be zero) ... {'ok' if sdc_ok else 'FAIL'}")
        if not sdc_ok:
            failed = True
            print("fault: single-flip faults under adaptive capacity "
                  "produced silent corruption — a demotion corrupted "
                  "committed data.", file=sys.stderr)
    else:
        print(f"fault: {args.fault_results} not found, skipping gate")

    if not ran_any:
        print("perf-smoke: no fresh bench results found — run "
              "micro_codec --quick / micro_system --quick first.",
              file=sys.stderr)
        return 1
    if failed:
        print("\nperf-smoke: throughput regressed more than "
              f"{args.max_regression:.0%} vs the checked-in baseline.",
              file=sys.stderr)
        print("If intentional, add the 'perf-override' label to the PR "
              "and refresh BENCH_codec.json / BENCH_system.json (see "
              "EXPERIMENTS.md).", file=sys.stderr)
        return 1
    print("perf-smoke: within budget.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
