#!/usr/bin/env python3
"""CI perf-smoke gate for the codec hot paths.

Compares a fresh `micro_codec --quick` run against the checked-in
baseline (BENCH_codec.json at the repo root, the "after" numbers of the
word-wise-kernel rewrite) and fails when encode throughput regresses by
more than the allowed fraction.

The threshold is deliberately loose (30%): --quick runs on shared CI
runners are noisy, and the gate exists to catch order-of-magnitude
regressions (e.g. a kernel silently falling back to the bit-serial
path), not single-digit drift. For a change that legitimately trades
encode throughput away, apply the `perf-override` label to the PR —
the CI job skips itself when the label is present — and refresh
BENCH_codec.json per EXPERIMENTS.md.

Usage: scripts/check_perf.py [--baseline BENCH_codec.json]
                             [--results bench/results/micro_codec.json]
                             [--max-regression 0.30]
"""

import argparse
import json
import sys

GATED_KEYS = ["encode_cop4", "encode_cop8"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="BENCH_codec.json")
    parser.add_argument("--results",
                        default="bench/results/micro_codec.json")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="maximum allowed fractional drop (0.30 = "
                             "fail below 70%% of baseline)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)["after"]
    with open(args.results) as f:
        fresh = json.load(f)["throughput_blocks_per_sec"]

    floor_frac = 1.0 - args.max_regression
    failed = False
    for key in GATED_KEYS:
        base = float(baseline[key])
        now = float(fresh[key])
        floor = base * floor_frac
        verdict = "ok" if now >= floor else "FAIL"
        print(f"{key}: {now:,.0f} blocks/s vs baseline {base:,.0f} "
              f"(floor {floor:,.0f}) ... {verdict}")
        failed |= now < floor

    if failed:
        print("\nperf-smoke: encode throughput regressed more than "
              f"{args.max_regression:.0%} vs BENCH_codec.json.",
              file=sys.stderr)
        print("If intentional, add the 'perf-override' label to the PR "
              "and refresh BENCH_codec.json (see EXPERIMENTS.md).",
              file=sys.stderr)
        return 1
    print("perf-smoke: within budget.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
