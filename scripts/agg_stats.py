#!/usr/bin/env python3
"""Validate and tabulate COP stats traces.

A stats trace is the JSONL file written by `SystemConfig::traceStatsPath`
(or, for benches, by setting `COP_TRACE_STATS=<dir>`): one snapshot per
line, each carrying per-counter deltas since the previous snapshot and
cumulative latency-histogram summaries.

Usage:
  agg_stats.py TRACE.jsonl              per-epoch counter table
  agg_stats.py TRACE.jsonl --check      schema-validate; exit 1 on error
  agg_stats.py TRACE.jsonl --counters dram.reads,mem.fills
  agg_stats.py TRACE.jsonl --hist dram.read_latency
  agg_stats.py TRACE.jsonl --totals     summed deltas over the whole run

Multiple traces can be given; each is processed independently.
"""

import argparse
import json
import signal
import sys

HIST_KEYS = ("count", "delta_count", "p50", "p95", "p99", "max")


def fail(path, lineno, msg):
    sys.exit(f"{path}:{lineno}: {msg}")


def nonneg_int(value):
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


BUS_GAUGES = ("dram.bus_read_beats", "dram.bus_write_beats",
              "dram.bus_beats_saved", "dram.bus_busy_cycles",
              "dram.bus_turnarounds")


def check_bus_gauges(path, lineno, counters):
    """Validate the bus-utilisation gauges of one snapshot's deltas.

    Any trace whose DRAM registered its stats must carry the bus
    gauges, and beats are conserved: every access is scheduled as an
    8-beat budget, split between beats actually transferred and beats
    saved by a shortened burst, so per snapshot
      delta(read_beats + write_beats) + delta(beats_saved)
        == 8 * delta(reads + writes).
    The per-channel busy-cycle gauges must also sum to the total.
    """
    if "dram.reads" not in counters:
        return
    for name in BUS_GAUGES:
        if name not in counters:
            fail(path, lineno, f"missing bus gauge {name!r}")
    beats = counters["dram.bus_read_beats"] + counters["dram.bus_write_beats"]
    saved = counters["dram.bus_beats_saved"]
    accesses = counters["dram.reads"] + counters["dram.writes"]
    if beats + saved != 8 * accesses:
        fail(path, lineno,
             f"bus beats not conserved: {beats} transferred + {saved} "
             f"saved != 8 * {accesses} accesses")
    per_channel = [v for n, v in counters.items()
                   if n.startswith("dram.bus_busy_cycles_ch")]
    if per_channel and sum(per_channel) != counters["dram.bus_busy_cycles"]:
        fail(path, lineno,
             "per-channel bus busy cycles do not sum to the total")


ONDIE_GAUGES = ("ondie.injected", "ondie.corrected",
                "ondie.miscorrected", "ondie.forwarded")
ADAPTIVE_GAUGES = ("adaptive.slots_reclaimed", "adaptive.demotions",
                   "adaptive.victim_evictions",
                   "adaptive.released_blocks_hw")


def check_ondie_gauges(path, lineno, counters):
    """Validate the on-die SEC filter gauges of one snapshot's deltas.

    The filter partitions every injected raw pattern into exactly one
    outcome, so per snapshot
      delta(corrected + miscorrected + forwarded) == delta(injected).
    """
    if "ondie.injected" not in counters:
        return
    for name in ONDIE_GAUGES:
        if name not in counters:
            fail(path, lineno, f"missing on-die gauge {name!r}")
    filtered = (counters["ondie.corrected"]
                + counters["ondie.miscorrected"]
                + counters["ondie.forwarded"])
    if filtered != counters["ondie.injected"]:
        fail(path, lineno,
             f"on-die outcomes not conserved: {filtered} classified != "
             f"{counters['ondie.injected']} injected")


TRACE_GAUGES = ("trace.epochs_read", "trace.accesses_read",
                "trace.epochs_replayed", "trace.accesses_replayed")


def check_trace_gauges(path, lineno, counters):
    """Validate the trace-replay gauges of one snapshot's deltas.

    Replay runs register conservation counters: every epoch (and every
    access) a trace source hands out is consumed by the simulation
    before the snapshot is cut, so per snapshot
      delta(epochs_read) == delta(epochs_replayed)  and
      delta(accesses_read) == delta(accesses_replayed).
    Synthetic runs carry none of these gauges.
    """
    if "trace.epochs_read" not in counters:
        return
    for name in TRACE_GAUGES:
        if name not in counters:
            fail(path, lineno, f"missing trace gauge {name!r}")
    if counters["trace.epochs_read"] != counters["trace.epochs_replayed"]:
        fail(path, lineno,
             f"trace epochs not conserved: "
             f"{counters['trace.epochs_read']} read != "
             f"{counters['trace.epochs_replayed']} replayed")
    if (counters["trace.accesses_read"]
            != counters["trace.accesses_replayed"]):
        fail(path, lineno,
             f"trace accesses not conserved: "
             f"{counters['trace.accesses_read']} read != "
             f"{counters['trace.accesses_replayed']} replayed")


def check_adaptive_gauges(path, lineno, counters, running):
    """Validate the adaptive-capacity gauges (running totals).

    Every demotion reclaims a slot that was previously released, so
    over any prefix of the run demotions <= slots_reclaimed, and each
    demotion evicts exactly one victim.
    """
    if "adaptive.slots_reclaimed" not in counters:
        return
    for name in ADAPTIVE_GAUGES:
        if name not in counters:
            fail(path, lineno, f"missing adaptive gauge {name!r}")
        running[name] = running.get(name, 0) + counters[name]
    if running["adaptive.demotions"] > running["adaptive.slots_reclaimed"]:
        fail(path, lineno,
             f"adaptive demotions ({running['adaptive.demotions']}) "
             f"exceed slots ever reclaimed "
             f"({running['adaptive.slots_reclaimed']})")
    if counters["adaptive.victim_evictions"] != counters["adaptive.demotions"]:
        fail(path, lineno,
             "adaptive victim evictions != demotions in snapshot")


DIVERGENCE_GAUGES = ("shard.divergence_barriers",
                     "shard.divergence_ambient_stall_cycles",
                     "shard.divergence_ambient_row_closes",
                     "shard.divergence_clock_skew_max",
                     "shard.divergence_version_merges")


def check_divergence_gauges(path, lineno, counters):
    """Validate the fast-timing divergence gauges (when present).

    Only fast-timing runs (SystemConfig::fastTiming) register the
    shard.divergence_* family — exact runs must not carry it. When any
    member appears, all of them must: the divergence contract promises
    the approximation is reported in full, never selectively. All are
    running totals (clock_skew_max is a running max), so the drained
    per-snapshot deltas the schema checks elsewhere are non-negative
    by construction.
    """
    present = [name for name in DIVERGENCE_GAUGES if name in counters]
    if not present or len(present) == len(DIVERGENCE_GAUGES):
        return
    missing = sorted(set(DIVERGENCE_GAUGES) - set(present))
    fail(path, lineno,
         f"fast-timing trace carries {present[0]!r} but is missing "
         f"divergence gauge(s) {missing}")


def load(path):
    """Parse and schema-check one trace; returns the snapshot list."""
    snapshots = []
    prev_epoch = -1
    prev_cycle = -1
    counter_keys = None
    hist_keys = None
    prev_hist_counts = {}
    adaptive_running = {}
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                fail(path, lineno, "blank line inside trace")
            try:
                snap = json.loads(line)
            except json.JSONDecodeError as err:
                fail(path, lineno, f"invalid JSON: {err}")
            if not isinstance(snap, dict):
                fail(path, lineno, "snapshot is not an object")
            for key in ("epoch", "cycle", "counters", "histograms"):
                if key not in snap:
                    fail(path, lineno, f"missing key {key!r}")
            if not nonneg_int(snap["epoch"]):
                fail(path, lineno, "epoch must be a non-negative integer")
            if not nonneg_int(snap["cycle"]):
                fail(path, lineno, "cycle must be a non-negative integer")
            if snap["epoch"] < prev_epoch:
                fail(path, lineno, "epoch went backwards")
            if snap["cycle"] < prev_cycle:
                fail(path, lineno, "cycle went backwards")
            prev_epoch, prev_cycle = snap["epoch"], snap["cycle"]

            counters = snap["counters"]
            if not isinstance(counters, dict):
                fail(path, lineno, "counters is not an object")
            for name, value in counters.items():
                if not nonneg_int(value):
                    fail(path, lineno, f"counter {name!r} not a non-negative int")
            if counter_keys is None:
                counter_keys = set(counters)
            elif set(counters) != counter_keys:
                fail(path, lineno, "counter key set changed mid-trace")
            check_bus_gauges(path, lineno, counters)
            check_ondie_gauges(path, lineno, counters)
            check_trace_gauges(path, lineno, counters)
            check_adaptive_gauges(path, lineno, counters,
                                  adaptive_running)
            check_divergence_gauges(path, lineno, counters)

            hists = snap["histograms"]
            if not isinstance(hists, dict):
                fail(path, lineno, "histograms is not an object")
            for name, summary in hists.items():
                if not isinstance(summary, dict):
                    fail(path, lineno, f"histogram {name!r} not an object")
                if set(summary) != set(HIST_KEYS):
                    fail(path, lineno,
                         f"histogram {name!r} keys {sorted(summary)} != "
                         f"{sorted(HIST_KEYS)}")
                for key, value in summary.items():
                    if not nonneg_int(value):
                        fail(path, lineno,
                             f"histogram {name!r}.{key} not a non-negative int")
                if summary["delta_count"] > summary["count"]:
                    fail(path, lineno,
                         f"histogram {name!r} delta_count exceeds count")
                if summary["count"] < prev_hist_counts.get(name, 0):
                    fail(path, lineno,
                         f"histogram {name!r} count went backwards")
                prev_hist_counts[name] = summary["count"]
                if summary["max"] and (summary["p50"] > summary["max"]
                                       or summary["p99"] > summary["max"]):
                    fail(path, lineno,
                         f"histogram {name!r} percentile exceeds max")
            if hist_keys is None:
                hist_keys = set(hists)
            elif set(hists) != hist_keys:
                fail(path, lineno, "histogram key set changed mid-trace")
            snapshots.append(snap)
    if not snapshots:
        fail(path, 0, "empty trace")
    return snapshots


def pick_counters(snapshots, requested):
    available = list(snapshots[0]["counters"])
    if not requested:
        return available
    names = [n for n in requested.split(",") if n]
    for name in names:
        if name not in snapshots[0]["counters"]:
            sys.exit(f"unknown counter {name!r}; available: "
                     f"{', '.join(available)}")
    return names


def print_table(path, snapshots, names):
    widths = [max(len(n), 12) for n in names]
    header = f"{'epoch':>10} {'cycle':>14} " + " ".join(
        f"{n:>{w}}" for n, w in zip(names, widths))
    print(f"# {path}")
    print(header)
    print("-" * len(header))
    for snap in snapshots:
        row = f"{snap['epoch']:>10} {snap['cycle']:>14} " + " ".join(
            f"{snap['counters'][n]:>{w}}" for n, w in zip(names, widths))
        print(row)


def print_hist(path, snapshots, name):
    if name not in snapshots[0]["histograms"]:
        available = ", ".join(snapshots[0]["histograms"])
        sys.exit(f"unknown histogram {name!r}; available: {available}")
    print(f"# {path} :: {name}")
    header = (f"{'epoch':>10} {'count':>12} {'delta':>10} {'p50':>8} "
              f"{'p95':>8} {'p99':>8} {'max':>8}")
    print(header)
    print("-" * len(header))
    for snap in snapshots:
        s = snap["histograms"][name]
        print(f"{snap['epoch']:>10} {s['count']:>12} "
              f"{s['delta_count']:>10} {s['p50']:>8} {s['p95']:>8} "
              f"{s['p99']:>8} {s['max']:>8}")


def print_totals(path, snapshots):
    print(f"# {path} (summed deltas, {len(snapshots)} snapshots)")
    totals = {}
    for snap in snapshots:
        for name, value in snap["counters"].items():
            totals[name] = totals.get(name, 0) + value
    width = max(len(n) for n in totals)
    for name in totals:
        print(f"  {name:<{width}}  {totals[name]}")


def main():
    # Die quietly when piped into head & co.
    if hasattr(signal, "SIGPIPE"):
        signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("traces", nargs="+", help="JSONL stats trace(s)")
    parser.add_argument("--check", action="store_true",
                        help="schema-validate only; exit 1 on violation")
    parser.add_argument("--counters",
                        help="comma-separated counter names to tabulate")
    parser.add_argument("--hist",
                        help="tabulate one histogram's summary per epoch")
    parser.add_argument("--totals", action="store_true",
                        help="print summed counter deltas over the run")
    args = parser.parse_args()

    for path in args.traces:
        snapshots = load(path)
        if args.check:
            print(f"OK: {path}: {len(snapshots)} snapshots, "
                  f"{len(snapshots[0]['counters'])} counters, "
                  f"{len(snapshots[0]['histograms'])} histograms")
        elif args.hist:
            print_hist(path, snapshots, args.hist)
        elif args.totals:
            print_totals(path, snapshots)
        else:
            print_table(path, snapshots,
                        pick_counters(snapshots, args.counters))


if __name__ == "__main__":
    main()
