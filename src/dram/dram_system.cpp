#include "dram/dram_system.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace {

/**
 * Deterministic uniform draw in [0, 1) from (address, arrival) — a
 * splitmix64-style finalizer, so the ambient row-close model needs no
 * RNG state and fast-timing runs stay reproducible.
 */
double
ambientHash(cop::Addr addr, cop::Cycle arrival)
{
    cop::u64 x = addr * 0x9E3779B97F4A7C15ULL ^
                 (arrival + 0xD1B54A32D192ED03ULL);
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ULL;
    x ^= x >> 33;
    return static_cast<double>(x >> 11) * 0x1.0p-53;
}

} // namespace

namespace cop {

DramSystem::DramSystem(const DramConfig &cfg) : cfg_(cfg), map_(cfg)
{
    cfg_.validate();
    channels_.resize(cfg_.channels);
    for (auto &ch : channels_) {
        ch.banks.resize(
            static_cast<size_t>(cfg_.ranksPerChannel) * cfg_.banksPerRank);
        ch.ranks.resize(cfg_.ranksPerChannel);
    }
}

void
DramSystem::setAmbientBusLoad(double load)
{
    if (load < 0.0)
        load = 0.0;
    if (load > 0.9)
        load = 0.9; // bound 1/(1-load)
    // Calibrated against the simThreads=1 oracle (see DESIGN.md §8.2).
    // The raw processor-sharing stretch load/(1-load) is amplified by
    // kAmbientGain: the mean-load view misses transient burst
    // collisions (several cores' epoch boundaries lining up), and the
    // partitioned shard also keeps row hits the shared banks would
    // have lost to cross-core row closes. It is capped at
    // kAmbientCap: each core's bounded miss-level parallelism closes
    // the queueing loop, so the real slowdown saturates near the
    // fair-bandwidth share instead of growing without bound.
    constexpr double kAmbientGain = 1.45;
    constexpr double kAmbientCap = 0.8;
    ambientLoad_ = load;
    ambientFactor_ =
        std::min(kAmbientGain * load / (1.0 - load), kAmbientCap);
}

DramSystem::Bank &
DramSystem::bankAt(const DramLocation &loc)
{
    return channels_[loc.channel]
        .banks[static_cast<size_t>(loc.rank) * cfg_.banksPerRank + loc.bank];
}

DramSystem::Rank &
DramSystem::rankAt(const DramLocation &loc)
{
    return channels_[loc.channel].ranks[loc.rank];
}

Cycle
DramSystem::refreshAdjusted(Cycle cycle) const
{
    if (!cfg_.refreshEnabled)
        return cycle;
    // All-bank refresh every tREFI; a command landing inside the tRFC
    // window slips to its end.
    const Cycle phase = cycle % cfg_.tREFI;
    if (phase < cfg_.tRFC)
        return cycle - phase + cfg_.tRFC;
    return cycle;
}

Cycle
DramSystem::adjustForRefresh(Cycle cycle)
{
    const Cycle adjusted = refreshAdjusted(cycle);
    if (adjusted != cycle)
        ++stats_.refreshStalls;
    return adjusted;
}

Cycle
DramSystem::adjustForRefreshColumn(Cycle cycle)
{
    const Cycle adjusted = refreshAdjusted(cycle);
    if (adjusted != cycle)
        ++stats_.refreshStallsCas;
    return adjusted;
}

Cycle
DramSystem::rankActConstraint(const Rank &rank, Cycle earliest) const
{
    // Per-rank activate constraints: tRRD and the 4-activate window
    // (only binding once enough prior activates exist).
    if (rank.actCount >= 1)
        earliest = std::max(earliest, rank.lastAct + cfg_.tRRD);
    if (rank.actCount >= 4) {
        earliest =
            std::max(earliest, rank.lastActs[rank.actPtr] + cfg_.tFAW);
    }
    return earliest;
}

Cycle
DramSystem::bankReadyHint(Addr addr) const
{
    const DramLocation loc = map_.decode(addr);
    const Bank &bank =
        channels_[loc.channel]
            .banks[static_cast<size_t>(loc.rank) * cfg_.banksPerRank +
                   loc.bank];
    const Rank &rank = channels_[loc.channel].ranks[loc.rank];

    if (bank.rowOpen && bank.openRow == loc.row)
        return refreshAdjusted(bank.casReady);
    const Cycle act = bank.rowOpen ? bank.preReady + cfg_.tRP
                                   : bank.actReady;
    return refreshAdjusted(rankActConstraint(rank, act));
}

DramResult
DramSystem::access(const DramRequest &req)
{
    const DramLocation loc = map_.decode(req.addr);
    Channel &channel = channels_[loc.channel];
    Bank &bank = bankAt(loc);
    Rank &rank = rankAt(loc);

    DramResult result;
    Cycle cas; // cycle the column command issues

    bool row_hit = bank.rowOpen && bank.openRow == loc.row;
    if (row_hit && ambientCloseRate_ > 0.0) {
        // Ambient row-buffer interference (fast-timing mode): the
        // longer the bank sat untouched by this shard, the likelier
        // another shard's access closed the row in the meantime. A
        // demoted hit takes the row-conflict path below — precharge
        // then activate — exactly what the shared model charges when
        // another core's row is open.
        const Cycle gap = req.arrival > bank.lastUse
                              ? req.arrival - bank.lastUse
                              : 0;
        const double survive =
            std::exp(-ambientCloseRate_ * static_cast<double>(gap));
        if (ambientHash(req.addr, req.arrival) >= survive) {
            row_hit = false;
            ++stats_.ambientRowCloses;
        }
    }
    bank.lastUse = req.arrival;

    if (row_hit) {
        // Row hit: column access only.
        result.rowHit = true;
        ++stats_.rowHits;
        cas = std::max(req.arrival, bank.casReady);
    } else {
        // Need an activate; maybe a precharge first.
        Cycle act_earliest;
        if (bank.rowOpen) {
            result.rowConflict = true;
            ++stats_.rowConflicts;
            const Cycle pre = std::max(req.arrival, bank.preReady);
            act_earliest = pre + cfg_.tRP;
        } else {
            ++stats_.rowMisses;
            act_earliest = std::max(req.arrival, bank.actReady);
        }
        const Cycle act =
            adjustForRefresh(rankActConstraint(rank, act_earliest));

        rank.lastActs[rank.actPtr] = act;
        rank.actPtr = (rank.actPtr + 1) % 4;
        ++rank.actCount;
        rank.lastAct = act;

        bank.rowOpen = true;
        bank.openRow = loc.row;
        bank.casReady = act + cfg_.tRCD;
        bank.preReady = act + cfg_.tRAS;
        cas = bank.casReady;
        cas = std::max(cas, req.arrival);
    }

    // The DRAM is unavailable during all-bank refresh: column commands
    // (and the data bursts they start) must sit out a tRFC window just
    // like activates. Counted separately from ACT stalls — a row hit
    // stalling here is pure refresh exposure, not bank contention.
    cas = adjustForRefreshColumn(cas);

    // Data transfer on the shared channel bus. The burst occupies the
    // bus for burstBeats/8 of a full tBURST (2 CPU cycles per beat at
    // the default timing); a direction flip against the previous burst
    // first pays the tWTR (write->read) or tRTW (read->write)
    // turnaround gap.
    COP_ASSERT(req.burstBeats >= 1 && req.burstBeats <= 8);
    const Cycle burst = cfg_.tBURST * req.burstBeats / 8;
    const Cycle cas_to_data = req.isWrite ? cfg_.tCWL : cfg_.tCL;
    Cycle bus_ready = channel.busFree;
    if (channel.hasTransfer && channel.lastWasWrite != req.isWrite) {
        bus_ready += channel.lastWasWrite ? cfg_.tWTR : cfg_.tRTW;
        ++stats_.busTurnarounds;
    }
    Cycle data = std::max(cas + cas_to_data, bus_ready);
    channel.busFree = data + burst;
    channel.hasTransfer = true;
    channel.lastWasWrite = req.isWrite;
    channel.busBusy += burst;
    stats_.busBusyCycles += burst;
    stats_.beatsSaved += 8 - req.burstBeats;
    const Cycle physical_complete = data + burst;
    result.complete = physical_complete;
    if (ambientFactor_ > 0.0) {
        // Fast-timing ambient load: this shard owns only a
        // (1 - load) share of the memory system's service capacity —
        // the other shards' interleaved traffic stretches every
        // arrival-to-data sojourn by a calibrated factor of
        // load / (1 - load). The stretch delays only the *requester*
        // (and the recorded latency, mirroring the oracle's queueing);
        // bank and bus state keep the physical completion time — bank-
        // level cross-shard interference is modelled separately by the
        // ambient row-close draw above, and letting the stretch
        // compound through the write-recovery back-annotation
        // double-counts it.
        const Cycle extra = static_cast<Cycle>(
            static_cast<double>(physical_complete - req.arrival) *
                ambientFactor_ +
            0.5);
        result.complete += extra;
        stats_.ambientStallCycles += extra;
    }

    // Back-annotate bank state (physical times, never the stretch).
    const Cycle effective_cas = data - cas_to_data;
    bank.casReady = std::max(bank.casReady, effective_cas + cfg_.tCCD);
    if (req.isWrite) {
        ++stats_.writes;
        stats_.writeBeats += req.burstBeats;
        bank.preReady =
            std::max(bank.preReady, physical_complete + cfg_.tWR);
        stats_.totalWriteLatency += result.complete - req.arrival;
        stats_.writeLatency.record(result.complete - req.arrival);
    } else {
        ++stats_.reads;
        stats_.readBeats += req.burstBeats;
        bank.preReady =
            std::max(bank.preReady, effective_cas + cfg_.tRTP);
        stats_.totalReadLatency += result.complete - req.arrival;
        stats_.readLatency.record(result.complete - req.arrival);
    }
    // Either policy precharges no earlier than preReady, so a future
    // activate waits out tRP past it; the policies differ only in
    // whether the row is still open for hits in the meantime.
    bank.actReady = std::max(bank.actReady, bank.preReady + cfg_.tRP);
    if (cfg_.rowPolicy == RowPolicy::Closed)
        bank.rowOpen = false; // auto-precharge: next access re-activates

    return result;
}

void
DramSystem::registerStats(StatsRegistry &reg) const
{
    reg.gauge("dram.reads", [this] { return stats_.reads; });
    reg.gauge("dram.writes", [this] { return stats_.writes; });
    reg.gauge("dram.row_hits", [this] { return stats_.rowHits; });
    reg.gauge("dram.row_misses", [this] { return stats_.rowMisses; });
    reg.gauge("dram.row_conflicts",
              [this] { return stats_.rowConflicts; });
    reg.gauge("dram.refresh_stalls_act",
              [this] { return stats_.refreshStalls; });
    reg.gauge("dram.refresh_stalls_cas",
              [this] { return stats_.refreshStallsCas; });
    reg.gauge("dram.bus_read_beats", [this] { return stats_.readBeats; });
    reg.gauge("dram.bus_write_beats",
              [this] { return stats_.writeBeats; });
    reg.gauge("dram.bus_beats_saved",
              [this] { return stats_.beatsSaved; });
    reg.gauge("dram.bus_busy_cycles",
              [this] { return stats_.busBusyCycles; });
    reg.gauge("dram.bus_turnarounds",
              [this] { return stats_.busTurnarounds; });
    for (unsigned c = 0; c < cfg_.channels; ++c) {
        reg.gauge("dram.bus_busy_cycles_ch" + std::to_string(c),
                  [this, c] { return channels_[c].busBusy; });
    }
    reg.histogram("dram.read_latency", &stats_.readLatency);
    reg.histogram("dram.write_latency", &stats_.writeLatency);
}

} // namespace cop
