#include "dram/dram_system.hpp"

#include <algorithm>
#include <string>

namespace cop {

DramSystem::DramSystem(const DramConfig &cfg) : cfg_(cfg), map_(cfg)
{
    cfg_.validate();
    channels_.resize(cfg_.channels);
    for (auto &ch : channels_) {
        ch.banks.resize(
            static_cast<size_t>(cfg_.ranksPerChannel) * cfg_.banksPerRank);
        ch.ranks.resize(cfg_.ranksPerChannel);
    }
}

DramSystem::Bank &
DramSystem::bankAt(const DramLocation &loc)
{
    return channels_[loc.channel]
        .banks[static_cast<size_t>(loc.rank) * cfg_.banksPerRank + loc.bank];
}

DramSystem::Rank &
DramSystem::rankAt(const DramLocation &loc)
{
    return channels_[loc.channel].ranks[loc.rank];
}

Cycle
DramSystem::refreshAdjusted(Cycle cycle) const
{
    if (!cfg_.refreshEnabled)
        return cycle;
    // All-bank refresh every tREFI; a command landing inside the tRFC
    // window slips to its end.
    const Cycle phase = cycle % cfg_.tREFI;
    if (phase < cfg_.tRFC)
        return cycle - phase + cfg_.tRFC;
    return cycle;
}

Cycle
DramSystem::adjustForRefresh(Cycle cycle)
{
    const Cycle adjusted = refreshAdjusted(cycle);
    if (adjusted != cycle)
        ++stats_.refreshStalls;
    return adjusted;
}

Cycle
DramSystem::adjustForRefreshColumn(Cycle cycle)
{
    const Cycle adjusted = refreshAdjusted(cycle);
    if (adjusted != cycle)
        ++stats_.refreshStallsCas;
    return adjusted;
}

Cycle
DramSystem::rankActConstraint(const Rank &rank, Cycle earliest) const
{
    // Per-rank activate constraints: tRRD and the 4-activate window
    // (only binding once enough prior activates exist).
    if (rank.actCount >= 1)
        earliest = std::max(earliest, rank.lastAct + cfg_.tRRD);
    if (rank.actCount >= 4) {
        earliest =
            std::max(earliest, rank.lastActs[rank.actPtr] + cfg_.tFAW);
    }
    return earliest;
}

Cycle
DramSystem::bankReadyHint(Addr addr) const
{
    const DramLocation loc = map_.decode(addr);
    const Bank &bank =
        channels_[loc.channel]
            .banks[static_cast<size_t>(loc.rank) * cfg_.banksPerRank +
                   loc.bank];
    const Rank &rank = channels_[loc.channel].ranks[loc.rank];

    if (bank.rowOpen && bank.openRow == loc.row)
        return refreshAdjusted(bank.casReady);
    const Cycle act = bank.rowOpen ? bank.preReady + cfg_.tRP
                                   : bank.actReady;
    return refreshAdjusted(rankActConstraint(rank, act));
}

DramResult
DramSystem::access(const DramRequest &req)
{
    const DramLocation loc = map_.decode(req.addr);
    Channel &channel = channels_[loc.channel];
    Bank &bank = bankAt(loc);
    Rank &rank = rankAt(loc);

    DramResult result;
    Cycle cas; // cycle the column command issues

    if (bank.rowOpen && bank.openRow == loc.row) {
        // Row hit: column access only.
        result.rowHit = true;
        ++stats_.rowHits;
        cas = std::max(req.arrival, bank.casReady);
    } else {
        // Need an activate; maybe a precharge first.
        Cycle act_earliest;
        if (bank.rowOpen) {
            result.rowConflict = true;
            ++stats_.rowConflicts;
            const Cycle pre = std::max(req.arrival, bank.preReady);
            act_earliest = pre + cfg_.tRP;
        } else {
            ++stats_.rowMisses;
            act_earliest = std::max(req.arrival, bank.actReady);
        }
        const Cycle act =
            adjustForRefresh(rankActConstraint(rank, act_earliest));

        rank.lastActs[rank.actPtr] = act;
        rank.actPtr = (rank.actPtr + 1) % 4;
        ++rank.actCount;
        rank.lastAct = act;

        bank.rowOpen = true;
        bank.openRow = loc.row;
        bank.casReady = act + cfg_.tRCD;
        bank.preReady = act + cfg_.tRAS;
        cas = bank.casReady;
        cas = std::max(cas, req.arrival);
    }

    // The DRAM is unavailable during all-bank refresh: column commands
    // (and the data bursts they start) must sit out a tRFC window just
    // like activates. Counted separately from ACT stalls — a row hit
    // stalling here is pure refresh exposure, not bank contention.
    cas = adjustForRefreshColumn(cas);

    // Data transfer on the shared channel bus. The burst occupies the
    // bus for burstBeats/8 of a full tBURST (2 CPU cycles per beat at
    // the default timing); a direction flip against the previous burst
    // first pays the tWTR (write->read) or tRTW (read->write)
    // turnaround gap.
    COP_ASSERT(req.burstBeats >= 1 && req.burstBeats <= 8);
    const Cycle burst = cfg_.tBURST * req.burstBeats / 8;
    const Cycle cas_to_data = req.isWrite ? cfg_.tCWL : cfg_.tCL;
    Cycle bus_ready = channel.busFree;
    if (channel.hasTransfer && channel.lastWasWrite != req.isWrite) {
        bus_ready += channel.lastWasWrite ? cfg_.tWTR : cfg_.tRTW;
        ++stats_.busTurnarounds;
    }
    Cycle data = std::max(cas + cas_to_data, bus_ready);
    channel.busFree = data + burst;
    channel.hasTransfer = true;
    channel.lastWasWrite = req.isWrite;
    channel.busBusy += burst;
    stats_.busBusyCycles += burst;
    stats_.beatsSaved += 8 - req.burstBeats;
    result.complete = data + burst;

    // Back-annotate bank state.
    const Cycle effective_cas = data - cas_to_data;
    bank.casReady = std::max(bank.casReady, effective_cas + cfg_.tCCD);
    if (req.isWrite) {
        ++stats_.writes;
        stats_.writeBeats += req.burstBeats;
        bank.preReady =
            std::max(bank.preReady, result.complete + cfg_.tWR);
        stats_.totalWriteLatency += result.complete - req.arrival;
        stats_.writeLatency.record(result.complete - req.arrival);
    } else {
        ++stats_.reads;
        stats_.readBeats += req.burstBeats;
        bank.preReady =
            std::max(bank.preReady, effective_cas + cfg_.tRTP);
        stats_.totalReadLatency += result.complete - req.arrival;
        stats_.readLatency.record(result.complete - req.arrival);
    }
    // Either policy precharges no earlier than preReady, so a future
    // activate waits out tRP past it; the policies differ only in
    // whether the row is still open for hits in the meantime.
    bank.actReady = std::max(bank.actReady, bank.preReady + cfg_.tRP);
    if (cfg_.rowPolicy == RowPolicy::Closed)
        bank.rowOpen = false; // auto-precharge: next access re-activates

    return result;
}

void
DramSystem::registerStats(StatsRegistry &reg) const
{
    reg.gauge("dram.reads", [this] { return stats_.reads; });
    reg.gauge("dram.writes", [this] { return stats_.writes; });
    reg.gauge("dram.row_hits", [this] { return stats_.rowHits; });
    reg.gauge("dram.row_misses", [this] { return stats_.rowMisses; });
    reg.gauge("dram.row_conflicts",
              [this] { return stats_.rowConflicts; });
    reg.gauge("dram.refresh_stalls_act",
              [this] { return stats_.refreshStalls; });
    reg.gauge("dram.refresh_stalls_cas",
              [this] { return stats_.refreshStallsCas; });
    reg.gauge("dram.bus_read_beats", [this] { return stats_.readBeats; });
    reg.gauge("dram.bus_write_beats",
              [this] { return stats_.writeBeats; });
    reg.gauge("dram.bus_beats_saved",
              [this] { return stats_.beatsSaved; });
    reg.gauge("dram.bus_busy_cycles",
              [this] { return stats_.busBusyCycles; });
    reg.gauge("dram.bus_turnarounds",
              [this] { return stats_.busTurnarounds; });
    for (unsigned c = 0; c < cfg_.channels; ++c) {
        reg.gauge("dram.bus_busy_cycles_ch" + std::to_string(c),
                  [this, c] { return channels_[c].busBusy; });
    }
    reg.histogram("dram.read_latency", &stats_.readLatency);
    reg.histogram("dram.write_latency", &stats_.writeLatency);
}

} // namespace cop
