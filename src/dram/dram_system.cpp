#include "dram/dram_system.hpp"

#include <algorithm>

namespace cop {

DramSystem::DramSystem(const DramConfig &cfg) : cfg_(cfg), map_(cfg)
{
    cfg_.validate();
    channels_.resize(cfg_.channels);
    for (auto &ch : channels_) {
        ch.banks.resize(
            static_cast<size_t>(cfg_.ranksPerChannel) * cfg_.banksPerRank);
        ch.ranks.resize(cfg_.ranksPerChannel);
    }
}

DramSystem::Bank &
DramSystem::bankAt(const DramLocation &loc)
{
    return channels_[loc.channel]
        .banks[static_cast<size_t>(loc.rank) * cfg_.banksPerRank + loc.bank];
}

DramSystem::Rank &
DramSystem::rankAt(const DramLocation &loc)
{
    return channels_[loc.channel].ranks[loc.rank];
}

Cycle
DramSystem::adjustForRefresh(Cycle cycle)
{
    if (!cfg_.refreshEnabled)
        return cycle;
    // All-bank refresh every tREFI; a command landing inside the tRFC
    // window slips to its end.
    const Cycle phase = cycle % cfg_.tREFI;
    if (phase < cfg_.tRFC) {
        ++stats_.refreshStalls;
        return cycle - phase + cfg_.tRFC;
    }
    return cycle;
}

Cycle
DramSystem::bankReadyHint(Addr addr) const
{
    const DramLocation loc = map_.decode(addr);
    const Bank &bank =
        channels_[loc.channel]
            .banks[static_cast<size_t>(loc.rank) * cfg_.banksPerRank +
                   loc.bank];
    return bank.rowOpen && bank.openRow == loc.row ? bank.casReady
                                                   : bank.actReady;
}

DramResult
DramSystem::access(const DramRequest &req)
{
    const DramLocation loc = map_.decode(req.addr);
    Channel &channel = channels_[loc.channel];
    Bank &bank = bankAt(loc);
    Rank &rank = rankAt(loc);

    DramResult result;
    Cycle cas; // cycle the column command issues

    if (bank.rowOpen && bank.openRow == loc.row) {
        // Row hit: column access only.
        result.rowHit = true;
        ++stats_.rowHits;
        cas = std::max(req.arrival, bank.casReady);
    } else {
        // Need an activate; maybe a precharge first.
        Cycle act_earliest;
        if (bank.rowOpen) {
            result.rowConflict = true;
            ++stats_.rowConflicts;
            const Cycle pre = std::max(req.arrival, bank.preReady);
            act_earliest = pre + cfg_.tRP;
        } else {
            ++stats_.rowMisses;
            act_earliest = std::max(req.arrival, bank.actReady);
        }
        // Per-rank activate constraints: tRRD and the 4-activate window
        // (only binding once enough prior activates exist).
        if (rank.actCount >= 1)
            act_earliest = std::max(act_earliest, rank.lastAct + cfg_.tRRD);
        if (rank.actCount >= 4) {
            act_earliest = std::max(
                act_earliest, rank.lastActs[rank.actPtr] + cfg_.tFAW);
        }
        const Cycle act = adjustForRefresh(act_earliest);

        rank.lastActs[rank.actPtr] = act;
        rank.actPtr = (rank.actPtr + 1) % 4;
        ++rank.actCount;
        rank.lastAct = act;

        bank.rowOpen = true;
        bank.openRow = loc.row;
        bank.casReady = act + cfg_.tRCD;
        bank.preReady = act + cfg_.tRAS;
        cas = bank.casReady;
        cas = std::max(cas, req.arrival);
    }

    // Data transfer on the shared channel bus.
    const Cycle cas_to_data = req.isWrite ? cfg_.tCWL : cfg_.tCL;
    Cycle data = std::max(cas + cas_to_data, channel.busFree);
    channel.busFree = data + cfg_.tBURST;
    result.complete = data + cfg_.tBURST;

    // Back-annotate bank state.
    const Cycle effective_cas = data - cas_to_data;
    bank.casReady = std::max(bank.casReady, effective_cas + cfg_.tCCD);
    if (req.isWrite) {
        ++stats_.writes;
        bank.preReady =
            std::max(bank.preReady, result.complete + cfg_.tWR);
    } else {
        ++stats_.reads;
        bank.preReady =
            std::max(bank.preReady, effective_cas + cfg_.tRTP);
        stats_.totalReadLatency += result.complete - req.arrival;
    }
    if (cfg_.rowPolicy == RowPolicy::Closed) {
        // Auto-precharge: the row closes as soon as timing allows, and
        // the next access to this bank must re-activate.
        bank.rowOpen = false;
        bank.actReady = std::max(bank.actReady, bank.preReady + cfg_.tRP);
    } else {
        bank.actReady = std::max(bank.actReady, bank.preReady + cfg_.tRP);
    }

    return result;
}

} // namespace cop
