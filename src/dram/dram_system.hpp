/**
 * @file
 * DramSystem: a DRAMSim2-inspired timing model of the Table 1 memory
 * system. Reservation-based rather than event-driven: each access is
 * scheduled against per-bank row-buffer state, per-rank activate
 * windows, and the per-channel data bus, in submission order. The model
 * captures the first-order effects COP's evaluation depends on — row
 * hits vs misses/conflicts, bank- and channel-level parallelism, bus
 * serialisation, and the extra contention ECC-region traffic creates.
 */

#ifndef COP_DRAM_DRAM_SYSTEM_HPP
#define COP_DRAM_DRAM_SYSTEM_HPP

#include <array>
#include <vector>

#include "dram/config.hpp"
#include "stats/histogram.hpp"
#include "stats/stats_registry.hpp"

namespace cop {

/** One memory request presented to the DRAM system. */
struct DramRequest
{
    Addr addr = 0;
    bool isWrite = false;
    Cycle arrival = 0;
    /**
     * Data beats this transfer occupies on the channel bus (1..8). A
     * full 64-byte block is 8 beats on the 64-bit bus; the bandwidth-
     * compression mode ships compressed blocks in fewer. Command timing
     * (ACT/CAS) is unaffected — only bus occupancy scales.
     */
    unsigned burstBeats = 8;
};

/** Timing outcome of one request. */
struct DramResult
{
    /** Cycle at which the last data beat transfers. */
    Cycle complete = 0;
    /** The access hit an open row. */
    bool rowHit = false;
    /** The access had to close another row first (conflict). */
    bool rowConflict = false;
};

/** Aggregate DRAM statistics. */
struct DramStats
{
    u64 reads = 0;
    u64 writes = 0;
    u64 rowHits = 0;
    u64 rowMisses = 0;
    u64 rowConflicts = 0;
    u64 refreshStalls = 0; ///< ACT commands delayed past a tRFC window.
    Cycle totalReadLatency = 0;
    /** Column commands (CAS) delayed past a tRFC window. */
    u64 refreshStallsCas = 0;
    Cycle totalWriteLatency = 0;
    /** Data beats actually transferred on the bus, by direction. */
    u64 readBeats = 0;
    u64 writeBeats = 0;
    /** Beats a full 8-beat burst would have used but a shortened one
     *  did not (8 - burstBeats summed over all accesses). */
    u64 beatsSaved = 0;
    /** Cycles the channel data buses spent transferring (all channels). */
    Cycle busBusyCycles = 0;
    /** Bus direction flips that imposed a tWTR/tRTW turnaround gap. */
    u64 busTurnarounds = 0;
    /**
     * Cycles added by the fast-timing ambient bus load (expected
     * contention from other shards' channels, see setAmbientBusLoad).
     * Always zero outside fast-timing mode — a divergence counter, not
     * a physical bus statistic, so it stays out of busBusyCycles and
     * its per-channel conservation identity.
     */
    Cycle ambientStallCycles = 0;
    /**
     * Row hits demoted to row conflicts by the fast-timing ambient
     * row-close model (expected row-buffer interference from other
     * shards' traffic, see setAmbientRowCloseRate). Always zero
     * outside fast-timing mode; a divergence counter like
     * ambientStallCycles.
     */
    u64 ambientRowCloses = 0;
    /** Per-access arrival-to-last-beat latency (simulated cycles). */
    Histogram readLatency;
    Histogram writeLatency;

    double
    rowHitRate() const
    {
        const u64 n = rowHits + rowMisses + rowConflicts;
        return n ? static_cast<double>(rowHits) / n : 0.0;
    }

    double
    avgReadLatency() const
    {
        return reads ? static_cast<double>(totalReadLatency) / reads : 0.0;
    }

    double
    avgWriteLatency() const
    {
        return writes ? static_cast<double>(totalWriteLatency) / writes
                      : 0.0;
    }
};

/**
 * The DRAM timing model. Open-row policy (rows stay open until a
 * conflicting activate), per-rank tRRD/tFAW tracking, optional refresh.
 *
 * Requests must be submitted in non-decreasing arrival order per
 * channel for the reservation model to be meaningful; the simulator's
 * global-clock scheduler guarantees this.
 */
class DramSystem
{
  public:
    explicit DramSystem(const DramConfig &cfg = DramConfig{});

    /** Schedule one access; returns its completion time. */
    DramResult access(const DramRequest &req);

    const DramConfig &config() const { return cfg_; }
    const DramStats &stats() const { return stats_; }
    void
    resetStats()
    {
        stats_ = DramStats{};
        for (auto &ch : channels_)
            ch.busBusy = 0;
    }

    /**
     * Register this DRAM system's counters and latency histograms into
     * @p reg under the "dram." namespace. The registry must not outlive
     * this object.
     */
    void registerStats(StatsRegistry &reg) const;

    /**
     * Fast-timing reconciliation hook (sim/system.cpp): model the bus
     * occupancy of the *other* shards' traffic as capacity sharing.
     * @p load is the external utilisation in [0, 1) — the coordinator
     * computes it from the other shards' busBusyCycles deltas at each
     * quantum barrier. Under it the shard owns only a (1 - load)
     * share of the memory system's service capacity, so every access's
     * arrival-to-data sojourn is stretched by a calibrated
     * processor-sharing factor derived from load / (1 - load) (gain
     * and saturation cap in the implementation, fitted against the
     * simThreads=1 oracle — see DESIGN.md §8.2). This stands in for
     * the queueing the partitioned model no longer sees directly (bank
     * conflicts included, not just the bus). The stretch is counted in
     * DramStats::ambientStallCycles
     * (never in busBusyCycles, whose per-channel conservation identity
     * stays exact) so the approximation is reported, never hidden.
     * 0 (the default) is the exact model.
     */
    void setAmbientBusLoad(double load);

    /** The external bus utilisation currently modelled. */
    double ambientBusLoad() const { return ambientLoad_; }

    /**
     * Fast-timing reconciliation hook, companion to
     * setAmbientBusLoad(): model the *row-buffer* interference of the
     * other shards' traffic. @p rate is their access rate per bank per
     * cycle; a row that sat open for g cycles since this shard last
     * touched the bank survived that interference with probability
     * exp(-rate * g), so each would-be row hit is demoted to a row
     * conflict (precharge + activate, exactly what the shared model
     * would see with another core's row open) with the complementary
     * probability. The draw is a deterministic hash of
     * (address, arrival), keeping fast-timing runs reproducible.
     * Demotions are counted in DramStats::ambientRowCloses. 0 (the
     * default) disables the model.
     */
    void
    setAmbientRowCloseRate(double rate)
    {
        ambientCloseRate_ = rate > 0.0 ? rate : 0.0;
    }

    /**
     * Earliest cycle the addressed bank could issue the first command
     * of a new access (CAS on an open-row hit, ACT otherwise),
     * consulting the same per-rank tRRD/tFAW windows and refresh state
     * as access() — but const: no statistics are mutated.
     */
    Cycle bankReadyHint(Addr addr) const;

  private:
    struct Bank
    {
        bool rowOpen = false;
        u64 openRow = 0;
        Cycle casReady = 0; ///< Earliest next CAS.
        Cycle preReady = 0; ///< Earliest next PRE (tRAS/tWR respected).
        Cycle actReady = 0; ///< Earliest next ACT (after PRE done).
        Cycle lastUse = 0;  ///< Last arrival here (ambient row closes).
    };

    struct Rank
    {
        std::array<Cycle, 4> lastActs{}; ///< Rolling window for tFAW.
        unsigned actPtr = 0;
        u64 actCount = 0; ///< Activates issued so far (guards the window).
        Cycle lastAct = 0;
    };

    struct Channel
    {
        std::vector<Bank> banks;  ///< ranksPerChannel * banksPerRank.
        std::vector<Rank> ranks;
        Cycle busFree = 0;
        bool hasTransfer = false; ///< A burst has used this bus before.
        bool lastWasWrite = false; ///< Direction of the last burst.
        Cycle busBusy = 0; ///< Cycles this channel's bus transferred data.
    };

    Bank &bankAt(const DramLocation &loc);
    Rank &rankAt(const DramLocation &loc);

    /**
     * @p cycle delayed past any refresh window it lands in (identity
     * when refresh is off). Pure: the stat-bumping wrappers below and
     * the const bankReadyHint() share it.
     */
    Cycle refreshAdjusted(Cycle cycle) const;
    /** Delay an ACT past refresh; counts stats_.refreshStalls. */
    Cycle adjustForRefresh(Cycle cycle);
    /** Delay a column command past refresh; counts refreshStallsCas. */
    Cycle adjustForRefreshColumn(Cycle cycle);

    /** Earliest ACT issue respecting per-rank tRRD/tFAW windows. */
    Cycle rankActConstraint(const Rank &rank, Cycle earliest) const;

    DramConfig cfg_;
    AddressMap map_;
    std::vector<Channel> channels_;
    DramStats stats_;
    /** Ambient-contention model state (fast-timing mode only). */
    double ambientLoad_ = 0.0;
    double ambientFactor_ = 0.0;    ///< Calibrated sojourn stretch.
    double ambientCloseRate_ = 0.0; ///< Row closes /bank/cycle.
};

} // namespace cop

#endif // COP_DRAM_DRAM_SYSTEM_HPP
