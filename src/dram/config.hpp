/**
 * @file
 * DRAM system configuration: the Table 1 memory organisation (2 channels,
 * 1 DIMM per channel, 2 ranks per DIMM, 8 chips per rank, 1600 MHz bus,
 * 8 GB total) and a DDR3-1600-class timing set. All timing values are
 * expressed in CPU cycles at the Table 1 core clock (3.2 GHz) so the
 * interval performance model and the DRAM model share one clock domain.
 */

#ifndef COP_DRAM_CONFIG_HPP
#define COP_DRAM_CONFIG_HPP

#include "common/types.hpp"

namespace cop {

/** Bits one data beat moves on the 64-bit channel bus. */
inline constexpr unsigned kBusBitsPerBeat = 64;
/** Beats a full 64-byte block transfer occupies. */
inline constexpr unsigned kBeatsPerBlock = kBlockBits / kBusBitsPerBeat;

/**
 * Row-buffer management policy. The paper's system (and the embedded-
 * ECC related work it cites) assumes open-row; closed-page is provided
 * for the row-policy ablation.
 */
enum class RowPolicy : u8 {
    Open,   ///< Rows stay open until a conflicting activate.
    Closed, ///< Auto-precharge after every column access.
};

/**
 * DRAM organisation and timing. Defaults model DDR3-1600 11-11-11 under
 * a 3.2 GHz core clock: one memory command clock (800 MHz) = 4 CPU
 * cycles.
 */
struct DramConfig
{
    // --- organisation (Table 1) ---
    unsigned channels = 2;
    unsigned ranksPerChannel = 2; ///< 1 DIMM x 2 ranks.
    unsigned banksPerRank = 8;
    u64 capacityBytes = 8ULL << 30;
    unsigned rowBytes = 8192; ///< 8 KB row buffer per bank.
    RowPolicy rowPolicy = RowPolicy::Open;

    // --- timing, in CPU cycles (1 memory clock = 4 CPU cycles) ---
    Cycle tRCD = 44;   ///< ACT -> CAS (11 mem clocks).
    Cycle tCL = 44;    ///< CAS -> first data (read).
    Cycle tCWL = 32;   ///< CAS -> first data (write, CWL 8).
    Cycle tRP = 44;    ///< PRE -> ACT.
    Cycle tRAS = 112;  ///< ACT -> PRE (28 mem clocks).
    Cycle tBURST = 16; ///< 8-beat burst at 1600 MT/s on a 64-bit bus.
    Cycle tWR = 48;    ///< Write recovery before PRE (12 mem clocks).
    Cycle tRTP = 24;   ///< Read -> PRE (6 mem clocks).
    Cycle tRRD = 24;   ///< ACT -> ACT, same rank (6 mem clocks).
    Cycle tFAW = 128;  ///< Four-activate window per rank (32 mem clocks).
    Cycle tCCD = 16;   ///< CAS -> CAS, same rank.
    Cycle tWTR = 16;   ///< Write burst end -> read CAS (4 mem clocks).
    Cycle tRTW = 8;    ///< Read->write bus turnaround gap (2 mem clocks).

    // --- refresh ---
    bool refreshEnabled = true;
    Cycle tREFI = 24960; ///< 7.8 us at 3.2 GHz.
    Cycle tRFC = 1120;   ///< 350 ns at 3.2 GHz.

    /** Total 64-byte blocks in the system. */
    u64 totalBlocks() const { return capacityBytes / kBlockBytes; }
    /** Blocks per row buffer. */
    unsigned blocksPerRow() const { return rowBytes / kBlockBytes; }
    /** Rows per bank, derived from capacity and organisation. */
    u64
    rowsPerBank() const
    {
        const u64 banks =
            static_cast<u64>(channels) * ranksPerChannel * banksPerRank;
        return capacityBytes / (banks * rowBytes);
    }

    void
    validate() const
    {
        if (channels == 0 || ranksPerChannel == 0 || banksPerRank == 0)
            COP_FATAL("DRAM organisation must be nonzero");
        if (rowBytes % kBlockBytes != 0)
            COP_FATAL("row size must be a multiple of the block size");
        if (capacityBytes % (static_cast<u64>(channels) * ranksPerChannel *
                             banksPerRank * rowBytes) != 0) {
            COP_FATAL("capacity must divide evenly into rows");
        }
    }
};

/** Decoded position of one block address. */
struct DramLocation
{
    unsigned channel;
    unsigned rank;
    unsigned bank;
    u64 row;
    unsigned column; ///< Block index within the row.
};

/**
 * Block-address interleaving. Low-order block bits map to channel (so
 * consecutive blocks stream across channels), then column, then bank,
 * then rank, with the row on top: row : rank : bank : column : channel.
 */
class AddressMap
{
  public:
    explicit AddressMap(const DramConfig &cfg) : cfg_(cfg) {}

    DramLocation
    decode(Addr addr) const
    {
        u64 block = addr / kBlockBytes;
        DramLocation loc;
        loc.channel = static_cast<unsigned>(block % cfg_.channels);
        block /= cfg_.channels;
        loc.column = static_cast<unsigned>(block % cfg_.blocksPerRow());
        block /= cfg_.blocksPerRow();
        loc.bank = static_cast<unsigned>(block % cfg_.banksPerRank);
        block /= cfg_.banksPerRank;
        loc.rank = static_cast<unsigned>(block % cfg_.ranksPerChannel);
        block /= cfg_.ranksPerChannel;
        loc.row = block;
        return loc;
    }

  private:
    DramConfig cfg_;
};

} // namespace cop

#endif // COP_DRAM_CONFIG_HPP
