/**
 * @file
 * DRAM energy model. The paper's opening motivation is cost *and*
 * power: "special DIMMs ... increase the cost of the DIMM as well as
 * its power consumption" — an ECC DIMM adds a 9th chip to every rank,
 * paying ~12.5% more dynamic and background energy, while the
 * ECC-region approach pays extra accesses instead. This model turns a
 * run's DramStats into per-component energy so the benches can put
 * numbers on that motivation.
 *
 * Per-event energies follow the standard Micron power-calculator
 * methodology for a DDR3-1600 x8 device, folded into per-chip
 * constants (current deltas times voltage times duration). Absolute
 * values are representative, relative comparisons are the point.
 */

#ifndef COP_DRAM_ENERGY_HPP
#define COP_DRAM_ENERGY_HPP

#include "dram/dram_system.hpp"

namespace cop {

/** Per-chip energy/power constants (DDR3-1600 x8 class). */
struct DramEnergyParams
{
    /** Energy of one activate+precharge pair, per chip (nJ). */
    double actPreNj = 1.60;
    /** Energy of one read burst, per chip (nJ). */
    double readNj = 1.10;
    /** Energy of one write burst, per chip (nJ). */
    double writeNj = 1.25;
    /** I/O + termination energy per 64-byte transfer, whole rank (nJ). */
    double ioNj = 2.8;
    /** Background (standby + periodic refresh) power per chip (mW). */
    double backgroundMw = 55.0;
    /** Core clock for cycle->time conversion (GHz). */
    double coreGHz = 3.2;
};

/** Energy breakdown of one run (all in millijoules). */
struct DramEnergyReport
{
    double activateMj = 0;
    double readMj = 0;
    double writeMj = 0;
    double ioMj = 0;
    double backgroundMj = 0;

    double
    totalMj() const
    {
        return activateMj + readMj + writeMj + ioMj + backgroundMj;
    }
};

/**
 * Computes energy from access statistics. @p chips_per_rank is the
 * knob that separates a standard DIMM (8) from an ECC DIMM (9).
 */
class DramEnergyModel
{
  public:
    explicit DramEnergyModel(
        const DramEnergyParams &params = DramEnergyParams{})
        : params_(params)
    {
    }

    /**
     * Energy of a run.
     * @param stats          access counts from the DRAM model;
     * @param elapsed_cycles wall-clock of the run in core cycles;
     * @param chips_per_rank 8 (non-ECC) or 9 (ECC DIMM);
     * @param total_ranks    ranks powered in the system.
     */
    DramEnergyReport
    evaluate(const DramStats &stats, Cycle elapsed_cycles,
             unsigned chips_per_rank, unsigned total_ranks = 4) const
    {
        DramEnergyReport r;
        const double chips = chips_per_rank;
        const auto row_ops =
            static_cast<double>(stats.rowMisses + stats.rowConflicts);
        r.activateMj = row_ops * params_.actPreNj * chips * 1e-6;
        // Burst and I/O energy scale with beats actually transferred:
        // readNj/writeNj/ioNj are per full 8-beat burst, so a shortened
        // burst pays burstBeats/8 of it. Hand-built stats without beat
        // counters (beats == 0 with nonzero accesses) fall back to the
        // fixed 8-beat assumption, keeping the legacy accounting — and
        // the 8-beat case — numerically identical.
        const double read_bursts =
            stats.readBeats ? static_cast<double>(stats.readBeats) / 8.0
                            : static_cast<double>(stats.reads);
        const double write_bursts =
            stats.writeBeats
                ? static_cast<double>(stats.writeBeats) / 8.0
                : static_cast<double>(stats.writes);
        r.readMj = read_bursts * params_.readNj * chips * 1e-6;
        r.writeMj = write_bursts * params_.writeNj * chips * 1e-6;
        // I/O scales with transfers, and an ECC DIMM moves 72 bits per
        // beat instead of 64.
        r.ioMj = (read_bursts + write_bursts) * params_.ioNj *
                 (chips / 8.0) * 1e-6;
        const double seconds =
            static_cast<double>(elapsed_cycles) / (params_.coreGHz * 1e9);
        r.backgroundMj = params_.backgroundMw * chips * total_ranks *
                         seconds;
        return r;
    }

    const DramEnergyParams &params() const { return params_; }

  private:
    DramEnergyParams params_;
};

} // namespace cop

#endif // COP_DRAM_ENERGY_HPP
