/**
 * @file
 * Log-bucketed latency histogram for the observability layer. Values
 * below 16 land in exact unit buckets; above that each power-of-two
 * octave is split into 16 linear sub-buckets (HDR-histogram style), so
 * relative quantile error is bounded by 1/16 while the whole structure
 * stays a fixed-size array — no allocation on the record path, safe to
 * embed in hot structures like DramStats.
 *
 * Percentiles are deterministic functions of the recorded multiset
 * (bucket lower bounds at the requested rank), so any statistic derived
 * from a histogram serialises byte-identically between serial and
 * parallel runs of the same simulation.
 */

#ifndef COP_STATS_HISTOGRAM_HPP
#define COP_STATS_HISTOGRAM_HPP

#include <array>

#include "common/types.hpp"

namespace cop {

/** Point-in-time summary of a Histogram (for JSON / reports). */
struct HistogramSummary
{
    u64 count = 0;
    u64 sum = 0;
    u64 max = 0;
    u64 p50 = 0;
    u64 p95 = 0;
    u64 p99 = 0;
};

/** Fixed-size log-bucketed histogram of non-negative integer samples. */
class Histogram
{
  public:
    /** Linear sub-buckets per octave (and the exact-value cutoff). */
    static constexpr unsigned kSubBuckets = 16;
    /** Bucket count covering the full u64 range. */
    static constexpr unsigned kBuckets = (64 - 4 + 1) * kSubBuckets;

    void
    record(u64 value)
    {
        ++count_;
        sum_ += value;
        if (value > max_)
            max_ = value;
        ++buckets_[indexOf(value)];
    }

    u64 count() const { return count_; }
    u64 sum() const { return sum_; }
    u64 maxValue() const { return max_; }

    /**
     * Value at percentile @p p (0..100]: the lower bound of the bucket
     * holding the sample of rank ceil(p/100 * count). Exact for values
     * below 16; within one sub-bucket (6.25%) above. Returns 0 when
     * empty.
     */
    u64
    percentile(double p) const
    {
        if (count_ == 0)
            return 0;
        u64 rank = static_cast<u64>(p / 100.0 * static_cast<double>(count_));
        if (static_cast<double>(rank) * 100.0 <
            p * static_cast<double>(count_))
            ++rank; // ceil
        if (rank < 1)
            rank = 1;
        if (rank > count_)
            rank = count_;
        u64 cumulative = 0;
        for (unsigned i = 0; i < kBuckets; ++i) {
            cumulative += buckets_[i];
            if (cumulative >= rank)
                return lowerBound(i);
        }
        return max_; // unreachable if counts are consistent
    }

    HistogramSummary
    summary() const
    {
        HistogramSummary s;
        s.count = count_;
        s.sum = sum_;
        s.max = max_;
        s.p50 = percentile(50);
        s.p95 = percentile(95);
        s.p99 = percentile(99);
        return s;
    }

    void reset() { *this = Histogram{}; }

    /**
     * Accumulate @p other into this histogram, bucket-wise — as if
     * every sample recorded into @p other had been recorded here. The
     * fast-timing result merge uses it to combine per-shard latency
     * distributions; deterministic like everything else here.
     */
    void
    merge(const Histogram &other)
    {
        count_ += other.count_;
        sum_ += other.sum_;
        if (other.max_ > max_)
            max_ = other.max_;
        for (unsigned i = 0; i < kBuckets; ++i)
            buckets_[i] += other.buckets_[i];
    }

    /** Bucket index of @p value (values < 16 map to themselves). */
    static unsigned
    indexOf(u64 value)
    {
        if (value < kSubBuckets)
            return static_cast<unsigned>(value);
        unsigned msb = 63;
        while ((value >> msb) == 0)
            --msb;
        const unsigned sub =
            static_cast<unsigned>((value >> (msb - 4)) & 0xF);
        return (msb - 3) * kSubBuckets + sub;
    }

    /** Smallest value mapping to bucket @p index. */
    static u64
    lowerBound(unsigned index)
    {
        if (index < kSubBuckets)
            return index;
        const unsigned msb = index / kSubBuckets + 3;
        const u64 sub = index % kSubBuckets;
        return (u64{1} << msb) | (sub << (msb - 4));
    }

  private:
    u64 count_ = 0;
    u64 sum_ = 0;
    u64 max_ = 0;
    std::array<u64, kBuckets> buckets_{};
};

} // namespace cop

#endif // COP_STATS_HISTOGRAM_HPP
