#include "stats/stats_registry.hpp"

namespace cop {

void
StatsRegistry::claimName(const std::string &name)
{
    if (name.empty())
        COP_PANIC("stats instrument needs a name");
    if (!names_.insert(name).second)
        COP_PANIC("duplicate stats instrument: " + name);
}

void
StatsRegistry::gauge(const std::string &name, Probe probe)
{
    COP_ASSERT(probe != nullptr);
    claimName(name);
    gauges_.push_back(GaugeEntry{name, std::move(probe), 0});
}

void
StatsRegistry::histogram(const std::string &name, const Histogram *hist)
{
    COP_ASSERT(hist != nullptr);
    claimName(name);
    hists_.push_back(HistEntry{name, hist, 0});
}

namespace {

void
appendField(std::string &out, const std::string &name, u64 value,
            bool first)
{
    if (!first)
        out += ',';
    out += '"';
    out += name; // instrument names are code-controlled identifiers
    out += "\":";
    out += std::to_string(static_cast<unsigned long long>(value));
}

} // namespace

std::string
StatsRegistry::drainEpochJson(u64 epoch, u64 cycle)
{
    std::string out = "{\"epoch\":";
    out += std::to_string(static_cast<unsigned long long>(epoch));
    out += ",\"cycle\":";
    out += std::to_string(static_cast<unsigned long long>(cycle));

    out += ",\"counters\":{";
    bool first = true;
    for (GaugeEntry &g : gauges_) {
        const u64 now = g.probe();
        const u64 delta = now >= g.last ? now - g.last : 0;
        g.last = now;
        appendField(out, g.name, delta, first);
        first = false;
    }
    out += "}";

    out += ",\"histograms\":{";
    first = true;
    for (HistEntry &h : hists_) {
        const HistogramSummary s = h.hist->summary();
        const u64 delta =
            s.count >= h.lastCount ? s.count - h.lastCount : 0;
        h.lastCount = s.count;
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += h.name;
        out += "\":{";
        appendField(out, "count", s.count, true);
        appendField(out, "delta_count", delta, false);
        appendField(out, "p50", s.p50, false);
        appendField(out, "p95", s.p95, false);
        appendField(out, "p99", s.p99, false);
        appendField(out, "max", s.max, false);
        out += '}';
    }
    out += "}}";
    return out;
}

} // namespace cop
