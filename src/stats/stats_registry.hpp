/**
 * @file
 * StatsRegistry: the observability hub every subsystem registers into.
 * Two kinds of instruments:
 *
 *  - gauges: named counters sampled through a probe callback, so
 *    subsystems keep their existing (hot-path-cheap) counter fields and
 *    pay nothing per event — the registry reads them only when a
 *    snapshot is drained;
 *  - histograms: externally-owned Histogram objects (e.g. the DRAM
 *    latency histograms embedded in DramStats), referenced by pointer.
 *
 * drainEpochJson() emits one JSONL snapshot: per-gauge deltas since the
 * previous drain plus cumulative histogram summaries. Registration
 * order is emission order, so traces from identical runs are
 * byte-identical. When nothing ever drains (tracing off), the registry
 * costs one vector of closures at construction and nothing afterwards —
 * the zero-overhead-when-off invariant the benches rely on.
 */

#ifndef COP_STATS_STATS_REGISTRY_HPP
#define COP_STATS_STATS_REGISTRY_HPP

#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "stats/histogram.hpp"

namespace cop {

class StatsRegistry
{
  public:
    /** Samples the current cumulative value of a named counter. */
    using Probe = std::function<u64()>;

    /** Register a named counter probe. Duplicate names panic. */
    void gauge(const std::string &name, Probe probe);

    /**
     * Register an externally-owned histogram. @p hist must outlive the
     * registry. Duplicate names panic.
     */
    void histogram(const std::string &name, const Histogram *hist);

    /**
     * One JSONL snapshot line (no trailing newline): gauge deltas since
     * the previous drain, histogram cumulative summaries plus the count
     * delta for rate computation.
     */
    std::string drainEpochJson(u64 epoch, u64 cycle);

    size_t gaugeCount() const { return gauges_.size(); }
    size_t histogramCount() const { return hists_.size(); }

  private:
    struct GaugeEntry
    {
        std::string name;
        Probe probe;
        u64 last = 0;
    };

    struct HistEntry
    {
        std::string name;
        const Histogram *hist;
        u64 lastCount = 0;
    };

    void claimName(const std::string &name);

    std::vector<GaugeEntry> gauges_;
    std::vector<HistEntry> hists_;
    std::unordered_set<std::string> names_;
};

} // namespace cop

#endif // COP_STATS_STATS_REGISTRY_HPP
