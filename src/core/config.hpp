/**
 * @file
 * CopConfig: the handful of parameters that define a COP instance —
 * how many ECC bytes each compressed block carries, how the block is
 * sliced into SECDED code words, and the valid-code-word threshold the
 * decoder uses to distinguish compressed from uncompressed data.
 */

#ifndef COP_CORE_CONFIG_HPP
#define COP_CORE_CONFIG_HPP

#include "common/types.hpp"
#include "ecc/secded.hpp"

namespace cop {

/**
 * Static configuration of the COP codec.
 *
 * The paper's preferred configuration frees 4 bytes per block and splits
 * the result into four (128,120) SECDED code words with a 3-of-4 valid
 * threshold; the alternative frees 8 bytes into eight (64,56) code words
 * with a 5-of-8 threshold (Section 3.1).
 */
struct CopConfig
{
    /** ECC check bytes freed per 64-byte block (4 or 8). */
    unsigned checkBytes = 4;
    /** Valid code words required to treat a block as compressed. */
    unsigned threshold = 3;
    /** Apply the per-segment static hash (Section 3.1, Figure 2). */
    bool useStaticHash = true;
    /**
     * Compute CopEncodeResult::minCompressedBits on every Protected
     * encode (the bandwidth-compression mode's transfer-sizing input).
     * Off by default: protection-only controllers skip the extra
     * per-scheme size passes on the encode hot path.
     */
    bool computeTransferBits = false;

    /** The paper's preferred 4-byte configuration. */
    static CopConfig
    fourByte()
    {
        return CopConfig{4, 3, true};
    }

    /** The higher-correction 8-byte configuration. */
    static CopConfig
    eightByte()
    {
        return CopConfig{8, 5, true};
    }

    /** Number of SECDED code words per block (4 or 8). */
    unsigned codewords() const { return checkBytes; }
    /** Bytes per code-word segment (16 or 8). */
    unsigned segmentBytes() const { return kBlockBytes / codewords(); }
    /** Payload (compressed data + tag) bits per block (480 or 448). */
    unsigned payloadBits() const { return kBlockBits - 8 * checkBytes; }
    /** Payload data bits per code word (120 or 56). */
    unsigned dataBitsPerWord() const { return payloadBits() / codewords(); }

    /** The SECDED code protecting each segment. */
    const HsiaoCode &
    code() const
    {
        return checkBytes == 4 ? codes::full128() : codes::short64();
    }

    /** Sanity-check the configuration; fatal on nonsense. */
    void
    validate() const
    {
        if (checkBytes != 4 && checkBytes != 8)
            COP_FATAL("checkBytes must be 4 or 8");
        if (threshold < 2 || threshold > codewords())
            COP_FATAL("threshold must be in [2, codewords]");
    }
};

} // namespace cop

#endif // COP_CORE_CONFIG_HPP
