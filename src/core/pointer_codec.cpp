#include "core/pointer_codec.hpp"

#include <array>

namespace cop {

u64
PointerCodec::encodeField(u32 entry_index)
{
    COP_ASSERT(entry_index <= kMaxIndex);
    std::array<u8, 8> buf{};
    setBits(buf, 0, kIndexBits, entry_index);
    codes::pointer34().encode(buf);
    return getBits(buf, 0, kFieldBits);
}

PointerDecodeResult
PointerCodec::decodeField(u64 field)
{
    std::array<u8, 8> buf{};
    setBits(buf, 0, kFieldBits, field);
    PointerDecodeResult result;
    result.ecc = codes::pointer34().decode(buf);
    result.entryIndex = static_cast<u32>(getBits(buf, 0, kIndexBits));
    return result;
}

u64
PointerCodec::embedField(CacheBlock &block, u64 field)
{
    u64 displaced = 0;
    unsigned consumed = 0;
    for (unsigned s = 0; s < 4; ++s) {
        const unsigned width = kScatterWidth[s];
        displaced |= getBits(block.bytes(), kScatterOffset[s], width)
                     << consumed;
        setBits(block.bytes(), kScatterOffset[s], width,
                (field >> consumed) & ((1ULL << width) - 1));
        consumed += width;
    }
    COP_ASSERT(consumed == kFieldBits);
    return displaced;
}

u64
PointerCodec::extractField(const CacheBlock &block)
{
    u64 field = 0;
    unsigned consumed = 0;
    for (unsigned s = 0; s < 4; ++s) {
        const unsigned width = kScatterWidth[s];
        field |= getBits(block.bytes(), kScatterOffset[s], width)
                 << consumed;
        consumed += width;
    }
    return field;
}

} // namespace cop
