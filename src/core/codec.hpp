/**
 * @file
 * CopCodec — the paper's primary contribution (Sections 3.1/3.2,
 * Figure 2): the encoder/compressor that turns a 64-byte block into a
 * compressed + SECDED-protected + hashed image of the same size, and the
 * decoder that recognises protected blocks purely by counting valid code
 * words, corrects errors, and passes unprotected blocks through
 * untouched.
 */

#ifndef COP_CORE_CODEC_HPP
#define COP_CORE_CODEC_HPP

#include <optional>

#include "compress/combined.hpp"
#include "core/config.hpp"
#include "core/static_hash.hpp"
#include "ecc/secded.hpp"

namespace cop {

/** What the encoder decided to do with a writeback. */
enum class EncodeStatus : u8 {
    /** Block compressed; stored with inline ECC (and hashed). */
    Protected,
    /** Incompressible; stored raw and unprotected. */
    Unprotected,
    /**
     * Incompressible AND an alias (>= threshold valid code words): must
     * not be written to DRAM; the LLC keeps it pinned (Section 3.1,
     * Figure 3).
     */
    AliasRejected,
};

/** Result of CopCodec::encode. */
struct CopEncodeResult
{
    EncodeStatus status = EncodeStatus::Unprotected;
    /** Image to store in DRAM (meaningless for AliasRejected). */
    CacheBlock stored;
    /** Compression scheme used (valid when status == Protected). */
    SchemeId scheme = SchemeId::Msb;
    /** Scheme admission checks this encode performed (perf counter). */
    unsigned schemeTrials = 0;
    /**
     * Smallest in-budget compressed size of the block across all
     * participating schemes, in bits (excluding the 2-bit tag), or -1
     * when not computed (CopConfig::computeTransferBits off or status
     * != Protected). The stored image is always a full padded block;
     * this is the information content a bandwidth-mode controller may
     * size a shortened bus transfer from.
     */
    int minCompressedBits = -1;

    bool isProtected() const { return status == EncodeStatus::Protected; }
};

/** Result of CopCodec::decode. */
struct CopDecodeResult
{
    /** Decoder's determination: >= threshold valid code words seen. */
    bool compressed = false;
    /** Application data handed to the LLC. */
    CacheBlock data;
    /** Valid (zero-syndrome) code words counted before correction. */
    unsigned validCodewords = 0;
    /** Code words repaired by SECDED. */
    unsigned correctedWords = 0;
    /**
     * A failing code word was uncorrectable (double error within one
     * word): detected data loss.
     */
    bool detectedUncorrectable = false;
};

/**
 * The COP encoder/decoder pair. Stateless (thread-compatible); one
 * instance per memory controller.
 */
class CopCodec
{
  public:
    explicit CopCodec(const CopConfig &cfg = CopConfig::fourByte());

    const CopConfig &config() const { return cfg_; }
    const CombinedCompressor &compressor() const { return compressor_; }

    /**
     * Arm per-encode transfer sizing (CopConfig::computeTransferBits):
     * subsequent Protected encodes also report minCompressedBits.
     * Setup-time only; stored images are unaffected.
     */
    void enableTransferSizing() { cfg_.computeTransferBits = true; }

    /**
     * Encode a writeback: compress + protect if possible, otherwise pass
     * raw, rejecting incompressible aliases.
     */
    CopEncodeResult encode(const CacheBlock &data) const;

    /**
     * Decode a block read from DRAM, per Figure 2: un-hash, count valid
     * code words, correct and decompress if the count clears the
     * threshold, otherwise return the raw bits unmodified.
     */
    CopDecodeResult decode(const CacheBlock &stored) const;

    /**
     * Number of zero-syndrome code words the decoder would see for this
     * stored image (static hash removed first if configured).
     */
    unsigned countValidCodewords(const CacheBlock &stored) const;

    /**
     * Would this raw (uncompressed) block be mistaken for a compressed
     * one? (Section 3.1's alias test, applied on the writeback path.)
     */
    bool
    isAlias(const CacheBlock &raw) const
    {
        return countValidCodewords(raw) >= cfg_.threshold;
    }

    /**
     * Build a protected stored image from an already-assembled payload
     * (payloadBits() bits). Used by tests and by COP-ER re-encodes.
     */
    CacheBlock protectPayload(std::span<const u8> payload) const;

    /** Extract the payload bits of a (corrected) protected image. */
    void extractPayload(const CacheBlock &unhashed,
                        std::span<u8> payload) const;

  private:
    /** XOR the static hash in or out (self-inverse). */
    void applyHash(CacheBlock &block) const;

    CopConfig cfg_;
    CombinedCompressor compressor_;
};

} // namespace cop

#endif // COP_CORE_CODEC_HPP
