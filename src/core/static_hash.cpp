#include "core/static_hash.hpp"

#include "common/rng.hpp"

namespace cop {

const CacheBlock &
staticHashBlock()
{
    static const CacheBlock hash = [] {
        // Pinned seed: the hash is a hard-wired constant of the "memory
        // controller", not a per-run random value.
        Rng rng(0xC0DEC0DEC0DEC0DEULL);
        CacheBlock b;
        for (unsigned w = 0; w < 8; ++w)
            b.setWord64(w, rng.next());
        return b;
    }();
    return hash;
}

} // namespace cop
