#include "core/coper_codec.hpp"

#include <array>
#include <cstring>

namespace cop {

namespace {

/** Codeword buffer for the (523,512) wide code: 66 bytes. */
using WideBuf = std::array<u8, 66>;

void
fillWideData(WideBuf &buf, const CacheBlock &data)
{
    buf.fill(0);
    std::memcpy(buf.data(), data.data(), kBlockBytes);
}

} // namespace

CoperCodec::CoperCodec(const CopCodec &base) : base_(base)
{
    if (base.config().checkBytes != 4)
        COP_FATAL("COP-ER is defined on the 4-byte COP configuration");
}

u16
CoperCodec::wideCheck(const CacheBlock &data)
{
    WideBuf buf;
    fillWideData(buf, data);
    codes::wide523().encode(buf);
    return static_cast<u16>(getBits(buf, 512, 11));
}

EccResult
CoperCodec::wideDecode(CacheBlock &data, u16 check)
{
    WideBuf buf;
    fillWideData(buf, data);
    setBits(buf, 512, 11, check);
    const EccResult result = codes::wide523().decode(buf);
    if (result.corrected() && result.bitIndex < 512)
        std::memcpy(data.data(), buf.data(), kBlockBytes);
    return result;
}

CoperEncodeResult
CoperCodec::encodeIncompressible(const CacheBlock &data,
                                 u32 entry_index) const
{
    CoperEncodeResult result;
    result.check = wideCheck(data);
    result.stored = data;
    result.displaced = PointerCodec::embedField(
        result.stored, PointerCodec::encodeField(entry_index));
    result.aliasFree = !base_.isAlias(result.stored);
    return result;
}

CoperDecodeResult
CoperCodec::reconstruct(const CacheBlock &stored,
                        const EccEntry &entry) const
{
    CoperDecodeResult result;

    // Restore the displaced original bits over the pointer field. Any
    // soft error that hit the pointer field in DRAM is irrelevant now:
    // those stored bits are discarded wholesale.
    result.data = stored;
    PointerCodec::embedField(result.data, entry.displaced);

    // Correct the whole block with the entry's wide-code check bits.
    WideBuf buf;
    fillWideData(buf, result.data);
    setBits(buf, 512, 11, entry.check);
    result.blockEcc = codes::wide523().decode(buf);
    if (result.blockEcc.corrected() && result.blockEcc.bitIndex < 512) {
        std::memcpy(result.data.data(), buf.data(), kBlockBytes);
    }
    return result;
}

} // namespace cop
