#include "core/chipkill_codec.hpp"

#include <array>
#include <cstring>

namespace cop {

ChipkillCodec::ChipkillCodec(const ChipkillConfig &cfg)
    : cfg_(cfg), rs_(ChipkillConfig::kPayloadPerBeat),
      msb_(19, true), rle_()
{
    if (cfg_.threshold < 2 || cfg_.threshold > ChipkillConfig::kBeats)
        COP_FATAL("chipkill threshold must be in [2, 8]");
}

void
ChipkillCodec::applyHash(CacheBlock &block) const
{
    if (cfg_.useStaticHash)
        block ^= staticHashBlock();
}

std::optional<SchemeId>
ChipkillCodec::compressPayload(const CacheBlock &data,
                               std::span<u8> payload) const
{
    constexpr unsigned budget = ChipkillConfig::kStreamBudget;
    const BlockCompressor *schemes[] = {&msb_, &rle_};
    for (const BlockCompressor *scheme : schemes) {
        if (!scheme->canCompress(data, budget))
            continue;
        std::memset(payload.data(), 0, payload.size());
        BitWriter writer(payload);
        writer.write(static_cast<u64>(scheme->id()), kSchemeTagBits);
        const bool ok = scheme->compress(data, budget, writer);
        COP_ASSERT(ok);
        return scheme->id();
    }
    return std::nullopt;
}

bool
ChipkillCodec::compressible(const CacheBlock &data) const
{
    return msb_.canCompress(data, ChipkillConfig::kStreamBudget) ||
           rle_.canCompress(data, ChipkillConfig::kStreamBudget);
}

CopEncodeResult
ChipkillCodec::encode(const CacheBlock &data) const
{
    CopEncodeResult result;

    std::array<u8, ChipkillConfig::kPayloadBits / 8> payload{};
    const auto scheme = compressPayload(data, payload);
    if (!scheme) {
        if (isAlias(data)) {
            result.status = EncodeStatus::AliasRejected;
            result.stored = data;
            return result;
        }
        result.status = EncodeStatus::Unprotected;
        result.stored = data;
        return result;
    }

    result.status = EncodeStatus::Protected;
    result.scheme = *scheme;
    for (unsigned beat = 0; beat < ChipkillConfig::kBeats; ++beat) {
        std::array<u8, 8> word{};
        std::memcpy(word.data(),
                    payload.data() +
                        beat * ChipkillConfig::kPayloadPerBeat,
                    ChipkillConfig::kPayloadPerBeat);
        rs_.encode(word);
        std::memcpy(result.stored.data() + beat * 8, word.data(), 8);
    }
    applyHash(result.stored);
    return result;
}

unsigned
ChipkillCodec::countConsistentBeats(const CacheBlock &stored) const
{
    CacheBlock unhashed = stored;
    applyHash(unhashed);
    unsigned consistent = 0;
    for (unsigned beat = 0; beat < ChipkillConfig::kBeats; ++beat) {
        std::array<u8, 8> word;
        std::memcpy(word.data(), unhashed.data() + beat * 8, 8);
        const EccResult r = rs_.decode(word);
        consistent += !r.uncorrectable();
    }
    return consistent;
}

ChipkillDecodeResult
ChipkillCodec::decode(const CacheBlock &stored) const
{
    ChipkillDecodeResult result;

    CacheBlock unhashed = stored;
    applyHash(unhashed);

    std::array<u8, ChipkillConfig::kPayloadBits / 8> payload{};
    std::array<bool, ChipkillConfig::kBeats> bad{};
    for (unsigned beat = 0; beat < ChipkillConfig::kBeats; ++beat) {
        std::array<u8, 8> word;
        std::memcpy(word.data(), unhashed.data() + beat * 8, 8);
        const EccResult r = rs_.decode(word);
        if (r.uncorrectable()) {
            bad[beat] = true;
        } else {
            ++result.consistentBeats;
            result.correctedSymbols += r.corrected();
        }
        std::memcpy(payload.data() +
                        beat * ChipkillConfig::kPayloadPerBeat,
                    word.data(), ChipkillConfig::kPayloadPerBeat);
    }

    if (result.consistentBeats < cfg_.threshold) {
        result.compressed = false;
        result.correctedSymbols = 0;
        result.data = stored; // raw pass-through, un-hashed
        return result;
    }

    result.compressed = true;
    for (const bool b : bad)
        result.detectedUncorrectable |= b;

    BitReader reader(payload);
    const auto tag = static_cast<SchemeId>(reader.read(kSchemeTagBits));
    const BlockCompressor *scheme =
        tag == SchemeId::Msb
            ? static_cast<const BlockCompressor *>(&msb_)
            : (tag == SchemeId::Rle
                   ? static_cast<const BlockCompressor *>(&rle_)
                   : nullptr);
    if (scheme == nullptr) {
        // Only reachable with an uncorrectable beat mangling the tag.
        result.detectedUncorrectable = true;
        result.data = CacheBlock();
        return result;
    }
    scheme->decompress(reader, ChipkillConfig::kStreamBudget,
                       result.data);
    return result;
}

} // namespace cop
