/**
 * @file
 * EncodeMemo: a content-keyed cache of CopCodec::encode results, plus
 * the codec perf counters (encode calls, memo hits, scheme trials).
 *
 * Why this cannot change simulated behaviour: encode is a pure function
 * of the 64 block bytes and the (immutable) codec configuration — the
 * codec holds no mutable state, the static hash is a constant, and the
 * encoder never looks at the address or the clock. The memo is 4-way
 * set-associative on a hash of the content (tree pseudo-LRU per set,
 * common/plru.hpp — the original direct-mapped table thrashed when two
 * hot contents hashed to one slot) but keyed on the FULL 64-byte
 * block: a way only answers when its stored key compares equal, so a
 * hash collision evicts rather than corrupts. See DESIGN.md.
 *
 * One memo per System (never shared across parallel workers), so grid
 * runs stay deterministic at every worker count.
 */

#ifndef COP_CORE_ENCODE_MEMO_HPP
#define COP_CORE_ENCODE_MEMO_HPP

#include <vector>

#include "core/codec.hpp"
#include "core/warm_codec.hpp"

namespace cop {

/** Content-keyed 4-way set-associative cache of encode results. */
class EncodeMemo
{
  public:
    static constexpr unsigned kWays = 4;

    /**
     * @param entries Total capacity; sets = entries / kWays, rounded up
     *        to a power of two. 0 makes the memo counting-only: every
     *        encode runs the codec, but the perf counters still
     *        accumulate.
     */
    explicit EncodeMemo(unsigned entries)
    {
        if (entries > 0) {
            unsigned sets = 1;
            while (sets * kWays < entries)
                sets <<= 1;
            sets_.resize(sets);
            mask_ = sets - 1;
        }
    }

    /**
     * Encode @p data through @p codec, serving repeats of identical
     * content from the cache. The returned reference is invalidated by
     * the next encode() call.
     */
    const CopEncodeResult &
    encode(const CopCodec &codec, const CacheBlock &data)
    {
        ++lookups_;
        if (sets_.empty()) {
            scratch_ = missEncode(codec, data);
            schemeTrials_ += scratch_.schemeTrials;
            return scratch_;
        }
        Set &set = sets_[contentHash(data) & mask_];
        unsigned way = kWays;
        for (unsigned w = 0; w < kWays; ++w) {
            Entry &e = set.ways[w];
            if (e.valid && e.key == data) {
                ++hits_;
                set.plru.touch(w);
                return e.result;
            }
            if (way == kWays && !e.valid)
                way = w;
        }
        if (way == kWays) {
            way = set.plru.victim();
            ++conflictEvictions_;
        }
        Entry &e = set.ways[way];
        e.valid = true;
        e.key = data;
        e.result = missEncode(codec, data);
        schemeTrials_ += e.result.schemeTrials;
        set.plru.touch(way);
        return e.result;
    }

    /**
     * Attach a shard-worker warm store (sharded mode only; see
     * core/warm_codec.hpp). On a memo miss the warm store substitutes
     * the precomputed encode for the inline one — the lookup/hit/
     * scheme-trial counters above are untouched, so every counter the
     * results JSON and stats trace see stays byte-identical.
     */
    void attachWarmStore(const WarmEncodeStore *warm) { warm_ = warm; }

    /** Total entry capacity (0 = counting-only). */
    unsigned capacity() const
    {
        return static_cast<unsigned>(sets_.size()) * kWays;
    }

    u64 lookups() const { return lookups_; }
    u64 hits() const { return hits_; }
    u64 schemeTrials() const { return schemeTrials_; }
    /** Misses that displaced a valid, differently-keyed entry. */
    u64 conflictEvictions() const { return conflictEvictions_; }

  private:
    struct Entry
    {
        bool valid = false;
        CacheBlock key;
        CopEncodeResult result;
    };

    struct Set
    {
        Entry ways[kWays];
        Plru4 plru;
    };

    /** Multiply-xor mix of the eight block words. */
    static u64
    contentHash(const CacheBlock &data)
    {
        return blockContentHash(data);
    }

    /** The encode behind a memo miss: warm store first, then codec. */
    CopEncodeResult
    missEncode(const CopCodec &codec, const CacheBlock &data) const
    {
        if (warm_ != nullptr) {
            if (const CopEncodeResult *enc = warm_->lookup(data))
                return *enc;
        }
        return codec.encode(data);
    }

    std::vector<Set> sets_;
    const WarmEncodeStore *warm_ = nullptr;
    u64 mask_ = 0;
    u64 lookups_ = 0;
    u64 hits_ = 0;
    u64 schemeTrials_ = 0;
    u64 conflictEvictions_ = 0;
    /** Result holder for the counting-only (uncached) mode. */
    CopEncodeResult scratch_;
};

} // namespace cop

#endif // COP_CORE_ENCODE_MEMO_HPP
