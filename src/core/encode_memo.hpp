/**
 * @file
 * EncodeMemo: a content-keyed cache of CopCodec::encode results, plus
 * the codec perf counters (encode calls, memo hits, scheme trials).
 *
 * Why this cannot change simulated behaviour: encode is a pure function
 * of the 64 block bytes and the (immutable) codec configuration — the
 * codec holds no mutable state, the static hash is a constant, and the
 * encoder never looks at the address or the clock. The memo is
 * direct-mapped on a hash of the content but keyed on the FULL 64-byte
 * block: a slot only answers when its stored key compares equal, so a
 * hash collision evicts rather than corrupts. See DESIGN.md.
 *
 * One memo per System (never shared across parallel workers), so grid
 * runs stay deterministic at every worker count.
 */

#ifndef COP_CORE_ENCODE_MEMO_HPP
#define COP_CORE_ENCODE_MEMO_HPP

#include <vector>

#include "core/codec.hpp"
#include "core/warm_codec.hpp"

namespace cop {

/** Content-keyed direct-mapped cache of encode results. */
class EncodeMemo
{
  public:
    /**
     * @param entries Slot count (rounded up to a power of two). 0 makes
     *        the memo counting-only: every encode runs the codec, but
     *        the perf counters still accumulate.
     */
    explicit EncodeMemo(unsigned entries)
    {
        if (entries > 0) {
            unsigned cap = 1;
            while (cap < entries)
                cap <<= 1;
            slots_.resize(cap);
            mask_ = cap - 1;
        }
    }

    /**
     * Encode @p data through @p codec, serving repeats of identical
     * content from the cache. The returned reference is invalidated by
     * the next encode() call.
     */
    const CopEncodeResult &
    encode(const CopCodec &codec, const CacheBlock &data)
    {
        ++lookups_;
        if (slots_.empty()) {
            scratch_ = missEncode(codec, data);
            schemeTrials_ += scratch_.schemeTrials;
            return scratch_;
        }
        Entry &slot = slots_[contentHash(data) & mask_];
        if (slot.valid && slot.key == data) {
            ++hits_;
            return slot.result;
        }
        slot.valid = true;
        slot.key = data;
        slot.result = missEncode(codec, data);
        schemeTrials_ += slot.result.schemeTrials;
        return slot.result;
    }

    /**
     * Attach a shard-worker warm store (sharded mode only; see
     * core/warm_codec.hpp). On a memo miss the warm store substitutes
     * the precomputed encode for the inline one — the lookup/hit/
     * scheme-trial counters above are untouched, so every counter the
     * results JSON and stats trace see stays byte-identical.
     */
    void attachWarmStore(const WarmEncodeStore *warm) { warm_ = warm; }

    /** Slot count (0 = counting-only). */
    unsigned capacity() const
    {
        return static_cast<unsigned>(slots_.size());
    }

    u64 lookups() const { return lookups_; }
    u64 hits() const { return hits_; }
    u64 schemeTrials() const { return schemeTrials_; }

  private:
    struct Entry
    {
        bool valid = false;
        CacheBlock key;
        CopEncodeResult result;
    };

    /** Multiply-xor mix of the eight block words. */
    static u64
    contentHash(const CacheBlock &data)
    {
        return blockContentHash(data);
    }

    /** The encode behind a memo miss: warm store first, then codec. */
    CopEncodeResult
    missEncode(const CopCodec &codec, const CacheBlock &data) const
    {
        if (warm_ != nullptr) {
            if (const CopEncodeResult *enc = warm_->lookup(data))
                return *enc;
        }
        return codec.encode(data);
    }

    std::vector<Entry> slots_;
    const WarmEncodeStore *warm_ = nullptr;
    u64 mask_ = 0;
    u64 lookups_ = 0;
    u64 hits_ = 0;
    u64 schemeTrials_ = 0;
    /** Result holder for the counting-only (uncached) mode. */
    CopEncodeResult scratch_;
};

} // namespace cop

#endif // COP_CORE_ENCODE_MEMO_HPP
