#include "core/ecc_region.hpp"

namespace cop {

u16
EccRegion::blockCount(u64 entry_block) const
{
    if (entry_block >= block_valid_count_.size())
        return 0;
    return block_valid_count_[entry_block];
}

bool
EccRegion::l3BlockHasSpace(u64 l3) const
{
    if (l3 >= l3_full_count_.size())
        return true; // virgin territory: everything free
    return l3_full_count_[l3] < kValidBitsPerBlock;
}

u32
EccRegion::allocate()
{
    ++stats_.allocs;
    last_touches_ = {};

    // Step 1: the MRU L3 valid-bit block (one tree-block read).
    u64 l3 = mru_l3_;
    last_touches_.treeBlockReads += 1;
    if (!l3BlockHasSpace(l3)) {
        // Step 2: hierarchy walk — L1 and L2 reads locate the first L3
        // block with a zero bit (Section 3.3 / Figure 7). The functional
        // search is first-fit by index.
        ++stats_.hierarchyWalks;
        last_touches_.treeBlockReads += 2; // L1 + L2
        l3 = 0;
        while (!l3BlockHasSpace(l3))
            ++l3;
        last_touches_.treeBlockReads += 1; // the located L3 block
        mru_l3_ = l3;
    }

    // Step 3: find a non-full entry block under this L3 block.
    const u64 first_block = l3 * kValidBitsPerBlock;
    u64 entry_block = first_block;
    while (blockCount(entry_block) >= kEntriesPerBlock)
        ++entry_block;
    COP_ASSERT(entry_block < first_block + kValidBitsPerBlock);

    // Step 4: claim the first invalid slot in that entry block.
    const u64 needed = (entry_block + 1) * kEntriesPerBlock;
    if (entries_.size() < needed) {
        entries_.resize(needed);
        block_valid_count_.resize(entry_block + 1, 0);
    }
    u32 index = 0;
    bool found = false;
    for (unsigned slot = 0; slot < kEntriesPerBlock; ++slot) {
        const u64 candidate = entry_block * kEntriesPerBlock + slot;
        if (!entries_[candidate].valid) {
            index = static_cast<u32>(candidate);
            found = true;
            break;
        }
    }
    COP_ASSERT(found);

    entries_[index].valid = true;
    ++block_valid_count_[entry_block];
    ++valid_entries_;
    if (index + 1 > high_water_)
        high_water_ = index + 1;

    // The entry block itself is written by the caller; tree updates only
    // happen when the block transitions to full.
    if (block_valid_count_[entry_block] == kEntriesPerBlock) {
        if (l3_full_count_.size() <= l3)
            l3_full_count_.resize(l3 + 1, 0);
        ++l3_full_count_[l3];
        last_touches_.treeBlockWrites += 1; // L3 bit set
        if (l3_full_count_[l3] == kValidBitsPerBlock)
            last_touches_.treeBlockWrites += 1; // L2 bit set
    }
    return index;
}

void
EccRegion::corruptValid(u32 index)
{
    if (!valid(index))
        return;
    const u64 entry_block = index / kEntriesPerBlock;
    const u64 l3 = entry_block / kValidBitsPerBlock;
    const bool was_full =
        block_valid_count_[entry_block] == kEntriesPerBlock;
    entries_[index].valid = false; // payload kept: only the bit flipped
    --block_valid_count_[entry_block];
    --valid_entries_;
    if (was_full && l3 < l3_full_count_.size() && l3_full_count_[l3] > 0)
        --l3_full_count_[l3];
}

void
EccRegion::free(u32 index)
{
    ++stats_.frees;
    last_touches_ = {};
    // Reachable from the controller's writeback path: an index that is
    // out of range or already free means corrupted entry bookkeeping,
    // and indexing entries_ with it would be memory-unsafe.
    if (index >= entries_.size() || !entries_[index].valid)
        COP_PANIC("free of invalid ECC-region entry " +
                  std::to_string(index) + " (region holds " +
                  std::to_string(entries_.size()) + ")");

    const u64 entry_block = index / kEntriesPerBlock;
    const u64 l3 = entry_block / kValidBitsPerBlock;
    const bool was_full =
        block_valid_count_[entry_block] == kEntriesPerBlock;

    entries_[index] = EccEntry{};
    --block_valid_count_[entry_block];
    --valid_entries_;

    if (was_full) {
        COP_ASSERT(l3 < l3_full_count_.size() && l3_full_count_[l3] > 0);
        const bool l3_was_full = l3_full_count_[l3] == kValidBitsPerBlock;
        --l3_full_count_[l3];
        last_touches_.treeBlockWrites += 1; // L3 bit cleared
        if (l3_was_full)
            last_touches_.treeBlockWrites += 1; // L2 bit cleared
    }
}

bool
EccRegion::valid(u32 index) const
{
    return index < entries_.size() && entries_[index].valid;
}

EccEntry &
EccRegion::entryAt(u32 index)
{
    if (index >= entries_.size())
        COP_PANIC("ECC-region entry index " + std::to_string(index) +
                  " past the grown region of " +
                  std::to_string(entries_.size()) + " entries");
    return entries_[index];
}

const EccEntry &
EccRegion::entryAt(u32 index) const
{
    if (index >= entries_.size())
        COP_PANIC("ECC-region entry index " + std::to_string(index) +
                  " past the grown region of " +
                  std::to_string(entries_.size()) + " entries");
    return entries_[index];
}

u64
EccRegion::storageBlocksForEntries(u64 entries)
{
    if (entries == 0)
        return 0;
    const u64 entry_blocks =
        (entries + kEntriesPerBlock - 1) / kEntriesPerBlock;
    const u64 l3 =
        (entry_blocks + kValidBitsPerBlock - 1) / kValidBitsPerBlock;
    const u64 l2 = (l3 + kValidBitsPerBlock - 1) / kValidBitsPerBlock;
    const u64 l1 = (l2 + kValidBitsPerBlock - 1) / kValidBitsPerBlock;
    return entry_blocks + l3 + l2 + l1;
}

u64
EccRegion::storageBlocksHighWater() const
{
    return storageBlocksForEntries(high_water_);
}

} // namespace cop
