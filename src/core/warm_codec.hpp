/**
 * @file
 * Warm result stores for the thread-parallel sharded simulation core
 * (SystemConfig::simThreads > 1, see DESIGN.md §8 and sim/shard.hpp).
 *
 * A warm store is a coordinator-private, 4-way set-associative table
 * of precomputed pure-function results produced ahead of time by shard
 * workers: encode results keyed on the full 64-byte source content,
 * decode results keyed on the full 64-byte stored image. Direct-mapped
 * stores were conflict-prone on big footprints (two hot blocks hashing
 * to one slot evict each other forever); four ways under a tree
 * pseudo-LRU (common/plru.hpp) absorb those collisions at one byte of
 * replacement state per set. Lookups only
 * answer when the stored key compares equal, and both CopCodec::encode
 * and CopCodec::decode are pure functions of their 64-byte input plus
 * the immutable codec configuration — so substituting a warm result
 * for an inline computation can never change any simulated outcome,
 * exactly the argument that already covers EncodeMemo and the
 * BlockContentPool content cache. The stores are written only by the
 * simulation coordinator thread at deterministic install points
 * (bundle dequeue, immediately before the owning epoch runs), so their
 * hit/miss telemetry is itself a pure function of the configuration.
 *
 * Telemetry counters are deliberately NOT exported through the results
 * JSON or the StatsRegistry: both must stay byte-identical between
 * simThreads=1 and simThreads=N. System::shardTelemetry() exposes them
 * out of band for the micro_system bench.
 */

#ifndef COP_CORE_WARM_CODEC_HPP
#define COP_CORE_WARM_CODEC_HPP

#include <vector>

#include "common/plru.hpp"
#include "core/codec.hpp"

namespace cop {

/** Multiply-xor mix of the eight block words (shared with EncodeMemo). */
inline u64
blockContentHash(const CacheBlock &data)
{
    u64 h = 0x9e3779b97f4a7c15ULL;
    for (unsigned w = 0; w < 8; ++w) {
        h ^= data.word64(w);
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
    }
    return h;
}

/** 4-way set-associative block-keyed store of precomputed results. */
template <typename Result> class WarmBlockStore
{
  public:
    static constexpr unsigned kWays = 4;

    /** @param entries total capacity; sets = entries / kWays (pow2). */
    explicit WarmBlockStore(unsigned entries)
    {
        unsigned sets = 1;
        while (sets * kWays < entries)
            sets <<= 1;
        sets_.resize(sets);
        mask_ = sets - 1;
    }

    /** The precomputed result for @p key, or null (counts a lookup). */
    const Result *
    lookup(const CacheBlock &key) const
    {
        ++lookups_;
        const Set &set = sets_[blockContentHash(key) & mask_];
        for (unsigned w = 0; w < kWays; ++w) {
            const Entry &e = set.ways[w];
            if (e.valid && e.key == key) {
                ++hits_;
                set.plru.touch(w);
                return &e.result;
            }
        }
        return nullptr;
    }

    void
    install(const CacheBlock &key, const Result &result)
    {
        Set &set = sets_[blockContentHash(key) & mask_];
        unsigned way = kWays;
        for (unsigned w = 0; w < kWays && way == kWays; ++w)
            if (set.ways[w].valid && set.ways[w].key == key)
                way = w; // refresh in place
        for (unsigned w = 0; w < kWays && way == kWays; ++w)
            if (!set.ways[w].valid)
                way = w;
        if (way == kWays) {
            way = set.plru.victim();
            ++conflictEvictions_;
        }
        Entry &e = set.ways[way];
        e.valid = true;
        e.key = key;
        e.result = result;
        set.plru.touch(way);
        ++installs_;
    }

    u64 lookups() const { return lookups_; }
    u64 hits() const { return hits_; }
    u64 installs() const { return installs_; }
    /** Installs that displaced a valid, differently-keyed entry. */
    u64 conflictEvictions() const { return conflictEvictions_; }

  private:
    struct Entry
    {
        bool valid = false;
        CacheBlock key;
        Result result;
    };

    struct Set
    {
        Entry ways[kWays];
        /** Recency state; advanced on hits, so mutable like the
         *  counters (lookup stays logically const). */
        mutable Plru4 plru;
    };

    std::vector<Set> sets_;
    u64 mask_ = 0;
    /** Telemetry only (lookup is logically const). */
    mutable u64 lookups_ = 0;
    mutable u64 hits_ = 0;
    u64 installs_ = 0;
    u64 conflictEvictions_ = 0;
};

/** Worker-precomputed CopCodec::encode results, keyed on the content. */
using WarmEncodeStore = WarmBlockStore<CopEncodeResult>;
/** Worker-precomputed CopCodec::decode results, keyed on the image. */
using WarmDecodeStore = WarmBlockStore<CopDecodeResult>;

/**
 * Decode @p stored through the warm store when possible, inline
 * otherwise. @p scratch holds the result on the inline path (mirrors
 * EncodeMemo's counting-only scratch). A faulted image never matches a
 * worker-produced key, so it decodes inline — and a coincidental full
 * 64-byte match would by definition yield the identical pure result.
 */
inline const CopDecodeResult &
warmOrDecode(const WarmDecodeStore *warm, const CopCodec &codec,
             const CacheBlock &stored, CopDecodeResult &scratch)
{
    if (warm != nullptr) {
        if (const CopDecodeResult *dec = warm->lookup(stored))
            return *dec;
    }
    scratch = codec.decode(stored);
    return scratch;
}

} // namespace cop

#endif // COP_CORE_WARM_CODEC_HPP
