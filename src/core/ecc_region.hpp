/**
 * @file
 * The COP-ER ECC region (paper Section 3.3, Figures 6 and 7): a
 * dynamically growing pool of 46-bit entries — valid bit, the 34 bits of
 * data displaced by the pointer, and 11 (523,512) check bits protecting
 * the whole original block — packed 11 entries per 64-byte block, with a
 * three-level valid-bit tree (501 valid bits + 11 parity per tree block)
 * that lets the controller find a free entry without an exhaustive scan.
 */

#ifndef COP_CORE_ECC_REGION_HPP
#define COP_CORE_ECC_REGION_HPP

#include <vector>

#include "common/types.hpp"

namespace cop {

/** One ECC-region entry (Figure 6: V | displaced data | ECC). */
struct EccEntry
{
    bool valid = false;
    /** The 34 bits displaced from the incompressible block. */
    u64 displaced = 0;
    /** 11 check bits of the (523,512) code over the original block. */
    u16 check = 0;
};

/**
 * Functional model of the ECC region and its valid-bit hierarchy. Pure
 * bookkeeping — the memory-controller layer translates the access counts
 * reported here into DRAM traffic and charges latency.
 *
 * Geometry: 11 entries per ECC-entry block; each L3 valid-bit block
 * tracks fullness of 501 entry blocks; each L2 block tracks 501 L3
 * blocks; one L1 level on top. The controller keeps an MRU pointer to
 * the L3 block it last allocated from (Section 3.3).
 */
class EccRegion
{
  public:
    static constexpr unsigned kEntriesPerBlock = 11;
    static constexpr unsigned kEntryBits = 46;
    static constexpr unsigned kValidBitsPerBlock = 501;

    /** Access-count record of the most recent allocate()/free(). */
    struct TouchRecord
    {
        /** Valid-bit tree blocks read (L3 scan + any L1/L2 walk). */
        unsigned treeBlockReads = 0;
        /** Valid-bit tree blocks written (fullness bit updates). */
        unsigned treeBlockWrites = 0;
    };

    /** Lifetime statistics. */
    struct Stats
    {
        u64 allocs = 0;
        u64 frees = 0;
        u64 hierarchyWalks = 0; ///< Allocations that left the MRU L3 block.
    };

    EccRegion() = default;

    /**
     * Allocate a free entry (marks it valid) using the MRU-L3 /
     * tree-walk policy and return its index.
     */
    u32 allocate();

    /** Invalidate an entry, returning it to the free pool. */
    void free(u32 index);

    /**
     * Fault-injection hook: clear an entry's valid bit as a soft error
     * would — bookkeeping (fullness counts) stays consistent, but no
     * tree traffic is recorded and the payload is left in place (the
     * flip is silent until a read discovers the entry invalid).
     */
    void corruptValid(u32 index);

    /** Is this entry currently valid? */
    bool valid(u32 index) const;

    /** Entry payload access (entry must be within the grown region). */
    EccEntry &entryAt(u32 index);
    const EccEntry &entryAt(u32 index) const;

    /** Currently valid entries. */
    u64 validEntries() const { return valid_entries_; }

    /**
     * Valid entries currently in entry block @p entry_block (0 for
     * blocks past the grown region). The adaptive-capacity controller
     * uses this to spot entry blocks that drained to empty.
     */
    u16
    validInBlock(u64 entry_block) const
    {
        return blockCount(entry_block);
    }

    /** Highest entry count ever reached (entries are packed low-first). */
    u64 highWaterEntries() const { return high_water_; }

    /** Entry blocks backing the high-water mark. */
    u64
    entryBlocksHighWater() const
    {
        return (high_water_ + kEntriesPerBlock - 1) / kEntriesPerBlock;
    }

    /**
     * Total 64-byte blocks of DRAM the region occupies at high water,
     * including the valid-bit tree (Figure 6's full layout).
     */
    u64 storageBlocksHighWater() const;

    /**
     * Region blocks (entries + valid-bit tree) needed for @p entries
     * ECC entries — Figure 12's no-deallocation storage accounting.
     */
    static u64 storageBlocksForEntries(u64 entries);

    /** Access counts of the most recent allocate()/free(). */
    const TouchRecord &lastTouches() const { return last_touches_; }
    const Stats &stats() const { return stats_; }

  private:
    /** Entry blocks covered by L3 valid-bit block @p l3. */
    bool l3BlockHasSpace(u64 l3) const;
    /** Per-entry-block count of valid entries (grows on demand). */
    u16 blockCount(u64 entry_block) const;

    std::vector<EccEntry> entries_;
    /** valid-entry count per entry block (parallel to entries_/11). */
    std::vector<u16> block_valid_count_;
    /** full-entry-block count per L3 valid-bit block. */
    std::vector<u16> l3_full_count_;
    u64 mru_l3_ = 0;
    u64 valid_entries_ = 0;
    u64 high_water_ = 0;
    TouchRecord last_touches_;
    Stats stats_;
};

} // namespace cop

#endif // COP_CORE_ECC_REGION_HPP
