/**
 * @file
 * CoperCodec — the COP-ER block transformations of paper Section 3.3:
 * how an incompressible block is stored (34 bits displaced by a
 * SEC-protected pointer to an ECC-region entry) and how it is read back
 * (pointer corrected, displaced data restored, whole block corrected by
 * the entry's wide (523,512) code). Allocation policy and DRAM traffic
 * live in the CopErController; this class is pure data transformation.
 */

#ifndef COP_CORE_COPER_CODEC_HPP
#define COP_CORE_COPER_CODEC_HPP

#include "core/codec.hpp"
#include "core/ecc_region.hpp"
#include "core/pointer_codec.hpp"

namespace cop {

/** Stored image + ECC-entry payload for one incompressible block. */
struct CoperEncodeResult
{
    /** Block image to write to DRAM (pointer embedded). */
    CacheBlock stored;
    /** The 34 original bits the pointer displaced (goes in the entry). */
    u64 displaced = 0;
    /** (523,512) check bits over the original block (goes in the entry). */
    u16 check = 0;
    /**
     * True when the stored image does not alias (i.e. the COP decoder
     * will correctly see it as uncompressed). When false the caller must
     * retry with a different entry index (Section 3.3's de-aliasing).
     */
    bool aliasFree = true;
};

/** Result of reconstructing an incompressible block from its entry. */
struct CoperDecodeResult
{
    /** Reconstructed (and corrected) application data. */
    CacheBlock data;
    /** ECC outcome of the wide (523,512) whole-block code. */
    EccResult blockEcc;
};

/**
 * COP-ER encode/decode for incompressible blocks. Defined only for the
 * 4-byte COP configuration (the one the paper evaluates COP-ER on).
 */
class CoperCodec
{
  public:
    explicit CoperCodec(const CopCodec &base);

    const CopCodec &base() const { return base_; }

    /** (523,512) check bits over a raw block. */
    static u16 wideCheck(const CacheBlock &data);

    /**
     * Decode @p data against the wide (523,512) code with @p check
     * bits, correcting @p data in place when the code allows it (a
     * corrected check-bit error leaves the data untouched). Shared by
     * the fault paths of every controller that protects raw blocks
     * with the wide code.
     */
    static EccResult wideDecode(CacheBlock &data, u16 check);

    /**
     * Build the stored image of an incompressible block for entry
     * @p entry_index, reporting whether the image is alias-free.
     */
    CoperEncodeResult encodeIncompressible(const CacheBlock &data,
                                           u32 entry_index) const;

    /**
     * Extract and correct the embedded pointer from a stored
     * incompressible block (the first step of the read path, after the
     * COP decoder classified the block as uncompressed).
     */
    PointerDecodeResult
    extractPointer(const CacheBlock &stored) const
    {
        return PointerCodec::decodeField(PointerCodec::extractField(stored));
    }

    /**
     * Restore the displaced bits from @p entry and correct the whole
     * block with the entry's check bits.
     */
    CoperDecodeResult reconstruct(const CacheBlock &stored,
                                  const EccEntry &entry) const;

  private:
    const CopCodec &base_;
};

} // namespace cop

#endif // COP_CORE_COPER_CODEC_HPP
