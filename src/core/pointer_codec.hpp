/**
 * @file
 * COP-ER pointer handling (paper Section 3.3, Figure 6): every
 * incompressible block stored under COP-ER has 34 bits displaced — a
 * 28-bit ECC-region entry index plus 6 SEC check bits — and those 34 bits
 * are scattered across all four code-word segments. Scattering matters:
 * because the pointer overlaps every code word the decoder examines,
 * choosing a different entry index perturbs all four syndromes, which is
 * what lets the allocator steer an incompressible block away from being
 * an alias.
 */

#ifndef COP_CORE_POINTER_CODEC_HPP
#define COP_CORE_POINTER_CODEC_HPP

#include "common/cache_block.hpp"
#include "ecc/secded.hpp"

namespace cop {

/** Result of extracting + correcting an embedded COP-ER pointer. */
struct PointerDecodeResult
{
    /** Corrected entry index. */
    u32 entryIndex = 0;
    /** ECC outcome on the 34-bit pointer field. */
    EccResult ecc;
};

/**
 * Encoder/decoder for the 34-bit displaced pointer field. Stateless.
 *
 * Field layout (34 bits): entry index bits [0, 28), SEC check bits
 * [28, 34) — the (34,28) Hamming code from ecc::codes::pointer34().
 * Scatter layout: 9 bits at the head of segments 0 and 1, 8 bits at the
 * head of segments 2 and 3 (block bit offsets 0, 128, 256, 384), for the
 * 4-byte COP configuration COP-ER is defined on.
 */
class PointerCodec
{
  public:
    static constexpr unsigned kIndexBits = 28;
    static constexpr unsigned kCheckBits = 6;
    static constexpr unsigned kFieldBits = kIndexBits + kCheckBits;
    /** Largest encodable ECC-region entry index. */
    static constexpr u32 kMaxIndex = (1u << kIndexBits) - 1;

    /** Build the protected 34-bit field for an entry index. */
    static u64 encodeField(u32 entry_index);

    /** Correct and extract the entry index from a 34-bit field. */
    static PointerDecodeResult decodeField(u64 field);

    /** Scatter a 34-bit field into a block (returns displaced bits). */
    static u64 embedField(CacheBlock &block, u64 field);

    /** Gather the scattered 34-bit field from a block. */
    static u64 extractField(const CacheBlock &block);

    /** Bits-per-segment scatter widths. */
    static constexpr unsigned kScatterWidth[4] = {9, 9, 8, 8};
    /** Block bit offset of each scatter slice. */
    static constexpr unsigned kScatterOffset[4] = {0, 128, 256, 384};
};

} // namespace cop

#endif // COP_CORE_POINTER_CODEC_HPP
