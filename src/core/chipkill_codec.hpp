/**
 * @file
 * Chipkill-COP: the extension the paper's conclusion sketches as
 * future work ("naturally extended to provide even greater resilience
 * (e.g. chipkill support)"). The same compress-then-protect-inline
 * recipe, with the ECC budget raised from 4 to 16 bytes and the SECDED
 * words replaced by Reed-Solomon words aligned to the DIMM's chip
 * geometry:
 *
 *  - a x8 rank delivers one byte per chip per burst beat, so beat b of
 *    a 64-byte block is bytes [8b, 8b+8) with byte i coming from chip i;
 *  - each beat is stored as an RS(8,6) word over GF(256): 6 payload
 *    bytes + 2 check bytes, correcting any single symbol — i.e. the
 *    failure of any single chip corrupts one symbol per beat and every
 *    beat self-corrects;
 *  - compression must free 16 bytes + 2 tag bits (stream budget 382
 *    bits), so only MSB (19-bit elide) and RLE participate;
 *  - compressed-vs-raw detection generalises COP's valid-code-word
 *    count: a beat is *consistent* if its RS word is valid or within
 *    single-symbol correction; >= 6 consistent beats => compressed.
 *    This survives a whole-chip failure (all beats remain consistent)
 *    while a raw beat is consistent with probability ~2^-5, making
 *    8-beat aliases (~2.4e-8) rarer than original COP's.
 */

#ifndef COP_CORE_CHIPKILL_CODEC_HPP
#define COP_CORE_CHIPKILL_CODEC_HPP

#include <optional>

#include "compress/msb.hpp"
#include "compress/rle.hpp"
#include "core/codec.hpp"
#include "ecc/reed_solomon.hpp"

namespace cop {

/** Chipkill-COP configuration. */
struct ChipkillConfig
{
    /** Consistent beats required to treat a block as compressed. */
    unsigned threshold = 6;
    bool useStaticHash = true;

    /** Burst beats per block (x8 rank, 64-bit bus). */
    static constexpr unsigned kBeats = 8;
    /** Chips per rank == symbols per beat. */
    static constexpr unsigned kChips = 8;
    /** Payload bytes per beat (2 RS check symbols). */
    static constexpr unsigned kPayloadPerBeat = 6;
    /** Total payload bits: 8 beats x 6 bytes = 384 (2 tag + 382). */
    static constexpr unsigned kPayloadBits =
        kBeats * kPayloadPerBeat * 8;
    /** Compression budget after the scheme tag. */
    static constexpr unsigned kStreamBudget =
        kPayloadBits - kSchemeTagBits;
};

/** Result of a chipkill-COP decode. */
struct ChipkillDecodeResult
{
    bool compressed = false;
    CacheBlock data;
    /** Beats that were valid or single-symbol-correctable. */
    unsigned consistentBeats = 0;
    /** RS symbol corrections applied across all beats. */
    unsigned correctedSymbols = 0;
    /** Some beat had >= 2 symbol errors: detected data loss. */
    bool detectedUncorrectable = false;
};

/**
 * The chipkill-COP encoder/decoder. Same contract as CopCodec, with
 * the correction envelope widened to any single-chip failure of a
 * protected block.
 */
class ChipkillCodec
{
  public:
    explicit ChipkillCodec(const ChipkillConfig &cfg = ChipkillConfig{});

    const ChipkillConfig &config() const { return cfg_; }

    /** Compress + RS-protect, or pass raw / reject aliases. */
    CopEncodeResult encode(const CacheBlock &data) const;

    /** Count valid-or-correctable beats, correct, decompress. */
    ChipkillDecodeResult decode(const CacheBlock &stored) const;

    /** Beats a raw block would present as consistent. */
    unsigned countConsistentBeats(const CacheBlock &stored) const;

    bool
    isAlias(const CacheBlock &raw) const
    {
        return countConsistentBeats(raw) >= cfg_.threshold;
    }

    /** Can this block shed 16 bytes + tag under MSB19/RLE? */
    bool compressible(const CacheBlock &data) const;

    const RsCode &code() const { return rs_; }

  private:
    void applyHash(CacheBlock &block) const;
    /** Try the schemes in tag order; returns scheme id on success. */
    std::optional<SchemeId> compressPayload(const CacheBlock &data,
                                            std::span<u8> payload) const;

    ChipkillConfig cfg_;
    RsCode rs_;
    MsbCompressor msb_;
    RleCompressor rle_;
};

} // namespace cop

#endif // COP_CORE_CHIPKILL_CODEC_HPP
