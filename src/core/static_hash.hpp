/**
 * @file
 * The static hash of paper Section 3.1: a fixed 64-byte pattern XORed
 * into every compressed/protected block after ECC encoding (and removed
 * before decoding). Each 128-bit (or 64-bit) segment gets a *different*
 * hash value, so application data consisting of one repeated value cannot
 * produce several identical valid code words and masquerade as a
 * compressed block.
 */

#ifndef COP_CORE_STATIC_HASH_HPP
#define COP_CORE_STATIC_HASH_HPP

#include "common/cache_block.hpp"

namespace cop {

/**
 * The process-wide static hash block. The values are arbitrary but fixed
 * (generated once from a pinned xoshiro seed), as they would be hard-wired
 * in the memory controller; determinism keeps DRAM images comparable
 * across runs.
 */
const CacheBlock &staticHashBlock();

} // namespace cop

#endif // COP_CORE_STATIC_HASH_HPP
