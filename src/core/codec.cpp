#include "core/codec.hpp"

#include <array>
#include <cstring>

namespace cop {

CopCodec::CopCodec(const CopConfig &cfg)
    : cfg_(cfg), compressor_(cfg.checkBytes)
{
    cfg_.validate();
}

void
CopCodec::applyHash(CacheBlock &block) const
{
    if (cfg_.useStaticHash)
        block ^= staticHashBlock();
}

CacheBlock
CopCodec::protectPayload(std::span<const u8> payload) const
{
    const HsiaoCode &code = cfg_.code();
    const unsigned seg_bytes = cfg_.segmentBytes();
    const unsigned dpw = cfg_.dataBitsPerWord();

    CacheBlock stored;
    std::array<u8, 16> segment{};
    for (unsigned s = 0; s < cfg_.codewords(); ++s) {
        std::memset(segment.data(), 0, seg_bytes);
        copyBits(payload, s * dpw, std::span<u8>(segment).first(seg_bytes),
                 0, dpw);
        code.encode(std::span<u8>(segment).first(seg_bytes));
        std::memcpy(stored.data() + s * seg_bytes, segment.data(),
                    seg_bytes);
    }
    applyHash(stored);
    return stored;
}

void
CopCodec::extractPayload(const CacheBlock &unhashed,
                         std::span<u8> payload) const
{
    const unsigned seg_bytes = cfg_.segmentBytes();
    const unsigned dpw = cfg_.dataBitsPerWord();
    for (unsigned s = 0; s < cfg_.codewords(); ++s) {
        copyBits(unhashed.bytes().subspan(s * seg_bytes, seg_bytes), 0,
                 payload, s * dpw, dpw);
    }
}

CopEncodeResult
CopCodec::encode(const CacheBlock &data) const
{
    CopEncodeResult result;

    std::array<u8, kBlockBytes> payload{};
    const auto scheme = compressor_.compress(
        data, std::span<u8>(payload).first(compressor_.payloadBytes()),
        &result.schemeTrials);
    if (scheme) {
        result.status = EncodeStatus::Protected;
        result.scheme = *scheme;
        result.stored = protectPayload(
            std::span<const u8>(payload).first(compressor_.payloadBytes()));
        if (cfg_.computeTransferBits) {
            // Transfer sizing wants the block's information content, not
            // the emitted stream: budget-driven schemes (RLE) pad their
            // stream to the full budget, and tag order can pick a scheme
            // with a larger minimal size than a losing one. Take the
            // minimum in-budget compressedBits() across all schemes.
            const unsigned budget = compressor_.streamBudget();
            int best = -1;
            for (const BlockCompressor *s : compressor_.schemes()) {
                const int bits = s->compressedBits(data);
                if (bits < 0 || static_cast<unsigned>(bits) > budget)
                    continue;
                if (best < 0 || bits < best)
                    best = bits;
            }
            result.minCompressedBits = best; // chosen scheme fits: >= 0
        }
        return result;
    }

    if (isAlias(data)) {
        result.status = EncodeStatus::AliasRejected;
        result.stored = data;
        return result;
    }

    result.status = EncodeStatus::Unprotected;
    result.stored = data;
    return result;
}

unsigned
CopCodec::countValidCodewords(const CacheBlock &stored) const
{
    CacheBlock unhashed = stored;
    applyHash(unhashed);

    const HsiaoCode &code = cfg_.code();
    const unsigned seg_bytes = cfg_.segmentBytes();
    unsigned valid = 0;
    for (unsigned s = 0; s < cfg_.codewords(); ++s) {
        if (code.isValidCodeword(
                unhashed.bytes().subspan(s * seg_bytes, seg_bytes)))
            ++valid;
    }
    return valid;
}

CopDecodeResult
CopCodec::decode(const CacheBlock &stored) const
{
    CopDecodeResult result;

    CacheBlock unhashed = stored;
    applyHash(unhashed);

    const HsiaoCode &code = cfg_.code();
    const unsigned seg_bytes = cfg_.segmentBytes();
    const unsigned words = cfg_.codewords();

    std::array<u32, 8> syndromes{};
    unsigned valid = 0;
    for (unsigned s = 0; s < words; ++s) {
        syndromes[s] = code.syndrome(
            unhashed.bytes().subspan(s * seg_bytes, seg_bytes));
        if (syndromes[s] == 0)
            ++valid;
    }
    result.validCodewords = valid;

    if (valid < cfg_.threshold) {
        // Treated as unprotected raw data: passed to the LLC unmodified
        // (and un-hashed — the hash is only ever applied to protected
        // blocks).
        result.compressed = false;
        result.data = stored;
        return result;
    }

    result.compressed = true;
    for (unsigned s = 0; s < words; ++s) {
        if (syndromes[s] == 0)
            continue;
        auto segment = unhashed.bytes().subspan(s * seg_bytes, seg_bytes);
        const EccResult ecc = code.decode(segment);
        if (ecc.corrected())
            ++result.correctedWords;
        else
            result.detectedUncorrectable = true;
    }

    std::array<u8, kBlockBytes> payload{};
    extractPayload(unhashed, payload);
    result.data = compressor_.decompress(
        std::span<const u8>(payload).first(compressor_.payloadBytes()));
    return result;
}

} // namespace cop
