/**
 * @file
 * Run reporting: turns a SystemResults bundle (plus the reliability and
 * energy models) into the gem5-style sectioned text report the CLI and
 * examples print. Pure formatting — no simulation state.
 */

#ifndef COP_SIM_REPORT_HPP
#define COP_SIM_REPORT_HPP

#include <iosfwd>

#include "dram/energy.hpp"
#include "reliability/error_model.hpp"
#include "sim/system.hpp"

namespace cop {

/** Options controlling which report sections are emitted. */
struct ReportOptions
{
    bool performance = true;
    bool cache = true;
    bool dram = true;
    bool controller = true;
    bool reliability = true;
    bool energy = true;
};

/**
 * Write a sectioned report of one run.
 *
 * @param results  the run to report;
 * @param cfg      the configuration it ran under (for headers and the
 *                 energy model's chip count);
 * @param profile  the workload it ran;
 * @param out      destination stream.
 */
void writeReport(const SystemResults &results, const SystemConfig &cfg,
                 const WorkloadProfile &profile, std::ostream &out,
                 const ReportOptions &options = ReportOptions{});

} // namespace cop

#endif // COP_SIM_REPORT_HPP
