#include "sim/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include "common/parse.hpp"

namespace cop {

unsigned
RunnerOptions::effectiveJobs() const
{
    if (serial)
        return 1;
    if (jobs > 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

RunnerOptions
parseRunnerOptions(int argc, char **argv)
{
    RunnerOptions opts;
    if (const char *env = std::getenv("COP_BENCH_JOBS")) {
        opts.jobs = static_cast<unsigned>(
            parsePositiveU64(env, "COP_BENCH_JOBS"));
    }
    if (const char *env = std::getenv("COP_SIM_THREADS")) {
        opts.simThreads =
            static_cast<unsigned>(parseU64(env, "COP_SIM_THREADS"));
    }
    if (const char *env = std::getenv("COP_FAST_TIMING")) {
        opts.fastTiming = std::string(env) != "0";
    }
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--serial") {
            opts.serial = true;
        } else if (arg == "--jobs") {
            if (i + 1 >= argc)
                COP_FATAL("--jobs needs a value");
            opts.jobs = static_cast<unsigned>(
                parsePositiveU64(argv[++i], "--jobs"));
        } else if (arg == "--sim-threads") {
            if (i + 1 >= argc)
                COP_FATAL("--sim-threads needs a value");
            opts.simThreads = static_cast<unsigned>(
                parseU64(argv[++i], "--sim-threads"));
        } else if (arg == "--fast-timing") {
            opts.fastTiming = true;
        }
    }
    return opts;
}

void
runIndexed(size_t count, const std::function<void(size_t)> &job,
           const RunnerOptions &opts, std::vector<double> *wall_ms)
{
    using Clock = std::chrono::steady_clock;
    if (wall_ms != nullptr)
        wall_ms->assign(count, 0.0);

    // An exception escaping a worker thread would hit std::terminate
    // with no hint of which grid cell died. Capture failures per cell
    // instead and fail loudly, by name, after every worker has joined.
    std::mutex failuresMutex;
    std::vector<std::pair<size_t, std::string>> failures;

    auto timed = [&](size_t i) {
        const Clock::time_point start = Clock::now();
        try {
            job(i);
        } catch (const std::exception &e) {
            const std::lock_guard<std::mutex> lock(failuresMutex);
            failures.emplace_back(i, e.what());
        } catch (...) {
            const std::lock_guard<std::mutex> lock(failuresMutex);
            failures.emplace_back(i, "unknown exception");
        }
        if (wall_ms != nullptr) {
            // Each index is claimed by exactly one worker, so this
            // write is race-free without synchronisation.
            (*wall_ms)[i] =
                std::chrono::duration<double, std::milli>(Clock::now() -
                                                          start)
                    .count();
        }
    };

    const unsigned workers =
        static_cast<unsigned>(std::min<size_t>(opts.effectiveJobs(),
                                               count ? count : 1));
    if (workers <= 1) {
        for (size_t i = 0; i < count; ++i)
            timed(i);
    } else {
        std::atomic<size_t> next{0};
        auto worker = [&]() {
            while (true) {
                const size_t i = next.fetch_add(1);
                if (i >= count)
                    return;
                timed(i);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    if (!failures.empty()) {
        std::sort(failures.begin(), failures.end());
        std::string msg = "cell " + std::to_string(failures[0].first) +
                          " failed: " + failures[0].second;
        if (failures.size() > 1) {
            msg += " (+" + std::to_string(failures.size() - 1) +
                   " more failing cells)";
        }
        COP_FATAL(msg);
    }
}

namespace {

void
field(std::string &out, const char *name, u64 value, bool comma = true)
{
    out += '"';
    out += name;
    out += "\":";
    out += std::to_string(static_cast<unsigned long long>(value));
    if (comma)
        out += ',';
}

void
fieldDouble(std::string &out, const char *name, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\"%s\":%.17g,", name, value);
    out += buf;
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out += c;
    }
    return out;
}

void
appendResultsJson(std::string &out, const SystemResults &r)
{
    out += '{';
    fieldDouble(out, "ipc", r.ipc);
    field(out, "instructions", r.instructions);
    field(out, "cycles", r.cycles);
    field(out, "llc_misses", r.llcMisses);
    field(out, "writebacks", r.writebacks);
    field(out, "alias_pin_events", r.aliasPinEvents);
    field(out, "llc_hits", r.llc.hits);
    field(out, "llc_dirty_evictions", r.llc.dirtyEvictions);
    field(out, "llc_set_overflows", r.llc.setOverflows);
    field(out, "dram_reads", r.dram.reads);
    field(out, "dram_writes", r.dram.writes);
    field(out, "dram_row_hits", r.dram.rowHits);
    field(out, "dram_row_misses", r.dram.rowMisses);
    field(out, "dram_row_conflicts", r.dram.rowConflicts);
    field(out, "dram_refresh_stalls", r.dram.refreshStalls);
    field(out, "dram_total_read_latency", r.dram.totalReadLatency);
    field(out, "mem_reads", r.mem.reads);
    field(out, "mem_writes", r.mem.writes);
    field(out, "protected_writes", r.mem.protectedWrites);
    field(out, "unprotected_writes", r.mem.unprotectedWrites);
    field(out, "alias_rejects", r.mem.aliasRejects);
    field(out, "meta_reads", r.mem.metaReads);
    field(out, "meta_writes", r.mem.metaWrites);
    field(out, "meta_cache_hits", r.mem.metaCacheHits);
    field(out, "meta_cache_misses", r.mem.metaCacheMisses);
    field(out, "scheme_writes_msb", r.mem.schemeWrites[0]);
    field(out, "scheme_writes_rle", r.mem.schemeWrites[1]);
    field(out, "scheme_writes_txt", r.mem.schemeWrites[2]);
    field(out, "codec_encode_calls", r.mem.encodeCalls);
    field(out, "codec_memo_hits", r.mem.encodeMemoHits);
    field(out, "codec_scheme_trials", r.mem.schemeTrials);
    field(out, "ever_uncompressed_blocks", r.everUncompressedBlocks);
    field(out, "touched_blocks", r.touchedBlocks);
    field(out, "ecc_region_bytes", r.eccRegionBytes);
    field(out, "ecc_region_bytes_no_dealloc", r.eccRegionBytesNoDealloc);
    field(out, "err_fault_events", r.errors.faultEvents);
    field(out, "err_bits_flipped", r.errors.bitsFlipped);
    field(out, "err_cold_faults", r.errors.coldFaults);
    field(out, "err_faults_on_retired_pages",
          r.errors.faultsOnRetiredPages);
    field(out, "err_benign", r.errors.benign);
    field(out, "err_corrected", r.errors.corrected);
    field(out, "err_detected", r.errors.detected);
    field(out, "err_silent", r.errors.silent);
    field(out, "err_read_retries", r.errors.readRetries);
    field(out, "err_retry_dram_reads", r.errors.retryDramReads);
    field(out, "err_scrub_on_read_writes", r.errors.scrubOnReadWrites);
    field(out, "err_recovery_rewrites", r.errors.recoveryRewrites);
    field(out, "err_retired_pages", r.errors.retiredPages);
    field(out, "err_scrubbed_blocks", r.errors.scrubbedBlocks);
    field(out, "err_scrub_reads", r.errors.scrubReads);
    field(out, "err_scrub_writes", r.errors.scrubWrites);
    field(out, "err_scrub_corrected", r.errors.scrubCorrected);
    field(out, "err_scrub_detected", r.errors.scrubDetected);
    // Observability-layer additions. Strictly after every pre-existing
    // field: downstream consumers (and the byte-stability test) rely on
    // the prefix up to err_scrub_detected never changing.
    field(out, "dram_refresh_stalls_cas", r.dram.refreshStallsCas);
    const HistogramSummary read_lat = r.dram.readLatency.summary();
    const HistogramSummary write_lat = r.dram.writeLatency.summary();
    field(out, "dram_read_lat_p50", read_lat.p50);
    field(out, "dram_read_lat_p95", read_lat.p95);
    field(out, "dram_read_lat_p99", read_lat.p99);
    field(out, "dram_read_lat_max", read_lat.max);
    field(out, "dram_write_lat_p50", write_lat.p50);
    field(out, "dram_write_lat_p95", write_lat.p95);
    field(out, "dram_write_lat_p99", write_lat.p99);
    field(out, "dram_write_lat_max", write_lat.max);
    // Functional-memory perf counters (content-cache PR) — again
    // appended strictly after everything that existed before them.
    field(out, "pool_block_for_calls", r.poolBlockForCalls);
    field(out, "pool_content_cache_hits", r.poolContentCacheHits);
    field(out, "pool_content_cache_misses", r.poolContentCacheMisses);
    // Bandwidth-compression / bus-timing additions — appended strictly
    // after everything that existed before them (same convention).
    field(out, "dram_total_write_latency", r.dram.totalWriteLatency);
    field(out, "dram_bus_read_beats", r.dram.readBeats);
    field(out, "dram_bus_write_beats", r.dram.writeBeats);
    field(out, "dram_bus_beats_saved", r.dram.beatsSaved);
    field(out, "dram_bus_busy_cycles", r.dram.busBusyCycles);
    field(out, "dram_bus_turnarounds", r.dram.busTurnarounds);
    // On-die ECC + adaptive-capacity additions — appended strictly
    // after everything that existed before them (same convention).
    field(out, "err_inject_skipped", r.errors.injectSkipped);
    field(out, "ondie_injected", r.errors.ondieInjected);
    field(out, "ondie_corrected", r.errors.ondieCorrected);
    field(out, "ondie_miscorrected", r.errors.ondieMiscorrected);
    field(out, "ondie_forwarded", r.errors.ondieForwarded);
    field(out, "adaptive_slots_reclaimed", r.adaptive.slotsReclaimed);
    field(out, "adaptive_demotions", r.adaptive.demotions);
    field(out, "adaptive_victim_evictions", r.adaptive.victimEvictions);
    field(out, "adaptive_released_blocks_hw",
          r.adaptive.releasedBlocksHighWater);
    // Fast-timing divergence accounting — appended strictly after
    // everything that existed before it (same convention). All zero
    // for exact-mode runs, so those stay byte-identical to builds
    // without the mode; a fast-timing run's approximation is always
    // visible right here, never hidden.
    field(out, "fast_timing", r.fastTiming ? 1 : 0);
    field(out, "ft_shards", r.ftShards);
    field(out, "ft_quantum_epochs", r.ftQuantumEpochs);
    field(out, "ft_barriers", r.ftBarriers);
    field(out, "ft_ambient_stall_cycles", r.dram.ambientStallCycles);
    field(out, "ft_ambient_row_closes", r.dram.ambientRowCloses);
    field(out, "ft_clock_skew_max", r.ftClockSkewMax);
    field(out, "ft_version_merges", r.ftVersionMerges, false);
    out += '}';
}

} // namespace cop
