#include "sim/report.hpp"

#include <iomanip>
#include <ostream>

namespace cop {

namespace {

void
section(std::ostream &out, const char *title)
{
    out << "\n" << title << "\n";
    for (const char *c = title; *c; ++c)
        out << '-';
    out << "\n";
}

void
line(std::ostream &out, const char *label, double value,
     const char *unit = "")
{
    out << "  " << std::left << std::setw(28) << label << std::right
        << std::setw(16) << std::fixed << std::setprecision(3) << value
        << (unit[0] ? " " : "") << unit << "\n";
}

void
lineCount(std::ostream &out, const char *label, u64 value)
{
    out << "  " << std::left << std::setw(28) << label << std::right
        << std::setw(16) << value << "\n";
}

} // namespace

void
writeReport(const SystemResults &results, const SystemConfig &cfg,
            const WorkloadProfile &profile, std::ostream &out,
            const ReportOptions &options)
{
    out << "=== COP run report: " << profile.name << " under "
        << controllerKindName(cfg.kind) << " (" << cfg.cores
        << " cores) ===\n";

    if (options.performance) {
        section(out, "performance");
        lineCount(out, "instructions", results.instructions);
        lineCount(out, "cycles", results.cycles);
        line(out, "aggregate IPC", results.ipc);
        line(out, "per-core IPC",
             results.ipc / static_cast<double>(cfg.cores));
        line(out, "perfect-L3 IPC (per core)", profile.perfectIpc);
    }

    if (results.fastTiming) {
        // Always printed for a fast-timing run, whatever the section
        // mask: the reader must know these numbers came from the
        // relaxed-consistency model, not the byte-identical one.
        section(out, "fast timing (relaxed consistency; "
                     "NOT byte-identical to the exact model)");
        lineCount(out, "shards", results.ftShards);
        lineCount(out, "quantum barriers", results.ftBarriers);
        lineCount(out, "ambient stall cycles",
                  results.dram.ambientStallCycles);
        lineCount(out, "ambient row closes",
                  results.dram.ambientRowCloses);
        lineCount(out, "max shard clock skew", results.ftClockSkewMax);
        lineCount(out, "version merges", results.ftVersionMerges);
    }

    if (options.cache) {
        section(out, "shared L3");
        lineCount(out, "hits", results.llc.hits);
        lineCount(out, "misses", results.llc.misses);
        line(out, "miss rate", results.llc.missRate());
        lineCount(out, "dirty evictions", results.llc.dirtyEvictions);
        lineCount(out, "alias-pinned lines", results.llc.aliasPinned);
        lineCount(out, "set overflows", results.llc.setOverflows);
    }

    if (options.dram) {
        section(out, "DRAM");
        lineCount(out, "reads", results.dram.reads);
        lineCount(out, "writes", results.dram.writes);
        line(out, "row-hit rate", results.dram.rowHitRate());
        line(out, "avg read latency", results.dram.avgReadLatency(),
             "cycles");
        line(out, "avg write latency", results.dram.avgWriteLatency(),
             "cycles");
        const HistogramSummary read_lat =
            results.dram.readLatency.summary();
        lineCount(out, "read latency p50", read_lat.p50);
        lineCount(out, "read latency p95", read_lat.p95);
        lineCount(out, "read latency p99", read_lat.p99);
        lineCount(out, "read latency max", read_lat.max);
        lineCount(out, "refresh stalls", results.dram.refreshStalls);
        lineCount(out, "refresh stalls (CAS)",
                  results.dram.refreshStallsCas);
        lineCount(out, "bus beats transferred",
                  results.dram.readBeats + results.dram.writeBeats);
        lineCount(out, "bus beats saved", results.dram.beatsSaved);
        lineCount(out, "bus turnarounds", results.dram.busTurnarounds);
        if (results.cycles > 0) {
            line(out, "bus utilisation",
                 static_cast<double>(results.dram.busBusyCycles) /
                     (static_cast<double>(results.cycles) *
                      cfg.dram.channels));
            // 8 bytes per beat; core cycles -> seconds at the energy
            // model's 3.2 GHz core clock.
            const double seconds = static_cast<double>(results.cycles) /
                                   (DramEnergyParams{}.coreGHz * 1e9);
            line(out, "effective bandwidth",
                 static_cast<double>(results.dram.readBeats +
                                     results.dram.writeBeats) *
                     8.0 / seconds / 1e9,
                 "GB/s");
        }
    }

    if (options.controller) {
        section(out, "memory controller");
        lineCount(out, "fills", results.mem.reads - results.mem.metaReads);
        lineCount(out, "writebacks",
                  results.mem.protectedWrites +
                      results.mem.unprotectedWrites);
        lineCount(out, "compressed writebacks",
                  results.mem.protectedWrites);
        lineCount(out, "raw writebacks", results.mem.unprotectedWrites);
        lineCount(out, "alias rejects", results.mem.aliasRejects);
        lineCount(out, "metadata DRAM reads", results.mem.metaReads);
        lineCount(out, "metadata DRAM writes", results.mem.metaWrites);
        lineCount(out, "metadata cache hits", results.mem.metaCacheHits);
        const u64 writes = results.mem.protectedWrites +
                           results.mem.unprotectedWrites;
        if (writes > 0) {
            line(out, "compressible fraction",
                 static_cast<double>(results.mem.protectedWrites) /
                     static_cast<double>(writes));
        }
        static const char *scheme_names[] = {"MSB", "RLE", "TXT"};
        for (unsigned s = 0; s < 3; ++s) {
            const std::string label =
                std::string("scheme ") + scheme_names[s] + " writes";
            lineCount(out, label.c_str(), results.mem.schemeWrites[s]);
        }
        if (results.eccRegionBytes > 0) {
            line(out, "ECC region (high water)",
                 results.eccRegionBytes / 1024.0, "KB");
            line(out, "ECC region (no dealloc)",
                 results.eccRegionBytesNoDealloc / 1024.0, "KB");
            lineCount(out, "ever-incompressible blocks",
                      results.everUncompressedBlocks);
        }
    }

    if (options.reliability) {
        section(out, "reliability (PARMA model, 5000 FIT/Mbit)");
        for (unsigned c = 0; c < kVulnClasses; ++c) {
            const auto cls = static_cast<VulnClass>(c);
            const auto &entry = results.vuln.of(cls);
            if (entry.reads == 0)
                continue;
            out << "  reads under " << std::left << std::setw(15)
                << vulnClassName(cls) << std::right << std::setw(16)
                << entry.reads << "   mean residency "
                << std::setprecision(0)
                << entry.totalCycles / static_cast<double>(entry.reads)
                << " cycles\n" << std::setprecision(3);
        }
        const ErrorRateModel model;
        const ErrorRateReport report = model.evaluate(results.vuln);
        line(out, "soft-error-rate reduction", report.reduction() * 100,
             "%");
    }

    if (options.energy) {
        section(out, "memory energy");
        const DramEnergyModel model;
        const unsigned chips = cfg.kind == ControllerKind::EccDimm ? 9 : 8;
        const DramEnergyReport e =
            model.evaluate(results.dram, results.cycles, chips);
        line(out, "activate/precharge", e.activateMj, "mJ");
        line(out, "read bursts", e.readMj, "mJ");
        line(out, "write bursts", e.writeMj, "mJ");
        line(out, "I/O + termination", e.ioMj, "mJ");
        line(out, "background", e.backgroundMj, "mJ");
        line(out, "total", e.totalMj(), "mJ");
        if (results.instructions > 0) {
            line(out, "energy per kilo-instruction",
                 e.totalMj() * 1e6 /
                     (static_cast<double>(results.instructions) / 1000.0),
                 "nJ");
        }
    }
    out << "\n";
}

} // namespace cop
