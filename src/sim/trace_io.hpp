/**
 * @file
 * Trace capture and replay. The paper's methodology is trace-driven
 * (Pin-captured L3 reference streams); this module gives the library
 * the same workflow: epoch streams can be serialised to a compact
 * binary format, inspected, and replayed, so downstream users can feed
 * their own captured traces instead of the synthetic generators.
 *
 * Format (little-endian):
 *   header : magic "COPTRC1\0" (8 bytes), u32 epoch count (0 if
 *            unknown at write time -> read until EOF)
 *   epoch  : u64 instructions, u32 access count,
 *            accesses as u64 words: (block address) | 1 if write
 *            (block addresses are 64-byte aligned, so bit 0 is free).
 *
 * On seekable sinks the writer back-patches the header count when
 * finished, and the reader refuses a stream that ends after a
 * different number of epochs than the header declares — so a file
 * truncated at an epoch boundary no longer summarises like a complete
 * one. A count of 0 (unseekable sink) keeps the read-until-EOF
 * behaviour.
 */

#ifndef COP_SIM_TRACE_IO_HPP
#define COP_SIM_TRACE_IO_HPP

#include <ios>
#include <iosfwd>
#include <string>

#include "workloads/trace_gen.hpp"

namespace cop {

/** Serialises epochs to a binary stream. */
class TraceWriter
{
  public:
    /** Writes the header immediately. */
    explicit TraceWriter(std::ostream &out);

    /** Calls finish(). */
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one epoch. */
    void write(const Epoch &epoch);

    /**
     * Back-patch the header's epoch count (seekable streams only).
     * Idempotent; no further write() calls are allowed after it.
     */
    void finish();

    u64 epochsWritten() const { return count_; }

  private:
    std::ostream &out_;
    std::streampos countPos_{-1};
    u64 count_ = 0;
    bool finished_ = false;
};

/** Reads epochs back; validates the header eagerly. */
class TraceReader
{
  public:
    explicit TraceReader(std::istream &in);

    /**
     * @return false at end of stream. Fatal if the stream ends after
     * a different number of epochs than the header declared.
     */
    bool read(Epoch &epoch);

    u64 epochsRead() const { return count_; }

    /** Epoch count the header declared (0 = unknown, read to EOF). */
    u32 declaredEpochs() const { return declared_; }

  private:
    std::istream &in_;
    u32 declared_ = 0;
    u64 count_ = 0;
};

/** Summary statistics of a trace (the trace_tool report). */
struct TraceSummary
{
    u64 epochs = 0;
    u64 instructions = 0;
    u64 accesses = 0;
    u64 writes = 0;
    u64 distinctBlocks = 0;
    u64 sequentialPairs = 0; ///< addr == prev + 64 transitions.

    double
    writeFraction() const
    {
        return accesses ? static_cast<double>(writes) / accesses : 0;
    }

    double
    accessesPerKiloInstruction() const
    {
        return instructions
                   ? 1000.0 * static_cast<double>(accesses) / instructions
                   : 0;
    }
};

/** Scan a trace stream and summarise it. */
TraceSummary summarizeTrace(std::istream &in);

/** Capture @p epochs epochs of a synthetic workload to @p out. */
u64 captureTrace(const WorkloadProfile &profile, unsigned core_id,
                 u64 epochs, std::ostream &out);

} // namespace cop

#endif // COP_SIM_TRACE_IO_HPP
