/**
 * @file
 * Trace capture and replay. The paper's methodology is trace-driven
 * (Pin-captured L3 reference streams); this module gives the library
 * the same workflow: epoch streams can be serialised to a compact
 * binary format, inspected, and replayed, so downstream users can feed
 * their own captured traces instead of the synthetic generators.
 *
 * The on-disk format (v2, little-endian regardless of host):
 *   header : magic "COPTRC2\0" (8 bytes), u64 epoch count (0 if
 *            unknown at write time -> read until EOF)
 *   epoch  : u64 instructions, u32 access count,
 *            accesses as u64 words: (block address) | 1 if write
 *            (block addresses are 64-byte aligned, so bit 0 is free).
 * Readers also accept the legacy v1 header ("COPTRC1\0", u32 count).
 *
 * On seekable sinks the writer back-patches the header count when
 * finished; on unseekable sinks (pipes, gzip) pass the count to the
 * constructor when known. finish() is fatal if the sink failed — a
 * disk-full capture can no longer masquerade as a complete trace.
 *
 * Reading lives in src/trace/ (TraceSource and friends): this header
 * keeps TraceReader as an alias of the binary reader so existing
 * capture/summarise call sites stay source-compatible.
 */

#ifndef COP_SIM_TRACE_IO_HPP
#define COP_SIM_TRACE_IO_HPP

#include <ios>
#include <iosfwd>
#include <string>

#include "trace/binary_source.hpp"
#include "workloads/trace_gen.hpp"

namespace cop {

/** Serialises epochs to a binary stream (always the v2 format). */
class TraceWriter
{
  public:
    /**
     * Writes the header immediately. Pass @p declared when the epoch
     * count is known up front and @p out is unseekable (a pipe or a
     * gzip deflater) — seekable sinks are back-patched by finish()
     * regardless.
     */
    explicit TraceWriter(std::ostream &out, u64 declared = 0);

    /** Calls finish(). */
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one epoch. */
    void write(const Epoch &epoch);

    /**
     * Back-patch the header's epoch count (seekable streams only) and
     * verify the sink took every byte; fatal on a failed stream.
     * Idempotent; no further write() calls are allowed after it.
     */
    void finish();

    u64 epochsWritten() const { return count_; }

  private:
    std::ostream &out_;
    std::streampos countPos_{-1};
    u64 count_ = 0;
    u64 declared_ = 0;
    bool finished_ = false;
};

/**
 * Binary trace reader. The implementation moved to trace/ — this alias
 * keeps old call sites compiling (note: the epoch step is `next()`).
 */
using TraceReader = BinaryTraceSource;

/** Summary statistics of a trace (the trace_tool report). */
struct TraceSummary
{
    u64 epochs = 0;
    u64 instructions = 0;
    u64 accesses = 0;
    u64 writes = 0;
    u64 distinctBlocks = 0;
    u64 sequentialPairs = 0; ///< addr == prev + 64 within one epoch.

    double
    writeFraction() const
    {
        return accesses ? static_cast<double>(writes) / accesses : 0;
    }

    double
    accessesPerKiloInstruction() const
    {
        return instructions
                   ? 1000.0 * static_cast<double>(accesses) / instructions
                   : 0;
    }
};

/** Scan any trace source and summarise it. */
TraceSummary summarizeTrace(TraceSource &src);

/** Scan a binary trace stream and summarise it. */
TraceSummary summarizeTrace(std::istream &in);

/** Capture @p epochs epochs of a synthetic workload to @p out. */
u64 captureTrace(const WorkloadProfile &profile, unsigned core_id,
                 u64 epochs, std::ostream &out);

} // namespace cop

#endif // COP_SIM_TRACE_IO_HPP
