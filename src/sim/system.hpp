/**
 * @file
 * The interval performance simulator (paper Section 4): a 4-core system
 * with a shared L3 backed by one of the memory-controller variants over
 * the DDR3-1600 DRAM model. Execution is epoch-structured — compute
 * phases at the per-benchmark perfect-L3 IPC, punctuated by bursts of
 * overlappable L3 misses whose exposed latency the memory system
 * determines. SPEC benchmarks run in rate mode (one copy per core);
 * PARSEC profiles share one footprint, as in the paper.
 */

#ifndef COP_SIM_SYSTEM_HPP
#define COP_SIM_SYSTEM_HPP

#include <memory>
#include <string>
#include <vector>

#include "cache/set_assoc_cache.hpp"
#include "core/encode_memo.hpp"
#include "mem/controller.hpp"
#include "reliability/live_injector.hpp"
#include "sim/shard.hpp"
#include "stats/stats_registry.hpp"
#include "workloads/trace_gen.hpp"

namespace cop {

/** Which protection scheme the memory controller implements. */
enum class ControllerKind : u8 {
    Unprotected,
    EccDimm,
    EccRegion, ///< The paper's "ECC Reg." baseline.
    Cop4,
    Cop8,
    CopEr,
    CopErNaive, ///< Section 3.3's naive COP-ER (full-size region).
};

const char *controllerKindName(ControllerKind k);

/** Full-system configuration (defaults reproduce Table 1). */
struct SystemConfig
{
    unsigned cores = 4;
    CacheConfig llc{4ULL << 20, 16, 34};
    DramConfig dram{};
    ControllerKind kind = ControllerKind::Unprotected;
    Cycle decodeLatency = 4; ///< COP decode/decompress adder (Section 4).
    /**
     * Metadata cache modelling the L3 share ECC blocks occupy (the
     * paper caches ECC metadata in the 4 MB L3; half of it is a fair
     * steady-state share for the ECC-heavy baseline).
     */
    u64 metaCacheBytes = 2ULL << 20;
    /** Epochs to simulate per core. */
    u64 epochsPerCore = 20000;
    /**
     * Cross-check every fill against functional memory — an end-to-end
     * invariant over encode -> store -> decode. With fault injection
     * enabled it doubles as the ground-truth SDC oracle: a mismatching
     * fill with no raised error is counted as silent corruption
     * instead of aborting the run.
     */
    bool verifyData = true;
    /**
     * Section 3.1's alternative alias policy: test every store's new
     * content at LLC-write time and set the alias bit immediately,
     * instead of discovering the alias at eviction.
     */
    bool proactiveAliasCheck = false;
    /**
     * Encode-memo slots for the COP-family controllers (content-keyed
     * cache of CopCodec::encode results). 0 disables caching but keeps
     * the perf counters; the memo cannot change simulated behaviour
     * (see core/encode_memo.hpp).
     */
    unsigned encodeMemoEntries = 1u << 13;
    /**
     * blockFor content-cache slots per BlockContentPool (direct-mapped
     * memo of functional-memory content, keyed on (addr, version)).
     * 0 disables caching but keeps the perf counters; the cache cannot
     * change simulated behaviour — content is a pure function of the
     * key (see workloads/trace_gen.hpp and DESIGN.md).
     */
    unsigned contentCacheEntries = kDefaultContentCacheEntries;
    u64 seedSalt = 0;
    /** Live fault injection + error recovery (off by default). */
    FaultConfig fault;
    /**
     * JSONL stats-trace sink (observability layer). Empty (the
     * default) disables tracing entirely; with tracing off a run's
     * stdout tables and results JSON are byte-identical to a run of
     * the same configuration that never had the field. When set, the
     * System drains its StatsRegistry into this file: one snapshot of
     * per-counter deltas and histogram summaries every
     * traceStatsEpochInterval completed epochs plus a final one.
     * Validate / tabulate with scripts/agg_stats.py.
     */
    std::string traceStatsPath;
    /** Completed epochs (across cores) between trace snapshots. */
    u64 traceStatsEpochInterval = 256;
    /**
     * CRAM-style bandwidth-compression mode: COP-family controllers
     * ship blocks whose compressed size (data + check bits) fits fewer
     * bus beats in a shortened burst. Off by default — protection-only
     * behaviour (and its results JSON) is byte-identical to builds
     * without the mode. Inert for controllers without a compressor.
     */
    bool bandwidthCompression = false;
    /**
     * Smallest burst a shortened transfer may shrink to, in beats
     * (1..8). COP's budget-driven compressors free at most ~4-8 bytes
     * plus check bits, so real transfers bottom out at 5 beats; the
     * default floor of 4 is therefore never binding. A floor of 8
     * forces every burst full-length while keeping the mode's code
     * paths live (the byte-identity test lever).
     */
    unsigned bandwidthBeatFloor = 4;
    /**
     * Adaptive ECC-region capacity: metadata blocks whose coverage no
     * longer needs them (an ECC Reg. entry group whose blocks are all
     * compressible; a COP-ER entry block that drained to empty) are
     * released to the data free-list, with a demotion path (victim
     * eviction through the writeback machinery) when they are needed
     * back. Off by default — every scheme's results are byte-identical
     * to builds without the mode. Inert for schemes without an ECC
     * region (Unprotected / ECC DIMM / COP / COP-8B).
     */
    bool adaptiveEccCapacity = false;
    /**
     * Thread budget for this one System run (the intra-cell
     * parallelism knob; grid-level parallelism stays with the runner's
     * --jobs). 1 — the default — is the serial reference path. N > 1
     * keeps the exact serial merge loop on the calling thread as the
     * coordinator of all shared state (LLC, controller, DRAM timing,
     * fault injection) and spawns min(cores, N-1) shard workers that
     * precompute the pure per-core work — epoch streams, functional
     * block content, codec encodes/decodes — delivered through
     * bounded per-core queues and consumed at deterministic points, so
     * results, stats traces and every counter are byte-identical to
     * simThreads=1 for every scheme and mode (see sim/shard.hpp and
     * DESIGN.md §8). 0 resolves to the hardware concurrency.
     */
    unsigned simThreads = 1;
    /**
     * Relaxed-consistency fast-timing mode (opt-in, like --serial gates
     * the grid runner). Off — the default — every simThreads value is
     * byte-identical to the serial oracle. On, the run is partitioned
     * into min(simThreads, cores) shards that each own a subset of the
     * cores plus a private DRAM timing model, an LLC way-partition and
     * a metadata-cache share, and run truly concurrently; shards
     * synchronize only at a quantum barrier every
     * fastTimingQuantumEpochs epochs per core, where cross-shard
     * effects (bus contention, shared-footprint content versions) are
     * reconciled approximately. Results are deterministic (two fast
     * runs are byte-identical to each other) but NOT byte-identical to
     * the oracle; the divergence is measured and emitted in the
     * results JSON (ft_* fields), never hidden. Incompatible with
     * fault injection (fatal) — the error-recovery paths are defined
     * against the exact interleaving. See DESIGN.md §8.
     */
    bool fastTiming = false;
    /**
     * Epochs per core between fast-timing quantum barriers. Smaller
     * quanta track cross-shard contention more closely; larger quanta
     * amortise the barrier. 64 epochs ≈ the reconciliation cadence at
     * which bus-load divergence stays within a couple of percent on
     * the default profiles.
     */
    u64 fastTimingQuantumEpochs = 64;
    /**
     * Per-core epoch source factory. Empty (the default) runs the
     * synthetic TraceGenerator; set it to replay captured traces
     * (makeTraceReplayFactory in trace/replay.hpp). The factory must
     * mint independent equal streams on every call for the same core —
     * shard workers build replicas with it. When set, the System also
     * exports trace.* gauges (epochs/accesses read and replayed) into
     * the stats registry; the results JSON is untouched, so a replay
     * of a captured run stays byte-comparable to the run that captured
     * it (DESIGN.md §9).
     */
    EpochSourceFactory epochSource;
};

/** Aggregate results of one run. */
struct SystemResults
{
    double ipc = 0; ///< Total instructions / slowest-core cycles.
    u64 instructions = 0;
    Cycle cycles = 0;
    u64 llcMisses = 0;
    u64 writebacks = 0;
    u64 aliasPinEvents = 0;
    CacheStats llc;
    DramStats dram;
    MemStats mem;
    VulnLog vuln;
    /** Blocks that were ever stored uncompressed in DRAM. */
    u64 everUncompressedBlocks = 0;
    /** Distinct data blocks touched. */
    u64 touchedBlocks = 0;
    /** COP-ER ECC region bytes at high water (0 for other schemes). */
    u64 eccRegionBytes = 0;
    /**
     * COP-ER ECC region bytes under Figure 12's no-deallocation
     * assumption (an entry for every ever-incompressible block).
     */
    u64 eccRegionBytesNoDealloc = 0;
    /** Error-recovery bookkeeping (all zero unless faults injected). */
    ErrorLog errors;
    /** Adaptive-capacity accounting (all zero unless the mode is on). */
    MemoryController::AdaptiveStats adaptive;
    /** Functional-memory perf counters (summed over the core pools). */
    u64 poolBlockForCalls = 0;
    u64 poolContentCacheHits = 0;
    u64 poolContentCacheMisses = 0;
    // --- fast-timing divergence accounting (all zero when off) --------
    /** The run used the relaxed-consistency fast-timing mode. */
    bool fastTiming = false;
    /** Shards the run was partitioned into (0 when fastTiming off). */
    unsigned ftShards = 0;
    /** Quantum size (epochs per core per barrier interval). */
    u64 ftQuantumEpochs = 0;
    /** Quantum barriers crossed. */
    u64 ftBarriers = 0;
    /** Max cycle skew between shard clocks seen at any barrier. */
    Cycle ftClockSkewMax = 0;
    /** Shared-footprint version entries merged across shards. */
    u64 ftVersionMerges = 0;
};

/** One simulated system instance for one benchmark. */
class System
{
  public:
    System(const WorkloadProfile &profile, const SystemConfig &cfg);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Run the configured number of epochs and report. */
    SystemResults run();

    MemoryController &controller() { return *controller_; }
    SetAssocCache &llc() { return llc_; }
    /** The observability registry every subsystem registered into. */
    StatsRegistry &statsRegistry() { return statsRegistry_; }
    /**
     * Offload telemetry of the last run (all zero for simThreads<=1).
     * Deterministic, but exposed only here — never through the results
     * JSON or the StatsRegistry (byte-identity across thread counts).
     */
    const ShardTelemetry &shardTelemetry() const
    {
        return shardTelemetry_;
    }

    /**
     * Shards a fast-timing run of @p cfg will use: validates the
     * configuration (fatal on fault injection, <2 cores, or <2
     * resolved threads — fast timing with one shard would only add
     * approximation without speedup) and returns min(threads, cores);
     * 1 when fastTiming is off.
     */
    static unsigned fastShardCount(const SystemConfig &cfg);

  private:
    /**
     * Shard constructor: builds shard @p shard_index of
     * @p shard_count. The public constructor delegates here with
     * (0, fastShardCount(cfg)); shard 0 — the owner — constructs the
     * peer shards itself. Each shard owns cores c ≡ shard_index
     * (mod shard_count), a private DRAM system, an LLC way-partition
     * and a metaCacheBytes/shard_count metadata share.
     */
    System(const WorkloadProfile &profile, const SystemConfig &cfg,
           unsigned shard_index, unsigned shard_count);

    struct Core
    {
        std::unique_ptr<EpochSource> gen;
        /** Cached gen->pool() — keeps poolFor's hot path devirtualised. */
        BlockContentPool *pool = nullptr;
        Cycle clock = 0;
        u64 instructions = 0;
        u64 epochsDone = 0;
    };

    BlockContentPool &poolFor(Addr addr);
    void runEpoch(Core &core, const Epoch &epoch);
    /**
     * The furthest-behind merge loop, shared verbatim by the serial
     * and sharded paths; @p epochFor (Core&, core index) supplies each
     * epoch — the generator itself serially, the core's bundle queue
     * when sharded.
     */
    template <typename EpochFor>
    void mergeLoop(EpochFor &&epochFor, std::ofstream &trace);
    /** simThreads with 0 resolved to hardware concurrency. */
    unsigned resolvedSimThreads() const;
    /** The sharded run path: workers + warm stores + the merge loop. */
    void runSharded(std::ofstream &trace);
    /** LLC way-partition for one fast-timing shard (sets constant). */
    static CacheConfig fastLlcConfig(const CacheConfig &llc,
                                     unsigned shard_count);
    /**
     * Run this shard's owned cores up to @p target_epochs each — the
     * serial furthest-behind loop restricted to cores c ≡ shardIndex_
     * (mod shardCount_).
     */
    void runFastQuantum(u64 target_epochs);
    /**
     * Owner-side cross-shard reconciliation at one quantum barrier:
     * ambient bus load from the other shards' busBusyCycles deltas,
     * clock-skew tracking, and shared-footprint version merging.
     */
    void reconcileShards(u64 quantum_cycles_hint);
    /** The fast-timing run path: shard threads + quantum barriers. */
    void runFastTiming(std::ofstream &trace);
    /** Assemble this shard's SystemResults (the serial run() tail). */
    SystemResults collectResults();
    /** Fold a peer shard's results into @p into (fast-timing merge). */
    static void mergeResultsInto(SystemResults &into,
                                 const SystemResults &peer);
    /** Hook every subsystem's counters into statsRegistry_. */
    void registerAllStats();
    /** Highest core clock reached (trace snapshot timestamps). */
    Cycle maxCoreClock() const;
    /** Apply the proactive alias policy to a freshly-written line. */
    void proactiveAliasCheck(Addr addr);
    /** Handle an L3 miss: fill from memory, install, write back victim. */
    Cycle handleMiss(Addr addr, bool is_write, Cycle now);
    /**
     * Write back a dirty victim. @p data is the victim's content when
     * the caller already produced it (the evict filter's block, threaded
     * through so it is not regenerated); null regenerates from the pool.
     */
    void performWriteback(const CacheEviction &ev, Cycle now,
                          const CacheBlock *data = nullptr);

    const WorkloadProfile &profile_;
    SystemConfig cfg_;
    StatsRegistry statsRegistry_;
    DramSystem dram_;
    SetAssocCache llc_;
    std::unique_ptr<EncodeMemo> encodeMemo_;
    std::unique_ptr<MemoryController> controller_;
    std::unique_ptr<LiveInjector> injector_;
    std::vector<Core> cores_;
    FlatSet everUncompressed_;
    u64 writebacks_ = 0;
    u64 missCount_ = 0;
    /**
     * Persistent eviction filter + probe scratch: constructing a
     * std::function per miss heap-allocates (the captures exceed the
     * small-buffer size), so one is built in the constructor and the
     * probe state lives here, reset before each insert.
     */
    SetAssocCache::EvictFilter evictFilter_;
    bool probed_ = false;
    Addr probedAddr_ = 0;
    CacheBlock probedData_;
    /** Sharded-mode staging (null for simThreads<=1). */
    std::unique_ptr<WarmContentStore> warmContent_;
    std::unique_ptr<WarmEncodeStore> warmEncode_;
    std::unique_ptr<WarmDecodeStore> warmDecode_;
    ShardTelemetry shardTelemetry_;

    // --- fast-timing shard state (inert when fastTiming is off) -------
    /** This System's shard index; the owner (public ctor) is shard 0. */
    unsigned shardIndex_ = 0;
    /** Total shards; 1 for every non-fast run. */
    unsigned shardCount_ = 1;
    /** Peer shards (owner only; peers see an empty vector). */
    std::vector<std::unique_ptr<System>> peers_;
    /** Owner-side divergence accounting across the whole run. */
    struct FastTimingState
    {
        u64 barriers = 0;
        Cycle clockSkewMax = 0;
        u64 versionMerges = 0;
    };
    FastTimingState ft_;
    /** busBusyCycles at the previous barrier (delta computation). */
    Cycle lastBusBusy_ = 0;
    /** DRAM reads+writes at the previous barrier (row-close rate). */
    u64 lastAccesses_ = 0;
    /** max core clock at the previous barrier (quantum cycle span). */
    Cycle lastGlobalClock_ = 0;
    /** Owner's merged view of shared-footprint block versions. */
    FlatMap<u32> globalVersions_;
    /** Global epochs already snapshot to the stats trace (fast mode). */
    u64 lastSnapshotEpochs_ = 0;
};

/**
 * Factory for the memory-controller variants. @p memo (caller-owned,
 * may be null) attaches the encode memo to the COP-family controllers.
 */
std::unique_ptr<MemoryController>
makeController(ControllerKind kind, DramSystem &dram,
               MemoryController::ContentSource content,
               Cycle decode_latency, u64 meta_cache_bytes,
               EncodeMemo *memo = nullptr);

} // namespace cop

#endif // COP_SIM_SYSTEM_HPP
