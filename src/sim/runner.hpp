/**
 * @file
 * The experiment runner: a fixed-size thread pool for grids of
 * independent simulation cells. Every `System` is self-contained (its
 * own TraceGenerator, DramSystem and controller), so a
 * (benchmark × scheme) grid parallelises with no shared mutable state;
 * the runner executes cells concurrently but keys every result by its
 * submission index, so the collected results — and anything formatted
 * from them — are bit-identical to a serial run.
 *
 * Concurrency is controlled by the COP_BENCH_JOBS environment variable
 * (default: hardware concurrency) and the `--serial` / `--jobs N`
 * command-line escape hatches; see parseRunnerOptions().
 */

#ifndef COP_SIM_RUNNER_HPP
#define COP_SIM_RUNNER_HPP

#include <functional>
#include <vector>

#include "sim/system.hpp"

namespace cop {

/** How a grid of independent cells should be executed. */
struct RunnerOptions
{
    /** Worker threads; 0 means hardware concurrency. */
    unsigned jobs = 0;
    /** Run cells in submission order on the calling thread. */
    bool serial = false;
    /**
     * Per-cell SystemConfig::simThreads request (COP_SIM_THREADS /
     * --sim-threads; 0 means hardware concurrency). Grid- and
     * cell-level parallelism multiply, so consumers running cells
     * under more than one grid worker must clamp this to 1 — the
     * GridRunner does, loudly.
     */
    unsigned simThreads = 1;
    /**
     * Per-cell SystemConfig::fastTiming request (COP_FAST_TIMING /
     * --fast-timing). Like simThreads, it multiplies with grid-level
     * parallelism, so consumers running cells under more than one grid
     * worker must clamp it off — the GridRunner does, loudly.
     */
    bool fastTiming = false;

    /** The worker count actually used (resolves 0 and serial). */
    unsigned effectiveJobs() const;
};

/**
 * Runner options from the environment and command line: COP_BENCH_JOBS
 * (positive integer) sets the worker count; `--serial` forces
 * single-threaded in-order execution; `--jobs N` overrides the
 * environment; COP_SIM_THREADS / `--sim-threads N` set the per-cell
 * sharded-simulation thread budget (0 = hardware concurrency);
 * COP_FAST_TIMING / `--fast-timing` request the relaxed-consistency
 * fast-timing mode (SystemConfig::fastTiming) for every cell.
 * Unrecognised arguments are ignored (benches keep their own flags,
 * e.g. fig11's `--config`).
 */
RunnerOptions parseRunnerOptions(int argc, char **argv);

/**
 * Execute @p count independent jobs under @p opts. `job(i)` is called
 * exactly once for every index in [0, count); indices are claimed in
 * order but may run concurrently. Per-cell wall times (milliseconds)
 * are recorded into @p wall_ms if non-null, keyed by index.
 *
 * A job that throws does not take the process down anonymously: the
 * exception is captured per cell, every remaining cell still runs, and
 * after all workers join the run aborts via COP_FATAL naming the first
 * failing cell (by index) and its message. A COP_PANIC / COP_FATAL
 * inside a worker still terminates the process immediately, as it
 * would serially.
 */
void runIndexed(size_t count, const std::function<void(size_t)> &job,
                const RunnerOptions &opts,
                std::vector<double> *wall_ms = nullptr);

/**
 * Run @p count cells producing values of type @p Result, collected in
 * submission order regardless of completion order.
 */
template <typename Result>
std::vector<Result>
runCollected(size_t count, const std::function<Result(size_t)> &job,
             const RunnerOptions &opts,
             std::vector<double> *wall_ms = nullptr)
{
    std::vector<Result> results(count);
    runIndexed(
        count, [&](size_t i) { results[i] = job(i); }, opts, wall_ms);
    return results;
}

/**
 * Append @p results as a deterministic JSON object to @p out. Contains
 * only simulation-derived metrics (no timing), so serial and parallel
 * runs of the same grid serialise byte-identically.
 */
void appendResultsJson(std::string &out, const SystemResults &results);

/** JSON string escaping for labels. */
std::string jsonEscape(const std::string &s);

} // namespace cop

#endif // COP_SIM_RUNNER_HPP
