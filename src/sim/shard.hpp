/**
 * @file
 * Thread-parallel sharded simulation core (SystemConfig::simThreads).
 *
 * The byte-identity contract (results, stats traces and every counter
 * must match simThreads=1 exactly, for all schemes and modes) rules
 * out any parallelisation that changes the interleaving over shared
 * state. This design therefore keeps the serial furthest-behind merge
 * loop — LLC, controller, DRAM timing and fault injection all stay on
 * one coordinator thread, executed in the exact serial order — and
 * moves the *pure* per-core work ahead of it onto shard workers:
 *
 *   - the epoch stream itself (TraceGenerator is pure RNG-driven, no
 *     timing feedback — the per-shard RNG salting from PR 2 already
 *     makes each core's stream self-contained);
 *   - functional block content, a pure function of (profile, addr,
 *     version) where the version is the count of prior writes in the
 *     owning core's stream (rate mode);
 *   - CopCodec::encode of that content and CopCodec::decode of the
 *     resulting stored image, both pure functions of their input.
 *
 * Each worker replays a replica of its cores' generators (same seeds,
 * so identical streams and version timelines) and delivers one
 * ShardBundle per epoch through a bounded per-core queue — the queue
 * depth is the "quantum window": a worker may run at most
 * kShardWindowEpochs epochs ahead of the coordinator's consumption of
 * its stream. The coordinator dequeues a core's bundle at the exact
 * point the serial loop would generate that epoch, installs the
 * precomputed results into coordinator-private warm stores
 * (WarmContentStore / WarmEncodeStore / WarmDecodeStore), and runs the
 * unchanged epoch body. Warm stores substitute identical values for
 * inline recomputation on authoritative-cache misses, so no simulated
 * outcome — and no counter — can depend on OS scheduling. See
 * DESIGN.md §8.
 */

#ifndef COP_SIM_SHARD_HPP
#define COP_SIM_SHARD_HPP

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/warm_codec.hpp"
#include "workloads/trace_gen.hpp"

namespace cop {

/**
 * Epochs a worker may run ahead of the coordinator per core (the
 * bounded-queue capacity). Large enough to absorb the merge loop's
 * uneven per-core consumption, small enough to bound staging memory.
 */
inline constexpr size_t kShardWindowEpochs = 64;

/** One precomputed functional-memory block: content of (addr, version). */
struct ShardContentEntry
{
    Addr addr = 0;
    u32 version = 0;
    CacheBlock block;
};

/** One precomputed codec round trip for a content block. */
struct ShardCodecEntry
{
    CacheBlock content;
    CopEncodeResult enc;
    /** decode(enc.stored) — the fill-path decode of the clean image. */
    CopDecodeResult dec;
};

/** Everything a worker precomputes for one (core, epoch). */
struct ShardBundle
{
    Epoch epoch;
    std::vector<ShardContentEntry> content;
    std::vector<ShardCodecEntry> codec;
};

/**
 * Offload telemetry for one sharded run. Deterministic (installs and
 * lookups happen at deterministic points of the serial merge order),
 * but deliberately kept out of the results JSON and the StatsRegistry
 * so simThreads=1 and simThreads=N stay byte-identical there; the
 * micro_system bench reads it through System::shardTelemetry().
 */
struct ShardTelemetry
{
    unsigned workerThreads = 0;
    u64 bundles = 0;      ///< Epochs delivered by workers (all of them).
    u64 contentStaged = 0;
    u64 codecStaged = 0;
    u64 warmContentLookups = 0;
    u64 warmContentHits = 0;
    u64 warmEncodeLookups = 0;
    u64 warmEncodeHits = 0;
    u64 warmDecodeLookups = 0;
    u64 warmDecodeHits = 0;
    /** Install traffic + set-conflict evictions per warm store (the
     *  4-way associativity change is measurable per store). */
    u64 warmContentInstalls = 0;
    u64 warmContentConflicts = 0;
    u64 warmEncodeInstalls = 0;
    u64 warmEncodeConflicts = 0;
    u64 warmDecodeInstalls = 0;
    u64 warmDecodeConflicts = 0;
};

/**
 * Bounded single-producer single-consumer bundle queue (one per core;
 * the core's worker produces, the coordinator consumes). Mutex-based:
 * at epoch granularity the lock is uncontended noise, and it keeps the
 * TSan story trivial.
 */
class ShardQueue
{
  public:
    explicit ShardQueue(size_t capacity) : cap_(capacity) {}

    /**
     * Push @p bundle unless the window is full. Returns false — with
     * @p bundle untouched — when full; true when enqueued (or when the
     * queue is aborted, so a dying run cannot wedge its producer).
     */
    bool tryPush(ShardBundle &bundle);

    /**
     * Pop the next bundle, blocking while the queue is empty. Returns
     * false when the queue was aborted and fully drained.
     */
    bool pop(ShardBundle &out);

    /** Block until the window has space, an abort, or @p timeout. */
    void waitNotFull(std::chrono::microseconds timeout) const;

    /** Fail the stream: wakes both ends; pop drains then reports. */
    void abort(const std::string &msg);

    bool aborted() const;
    std::string abortMessage() const;

  private:
    mutable std::mutex m_;
    mutable std::condition_variable notEmpty_;
    mutable std::condition_variable notFull_;
    std::deque<ShardBundle> q_;
    size_t cap_;
    bool aborted_ = false;
    std::string msg_;
};

/**
 * Replica producer for one core: re-runs the core's TraceGenerator
 * (identical seeds → identical stream), tracks the core's version
 * timeline, and precomputes content blocks and codec round trips.
 * Touches no simulation state — safe on any thread.
 */
class ShardProducer
{
  public:
    /**
     * @param content_offload stage functional-memory blocks (rate-mode
     *        profiles; a shared footprint interleaves versions across
     *        cores, so only the epoch stream offloads there).
     * @param codec_cfg codec configuration of the scheme under test,
     *        or null for schemes without a COP codec.
     * @param transfer_sizing mirror of SystemConfig::bandwidthCompression
     *        (it changes CopEncodeResult::minCompressedBits, which the
     *        controller's burst sizing consumes).
     * @param epoch_source replica factory for trace replay, or null to
     *        re-run the synthetic TraceGenerator. Either way the
     *        replica's stream equals the coordinator core's stream.
     */
    ShardProducer(const WorkloadProfile &profile, unsigned core_id,
                  u64 seed_salt, bool content_offload,
                  const CopConfig *codec_cfg, bool transfer_sizing,
                  const EpochSourceFactory *epoch_source = nullptr);

    /** Produce the next epoch's bundle (reuses @p out's buffers). */
    void produce(ShardBundle &out);

  private:
    void emitBlock(Addr addr, u32 version, ShardBundle &out);

    std::unique_ptr<EpochSource> gen_;
    FlatMap<u32> versions_;
    bool contentOffload_;
    std::unique_ptr<CopCodec> codec_;

    /**
     * Emission dedup (worker-private, effectiveness-only): re-emitting
     * a block the coordinator already staged is wasted queue traffic,
     * not an error, so bounded direct-mapped filters suffice.
     */
    static constexpr size_t kSeenSlots = size_t{1} << 13;
    struct SeenContent
    {
        Addr addr = 0;
        u32 version = 0;
        bool valid = false;
    };
    struct SeenBlock
    {
        bool valid = false;
        CacheBlock key;
    };
    std::vector<SeenContent> contentSeen_;
    std::vector<SeenBlock> codecSeen_;
};

/**
 * Generation barrier for the fast-timing mode's quantum loop
 * (SystemConfig::fastTiming): all shard threads arrive, the last
 * arrival flips the generation and releases everyone. Reusable across
 * quanta. Mutex + condvar — the barrier fires at quantum granularity
 * (thousands of epochs), so contention is noise, and TSan sees plain
 * happens-before edges.
 */
class QuantumBarrier
{
  public:
    explicit QuantumBarrier(unsigned parties) : parties_(parties) {}

    /** Arrive; block until all @p parties of this generation have. */
    void
    arriveAndWait()
    {
        std::unique_lock<std::mutex> lock(m_);
        const u64 gen = generation_;
        if (++waiting_ == parties_) {
            waiting_ = 0;
            ++generation_;
            cv_.notify_all();
            return;
        }
        cv_.wait(lock, [&] { return generation_ != gen; });
    }

  private:
    std::mutex m_;
    std::condition_variable cv_;
    unsigned parties_;
    unsigned waiting_ = 0;
    u64 generation_ = 0;
};

/** Worker-thread parameters (everything but the profile, by value). */
struct ShardWorkerConfig
{
    unsigned workerIndex = 0;
    unsigned workerCount = 1;
    unsigned cores = 1;
    u64 epochsPerCore = 0;
    u64 seedSalt = 0;
    bool contentOffload = false;
    /** Owned copy; null when the scheme has no COP codec. */
    const CopConfig *codecConfig = nullptr;
    bool transferSizing = false;
    /**
     * Replica factory for trace replay (null for synthetic runs).
     * Points at the System's SystemConfig::epochSource, which outlives
     * the workers.
     */
    const EpochSourceFactory *epochSource = nullptr;
};

/**
 * Worker-thread body: produce bundles for cores workerIndex,
 * workerIndex + workerCount, ... round-robin, preferring cores whose
 * queue ran empty (the coordinator may be blocked on them). Exceptions
 * are captured and surfaced through ShardQueue::abort so the
 * coordinator fails loudly by core, mirroring runner.cpp's per-cell
 * capture.
 */
void shardWorkerMain(const WorkloadProfile &profile,
                     const ShardWorkerConfig &cfg,
                     const std::vector<std::unique_ptr<ShardQueue>> &queues);

} // namespace cop

#endif // COP_SIM_SHARD_HPP
