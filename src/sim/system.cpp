#include "sim/system.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <thread>

#include "mem/coper_controller.hpp"
#include "mem/coper_naive_controller.hpp"
#include "mem/ecc_region_controller.hpp"

namespace cop {

const char *
controllerKindName(ControllerKind k)
{
    switch (k) {
      case ControllerKind::Unprotected: return "Unprot.";
      case ControllerKind::EccDimm: return "ECC DIMM";
      case ControllerKind::EccRegion: return "ECC Reg.";
      case ControllerKind::Cop4: return "COP";
      case ControllerKind::Cop8: return "COP-8B";
      case ControllerKind::CopEr: return "COP-ER";
      case ControllerKind::CopErNaive: return "COP-ER-nv";
    }
    COP_PANIC("bad controller kind");
}

std::unique_ptr<MemoryController>
makeController(ControllerKind kind, DramSystem &dram,
               MemoryController::ContentSource content,
               Cycle decode_latency, u64 meta_cache_bytes,
               EncodeMemo *memo)
{
    switch (kind) {
      case ControllerKind::Unprotected:
        return std::make_unique<UnprotectedController>(dram,
                                                       std::move(content));
      case ControllerKind::EccDimm:
        return std::make_unique<EccDimmController>(dram,
                                                   std::move(content));
      case ControllerKind::EccRegion:
        return std::make_unique<EccRegionController>(
            dram, std::move(content), meta_cache_bytes);
      case ControllerKind::Cop4:
        return std::make_unique<CopController>(
            dram, std::move(content), CopConfig::fourByte(),
            decode_latency, memo);
      case ControllerKind::Cop8:
        return std::make_unique<CopController>(
            dram, std::move(content), CopConfig::eightByte(),
            decode_latency, memo);
      case ControllerKind::CopEr:
        return std::make_unique<CopErController>(
            dram, std::move(content), decode_latency, meta_cache_bytes,
            memo);
      case ControllerKind::CopErNaive:
        return std::make_unique<CopErNaiveController>(
            dram, std::move(content), decode_latency, meta_cache_bytes,
            memo);
    }
    COP_PANIC("bad controller kind");
}

unsigned
System::fastShardCount(const SystemConfig &cfg)
{
    if (!cfg.fastTiming)
        return 1;
    if (cfg.fault.enabled)
        COP_FATAL("fastTiming is incompatible with fault injection: the "
                  "error-recovery paths are defined against the exact "
                  "serial interleaving");
    if (cfg.cores < 2)
        COP_FATAL("fastTiming needs >= 2 cores to partition");
    if (cfg.fastTimingQuantumEpochs == 0)
        COP_FATAL("fastTimingQuantumEpochs must be positive");
    unsigned threads = cfg.simThreads;
    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw == 0 ? 1 : hw;
    }
    if (threads < 2)
        COP_FATAL("fastTiming needs simThreads >= 2 (one shard would "
                  "only add approximation without speedup)");
    return std::min<unsigned>(threads, cfg.cores);
}

CacheConfig
System::fastLlcConfig(const CacheConfig &llc, unsigned shard_count)
{
    // Way-partition: each shard owns ways/shard_count ways of every
    // set, so the set count — and with it the index function — is
    // unchanged and per-shard capacity sums to the original cache.
    CacheConfig out = llc;
    out.ways = std::max(1u, llc.ways / shard_count);
    out.sizeBytes = llc.sets() * out.ways * kBlockBytes;
    return out;
}

System::System(const WorkloadProfile &profile, const SystemConfig &cfg)
    : System(profile, cfg, 0, fastShardCount(cfg))
{
}

System::System(const WorkloadProfile &profile, const SystemConfig &cfg,
               unsigned shard_index, unsigned shard_count)
    : profile_(profile), cfg_(cfg), dram_(cfg.dram),
      llc_(shard_count > 1 ? fastLlcConfig(cfg.llc, shard_count)
                           : cfg.llc),
      shardIndex_(shard_index), shardCount_(shard_count)
{
    COP_ASSERT(cfg_.cores >= 1);
    if (shardCount_ > 1) {
        // Relaxed-consistency shard: way-partitioned LLC, a
        // metadata-cache share, and no verify oracle — a shared
        // footprint is reconciled only at quantum barriers, so a
        // shard's functional memory may be a few stores stale and the
        // oracle would flag exactly the staleness the divergence
        // contract tolerates (DESIGN.md §8).
        cfg_.llc = fastLlcConfig(cfg.llc, shardCount_);
        cfg_.metaCacheBytes =
            std::max<u64>(kBlockBytes, cfg.metaCacheBytes / shardCount_);
        cfg_.verifyData = false;
    }
    cores_.resize(cfg_.cores);
    for (unsigned c = 0; c < cfg_.cores; ++c) {
        if (cfg_.epochSource) {
            cores_[c].gen =
                cfg_.epochSource(c, cfg_.contentCacheEntries);
            COP_ASSERT(cores_[c].gen != nullptr);
        } else {
            cores_[c].gen = std::make_unique<TraceGenerator>(
                profile, c, cfg_.seedSalt, cfg_.contentCacheEntries);
        }
        cores_[c].pool = &cores_[c].gen->pool();
    }
    encodeMemo_ = std::make_unique<EncodeMemo>(cfg_.encodeMemoEntries);
    controller_ = makeController(
        cfg_.kind, dram_,
        [this](Addr addr) -> const CacheBlock & {
            return poolFor(addr).blockForRef(addr);
        },
        cfg_.decodeLatency, cfg_.metaCacheBytes, encodeMemo_.get());
    if (cfg_.bandwidthCompression) {
        if (cfg_.bandwidthBeatFloor < 1 || cfg_.bandwidthBeatFloor > 8)
            COP_FATAL("bandwidthBeatFloor must be in [1, 8]");
        controller_->enableBandwidthMode(cfg_.bandwidthBeatFloor);
    }
    if (cfg_.adaptiveEccCapacity)
        controller_->enableAdaptiveCapacity();
    evictFilter_ = [this](Addr victim, const CacheLineState &) {
        probedData_ = poolFor(victim).blockForRef(victim);
        probedAddr_ = victim;
        probed_ = true;
        return !controller_->wouldAliasReject(probedData_);
    };

    // Footprint-based pre-sizing of the flat hash state: the touched
    // footprint is bounded by both the address space and the reference
    // count ((1 + 2*mlp)/2 expected references per epoch), with a hard
    // cap so short unit-test runs stay tiny and huge sweeps do not
    // over-allocate. Purely an allocation hint — growth is automatic.
    const u64 poolRegions =
        (profile_.sharedFootprint || cfg_.cores == 1) ? 1 : cfg_.cores;
    const u64 expectedRefs =
        cfg_.epochsPerCore * cfg_.cores * (2 * profile_.mlp + 1) / 2;
    const u64 touchEstimate =
        std::min({poolRegions * profile_.footprintBlocks, expectedRefs,
                  u64{1} << 19});
    controller_->reserveFootprint(touchEstimate);
    const u64 writeEstimate = static_cast<u64>(
        static_cast<double>(touchEstimate / poolRegions) *
        profile_.writeFraction);
    for (unsigned c = 0; c < poolRegions; ++c)
        cores_[c].gen->pool().reserveVersions(writeEstimate);

    if (cfg_.fault.enabled) {
        controller_->enableFaultInjection(cfg_.fault.recovery);
        const u64 regions =
            (profile_.sharedFootprint || cfg_.cores == 1) ? 1 : cfg_.cores;
        const u64 footprint =
            regions * profile_.footprintBlocks * kBlockBytes;
        injector_ = std::make_unique<LiveInjector>(
            cfg_.fault, *controller_, footprint, cfg_.seedSalt);
    }

    if (!cfg_.traceStatsPath.empty() && cfg_.traceStatsEpochInterval == 0)
        COP_FATAL("traceStatsEpochInterval must be positive");

    if (shardCount_ > 1 && profile_.sharedFootprint) {
        // Shared-footprint runs log every version bump so the owner
        // can merge the shards' views at each quantum barrier.
        cores_[0].gen->pool().enableBumpLog();
    }
    if (shardIndex_ == 0 && shardCount_ > 1) {
        // The owner IS shard 0; it constructs the peer shards from the
        // caller's original configuration (each peer applies its own
        // partitioning above). Peers never open the stats trace — the
        // owner's registry is the run's single observability stream.
        SystemConfig peerCfg = cfg;
        peerCfg.traceStatsPath.clear();
        for (unsigned s = 1; s < shardCount_; ++s)
            peers_.emplace_back(
                new System(profile, peerCfg, s, shardCount_));
    }
    registerAllStats();
}

void
System::registerAllStats()
{
    dram_.registerStats(statsRegistry_);
    controller_->registerStats(statsRegistry_);
    statsRegistry_.gauge("codec.encode_calls",
                         [this] { return encodeMemo_->lookups(); });
    statsRegistry_.gauge("codec.memo_hits",
                         [this] { return encodeMemo_->hits(); });
    statsRegistry_.gauge("codec.scheme_trials",
                         [this] { return encodeMemo_->schemeTrials(); });
    statsRegistry_.gauge("llc.hits",
                         [this] { return llc_.stats().hits; });
    statsRegistry_.gauge("llc.misses",
                         [this] { return llc_.stats().misses; });
    statsRegistry_.gauge("sys.llc_misses", [this] { return missCount_; });
    statsRegistry_.gauge("sys.writebacks", [this] { return writebacks_; });
    statsRegistry_.gauge("sys.instructions", [this] {
        u64 total = 0;
        for (const Core &core : cores_)
            total += core.instructions;
        return total;
    });
    statsRegistry_.gauge("sys.epochs", [this] {
        u64 total = 0;
        for (const Core &core : cores_)
            total += core.epochsDone;
        return total;
    });
    // Functional-memory content cache + flat-map load factors. Summed
    // over every core pool (idle pools contribute zero in
    // shared-footprint mode).
    statsRegistry_.gauge("pool.block_for_calls", [this] {
        u64 total = 0;
        for (const Core &core : cores_)
            total += core.gen->pool().blockForCalls();
        return total;
    });
    statsRegistry_.gauge("pool.content_cache_hits", [this] {
        u64 total = 0;
        for (const Core &core : cores_)
            total += core.gen->pool().contentCacheHits();
        return total;
    });
    statsRegistry_.gauge("pool.content_cache_misses", [this] {
        u64 total = 0;
        for (const Core &core : cores_)
            total += core.gen->pool().contentCacheMisses();
        return total;
    });
    statsRegistry_.gauge("pool.version_map_entries", [this] {
        u64 total = 0;
        for (const Core &core : cores_)
            total += core.gen->pool().versionMapEntries();
        return total;
    });
    statsRegistry_.gauge("pool.version_map_slots", [this] {
        u64 total = 0;
        for (const Core &core : cores_)
            total += core.gen->pool().versionMapSlots();
        return total;
    });
    statsRegistry_.gauge("pool.image_entries",
                         [this] { return controller_->imageBlockCount(); });
    statsRegistry_.gauge("pool.image_slots",
                         [this] { return controller_->imageSlotCount(); });
    // On-die SEC filter conservation counters: every injected raw
    // pattern is exactly one of corrected / miscorrected / forwarded
    // (agg_stats.py --check enforces the per-snapshot identity).
    statsRegistry_.gauge("ondie.injected", [this] {
        return controller_->errorLog().ondieInjected;
    });
    statsRegistry_.gauge("ondie.corrected", [this] {
        return controller_->errorLog().ondieCorrected;
    });
    statsRegistry_.gauge("ondie.miscorrected", [this] {
        return controller_->errorLog().ondieMiscorrected;
    });
    statsRegistry_.gauge("ondie.forwarded", [this] {
        return controller_->errorLog().ondieForwarded;
    });
    // Trace-replay conservation counters (only registered when this
    // System replays captured traces, so a synthetic run's stats trace
    // is untouched by the feature): every epoch and access a source
    // reads must be replayed through the LLC in the same merge step —
    // agg_stats.py --check enforces read == replayed per snapshot.
    if (cfg_.epochSource) {
        const auto readCounters = [this] {
            ReplaySourceCounters total;
            for (const Core &core : cores_) {
                ReplaySourceCounters one;
                if (core.gen->replayCounters(one)) {
                    total.epochs += one.epochs;
                    total.accesses += one.accesses;
                }
            }
            return total;
        };
        statsRegistry_.gauge("trace.epochs_read", [readCounters] {
            return readCounters().epochs;
        });
        statsRegistry_.gauge("trace.accesses_read", [readCounters] {
            return readCounters().accesses;
        });
        statsRegistry_.gauge("trace.epochs_replayed", [this] {
            u64 total = 0;
            for (const Core &core : cores_)
                total += core.epochsDone;
            return total;
        });
        statsRegistry_.gauge("trace.accesses_replayed", [this] {
            return llc_.stats().hits + llc_.stats().misses;
        });
    }
    // Adaptive-capacity accounting. Only monotonic counters are
    // registered (the trace checker requires non-negative deltas), so
    // the current released-block count is exported as its high water.
    statsRegistry_.gauge("adaptive.slots_reclaimed", [this] {
        return controller_->adaptiveStats().slotsReclaimed;
    });
    statsRegistry_.gauge("adaptive.demotions", [this] {
        return controller_->adaptiveStats().demotions;
    });
    statsRegistry_.gauge("adaptive.victim_evictions", [this] {
        return controller_->adaptiveStats().victimEvictions;
    });
    statsRegistry_.gauge("adaptive.released_blocks_hw", [this] {
        return controller_->adaptiveStats().releasedBlocksHighWater;
    });
    // Fast-timing divergence gauges — registered only on the owner of
    // a relaxed-consistency run, so exact-mode stats traces are
    // untouched by the feature. All four are nondecreasing (the trace
    // checker requires non-negative deltas); they are drained only at
    // quantum barriers, when every peer shard is parked at the exit
    // barrier, so reading peer state here is race-free.
    if (shardIndex_ == 0 && shardCount_ > 1) {
        statsRegistry_.gauge("shard.divergence_barriers",
                             [this] { return ft_.barriers; });
        statsRegistry_.gauge("shard.divergence_ambient_stall_cycles",
                             [this] {
                                 Cycle total =
                                     dram_.stats().ambientStallCycles;
                                 for (const auto &peer : peers_)
                                     total += peer->dram_.stats()
                                                  .ambientStallCycles;
                                 return total;
                             });
        statsRegistry_.gauge("shard.divergence_ambient_row_closes",
                             [this] {
                                 u64 total =
                                     dram_.stats().ambientRowCloses;
                                 for (const auto &peer : peers_)
                                     total += peer->dram_.stats()
                                                  .ambientRowCloses;
                                 return total;
                             });
        statsRegistry_.gauge("shard.divergence_clock_skew_max",
                             [this] { return ft_.clockSkewMax; });
        statsRegistry_.gauge("shard.divergence_version_merges",
                             [this] { return ft_.versionMerges; });
    }
}

Cycle
System::maxCoreClock() const
{
    Cycle clock = 0;
    for (const Core &core : cores_)
        clock = std::max(clock, core.clock);
    return clock;
}

System::~System() = default;

BlockContentPool &
System::poolFor(Addr addr)
{
    if (profile_.sharedFootprint || cfg_.cores == 1)
        return *cores_[0].pool;
    const u64 region = profile_.footprintBlocks * kBlockBytes;
    const u64 core = addr / region;
    // Unconditional: an address at or past cores * region would index
    // out of bounds, which a compiled-out assert turns into UB.
    if (core >= cores_.size()) {
        COP_PANIC("address " + std::to_string(addr) +
                  " is outside the " + std::to_string(cores_.size()) +
                  " per-core footprint regions of " +
                  std::to_string(region) + " bytes");
    }
    return *cores_[core].pool;
}

void
System::performWriteback(const CacheEviction &ev, Cycle now,
                         const CacheBlock *data)
{
    COP_ASSERT(ev.valid && ev.state.dirty);
    const CacheBlock &block =
        data != nullptr ? *data : poolFor(ev.addr).blockForRef(ev.addr);
    const MemWriteResult wr = controller_->writeback(
        ev.addr, block, now, ev.state.wasUncompressed);
    // The insert-time filter already pinned true aliases; a rejection
    // here would mean the filter and the encoder disagree.
    COP_ASSERT(!wr.aliasRejected);
    ++writebacks_;
}

Cycle
System::handleMiss(Addr addr, bool is_write, Cycle now)
{
    ++missCount_;
    const MemReadResult fill = controller_->read(addr, now);

    if (cfg_.verifyData) {
        // Ground-truth oracle: compare the fill against functional
        // memory. Without fault injection any mismatch is an encoder/
        // decoder bug and aborts; with it, a mismatch nobody flagged
        // is silent data corruption and is counted as such.
        const CacheBlock &expect = poolFor(addr).blockForRef(addr);
        const bool match = fill.data == expect;
        if (!match && !fill.detectedUncorrectable) {
            if (cfg_.fault.enabled) {
                controller_->noteSilentFill(addr, fill.fillClass, now);
            } else {
                COP_PANIC("memory returned wrong data for block " +
                          std::to_string(addr));
            }
        } else if (match && fill.faultedBlock && !fill.correctedError &&
                   !fill.detectedUncorrectable) {
            // Faults present but the decoded data is right anyway
            // (e.g. flips confined to a discarded pointer field).
            controller_->noteBenignFill(addr, fill.fillClass, now);
        }
    }

    // Track which blocks were ever resident uncompressed (Figure 12's
    // "ever incompressible in DRAM" storage accounting).
    if (fill.wasUncompressed)
        everUncompressed_.insert(addr / kBlockBytes * kBlockBytes);

    // The filter's victim block is kept so a filter-approved eviction
    // writes back exactly that block instead of regenerating it (the
    // version cannot change between the probe and the writeback below).
    probed_ = false;
    CacheLineState *installed = nullptr;
    const CacheEviction ev =
        llc_.insert(addr, is_write, evictFilter_, &installed);
    if (ev.valid && ev.state.dirty) {
        performWriteback(ev, now,
                         probed_ && probedAddr_ == ev.addr ? &probedData_
                                                           : nullptr);
    }

    if (installed != nullptr) {
        installed->wasUncompressed = fill.wasUncompressed;
        if (fill.aliasPinned) {
            // First touch of an incompressible alias: it only exists
            // here, so it is dirty and pinned.
            installed->dirty = true;
            llc_.setAlias(*installed, true);
        }
    }
    return fill.complete;
}

void
System::proactiveAliasCheck(Addr addr)
{
    if (!cfg_.proactiveAliasCheck)
        return;
    if (llc_.findState(addr) == nullptr)
        return;
    if (controller_->wouldAliasReject(poolFor(addr).blockForRef(addr)))
        llc_.setAlias(addr, true);
}

void
System::runEpoch(Core &core, const Epoch &epoch)
{
    // Compute phase at the perfect-L3 IPC; the epoch's misses overlap
    // with it and with each other (interval simulation).
    const auto compute = static_cast<Cycle>(
        static_cast<double>(epoch.instructions) / profile_.perfectIpc);
    const Cycle issue = core.clock;
    Cycle memory_done = issue;

    for (const TraceAccess &access : epoch.accesses) {
        if (llc_.access(access.addr, access.isWrite)) {
            if (access.isWrite) {
                poolFor(access.addr).bumpVersion(access.addr);
                proactiveAliasCheck(access.addr);
            }
            continue; // hit latency is folded into the perfect-L3 IPC
        }
        const Cycle done = handleMiss(access.addr, access.isWrite, issue);
        if (access.isWrite) {
            poolFor(access.addr).bumpVersion(access.addr);
            proactiveAliasCheck(access.addr);
        }
        memory_done = std::max(memory_done, done + cfg_.llc.latency);
    }

    core.clock = std::max(issue + compute, memory_done);
    core.instructions += epoch.instructions;
    ++core.epochsDone;
}

template <typename EpochFor>
void
System::mergeLoop(EpochFor &&epochFor, std::ofstream &trace)
{
    u64 epochsDone = 0;
    u64 epochsSinceSnapshot = 0;

    // Global-time interleaving: always advance the core that is
    // furthest behind, so DRAM sees each core's requests in a
    // plausibly-ordered merge.
    while (true) {
        Core *next = nullptr;
        unsigned nextIdx = 0;
        for (unsigned c = 0; c < cores_.size(); ++c) {
            Core &core = cores_[c];
            if (core.epochsDone >= cfg_.epochsPerCore)
                continue;
            if (next == nullptr || core.clock < next->clock) {
                next = &core;
                nextIdx = c;
            }
        }
        if (next == nullptr)
            break;
        if (injector_)
            injector_->advanceTo(next->clock);
        runEpoch(*next, epochFor(*next, nextIdx));
        ++epochsDone;
        if (trace.is_open() &&
            ++epochsSinceSnapshot >= cfg_.traceStatsEpochInterval) {
            trace << statsRegistry_.drainEpochJson(epochsDone,
                                                   maxCoreClock())
                  << "\n";
            epochsSinceSnapshot = 0;
        }
    }
    if (trace.is_open()) {
        // Final snapshot so the trace always sums to the run totals.
        trace << statsRegistry_.drainEpochJson(epochsDone, maxCoreClock())
              << "\n";
    }
}

unsigned
System::resolvedSimThreads() const
{
    if (cfg_.simThreads != 0)
        return cfg_.simThreads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
System::runSharded(std::ofstream &trace)
{
    const unsigned workers =
        std::min<unsigned>(cfg_.cores, resolvedSimThreads() - 1);
    COP_ASSERT(workers >= 1);

    // Content (and with it codec) offload needs a per-core version
    // timeline the worker can replay from its core's stream alone; a
    // shared footprint with several writers interleaves versions in
    // merge order, so only the epoch streams offload there.
    const bool contentOffload =
        !profile_.sharedFootprint || cfg_.cores == 1;

    // The codec the scheme under test runs — workers precompute encode
    // round trips with an identically-configured replica.
    CopConfig codecCfg;
    const CopConfig *codecCfgPtr = nullptr;
    switch (cfg_.kind) {
      case ControllerKind::Cop4:
      case ControllerKind::CopEr:
      case ControllerKind::CopErNaive:
        codecCfg = CopConfig::fourByte();
        codecCfgPtr = &codecCfg;
        break;
      case ControllerKind::Cop8:
        codecCfg = CopConfig::eightByte();
        codecCfgPtr = &codecCfg;
        break;
      default:
        break;
    }

    if (contentOffload) {
        warmContent_ = std::make_unique<WarmContentStore>(1u << 14);
        for (Core &core : cores_)
            core.gen->pool().attachWarmStore(warmContent_.get());
        if (codecCfgPtr != nullptr) {
            warmEncode_ = std::make_unique<WarmEncodeStore>(1u << 14);
            warmDecode_ = std::make_unique<WarmDecodeStore>(1u << 14);
            encodeMemo_->attachWarmStore(warmEncode_.get());
            controller_->attachWarmDecode(warmDecode_.get());
        }
    }

    std::vector<std::unique_ptr<ShardQueue>> queues;
    queues.reserve(cfg_.cores);
    for (unsigned c = 0; c < cfg_.cores; ++c)
        queues.push_back(
            std::make_unique<ShardQueue>(kShardWindowEpochs));

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        ShardWorkerConfig wc;
        wc.workerIndex = w;
        wc.workerCount = workers;
        wc.cores = cfg_.cores;
        wc.epochsPerCore = cfg_.epochsPerCore;
        wc.seedSalt = cfg_.seedSalt;
        wc.contentOffload = contentOffload;
        wc.codecConfig = codecCfgPtr;
        wc.transferSizing = cfg_.bandwidthCompression;
        wc.epochSource = cfg_.epochSource ? &cfg_.epochSource : nullptr;
        pool.emplace_back(shardWorkerMain, std::cref(profile_), wc,
                          std::cref(queues));
    }

    std::vector<ShardBundle> current(cfg_.cores);
    try {
        mergeLoop(
            [&](Core &core, unsigned idx) -> const Epoch & {
                ShardBundle &b = current[idx];
                if (!queues[idx]->pop(b)) {
                    const std::string msg = queues[idx]->abortMessage();
                    for (auto &q : queues)
                        q->abort(msg);
                    for (std::thread &t : pool)
                        t.join();
                    COP_FATAL("shard worker failed for core " +
                              std::to_string(idx) + ": " + msg);
                }
                ++shardTelemetry_.bundles;
                for (const ShardContentEntry &e : b.content)
                    warmContent_->install(e.addr, e.version, e.block);
                for (const ShardCodecEntry &e : b.codec) {
                    warmEncode_->install(e.content, e.enc);
                    warmDecode_->install(e.enc.stored, e.dec);
                }
                shardTelemetry_.contentStaged += b.content.size();
                shardTelemetry_.codecStaged += b.codec.size();
                // Trace replay keeps the coordinator's own sources as
                // the authority for the epoch stream (the worker's
                // replica bundle carries an identical copy): the
                // trace.* read counters then advance on this thread in
                // serial merge order, so they — like every other
                // counter — are byte-identical to simThreads=1.
                if (cfg_.epochSource)
                    return core.gen->next();
                return b.epoch;
            },
            trace);
    } catch (...) {
        for (auto &q : queues)
            q->abort("coordinator failed");
        for (std::thread &t : pool)
            t.join();
        throw;
    }
    for (std::thread &t : pool)
        t.join();

    shardTelemetry_.workerThreads = workers;
    if (warmContent_) {
        shardTelemetry_.warmContentLookups = warmContent_->lookups();
        shardTelemetry_.warmContentHits = warmContent_->hits();
        shardTelemetry_.warmContentInstalls = warmContent_->installs();
        shardTelemetry_.warmContentConflicts =
            warmContent_->conflictEvictions();
    }
    if (warmEncode_) {
        shardTelemetry_.warmEncodeLookups = warmEncode_->lookups();
        shardTelemetry_.warmEncodeHits = warmEncode_->hits();
        shardTelemetry_.warmEncodeInstalls = warmEncode_->installs();
        shardTelemetry_.warmEncodeConflicts =
            warmEncode_->conflictEvictions();
    }
    if (warmDecode_) {
        shardTelemetry_.warmDecodeLookups = warmDecode_->lookups();
        shardTelemetry_.warmDecodeHits = warmDecode_->hits();
        shardTelemetry_.warmDecodeInstalls = warmDecode_->installs();
        shardTelemetry_.warmDecodeConflicts =
            warmDecode_->conflictEvictions();
    }
}

void
System::runFastQuantum(u64 target_epochs)
{
    // The serial furthest-behind merge loop, restricted to this
    // shard's cores (c ≡ shardIndex_ mod shardCount_) and capped at
    // the quantum's epoch target. Deterministic: the shard touches no
    // state outside itself between barriers.
    while (true) {
        Core *next = nullptr;
        for (unsigned c = shardIndex_; c < cores_.size();
             c += shardCount_) {
            Core &core = cores_[c];
            if (core.epochsDone >= target_epochs)
                continue;
            if (next == nullptr || core.clock < next->clock)
                next = &core;
        }
        if (next == nullptr)
            break;
        runEpoch(*next, next->gen->next());
    }
}

void
System::reconcileShards(u64 quantum_cycles_hint)
{
    // Owner-only; every peer is parked at the exit barrier, so all
    // shard state is quiescent and reads/writes here are race-free.
    std::vector<System *> shards;
    shards.reserve(shardCount_);
    shards.push_back(this);
    for (auto &peer : peers_)
        shards.push_back(peer.get());

    // (a) Ambient bus load: model the other shards' channel traffic as
    // an expected queueing delay. Each shard's external utilisation is
    // the sum of the *other* shards' bus-busy deltas over this
    // quantum's cycle span and channel count.
    Cycle globalClock = 0;
    Cycle minShardClock = 0;
    bool first = true;
    for (System *s : shards) {
        const Cycle c = s->maxCoreClock();
        globalClock = std::max(globalClock, c);
        minShardClock = first ? c : std::min(minShardClock, c);
        first = false;
    }
    const Cycle span = globalClock > lastGlobalClock_
                           ? globalClock - lastGlobalClock_
                           : quantum_cycles_hint;
    lastGlobalClock_ = globalClock;
    ft_.clockSkewMax =
        std::max(ft_.clockSkewMax, globalClock - minShardClock);

    std::vector<Cycle> deltas(shards.size());
    std::vector<u64> accessDeltas(shards.size());
    Cycle totalDelta = 0;
    u64 totalAccessDelta = 0;
    for (size_t i = 0; i < shards.size(); ++i) {
        const Cycle busy = shards[i]->dram_.stats().busBusyCycles;
        deltas[i] = busy - shards[i]->lastBusBusy_;
        shards[i]->lastBusBusy_ = busy;
        totalDelta += deltas[i];
        const u64 accesses = shards[i]->dram_.stats().reads +
                             shards[i]->dram_.stats().writes;
        accessDeltas[i] = accesses - shards[i]->lastAccesses_;
        shards[i]->lastAccesses_ = accesses;
        totalAccessDelta += accessDeltas[i];
    }
    const double denom = static_cast<double>(span) *
                         static_cast<double>(cfg_.dram.channels);
    // Row-buffer interference spreads over every bank in the system.
    const double bank_cycles =
        static_cast<double>(span) *
        static_cast<double>(cfg_.dram.channels) *
        static_cast<double>(cfg_.dram.ranksPerChannel) *
        static_cast<double>(cfg_.dram.banksPerRank);
    for (size_t i = 0; i < shards.size(); ++i) {
        const double ext =
            denom > 0.0
                ? static_cast<double>(totalDelta - deltas[i]) / denom
                : 0.0;
        shards[i]->dram_.setAmbientBusLoad(ext);
        const double close_rate =
            bank_cycles > 0.0
                ? static_cast<double>(totalAccessDelta -
                                      accessDeltas[i]) /
                      bank_cycles
                : 0.0;
        shards[i]->dram_.setAmbientRowCloseRate(close_rate);
    }

    // (b) Shared-footprint version merge: fold every shard's logged
    // store bumps into the global version view, then advance every
    // shard's pool to it. The touched list is sorted and deduplicated
    // so the merge order — and with it the run — is deterministic.
    // Content images already cached under a stale version are
    // tolerated (verifyData is off in fast mode) and replaced on the
    // next version-keyed miss.
    if (profile_.sharedFootprint) {
        std::vector<Addr> touched;
        for (System *s : shards) {
            for (const Addr a : s->cores_[0].pool->drainBumpLog()) {
                ++globalVersions_[a];
                touched.push_back(a);
            }
        }
        std::sort(touched.begin(), touched.end());
        touched.erase(std::unique(touched.begin(), touched.end()),
                      touched.end());
        for (const Addr a : touched) {
            const u32 global = globalVersions_[a];
            for (System *s : shards) {
                BlockContentPool &pool = *s->cores_[0].pool;
                if (pool.versionOf(a) != global) {
                    pool.setVersion(a, global);
                    ++ft_.versionMerges;
                }
            }
        }
    }
}

void
System::runFastTiming(std::ofstream &trace)
{
    const u64 quantum = cfg_.fastTimingQuantumEpochs;

    // The per-core epoch targets of the successive quanta — identical
    // on every shard, so the barrier count is deterministic. A short
    // warm-up quantum comes first: the ambient-contention estimates
    // start at zero (a fresh run has no traffic history), and without
    // it the whole first quantum — a large share of a short CI run —
    // would simulate contention-free.
    std::vector<u64> targets;
    {
        const u64 warmup = std::min<u64>(8, quantum);
        u64 t = std::min(cfg_.epochsPerCore, warmup);
        targets.push_back(t);
        while (t < cfg_.epochsPerCore) {
            t = std::min(cfg_.epochsPerCore, t + quantum);
            targets.push_back(t);
        }
    }

    // Two generation barriers per quantum: all shards arrive at
    // `enter` with their quantum complete; peers then park at `exit`
    // while the owner reconciles; the owner's arrival at `exit`
    // releases everyone into the next quantum. Shard errors set the
    // failure flag but keep arriving at both barriers, so a dying run
    // can never deadlock the others — the owner re-raises after join.
    QuantumBarrier enter(shardCount_);
    QuantumBarrier exitB(shardCount_);
    std::vector<std::string> failures(shardCount_);
    std::atomic<bool> failed{false};

    auto guarded = [&](unsigned shard, auto &&fn) {
        if (failed.load(std::memory_order_relaxed))
            return;
        try {
            fn();
        } catch (const std::exception &e) {
            failures[shard] = e.what();
            failed.store(true, std::memory_order_relaxed);
        } catch (...) {
            failures[shard] = "unknown shard failure";
            failed.store(true, std::memory_order_relaxed);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(peers_.size());
    for (auto &peerPtr : peers_) {
        System *peer = peerPtr.get();
        threads.emplace_back([&, peer] {
            for (const u64 target : targets) {
                guarded(peer->shardIndex_,
                        [&] { peer->runFastQuantum(target); });
                enter.arriveAndWait();
                exitB.arriveAndWait();
            }
        });
    }

    const u64 interval = cfg_.traceStatsEpochInterval;
    auto globalEpochs = [&] {
        u64 total = 0;
        for (const Core &core : cores_)
            total += core.epochsDone;
        for (const auto &peer : peers_)
            for (const Core &core : peer->cores_)
                total += core.epochsDone;
        return total;
    };

    for (const u64 target : targets) {
        guarded(0, [&] { runFastQuantum(target); });
        enter.arriveAndWait();
        guarded(0, [&] {
            reconcileShards(quantum);
            ++ft_.barriers;
            // Owner-registry snapshot at barrier cadence: the closest
            // deterministic analogue of the serial trace's per-epoch
            // interval (snapshots can only happen when all shards are
            // quiescent).
            if (trace.is_open() &&
                globalEpochs() - lastSnapshotEpochs_ >= interval) {
                trace << statsRegistry_.drainEpochJson(globalEpochs(),
                                                       lastGlobalClock_)
                      << "\n";
                lastSnapshotEpochs_ = globalEpochs();
            }
        });
        exitB.arriveAndWait();
    }
    for (std::thread &t : threads)
        t.join();
    if (failed.load()) {
        for (unsigned s = 0; s < shardCount_; ++s)
            if (!failures[s].empty())
                COP_FATAL("fast-timing shard " + std::to_string(s) +
                          " failed: " + failures[s]);
        COP_FATAL("fast-timing run failed");
    }
    if (trace.is_open()) {
        // Final snapshot so the trace always sums to the run totals.
        trace << statsRegistry_.drainEpochJson(globalEpochs(),
                                               lastGlobalClock_)
              << "\n";
    }
}

SystemResults
System::run()
{
    // Optional observability trace: one JSONL snapshot of the stats
    // registry every traceStatsEpochInterval completed epochs. When
    // the path is empty nothing below touches the registry, so a
    // tracing-off run is byte-identical to one without the feature.
    std::ofstream trace;
    if (!cfg_.traceStatsPath.empty()) {
        trace.open(cfg_.traceStatsPath);
        if (!trace)
            COP_FATAL("cannot open stats trace " + cfg_.traceStatsPath);
    }

    if (cfg_.fastTiming) {
        runFastTiming(trace);
    } else if (resolvedSimThreads() <= 1) {
        mergeLoop(
            [](Core &core, unsigned) -> const Epoch & {
                return core.gen->next();
            },
            trace);
    } else {
        runSharded(trace);
    }

    SystemResults results = collectResults();
    if (cfg_.fastTiming) {
        // Fold the peer shards in. touchedBlocks is a per-shard image
        // count — exact in rate mode (disjoint regions), a slight
        // over-count in shared-footprint mode (a block both shards
        // touched has an image in each); part of the documented
        // divergence contract, like everything below.
        for (auto &peer : peers_)
            mergeResultsInto(results, peer->collectResults());
        results.fastTiming = true;
        results.ftShards = shardCount_;
        results.ftQuantumEpochs = cfg_.fastTimingQuantumEpochs;
        results.ftBarriers = ft_.barriers;
        results.ftClockSkewMax = ft_.clockSkewMax;
        results.ftVersionMerges = ft_.versionMerges;
    }
    return results;
}

SystemResults
System::collectResults()
{
    SystemResults results;
    for (const auto &core : cores_) {
        results.instructions += core.instructions;
        results.cycles = std::max(results.cycles, core.clock);
    }
    results.ipc = results.cycles
                      ? static_cast<double>(results.instructions) /
                            static_cast<double>(results.cycles)
                      : 0.0;
    results.llcMisses = missCount_;
    results.writebacks = writebacks_;
    results.llc = llc_.stats();
    results.aliasPinEvents = llc_.stats().aliasPinned;
    results.dram = dram_.stats();
    results.mem = controller_->stats();
    results.mem.encodeCalls = encodeMemo_->lookups();
    results.mem.encodeMemoHits = encodeMemo_->hits();
    results.mem.schemeTrials = encodeMemo_->schemeTrials();
    results.vuln = controller_->vulnLog();
    results.errors = controller_->errorLog();
    results.adaptive = controller_->adaptiveStats();
    results.everUncompressedBlocks = everUncompressed_.size();

    // Footprint actually touched: distinct blocks with a DRAM image.
    results.touchedBlocks = controller_->imageBlockCount();
    for (const auto &core : cores_) {
        results.poolBlockForCalls += core.gen->pool().blockForCalls();
        results.poolContentCacheHits +=
            core.gen->pool().contentCacheHits();
        results.poolContentCacheMisses +=
            core.gen->pool().contentCacheMisses();
    }
    results.eccRegionBytes = 0;
    if (auto *coper = dynamic_cast<CopErController *>(controller_.get())) {
        results.eccRegionBytes = coper->storageBytesHighWater();
        results.eccRegionBytesNoDealloc = coper->storageBytesNoDealloc();
        results.everUncompressedBlocks =
            coper->everIncompressibleBlocks();
    }
    return results;
}

void
System::mergeResultsInto(SystemResults &into, const SystemResults &peer)
{
    // Counter-wise sum of one peer shard's results (fast-timing mode
    // only — faults are forbidden there, so the error log stays all
    // zero and is not merged). Cycles take the max — the run is as
    // long as its slowest shard — and the IPC is recomputed over the
    // merged totals.
    into.instructions += peer.instructions;
    into.cycles = std::max(into.cycles, peer.cycles);
    into.llcMisses += peer.llcMisses;
    into.writebacks += peer.writebacks;
    into.aliasPinEvents += peer.aliasPinEvents;

    into.llc.hits += peer.llc.hits;
    into.llc.misses += peer.llc.misses;
    into.llc.evictions += peer.llc.evictions;
    into.llc.dirtyEvictions += peer.llc.dirtyEvictions;
    into.llc.aliasPinned += peer.llc.aliasPinned;
    into.llc.setOverflows += peer.llc.setOverflows;
    into.llc.spillHits += peer.llc.spillHits;

    into.dram.reads += peer.dram.reads;
    into.dram.writes += peer.dram.writes;
    into.dram.rowHits += peer.dram.rowHits;
    into.dram.rowMisses += peer.dram.rowMisses;
    into.dram.rowConflicts += peer.dram.rowConflicts;
    into.dram.refreshStalls += peer.dram.refreshStalls;
    into.dram.refreshStallsCas += peer.dram.refreshStallsCas;
    into.dram.totalReadLatency += peer.dram.totalReadLatency;
    into.dram.totalWriteLatency += peer.dram.totalWriteLatency;
    into.dram.readBeats += peer.dram.readBeats;
    into.dram.writeBeats += peer.dram.writeBeats;
    into.dram.beatsSaved += peer.dram.beatsSaved;
    into.dram.busBusyCycles += peer.dram.busBusyCycles;
    into.dram.busTurnarounds += peer.dram.busTurnarounds;
    into.dram.ambientStallCycles += peer.dram.ambientStallCycles;
    into.dram.ambientRowCloses += peer.dram.ambientRowCloses;
    into.dram.readLatency.merge(peer.dram.readLatency);
    into.dram.writeLatency.merge(peer.dram.writeLatency);

    into.mem.reads += peer.mem.reads;
    into.mem.writes += peer.mem.writes;
    into.mem.protectedWrites += peer.mem.protectedWrites;
    into.mem.unprotectedWrites += peer.mem.unprotectedWrites;
    into.mem.aliasRejects += peer.mem.aliasRejects;
    into.mem.metaReads += peer.mem.metaReads;
    into.mem.metaWrites += peer.mem.metaWrites;
    into.mem.metaCacheHits += peer.mem.metaCacheHits;
    into.mem.metaCacheMisses += peer.mem.metaCacheMisses;
    for (size_t i = 0; i < into.mem.schemeWrites.size(); ++i)
        into.mem.schemeWrites[i] += peer.mem.schemeWrites[i];
    into.mem.encodeCalls += peer.mem.encodeCalls;
    into.mem.encodeMemoHits += peer.mem.encodeMemoHits;
    into.mem.schemeTrials += peer.mem.schemeTrials;

    for (size_t i = 0; i < into.vuln.byClass.size(); ++i) {
        into.vuln.byClass[i].reads += peer.vuln.byClass[i].reads;
        into.vuln.byClass[i].totalCycles +=
            peer.vuln.byClass[i].totalCycles;
    }

    into.adaptive.slotsReclaimed += peer.adaptive.slotsReclaimed;
    into.adaptive.demotions += peer.adaptive.demotions;
    into.adaptive.victimEvictions += peer.adaptive.victimEvictions;
    into.adaptive.releasedBlocks += peer.adaptive.releasedBlocks;
    into.adaptive.releasedBlocksHighWater +=
        peer.adaptive.releasedBlocksHighWater;

    into.everUncompressedBlocks += peer.everUncompressedBlocks;
    into.touchedBlocks += peer.touchedBlocks;
    into.eccRegionBytes += peer.eccRegionBytes;
    into.eccRegionBytesNoDealloc += peer.eccRegionBytesNoDealloc;
    into.poolBlockForCalls += peer.poolBlockForCalls;
    into.poolContentCacheHits += peer.poolContentCacheHits;
    into.poolContentCacheMisses += peer.poolContentCacheMisses;

    into.ipc = into.cycles
                   ? static_cast<double>(into.instructions) /
                         static_cast<double>(into.cycles)
                   : 0.0;
}

} // namespace cop
