#include "sim/trace_io.hpp"

#include <istream>
#include <ostream>
#include <unordered_set>

#include "trace/format.hpp"

namespace cop {

TraceWriter::TraceWriter(std::ostream &out, u64 declared)
    : out_(out), declared_(declared)
{
    out_.write(trace::kMagicV2, trace::kMagicBytes);
    countPos_ = out_.tellp(); // -1 on unseekable streams (pipes)
    trace::writeScalarLe<u64>(out_, declared);
}

TraceWriter::~TraceWriter()
{
    finish();
}

void
TraceWriter::write(const Epoch &epoch)
{
    COP_ASSERT(!finished_);
    trace::writeScalarLe<u64>(out_, epoch.instructions);
    trace::writeScalarLe<u32>(out_, static_cast<u32>(epoch.accesses.size()));
    for (const TraceAccess &access : epoch.accesses) {
        COP_ASSERT(access.addr % kBlockBytes == 0);
        trace::writeScalarLe<u64>(out_,
                                  access.addr | (access.isWrite ? 1u : 0u));
    }
    ++count_;
}

void
TraceWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    // Back-patch the header's epoch count so readers can tell a
    // complete file from one truncated at an epoch boundary. On
    // unseekable sinks the count stays whatever the constructor was
    // given (0 = "read until EOF").
    if (countPos_ != std::streampos(-1)) {
        const std::streampos end = out_.tellp();
        out_.seekp(countPos_);
        trace::writeScalarLe<u64>(out_, count_);
        out_.seekp(end);
    } else if (declared_ != 0 && declared_ != count_) {
        COP_FATAL("trace writer declared " + std::to_string(declared_) +
                  " epochs up front but wrote " + std::to_string(count_));
    }
    out_.flush();
    // A full disk or closed pipe must not produce a file that parses
    // as a complete trace.
    if (!out_)
        COP_FATAL("trace write failed (disk full or sink closed?)");
}

TraceSummary
summarizeTrace(TraceSource &src)
{
    TraceSummary summary;
    std::unordered_set<Addr> blocks;
    Epoch epoch;
    while (src.next(epoch)) {
        ++summary.epochs;
        summary.instructions += epoch.instructions;
        // Sequentiality is a per-epoch property: an epoch boundary is
        // a scheduling discontinuity, so `prev` must not leak across
        // it and mint a phantom sequential pair.
        Addr prev = ~0ULL;
        for (const TraceAccess &access : epoch.accesses) {
            ++summary.accesses;
            summary.writes += access.isWrite;
            blocks.insert(access.addr);
            if (prev != ~0ULL && access.addr == prev + kBlockBytes)
                ++summary.sequentialPairs;
            prev = access.addr;
        }
    }
    summary.distinctBlocks = blocks.size();
    return summary;
}

TraceSummary
summarizeTrace(std::istream &in)
{
    BinaryTraceSource src(in);
    return summarizeTrace(static_cast<TraceSource &>(src));
}

u64
captureTrace(const WorkloadProfile &profile, unsigned core_id,
             u64 epochs, std::ostream &out)
{
    TraceGenerator gen(profile, core_id);
    // Preset the declared count: unseekable sinks (gzip, pipes) then
    // still produce traces whose completeness readers can verify.
    TraceWriter writer(out, epochs);
    for (u64 i = 0; i < epochs; ++i)
        writer.write(gen.next());
    writer.finish();
    return writer.epochsWritten();
}

} // namespace cop
