#include "sim/trace_io.hpp"

#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <unordered_set>

namespace cop {

namespace {

constexpr char kMagic[8] = {'C', 'O', 'P', 'T', 'R', 'C', '1', '\0'};

template <typename T>
void
writeScalar(std::ostream &out, T value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(value));
}

template <typename T>
bool
readScalar(std::istream &in, T &value)
{
    in.read(reinterpret_cast<char *>(&value), sizeof(value));
    return in.gcount() == sizeof(value);
}

} // namespace

TraceWriter::TraceWriter(std::ostream &out) : out_(out)
{
    out_.write(kMagic, sizeof(kMagic));
    countPos_ = out_.tellp(); // -1 on unseekable streams (pipes)
    writeScalar<u32>(out_, 0); // patched by finish() when seekable
}

TraceWriter::~TraceWriter()
{
    finish();
}

void
TraceWriter::write(const Epoch &epoch)
{
    COP_ASSERT(!finished_);
    writeScalar<u64>(out_, epoch.instructions);
    writeScalar<u32>(out_, static_cast<u32>(epoch.accesses.size()));
    for (const TraceAccess &access : epoch.accesses) {
        COP_ASSERT(access.addr % kBlockBytes == 0);
        writeScalar<u64>(out_, access.addr | (access.isWrite ? 1u : 0u));
    }
    ++count_;
}

void
TraceWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    // Back-patch the header's epoch count so readers can tell a
    // complete file from one truncated at an epoch boundary. On
    // unseekable sinks the count stays 0: "read until EOF".
    if (countPos_ == std::streampos(-1) ||
        count_ > std::numeric_limits<u32>::max()) {
        return;
    }
    const std::streampos end = out_.tellp();
    out_.seekp(countPos_);
    writeScalar<u32>(out_, static_cast<u32>(count_));
    out_.seekp(end);
}

TraceReader::TraceReader(std::istream &in) : in_(in)
{
    char magic[8];
    in_.read(magic, sizeof(magic));
    if (in_.gcount() != sizeof(magic) ||
        std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
        COP_FATAL("not a COP trace stream (bad magic)");
    }
    if (!readScalar(in_, declared_))
        COP_FATAL("truncated trace header");
}

bool
TraceReader::read(Epoch &epoch)
{
    u64 instructions;
    if (!readScalar(in_, instructions)) {
        // End of stream at an epoch boundary: only legitimate when the
        // header declared no count or exactly this many epochs.
        if (declared_ != 0 && count_ != declared_) {
            COP_FATAL("trace declares " + std::to_string(declared_) +
                      " epochs but the stream ended after " +
                      std::to_string(count_));
        }
        return false;
    }
    u32 count;
    if (!readScalar(in_, count))
        COP_FATAL("truncated trace epoch header");
    epoch.instructions = instructions;
    epoch.accesses.clear();
    epoch.accesses.reserve(count);
    for (u32 i = 0; i < count; ++i) {
        u64 word;
        if (!readScalar(in_, word))
            COP_FATAL("truncated trace access record");
        epoch.accesses.push_back(
            {word & ~static_cast<u64>(1), (word & 1) != 0});
    }
    ++count_;
    return true;
}

TraceSummary
summarizeTrace(std::istream &in)
{
    TraceReader reader(in);
    TraceSummary summary;
    std::unordered_set<Addr> blocks;
    Addr prev = ~0ULL;
    Epoch epoch;
    while (reader.read(epoch)) {
        ++summary.epochs;
        summary.instructions += epoch.instructions;
        for (const TraceAccess &access : epoch.accesses) {
            ++summary.accesses;
            summary.writes += access.isWrite;
            blocks.insert(access.addr);
            if (prev != ~0ULL && access.addr == prev + kBlockBytes)
                ++summary.sequentialPairs;
            prev = access.addr;
        }
    }
    summary.distinctBlocks = blocks.size();
    return summary;
}

u64
captureTrace(const WorkloadProfile &profile, unsigned core_id,
             u64 epochs, std::ostream &out)
{
    TraceGenerator gen(profile, core_id);
    TraceWriter writer(out);
    for (u64 i = 0; i < epochs; ++i)
        writer.write(gen.next());
    return writer.epochsWritten();
}

} // namespace cop
