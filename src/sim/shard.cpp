#include "sim/shard.hpp"

namespace cop {

bool
ShardQueue::tryPush(ShardBundle &bundle)
{
    const std::lock_guard<std::mutex> lock(m_);
    if (aborted_)
        return true; // swallow; the producer exits on its abort check
    if (q_.size() >= cap_)
        return false;
    q_.push_back(std::move(bundle));
    notEmpty_.notify_one();
    return true;
}

bool
ShardQueue::pop(ShardBundle &out)
{
    std::unique_lock<std::mutex> lock(m_);
    notEmpty_.wait(lock, [this] { return !q_.empty() || aborted_; });
    if (q_.empty())
        return false;
    out = std::move(q_.front());
    q_.pop_front();
    notFull_.notify_one();
    return true;
}

void
ShardQueue::waitNotFull(std::chrono::microseconds timeout) const
{
    std::unique_lock<std::mutex> lock(m_);
    notFull_.wait_for(lock, timeout, [this] {
        return q_.size() < cap_ || aborted_;
    });
}

void
ShardQueue::abort(const std::string &msg)
{
    const std::lock_guard<std::mutex> lock(m_);
    if (!aborted_) {
        aborted_ = true;
        msg_ = msg;
    }
    notEmpty_.notify_all();
    notFull_.notify_all();
}

bool
ShardQueue::aborted() const
{
    const std::lock_guard<std::mutex> lock(m_);
    return aborted_;
}

std::string
ShardQueue::abortMessage() const
{
    const std::lock_guard<std::mutex> lock(m_);
    return msg_;
}

ShardProducer::ShardProducer(const WorkloadProfile &profile,
                             unsigned core_id, u64 seed_salt,
                             bool content_offload,
                             const CopConfig *codec_cfg,
                             bool transfer_sizing,
                             const EpochSourceFactory *epoch_source)
    // Content cache 0: the replica only needs the pure generateAt path
    // (and the identical seeds), not the multi-megabyte cache.
    : gen_(epoch_source != nullptr
               ? (*epoch_source)(core_id, 0)
               : std::make_unique<TraceGenerator>(profile, core_id,
                                                  seed_salt, 0)),
      contentOffload_(content_offload)
{
    COP_ASSERT(gen_ != nullptr);
    if (contentOffload_ && codec_cfg != nullptr) {
        codec_ = std::make_unique<CopCodec>(*codec_cfg);
        if (transfer_sizing)
            codec_->enableTransferSizing();
    }
    if (contentOffload_) {
        contentSeen_.resize(kSeenSlots);
        if (codec_)
            codecSeen_.resize(kSeenSlots);
    }
}

void
ShardProducer::emitBlock(Addr addr, u32 version, ShardBundle &out)
{
    SeenContent &seen =
        contentSeen_[(addr / kBlockBytes) & (kSeenSlots - 1)];
    if (seen.valid && seen.addr == addr && seen.version == version)
        return;
    seen.addr = addr;
    seen.version = version;
    seen.valid = true;

    ShardContentEntry entry;
    entry.addr = addr;
    entry.version = version;
    entry.block = gen_->pool().generateAt(addr, version);
    if (codec_) {
        SeenBlock &cs =
            codecSeen_[blockContentHash(entry.block) & (kSeenSlots - 1)];
        if (!(cs.valid && cs.key == entry.block)) {
            cs.valid = true;
            cs.key = entry.block;
            ShardCodecEntry ce;
            ce.content = entry.block;
            ce.enc = codec_->encode(entry.block);
            ce.dec = codec_->decode(ce.enc.stored);
            out.codec.push_back(std::move(ce));
        }
    }
    out.content.push_back(std::move(entry));
}

void
ShardProducer::produce(ShardBundle &out)
{
    const Epoch &epoch = gen_->next();
    out.epoch.instructions = epoch.instructions;
    out.epoch.accesses = epoch.accesses;
    out.content.clear();
    out.codec.clear();
    if (!contentOffload_)
        return;

    // Replay the version timeline exactly as the coordinator will: a
    // write access reads the pre-bump content (the miss fill) and
    // bumps afterwards (its post-bump content is what a later eviction
    // writes back), so both versions are staged.
    for (const TraceAccess &access : epoch.accesses) {
        u32 version = 0;
        if (auto it = versions_.find(access.addr);
            it != versions_.end())
            version = it->second;
        emitBlock(access.addr, version, out);
        if (access.isWrite) {
            const u32 bumped = ++versions_[access.addr];
            emitBlock(access.addr, bumped, out);
        }
    }
}

void
shardWorkerMain(const WorkloadProfile &profile,
                const ShardWorkerConfig &cfg,
                const std::vector<std::unique_ptr<ShardQueue>> &queues)
{
    struct OwnedCore
    {
        unsigned core = 0;
        std::unique_ptr<ShardProducer> producer;
        u64 produced = 0;
        ShardBundle pending;
        bool pendingReady = false;
    };
    std::vector<OwnedCore> owned;
    for (unsigned c = cfg.workerIndex; c < cfg.cores;
         c += cfg.workerCount) {
        OwnedCore oc;
        oc.core = c;
        oc.producer = std::make_unique<ShardProducer>(
            profile, c, cfg.seedSalt, cfg.contentOffload,
            cfg.codecConfig, cfg.transferSizing, cfg.epochSource);
        owned.push_back(std::move(oc));
    }

    try {
        while (true) {
            bool progress = false;
            bool anyRemaining = false;
            const OwnedCore *stalled = nullptr;
            for (OwnedCore &oc : owned) {
                if (!oc.pendingReady &&
                    oc.produced >= cfg.epochsPerCore)
                    continue; // this core's stream is fully delivered
                anyRemaining = true;
                ShardQueue &queue = *queues[oc.core];
                if (queue.aborted())
                    return;
                if (!oc.pendingReady) {
                    oc.producer->produce(oc.pending);
                    oc.pendingReady = true;
                    ++oc.produced;
                }
                if (queue.tryPush(oc.pending)) {
                    oc.pendingReady = false;
                    progress = true;
                } else {
                    stalled = &oc;
                }
            }
            if (!anyRemaining)
                return;
            if (!progress && stalled != nullptr) {
                // Every undelivered core's window is full: wait for
                // the coordinator to drain one. Timed, so an aborting
                // run can never wedge this thread.
                queues[stalled->core]->waitNotFull(
                    std::chrono::microseconds(500));
            }
        }
    } catch (const std::exception &e) {
        for (const OwnedCore &oc : owned)
            queues[oc.core]->abort(e.what());
    } catch (...) {
        for (const OwnedCore &oc : owned)
            queues[oc.core]->abort("unknown exception");
    }
}

} // namespace cop
