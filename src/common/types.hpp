/**
 * @file
 * Fundamental scalar types and error-reporting helpers shared by every
 * module in the COP reproduction.
 */

#ifndef COP_COMMON_TYPES_HPP
#define COP_COMMON_TYPES_HPP

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace cop {

/** Physical byte address within the simulated memory space. */
using Addr = std::uint64_t;

/** Simulated core-clock cycle count. */
using Cycle = std::uint64_t;

/** Simulated instruction count. */
using InstCount = std::uint64_t;

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

/** Size of every memory block handled by COP, in bytes (one cache line). */
inline constexpr unsigned kBlockBytes = 64;

/** Size of every memory block in bits. */
inline constexpr unsigned kBlockBits = kBlockBytes * 8;

/**
 * Abort the process due to an internal invariant violation (a bug in the
 * simulator itself, never a user error). Mirrors gem5's panic().
 */
[[noreturn]] inline void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

/**
 * Exit due to an unusable configuration supplied by the caller (a user
 * error, not a simulator bug). Mirrors gem5's fatal().
 */
[[noreturn]] inline void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

#define COP_PANIC(msg) ::cop::panicImpl(__FILE__, __LINE__, (msg))
#define COP_FATAL(msg) ::cop::fatalImpl(__FILE__, __LINE__, (msg))

/** Assert an invariant that must hold regardless of user input. */
#define COP_ASSERT(cond)                                                    \
    do {                                                                    \
        if (!(cond))                                                        \
            COP_PANIC(std::string("assertion failed: ") + #cond);          \
    } while (0)

} // namespace cop

#endif // COP_COMMON_TYPES_HPP
