/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256++) used by the
 * workload generators, the fault injector and the Monte-Carlo benches.
 * Deterministic seeding keeps every experiment reproducible run-to-run.
 */

#ifndef COP_COMMON_RNG_HPP
#define COP_COMMON_RNG_HPP

#include <array>

#include "common/types.hpp"

namespace cop {

/**
 * xoshiro256++ 1.0 (Blackman & Vigna, public domain algorithm),
 * re-implemented here. Not cryptographic; plenty for simulation.
 */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-seed via splitmix64 so that nearby seeds decorrelate. */
    void
    reseed(u64 seed)
    {
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ULL;
            u64 z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next 64 uniform random bits. */
    u64
    next()
    {
        const u64 result = rotl(state_[0] + state_[3], 23) + state_[0];
        const u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    u64
    below(u64 bound)
    {
        COP_ASSERT(bound != 0);
        // Rejection-free modulo is fine at simulation scale; bias is
        // negligible for bound << 2^64.
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. */
    u64
    range(u64 lo, u64 hi)
    {
        COP_ASSERT(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

    std::array<u64, 4> state_;
};

} // namespace cop

#endif // COP_COMMON_RNG_HPP
