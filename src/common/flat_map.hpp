/**
 * @file
 * Open-addressing hash containers for u64 keys (addresses, block
 * indices): FlatMap<V> and FlatSet. One contiguous slot array,
 * power-of-two capacity, linear probing with backward-shift deletion
 * (no tombstones, so probe chains never rot), splitmix64 key mixing
 * (simulated addresses are multiples of 64 and metadata spaces sit at
 * 1<<40 / 1<<41 — the raw keys are catastrophically non-uniform).
 *
 * These replace std::unordered_map/set on the simulator's hot paths
 * (stored images, write timestamps, version maps, check sidecars),
 * where the node-based layout costs an allocation plus a dependent
 * pointer chase per lookup. Semantics match the std containers for the
 * operations offered, with one deliberate difference: references and
 * iterators are invalidated by ANY insertion (the slot array may
 * rehash), not just by rehash-past-load-factor. Callers must not hold
 * a reference across an insert into the same container.
 *
 * Iteration order is unspecified and changes across rehashes — exactly
 * like the std containers. Call sites that need determinism sort, as
 * MemoryController::imageAddressesSorted always has.
 */

#ifndef COP_COMMON_FLAT_MAP_HPP
#define COP_COMMON_FLAT_MAP_HPP

#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace cop {

namespace detail {

/** splitmix64 finaliser: full-avalanche mix of a 64-bit key. */
inline u64
flatHash(u64 key)
{
    key += 0x9e3779b97f4a7c15ULL;
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
    return key ^ (key >> 31);
}

/** Smallest power of two >= @p n (and >= 16). */
inline u64
flatCapacityFor(u64 n)
{
    u64 cap = 16;
    while (cap < n)
        cap <<= 1;
    return cap;
}

} // namespace detail

/**
 * Open-addressing hash map from u64 keys to @p V. Grows at 7/8 load
 * (linear probing stays fast well past the usual 0.7 rule of thumb
 * because deletion backward-shifts instead of leaving tombstones;
 * 7/8 keeps the footprint-reserved maps compact).
 */
template <typename V> class FlatMap
{
  private:
    struct Slot
    {
        std::pair<u64, V> kv{};
        bool used = false;
    };

  public:
    using value_type = std::pair<u64, V>;

    template <bool Const> class Iter
    {
      public:
        using SlotPtr = std::conditional_t<Const, const Slot *, Slot *>;
        using Ref =
            std::conditional_t<Const, const value_type &, value_type &>;
        using Ptr =
            std::conditional_t<Const, const value_type *, value_type *>;

        Iter() = default;
        Iter(SlotPtr pos, SlotPtr end) : pos_(pos), end_(end)
        {
            skipEmpty();
        }

        /** iterator -> const_iterator conversion. */
        template <bool WasConst,
                  typename = std::enable_if_t<Const && !WasConst>>
        Iter(const Iter<WasConst> &o) : pos_(o.pos_), end_(o.end_)
        {
        }

        Ref operator*() const { return pos_->kv; }
        Ptr operator->() const { return &pos_->kv; }

        Iter &
        operator++()
        {
            ++pos_;
            skipEmpty();
            return *this;
        }

        bool operator==(const Iter &o) const { return pos_ == o.pos_; }
        bool operator!=(const Iter &o) const { return pos_ != o.pos_; }

      private:
        template <bool> friend class Iter;

        void
        skipEmpty()
        {
            while (pos_ != end_ && !pos_->used)
                ++pos_;
        }

        SlotPtr pos_ = nullptr;
        SlotPtr end_ = nullptr;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    FlatMap() = default;

    /** Pre-size so @p n entries fit without rehashing. */
    void
    reserve(u64 n)
    {
        const u64 want = detail::flatCapacityFor(n + n / 7 + 1);
        if (want > slots_.size())
            rehash(want);
    }

    iterator
    find(u64 key)
    {
        const size_t pos = findSlot(key);
        if (pos == kNotFound)
            return end();
        return iterator(slots_.data() + pos, slotsEnd());
    }

    const_iterator
    find(u64 key) const
    {
        const size_t pos = findSlot(key);
        if (pos == kNotFound)
            return end();
        return const_iterator(slots_.data() + pos, slotsEnd());
    }

    size_t
    count(u64 key) const
    {
        return findSlot(key) == kNotFound ? 0 : 1;
    }

    /**
     * Insert (key, V(args...)) unless the key is present; returns the
     * entry's iterator and whether it was inserted. Value construction
     * is skipped entirely when the key already exists.
     */
    template <typename... Args>
    std::pair<iterator, bool>
    emplace(u64 key, Args &&...args)
    {
        growIfNeeded();
        size_t pos = static_cast<size_t>(detail::flatHash(key)) & mask_;
        while (slots_[pos].used) {
            if (slots_[pos].kv.first == key)
                return {iterator(slots_.data() + pos, slotsEnd()),
                        false};
            pos = (pos + 1) & mask_;
        }
        slots_[pos].kv =
            value_type(key, V(std::forward<Args>(args)...));
        slots_[pos].used = true;
        ++size_;
        return {iterator(slots_.data() + pos, slotsEnd()), true};
    }

    V &operator[](u64 key) { return emplace(key).first->second; }

    /** Erase by key; returns the number of entries removed (0 or 1). */
    size_t
    erase(u64 key)
    {
        size_t pos = findSlot(key);
        if (pos == kNotFound)
            return 0;
        // Backward-shift deletion: pull every displaced follower of the
        // probe chain one hole back, so lookups never need tombstones.
        size_t hole = pos;
        for (size_t next = (hole + 1) & mask_; slots_[next].used;
             next = (next + 1) & mask_) {
            const size_t home =
                static_cast<size_t>(
                    detail::flatHash(slots_[next].kv.first)) &
                mask_;
            // `next` may fill the hole iff its home slot does not lie
            // in the cyclic range (hole, next] — otherwise moving it
            // would place it before its home and break its own chain.
            if (((next - home) & mask_) >= ((next - hole) & mask_)) {
                slots_[hole].kv = std::move(slots_[next].kv);
                hole = next;
            }
        }
        slots_[hole].kv = value_type();
        slots_[hole].used = false;
        --size_;
        return 1;
    }

    void
    clear()
    {
        slots_.clear();
        mask_ = 0;
        size_ = 0;
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    /** Allocated slot count (load-factor observability). */
    u64 capacity() const { return slots_.size(); }

    iterator begin() { return iterator(slots_.data(), slotsEnd()); }
    iterator end() { return iterator(slotsEnd(), slotsEnd()); }
    const_iterator
    begin() const
    {
        return const_iterator(slots_.data(), slotsEnd());
    }
    const_iterator
    end() const
    {
        return const_iterator(slotsEnd(), slotsEnd());
    }

  private:
    static constexpr size_t kNotFound = static_cast<size_t>(-1);

    Slot *slotsEnd() { return slots_.data() + slots_.size(); }
    const Slot *
    slotsEnd() const
    {
        return slots_.data() + slots_.size();
    }

    size_t
    findSlot(u64 key) const
    {
        if (slots_.empty())
            return kNotFound;
        size_t pos = static_cast<size_t>(detail::flatHash(key)) & mask_;
        while (slots_[pos].used) {
            if (slots_[pos].kv.first == key)
                return pos;
            pos = (pos + 1) & mask_;
        }
        return kNotFound;
    }

    void
    growIfNeeded()
    {
        if (slots_.empty()) {
            rehash(16);
        } else if (size_ + 1 > slots_.size() - slots_.size() / 8) {
            rehash(slots_.size() * 2);
        }
    }

    void
    rehash(u64 new_capacity)
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(static_cast<size_t>(new_capacity), Slot{});
        mask_ = static_cast<size_t>(new_capacity - 1);
        for (Slot &slot : old) {
            if (!slot.used)
                continue;
            size_t pos =
                static_cast<size_t>(detail::flatHash(slot.kv.first)) &
                mask_;
            while (slots_[pos].used)
                pos = (pos + 1) & mask_;
            slots_[pos].kv = std::move(slot.kv);
            slots_[pos].used = true;
        }
    }

    std::vector<Slot> slots_;
    size_t mask_ = 0;
    size_t size_ = 0;
};

/** Open-addressing hash set of u64 keys; a FlatMap with empty values. */
class FlatSet
{
  public:
    /** Insert @p key; returns true when it was not already present. */
    bool insert(u64 key) { return map_.emplace(key).second; }
    size_t count(u64 key) const { return map_.count(key); }
    size_t erase(u64 key) { return map_.erase(key); }
    void reserve(u64 n) { map_.reserve(n); }
    void clear() { map_.clear(); }
    size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }
    u64 capacity() const { return map_.capacity(); }

  private:
    struct Empty
    {
    };

    FlatMap<Empty> map_;
};

} // namespace cop

#endif // COP_COMMON_FLAT_MAP_HPP
