/**
 * @file
 * Bit-level utilities: single-bit access over byte buffers (LSB-first
 * addressing) and sequential bit-stream reader/writer used by every
 * compression codec and ECC code in the repository.
 *
 * Bit addressing convention: bit index i lives in byte i / 8, at position
 * i % 8 counted from the least-significant bit. All multi-bit fields are
 * written least-significant-bit first. The convention is normative for the
 * on-"DRAM" formats described in DESIGN.md section 4.
 */

#ifndef COP_COMMON_BITS_HPP
#define COP_COMMON_BITS_HPP

#include <bit>
#include <cstring>
#include <span>

#include "common/types.hpp"

namespace cop {

/** Read bit @p idx (LSB-first) from a byte buffer. */
inline bool
getBit(std::span<const u8> buf, unsigned idx)
{
    return (buf[idx / 8] >> (idx % 8)) & 1u;
}

/** Set bit @p idx (LSB-first) in a byte buffer to @p value. */
inline void
setBit(std::span<u8> buf, unsigned idx, bool value)
{
    const u8 mask = static_cast<u8>(1u << (idx % 8));
    if (value)
        buf[idx / 8] |= mask;
    else
        buf[idx / 8] &= static_cast<u8>(~mask);
}

/** Flip bit @p idx (LSB-first) in a byte buffer. */
inline void
flipBit(std::span<u8> buf, unsigned idx)
{
    buf[idx / 8] ^= static_cast<u8>(1u << (idx % 8));
}

/** Extract @p count (<= 64) bits starting at bit @p pos, LSB-first. */
inline u64
getBits(std::span<const u8> buf, unsigned pos, unsigned count)
{
    u64 value = 0;
    for (unsigned i = 0; i < count; ++i)
        value |= static_cast<u64>(getBit(buf, pos + i)) << i;
    return value;
}

/** Deposit the low @p count (<= 64) bits of @p value at bit @p pos. */
inline void
setBits(std::span<u8> buf, unsigned pos, unsigned count, u64 value)
{
    for (unsigned i = 0; i < count; ++i)
        setBit(buf, pos + i, (value >> i) & 1u);
}

/**
 * Copy @p count bits from @p src starting at bit @p src_pos into @p dst
 * starting at bit @p dst_pos (LSB-first addressing on both sides).
 */
inline void
copyBits(std::span<const u8> src, unsigned src_pos, std::span<u8> dst,
         unsigned dst_pos, unsigned count)
{
    while (count > 0) {
        const unsigned chunk = count < 64 ? count : 64;
        setBits(dst, dst_pos, chunk, getBits(src, src_pos, chunk));
        src_pos += chunk;
        dst_pos += chunk;
        count -= chunk;
    }
}

/** Parity (XOR of all bits) of a 64-bit word. */
inline bool
parity64(u64 v)
{
    return std::popcount(v) & 1u;
}

/**
 * Sequential bit writer over a caller-owned byte buffer. The buffer must be
 * zero-initialised by the caller; the writer only ORs bits in. Fixed-size
 * codec outputs (e.g. a 60-byte compressed payload) use this to assemble
 * their bit streams.
 */
class BitWriter
{
  public:
    explicit BitWriter(std::span<u8> buf) : buf_(buf), pos_(0) {}

    /** Append the low @p count bits of @p value. */
    void
    write(u64 value, unsigned count)
    {
        COP_ASSERT(pos_ + count <= buf_.size() * 8);
        setBits(buf_, pos_, count, value);
        pos_ += count;
    }

    /** Bits written so far. */
    unsigned bitPos() const { return pos_; }

    /** Remaining capacity in bits. */
    unsigned
    bitsLeft() const
    {
        return static_cast<unsigned>(buf_.size() * 8) - pos_;
    }

  private:
    std::span<u8> buf_;
    unsigned pos_;
};

/**
 * Sequential bit reader over a byte buffer; the mirror of BitWriter.
 */
class BitReader
{
  public:
    explicit BitReader(std::span<const u8> buf) : buf_(buf), pos_(0) {}

    /** Consume and return @p count bits. */
    u64
    read(unsigned count)
    {
        COP_ASSERT(pos_ + count <= buf_.size() * 8);
        const u64 value = getBits(buf_, pos_, count);
        pos_ += count;
        return value;
    }

    /** Bits consumed so far. */
    unsigned bitPos() const { return pos_; }

    /** Bits remaining in the underlying buffer. */
    unsigned
    bitsLeft() const
    {
        return static_cast<unsigned>(buf_.size() * 8) - pos_;
    }

  private:
    std::span<const u8> buf_;
    unsigned pos_;
};

} // namespace cop

#endif // COP_COMMON_BITS_HPP
