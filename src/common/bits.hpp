/**
 * @file
 * Bit-level utilities: single-bit access over byte buffers (LSB-first
 * addressing) and sequential bit-stream reader/writer used by every
 * compression codec and ECC code in the repository.
 *
 * Bit addressing convention: bit index i lives in byte i / 8, at position
 * i % 8 counted from the least-significant bit. All multi-bit fields are
 * written least-significant-bit first. The convention is normative for the
 * on-"DRAM" formats described in DESIGN.md section 4.
 *
 * The multi-bit kernels (getBits/setBits/copyBits) are word-wise: on a
 * little-endian target the LSB-first bit order coincides with the memory
 * order of a u64, so a field is one unaligned load, a shift and a mask
 * instead of a bit-per-iteration loop. The original bit-serial versions
 * are retained in namespace bitref as the behavioural reference — the
 * randomized equivalence suite (tests/bits_kernel_test.cpp) pits the two
 * against each other, and big-endian builds fall back to them.
 */

#ifndef COP_COMMON_BITS_HPP
#define COP_COMMON_BITS_HPP

#include <bit>
#include <cstring>
#include <span>

#include "common/types.hpp"

namespace cop {

/** Read bit @p idx (LSB-first) from a byte buffer. */
inline bool
getBit(std::span<const u8> buf, unsigned idx)
{
    return (buf[idx / 8] >> (idx % 8)) & 1u;
}

/** Set bit @p idx (LSB-first) in a byte buffer to @p value. */
inline void
setBit(std::span<u8> buf, unsigned idx, bool value)
{
    const u8 mask = static_cast<u8>(1u << (idx % 8));
    if (value)
        buf[idx / 8] |= mask;
    else
        buf[idx / 8] &= static_cast<u8>(~mask);
}

/** Flip bit @p idx (LSB-first) in a byte buffer. */
inline void
flipBit(std::span<u8> buf, unsigned idx)
{
    buf[idx / 8] ^= static_cast<u8>(1u << (idx % 8));
}

/**
 * Reference bit-serial implementations. Normative for the bit addressing
 * convention; the word-wise kernels below must match them bit for bit
 * (including the 64-bit chunking order of copyBits, which is observable
 * when source and destination ranges overlap).
 */
namespace bitref {

inline u64
getBits(std::span<const u8> buf, unsigned pos, unsigned count)
{
    u64 value = 0;
    for (unsigned i = 0; i < count; ++i)
        value |= static_cast<u64>(getBit(buf, pos + i)) << i;
    return value;
}

inline void
setBits(std::span<u8> buf, unsigned pos, unsigned count, u64 value)
{
    for (unsigned i = 0; i < count; ++i)
        setBit(buf, pos + i, (value >> i) & 1u);
}

inline void
copyBits(std::span<const u8> src, unsigned src_pos, std::span<u8> dst,
         unsigned dst_pos, unsigned count)
{
    while (count > 0) {
        const unsigned chunk = count < 64 ? count : 64;
        setBits(dst, dst_pos, chunk, getBits(src, src_pos, chunk));
        src_pos += chunk;
        dst_pos += chunk;
        count -= chunk;
    }
}

} // namespace bitref

/** Extract @p count (<= 64) bits starting at bit @p pos, LSB-first. */
inline u64
getBits(std::span<const u8> buf, unsigned pos, unsigned count)
{
    if constexpr (std::endian::native != std::endian::little)
        return bitref::getBits(buf, pos, count);
    if (count == 0)
        return 0;
    const unsigned byte = pos / 8;
    const unsigned off = pos % 8;
    // Bytes the field spans: 1..9 (9 only when off > 0 and count > 56).
    const unsigned need = (off + count + 7) / 8;
    u64 lo = 0;
    std::memcpy(&lo, buf.data() + byte, need < 8 ? need : 8);
    u64 value = lo >> off;
    if (need > 8)
        value |= static_cast<u64>(buf[byte + 8]) << (64 - off);
    return count == 64 ? value : (value & ((1ULL << count) - 1));
}

/** Deposit the low @p count (<= 64) bits of @p value at bit @p pos. */
inline void
setBits(std::span<u8> buf, unsigned pos, unsigned count, u64 value)
{
    if constexpr (std::endian::native != std::endian::little) {
        bitref::setBits(buf, pos, count, value);
        return;
    }
    if (count == 0)
        return;
    if (count < 64)
        value &= (1ULL << count) - 1;
    const unsigned byte = pos / 8;
    const unsigned off = pos % 8;
    // Read-modify-write the up-to-8 bytes holding the low part of the
    // field, then patch the at-most-7 spill bits in the ninth byte.
    const unsigned lo_bits = count < 64 - off ? count : 64 - off;
    const unsigned lo_bytes = (off + lo_bits + 7) / 8;
    u64 word = 0;
    std::memcpy(&word, buf.data() + byte, lo_bytes);
    const u64 lo_mask =
        (lo_bits == 64 ? ~0ULL : ((1ULL << lo_bits) - 1)) << off;
    word = (word & ~lo_mask) | ((value << off) & lo_mask);
    std::memcpy(buf.data() + byte, &word, lo_bytes);
    if (lo_bits < count) {
        const unsigned hi_bits = count - lo_bits;
        const u8 hi_mask = static_cast<u8>((1u << hi_bits) - 1);
        buf[byte + 8] = static_cast<u8>(
            (buf[byte + 8] & ~hi_mask) |
            (static_cast<u8>(value >> lo_bits) & hi_mask));
    }
}

/**
 * Copy @p count bits from @p src starting at bit @p src_pos into @p dst
 * starting at bit @p dst_pos (LSB-first addressing on both sides).
 *
 * Fast paths: byte-aligned non-overlapping copies become one memcpy plus
 * a bit tail; everything else moves 64-bit chunks through the word-wise
 * getBits/setBits. Chunking order matches bitref::copyBits exactly, so
 * overlapping ranges behave identically to the reference.
 */
inline void
copyBits(std::span<const u8> src, unsigned src_pos, std::span<u8> dst,
         unsigned dst_pos, unsigned count)
{
    if (src_pos % 8 == 0 && dst_pos % 8 == 0 && count >= 8) {
        const u8 *s = src.data() + src_pos / 8;
        u8 *d = dst.data() + dst_pos / 8;
        const unsigned span_bytes = (count + 7) / 8;
        if (d + span_bytes <= s || s + span_bytes <= d) {
            std::memcpy(d, s, count / 8);
            const unsigned tail = count % 8;
            if (tail > 0) {
                const unsigned done = count - tail;
                setBits(dst, dst_pos + done, tail,
                        getBits(src, src_pos + done, tail));
            }
            return;
        }
    }
    while (count > 0) {
        const unsigned chunk = count < 64 ? count : 64;
        setBits(dst, dst_pos, chunk, getBits(src, src_pos, chunk));
        src_pos += chunk;
        dst_pos += chunk;
        count -= chunk;
    }
}

/** Parity (XOR of all bits) of a 64-bit word. */
inline bool
parity64(u64 v)
{
    return std::popcount(v) & 1u;
}

/**
 * Sequential bit writer over a caller-owned byte buffer. The buffer must be
 * zero-initialised by the caller; the writer only ORs bits in. Fixed-size
 * codec outputs (e.g. a 60-byte compressed payload) use this to assemble
 * their bit streams.
 */
class BitWriter
{
  public:
    explicit BitWriter(std::span<u8> buf) : buf_(buf), pos_(0) {}

    /** Append the low @p count bits of @p value. */
    void
    write(u64 value, unsigned count)
    {
        COP_ASSERT(pos_ + count <= buf_.size() * 8);
        setBits(buf_, pos_, count, value);
        pos_ += count;
    }

    /** Bits written so far. */
    unsigned bitPos() const { return pos_; }

    /** Remaining capacity in bits. */
    unsigned
    bitsLeft() const
    {
        return static_cast<unsigned>(buf_.size() * 8) - pos_;
    }

  private:
    std::span<u8> buf_;
    unsigned pos_;
};

/**
 * Sequential bit reader over a byte buffer; the mirror of BitWriter.
 */
class BitReader
{
  public:
    explicit BitReader(std::span<const u8> buf) : buf_(buf), pos_(0) {}

    /** Consume and return @p count bits. */
    u64
    read(unsigned count)
    {
        COP_ASSERT(pos_ + count <= buf_.size() * 8);
        const u64 value = getBits(buf_, pos_, count);
        pos_ += count;
        return value;
    }

    /** Bits consumed so far. */
    unsigned bitPos() const { return pos_; }

    /** Bits remaining in the underlying buffer. */
    unsigned
    bitsLeft() const
    {
        return static_cast<unsigned>(buf_.size() * 8) - pos_;
    }

  private:
    std::span<const u8> buf_;
    unsigned pos_;
};

} // namespace cop

#endif // COP_COMMON_BITS_HPP
