/**
 * @file
 * Strict numeric parsing for user-supplied configuration (environment
 * variables and command-line arguments). The raw `strtoull` idiom the
 * tools used before silently turned a typo'd value into 0 — and a
 * 0-epoch simulation prints a perfectly formatted table of garbage.
 * These helpers insist on a full-string parse and fail loudly via
 * COP_FATAL, naming the offending option.
 */

#ifndef COP_COMMON_PARSE_HPP
#define COP_COMMON_PARSE_HPP

#include <cerrno>
#include <cstdlib>

#include "common/types.hpp"

namespace cop {

/**
 * Parse @p text as an unsigned decimal integer, allowing zero.
 * Fatal (user error) on empty input, trailing junk, or overflow.
 *
 * @param text  the string to parse (must be non-null);
 * @param what  what is being parsed, for the error message
 *              (e.g. "COP_BENCH_EPOCHS" or "--epochs").
 */
inline u64
parseU64(const char *text, const char *what)
{
    if (text == nullptr || *text == '\0')
        COP_FATAL(std::string(what) + ": empty value, expected a number");
    // strtoull alone is too lax: it skips leading whitespace and wraps
    // negative input around, so insist the string starts with a digit.
    if (text[0] < '0' || text[0] > '9')
        COP_FATAL(std::string(what) + ": '" + text +
                  "' is not a valid number");
    char *end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        COP_FATAL(std::string(what) + ": '" + text +
                  "' is not a valid number");
    if (errno == ERANGE)
        COP_FATAL(std::string(what) + ": '" + text + "' is out of range");
    return static_cast<u64>(value);
}

/**
 * Parse @p text as a positive (nonzero) decimal integer. Use for
 * counts where 0 would silently turn the run into a no-op (epochs,
 * trials, job counts).
 */
inline u64
parsePositiveU64(const char *text, const char *what)
{
    const u64 value = parseU64(text, what);
    if (value == 0)
        COP_FATAL(std::string(what) + ": must be nonzero");
    return value;
}

} // namespace cop

#endif // COP_COMMON_PARSE_HPP
