/**
 * @file
 * CacheBlock: the 64-byte value type every layer of the COP stack operates
 * on — compression codecs, ECC codes, the DRAM image, caches and the fault
 * injector all move CacheBlocks around.
 */

#ifndef COP_COMMON_CACHE_BLOCK_HPP
#define COP_COMMON_CACHE_BLOCK_HPP

#include <array>
#include <cstring>
#include <span>
#include <string>

#include "common/bits.hpp"
#include "common/types.hpp"

namespace cop {

/**
 * A 64-byte memory block. Plain value semantics; cheap to copy. Word
 * accessors use the native little-endian layout, matching how a memory
 * controller would slice a burst into words.
 */
class CacheBlock
{
  public:
    /** Zero-filled block. */
    CacheBlock() : bytes_{} {}

    /** Block initialised from exactly 64 bytes. */
    explicit CacheBlock(std::span<const u8> src)
        : bytes_{}
    {
        COP_ASSERT(src.size() == kBlockBytes);
        std::memcpy(bytes_.data(), src.data(), kBlockBytes);
    }

    /** Block with every byte set to @p fill. */
    static CacheBlock
    filled(u8 fill)
    {
        CacheBlock b;
        b.bytes_.fill(fill);
        return b;
    }

    std::span<u8> bytes() { return bytes_; }
    std::span<const u8> bytes() const { return bytes_; }
    u8 *data() { return bytes_.data(); }
    const u8 *data() const { return bytes_.data(); }

    u8 byte(unsigned i) const { return bytes_[i]; }
    void setByte(unsigned i, u8 v) { bytes_[i] = v; }

    /** Read the i-th 16-bit little-endian word (i in [0, 32)). */
    u16
    word16(unsigned i) const
    {
        u16 v;
        std::memcpy(&v, bytes_.data() + i * 2, 2);
        return v;
    }

    void
    setWord16(unsigned i, u16 v)
    {
        std::memcpy(bytes_.data() + i * 2, &v, 2);
    }

    /** Read the i-th 32-bit little-endian word (i in [0, 16)). */
    u32
    word32(unsigned i) const
    {
        u32 v;
        std::memcpy(&v, bytes_.data() + i * 4, 4);
        return v;
    }

    void
    setWord32(unsigned i, u32 v)
    {
        std::memcpy(bytes_.data() + i * 4, &v, 4);
    }

    /** Read the i-th 64-bit little-endian word (i in [0, 8)). */
    u64
    word64(unsigned i) const
    {
        u64 v;
        std::memcpy(&v, bytes_.data() + i * 8, 8);
        return v;
    }

    void
    setWord64(unsigned i, u64 v)
    {
        std::memcpy(bytes_.data() + i * 8, &v, 8);
    }

    bool getBit(unsigned idx) const { return cop::getBit(bytes_, idx); }
    void setBitAt(unsigned idx, bool v) { cop::setBit(bytes_, idx, v); }

    /** Flip a single bit — the fault injector's primitive. */
    void flipBit(unsigned idx) { cop::flipBit(bytes_, idx); }

    /** XOR another block into this one (used by the static hash). */
    CacheBlock &
    operator^=(const CacheBlock &other)
    {
        for (unsigned i = 0; i < kBlockBytes; ++i)
            bytes_[i] ^= other.bytes_[i];
        return *this;
    }

    bool
    operator==(const CacheBlock &other) const
    {
        return bytes_ == other.bytes_;
    }

    bool isZero() const { return *this == CacheBlock(); }

    /** Hex dump, 16 bytes per line, for diagnostics. */
    std::string toHex() const;

  private:
    alignas(8) std::array<u8, kBlockBytes> bytes_;
};

} // namespace cop

#endif // COP_COMMON_CACHE_BLOCK_HPP
