#include "common/cache_block.hpp"

#include <cstdio>

namespace cop {

std::string
CacheBlock::toHex() const
{
    std::string out;
    out.reserve(kBlockBytes * 3 + 8);
    char tmp[4];
    for (unsigned i = 0; i < kBlockBytes; ++i) {
        std::snprintf(tmp, sizeof(tmp), "%02x", bytes_[i]);
        out += tmp;
        out += ((i + 1) % 16 == 0) ? '\n' : ' ';
    }
    return out;
}

} // namespace cop
