/**
 * @file
 * Tree pseudo-LRU replacement state for small set-associative software
 * caches (the warm stores and the encode memo). Three bits describe a
 * 4-way set: the root picks the stale pair, one bit per pair picks the
 * stale way inside it. touch() repoints every bit on the accessed
 * way's path away from it — the classic hardware PLRU update — so the
 * victim is always a way not on the most recent access path. Cheap
 * (one byte per set, no timestamps) and fully deterministic.
 */

#ifndef COP_COMMON_PLRU_HPP
#define COP_COMMON_PLRU_HPP

#include "common/types.hpp"

namespace cop {

/** 3-bit tree pseudo-LRU over a 4-way set. */
struct Plru4
{
    /** bit0: root (0 = left pair stale), bit1/bit2: stale way in pair. */
    u8 bits = 0;

    /** Mark @p way (0..3) most recently used. */
    void
    touch(unsigned way)
    {
        if (way < 2) {
            bits |= 1;                       // right pair is now staler
            bits = (bits & ~u8{2}) | u8((way == 0 ? 1 : 0) << 1);
        } else {
            bits &= ~u8{1};                  // left pair is now staler
            bits = (bits & ~u8{4}) | u8((way == 2 ? 1 : 0) << 2);
        }
    }

    /** The way to evict next. */
    unsigned
    victim() const
    {
        if ((bits & 1) == 0)
            return (bits & 2) == 0 ? 0 : 1;
        return (bits & 4) == 0 ? 2 : 3;
    }
};

} // namespace cop

#endif // COP_COMMON_PLRU_HPP
