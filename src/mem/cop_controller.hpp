/**
 * @file
 * CopController: main memory protected by COP (paper Sections 3.1-3.2).
 * Writebacks are compressed and protected when possible; incompressible
 * blocks are stored raw; incompressible aliases are rejected and stay
 * pinned in the LLC. Reads run the Figure 2 decoder with the paper's
 * 4-cycle decode/decompress latency adder.
 */

#ifndef COP_MEM_COP_CONTROLLER_HPP
#define COP_MEM_COP_CONTROLLER_HPP

#include "core/codec.hpp"
#include "core/encode_memo.hpp"
#include "mem/controller.hpp"

namespace cop {

/**
 * Total bits a shortened bus transfer of this encode result must carry:
 * the 2-bit scheme tag, the block's minimal in-budget compressed stream,
 * and the inline SECDED check bits. Anything not Protected (or encoded
 * without transfer sizing) needs the full block.
 */
inline unsigned
copTransferBits(const CopEncodeResult &enc, const CopConfig &cfg)
{
    if (enc.status == EncodeStatus::Protected && enc.minCompressedBits >= 0)
        return kSchemeTagBits +
               static_cast<unsigned>(enc.minCompressedBits) +
               8 * cfg.checkBytes;
    return kBlockBits;
}

/** COP memory controller. */
class CopController : public MemoryController
{
  public:
    /**
     * @param memo optional encode memo / perf-counter sink, owned by the
     *        caller (the System). May be null (plain uncounted encodes).
     */
    CopController(DramSystem &dram, ContentSource content,
                  const CopConfig &cfg = CopConfig::fourByte(),
                  Cycle decode_latency = 4, EncodeMemo *memo = nullptr);

    const char *name() const override
    {
        return codec_.config().checkBytes == 4 ? "COP-4B" : "COP-8B";
    }

    MemWriteResult writeback(Addr addr, const CacheBlock &data, Cycle now,
                             bool was_uncompressed) override;
    bool wouldAliasReject(const CacheBlock &data) const override;

    void
    enableBandwidthMode(unsigned beat_floor) override
    {
        MemoryController::enableBandwidthMode(beat_floor);
        codec_.enableTransferSizing();
    }

    const CopCodec &codec() const { return codec_; }

    void
    attachWarmDecode(const WarmDecodeStore *warm) override
    {
        warmDecode_ = warm;
    }

  protected:
    MemReadResult readImpl(Addr addr, Cycle now) override;

    bool
    scrubResetsClock(const MemReadResult &r) const override
    {
        // Raw (incompressible) COP blocks carry no code: the scrubber
        // can read them but cannot verify or repair anything.
        return !r.wasUncompressed;
    }

    VulnClass
    protectedClass() const
    {
        return codec_.config().checkBytes == 4 ? VulnClass::CopProtected4
                                               : VulnClass::CopProtected8;
    }

    /** codec_.encode through the memo (when attached). */
    CopEncodeResult
    encodeBlock(const CacheBlock &data) const
    {
        if (memo_ != nullptr)
            return memo_->encode(codec_, data);
        return codec_.encode(data);
    }

    CopCodec codec_;
    Cycle decodeLatency_;
    EncodeMemo *memo_;
    const WarmDecodeStore *warmDecode_ = nullptr;
    /** Inline-decode result holder for warmOrDecode. */
    mutable CopDecodeResult decodeScratch_;
};

} // namespace cop

#endif // COP_MEM_COP_CONTROLLER_HPP
