#include "mem/cop_controller.hpp"

namespace cop {

CopController::CopController(DramSystem &dram, ContentSource content,
                             const CopConfig &cfg, Cycle decode_latency,
                             EncodeMemo *memo)
    : MemoryController(dram, std::move(content)), codec_(cfg),
      decodeLatency_(decode_latency), memo_(memo)
{
}

MemReadResult
CopController::readImpl(Addr addr, Cycle now)
{
    MemReadResult result;

    // First touch: the block was written to DRAM before the trace window
    // through the same encoder.
    auto it = image_.find(addr);
    if (it == image_.end()) {
        const CacheBlock &data = initialContent(addr);
        const CopEncodeResult enc = encodeBlock(data);
        if (enc.status == EncodeStatus::AliasRejected) {
            // Incompressible alias: it can never have reached DRAM; it
            // materialises pinned in the LLC (Section 3.1). Exceedingly
            // rare — correctness machinery only.
            result.aliasPinned = true;
            result.data = data;
            result.complete = dramRead(addr, now) + decodeLatency_;
            result.dramAccesses = 1;
            return result;
        }
        noteTransferBits(addr, copTransferBits(enc, codec_.config()));
        setImage(addr, enc.stored); // through setImage: stuck bits apply
        if (!faultInjectionEnabled()) {
            // The image was created by the line above, so nothing can
            // have corrupted it before this fill: decoding it is the
            // codec roundtrip identity (decode(encode(x)) == (x, clean
            // flags), the invariant the codec tests pin down). Serve
            // the fill from the content directly and skip the decode.
            const bool compressed = enc.status == EncodeStatus::Protected;
            result.complete = dramRead(addr, now) + decodeLatency_;
            result.dramAccesses = 1;
            result.data = data;
            result.wasUncompressed = !compressed;
            logVuln(compressed ? protectedClass() : VulnClass::Unprotected,
                    addr, now);
            return result;
        }
        it = image_.find(addr);
    }

    const Cycle data_done = dramRead(addr, now);
    const CopDecodeResult &dec =
        warmOrDecode(warmDecode_, codec_, it->second, decodeScratch_);
    result.complete = data_done + decodeLatency_;
    result.dramAccesses = 1;
    result.data = dec.data;
    result.wasUncompressed = !dec.compressed;
    result.detectedUncorrectable = dec.detectedUncorrectable;
    result.correctedError = dec.correctedWords > 0;
    logVuln(dec.compressed ? protectedClass() : VulnClass::Unprotected,
            addr, now);
    return result;
}

MemWriteResult
CopController::writeback(Addr addr, const CacheBlock &data, Cycle now,
                         bool was_uncompressed)
{
    (void)was_uncompressed;
    MemWriteResult result;

    const CopEncodeResult enc = encodeBlock(data);
    switch (enc.status) {
      case EncodeStatus::AliasRejected:
        ++stats_.aliasRejects;
        result.aliasRejected = true;
        return result;
      case EncodeStatus::Protected:
        ++stats_.protectedWrites;
        ++stats_.schemeWrites[static_cast<unsigned>(enc.scheme)];
        break;
      case EncodeStatus::Unprotected:
        ++stats_.unprotectedWrites;
        break;
    }

    noteTransferBits(addr, copTransferBits(enc, codec_.config()));
    result.complete = dramWrite(addr, now);
    result.dramAccesses = 1;
    setImage(addr, enc.stored);
    noteWrite(addr, now);
    return result;
}

bool
CopController::wouldAliasReject(const CacheBlock &data) const
{
    // With a caching memo attached, a full (memoized) encode is the
    // cheaper test: the eviction that follows a "no" answer re-encodes
    // the same content and hits. AliasRejected is exactly
    // "incompressible and an alias", so the answers agree.
    if (memo_ != nullptr && memo_->capacity() > 0) {
        return memo_->encode(codec_, data).status ==
               EncodeStatus::AliasRejected;
    }
    return !codec_.compressor().compressible(data) && codec_.isAlias(data);
}

} // namespace cop
