#include "mem/coper_controller.hpp"

namespace cop {

CopErController::CopErController(DramSystem &dram, ContentSource content,
                                 Cycle decode_latency,
                                 u64 meta_cache_bytes, EncodeMemo *memo)
    : MemoryController(dram, std::move(content)), memo_(memo),
      codec_(CopConfig::fourByte()), coper_(codec_),
      meta_(meta_cache_bytes), decodeLatency_(decode_latency)
{
}

void
CopErController::registerStats(StatsRegistry &reg) const
{
    MemoryController::registerStats(reg);
    reg.gauge("coper.entry_allocs",
              [this] { return erStats_.entryAllocs; });
    reg.gauge("coper.entry_reuses",
              [this] { return erStats_.entryReuses; });
    reg.gauge("coper.entry_frees", [this] { return erStats_.entryFrees; });
    reg.gauge("coper.dealias_retries",
              [this] { return erStats_.deAliasRetries; });
    reg.gauge("coper.pointer_reads",
              [this] { return erStats_.pointerReads; });
}

void
CopErController::chargeTreeTouches(Cycle now)
{
    const EccRegion::TouchRecord &touches = region_.lastTouches();
    for (unsigned i = 0; i < touches.treeBlockReads; ++i) {
        ++stats_.metaReads;
        dramRead(memlayout::kTreeBase + (treeAddrSalt_++ % 64) *
                                            kBlockBytes,
                 now);
    }
    for (unsigned i = 0; i < touches.treeBlockWrites; ++i) {
        ++stats_.metaWrites;
        dramWrite(memlayout::kTreeBase + (treeAddrSalt_++ % 64) *
                                             kBlockBytes,
                  now);
    }
}

Cycle
CopErController::entryAccess(u32 entry_index, Cycle now, bool dirty)
{
    const Addr addr = entryBlockAddr(entry_index);
    const MetaCache::Access acc = meta_.access(addr, dirty);
    if (acc.hit) {
        ++stats_.metaCacheHits;
        return now;
    }
    ++stats_.metaCacheMisses;
    if (acc.evictedDirty) {
        ++stats_.metaWrites;
        dramWrite(acc.evictedAddr, now);
    }
    ++stats_.metaReads;
    return dramRead(addr, now);
}

u32
CopErController::pointerOf(const CacheBlock &stored) const
{
    return coper_.extractPointer(stored).entryIndex;
}

void
CopErController::maybeReleaseEntryBlock(u32 index)
{
    if (!adaptiveMode_)
        return;
    const u64 block = index / EccRegion::kEntriesPerBlock;
    if (region_.validInBlock(block) == 0 &&
        releasedEntryBlocks_.insert(block))
        noteSlotReclaimed();
}

void
CopErController::maybeReclaimEntryBlock(u32 index, Cycle now)
{
    if (!adaptiveMode_)
        return;
    const u64 block = index / EccRegion::kEntriesPerBlock;
    if (releasedEntryBlocks_.erase(block) != 0) {
        // Demotion: the entry block must come back from the data
        // free-list, and the data victim living in the reclaimed slot
        // is evicted through the writeback machinery — one read out of
        // the slot, one write to its new home — before the entry lands.
        noteDemotion();
        dramRead(entryBlockAddr(index), now);
        dramWrite(entryBlockAddr(index), now);
    }
}

CacheBlock
CopErController::storeIncompressible(Addr addr, const CacheBlock &data,
                                     Cycle now, bool reuse_existing,
                                     u32 reuse_index)
{
    everIncompressible_.insert(addr);
    u32 index;
    if (reuse_existing) {
        ++erStats_.entryReuses;
        index = reuse_index;
    } else {
        ++erStats_.entryAllocs;
        index = region_.allocate();
        chargeTreeTouches(now);
        maybeReclaimEntryBlock(index, now);
    }

    CoperEncodeResult enc = coper_.encodeIncompressible(data, index);
    // De-aliasing by entry re-selection (Section 3.3): if the pointer
    // bits happen to make the stored image look compressed, pick a
    // different entry. The alias probability is ~2e-7 per attempt, so
    // this loop essentially never iterates.
    unsigned attempts = 0;
    while (!enc.aliasFree && attempts < 64) {
        ++attempts;
        ++erStats_.deAliasRetries;
        const u32 next = region_.allocate();
        chargeTreeTouches(now);
        maybeReclaimEntryBlock(next, now);
        region_.free(index);
        maybeReleaseEntryBlock(index);
        index = next;
        enc = coper_.encodeIncompressible(data, index);
    }
    if (!enc.aliasFree)
        COP_PANIC("COP-ER failed to de-alias a block after 64 entries");

    EccEntry &entry = region_.entryAt(index);
    entry.valid = true;
    entry.displaced = enc.displaced;
    entry.check = enc.check;
    entryAccess(index, now, true);
    return enc.stored;
}

unsigned
CopErController::storedBits(Addr addr) const
{
    const auto it = image_.find(addr);
    if (it == image_.end())
        return kBlockBits;
    // 512 in-place bits, plus the ECC-region entry for incompressible
    // blocks (34 displaced + 11 check + 1 valid = 46).
    return codec_.decode(it->second).compressed ? kBlockBits
                                                : kBlockBits + 46;
}

void
CopErController::flipStoredBit(Addr addr, unsigned bit)
{
    if (bit < kBlockBits) {
        MemoryController::flipStoredBit(addr, bit);
        return;
    }
    COP_ASSERT(bit < kBlockBits + 46);
    const CacheBlock *img = imageOf(addr);
    COP_ASSERT(img != nullptr);
    // Locate the entry through the (SEC-protected) embedded pointer.
    // If earlier faults already destroyed the pointer the entry is
    // unlocatable — the strike lands in unreferenced storage.
    const PointerDecodeResult ptr = coper_.extractPointer(*img);
    if (ptr.ecc.uncorrectable() || !region_.valid(ptr.entryIndex))
        return;
    const unsigned b = bit - kBlockBits;
    EccEntry &entry = region_.entryAt(ptr.entryIndex);
    if (b < 34)
        entry.displaced ^= (1ULL << b);
    else if (b < 45)
        entry.check = static_cast<u16>(entry.check ^ (1u << (b - 34)));
    else
        region_.corruptValid(ptr.entryIndex);
}

MemReadResult
CopErController::readImpl(Addr addr, Cycle now)
{
    // First touch: initial memory was stored through the same encoder.
    if (image_.find(addr) == image_.end()) {
        const CacheBlock &data = initialContent(addr);
        const CopEncodeResult enc = encodeBlock(data);
        // Incompressible blocks ship raw (pointer in place of check
        // bits): copTransferBits yields a full block and clears any
        // stale shortening for the address.
        noteTransferBits(addr, copTransferBits(enc, codec_.config()));
        if (enc.status == EncodeStatus::Protected) {
            setImage(addr, enc.stored);
            if (!faultInjectionEnabled()) {
                // The image was created by the line above, so nothing
                // can have corrupted it before this fill: decoding it
                // is the codec roundtrip identity (decode(encode(x)) ==
                // (x, clean flags)). Serve the fill from the content
                // directly and skip the decode.
                MemReadResult result;
                result.complete = dramRead(addr, now) + decodeLatency_;
                result.dramAccesses = 1;
                result.data = data;
                logVuln(VulnClass::CopProtected4, addr, now);
                return result;
            }
        } else {
            setImage(addr, storeIncompressible(addr, data, now, false, 0));
        }
    }

    MemReadResult result;
    const CacheBlock &stored = *imageOf(addr);
    const Cycle data_done = dramRead(addr, now);
    result.dramAccesses = 1;

    const CopDecodeResult &dec =
        warmOrDecode(warmDecode_, codec_, stored, decodeScratch_);
    if (dec.compressed) {
        result.complete = data_done + decodeLatency_;
        result.data = dec.data;
        result.detectedUncorrectable = dec.detectedUncorrectable;
        result.correctedError = dec.correctedWords > 0;
        logVuln(VulnClass::CopProtected4, addr, now);
        return result;
    }

    // Uncompressed: chase the embedded pointer to the ECC entry. The
    // entry fetch serialises behind the data (the pointer is in the
    // data), then the block is reconstructed and checked.
    result.wasUncompressed = true;
    const PointerDecodeResult ptr = coper_.extractPointer(stored);
    if (ptr.ecc.uncorrectable() || !region_.valid(ptr.entryIndex)) {
        // Pointer destroyed by a multi-bit error: detected, data lost.
        result.complete = data_done + decodeLatency_;
        result.data = dec.data;
        result.detectedUncorrectable = true;
        logVuln(VulnClass::CopErUncompressed, addr, now);
        return result;
    }
    const Cycle meta_done = entryAccess(ptr.entryIndex, data_done, false);
    ++result.dramAccesses;
    const CoperDecodeResult rec =
        coper_.reconstruct(stored, region_.entryAt(ptr.entryIndex));
    result.complete = std::max(data_done, meta_done) + decodeLatency_;
    result.data = rec.data;
    result.detectedUncorrectable = rec.blockEcc.uncorrectable();
    result.correctedError =
        rec.blockEcc.corrected() || ptr.ecc.corrected();
    logVuln(VulnClass::CopErUncompressed, addr, now);
    return result;
}

MemWriteResult
CopErController::writeback(Addr addr, const CacheBlock &data, Cycle now,
                           bool was_uncompressed)
{
    MemWriteResult result;

    // Locate any existing entry: the pointer is read back from the old
    // stored image in memory (Section 3.3: "the pointer to the ECC
    // entry is read from memory").
    u32 old_index = 0;
    bool have_old = false;
    if (was_uncompressed) {
        if (const CacheBlock *old = imageOf(addr)) {
            ++erStats_.pointerReads;
            dramRead(addr, now);
            old_index = pointerOf(*old);
            have_old = region_.valid(old_index);
        }
    }

    const CopEncodeResult enc = encodeBlock(data);
    const bool compressible = enc.status == EncodeStatus::Protected;
    // (EncodeStatus::AliasRejected also means incompressible; COP-ER
    // stores such blocks through the de-aliasing entry path.)

    // Record the new image's transfer size after the old-pointer read
    // above (which still ships at the old image's burst length) but
    // before the data write below.
    noteTransferBits(addr, copTransferBits(enc, codec_.config()));

    if (compressible) {
        ++stats_.protectedWrites;
        ++stats_.schemeWrites[static_cast<unsigned>(enc.scheme)];
        if (have_old) {
            // The block became compressible: invalidate its entry (a
            // read-modify-write of the entry block's valid bit).
            ++erStats_.entryFrees;
            region_.free(old_index);
            chargeTreeTouches(now);
            maybeReleaseEntryBlock(old_index);
            entryAccess(old_index, now, true);
        }
        setImage(addr, enc.stored);
    } else {
        ++stats_.unprotectedWrites;
        setImage(addr, storeIncompressible(addr, data, now, have_old,
                                           old_index));
    }

    result.complete = dramWrite(addr, now);
    result.dramAccesses = 1;
    noteWrite(addr, now);
    return result;
}

} // namespace cop
