#include "mem/ecc_region_controller.hpp"

#include <algorithm>

#include "core/coper_codec.hpp"

namespace cop {

EccRegionController::EccRegionController(DramSystem &dram,
                                         ContentSource content,
                                         u64 meta_cache_bytes)
    : MemoryController(dram, std::move(content)), meta_(meta_cache_bytes)
{
}

Cycle
EccRegionController::metaAccess(Addr data_addr, Cycle now, bool dirty)
{
    const Addr meta_addr = memlayout::eccRegionEntryAddr(data_addr);
    const MetaCache::Access acc = meta_.access(meta_addr, dirty);
    if (acc.hit) {
        ++stats_.metaCacheHits;
        return now; // already on chip
    }
    ++stats_.metaCacheMisses;
    if (acc.evictedDirty) {
        ++stats_.metaWrites;
        dramWrite(acc.evictedAddr, now);
    }
    ++stats_.metaReads;
    return dramRead(meta_addr, now);
}

u16 &
EccRegionController::wideCheck(Addr addr)
{
    auto it = check_.find(addr);
    if (it == check_.end()) {
        // Materialised before the first flip lands (flipStoredBit
        // materialises first), so this reflects the clean image.
        const CacheBlock *img = imageOf(addr);
        COP_ASSERT(img != nullptr);
        it = check_.emplace(addr, CoperCodec::wideCheck(*img)).first;
    }
    return it->second;
}

void
EccRegionController::flipStoredBit(Addr addr, unsigned bit)
{
    u16 &check = wideCheck(addr);
    if (bit < kBlockBits) {
        MemoryController::flipStoredBit(addr, bit);
        return;
    }
    COP_ASSERT(bit < kBlockBits + 11);
    check = static_cast<u16>(check ^ (1u << (bit - kBlockBits)));
}

MemReadResult
EccRegionController::readImpl(Addr addr, Cycle now)
{
    MemReadResult result;
    // Data and ECC reads are independent and overlap; the fill completes
    // when both are home and the wide code has been checked.
    const Cycle data_done = dramRead(addr, now);
    const Cycle meta_done = metaAccess(addr, now, false);
    result.complete = std::max(data_done, meta_done);
    result.dramAccesses = 1 + (meta_done > now ? 1 : 0);
    const CacheBlock &img =
        storedImage(addr);
    if (isFaulted(addr)) {
        CacheBlock data = img;
        const EccResult ecc = CoperCodec::wideDecode(data, wideCheck(addr));
        result.data = data;
        result.correctedError = ecc.corrected();
        result.detectedUncorrectable = ecc.uncorrectable();
    } else {
        result.data = img;
    }
    logVuln(VulnClass::WideCode, addr, now);
    return result;
}

MemWriteResult
EccRegionController::writeback(Addr addr, const CacheBlock &data,
                               Cycle now, bool was_uncompressed)
{
    (void)was_uncompressed;
    MemWriteResult result;
    result.complete = dramWrite(addr, now);
    // The entry's check bits are recomputed and merged into the cached
    // ECC block (read-modify-write; the fill is charged on a miss).
    metaAccess(addr, now, true);
    result.dramAccesses = 1;
    setImage(addr, data);
    noteWrite(addr, now);
    return result;
}

} // namespace cop
