#include "mem/ecc_region_controller.hpp"

#include <algorithm>

#include "core/coper_codec.hpp"

namespace cop {

EccRegionController::EccRegionController(DramSystem &dram,
                                         ContentSource content,
                                         u64 meta_cache_bytes)
    : MemoryController(dram, std::move(content)), meta_(meta_cache_bytes)
{
}

Cycle
EccRegionController::metaAccess(Addr data_addr, Cycle now, bool dirty)
{
    const Addr meta_addr = memlayout::eccRegionEntryAddr(data_addr);
    const MetaCache::Access acc = meta_.access(meta_addr, dirty);
    if (acc.hit) {
        ++stats_.metaCacheHits;
        return now; // already on chip
    }
    ++stats_.metaCacheMisses;
    if (acc.evictedDirty) {
        ++stats_.metaWrites;
        dramWrite(acc.evictedAddr, now);
    }
    ++stats_.metaReads;
    return dramRead(meta_addr, now);
}

void
EccRegionController::enableAdaptiveCapacity()
{
    MemoryController::enableAdaptiveCapacity();
    if (!adaptComp_)
        adaptComp_ = std::make_unique<CombinedCompressor>(4);
}

bool
EccRegionController::groupReleased(Addr data_addr) const
{
    const auto it =
        groups_.find(memlayout::eccRegionEntryAddr(data_addr));
    return it != groups_.end() && it->second.released;
}

void
EccRegionController::noteBlockContent(Addr addr, const CacheBlock &data,
                                      Cycle now)
{
    const bool comp = adaptComp_->compressible(data);
    const Addr group_addr = memlayout::eccRegionEntryAddr(addr);
    GroupState &gs = groups_[group_addr];
    const auto it = blockCompressible_.find(addr);
    if (it == blockCompressible_.end()) {
        blockCompressible_.emplace(addr, comp ? u8{1} : u8{0});
        ++gs.touched;
        if (!comp)
            ++gs.incompressible;
    } else if ((it->second != 0) != comp) {
        it->second = comp ? 1 : 0;
        if (comp) {
            COP_ASSERT(gs.incompressible > 0);
            --gs.incompressible;
        } else {
            ++gs.incompressible;
        }
    }

    if (gs.released && gs.incompressible > 0) {
        // Demotion: the group needs its region block back. The data
        // victim living in the reclaimed slot is evicted through the
        // writeback machinery — one read out of the slot, one write to
        // its new home — before the entries can land.
        gs.released = false;
        noteDemotion();
        dramRead(group_addr, now);
        dramWrite(group_addr, now);
    } else if (!gs.released && gs.touched > 0 &&
               gs.incompressible == 0) {
        // Every touched block of the group is compressible: the check
        // bits ride inline in the compression slack, and the region
        // block joins the data free-list.
        gs.released = true;
        noteSlotReclaimed();
    }
}

u16 &
EccRegionController::wideCheck(Addr addr)
{
    auto it = check_.find(addr);
    if (it == check_.end()) {
        // Materialised before the first flip lands (flipStoredBit
        // materialises first), so this reflects the clean image.
        const CacheBlock *img = imageOf(addr);
        COP_ASSERT(img != nullptr);
        it = check_.emplace(addr, CoperCodec::wideCheck(*img)).first;
    }
    return it->second;
}

void
EccRegionController::flipStoredBit(Addr addr, unsigned bit)
{
    u16 &check = wideCheck(addr);
    if (bit < kBlockBits) {
        MemoryController::flipStoredBit(addr, bit);
        return;
    }
    COP_ASSERT(bit < kBlockBits + 11);
    check = static_cast<u16>(check ^ (1u << (bit - kBlockBits)));
}

MemReadResult
EccRegionController::readImpl(Addr addr, Cycle now)
{
    MemReadResult result;
    // Adaptive mode classifies first-touch content before any timing
    // is charged (storedImage is functional-only, no DRAM traffic).
    if (adaptiveMode_ && imageOf(addr) == nullptr)
        noteBlockContent(addr, storedImage(addr), now);
    // Data and ECC reads are independent and overlap; the fill completes
    // when both are home and the wide code has been checked.
    const Cycle data_done = dramRead(addr, now);
    // A released group's check bits travel inline with the (compressed)
    // data, so the fill needs no metadata access at all.
    const Cycle meta_done = adaptiveMode_ && groupReleased(addr)
                                ? now
                                : metaAccess(addr, now, false);
    result.complete = std::max(data_done, meta_done);
    result.dramAccesses = 1 + (meta_done > now ? 1 : 0);
    const CacheBlock &img =
        storedImage(addr);
    if (isFaulted(addr)) {
        CacheBlock data = img;
        const EccResult ecc = CoperCodec::wideDecode(data, wideCheck(addr));
        result.data = data;
        result.correctedError = ecc.corrected();
        result.detectedUncorrectable = ecc.uncorrectable();
    } else {
        result.data = img;
    }
    logVuln(VulnClass::WideCode, addr, now);
    return result;
}

MemWriteResult
EccRegionController::writeback(Addr addr, const CacheBlock &data,
                               Cycle now, bool was_uncompressed)
{
    (void)was_uncompressed;
    MemWriteResult result;
    // Reclassify before charging timing: a compressibility transition
    // may demote (reclaim + victim eviction) or release the group, and
    // the metadata decision below must see the post-transition state.
    if (adaptiveMode_)
        noteBlockContent(addr, data, now);
    result.complete = dramWrite(addr, now);
    // The entry's check bits are recomputed and merged into the cached
    // ECC block (read-modify-write; the fill is charged on a miss) —
    // unless the group is released, in which case they ship inline.
    if (!(adaptiveMode_ && groupReleased(addr)))
        metaAccess(addr, now, true);
    result.dramAccesses = 1;
    setImage(addr, data);
    noteWrite(addr, now);
    return result;
}

} // namespace cop
