#include "mem/ecc_region_controller.hpp"

#include <algorithm>

namespace cop {

EccRegionController::EccRegionController(DramSystem &dram,
                                         ContentSource content,
                                         u64 meta_cache_bytes)
    : MemoryController(dram, std::move(content)), meta_(meta_cache_bytes)
{
}

Cycle
EccRegionController::metaAccess(Addr data_addr, Cycle now, bool dirty)
{
    const Addr meta_addr = memlayout::eccRegionEntryAddr(data_addr);
    const MetaCache::Access acc = meta_.access(meta_addr, dirty);
    if (acc.hit) {
        ++stats_.metaCacheHits;
        return now; // already on chip
    }
    ++stats_.metaCacheMisses;
    if (acc.evictedDirty) {
        ++stats_.metaWrites;
        dramWrite(acc.evictedAddr, now);
    }
    ++stats_.metaReads;
    return dramRead(meta_addr, now);
}

MemReadResult
EccRegionController::read(Addr addr, Cycle now)
{
    MemReadResult result;
    // Data and ECC reads are independent and overlap; the fill completes
    // when both are home and the wide code has been checked.
    const Cycle data_done = dramRead(addr, now);
    const Cycle meta_done = metaAccess(addr, now, false);
    result.complete = std::max(data_done, meta_done);
    result.dramAccesses = 1 + (meta_done > now ? 1 : 0);
    result.data =
        storedImage(addr, [](const CacheBlock &data) { return data; });
    logVuln(VulnClass::WideCode, addr, now);
    return result;
}

MemWriteResult
EccRegionController::writeback(Addr addr, const CacheBlock &data,
                               Cycle now, bool was_uncompressed)
{
    (void)was_uncompressed;
    MemWriteResult result;
    result.complete = dramWrite(addr, now);
    // The entry's check bits are recomputed and merged into the cached
    // ECC block (read-modify-write; the fill is charged on a miss).
    metaAccess(addr, now, true);
    result.dramAccesses = 1;
    setImage(addr, data);
    noteWrite(addr, now);
    return result;
}

} // namespace cop
