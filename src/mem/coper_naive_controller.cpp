#include "mem/coper_naive_controller.hpp"

#include <algorithm>

#include "core/coper_codec.hpp"
#include "mem/cop_controller.hpp"

namespace cop {

CopErNaiveController::CopErNaiveController(DramSystem &dram,
                                           ContentSource content,
                                           Cycle decode_latency,
                                           u64 meta_cache_bytes,
                                           EncodeMemo *memo)
    : MemoryController(dram, std::move(content)), memo_(memo),
      codec_(CopConfig::fourByte()), meta_(meta_cache_bytes),
      decodeLatency_(decode_latency)
{
}

Cycle
CopErNaiveController::metaAccess(Addr data_addr, Cycle now, bool dirty)
{
    const Addr meta_addr = memlayout::eccRegionEntryAddr(data_addr);
    const MetaCache::Access acc = meta_.access(meta_addr, dirty);
    if (acc.hit) {
        ++stats_.metaCacheHits;
        return now;
    }
    ++stats_.metaCacheMisses;
    if (acc.evictedDirty) {
        ++stats_.metaWrites;
        dramWrite(acc.evictedAddr, now);
    }
    ++stats_.metaReads;
    return dramRead(meta_addr, now);
}

unsigned
CopErNaiveController::storedBits(Addr addr) const
{
    const auto it = image_.find(addr);
    if (it == image_.end())
        return kBlockBits;
    return codec_.decode(it->second).compressed ? kBlockBits
                                                : kBlockBits + 11;
}

u16 &
CopErNaiveController::wideCheckOf(Addr addr)
{
    auto it = check_.find(addr);
    if (it == check_.end()) {
        // Materialised before the first flip lands, so this reflects
        // the clean image (raw blocks store application data as-is).
        const CacheBlock *img = imageOf(addr);
        COP_ASSERT(img != nullptr);
        it = check_.emplace(addr, CoperCodec::wideCheck(*img)).first;
    }
    return it->second;
}

void
CopErNaiveController::flipStoredBit(Addr addr, unsigned bit)
{
    u16 &check = wideCheckOf(addr);
    if (bit < kBlockBits) {
        MemoryController::flipStoredBit(addr, bit);
        return;
    }
    COP_ASSERT(bit < kBlockBits + 11);
    check = static_cast<u16>(check ^ (1u << (bit - kBlockBits)));
}

MemReadResult
CopErNaiveController::readImpl(Addr addr, Cycle now)
{
    MemReadResult result;

    if (image_.find(addr) == image_.end()) {
        const CacheBlock &data = initialContent(addr);
        const CopEncodeResult enc = encodeBlock(data);
        if (enc.status == EncodeStatus::AliasRejected) {
            // No pointer displacement => no de-aliasing: like plain
            // COP, aliases stay pinned in the LLC.
            result.aliasPinned = true;
            result.data = data;
            result.complete = dramRead(addr, now) + decodeLatency_;
            result.dramAccesses = 1;
            return result;
        }
        noteTransferBits(addr, copTransferBits(enc, codec_.config()));
        setImage(addr, enc.stored);
        if (!faultInjectionEnabled()) {
            // The image was created by the line above, so nothing can
            // have corrupted it before this fill: decoding it is the
            // codec roundtrip identity (decode(encode(x)) == (x, clean
            // flags)). Serve the fill from the content directly and
            // skip the decode; the timing below mirrors the decode
            // paths exactly.
            const Cycle data_done = dramRead(addr, now);
            result.dramAccesses = 1;
            result.data = data;
            if (enc.status == EncodeStatus::Protected) {
                result.complete = data_done + decodeLatency_;
                logVuln(VulnClass::CopProtected4, addr, now);
                return result;
            }
            result.wasUncompressed = true;
            const Cycle meta_done = metaAccess(addr, now, false);
            if (meta_done > now)
                ++result.dramAccesses;
            result.complete =
                std::max(data_done, meta_done) + decodeLatency_;
            logVuln(VulnClass::CopErUncompressed, addr, now);
            return result;
        }
    }

    const CacheBlock &stored = *imageOf(addr);
    const Cycle data_done = dramRead(addr, now);
    result.dramAccesses = 1;

    const CopDecodeResult &dec =
        warmOrDecode(warmDecode_, codec_, stored, decodeScratch_);
    result.data = dec.data;
    result.detectedUncorrectable = dec.detectedUncorrectable;
    result.correctedError = dec.correctedWords > 0;
    if (dec.compressed) {
        // Check bits travelled inline: no region access — the naive
        // variant's entire performance win over the baseline. (A raw
        // block whose faults make it look compressed also lands here:
        // the decoder hands over garbage, the SDC oracle counts it.)
        result.complete = data_done + decodeLatency_;
        logVuln(VulnClass::CopProtected4, addr, now);
        return result;
    }

    // Incompressible: the wide-code check bits sit at a fixed offset in
    // the full-size region; the lookup can overlap the data read.
    result.wasUncompressed = true;
    const Cycle meta_done = metaAccess(addr, now, false);
    if (meta_done > now)
        ++result.dramAccesses;
    result.complete = std::max(data_done, meta_done) + decodeLatency_;
    if (isFaulted(addr)) {
        // Raw blocks are stored as-is; run the wide code against the
        // sidecar check bits the region holds for them.
        CacheBlock data = stored;
        const EccResult ecc =
            CoperCodec::wideDecode(data, wideCheckOf(addr));
        result.data = data;
        result.correctedError = ecc.corrected();
        result.detectedUncorrectable = ecc.uncorrectable();
    }
    logVuln(VulnClass::CopErUncompressed, addr, now);
    return result;
}

MemWriteResult
CopErNaiveController::writeback(Addr addr, const CacheBlock &data,
                                Cycle now, bool was_uncompressed)
{
    (void)was_uncompressed;
    MemWriteResult result;

    const CopEncodeResult enc = encodeBlock(data);
    switch (enc.status) {
      case EncodeStatus::AliasRejected:
        ++stats_.aliasRejects;
        result.aliasRejected = true;
        return result;
      case EncodeStatus::Protected:
        ++stats_.protectedWrites;
        ++stats_.schemeWrites[static_cast<unsigned>(enc.scheme)];
        break;
      case EncodeStatus::Unprotected:
        ++stats_.unprotectedWrites;
        // Update the block's entry in the always-reserved region.
        metaAccess(addr, now, true);
        break;
    }

    noteTransferBits(addr, copTransferBits(enc, codec_.config()));
    result.complete = dramWrite(addr, now);
    result.dramAccesses = 1;
    setImage(addr, enc.stored);
    noteWrite(addr, now);
    return result;
}

bool
CopErNaiveController::wouldAliasReject(const CacheBlock &data) const
{
    // Same routing as CopController: a caching memo makes the full
    // encode the cheaper test (the eviction re-encode hits).
    if (memo_ != nullptr && memo_->capacity() > 0) {
        return memo_->encode(codec_, data).status ==
               EncodeStatus::AliasRejected;
    }
    return !codec_.compressor().compressible(data) && codec_.isAlias(data);
}

} // namespace cop
