#include "mem/controller.hpp"

namespace cop {

const char *
vulnClassName(VulnClass c)
{
    switch (c) {
      case VulnClass::Unprotected: return "unprotected";
      case VulnClass::CopProtected4: return "cop4";
      case VulnClass::CopProtected8: return "cop8";
      case VulnClass::CopErUncompressed: return "coper-entry";
      case VulnClass::EccDimm: return "ecc-dimm";
      case VulnClass::WideCode: return "wide-code";
      case VulnClass::kCount: break;
    }
    COP_PANIC("bad vuln class");
}

MemoryController::MemoryController(DramSystem &dram, ContentSource content)
    : dram_(dram), content_(std::move(content))
{
    COP_ASSERT(content_ != nullptr);
}

Cycle
MemoryController::dramRead(Addr addr, Cycle now)
{
    ++stats_.reads;
    return dram_.access({addr, false, now}).complete;
}

Cycle
MemoryController::dramWrite(Addr addr, Cycle now)
{
    ++stats_.writes;
    return dram_.access({addr, true, now}).complete;
}

const CacheBlock &
MemoryController::storedImage(
    Addr addr, const std::function<CacheBlock(const CacheBlock &)> &init)
{
    auto it = image_.find(addr);
    if (it == image_.end())
        it = image_.emplace(addr, init(content_(addr))).first;
    return it->second;
}

CacheBlock *
MemoryController::imageOf(Addr addr)
{
    auto it = image_.find(addr);
    return it == image_.end() ? nullptr : &it->second;
}

void
MemoryController::setImage(Addr addr, const CacheBlock &stored)
{
    image_[addr] = stored;
}

void
MemoryController::logVuln(VulnClass cls, Addr addr, Cycle now)
{
    Cycle since = 0;
    if (auto it = lastWrite_.find(addr); it != lastWrite_.end())
        since = it->second;
    vuln_.record(cls, now >= since ? now - since : 0);
}

void
MemoryController::noteWrite(Addr addr, Cycle now)
{
    lastWrite_[addr] = now;
}

// ---------------------------------------------------------------------
// UnprotectedController
// ---------------------------------------------------------------------

MemReadResult
UnprotectedController::read(Addr addr, Cycle now)
{
    MemReadResult result;
    result.complete = dramRead(addr, now);
    result.dramAccesses = 1;
    result.data =
        storedImage(addr, [](const CacheBlock &data) { return data; });
    logVuln(VulnClass::Unprotected, addr, now);
    return result;
}

MemWriteResult
UnprotectedController::writeback(Addr addr, const CacheBlock &data,
                                 Cycle now, bool was_uncompressed)
{
    (void)was_uncompressed;
    MemWriteResult result;
    result.complete = dramWrite(addr, now);
    result.dramAccesses = 1;
    setImage(addr, data);
    noteWrite(addr, now);
    return result;
}

// ---------------------------------------------------------------------
// EccDimmController
// ---------------------------------------------------------------------

MemReadResult
EccDimmController::read(Addr addr, Cycle now)
{
    MemReadResult result;
    result.complete = dramRead(addr, now);
    result.dramAccesses = 1;
    result.data =
        storedImage(addr, [](const CacheBlock &data) { return data; });
    logVuln(VulnClass::EccDimm, addr, now);
    return result;
}

MemWriteResult
EccDimmController::writeback(Addr addr, const CacheBlock &data, Cycle now,
                             bool was_uncompressed)
{
    (void)was_uncompressed;
    MemWriteResult result;
    result.complete = dramWrite(addr, now);
    result.dramAccesses = 1;
    setImage(addr, data);
    noteWrite(addr, now);
    return result;
}

} // namespace cop
