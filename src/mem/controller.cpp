#include "mem/controller.hpp"

#include <algorithm>
#include <cstring>

#include "ecc/secded.hpp"

namespace cop {

const char *
vulnClassName(VulnClass c)
{
    switch (c) {
      case VulnClass::Unprotected: return "unprotected";
      case VulnClass::CopProtected4: return "cop4";
      case VulnClass::CopProtected8: return "cop8";
      case VulnClass::CopErUncompressed: return "coper-entry";
      case VulnClass::EccDimm: return "ecc-dimm";
      case VulnClass::WideCode: return "wide-code";
      case VulnClass::kCount: break;
    }
    COP_PANIC("bad vuln class");
}

MemoryController::MemoryController(DramSystem &dram, ContentSource content)
    : dram_(dram), content_(std::move(content))
{
    COP_ASSERT(content_ != nullptr);
}

Cycle
MemoryController::dramRead(Addr addr, Cycle now)
{
    switch (opMode_) {
      case OpMode::Demand:
        ++stats_.reads;
        break;
      case OpMode::Retry:
        ++fault_.log.retryDramReads;
        break;
      case OpMode::Scrub:
        ++fault_.log.scrubReads;
        break;
    }
    return dram_.access({addr, false, now, transferBeats(addr)}).complete;
}

Cycle
MemoryController::dramWrite(Addr addr, Cycle now)
{
    switch (opMode_) {
      case OpMode::Demand:
      case OpMode::Retry:
        ++stats_.writes;
        break;
      case OpMode::Scrub:
        ++fault_.log.scrubWrites;
        break;
    }
    return dram_.access({addr, true, now, transferBeats(addr)}).complete;
}

void
MemoryController::noteTransferBits(Addr addr, unsigned bits)
{
    if (!bwMode_)
        return;
    const unsigned beats =
        std::max(1u, (bits + kBusBitsPerBeat - 1) / kBusBitsPerBeat);
    const unsigned clamped = std::max(beats, bwBeatFloor_);
    if (clamped >= kBeatsPerBlock)
        xferBeats_.erase(addr);
    else
        xferBeats_[addr] = static_cast<u8>(clamped);
}

const CacheBlock &
MemoryController::storedImage(Addr addr)
{
    auto it = image_.find(addr);
    if (it == image_.end()) {
        it = image_.emplace(addr, content_(addr)).first;
        imageWritten(addr);
        if (fault_.enabled)
            applyStuckBits(addr);
    }
    return it->second;
}

CacheBlock *
MemoryController::imageOf(Addr addr)
{
    auto it = image_.find(addr);
    return it == image_.end() ? nullptr : &it->second;
}

void
MemoryController::setImage(Addr addr, const CacheBlock &stored)
{
    image_[addr] = stored;
    imageWritten(addr);
    if (fault_.enabled) {
        fault_.faulted.erase(addr);
        fault_.silentKnown.erase(addr);
        applyStuckBits(addr);
    }
}

void
MemoryController::logVuln(VulnClass cls, Addr addr, Cycle now)
{
    lastFillClass_ = cls;
    if (opMode_ != OpMode::Demand)
        return; // retries/scrub re-decode; not a new exposure
    Cycle since = 0;
    if (auto it = lastWrite_.find(addr); it != lastWrite_.end())
        since = it->second;
    vuln_.record(cls, now >= since ? now - since : 0);
}

void
MemoryController::noteWrite(Addr addr, Cycle now)
{
    lastWrite_[addr] = now;
}

void
MemoryController::registerStats(StatsRegistry &reg) const
{
    reg.gauge("mem.fills",
              [this] { return stats_.reads - stats_.metaReads; });
    reg.gauge("mem.writebacks", [this] {
        return stats_.protectedWrites + stats_.unprotectedWrites;
    });
    reg.gauge("mem.protected_writes",
              [this] { return stats_.protectedWrites; });
    reg.gauge("mem.unprotected_writes",
              [this] { return stats_.unprotectedWrites; });
    reg.gauge("mem.alias_rejects", [this] { return stats_.aliasRejects; });
    reg.gauge("mem.meta_reads", [this] { return stats_.metaReads; });
    reg.gauge("mem.meta_writes", [this] { return stats_.metaWrites; });
    reg.gauge("mem.meta_cache_hits",
              [this] { return stats_.metaCacheHits; });
    reg.gauge("mem.meta_cache_misses",
              [this] { return stats_.metaCacheMisses; });
    reg.gauge("err.corrected", [this] { return fault_.log.corrected; });
    reg.gauge("err.detected", [this] { return fault_.log.detected; });
    reg.gauge("err.silent", [this] { return fault_.log.silent; });
    reg.gauge("err.benign", [this] { return fault_.log.benign; });
    reg.gauge("err.read_retries",
              [this] { return fault_.log.readRetries; });
    reg.gauge("err.recovery_rewrites",
              [this] { return fault_.log.recoveryRewrites; });
    reg.gauge("err.retired_pages",
              [this] { return fault_.log.retiredPages; });
    reg.gauge("err.scrubbed_blocks",
              [this] { return fault_.log.scrubbedBlocks; });
}

// ---------------------------------------------------------------------
// Fault injection and the recovery pipeline
// ---------------------------------------------------------------------

void
MemoryController::enableFaultInjection(const RecoveryConfig &cfg)
{
    fault_.enabled = true;
    fault_.cfg = cfg;
    COP_ASSERT(fault_.cfg.pageBytes >= kBlockBytes);
}

Addr
MemoryController::pageBase(Addr addr) const
{
    return addr / fault_.cfg.pageBytes * fault_.cfg.pageBytes;
}

bool
MemoryController::pageRetired(Addr addr) const
{
    return fault_.enabled && fault_.retired.count(pageBase(addr)) != 0;
}

bool
MemoryController::injectFault(Addr addr, const std::vector<unsigned> &bits,
                              Cycle now, bool persistent)
{
    COP_ASSERT(fault_.enabled);
    (void)now;
    if (persistent) {
        auto &stuck = fault_.stuck[addr];
        stuck.insert(stuck.end(), bits.begin(), bits.end());
    }
    if (pageRetired(addr)) {
        ++fault_.log.faultsOnRetiredPages;
        return false;
    }
    if (imageOf(addr) == nullptr) {
        // The block has never been touched: its image does not exist,
        // so there is nothing to strike. (Stuck bits registered above
        // still take effect when the image materialises.)
        ++fault_.log.coldFaults;
        return false;
    }
    const unsigned limit = storedBits(addr);
    unsigned applied = 0;
    for (const unsigned b : bits) {
        if (b >= limit) {
            if (persistent)
                continue; // cell outside this image's stored geometry
            COP_PANIC("fault bit " + std::to_string(b) +
                      " out of range for a " + std::to_string(limit) +
                      "-bit stored image");
        }
        flipStoredBit(addr, b);
        ++applied;
    }
    if (applied == 0)
        return false;
    fault_.faulted.insert(addr);
    ++fault_.log.faultEvents;
    fault_.log.bitsFlipped += applied;
    return true;
}

void
MemoryController::applyStuckBits(Addr addr)
{
    const auto it = fault_.stuck.find(addr);
    if (it == fault_.stuck.end() || pageRetired(addr))
        return;
    const unsigned limit = storedBits(addr);
    unsigned applied = 0;
    for (const unsigned b : it->second) {
        if (b >= limit)
            continue;
        flipStoredBit(addr, b);
        ++applied;
    }
    if (applied > 0)
        fault_.faulted.insert(addr);
}

void
MemoryController::flipStoredBit(Addr addr, unsigned bit)
{
    COP_ASSERT(bit < kBlockBits);
    CacheBlock *img = imageOf(addr);
    COP_ASSERT(img != nullptr);
    img->flipBit(bit);
}

std::vector<Addr>
MemoryController::imageAddressesSorted() const
{
    std::vector<Addr> out;
    out.reserve(image_.size());
    for (const auto &kv : image_)
        out.push_back(kv.first);
    std::sort(out.begin(), out.end());
    return out;
}

MemReadResult
MemoryController::read(Addr addr, Cycle now)
{
    MemReadResult r = readImpl(addr, now);
    r.fillClass = lastFillClass_;
    if (!fault_.enabled)
        return r;
    r.faultedBlock = fault_.faulted.count(addr) != 0;

    // Bounded read-retry: a transient detection (e.g. a marginal bus
    // transfer) would clear on a re-read; injected storage faults do
    // not, so the retries cost latency and then surface the error.
    while (r.detectedUncorrectable && r.retries < fault_.cfg.maxReadRetries) {
        ++fault_.log.readRetries;
        opMode_ = OpMode::Retry;
        MemReadResult again = readImpl(addr, now);
        opMode_ = OpMode::Demand;
        again.fillClass = lastFillClass_;
        again.retries = r.retries + 1;
        again.complete = std::max(r.complete, again.complete);
        again.dramAccesses += r.dramAccesses;
        again.faultedBlock = fault_.faulted.count(addr) != 0;
        r = again;
    }

    if (r.detectedUncorrectable) {
        fault_.log.note(ErrorEventKind::Detected, r.fillClass, addr, now,
                        r.retries);
        fault_.faulted.erase(addr);
        recoverDetected(addr, now, r.wasUncompressed);
        // The page-level copy (functional truth) replaces the fill, so
        // execution continues past the DUE; detectedUncorrectable stays
        // set for the caller's bookkeeping.
        r.data = initialContent(addr);
        return r;
    }
    if (r.correctedError) {
        if (r.data == initialContent(addr)) {
            // Scrub-on-read: restore the clean image so the same fault
            // is not corrected again (and cannot meet a second strike
            // later).
            fault_.log.note(ErrorEventKind::Corrected, r.fillClass, addr,
                            now, r.retries);
            fault_.faulted.erase(addr);
            ++fault_.log.scrubOnReadWrites;
            recoveryWriteback(addr, r.data, now, r.wasUncompressed);
        } else {
            // Miscorrection: a multi-flip pattern aliased into some
            // single-bit syndrome and the decoder "fixed" it into
            // plausible-but-wrong data. The writeback commits the wrong
            // image as clean; keep the block marked faulted so the SDC
            // oracle books the fill as silent corruption.
            recoveryWriteback(addr, r.data, now, r.wasUncompressed);
            fault_.faulted.insert(addr);
        }
    }
    return r;
}

void
MemoryController::recoverDetected(Addr addr, Cycle now,
                                  bool was_uncompressed)
{
    const Addr page = pageBase(addr);
    const unsigned dues = ++fault_.pageDue[page];
    if (fault_.retired.count(page) == 0 &&
        dues >= fault_.cfg.retirePageThreshold) {
        // Graceful degradation: remap the page out of the faulty
        // region. Modelled as dropping its stuck cells — the rewrite
        // below lands in the healthy replacement frame.
        fault_.retired.insert(page);
        fault_.log.note(ErrorEventKind::PageRetired, lastFillClass_, addr,
                        now);
    }
    ++fault_.log.recoveryRewrites;
    recoveryWriteback(addr, initialContent(addr), now, was_uncompressed);
}

void
MemoryController::recoveryWriteback(Addr addr, const CacheBlock &data,
                                    Cycle now, bool was_uncompressed)
{
    const MemWriteResult wr = writeback(addr, data, now, was_uncompressed);
    if (wr.aliasRejected) {
        // The repaired content is an incompressible alias, which can
        // never live in DRAM; drop the stored image so the next miss
        // re-runs first-touch handling (and pins the line). The
        // transfer-size sidecar entry belongs to the dropped image.
        image_.erase(addr);
        xferBeats_.erase(addr);
        fault_.faulted.erase(addr);
        fault_.silentKnown.erase(addr);
    }
}

void
MemoryController::patrolScrub(Addr addr, Cycle now)
{
    COP_ASSERT(fault_.enabled);
    if (image_.find(addr) == image_.end())
        return;
    ++fault_.log.scrubbedBlocks;
    opMode_ = OpMode::Scrub;
    MemReadResult r = readImpl(addr, now);
    r.fillClass = lastFillClass_;
    if (r.detectedUncorrectable) {
        fault_.log.note(ErrorEventKind::ScrubDetected, r.fillClass, addr,
                        now);
        fault_.faulted.erase(addr);
        recoverDetected(addr, now, r.wasUncompressed);
    } else if (r.correctedError) {
        if (r.data == initialContent(addr)) {
            fault_.log.note(ErrorEventKind::ScrubCorrected, r.fillClass,
                            addr, now);
            fault_.faulted.erase(addr);
            recoveryWriteback(addr, r.data, now, r.wasUncompressed);
        } else {
            // Scrub-time miscorrection (see read()): commit the wrong
            // image but keep the faulted mark for the demand oracle.
            recoveryWriteback(addr, r.data, now, r.wasUncompressed);
            fault_.faulted.insert(addr);
        }
    }
    if (scrubResetsClock(r))
        noteWrite(addr, now);
    opMode_ = OpMode::Demand;
}

void
MemoryController::noteSilentFill(Addr addr, VulnClass cls, Cycle now)
{
    COP_ASSERT(fault_.enabled);
    if (fault_.faulted.erase(addr) != 0) {
        fault_.log.note(ErrorEventKind::Silent, cls, addr, now);
        fault_.silentKnown.insert(addr);
        return;
    }
    if (fault_.silentKnown.count(addr) != 0)
        return; // same corruption, already counted
    COP_PANIC("memory returned wrong data for block " +
              std::to_string(addr) + " with no fault injected there");
}

void
MemoryController::noteBenignFill(Addr addr, VulnClass cls, Cycle now)
{
    COP_ASSERT(fault_.enabled);
    if (fault_.faulted.erase(addr) != 0)
        fault_.log.note(ErrorEventKind::Benign, cls, addr, now);
}

// ---------------------------------------------------------------------
// UnprotectedController
// ---------------------------------------------------------------------

MemReadResult
UnprotectedController::readImpl(Addr addr, Cycle now)
{
    MemReadResult result;
    result.complete = dramRead(addr, now);
    result.dramAccesses = 1;
    result.data =
        storedImage(addr);
    logVuln(VulnClass::Unprotected, addr, now);
    return result;
}

MemWriteResult
UnprotectedController::writeback(Addr addr, const CacheBlock &data,
                                 Cycle now, bool was_uncompressed)
{
    (void)was_uncompressed;
    MemWriteResult result;
    result.complete = dramWrite(addr, now);
    result.dramAccesses = 1;
    setImage(addr, data);
    noteWrite(addr, now);
    return result;
}

// ---------------------------------------------------------------------
// EccDimmController
// ---------------------------------------------------------------------

std::array<u8, 8> &
EccDimmController::checkBytes(Addr addr)
{
    auto it = check_.find(addr);
    if (it == check_.end()) {
        // Materialise the (72,64) check bytes from the current image.
        // Always done before the first flip lands (flipStoredBit
        // materialises first), so the sidecar reflects clean data.
        const CacheBlock *img = imageOf(addr);
        COP_ASSERT(img != nullptr);
        std::array<u8, 8> check{};
        const HsiaoCode &code = codes::dimm72();
        for (unsigned w = 0; w < 8; ++w) {
            std::array<u8, 9> word{};
            std::memcpy(word.data(), img->data() + w * 8, 8);
            code.encode(word);
            check[w] = word[8];
        }
        it = check_.emplace(addr, check).first;
    }
    return it->second;
}

void
EccDimmController::flipStoredBit(Addr addr, unsigned bit)
{
    std::array<u8, 8> &check = checkBytes(addr);
    if (bit < kBlockBits) {
        MemoryController::flipStoredBit(addr, bit);
        return;
    }
    COP_ASSERT(bit < 576);
    const unsigned idx = bit - kBlockBits;
    check[idx / 8] ^= static_cast<u8>(1u << (idx % 8));
}

MemReadResult
EccDimmController::readImpl(Addr addr, Cycle now)
{
    MemReadResult result;
    result.complete = dramRead(addr, now);
    result.dramAccesses = 1;
    const CacheBlock &img =
        storedImage(addr);
    if (isFaulted(addr)) {
        // Run the real (72,64) decode against the faulted image plus
        // its check-byte sidecar.
        const std::array<u8, 8> &check = checkBytes(addr);
        const HsiaoCode &code = codes::dimm72();
        CacheBlock out;
        for (unsigned w = 0; w < 8; ++w) {
            std::array<u8, 9> word{};
            std::memcpy(word.data(), img.data() + w * 8, 8);
            word[8] = check[w];
            const EccResult ecc = code.decode(word);
            result.correctedError |= ecc.corrected();
            result.detectedUncorrectable |= ecc.uncorrectable();
            std::memcpy(out.data() + w * 8, word.data(), 8);
        }
        result.data = out;
    } else {
        result.data = img;
    }
    logVuln(VulnClass::EccDimm, addr, now);
    return result;
}

MemWriteResult
EccDimmController::writeback(Addr addr, const CacheBlock &data, Cycle now,
                             bool was_uncompressed)
{
    (void)was_uncompressed;
    MemWriteResult result;
    result.complete = dramWrite(addr, now);
    result.dramAccesses = 1;
    setImage(addr, data);
    noteWrite(addr, now);
    return result;
}

} // namespace cop
