/**
 * @file
 * The naive COP-ER variant of paper Section 3.3: "In a naïve
 * implementation, the same storage overhead as Virtualized ECC is
 * required, since incompressible blocks are not always adjacent, so ECC
 * space could be reserved for all blocks to facilitate addressing. In
 * this manifestation, the benefit of the combined approach is in
 * performance, since most of the time the check bits can be retrieved
 * with the compressed data, and the ECC region need not be accessed."
 *
 * Concretely: compressible blocks behave exactly as under COP (inline
 * ECC, no region access); incompressible blocks keep their full 64
 * bytes in place and find their (523,512) check bits by simple offset
 * arithmetic in a full-size 2-byte-per-block ECC region — no pointer
 * displacement, no valid-bit tree, no de-aliasing (so incompressible
 * aliases must still be pinned in the LLC, unlike optimised COP-ER).
 *
 * This controller exists as the ablation point between the ECC-region
 * baseline and optimised COP-ER (bench/ablation_naive_coper).
 */

#ifndef COP_MEM_COPER_NAIVE_CONTROLLER_HPP
#define COP_MEM_COPER_NAIVE_CONTROLLER_HPP

#include "core/codec.hpp"
#include "core/encode_memo.hpp"
#include "mem/ecc_region_controller.hpp"
#include "mem/meta_cache.hpp"

namespace cop {

/** Naive COP-ER: COP compression + offset-addressed full ECC region. */
class CopErNaiveController : public MemoryController
{
  public:
    CopErNaiveController(DramSystem &dram, ContentSource content,
                         Cycle decode_latency = 4,
                         u64 meta_cache_bytes = 2ULL << 20,
                         EncodeMemo *memo = nullptr);

    const char *name() const override { return "COP-ER (naive)"; }
    MemWriteResult writeback(Addr addr, const CacheBlock &data, Cycle now,
                             bool was_uncompressed) override;
    bool wouldAliasReject(const CacheBlock &data) const override;

    void
    enableBandwidthMode(unsigned beat_floor) override
    {
        MemoryController::enableBandwidthMode(beat_floor);
        codec_.enableTransferSizing();
    }

    const CopCodec &codec() const { return codec_; }

    void
    attachWarmDecode(const WarmDecodeStore *warm) override
    {
        warmDecode_ = warm;
    }

    /**
     * Compressible blocks store 512 bits in place; incompressible
     * blocks additionally expose their 11 wide-code check bits in the
     * offset-addressed region.
     */
    unsigned storedBits(Addr addr) const override;

    /** Full-size region: 2 bytes per data block (like the baseline). */
    static u64
    storageBytesFor(u64 blocks)
    {
        return EccRegionController::storageBytesFor(blocks);
    }

  protected:
    MemReadResult readImpl(Addr addr, Cycle now) override;
    void flipStoredBit(Addr addr, unsigned bit) override;
    void imageWritten(Addr addr) override { check_.erase(addr); }

  private:
    /** Access the offset-addressed ECC block for @p data_addr. */
    Cycle metaAccess(Addr data_addr, Cycle now, bool dirty);
    /** Lazily materialised wide-code check bits (raw blocks only). */
    u16 &wideCheckOf(Addr addr);

    /** codec_.encode through the memo (when attached). */
    CopEncodeResult
    encodeBlock(const CacheBlock &data) const
    {
        if (memo_ != nullptr)
            return memo_->encode(codec_, data);
        return codec_.encode(data);
    }

    EncodeMemo *memo_;
    const WarmDecodeStore *warmDecode_ = nullptr;
    /** Inline-decode result holder for warmOrDecode. */
    mutable CopDecodeResult decodeScratch_;
    CopCodec codec_;
    MetaCache meta_;
    Cycle decodeLatency_;
    FlatMap<u16> check_;
};

} // namespace cop

#endif // COP_MEM_COPER_NAIVE_CONTROLLER_HPP
