/**
 * @file
 * Error-recovery bookkeeping for live fault injection.
 *
 * The offline FaultInjector (src/reliability) measures per-block
 * outcome probabilities in isolation. When faults are injected into
 * the *live* simulation instead, every demand fill runs through the
 * controller's detection/recovery pipeline, and this log records what
 * happened: the per-class outcome of each observed error (benign /
 * corrected / detected / silent), the cost of recovery (read retries,
 * scrub-on-read writebacks, rewrites from the next level), page
 * retirements, and the patrol scrubber's traffic. `SystemResults`
 * carries a copy so benches can cross-validate the measured rates
 * against the analytic `ErrorRateModel`.
 */

#ifndef COP_MEM_ERROR_LOG_HPP
#define COP_MEM_ERROR_LOG_HPP

#include <array>
#include <vector>

#include "common/types.hpp"
#include "mem/vuln_log.hpp"

namespace cop {

/** What the recovery pipeline concluded about one observation. */
enum class ErrorEventKind : u8
{
    /** Faulted block read back with correct data and no ECC action. */
    Benign,
    /** ECC corrected the fill; the clean image was written back. */
    Corrected,
    /** Uncorrectable after retries; block reloaded from the next level. */
    Detected,
    /** Wrong data with no raised error (caught by the SDC oracle). */
    Silent,
    /** A page crossed the uncorrectable-error threshold. */
    PageRetired,
    /** The patrol scrubber corrected a block. */
    ScrubCorrected,
    /** The patrol scrubber hit an uncorrectable block. */
    ScrubDetected,
};

const char *errorEventKindName(ErrorEventKind kind);

/** One cycle-stamped record of a recovery-pipeline decision. */
struct ErrorEvent
{
    Cycle cycle = 0;
    Addr addr = 0;
    ErrorEventKind kind = ErrorEventKind::Benign;
    /** Protection class the block was read under. */
    VulnClass cls = VulnClass::Unprotected;
    /** Read retries spent before this outcome (Detected only). */
    unsigned retries = 0;
};

/** Demand-fill outcome counts for one protection class. */
struct ErrorOutcomeCounts
{
    u64 benign = 0;
    u64 corrected = 0;
    u64 detected = 0;
    u64 silent = 0;

    u64 total() const { return benign + corrected + detected + silent; }
};

/** Recovery-pipeline policy knobs. */
struct RecoveryConfig
{
    /** Re-reads of a detected-uncorrectable block before giving up. */
    unsigned maxReadRetries = 2;
    /** Uncorrectable errors on one page before it is retired. */
    unsigned retirePageThreshold = 3;
    /** Retirement granularity. */
    u64 pageBytes = 4096;
};

/** Everything the recovery pipeline counted during a run. */
struct ErrorLog
{
    /** Event records are capped; overflow is counted, not stored. */
    static constexpr size_t kMaxEvents = 4096;

    // Injection side.
    u64 faultEvents = 0;   ///< Fault events applied to a stored image.
    u64 bitsFlipped = 0;   ///< Total bits flipped by those events.
    u64 coldFaults = 0;    ///< Events on blocks with no image yet.
    u64 faultsOnRetiredPages = 0; ///< Events dropped by retirement.
    /**
     * Campaign faults skipped because their scripted bit pattern no
     * longer fits the block's current stored geometry (e.g. a COP-ER
     * block that re-compressed under the script). Long campaigns
     * survive and count these instead of dying mid-cell; an explicit
     * single-shot injectFault with out-of-range bits still panics.
     */
    u64 injectSkipped = 0;

    // On-die SEC pre-filter (FaultConfig::ondieEcc). Conservation:
    // ondieInjected == ondieCorrected + ondieMiscorrected +
    // ondieForwarded (checked by agg_stats.py --check).
    u64 ondieInjected = 0;     ///< Raw events entering the filter.
    u64 ondieCorrected = 0;    ///< Fully scrubbed on die; image untouched.
    u64 ondieMiscorrected = 0; ///< SEC added a flip; pattern forwarded.
    u64 ondieForwarded = 0;    ///< Forwarded without miscorrection.

    // Demand-fill outcomes (sum over byClass).
    u64 benign = 0;
    u64 corrected = 0;
    u64 detected = 0;
    u64 silent = 0;

    // Recovery costs.
    u64 readRetries = 0;        ///< Retry attempts on DUE fills.
    u64 retryDramReads = 0;     ///< DRAM reads issued by retries.
    u64 scrubOnReadWrites = 0;  ///< Corrected fills written back clean.
    u64 recoveryRewrites = 0;   ///< DUE blocks rewritten from truth.
    u64 retiredPages = 0;

    // Patrol scrubber.
    u64 scrubbedBlocks = 0;  ///< Blocks the scrubber visited.
    u64 scrubReads = 0;      ///< DRAM reads charged to the scrubber.
    u64 scrubWrites = 0;     ///< DRAM writes charged to the scrubber.
    u64 scrubCorrected = 0;
    u64 scrubDetected = 0;

    std::array<ErrorOutcomeCounts, kVulnClasses> byClass{};

    std::vector<ErrorEvent> events;
    u64 droppedEvents = 0;

    const ErrorOutcomeCounts &
    of(VulnClass cls) const
    {
        return byClass[static_cast<size_t>(cls)];
    }

    /** Demand-fill observations across all classes. */
    u64 observedTotal() const
    {
        return benign + corrected + detected + silent;
    }

    /** Record one pipeline decision (counters + capped event list). */
    void
    note(ErrorEventKind kind, VulnClass cls, Addr addr, Cycle cycle,
         unsigned retries = 0)
    {
        auto &cls_counts = byClass[static_cast<size_t>(cls)];
        switch (kind) {
          case ErrorEventKind::Benign:
            ++benign;
            ++cls_counts.benign;
            break;
          case ErrorEventKind::Corrected:
            ++corrected;
            ++cls_counts.corrected;
            break;
          case ErrorEventKind::Detected:
            ++detected;
            ++cls_counts.detected;
            break;
          case ErrorEventKind::Silent:
            ++silent;
            ++cls_counts.silent;
            break;
          case ErrorEventKind::PageRetired:
            ++retiredPages;
            break;
          case ErrorEventKind::ScrubCorrected:
            ++scrubCorrected;
            break;
          case ErrorEventKind::ScrubDetected:
            ++scrubDetected;
            break;
        }
        if (events.size() < kMaxEvents)
            events.push_back(ErrorEvent{cycle, addr, kind, cls, retries});
        else
            ++droppedEvents;
    }
};

inline const char *
errorEventKindName(ErrorEventKind kind)
{
    switch (kind) {
      case ErrorEventKind::Benign: return "benign";
      case ErrorEventKind::Corrected: return "corrected";
      case ErrorEventKind::Detected: return "detected";
      case ErrorEventKind::Silent: return "silent";
      case ErrorEventKind::PageRetired: return "page-retired";
      case ErrorEventKind::ScrubCorrected: return "scrub-corrected";
      case ErrorEventKind::ScrubDetected: return "scrub-detected";
    }
    COP_PANIC("bad error event kind");
}

} // namespace cop

#endif // COP_MEM_ERROR_LOG_HPP
