/**
 * @file
 * CopErController: COP-ER, the hybrid that extends protection to
 * incompressible blocks (paper Section 3.3, Figures 6-7). Compressible
 * blocks behave exactly as under COP; incompressible blocks displace 34
 * bits into a pointer-indexed ECC-region entry, with entry allocation
 * steered away from aliases, entry reuse driven by the LLC's
 * "was uncompressed" bit, and the valid-bit tree charged as real DRAM
 * traffic.
 */

#ifndef COP_MEM_COPER_CONTROLLER_HPP
#define COP_MEM_COPER_CONTROLLER_HPP


#include "core/coper_codec.hpp"
#include "core/ecc_region.hpp"
#include "mem/cop_controller.hpp"
#include "mem/ecc_region_controller.hpp"
#include "mem/meta_cache.hpp"

namespace cop {

/** COP-ER statistics beyond the common MemStats. */
struct CopErStats
{
    u64 entryAllocs = 0;
    u64 entryReuses = 0;
    u64 entryFrees = 0;
    u64 deAliasRetries = 0;
    u64 pointerReads = 0; ///< Old-pointer fetches on writeback.
};

/** COP-ER memory controller (4-byte COP configuration). */
class CopErController : public MemoryController
{
  public:
    CopErController(DramSystem &dram, ContentSource content,
                    Cycle decode_latency = 4,
                    u64 meta_cache_bytes = 256 << 10,
                    EncodeMemo *memo = nullptr);

    const char *name() const override { return "COP-ER"; }
    MemWriteResult writeback(Addr addr, const CacheBlock &data, Cycle now,
                             bool was_uncompressed) override;

    /** Base instruments plus the ECC-region entry life cycle. */
    void registerStats(StatsRegistry &reg) const override;

    /**
     * Compressible blocks store 512 bits in place; incompressible ones
     * additionally expose their 46-bit ECC-region entry (34 displaced +
     * 11 check + 1 valid) to soft errors.
     */
    unsigned storedBits(Addr addr) const override;

    /** COP-ER never rejects: entry re-selection de-aliases (S3.3). */
    bool
    wouldAliasReject(const CacheBlock &data) const override
    {
        (void)data;
        return false;
    }

    void
    enableBandwidthMode(unsigned beat_floor) override
    {
        MemoryController::enableBandwidthMode(beat_floor);
        codec_.enableTransferSizing();
    }

    const CopCodec &codec() const { return codec_; }

    void
    attachWarmDecode(const WarmDecodeStore *warm) override
    {
        warmDecode_ = warm;
    }
    const EccRegion &region() const { return region_; }
    const CopErStats &erStats() const { return erStats_; }

    /**
     * Adaptive capacity (base enableAdaptiveCapacity(), no extra
     * setup): an ECC-entry block whose 11 entries all drain (every
     * covered block re-compressed) is released to the data free-list.
     * A later allocation landing in a released block demotes it: the
     * slot is reclaimed and the victim data living there is evicted
     * through the writeback machinery before the entry lands. Entry
     * payloads, the valid-bit tree, and the recovery pipeline are
     * untouched — placement and accounting only, so with the mode off
     * every image and timing stream is byte-identical.
     *
     * Is ECC-entry block @p entry_block currently released? (tests)
     */
    bool
    entryBlockReleased(u64 entry_block) const
    {
        return releasedEntryBlocks_.count(entry_block) != 0;
    }

    /**
     * ECC storage in use at high water, in bytes (entry blocks plus the
     * valid-bit tree).
     */
    u64
    storageBytesHighWater() const
    {
        return region_.storageBlocksHighWater() * kBlockBytes;
    }

    /** Distinct blocks ever stored uncompressed in DRAM. */
    u64
    everIncompressibleBlocks() const
    {
        return everIncompressible_.size();
    }

    /**
     * Figure 12's numerator: region bytes assuming an entry is kept for
     * every block that was ever incompressible (no deallocation).
     */
    u64
    storageBytesNoDealloc() const
    {
        return EccRegion::storageBlocksForEntries(
                   everIncompressible_.size()) *
               kBlockBytes;
    }

  protected:
    MemReadResult readImpl(Addr addr, Cycle now) override;
    void flipStoredBit(Addr addr, unsigned bit) override;

  private:
    /** DRAM block address of an ECC-region entry's block. */
    static Addr
    entryBlockAddr(u32 entry_index)
    {
        return memlayout::kMetaBase +
               (static_cast<Addr>(entry_index) /
                EccRegion::kEntriesPerBlock) *
                   kBlockBytes;
    }

    /** Charge the valid-bit tree traffic of the last region op. */
    void chargeTreeTouches(Cycle now);

    /** Access an entry block through the metadata cache. */
    Cycle entryAccess(u32 entry_index, Cycle now, bool dirty);

    /**
     * Build the stored image for an incompressible block: allocate (or
     * reuse) an entry, de-aliasing by re-selection when needed, and
     * populate it.
     */
    CacheBlock storeIncompressible(Addr addr, const CacheBlock &data,
                                   Cycle now, bool reuse_existing,
                                   u32 reuse_index);

    /** Extract the entry index embedded in a stored image. */
    u32 pointerOf(const CacheBlock &stored) const;

    /** Adaptive mode: release @p index's entry block if it drained. */
    void maybeReleaseEntryBlock(u32 index);
    /** Adaptive mode: demote @p index's entry block if released. */
    void maybeReclaimEntryBlock(u32 index, Cycle now);

    /** codec_.encode through the memo (when attached). */
    CopEncodeResult
    encodeBlock(const CacheBlock &data) const
    {
        if (memo_ != nullptr)
            return memo_->encode(codec_, data);
        return codec_.encode(data);
    }

    EncodeMemo *memo_;
    const WarmDecodeStore *warmDecode_ = nullptr;
    /** Inline-decode result holder for warmOrDecode. */
    mutable CopDecodeResult decodeScratch_;
    CopCodec codec_;
    CoperCodec coper_;
    EccRegion region_;
    MetaCache meta_;
    Cycle decodeLatency_;
    CopErStats erStats_;
    u64 treeAddrSalt_ = 0;
    FlatSet everIncompressible_;
    /** Entry-block indices currently on the data free-list. */
    FlatSet releasedEntryBlocks_;
};

} // namespace cop

#endif // COP_MEM_COPER_CONTROLLER_HPP
