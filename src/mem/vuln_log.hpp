/**
 * @file
 * Vulnerability logging: the PARMA-inspired "vulnerability clock" of
 * paper Section 4. Every block read from DRAM was exposed to soft
 * errors for the cycles since it was last written (or since the start
 * of the run); which *protection class* covered it during that window
 * decides how errors translate into corrected / detected / silent
 * outcomes. The analytic model in src/reliability consumes these logs.
 */

#ifndef COP_MEM_VULN_LOG_HPP
#define COP_MEM_VULN_LOG_HPP

#include <array>

#include "common/types.hpp"

namespace cop {

/** How a block was protected while resident in DRAM. */
enum class VulnClass : u8 {
    Unprotected = 0,   ///< Raw data; any flip is silent corruption.
    CopProtected4,     ///< COP 4-byte config: 4 x (128,120) SECDED.
    CopProtected8,     ///< COP 8-byte config: 8 x (64,56) SECDED.
    CopErUncompressed, ///< COP-ER entry: (523,512) + pointer SEC.
    EccDimm,           ///< Conventional (72,64) SECDED.
    WideCode,          ///< ECC-region baseline: one (523,512) word.
    kCount,
};

inline constexpr unsigned kVulnClasses =
    static_cast<unsigned>(VulnClass::kCount);

const char *vulnClassName(VulnClass c);

/** Per-class accumulated exposure. */
struct VulnLog
{
    struct Entry
    {
        u64 reads = 0;          ///< Read events observed.
        double totalCycles = 0; ///< Sum of residency times.
    };

    std::array<Entry, kVulnClasses> byClass{};

    void
    record(VulnClass cls, Cycle residency)
    {
        auto &e = byClass[static_cast<unsigned>(cls)];
        ++e.reads;
        e.totalCycles += static_cast<double>(residency);
    }

    const Entry &
    of(VulnClass cls) const
    {
        return byClass[static_cast<unsigned>(cls)];
    }

    u64
    totalReads() const
    {
        u64 n = 0;
        for (const auto &e : byClass)
            n += e.reads;
        return n;
    }

    double
    totalCycles() const
    {
        double t = 0;
        for (const auto &e : byClass)
            t += e.totalCycles;
        return t;
    }
};

} // namespace cop

#endif // COP_MEM_VULN_LOG_HPP
