/**
 * @file
 * Memory-controller models. One abstract interface, five implementations
 * matching the paper's Figure 10/11 configurations:
 *
 *  - UnprotectedController — plain non-ECC DIMM (perf + reliability
 *    baseline "Unprot.");
 *  - EccDimmController — conventional (72,64) SECDED ECC DIMM
 *    (reliability reference for the 6x comparison in Section 4);
 *  - EccRegionController — the paper's "ECC Reg." baseline: a
 *    Virtualized-ECC-style contiguous region with a 2-byte entry per
 *    data block and a wide (523,512) code;
 *  - CopController — COP proper (compress + inline ECC, alias
 *    rejection);
 *  - CopErController — COP-ER (COP plus the pointer-indexed ECC region
 *    for incompressible blocks). Lives in coper_controller.hpp.
 *
 * Controllers are also the reliability observation point: every read
 * from DRAM logs (protection class, residency time) pairs that the
 * PARMA-style model in src/reliability converts into error rates.
 *
 * Error recovery: `read()` is a non-virtual pipeline around the
 * variant-specific `readImpl()`. With fault injection enabled
 * (enableFaultInjection), the pipeline turns decode outcomes into
 * recovery actions: corrected errors are written back clean
 * (scrub-on-read), detected-uncorrectable fills go through a bounded
 * read-retry and are then reloaded from the next level, and pages
 * that keep producing uncorrectable errors are retired. A patrol
 * scrubber (driven by reliability/live_injector) walks the stored
 * images through the same machinery. All of it is a no-op — and the
 * stored images are bit-identical — when injection is disabled.
 */

#ifndef COP_MEM_CONTROLLER_HPP
#define COP_MEM_CONTROLLER_HPP

#include <algorithm>
#include <functional>
#include <vector>

#include "common/cache_block.hpp"
#include "common/flat_map.hpp"
#include "core/warm_codec.hpp"
#include "dram/dram_system.hpp"
#include "mem/error_log.hpp"
#include "mem/vuln_log.hpp"

namespace cop {

/** Result of a block read from main memory. */
struct MemReadResult
{
    /** Cycle the decoded data is available to the LLC. */
    Cycle complete = 0;
    /** Decoded application data. */
    CacheBlock data;
    /** Block was stored uncompressed (drives the LLC COP-ER bit). */
    bool wasUncompressed = false;
    /**
     * First touch of a block whose content is an incompressible alias:
     * the block can never have been in DRAM, so the LLC must pin it
     * immediately (vanishingly rare; correctness only).
     */
    bool aliasPinned = false;
    /** DRAM accesses this read performed (data + any metadata). */
    unsigned dramAccesses = 0;
    /** The decoder detected an uncorrectable error. */
    bool detectedUncorrectable = false;
    /** The decoder corrected an error in the stored image. */
    bool correctedError = false;
    /** The stored image carried injected faults when read. */
    bool faultedBlock = false;
    /** Protection class this fill was logged under. */
    VulnClass fillClass = VulnClass::Unprotected;
    /** Read retries the recovery pipeline spent on this fill. */
    unsigned retries = 0;
};

/** Result of a writeback to main memory. */
struct MemWriteResult
{
    Cycle complete = 0;
    /**
     * The block is an incompressible alias and was NOT written; the LLC
     * must keep the line with its alias bit set (paper Section 3.1).
     */
    bool aliasRejected = false;
    unsigned dramAccesses = 0;
};

/** Aggregate controller statistics. */
struct MemStats
{
    u64 reads = 0;
    u64 writes = 0;
    u64 protectedWrites = 0;   ///< Compressed + inline ECC.
    u64 unprotectedWrites = 0; ///< Raw (incompressible).
    u64 aliasRejects = 0;
    u64 metaReads = 0;  ///< ECC-region / tree DRAM reads.
    u64 metaWrites = 0; ///< ECC-region / tree DRAM writes.
    u64 metaCacheHits = 0;
    u64 metaCacheMisses = 0;
    std::array<u64, 3> schemeWrites{}; ///< Per SchemeId (MSB/RLE/TXT).
    // Codec perf counters (filled from the System's EncodeMemo; zero
    // for controllers that never run the COP encoder).
    u64 encodeCalls = 0;    ///< CopCodec::encode requests (memoized or not).
    u64 encodeMemoHits = 0; ///< Requests served from the encode memo.
    u64 schemeTrials = 0;   ///< Scheme admission checks across encodes.
};

/**
 * Abstract memory controller. Subclasses implement the encode/decode
 * policy; this base supplies the DRAM channel, the stored-image
 * functional state, first-touch initialisation, vulnerability logging,
 * and the fault-injection / error-recovery pipeline.
 */
class MemoryController
{
  public:
    /** Supplies the initial (pre-trace) content of any block. */
    /**
     * Functional-memory lookup. Returns a reference (valid until the
     * next source invocation) so the per-read hot path does not copy a
     * whole block; callees that keep the content must copy it.
     */
    using ContentSource = std::function<const CacheBlock &(Addr)>;

    MemoryController(DramSystem &dram, ContentSource content);
    virtual ~MemoryController() = default;

    MemoryController(const MemoryController &) = delete;
    MemoryController &operator=(const MemoryController &) = delete;

    virtual const char *name() const = 0;

    /**
     * Read one block (LLC miss fill). Non-virtual: wraps the variant's
     * readImpl() with the detection/recovery pipeline when fault
     * injection is enabled.
     */
    MemReadResult read(Addr addr, Cycle now);

    /**
     * Write one block back (dirty LLC eviction).
     * @param was_uncompressed the LLC's COP-ER state bit for the line.
     */
    virtual MemWriteResult writeback(Addr addr, const CacheBlock &data,
                                     Cycle now,
                                     bool was_uncompressed = false) = 0;

    /**
     * Would this content be rejected as an incompressible alias? Used
     * by the LLC victim filter before it commits to an eviction.
     */
    virtual bool
    wouldAliasReject(const CacheBlock &data) const
    {
        (void)data;
        return false;
    }

    /**
     * Register this controller's counters into @p reg under the "mem."
     * and "err." namespaces: fill/writeback/alias-reject rates,
     * metadata traffic and meta-cache hit rate, and the recovery
     * pipeline's event counters. Variants override to add their own
     * instruments (and must call the base).
     */
    virtual void registerStats(StatsRegistry &reg) const;

    /**
     * Arm the CRAM-style bandwidth-compression mode: data-block
     * transfers whose recorded compressed size fits fewer bus beats
     * ship in shortened bursts. @p beat_floor (1..8) is the smallest
     * burst any transfer may shrink to; a floor of 8 keeps every burst
     * full-length (the mode's machinery runs but timing is identical
     * to the mode being off — the byte-identity lever the tests use).
     *
     * Variants that run a COP codec override to also arm per-encode
     * transfer sizing; controllers without compression accept the call
     * but never shorten anything.
     */
    virtual void
    enableBandwidthMode(unsigned beat_floor)
    {
        COP_ASSERT(beat_floor >= 1 && beat_floor <= 8);
        bwMode_ = true;
        bwBeatFloor_ = beat_floor;
    }
    bool bandwidthModeEnabled() const { return bwMode_; }

    /** Counters of the adaptive ECC-region capacity mode. */
    struct AdaptiveStats
    {
        u64 slotsReclaimed = 0;  ///< Region blocks released for data use.
        u64 demotions = 0;       ///< Released blocks reclaimed for ECC.
        u64 victimEvictions = 0; ///< Data victims evicted by a demotion.
        u64 releasedBlocks = 0;  ///< Currently-released region blocks.
        u64 releasedBlocksHighWater = 0;
    };

    /**
     * Arm the adaptive ECC-region capacity mode (Luo et al., arXiv
     * 1706.08870): controllers that keep an ECC region release region
     * blocks whose protected data is fully compressible (the check
     * bits ride inline in the freed compression slack) back to the
     * data free-list, and demote — reclaim the block, evicting the
     * victim data through the writeback machinery — when protected
     * data turns incompressible. Placement and accounting only: the
     * stored images, the decode paths, and the PR 2 recovery pipeline
     * are untouched, so runs with the mode off stay byte-identical.
     * Controllers without a region accept the call but never reclaim.
     */
    virtual void enableAdaptiveCapacity() { adaptiveMode_ = true; }
    bool adaptiveCapacityEnabled() const { return adaptiveMode_; }
    const AdaptiveStats &adaptiveStats() const { return adaptive_; }

    /**
     * Attach a shard-worker warm decode store (sharded mode; see
     * core/warm_codec.hpp). COP-family variants route their stored-
     * image decodes through it; decode is pure, so results — and every
     * counter — are byte-identical either way. No-op for variants
     * without a codec.
     */
    virtual void attachWarmDecode(const WarmDecodeStore *warm)
    {
        (void)warm;
    }

    DramSystem &dram() { return dram_; }
    const MemStats &stats() const { return stats_; }
    const VulnLog &vulnLog() const { return vuln_; }
    VulnLog &vulnLog() { return vuln_; }

    /** Direct access to the stored DRAM image (fault injection). */
    CacheBlock *imageOf(Addr addr);
    /** Overwrite the stored image (fault injection). */
    void setImage(Addr addr, const CacheBlock &stored);
    /** Distinct blocks with a stored image (touched footprint). */
    u64 imageBlockCount() const { return image_.size(); }
    /** Allocated image hash slots (load-factor observability). */
    u64 imageSlotCount() const { return image_.capacity(); }

    /**
     * Pre-size the stored-image and write-timestamp maps for an
     * expected touched footprint of @p blocks. Purely an allocation
     * hint — variants override to also reserve their check sidecars
     * (and must call the base).
     */
    virtual void
    reserveFootprint(u64 blocks)
    {
        image_.reserve(blocks);
        lastWrite_.reserve(blocks);
    }

    // --- fault injection and error recovery ----------------------------

    /** Arm the recovery pipeline; must precede any injectFault call. */
    void enableFaultInjection(const RecoveryConfig &cfg);
    bool faultInjectionEnabled() const { return fault_.enabled; }

    const ErrorLog &errorLog() const { return fault_.log; }
    ErrorLog &errorLog() { return fault_.log; }

    /**
     * Stored bits a soft error can strike for this block: 512 data
     * bits plus any per-block redundancy the variant stores (SECDED
     * check bits, wide-code sidecar, COP-ER entry). Variants override.
     */
    virtual unsigned
    storedBits(Addr addr) const
    {
        (void)addr;
        return kBlockBits;
    }

    /**
     * Flip @p bits (indices below storedBits(addr)) in the stored
     * image of @p addr. @p persistent registers the bits as stuck:
     * they are re-applied whenever the image is rewritten, until the
     * page is retired. Returns false if nothing was applied (no image
     * yet, or the page is retired).
     */
    bool injectFault(Addr addr, const std::vector<unsigned> &bits,
                     Cycle now, bool persistent);

    /** Has the page holding @p addr been retired? */
    bool pageRetired(Addr addr) const;

    /**
     * Patrol-scrub one block: read it through the variant decode path
     * (charging DRAM bandwidth as scrub traffic), repair what it can,
     * and reset the block's vulnerability clock where architecturally
     * justified.
     */
    void patrolScrub(Addr addr, Cycle now);

    /** Sorted snapshot of every block with a stored image. */
    std::vector<Addr> imageAddressesSorted() const;

    /**
     * SDC oracle hook (called by System when a fill mismatches the
     * functional truth without a raised error): count the silent
     * corruption, once per faulting event.
     */
    void noteSilentFill(Addr addr, VulnClass cls, Cycle now);
    /** Oracle hook: faulted block read back correct with no ECC action. */
    void noteBenignFill(Addr addr, VulnClass cls, Cycle now);

  protected:
    /** Who is driving the DRAM channel (for traffic attribution). */
    enum class OpMode : u8
    {
        Demand, ///< LLC miss fill / eviction.
        Retry,  ///< Recovery pipeline re-reading a DUE block.
        Scrub,  ///< Patrol scrubber.
    };

    /** Variant-specific decode path behind read(). */
    virtual MemReadResult readImpl(Addr addr, Cycle now) = 0;

    /**
     * Flip one stored bit. The default handles the 512 data bits in
     * image_; variants with out-of-block redundancy (check sidecars,
     * COP-ER entries) override for indices >= 512.
     */
    virtual void flipStoredBit(Addr addr, unsigned bit);

    /**
     * Hook after setImage stores a clean image — variants drop any
     * derived fault-model state (check-bit sidecars) here.
     */
    virtual void
    imageWritten(Addr addr)
    {
        (void)addr;
    }

    /**
     * Does a patrol-scrub visit reset this block's vulnerability
     * clock? Mirrors the analytic model: scrubbing helps protected
     * classes only (an unprotected block cannot be verified, and a
     * raw COP block has no code to check).
     */
    virtual bool
    scrubResetsClock(const MemReadResult &r) const
    {
        (void)r;
        return true;
    }

    /** Schedule a DRAM read of @p addr; bumps stats. */
    Cycle dramRead(Addr addr, Cycle now);
    /** Schedule a DRAM write of @p addr; bumps stats. */
    Cycle dramWrite(Addr addr, Cycle now);

    /**
     * Record that the stored image of @p addr carries @p bits of
     * information (compressed data + check bits), so its bus transfers
     * may shorten to ceil(bits / 64) beats, clamped to the configured
     * beat floor. Pass kBlockBits (or more) to restore the full-burst
     * default. No-op when the bandwidth mode is off. Call at every
     * image-store site *before* the DRAM access that ships the block.
     */
    void noteTransferBits(Addr addr, unsigned bits);

    /** Beats the data transfer of @p addr occupies (8 unless shortened). */
    unsigned
    transferBeats(Addr addr) const
    {
        if (!bwMode_)
            return 8;
        const auto it = xferBeats_.find(addr);
        return it == xferBeats_.end() ? 8 : it->second;
    }

    /**
     * Initial application content of a block (reference into the
     * functional-memory pool; valid until the next content lookup).
     */
    const CacheBlock &initialContent(Addr addr) const
    {
        return content_(addr);
    }

    /**
     * Fetch the stored image, initialising it on first touch with the
     * raw application content (the store-it-verbatim schemes; COP
     * variants initialise through their encoder and setImage instead).
     */
    const CacheBlock &storedImage(Addr addr);

    /** Record a read-from-DRAM reliability observation. */
    void logVuln(VulnClass cls, Addr addr, Cycle now);
    /** Record a write (resets the vulnerability clock). */
    void noteWrite(Addr addr, Cycle now);

    /** Is the stored image of @p addr carrying injected faults? */
    bool
    isFaulted(Addr addr) const
    {
        return fault_.enabled && fault_.faulted.count(addr) != 0;
    }

    /** Adaptive mode: one region block released to the data free-list. */
    void
    noteSlotReclaimed()
    {
        ++adaptive_.slotsReclaimed;
        ++adaptive_.releasedBlocks;
        adaptive_.releasedBlocksHighWater = std::max(
            adaptive_.releasedBlocksHighWater, adaptive_.releasedBlocks);
    }

    /** Adaptive mode: a released block reclaimed, its data evicted. */
    void
    noteDemotion()
    {
        COP_ASSERT(adaptive_.releasedBlocks > 0);
        ++adaptive_.demotions;
        ++adaptive_.victimEvictions;
        --adaptive_.releasedBlocks;
    }

    bool adaptiveMode_ = false;

    DramSystem &dram_;
    ContentSource content_;
    MemStats stats_;
    VulnLog vuln_;
    FlatMap<CacheBlock> image_;
    FlatMap<Cycle> lastWrite_;
    OpMode opMode_ = OpMode::Demand;

  private:
    /** Live fault-injection state (all dormant unless enabled). */
    struct FaultState
    {
        bool enabled = false;
        RecoveryConfig cfg;
        ErrorLog log;
        /** Blocks whose stored image currently carries faults. */
        FlatSet faulted;
        /** Silent corruptions already counted (image still wrong). */
        FlatSet silentKnown;
        /** Stuck bits re-applied on every image rewrite. */
        FlatMap<std::vector<unsigned>> stuck;
        /** Retired page base addresses. */
        FlatSet retired;
        /** Uncorrectable-error count per page base. */
        FlatMap<unsigned> pageDue;
    };

    Addr pageBase(Addr addr) const;
    /** Re-apply registered stuck bits after an image rewrite. */
    void applyStuckBits(Addr addr);
    /** Repair a DUE block: retire-if-due, then rewrite from truth. */
    void recoverDetected(Addr addr, Cycle now, bool was_uncompressed);
    /** writeback() for recovery, handling the alias-reject edge. */
    void recoveryWriteback(Addr addr, const CacheBlock &data, Cycle now,
                           bool was_uncompressed);

    FaultState fault_;
    AdaptiveStats adaptive_;
    /** Class of the most recent readImpl fill (set by logVuln). */
    VulnClass lastFillClass_ = VulnClass::Unprotected;

    // --- bandwidth-compression mode state -----------------------------
    bool bwMode_ = false;
    unsigned bwBeatFloor_ = 8;
    /**
     * Shortened-transfer sidecar: data-block address -> burst beats.
     * Only sub-8-beat entries are stored (full bursts stay absent), and
     * metadata addresses (memlayout::kMetaBase / kTreeBase spaces) are
     * never recorded, so their transfers default to 8 beats.
     */
    FlatMap<u8> xferBeats_;
};

/** Plain non-ECC DIMM: no protection, no overheads. */
class UnprotectedController : public MemoryController
{
  public:
    using MemoryController::MemoryController;

    const char *name() const override { return "Unprot."; }
    MemWriteResult writeback(Addr addr, const CacheBlock &data, Cycle now,
                             bool was_uncompressed) override;

  protected:
    MemReadResult readImpl(Addr addr, Cycle now) override;

    bool
    scrubResetsClock(const MemReadResult &) const override
    {
        return false; // no code to check: scrubbing cannot help
    }
};

/**
 * Conventional ECC DIMM: (72,64) SECDED on a 9th chip. Identical timing
 * to the unprotected case (check bits travel with the data); differs
 * only in the reliability class it logs. Under fault injection the
 * 64 check bits are modelled as a per-block sidecar so soft errors
 * can strike them too.
 */
class EccDimmController : public MemoryController
{
  public:
    using MemoryController::MemoryController;

    const char *name() const override { return "ECC DIMM"; }
    MemWriteResult writeback(Addr addr, const CacheBlock &data, Cycle now,
                             bool was_uncompressed) override;

    /** 8 x (72,64): 512 data bits + 64 check bits. */
    unsigned
    storedBits(Addr addr) const override
    {
        (void)addr;
        return 576;
    }

  protected:
    MemReadResult readImpl(Addr addr, Cycle now) override;
    void flipStoredBit(Addr addr, unsigned bit) override;
    void imageWritten(Addr addr) override { check_.erase(addr); }

  private:
    /** Lazily materialised (72,64) check bytes, one per 64-bit word. */
    std::array<u8, 8> &checkBytes(Addr addr);

    FlatMap<std::array<u8, 8>> check_;
};

} // namespace cop

#endif // COP_MEM_CONTROLLER_HPP
