/**
 * @file
 * Memory-controller models. One abstract interface, five implementations
 * matching the paper's Figure 10/11 configurations:
 *
 *  - UnprotectedController — plain non-ECC DIMM (perf + reliability
 *    baseline "Unprot.");
 *  - EccDimmController — conventional (72,64) SECDED ECC DIMM
 *    (reliability reference for the 6x comparison in Section 4);
 *  - EccRegionController — the paper's "ECC Reg." baseline: a
 *    Virtualized-ECC-style contiguous region with a 2-byte entry per
 *    data block and a wide (523,512) code;
 *  - CopController — COP proper (compress + inline ECC, alias
 *    rejection);
 *  - CopErController — COP-ER (COP plus the pointer-indexed ECC region
 *    for incompressible blocks). Lives in coper_controller.hpp.
 *
 * Controllers are also the reliability observation point: every read
 * from DRAM logs (protection class, residency time) pairs that the
 * PARMA-style model in src/reliability converts into error rates.
 */

#ifndef COP_MEM_CONTROLLER_HPP
#define COP_MEM_CONTROLLER_HPP

#include <functional>
#include <unordered_map>

#include "common/cache_block.hpp"
#include "dram/dram_system.hpp"
#include "mem/vuln_log.hpp"

namespace cop {

/** Result of a block read from main memory. */
struct MemReadResult
{
    /** Cycle the decoded data is available to the LLC. */
    Cycle complete = 0;
    /** Decoded application data. */
    CacheBlock data;
    /** Block was stored uncompressed (drives the LLC COP-ER bit). */
    bool wasUncompressed = false;
    /**
     * First touch of a block whose content is an incompressible alias:
     * the block can never have been in DRAM, so the LLC must pin it
     * immediately (vanishingly rare; correctness only).
     */
    bool aliasPinned = false;
    /** DRAM accesses this read performed (data + any metadata). */
    unsigned dramAccesses = 0;
    /** The decoder detected an uncorrectable error. */
    bool detectedUncorrectable = false;
};

/** Result of a writeback to main memory. */
struct MemWriteResult
{
    Cycle complete = 0;
    /**
     * The block is an incompressible alias and was NOT written; the LLC
     * must keep the line with its alias bit set (paper Section 3.1).
     */
    bool aliasRejected = false;
    unsigned dramAccesses = 0;
};

/** Aggregate controller statistics. */
struct MemStats
{
    u64 reads = 0;
    u64 writes = 0;
    u64 protectedWrites = 0;   ///< Compressed + inline ECC.
    u64 unprotectedWrites = 0; ///< Raw (incompressible).
    u64 aliasRejects = 0;
    u64 metaReads = 0;  ///< ECC-region / tree DRAM reads.
    u64 metaWrites = 0; ///< ECC-region / tree DRAM writes.
    u64 metaCacheHits = 0;
    u64 metaCacheMisses = 0;
    std::array<u64, 3> schemeWrites{}; ///< Per SchemeId (MSB/RLE/TXT).
};

/**
 * Abstract memory controller. Subclasses implement the encode/decode
 * policy; this base supplies the DRAM channel, the stored-image
 * functional state, first-touch initialisation, and vulnerability
 * logging.
 */
class MemoryController
{
  public:
    /** Supplies the initial (pre-trace) content of any block. */
    using ContentSource = std::function<CacheBlock(Addr)>;

    MemoryController(DramSystem &dram, ContentSource content);
    virtual ~MemoryController() = default;

    MemoryController(const MemoryController &) = delete;
    MemoryController &operator=(const MemoryController &) = delete;

    virtual const char *name() const = 0;

    /** Read one block (LLC miss fill). */
    virtual MemReadResult read(Addr addr, Cycle now) = 0;

    /**
     * Write one block back (dirty LLC eviction).
     * @param was_uncompressed the LLC's COP-ER state bit for the line.
     */
    virtual MemWriteResult writeback(Addr addr, const CacheBlock &data,
                                     Cycle now,
                                     bool was_uncompressed = false) = 0;

    /**
     * Would this content be rejected as an incompressible alias? Used
     * by the LLC victim filter before it commits to an eviction.
     */
    virtual bool
    wouldAliasReject(const CacheBlock &data) const
    {
        (void)data;
        return false;
    }

    DramSystem &dram() { return dram_; }
    const MemStats &stats() const { return stats_; }
    const VulnLog &vulnLog() const { return vuln_; }
    VulnLog &vulnLog() { return vuln_; }

    /** Direct access to the stored DRAM image (fault injection). */
    CacheBlock *imageOf(Addr addr);
    /** Overwrite the stored image (fault injection). */
    void setImage(Addr addr, const CacheBlock &stored);
    /** Distinct blocks with a stored image (touched footprint). */
    u64 imageBlockCount() const { return image_.size(); }

  protected:
    /** Schedule a DRAM read of @p addr; bumps stats. */
    Cycle dramRead(Addr addr, Cycle now);
    /** Schedule a DRAM write of @p addr; bumps stats. */
    Cycle dramWrite(Addr addr, Cycle now);

    /** Initial application content of a block. */
    CacheBlock initialContent(Addr addr) const { return content_(addr); }

    /**
     * Fetch the stored image, initialising it on first touch via
     * @p init (which maps application data to a stored image).
     */
    const CacheBlock &
    storedImage(Addr addr,
                const std::function<CacheBlock(const CacheBlock &)> &init);

    /** Record a read-from-DRAM reliability observation. */
    void logVuln(VulnClass cls, Addr addr, Cycle now);
    /** Record a write (resets the vulnerability clock). */
    void noteWrite(Addr addr, Cycle now);

    DramSystem &dram_;
    ContentSource content_;
    MemStats stats_;
    VulnLog vuln_;
    std::unordered_map<Addr, CacheBlock> image_;
    std::unordered_map<Addr, Cycle> lastWrite_;
};

/** Plain non-ECC DIMM: no protection, no overheads. */
class UnprotectedController : public MemoryController
{
  public:
    using MemoryController::MemoryController;

    const char *name() const override { return "Unprot."; }
    MemReadResult read(Addr addr, Cycle now) override;
    MemWriteResult writeback(Addr addr, const CacheBlock &data, Cycle now,
                             bool was_uncompressed) override;
};

/**
 * Conventional ECC DIMM: (72,64) SECDED on a 9th chip. Identical timing
 * to the unprotected case (check bits travel with the data); differs
 * only in the reliability class it logs.
 */
class EccDimmController : public MemoryController
{
  public:
    using MemoryController::MemoryController;

    const char *name() const override { return "ECC DIMM"; }
    MemReadResult read(Addr addr, Cycle now) override;
    MemWriteResult writeback(Addr addr, const CacheBlock &data, Cycle now,
                             bool was_uncompressed) override;
};

} // namespace cop

#endif // COP_MEM_CONTROLLER_HPP
