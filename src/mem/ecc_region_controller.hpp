/**
 * @file
 * The paper's "ECC Reg." baseline (Section 4): a Virtualized-ECC-style
 * design that reserves a contiguous region with a 2-byte entry per data
 * block (11 check bits of a (523,512) code plus padding to simplify
 * addressing — "the contiguous ECC region is allocated with a 2-byte
 * entry per data block to facilitate addressing"). Every fill needs the
 * matching ECC block; every writeback dirties it. ECC blocks are cached.
 */

#ifndef COP_MEM_ECC_REGION_CONTROLLER_HPP
#define COP_MEM_ECC_REGION_CONTROLLER_HPP

#include <memory>

#include "compress/combined.hpp"
#include "mem/controller.hpp"
#include "mem/meta_cache.hpp"

namespace cop {

/** Address-space constants for metadata regions. */
namespace memlayout {

/** Base of the ECC / metadata region (disjoint from application data). */
inline constexpr Addr kMetaBase = 1ULL << 40;
/** Base of the COP-ER valid-bit tree blocks. */
inline constexpr Addr kTreeBase = 1ULL << 41;

/** ECC-region baseline: 2-byte entry per block, 32 entries per block. */
inline Addr
eccRegionEntryAddr(Addr data_addr)
{
    const u64 block_index = data_addr / kBlockBytes;
    return kMetaBase + (block_index / 32) * kBlockBytes;
}

} // namespace memlayout

/**
 * The ECC-region ("Virtualized ECC"-like) baseline controller.
 *
 * The bandwidth-compression mode is inert here (as for the unprotected
 * and ECC-DIMM baselines): without a compressor there is no shortened
 * image to ship, so enableBandwidthMode() records nothing and every
 * transfer keeps the full 8-beat burst.
 */
class EccRegionController : public MemoryController
{
  public:
    EccRegionController(DramSystem &dram, ContentSource content,
                        u64 meta_cache_bytes = 256 << 10);

    const char *name() const override { return "ECC Reg."; }
    MemWriteResult writeback(Addr addr, const CacheBlock &data, Cycle now,
                             bool was_uncompressed) override;

    const MetaCache &metaCache() const { return meta_; }

    /**
     * Adaptive capacity: an entry group (one region block, 32 entries
     * covering 2 KiB of data) whose touched blocks are all
     * compressible carries its 11 check bits inline in the freed
     * compression slack, so the region block is released to the data
     * free-list (no metadata traffic for the group either). A block
     * turning incompressible demotes the group: the slot is reclaimed
     * and the victim data evicted through the writeback machinery.
     * The stored images, check sidecar, and wide-code decode path are
     * untouched — placement and accounting only — so the recovery
     * pipeline on top is unchanged.
     */
    void enableAdaptiveCapacity() override;

    /** Is @p data_addr's entry group currently released? (tests) */
    bool groupReleased(Addr data_addr) const;

    /** 512 data bits + 11 wide-code check bits in the ECC region. */
    unsigned
    storedBits(Addr addr) const override
    {
        (void)addr;
        return kBlockBits + 11;
    }

    /**
     * Bytes of ECC storage the baseline reserves for a footprint of
     * @p blocks data blocks (2 bytes per block) — Figure 12's
     * denominator.
     */
    static u64
    storageBytesFor(u64 blocks)
    {
        return blocks * 2;
    }

  protected:
    MemReadResult readImpl(Addr addr, Cycle now) override;
    void flipStoredBit(Addr addr, unsigned bit) override;
    void imageWritten(Addr addr) override { check_.erase(addr); }

  private:
    /** Per-entry-group adaptive state (keyed by region-block address). */
    struct GroupState
    {
        u32 touched = 0;        ///< Distinct data blocks seen.
        u32 incompressible = 0; ///< Of those, currently incompressible.
        bool released = false;  ///< Region block on the data free-list.
    };

    /** Access an ECC metadata block; returns its completion cycle. */
    Cycle metaAccess(Addr data_addr, Cycle now, bool dirty);
    /** Lazily materialised (523,512) check bits for a block. */
    u16 &wideCheck(Addr addr);
    /** Adaptive mode: reclassify @p data, promote/demote its group. */
    void noteBlockContent(Addr addr, const CacheBlock &data, Cycle now);

    MetaCache meta_;
    FlatMap<u16> check_;
    /** Compressibility probe (COP 4-byte config), adaptive mode only. */
    std::unique_ptr<CombinedCompressor> adaptComp_;
    FlatMap<u8> blockCompressible_; ///< Data addr -> last verdict.
    FlatMap<GroupState> groups_;    ///< Region-block addr -> state.
};

} // namespace cop

#endif // COP_MEM_ECC_REGION_CONTROLLER_HPP
