/**
 * @file
 * MetaCache: the cached slice of ECC metadata. The paper caches ECC
 * region blocks "in the L3" for both the ECC-region baseline and
 * COP-ER (Section 4); we model that as a dedicated metadata cache of
 * L3-like organisation inside the memory controller, which preserves
 * the hit/miss behaviour without entangling the controller in the
 * shared-L3 replacement loop (DESIGN.md section 1 notes the
 * simplification).
 */

#ifndef COP_MEM_META_CACHE_HPP
#define COP_MEM_META_CACHE_HPP

#include "cache/set_assoc_cache.hpp"

namespace cop {

/** A small write-back cache for ECC metadata blocks. */
class MetaCache
{
  public:
    /** Outcome of one metadata access. */
    struct Access
    {
        bool hit = false;
        /** A dirty metadata block was displaced and must be written. */
        bool evictedDirty = false;
        Addr evictedAddr = 0;
    };

    explicit MetaCache(u64 size_bytes = 256 << 10, unsigned ways = 8)
        : cache_(CacheConfig{size_bytes, ways, 0})
    {
    }

    /**
     * Look up @p addr; on a miss the block is installed (the caller
     * charges the DRAM fill). @p mark_dirty records a modification.
     */
    Access
    access(Addr addr, bool mark_dirty)
    {
        Access result;
        if (cache_.access(addr, mark_dirty)) {
            result.hit = true;
            return result;
        }
        const CacheEviction ev = cache_.insert(addr, mark_dirty);
        if (ev.valid && ev.state.dirty) {
            result.evictedDirty = true;
            result.evictedAddr = ev.addr;
        }
        return result;
    }

    /** Drop a block (e.g. its entry was invalidated). */
    void invalidate(Addr addr) { cache_.invalidate(addr); }

    const CacheStats &stats() const { return cache_.stats(); }

  private:
    SetAssocCache cache_;
};

} // namespace cop

#endif // COP_MEM_META_CACHE_HPP
