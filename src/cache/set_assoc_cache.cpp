#include "cache/set_assoc_cache.hpp"

#include <algorithm>

namespace cop {

SetAssocCache::SetAssocCache(const CacheConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
    lines_.resize(cfg_.sets() * cfg_.ways);
    spill_.resize(cfg_.sets());
    setMask_ = cfg_.sets() - 1;
}

u64
SetAssocCache::setIndex(Addr block_addr) const
{
    return (block_addr / kBlockBytes) & setMask_;
}

SetAssocCache::Line *
SetAssocCache::lookup(Addr block_addr)
{
    Line *base = setBase(setIndex(block_addr));
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (base[w].valid && base[w].tag == block_addr)
            return base + w;
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::lookup(Addr block_addr) const
{
    const Line *base = setBase(setIndex(block_addr));
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (base[w].valid && base[w].tag == block_addr)
            return base + w;
    }
    return nullptr;
}

bool
SetAssocCache::access(Addr block_addr, bool is_write)
{
    ++clock_;
    if (Line *line = lookup(block_addr)) {
        line->lru = clock_;
        line->state.dirty |= is_write;
        if (is_write && line->state.alias) {
            // A store changed the content; whether it still aliases is
            // re-decided by the encoder at the next eviction attempt.
            line->state.alias = false;
            --stats_.aliasPinned;
        }
        ++stats_.hits;
        return true;
    }
    // Spill list (overflowed pinned set): a hit here models following
    // the per-set overflow pointer into DRAM.
    for (auto &[addr, state] : spill_[setIndex(block_addr)]) {
        if (addr == block_addr) {
            state.dirty |= is_write;
            ++stats_.hits;
            ++stats_.spillHits;
            return true;
        }
    }
    ++stats_.misses;
    return false;
}

bool
SetAssocCache::probe(Addr block_addr) const
{
    if (lookup(block_addr) != nullptr)
        return true;
    for (const auto &[addr, state] : spill_[setIndex(block_addr)]) {
        if (addr == block_addr)
            return true;
    }
    return false;
}

CacheEviction
SetAssocCache::insert(Addr block_addr, bool dirty,
                      const EvictFilter &can_evict,
                      CacheLineState **installed)
{
    ++clock_;
    const u64 set = setIndex(block_addr);
    Line *base = setBase(set);

    // One fused pass: duplicate check (reachable through any caller
    // that races lookup/insert — inserting a resident block would
    // leave two lines for one address), first invalid way, and the
    // LRU-minimum among unpinned lines. Way order and the strict `<`
    // keep victim choice identical to separate scans.
    Line *victim = nullptr;
    Line *candidate = nullptr;
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        Line &line = base[w];
        if (!line.valid) {
            if (victim == nullptr)
                victim = &line;
            continue;
        }
        if (line.tag == block_addr)
            COP_PANIC("insert of already-resident block " +
                      std::to_string(block_addr));
        if (!line.state.alias &&
            (candidate == nullptr || line.lru < candidate->lru))
            candidate = &line;
    }

    // Victim selection: invalid way first, then LRU among lines that
    // are not alias-pinned. A dirty candidate the filter rejects is
    // itself an alias: pin it and move on to the next-LRU line.
    while (victim == nullptr && candidate != nullptr) {
        if (can_evict && candidate->state.dirty &&
            !can_evict(candidate->tag, candidate->state)) {
            candidate->state.alias = true;
            ++stats_.aliasPinned;
            candidate = nullptr;
            for (unsigned w = 0; w < cfg_.ways; ++w) {
                Line &line = base[w];
                if (line.state.alias)
                    continue;
                if (candidate == nullptr || line.lru < candidate->lru)
                    candidate = &line;
            }
            continue;
        }
        victim = candidate;
    }

    CacheEviction evicted;
    if (victim == nullptr) {
        // Every way pinned: overflow the set (Section 3.1's linked-list
        // spill). Exceedingly rare; correctness only.
        ++stats_.setOverflows;
        spill_[set].push_back(
            {block_addr, CacheLineState{dirty, false, false}});
        if (installed != nullptr)
            *installed = &spill_[set].back().second;
        return evicted;
    }

    if (victim->valid) {
        ++stats_.evictions;
        if (victim->state.dirty)
            ++stats_.dirtyEvictions;
        evicted.valid = true;
        evicted.addr = victim->tag;
        evicted.state = victim->state;
    }

    victim->valid = true;
    victim->tag = block_addr;
    victim->lru = clock_;
    victim->state = CacheLineState{dirty, false, false};
    if (installed != nullptr)
        *installed = &victim->state;
    return evicted;
}

CacheLineState *
SetAssocCache::findState(Addr block_addr)
{
    if (Line *line = lookup(block_addr))
        return &line->state;
    for (auto &[addr, state] : spill_[setIndex(block_addr)]) {
        if (addr == block_addr)
            return &state;
    }
    return nullptr;
}

void
SetAssocCache::setAlias(Addr block_addr, bool alias)
{
    CacheLineState *state = findState(block_addr);
    if (state == nullptr)
        COP_PANIC("setAlias on non-resident block " +
                  std::to_string(block_addr));
    setAlias(*state, alias);
}

void
SetAssocCache::setAlias(CacheLineState &state, bool alias)
{
    if (alias && !state.alias)
        ++stats_.aliasPinned;
    else if (!alias && state.alias)
        --stats_.aliasPinned;
    state.alias = alias;
}

void
SetAssocCache::invalidate(Addr block_addr)
{
    if (Line *line = lookup(block_addr)) {
        if (line->state.alias)
            --stats_.aliasPinned;
        *line = Line{};
        return;
    }
    std::erase_if(spill_[setIndex(block_addr)],
                  [&](const auto &e) { return e.first == block_addr; });
}

std::vector<CacheEviction>
SetAssocCache::drainDirty()
{
    std::vector<CacheEviction> drained;
    // Per-set (ways, then that set's spill) order — callers replay the
    // drained writebacks in sequence, so the order is part of results.
    for (u64 s = 0; s <= setMask_; ++s) {
        Line *base = setBase(s);
        for (unsigned w = 0; w < cfg_.ways; ++w) {
            Line &line = base[w];
            if (line.valid && line.state.dirty) {
                drained.push_back({true, line.tag, line.state});
                line.state.dirty = false;
            }
        }
        for (auto &[addr, state] : spill_[s]) {
            if (state.dirty) {
                drained.push_back({true, addr, state});
                state.dirty = false;
            }
        }
    }
    return drained;
}

} // namespace cop
