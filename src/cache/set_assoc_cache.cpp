#include "cache/set_assoc_cache.hpp"

#include <algorithm>

namespace cop {

SetAssocCache::SetAssocCache(const CacheConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
    sets_.resize(cfg_.sets());
    for (auto &set : sets_)
        set.ways.resize(cfg_.ways);
}

u64
SetAssocCache::setIndex(Addr block_addr) const
{
    return (block_addr / kBlockBytes) & (cfg_.sets() - 1);
}

SetAssocCache::Line *
SetAssocCache::lookup(Addr block_addr)
{
    Set &set = sets_[setIndex(block_addr)];
    for (auto &line : set.ways) {
        if (line.valid && line.tag == block_addr)
            return &line;
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::lookup(Addr block_addr) const
{
    const Set &set = sets_[setIndex(block_addr)];
    for (const auto &line : set.ways) {
        if (line.valid && line.tag == block_addr)
            return &line;
    }
    return nullptr;
}

bool
SetAssocCache::access(Addr block_addr, bool is_write)
{
    ++clock_;
    if (Line *line = lookup(block_addr)) {
        line->lru = clock_;
        line->state.dirty |= is_write;
        if (is_write && line->state.alias) {
            // A store changed the content; whether it still aliases is
            // re-decided by the encoder at the next eviction attempt.
            line->state.alias = false;
            --stats_.aliasPinned;
        }
        ++stats_.hits;
        return true;
    }
    // Spill list (overflowed pinned set): a hit here models following
    // the per-set overflow pointer into DRAM.
    Set &set = sets_[setIndex(block_addr)];
    for (auto &[addr, state] : set.spill) {
        if (addr == block_addr) {
            state.dirty |= is_write;
            ++stats_.hits;
            ++stats_.spillHits;
            return true;
        }
    }
    ++stats_.misses;
    return false;
}

bool
SetAssocCache::probe(Addr block_addr) const
{
    if (lookup(block_addr) != nullptr)
        return true;
    const Set &set = sets_[setIndex(block_addr)];
    for (const auto &[addr, state] : set.spill) {
        if (addr == block_addr)
            return true;
    }
    return false;
}

CacheEviction
SetAssocCache::insert(Addr block_addr, bool dirty,
                      const EvictFilter &can_evict)
{
    ++clock_;
    Set &set = sets_[setIndex(block_addr)];
    // Reachable through any caller that races lookup/insert: inserting
    // a resident block would leave two lines for one address.
    if (lookup(block_addr) != nullptr)
        COP_PANIC("insert of already-resident block " +
                  std::to_string(block_addr));

    // Victim selection: invalid way first, then LRU among lines that
    // are not alias-pinned. A dirty candidate the filter rejects is
    // itself an alias: pin it and move on to the next-LRU line.
    Line *victim = nullptr;
    for (auto &line : set.ways) {
        if (!line.valid) {
            victim = &line;
            break;
        }
    }
    while (victim == nullptr) {
        Line *candidate = nullptr;
        for (auto &line : set.ways) {
            if (line.state.alias)
                continue;
            if (candidate == nullptr || line.lru < candidate->lru)
                candidate = &line;
        }
        if (candidate == nullptr)
            break; // every way pinned
        if (can_evict && candidate->state.dirty &&
            !can_evict(candidate->tag, candidate->state)) {
            candidate->state.alias = true;
            ++stats_.aliasPinned;
            continue;
        }
        victim = candidate;
    }

    CacheEviction evicted;
    if (victim == nullptr) {
        // Every way pinned: overflow the set (Section 3.1's linked-list
        // spill). Exceedingly rare; correctness only.
        ++stats_.setOverflows;
        set.spill.push_back(
            {block_addr, CacheLineState{dirty, false, false}});
        return evicted;
    }

    if (victim->valid) {
        ++stats_.evictions;
        if (victim->state.dirty)
            ++stats_.dirtyEvictions;
        evicted.valid = true;
        evicted.addr = victim->tag;
        evicted.state = victim->state;
    }

    victim->valid = true;
    victim->tag = block_addr;
    victim->lru = clock_;
    victim->state = CacheLineState{dirty, false, false};
    return evicted;
}

CacheLineState *
SetAssocCache::findState(Addr block_addr)
{
    if (Line *line = lookup(block_addr))
        return &line->state;
    Set &set = sets_[setIndex(block_addr)];
    for (auto &[addr, state] : set.spill) {
        if (addr == block_addr)
            return &state;
    }
    return nullptr;
}

void
SetAssocCache::setAlias(Addr block_addr, bool alias)
{
    CacheLineState *state = findState(block_addr);
    if (state == nullptr)
        COP_PANIC("setAlias on non-resident block " +
                  std::to_string(block_addr));
    if (alias && !state->alias)
        ++stats_.aliasPinned;
    else if (!alias && state->alias)
        --stats_.aliasPinned;
    state->alias = alias;
}

void
SetAssocCache::invalidate(Addr block_addr)
{
    if (Line *line = lookup(block_addr)) {
        if (line->state.alias)
            --stats_.aliasPinned;
        *line = Line{};
        return;
    }
    Set &set = sets_[setIndex(block_addr)];
    std::erase_if(set.spill,
                  [&](const auto &e) { return e.first == block_addr; });
}

std::vector<CacheEviction>
SetAssocCache::drainDirty()
{
    std::vector<CacheEviction> drained;
    for (auto &set : sets_) {
        for (auto &line : set.ways) {
            if (line.valid && line.state.dirty) {
                drained.push_back({true, line.tag, line.state});
                line.state.dirty = false;
            }
        }
        for (auto &[addr, state] : set.spill) {
            if (state.dirty) {
                drained.push_back({true, addr, state});
                state.dirty = false;
            }
        }
    }
    return drained;
}

} // namespace cop
