/**
 * @file
 * Set-associative write-back cache model used as the shared L3/LLC.
 * Besides the usual tag/LRU machinery it carries the two per-line state
 * bits COP adds (paper Sections 3.1 and 3.3):
 *
 *  - `alias`: the line is an incompressible alias and must never be
 *    written back to DRAM; it is pinned in the cache and excluded from
 *    victim selection. If every way of a set is pinned, the set
 *    overflows into a spill list modelling the paper's linked-list
 *    overflow region in DRAM.
 *  - `wasUncompressed`: the block was stored uncompressed in DRAM when
 *    read (COP-ER uses this on writeback to decide whether an ECC-region
 *    entry already exists).
 */

#ifndef COP_CACHE_SET_ASSOC_CACHE_HPP
#define COP_CACHE_SET_ASSOC_CACHE_HPP

#include <functional>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace cop {

/** Cache geometry and access latency. */
struct CacheConfig
{
    u64 sizeBytes = 4ULL << 20; ///< Table 1: 4 MB L3.
    unsigned ways = 16;
    Cycle latency = 34;

    u64 sets() const { return sizeBytes / kBlockBytes / ways; }

    void
    validate() const
    {
        if (ways == 0 || sizeBytes == 0)
            COP_FATAL("cache geometry must be nonzero");
        const u64 s = sets();
        if (s == 0 || (s & (s - 1)) != 0)
            COP_FATAL("cache set count must be a nonzero power of two");
    }
};

/** Per-line metadata visible to the memory controller. */
struct CacheLineState
{
    bool dirty = false;
    bool alias = false;           ///< Pinned: not allowed in DRAM.
    bool wasUncompressed = false; ///< COP-ER: entry exists in ECC region.
};

/** A line pushed out of the cache by an insert. */
struct CacheEviction
{
    bool valid = false;
    Addr addr = 0;
    CacheLineState state;
};

/** Aggregate cache statistics. */
struct CacheStats
{
    u64 hits = 0;
    u64 misses = 0;
    u64 evictions = 0;
    u64 dirtyEvictions = 0;
    u64 aliasPinned = 0;  ///< Lines currently pinned as aliases.
    u64 setOverflows = 0; ///< Inserts that spilled a pinned set.
    u64 spillHits = 0;    ///< Lookups served from a spill list.

    double
    missRate() const
    {
        const u64 n = hits + misses;
        return n ? static_cast<double>(misses) / n : 0.0;
    }
};

/**
 * The cache model. Tag-only (data contents live in the simulator's
 * functional memory); true-LRU replacement.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &cfg = CacheConfig{});

    const CacheConfig &config() const { return cfg_; }

    /**
     * Look up a block; on a hit the line is touched (LRU) and marked
     * dirty if @p is_write.
     * @return true on hit (including spill-list hits).
     */
    bool access(Addr block_addr, bool is_write);

    /** Non-destructive presence check (no LRU update). */
    bool probe(Addr block_addr) const;

    /**
     * Decides whether a dirty victim may leave the cache. Returning
     * false pins the line as an incompressible alias (paper Section
     * 3.1: the encoder "rejects writebacks of these blocks, requiring
     * them to be kept in the LLC with the alias bit set").
     */
    using EvictFilter = std::function<bool(Addr, const CacheLineState &)>;

    /**
     * Install a block (after a miss). The victim skips alias-pinned
     * lines; if every way is pinned, the new line goes to the set's
     * spill list (modelling the DRAM overflow region) and the returned
     * eviction is empty.
     *
     * @param can_evict optional filter consulted for dirty victims; a
     *        rejected victim is pinned (alias bit) and the next-LRU
     *        line is tried instead.
     * @param installed when non-null, receives a pointer to the newly
     *        installed line's state (valid until the next structural
     *        change), saving the findState lookup callers on the miss
     *        path would otherwise re-do.
     */
    CacheEviction insert(Addr block_addr, bool dirty,
                         const EvictFilter &can_evict = nullptr,
                         CacheLineState **installed = nullptr);

    /** Per-line state bits (line must be resident). */
    CacheLineState *findState(Addr block_addr);

    /** Pin or unpin a resident line as an incompressible alias. */
    void setAlias(Addr block_addr, bool alias);

    /**
     * Same, through a state pointer previously returned by insert or
     * findState — keeps the aliasPinned gauge right without another
     * set scan.
     */
    void setAlias(CacheLineState &state, bool alias);

    /** Remove a resident line without writeback (for tests/drain). */
    void invalidate(Addr block_addr);

    /** Collect and clear all dirty lines (end-of-run drain). */
    std::vector<CacheEviction> drainDirty();

    const CacheStats &stats() const { return stats_; }

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        u64 lru = 0;
        CacheLineState state;
    };

    /** Overflowed (spilled) blocks of one set, modelling the list. */
    using SpillList = std::vector<std::pair<Addr, CacheLineState>>;

    u64 setIndex(Addr block_addr) const;
    /** First way of a set in the flat line array. */
    Line *setBase(u64 set) { return lines_.data() + set * cfg_.ways; }
    const Line *
    setBase(u64 set) const
    {
        return lines_.data() + set * cfg_.ways;
    }
    Line *lookup(Addr block_addr);
    const Line *lookup(Addr block_addr) const;

    CacheConfig cfg_;
    /**
     * All lines in one flat array (sets x ways, set-major) — one
     * allocation, one indirection on the hot lookup path instead of a
     * per-set vector hop.
     */
    std::vector<Line> lines_;
    std::vector<SpillList> spill_;
    u64 setMask_ = 0;
    u64 clock_ = 0;
    CacheStats stats_;
};

} // namespace cop

#endif // COP_CACHE_SET_ASSOC_CACHE_HPP
