#include "compress/fpc.hpp"

namespace cop {

namespace {

/** True iff @p v is a sign extension of its low @p bits bits. */
bool
isSignExt(u32 v, unsigned bits)
{
    const auto s = static_cast<std::int32_t>(v);
    const std::int32_t lo = -(1 << (bits - 1));
    const std::int32_t hi = (1 << (bits - 1)) - 1;
    return s >= lo && s <= hi;
}

} // namespace

FpcPattern
FpcCompressor::classify(u32 word)
{
    if (word == 0)
        return FpcPattern::ZeroWord;
    if (isSignExt(word, 4))
        return FpcPattern::SignExt4;
    if (isSignExt(word, 8))
        return FpcPattern::SignExt8;
    const u8 b0 = word & 0xFF;
    if (b0 == ((word >> 8) & 0xFF) && b0 == ((word >> 16) & 0xFF) &&
        b0 == ((word >> 24) & 0xFF)) {
        return FpcPattern::RepeatedByte;
    }
    if (isSignExt(word, 16))
        return FpcPattern::SignExt16;
    if ((word & 0xFFFF) == 0)
        return FpcPattern::ZeroLowHalf;
    const u16 lo_half = word & 0xFFFF;
    const u16 hi_half = word >> 16;
    if (isSignExt(lo_half | (lo_half & 0x8000 ? 0xFFFF0000u : 0), 8) &&
        isSignExt(hi_half | (hi_half & 0x8000 ? 0xFFFF0000u : 0), 8)) {
        return FpcPattern::TwoSignExt8;
    }
    return FpcPattern::Uncompressed;
}

unsigned
FpcCompressor::payloadBits(FpcPattern p)
{
    switch (p) {
      case FpcPattern::ZeroWord: return 0;
      case FpcPattern::SignExt4: return 4;
      case FpcPattern::SignExt8: return 8;
      case FpcPattern::SignExt16: return 16;
      case FpcPattern::ZeroLowHalf: return 16;
      case FpcPattern::TwoSignExt8: return 16;
      case FpcPattern::RepeatedByte: return 8;
      case FpcPattern::Uncompressed: return 32;
    }
    COP_PANIC("bad FPC pattern");
}

u32
FpcCompressor::extractPayload(u32 word, FpcPattern p)
{
    switch (p) {
      case FpcPattern::ZeroWord: return 0;
      case FpcPattern::SignExt4: return word & 0xF;
      case FpcPattern::SignExt8: return word & 0xFF;
      case FpcPattern::SignExt16: return word & 0xFFFF;
      case FpcPattern::ZeroLowHalf: return word >> 16;
      case FpcPattern::TwoSignExt8:
        return (word & 0xFF) | (((word >> 16) & 0xFF) << 8);
      case FpcPattern::RepeatedByte: return word & 0xFF;
      case FpcPattern::Uncompressed: return word;
    }
    COP_PANIC("bad FPC pattern");
}

u32
FpcCompressor::expand(u32 payload, FpcPattern p)
{
    auto sext = [](u32 v, unsigned bits) -> u32 {
        const u32 sign = 1u << (bits - 1);
        return (v ^ sign) - sign;
    };
    switch (p) {
      case FpcPattern::ZeroWord: return 0;
      case FpcPattern::SignExt4: return sext(payload, 4);
      case FpcPattern::SignExt8: return sext(payload, 8);
      case FpcPattern::SignExt16: return sext(payload, 16);
      case FpcPattern::ZeroLowHalf: return payload << 16;
      case FpcPattern::TwoSignExt8: {
        const u32 lo = sext(payload & 0xFF, 8) & 0xFFFF;
        const u32 hi = sext((payload >> 8) & 0xFF, 8) & 0xFFFF;
        return lo | (hi << 16);
      }
      case FpcPattern::RepeatedByte:
        return payload * 0x01010101u;
      case FpcPattern::Uncompressed: return payload;
    }
    COP_PANIC("bad FPC pattern");
}

int
FpcCompressor::compressedBits(const CacheBlock &block) const
{
    unsigned bits = 0;
    for (unsigned w = 0; w < 16; ++w)
        bits += 3 + payloadBits(classify(block.word32(w)));
    return static_cast<int>(bits);
}

bool
FpcCompressor::canCompress(const CacheBlock &block,
                           unsigned budget_bits) const
{
    unsigned bits = 0;
    for (unsigned w = 0; w < 16; ++w) {
        bits += 3 + payloadBits(classify(block.word32(w)));
        // Every remaining word costs at least its 3-bit prefix, so once
        // even that floor overshoots the budget the total will too.
        if (bits + 3 * (15 - w) > budget_bits)
            return false;
    }
    return bits <= budget_bits;
}

bool
FpcCompressor::compress(const CacheBlock &block, unsigned budget_bits,
                        BitWriter &out) const
{
    if (!canCompress(block, budget_bits))
        return false;
    for (unsigned w = 0; w < 16; ++w) {
        const u32 word = block.word32(w);
        const FpcPattern p = classify(word);
        out.write(static_cast<u64>(p), 3);
        out.write(extractPayload(word, p), payloadBits(p));
    }
    return true;
}

void
FpcCompressor::decompress(BitReader &in, unsigned budget_bits,
                          CacheBlock &out) const
{
    (void)budget_bits;
    for (unsigned w = 0; w < 16; ++w) {
        const auto p = static_cast<FpcPattern>(in.read(3));
        const u32 payload = static_cast<u32>(in.read(payloadBits(p)));
        out.setWord32(w, expand(payload, p));
    }
}

} // namespace cop
