#include "compress/rle.hpp"

#include <array>
#include <bit>

namespace cop {

namespace {

/**
 * Greedy run scan over precomputed per-byte masks (bit i set iff byte i
 * is 0x00 / 0xFF): the same address-order, prefer-3-byte walk as the
 * original byte scan, one shift-and-test per candidate instead of byte
 * loads. @p visit returns false to stop the walk early.
 */
template <typename Visitor>
void
walkRuns(u64 zero, u64 ones, Visitor &&visit)
{
    unsigned w = 0;
    while (w < kBlockBytes / 2) {
        const unsigned off = w * 2;
        const bool z = (zero >> off) & 1;
        const bool o = (ones >> off) & 1;
        if (!z && !o) {
            ++w;
            continue;
        }
        const u64 m = z ? zero : ones;
        if (!((m >> (off + 1)) & 1)) {
            ++w;
            continue;
        }
        unsigned len = 2;
        if (off + 2 < kBlockBytes && ((m >> (off + 2)) & 1))
            len = 3;
        if (!visit(RleRun{z ? u8{0x00} : u8{0xFF}, len, off}))
            return;
        // A 3-byte run spills one byte into the next 16-bit word, so
        // the following candidate offset skips that word entirely.
        w += (len == 3) ? 2 : 1;
    }
}

} // namespace

std::vector<RleRun>
RleCompressor::findRuns(const CacheBlock &block)
{
    u64 zero = 0;
    u64 ones = 0;
    for (unsigned w = 0; w < 8; ++w) {
        const u64 v = block.word64(w);
        zero |= static_cast<u64>(zeroByteMask(v)) << (w * 8);
        ones |= static_cast<u64>(zeroByteMask(~v)) << (w * 8);
    }
    std::vector<RleRun> runs;
    walkRuns(zero, ones, [&](const RleRun &run) {
        runs.push_back(run);
        return true;
    });
    return runs;
}

int
RleCompressor::compressedBits(const CacheBlock &block) const
{
    unsigned freed = 0;
    for (const auto &run : findRuns(block))
        freed += freedBits(run);
    if (freed == 0)
        return -1;
    return static_cast<int>(kBlockBits - freed);
}

bool
RleCompressor::canCompressDigest(const BlockDigest &digest,
                                 const CacheBlock &block,
                                 unsigned budget_bits) const
{
    (void)block;
    // canCompress == (freed > 0 && kBlockBits - freed <= budget), i.e.
    // freed >= max(1, kBlockBits - budget); stop walking as soon as the
    // accumulated runs free enough.
    const unsigned target =
        budget_bits >= kBlockBits ? 1u : kBlockBits - budget_bits;
    unsigned freed = 0;
    walkRuns(digest.zeroBytes, digest.onesBytes, [&](const RleRun &run) {
        freed += freedBits(run);
        return freed < target;
    });
    return freed >= target;
}

bool
RleCompressor::compress(const CacheBlock &block, unsigned budget_bits,
                        BitWriter &out) const
{
    COP_ASSERT(budget_bits < kBlockBits);
    const unsigned need = kBlockBits - budget_bits;

    // Select the minimal prefix of runs (in address order) that frees
    // enough bits. Encoding more runs than needed would change where the
    // decoder believes the metadata ends. At most 32 runs exist (each
    // consumes at least one of the 32 16-bit words), so a fixed array
    // replaces the heap-allocated vectors of the original scan.
    u64 zero = 0;
    u64 ones = 0;
    for (unsigned w = 0; w < 8; ++w) {
        const u64 v = block.word64(w);
        zero |= static_cast<u64>(zeroByteMask(v)) << (w * 8);
        ones |= static_cast<u64>(zeroByteMask(~v)) << (w * 8);
    }
    std::array<RleRun, 32> used;
    unsigned count = 0;
    unsigned freed = 0;
    walkRuns(zero, ones, [&](const RleRun &run) {
        used[count++] = run;
        freed += freedBits(run);
        return freed < need;
    });
    if (freed < need)
        return false;

    u64 covered = 0; // bit i set iff byte i is covered by a run
    for (unsigned r = 0; r < count; ++r) {
        const RleRun &run = used[r];
        out.write(run.value == 0xFF ? 1 : 0, 1);
        out.write(run.length == 3 ? 1 : 0, 1);
        out.write(run.offset / 2, 5);
        covered |= ((run.length == 3 ? 0x7ULL : 0x3ULL) << run.offset);
    }
    // Literal data: every byte not covered by an encoded run, in address
    // order. Batched into up-to-64-bit writes — LSB-first concatenation
    // of 8-bit fields makes the stream identical to per-byte writes.
    u64 packed = 0;
    unsigned packed_bits = 0;
    for (unsigned i = 0; i < kBlockBytes; ++i) {
        if ((covered >> i) & 1)
            continue;
        packed |= static_cast<u64>(block.byte(i)) << packed_bits;
        packed_bits += 8;
        if (packed_bits == 64) {
            out.write(packed, 64);
            packed = 0;
            packed_bits = 0;
        }
    }
    if (packed_bits > 0)
        out.write(packed, packed_bits);
    return true;
}

void
RleCompressor::decompress(BitReader &in, unsigned budget_bits,
                          CacheBlock &out) const
{
    COP_ASSERT(budget_bits < kBlockBits);
    const unsigned need = kBlockBits - budget_bits;

    // Metadata is self-delimiting: keep reading 7-bit descriptors until
    // the bits they free reach the ECC requirement (Section 3.2.3).
    //
    // The stream may be garbage — the COP decoder decompresses even when
    // a code word was flagged uncorrectable (the data is lost either
    // way) — so every read is bounds-checked; malformed input yields a
    // well-defined (if meaningless) block instead of tripping asserts.
    u64 covered = 0; // bit i set iff byte i is covered by a run
    unsigned freed = 0;
    while (freed < need && in.bitsLeft() >= kMetaBits) {
        RleRun run;
        run.value = in.read(1) ? 0xFF : 0x00;
        run.length = in.read(1) ? 3 : 2;
        run.offset = static_cast<unsigned>(in.read(5)) * 2;
        freed += freedBits(run);
        if (run.offset + run.length <= kBlockBytes) {
            for (unsigned i = 0; i < run.length; ++i)
                out.setByte(run.offset + i, run.value);
            covered |= ((run.length == 3 ? 0x7ULL : 0x3ULL) << run.offset);
        }
    }

    // Literal bytes, batched into up-to-64-bit reads. The per-byte
    // original read only while >= 8 bits remained and substituted zero
    // afterwards, so exactly min(literals, bitsLeft/8) bytes come from
    // the stream — reading them in chunks consumes the same bits.
    const unsigned literals =
        kBlockBytes - static_cast<unsigned>(std::popcount(covered));
    const unsigned readable =
        static_cast<unsigned>(in.bitsLeft() / 8);
    unsigned remaining = literals < readable ? literals : readable;
    u64 buf = 0;
    unsigned buf_bytes = 0;
    for (unsigned i = 0; i < kBlockBytes; ++i) {
        if ((covered >> i) & 1)
            continue;
        if (buf_bytes == 0 && remaining > 0) {
            const unsigned chunk = remaining < 8 ? remaining : 8;
            buf = in.read(chunk * 8);
            buf_bytes = chunk;
            remaining -= chunk;
        }
        u8 byte = 0;
        if (buf_bytes > 0) {
            byte = static_cast<u8>(buf);
            buf >>= 8;
            --buf_bytes;
        }
        out.setByte(i, byte);
    }
}

} // namespace cop
