#include "compress/rle.hpp"

namespace cop {

std::vector<RleRun>
RleCompressor::findRuns(const CacheBlock &block)
{
    std::vector<RleRun> runs;
    const auto bytes = block.bytes();
    unsigned w = 0;
    while (w < kBlockBytes / 2) {
        const unsigned off = w * 2;
        const u8 v = bytes[off];
        if ((v == 0x00 || v == 0xFF) && bytes[off + 1] == v) {
            unsigned len = 2;
            if (off + 2 < kBlockBytes && bytes[off + 2] == v)
                len = 3;
            runs.push_back({v, len, off});
            // A 3-byte run spills one byte into the next 16-bit word, so
            // the following candidate offset skips that word entirely.
            w += (len == 3) ? 2 : 1;
        } else {
            ++w;
        }
    }
    return runs;
}

int
RleCompressor::compressedBits(const CacheBlock &block) const
{
    unsigned freed = 0;
    for (const auto &run : findRuns(block))
        freed += freedBits(run);
    if (freed == 0)
        return -1;
    return static_cast<int>(kBlockBits - freed);
}

bool
RleCompressor::compress(const CacheBlock &block, unsigned budget_bits,
                        BitWriter &out) const
{
    COP_ASSERT(budget_bits < kBlockBits);
    const unsigned need = kBlockBits - budget_bits;

    // Select the minimal prefix of runs (in address order) that frees
    // enough bits. Encoding more runs than needed would change where the
    // decoder believes the metadata ends.
    std::vector<RleRun> all = findRuns(block);
    std::vector<RleRun> used;
    unsigned freed = 0;
    for (const auto &run : all) {
        if (freed >= need)
            break;
        used.push_back(run);
        freed += freedBits(run);
    }
    if (freed < need)
        return false;

    for (const auto &run : used) {
        out.write(run.value == 0xFF ? 1 : 0, 1);
        out.write(run.length == 3 ? 1 : 0, 1);
        out.write(run.offset / 2, 5);
    }
    // Literal data: every byte not covered by an encoded run.
    std::vector<bool> covered(kBlockBytes, false);
    for (const auto &run : used) {
        for (unsigned i = 0; i < run.length; ++i)
            covered[run.offset + i] = true;
    }
    for (unsigned i = 0; i < kBlockBytes; ++i) {
        if (!covered[i])
            out.write(block.byte(i), 8);
    }
    return true;
}

void
RleCompressor::decompress(BitReader &in, unsigned budget_bits,
                          CacheBlock &out) const
{
    COP_ASSERT(budget_bits < kBlockBits);
    const unsigned need = kBlockBits - budget_bits;

    // Metadata is self-delimiting: keep reading 7-bit descriptors until
    // the bits they free reach the ECC requirement (Section 3.2.3).
    //
    // The stream may be garbage — the COP decoder decompresses even when
    // a code word was flagged uncorrectable (the data is lost either
    // way) — so every read is bounds-checked; malformed input yields a
    // well-defined (if meaningless) block instead of tripping asserts.
    std::vector<RleRun> runs;
    unsigned freed = 0;
    while (freed < need && in.bitsLeft() >= kMetaBits) {
        RleRun run;
        run.value = in.read(1) ? 0xFF : 0x00;
        run.length = in.read(1) ? 3 : 2;
        run.offset = static_cast<unsigned>(in.read(5)) * 2;
        freed += freedBits(run);
        if (run.offset + run.length <= kBlockBytes)
            runs.push_back(run);
    }

    std::vector<bool> covered(kBlockBytes, false);
    for (const auto &run : runs) {
        for (unsigned i = 0; i < run.length; ++i) {
            out.setByte(run.offset + i, run.value);
            covered[run.offset + i] = true;
        }
    }
    for (unsigned i = 0; i < kBlockBytes; ++i) {
        if (!covered[i]) {
            out.setByte(i, in.bitsLeft() >= 8
                               ? static_cast<u8>(in.read(8))
                               : 0);
        }
    }
}

} // namespace cop
