/**
 * @file
 * Base-Delta-Immediate compression (Pekhimenko et al. 2012). COP's MSB
 * scheme is a hardware-simplified derivative of BDI (paper Section 3.2.1);
 * the full algorithm is implemented here as a reference point for the
 * MSB-vs-BDI ablation bench and for tests. Two-base variant: one explicit
 * base plus an implicit zero base, selected per element by a mask bit.
 */

#ifndef COP_COMPRESS_BDI_HPP
#define COP_COMPRESS_BDI_HPP

#include "compress/compressor.hpp"

namespace cop {

/**
 * BDI encodings tried in order of increasing compressed size. The 4-bit
 * stream header selects the winning encoding.
 */
enum class BdiEncoding : u8 {
    Zeros = 0,        ///< All-zero block: header only.
    Repeated8 = 1,    ///< One 8-byte value repeated: 64-bit payload.
    Base8Delta1 = 2,
    Base8Delta2 = 3,
    Base8Delta4 = 4,
    Base4Delta1 = 5,
    Base4Delta2 = 6,
    Base2Delta1 = 7,
    Uncompressed = 8,
};

/** Two-base BDI compressor over 64-byte blocks. */
class BdiCompressor : public BlockCompressor
{
  public:
    BdiCompressor() = default;

    const char *name() const override { return "BDI"; }
    SchemeId id() const override { return SchemeId::Bdi; }
    int compressedBits(const CacheBlock &block) const override;
    bool compress(const CacheBlock &block, unsigned budget_bits,
                  BitWriter &out) const override;
    void decompress(BitReader &in, unsigned budget_bits,
                    CacheBlock &out) const override;
    bool canCompress(const CacheBlock &block,
                     unsigned budget_bits) const override;

    /** Smallest encoding that can represent @p block. */
    static BdiEncoding bestEncoding(const CacheBlock &block);
    /** Stream size in bits for an encoding (including 4-bit header). */
    static unsigned encodingBits(BdiEncoding e);

  private:
    struct Geometry
    {
        unsigned base_bytes;
        unsigned delta_bytes;
    };
    static bool geometryOf(BdiEncoding e, Geometry &g);
    static bool fitsBaseDelta(const CacheBlock &block, const Geometry &g,
                              u64 &base_out);
};

} // namespace cop

#endif // COP_COMPRESS_BDI_HPP
