/**
 * @file
 * MSB compression (paper Section 3.2.1): a BDI-inspired scheme that
 * removes redundant most-significant bits shared by the eight 8-byte
 * words of a block. Far cheaper than BDI in hardware (no adders) yet
 * effective for both integer and floating-point data; the "shifted"
 * variant skips the IEEE-754 sign bit so FP values of mixed sign with
 * similar exponents still compress (Figure 4).
 */

#ifndef COP_COMPRESS_MSB_HPP
#define COP_COMPRESS_MSB_HPP

#include "compress/compressor.hpp"

namespace cop {

/**
 * MSB compressor.
 *
 * Stream layout: word 0 in full (64 bits), then words 1..7 each with the
 * compared field elided (64 - elideBits bits each). Total size is
 * 512 - 7 * elideBits: 477 bits for the 4-byte ECC configuration
 * (elide 5) and 442 bits for the 8-byte configuration (elide 10).
 */
class MsbCompressor : public BlockCompressor
{
  public:
    /**
     * @param elide_bits Number of shared MSBs removed from words 1..7
     *                   (5 for the 4-byte config, 10 for 8-byte).
     * @param shifted    Skip the sign bit (bit 63) in the comparison.
     */
    explicit MsbCompressor(unsigned elide_bits = 5, bool shifted = true);

    const char *name() const override { return name_; }
    SchemeId id() const override { return SchemeId::Msb; }
    int compressedBits(const CacheBlock &block) const override;
    bool compress(const CacheBlock &block, unsigned budget_bits,
                  BitWriter &out) const override;
    void decompress(BitReader &in, unsigned budget_bits,
                    CacheBlock &out) const override;
    bool canCompressDigest(const BlockDigest &digest,
                           const CacheBlock &block,
                           unsigned budget_bits) const override;

    unsigned elideBits() const { return elide_; }
    bool shifted() const { return shifted_; }

  private:
    /** Mask selecting the compared field within a 64-bit word. */
    u64 fieldMask() const;
    /** Lowest bit position of the compared field. */
    unsigned fieldShift() const;
    /** True iff all eight words agree on the compared field. */
    bool matches(const CacheBlock &block) const;

    unsigned elide_;
    bool shifted_;
    char name_[24];
};

} // namespace cop

#endif // COP_COMPRESS_MSB_HPP
