#include "compress/msb.hpp"

#include <cstdio>

namespace cop {

MsbCompressor::MsbCompressor(unsigned elide_bits, bool shifted)
    : elide_(elide_bits), shifted_(shifted)
{
    COP_ASSERT(elide_ >= 1 && elide_ <= 32);
    std::snprintf(name_, sizeof(name_), "MSB%u%s", elide_,
                  shifted_ ? "s" : "u");
}

unsigned
MsbCompressor::fieldShift() const
{
    // Shifted comparison ignores the sign bit (bit 63): the field spans
    // bits [62, 63 - elide_]; unshifted spans [63, 64 - elide_].
    return (shifted_ ? 63u : 64u) - elide_;
}

u64
MsbCompressor::fieldMask() const
{
    const u64 ones = (elide_ == 64) ? ~0ULL : ((1ULL << elide_) - 1);
    return ones << fieldShift();
}

bool
MsbCompressor::matches(const CacheBlock &block) const
{
    const u64 mask = fieldMask();
    const u64 ref = block.word64(0) & mask;
    for (unsigned w = 1; w < 8; ++w) {
        if ((block.word64(w) & mask) != ref)
            return false;
    }
    return true;
}

int
MsbCompressor::compressedBits(const CacheBlock &block) const
{
    if (!matches(block))
        return -1;
    return static_cast<int>(kBlockBits - 7 * elide_);
}

bool
MsbCompressor::canCompressDigest(const BlockDigest &digest,
                                 const CacheBlock &block,
                                 unsigned budget_bits) const
{
    (void)block;
    // diffMask ORs every word's XOR against word 0, so a zero overlap
    // with the field mask is exactly matches().
    return (digest.diffMask & fieldMask()) == 0 &&
           kBlockBits - 7 * elide_ <= budget_bits;
}

bool
MsbCompressor::compress(const CacheBlock &block, unsigned budget_bits,
                        BitWriter &out) const
{
    if (!canCompress(block, budget_bits))
        return false;

    const unsigned shift = fieldShift();
    const u64 low_mask = (shift == 0) ? 0 : ((1ULL << shift) - 1);

    out.write(block.word64(0), 64);
    for (unsigned w = 1; w < 8; ++w) {
        const u64 v = block.word64(w);
        // Remaining bits: [shift-1, 0] plus anything above the field
        // (only the sign bit, and only in shifted mode).
        u64 packed = v & low_mask;
        unsigned packed_bits = shift;
        if (shifted_) {
            packed |= (v >> 63) << shift;
            packed_bits += 1;
        }
        out.write(packed, packed_bits);
    }
    return true;
}

void
MsbCompressor::decompress(BitReader &in, unsigned budget_bits,
                          CacheBlock &out) const
{
    (void)budget_bits;
    const unsigned shift = fieldShift();
    const u64 mask = fieldMask();
    const u64 low_mask = (shift == 0) ? 0 : ((1ULL << shift) - 1);

    const u64 word0 = in.read(64);
    const u64 field = word0 & mask;
    out.setWord64(0, word0);
    for (unsigned w = 1; w < 8; ++w) {
        unsigned packed_bits = shift + (shifted_ ? 1 : 0);
        const u64 packed = in.read(packed_bits);
        u64 v = (packed & low_mask) | field;
        if (shifted_)
            v |= ((packed >> shift) & 1ULL) << 63;
        out.setWord64(w, v);
    }
}

} // namespace cop
