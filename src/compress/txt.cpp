#include "compress/txt.hpp"

namespace cop {

namespace {

/** MSB of every byte position, the non-ASCII test mask. */
constexpr u64 kHighBits = 0x8080808080808080ULL;

} // namespace

int
TxtCompressor::compressedBits(const CacheBlock &block) const
{
    u64 or_all = 0;
    for (unsigned w = 0; w < 8; ++w)
        or_all |= block.word64(w);
    if (or_all & kHighBits)
        return -1;
    return static_cast<int>(kBlockBytes * 7);
}

bool
TxtCompressor::canCompressDigest(const BlockDigest &digest,
                                 const CacheBlock &block,
                                 unsigned budget_bits) const
{
    (void)block;
    return (digest.orAll & kHighBits) == 0 &&
           kBlockBytes * 7 <= budget_bits;
}

bool
TxtCompressor::compress(const CacheBlock &block, unsigned budget_bits,
                        BitWriter &out) const
{
    if (!canCompress(block, budget_bits))
        return false;
    for (unsigned i = 0; i < kBlockBytes; ++i)
        out.write(block.byte(i) & 0x7F, 7);
    return true;
}

void
TxtCompressor::decompress(BitReader &in, unsigned budget_bits,
                          CacheBlock &out) const
{
    (void)budget_bits;
    for (unsigned i = 0; i < kBlockBytes; ++i)
        out.setByte(i, static_cast<u8>(in.read(7)));
}

} // namespace cop
