#include "compress/txt.hpp"

namespace cop {

int
TxtCompressor::compressedBits(const CacheBlock &block) const
{
    for (unsigned i = 0; i < kBlockBytes; ++i) {
        if (block.byte(i) & 0x80)
            return -1;
    }
    return static_cast<int>(kBlockBytes * 7);
}

bool
TxtCompressor::compress(const CacheBlock &block, unsigned budget_bits,
                        BitWriter &out) const
{
    if (!canCompress(block, budget_bits))
        return false;
    for (unsigned i = 0; i < kBlockBytes; ++i)
        out.write(block.byte(i) & 0x7F, 7);
    return true;
}

void
TxtCompressor::decompress(BitReader &in, unsigned budget_bits,
                          CacheBlock &out) const
{
    (void)budget_bits;
    for (unsigned i = 0; i < kBlockBytes; ++i)
        out.setByte(i, static_cast<u8>(in.read(7)));
}

} // namespace cop
