#include "compress/txt.hpp"

namespace cop {

namespace {

/** MSB of every byte position, the non-ASCII test mask. */
constexpr u64 kHighBits = 0x8080808080808080ULL;

} // namespace

int
TxtCompressor::compressedBits(const CacheBlock &block) const
{
    u64 or_all = 0;
    for (unsigned w = 0; w < 8; ++w)
        or_all |= block.word64(w);
    if (or_all & kHighBits)
        return -1;
    return static_cast<int>(kBlockBytes * 7);
}

bool
TxtCompressor::canCompressDigest(const BlockDigest &digest,
                                 const CacheBlock &block,
                                 unsigned budget_bits) const
{
    (void)block;
    return (digest.orAll & kHighBits) == 0 &&
           kBlockBytes * 7 <= budget_bits;
}

bool
TxtCompressor::compress(const CacheBlock &block, unsigned budget_bits,
                        BitWriter &out) const
{
    if (!canCompress(block, budget_bits))
        return false;
    // Eight 7-bit fields packed into one 56-bit write per word: LSB-first
    // concatenation makes the stream identical to writing each byte's low
    // seven bits individually.
    for (unsigned w = 0; w < 8; ++w) {
        const u64 v = block.word64(w);
        u64 packed = 0;
        for (unsigned b = 0; b < 8; ++b)
            packed |= ((v >> (b * 8)) & 0x7F) << (b * 7);
        out.write(packed, 56);
    }
    return true;
}

void
TxtCompressor::decompress(BitReader &in, unsigned budget_bits,
                          CacheBlock &out) const
{
    (void)budget_bits;
    for (unsigned w = 0; w < 8; ++w) {
        const u64 packed = in.read(56);
        u64 v = 0;
        for (unsigned b = 0; b < 8; ++b)
            v |= ((packed >> (b * 7)) & 0x7F) << (b * 8);
        out.setWord64(w, v);
    }
}

} // namespace cop
