/**
 * @file
 * Run-length encoding tuned for COP (paper Section 3.2.3, Figure 5).
 * Extracts short runs of 0x00 or 0xFF bytes; each run costs exactly 7
 * bits of metadata (1 value bit, 1 length bit, 5-bit 16-bit-word offset),
 * so freeing the 34 bits the 4-byte ECC configuration needs takes only
 * two 3-byte runs, four 2-byte runs, or a mix. Only the minimum number
 * of runs is encoded; the metadata stream is self-delimiting because the
 * decoder stops reading run descriptors once enough bits have been freed.
 */

#ifndef COP_COMPRESS_RLE_HPP
#define COP_COMPRESS_RLE_HPP

#include <vector>

#include "compress/compressor.hpp"

namespace cop {

/** One run found in a block: @p offset is a byte offset (even). */
struct RleRun
{
    u8 value;        ///< 0x00 or 0xFF.
    unsigned length; ///< 2 or 3 bytes.
    unsigned offset; ///< Starting byte (always 16-bit aligned).
};

/**
 * RLE compressor. Runs start at 16-bit word boundaries (so the 5-bit
 * offset field can address all 32 positions in a 64-byte block) and never
 * overlap; the encoder scans in address order and prefers 3-byte runs.
 */
class RleCompressor : public BlockCompressor
{
  public:
    RleCompressor() = default;

    const char *name() const override { return "RLE"; }
    SchemeId id() const override { return SchemeId::Rle; }
    int compressedBits(const CacheBlock &block) const override;
    bool compress(const CacheBlock &block, unsigned budget_bits,
                  BitWriter &out) const override;
    void decompress(BitReader &in, unsigned budget_bits,
                    CacheBlock &out) const override;
    bool canCompressDigest(const BlockDigest &digest,
                           const CacheBlock &block,
                           unsigned budget_bits) const override;

    /** All non-overlapping runs, greedy scan — exposed for tests. */
    static std::vector<RleRun> findRuns(const CacheBlock &block);

    /** Bits freed by one run: run bits minus 7 metadata bits. */
    static unsigned freedBits(const RleRun &run) { return run.length * 8 - 7; }

  private:
    static constexpr unsigned kMetaBits = 7;
};

} // namespace cop

#endif // COP_COMPRESS_RLE_HPP
