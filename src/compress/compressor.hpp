/**
 * @file
 * Abstract interface for 64-byte block compressors. COP's compressors
 * differ from conventional cache/memory compression in their goal: they
 * only need to free a handful of bytes per block (just enough for inline
 * ECC check bits), so the interface is budget-driven — "fit this block in
 * at most N bits" — rather than "compress as hard as you can".
 */

#ifndef COP_COMPRESS_COMPRESSOR_HPP
#define COP_COMPRESS_COMPRESSOR_HPP

#include "common/bits.hpp"
#include "common/cache_block.hpp"
#include "common/types.hpp"

namespace cop {

/**
 * Identifier stored in the 2-bit scheme tag of every compressed COP block
 * (Section 3.2 of the paper budgets 2 extra bits for exactly this).
 * Values 0-2 are the tags that appear on "DRAM"; Fpc and Bdi exist only
 * as standalone comparison baselines and are never tagged.
 */
enum class SchemeId : u8 {
    Msb = 0,
    Rle = 1,
    Txt = 2,
    Fpc = 3,
    Bdi = 4,
};

/** Number of tag bits in a combined-scheme compressed payload. */
inline constexpr unsigned kSchemeTagBits = 2;

/**
 * Bitmask of the zero bytes of @p w: bit i is set iff byte i == 0x00.
 * SWAR: adding 0x7F to a byte's low 7 bits carries into its 0x80 bit
 * iff any low bit was set (the sum never exceeds 0xFE, so no carry
 * crosses a byte boundary — unlike the classic (w - 0x01..01) trick,
 * whose borrow falsely flags a 0x01 byte sitting above a zero byte).
 * OR-ing w back in covers the 0x80 bit itself; a byte's flag survives
 * the complement iff the byte was 0x00. The multiply then gathers the
 * eight flag bits (at positions 8i after the shift) into the top byte:
 * the partial-product exponents 8i + 7k + 7 are pairwise distinct, so
 * the sum is carry-free.
 */
inline u8
zeroByteMask(u64 w)
{
    const u64 k7f = 0x7F7F7F7F7F7F7F7FULL;
    const u64 t = ~(((w & k7f) + k7f) | w) & ~k7f;
    return static_cast<u8>(((t >> 7) * 0x0102040810204080ULL) >> 56);
}

/**
 * One-pass per-word digest of a 64-byte block: everything the cheap
 * scheme admission checks need, computed in a single sweep over the
 * eight 64-bit words. Each field is an exact predicate source — the
 * digest-based checks in canCompressDigest() overrides are provably
 * equivalent to running the scheme's compressedBits() from scratch, so
 * scheme selection (and therefore every stored image) is unchanged.
 */
struct BlockDigest
{
    /** OR over words 1..7 of (word ^ word 0): MSB field agreement. */
    u64 diffMask = 0;
    /** OR of all eight words: TXT's ASCII test is one AND against it. */
    u64 orAll = 0;
    /** Bit i set iff byte i of the block is 0x00 (RLE run candidates). */
    u64 zeroBytes = 0;
    /** Bit i set iff byte i of the block is 0xFF. */
    u64 onesBytes = 0;
};

/** Compute the digest of @p block in one pass. */
inline BlockDigest
computeDigest(const CacheBlock &block)
{
    BlockDigest d;
    const u64 w0 = block.word64(0);
    for (unsigned w = 0; w < 8; ++w) {
        const u64 v = block.word64(w);
        d.diffMask |= v ^ w0;
        d.orAll |= v;
        d.zeroBytes |= static_cast<u64>(zeroByteMask(v)) << (w * 8);
        d.onesBytes |= static_cast<u64>(zeroByteMask(~v)) << (w * 8);
    }
    return d;
}

/**
 * A block compressor. Implementations are stateless and thread-compatible;
 * all methods are const.
 */
class BlockCompressor
{
  public:
    virtual ~BlockCompressor() = default;

    /** Human-readable scheme name (appears in bench output). */
    virtual const char *name() const = 0;

    /** Scheme identifier. */
    virtual SchemeId id() const = 0;

    /**
     * Smallest compressed size, in bits, this scheme can achieve for
     * @p block, or -1 if the scheme cannot represent the block at all.
     * Used by the ratio-sweep experiments (Figure 1).
     */
    virtual int compressedBits(const CacheBlock &block) const = 0;

    /**
     * Compress @p block into @p out, producing at most @p budget_bits
     * bits. Budget-aware schemes (RLE) may emit exactly as much
     * compression as the budget requires and no more, mirroring the
     * paper's minimal-run encoding.
     *
     * @return false (and writes nothing) if the block does not fit.
     */
    virtual bool compress(const CacheBlock &block, unsigned budget_bits,
                          BitWriter &out) const = 0;

    /**
     * Decompress a stream previously produced by compress() with the same
     * @p budget_bits.
     */
    virtual void decompress(BitReader &in, unsigned budget_bits,
                            CacheBlock &out) const = 0;

    /**
     * True iff the block fits the budget under this scheme. Virtual so
     * schemes whose compressedBits() keeps working after the budget is
     * already blown (FPC's per-word sum, BDI's encoding ladder) can
     * thread the budget through and exit early. Overrides must return
     * exactly what the default would.
     */
    virtual bool
    canCompress(const CacheBlock &block, unsigned budget_bits) const
    {
        const int n = compressedBits(block);
        return n >= 0 && static_cast<unsigned>(n) <= budget_bits;
    }

    /**
     * canCompress() with a precomputed digest. Schemes whose admission
     * test is a pure function of the digest override this to skip
     * re-deriving block properties per trial; the answer must be
     * identical to canCompress(block, budget_bits).
     */
    virtual bool
    canCompressDigest(const BlockDigest &digest, const CacheBlock &block,
                      unsigned budget_bits) const
    {
        (void)digest;
        return canCompress(block, budget_bits);
    }
};

} // namespace cop

#endif // COP_COMPRESS_COMPRESSOR_HPP
