/**
 * @file
 * Abstract interface for 64-byte block compressors. COP's compressors
 * differ from conventional cache/memory compression in their goal: they
 * only need to free a handful of bytes per block (just enough for inline
 * ECC check bits), so the interface is budget-driven — "fit this block in
 * at most N bits" — rather than "compress as hard as you can".
 */

#ifndef COP_COMPRESS_COMPRESSOR_HPP
#define COP_COMPRESS_COMPRESSOR_HPP

#include "common/bits.hpp"
#include "common/cache_block.hpp"
#include "common/types.hpp"

namespace cop {

/**
 * Identifier stored in the 2-bit scheme tag of every compressed COP block
 * (Section 3.2 of the paper budgets 2 extra bits for exactly this).
 * Values 0-2 are the tags that appear on "DRAM"; Fpc and Bdi exist only
 * as standalone comparison baselines and are never tagged.
 */
enum class SchemeId : u8 {
    Msb = 0,
    Rle = 1,
    Txt = 2,
    Fpc = 3,
    Bdi = 4,
};

/** Number of tag bits in a combined-scheme compressed payload. */
inline constexpr unsigned kSchemeTagBits = 2;

/**
 * A block compressor. Implementations are stateless and thread-compatible;
 * all methods are const.
 */
class BlockCompressor
{
  public:
    virtual ~BlockCompressor() = default;

    /** Human-readable scheme name (appears in bench output). */
    virtual const char *name() const = 0;

    /** Scheme identifier. */
    virtual SchemeId id() const = 0;

    /**
     * Smallest compressed size, in bits, this scheme can achieve for
     * @p block, or -1 if the scheme cannot represent the block at all.
     * Used by the ratio-sweep experiments (Figure 1).
     */
    virtual int compressedBits(const CacheBlock &block) const = 0;

    /**
     * Compress @p block into @p out, producing at most @p budget_bits
     * bits. Budget-aware schemes (RLE) may emit exactly as much
     * compression as the budget requires and no more, mirroring the
     * paper's minimal-run encoding.
     *
     * @return false (and writes nothing) if the block does not fit.
     */
    virtual bool compress(const CacheBlock &block, unsigned budget_bits,
                          BitWriter &out) const = 0;

    /**
     * Decompress a stream previously produced by compress() with the same
     * @p budget_bits.
     */
    virtual void decompress(BitReader &in, unsigned budget_bits,
                            CacheBlock &out) const = 0;

    /** True iff the block fits the budget under this scheme. */
    bool
    canCompress(const CacheBlock &block, unsigned budget_bits) const
    {
        const int n = compressedBits(block);
        return n >= 0 && static_cast<unsigned>(n) <= budget_bits;
    }
};

} // namespace cop

#endif // COP_COMPRESS_COMPRESSOR_HPP
