/**
 * @file
 * Frequent Pattern Compression (Alameldeen & Wood 2004), the comparison
 * baseline of paper Sections 3.2 and 4 (Figures 1, 8, 9). Each 32-bit
 * word carries a 3-bit prefix encoding one of eight patterns, so a block
 * always pays 48 bits of metadata — the fixed overhead that makes FPC
 * inferior to RLE/MSB for COP's low-compression-ratio use case.
 */

#ifndef COP_COMPRESS_FPC_HPP
#define COP_COMPRESS_FPC_HPP

#include "compress/compressor.hpp"

namespace cop {

/**
 * FPC word patterns. One 3-bit prefix per 32-bit word; the payload size
 * is pattern-dependent. We use the classic per-word formulation (the
 * paper's accounting: "a 3-bit prefix per 32-bit word, thus ... 48 bits
 * of metadata per block"), without zero-run aggregation.
 */
enum class FpcPattern : u8 {
    ZeroWord = 0,      ///< 0 payload bits.
    SignExt4 = 1,      ///< 4 payload bits.
    SignExt8 = 2,      ///< 8 payload bits.
    SignExt16 = 3,     ///< 16 payload bits.
    ZeroLowHalf = 4,   ///< Halfword padded with zeros; 16 payload bits.
    TwoSignExt8 = 5,   ///< Two halfwords, each a sign-extended byte; 16.
    RepeatedByte = 6,  ///< 8 payload bits.
    Uncompressed = 7,  ///< 32 payload bits.
};

/** FPC block compressor (16 x 32-bit words). */
class FpcCompressor : public BlockCompressor
{
  public:
    FpcCompressor() = default;

    const char *name() const override { return "FPC"; }
    SchemeId id() const override { return SchemeId::Fpc; }
    int compressedBits(const CacheBlock &block) const override;
    bool compress(const CacheBlock &block, unsigned budget_bits,
                  BitWriter &out) const override;
    void decompress(BitReader &in, unsigned budget_bits,
                    CacheBlock &out) const override;
    bool canCompress(const CacheBlock &block,
                     unsigned budget_bits) const override;

    /** Best (smallest-payload) pattern for one word — exposed for tests. */
    static FpcPattern classify(u32 word);
    /** Payload size in bits for a pattern. */
    static unsigned payloadBits(FpcPattern p);

  private:
    static u32 extractPayload(u32 word, FpcPattern p);
    static u32 expand(u32 payload, FpcPattern p);
};

} // namespace cop

#endif // COP_COMPRESS_FPC_HPP
