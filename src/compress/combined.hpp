/**
 * @file
 * The combined COP compression scheme (paper Sections 3.2 / 4): every
 * compressed payload leads with a 2-bit tag selecting TXT, MSB or RLE.
 * In the 4-byte ECC configuration all three schemes participate; in the
 * 8-byte configuration TXT's 448-bit output exceeds the 446-bit budget,
 * so only MSB (10-bit elide) and RLE are available — matching the paper,
 * whose Figure 8 (8-byte) omits TXT while Figure 9 (4-byte) includes it.
 */

#ifndef COP_COMPRESS_COMBINED_HPP
#define COP_COMPRESS_COMBINED_HPP

#include <memory>
#include <optional>
#include <vector>

#include "compress/compressor.hpp"
#include "compress/msb.hpp"
#include "compress/rle.hpp"
#include "compress/txt.hpp"

namespace cop {

/**
 * Budget-driven multi-scheme compressor producing tagged payloads.
 *
 * Payload layout (LSB-first bit stream): 2-bit scheme tag, then the
 * scheme's stream, then zero padding up to payloadBits().
 */
class CombinedCompressor
{
  public:
    /**
     * @param check_bytes ECC bytes to free per 64-byte block: 4 (the
     *        paper's preferred configuration) or 8.
     */
    explicit CombinedCompressor(unsigned check_bytes);

    /** Bits of payload carried by a compressed block (480 or 448). */
    unsigned payloadBits() const { return payload_bits_; }
    /** Payload size in whole bytes (60 or 56). */
    unsigned payloadBytes() const { return payload_bits_ / 8; }
    /** Bits available to a scheme's stream after the tag (478 or 446). */
    unsigned streamBudget() const { return payload_bits_ - kSchemeTagBits; }
    /** ECC bytes this configuration frees per block. */
    unsigned checkBytes() const { return check_bytes_; }

    /**
     * Try to compress @p block into @p payload (payloadBytes() bytes,
     * zeroed here). Schemes are tried in tag order; each trial is a
     * digest-based admission check computed once per block, so losing
     * schemes cost a mask test rather than a full scan.
     *
     * @param trials if non-null, incremented by the number of scheme
     *        admission checks performed.
     * @return the scheme used, or std::nullopt if incompressible.
     */
    std::optional<SchemeId> compress(const CacheBlock &block,
                                     std::span<u8> payload,
                                     unsigned *trials = nullptr) const;

    /** Reverse of compress(); @p payload must hold payloadBytes(). */
    CacheBlock decompress(std::span<const u8> payload) const;

    /** True iff any participating scheme fits the budget. */
    bool compressible(const CacheBlock &block,
                      unsigned *trials = nullptr) const;

    /** Participating schemes, in tag order. */
    const std::vector<const BlockCompressor *> &schemes() const
    {
        return views_;
    }

  private:
    const BlockCompressor *schemeById(SchemeId id) const;

    unsigned check_bytes_;
    unsigned payload_bits_;
    std::vector<std::unique_ptr<BlockCompressor>> owned_;
    std::vector<const BlockCompressor *> views_;
};

} // namespace cop

#endif // COP_COMPRESS_COMBINED_HPP
