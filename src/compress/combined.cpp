#include "compress/combined.hpp"

#include <cstring>

namespace cop {

CombinedCompressor::CombinedCompressor(unsigned check_bytes)
    : check_bytes_(check_bytes),
      payload_bits_(kBlockBits - 8 * check_bytes)
{
    if (check_bytes != 4 && check_bytes != 8)
        COP_FATAL("COP supports 4- or 8-byte ECC configurations");

    // 4-byte config: 5-bit shifted MSB compare; 8-byte: 10-bit compare
    // (Section 3.2.1: "to free more than 4 bytes per data block, we can
    // simply increase the number of MSBs compared").
    owned_.push_back(
        std::make_unique<MsbCompressor>(check_bytes == 4 ? 5 : 10, true));
    owned_.push_back(std::make_unique<RleCompressor>());
    if (check_bytes == 4)
        owned_.push_back(std::make_unique<TxtCompressor>());
    for (const auto &c : owned_)
        views_.push_back(c.get());
}

const BlockCompressor *
CombinedCompressor::schemeById(SchemeId id) const
{
    for (const auto *c : views_) {
        if (c->id() == id)
            return c;
    }
    return nullptr;
}

std::optional<SchemeId>
CombinedCompressor::compress(const CacheBlock &block,
                             std::span<u8> payload,
                             unsigned *trials) const
{
    COP_ASSERT(payload.size() >= payloadBytes());
    const BlockDigest digest = computeDigest(block);
    for (const auto *scheme : views_) {
        if (trials != nullptr)
            ++*trials;
        if (!scheme->canCompressDigest(digest, block, streamBudget()))
            continue;
        std::memset(payload.data(), 0, payloadBytes());
        BitWriter writer(payload.first(payloadBytes()));
        writer.write(static_cast<u64>(scheme->id()), kSchemeTagBits);
        const bool ok = scheme->compress(block, streamBudget(), writer);
        COP_ASSERT(ok);
        return scheme->id();
    }
    return std::nullopt;
}

CacheBlock
CombinedCompressor::decompress(std::span<const u8> payload) const
{
    COP_ASSERT(payload.size() >= payloadBytes());
    BitReader reader(payload.first(payloadBytes()));
    const auto tag = static_cast<SchemeId>(reader.read(kSchemeTagBits));
    const BlockCompressor *scheme = schemeById(tag);
    CacheBlock out;
    if (scheme == nullptr) {
        // Unreachable for intact payloads (compress() only emits known
        // tags); reachable when the COP decoder decompresses a block it
        // already flagged as uncorrectably damaged. The data is lost
        // either way, so return a deterministic placeholder.
        return out;
    }
    scheme->decompress(reader, streamBudget(), out);
    return out;
}

bool
CombinedCompressor::compressible(const CacheBlock &block,
                                 unsigned *trials) const
{
    const BlockDigest digest = computeDigest(block);
    for (const auto *scheme : views_) {
        if (trials != nullptr)
            ++*trials;
        if (scheme->canCompressDigest(digest, block, streamBudget()))
            return true;
    }
    return false;
}

} // namespace cop
