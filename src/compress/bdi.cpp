#include "compress/bdi.hpp"

namespace cop {

namespace {

/** Read a little-endian value of @p bytes bytes at element @p i. */
u64
element(const CacheBlock &block, unsigned bytes, unsigned i)
{
    switch (bytes) {
      case 8: return block.word64(i);
      case 4: return block.word32(i);
      case 2: return block.word16(i);
      default: break;
    }
    u64 v = 0;
    for (unsigned b = 0; b < bytes; ++b)
        v |= static_cast<u64>(block.byte(i * bytes + b)) << (8 * b);
    return v;
}

void
setElement(CacheBlock &block, unsigned bytes, unsigned i, u64 v)
{
    switch (bytes) {
      case 8: block.setWord64(i, v); return;
      case 4: block.setWord32(i, static_cast<u32>(v)); return;
      case 2: block.setWord16(i, static_cast<u16>(v)); return;
      default: break;
    }
    for (unsigned b = 0; b < bytes; ++b)
        block.setByte(i * bytes + b, static_cast<u8>(v >> (8 * b)));
}

/** Does signed @p delta fit in @p bytes bytes? */
bool
deltaFits(i64 delta, unsigned bytes)
{
    const i64 lo = -(i64(1) << (8 * bytes - 1));
    const i64 hi = (i64(1) << (8 * bytes - 1)) - 1;
    return delta >= lo && delta <= hi;
}

/** Sign-extend a @p bytes-byte little-endian field. */
i64
signExtend(u64 v, unsigned bytes)
{
    const unsigned shift = 64 - 8 * bytes;
    return static_cast<i64>(v << shift) >> shift;
}

} // namespace

bool
BdiCompressor::geometryOf(BdiEncoding e, Geometry &g)
{
    switch (e) {
      case BdiEncoding::Base8Delta1: g = {8, 1}; return true;
      case BdiEncoding::Base8Delta2: g = {8, 2}; return true;
      case BdiEncoding::Base8Delta4: g = {8, 4}; return true;
      case BdiEncoding::Base4Delta1: g = {4, 1}; return true;
      case BdiEncoding::Base4Delta2: g = {4, 2}; return true;
      case BdiEncoding::Base2Delta1: g = {2, 1}; return true;
      default: return false;
    }
}

unsigned
BdiCompressor::encodingBits(BdiEncoding e)
{
    constexpr unsigned header = 4;
    Geometry g;
    switch (e) {
      case BdiEncoding::Zeros: return header;
      case BdiEncoding::Repeated8: return header + 64;
      case BdiEncoding::Uncompressed: return header + kBlockBits;
      default: break;
    }
    BdiCompressor::geometryOf(e, g);
    const unsigned elems = kBlockBytes / g.base_bytes;
    // base + per-element zero-base mask bit + per-element delta.
    return header + 8 * g.base_bytes + elems + elems * 8 * g.delta_bytes;
}

bool
BdiCompressor::fitsBaseDelta(const CacheBlock &block, const Geometry &g,
                             u64 &base_out)
{
    const unsigned elems = kBlockBytes / g.base_bytes;
    // The explicit base is the first element whose value does not itself
    // fit in the delta field (otherwise it can ride the implicit zero
    // base and the explicit base remains free for a later element).
    // Single pass: elements that fit the zero base are skipped, the
    // first that does not becomes the base (its own delta is zero), and
    // every later non-fitting element must be within delta of it.
    u64 base = 0;
    bool have_base = false;
    for (unsigned i = 0; i < elems; ++i) {
        const i64 v = signExtend(element(block, g.base_bytes, i),
                                 g.base_bytes);
        if (deltaFits(v, g.delta_bytes))
            continue;
        if (!have_base) {
            base = static_cast<u64>(v);
            have_base = true;
        } else if (!deltaFits(v - static_cast<i64>(base),
                              g.delta_bytes)) {
            return false;
        }
    }
    base_out = have_base ? base : 0;
    return true;
}

BdiEncoding
BdiCompressor::bestEncoding(const CacheBlock &block)
{
    if (block.isZero())
        return BdiEncoding::Zeros;

    bool repeated = true;
    const u64 first = block.word64(0);
    for (unsigned w = 1; w < 8; ++w) {
        if (block.word64(w) != first) {
            repeated = false;
            break;
        }
    }
    if (repeated)
        return BdiEncoding::Repeated8;

    // Candidates in order of increasing compressed size.
    static constexpr BdiEncoding order[] = {
        BdiEncoding::Base8Delta1, BdiEncoding::Base4Delta1,
        BdiEncoding::Base8Delta2, BdiEncoding::Base2Delta1,
        BdiEncoding::Base4Delta2, BdiEncoding::Base8Delta4,
    };
    for (BdiEncoding e : order) {
        Geometry g;
        geometryOf(e, g);
        u64 base;
        if (fitsBaseDelta(block, g, base))
            return e;
    }
    return BdiEncoding::Uncompressed;
}

int
BdiCompressor::compressedBits(const CacheBlock &block) const
{
    const BdiEncoding e = bestEncoding(block);
    if (e == BdiEncoding::Uncompressed)
        return -1;
    return static_cast<int>(encodingBits(e));
}

bool
BdiCompressor::canCompress(const CacheBlock &block,
                           unsigned budget_bits) const
{
    // Mirrors bestEncoding(), but with the budget threaded through: the
    // candidate ladder is ordered by non-decreasing encodingBits, so the
    // first candidate over budget means no later one can fit either —
    // no point running its base+delta trial.
    if (block.isZero())
        return encodingBits(BdiEncoding::Zeros) <= budget_bits;

    const u64 first = block.word64(0);
    bool repeated = true;
    for (unsigned w = 1; w < 8; ++w) {
        if (block.word64(w) != first) {
            repeated = false;
            break;
        }
    }
    if (repeated)
        return encodingBits(BdiEncoding::Repeated8) <= budget_bits;

    static constexpr BdiEncoding order[] = {
        BdiEncoding::Base8Delta1, BdiEncoding::Base4Delta1,
        BdiEncoding::Base8Delta2, BdiEncoding::Base2Delta1,
        BdiEncoding::Base4Delta2, BdiEncoding::Base8Delta4,
    };
    for (BdiEncoding e : order) {
        if (encodingBits(e) > budget_bits)
            return false;
        Geometry g;
        geometryOf(e, g);
        u64 base;
        if (fitsBaseDelta(block, g, base))
            return true;
    }
    return false;
}

bool
BdiCompressor::compress(const CacheBlock &block, unsigned budget_bits,
                        BitWriter &out) const
{
    if (!canCompress(block, budget_bits))
        return false;

    const BdiEncoding e = bestEncoding(block);
    out.write(static_cast<u64>(e), 4);
    switch (e) {
      case BdiEncoding::Zeros:
        return true;
      case BdiEncoding::Repeated8:
        out.write(block.word64(0), 64);
        return true;
      default:
        break;
    }

    Geometry g;
    geometryOf(e, g);
    u64 base = 0;
    COP_ASSERT(fitsBaseDelta(block, g, base));
    const unsigned elems = kBlockBytes / g.base_bytes;
    out.write(base, 8 * g.base_bytes);
    for (unsigned i = 0; i < elems; ++i) {
        const i64 v = signExtend(element(block, g.base_bytes, i),
                                 g.base_bytes);
        const bool zero_base = deltaFits(v, g.delta_bytes);
        const i64 delta = zero_base ? v : v - static_cast<i64>(base);
        out.write(zero_base ? 0 : 1, 1);
        out.write(static_cast<u64>(delta) &
                      ((g.delta_bytes == 8) ? ~0ULL
                                            : ((1ULL << (8 * g.delta_bytes)) - 1)),
                  8 * g.delta_bytes);
    }
    return true;
}

void
BdiCompressor::decompress(BitReader &in, unsigned budget_bits,
                          CacheBlock &out) const
{
    (void)budget_bits;
    const auto e = static_cast<BdiEncoding>(in.read(4));
    switch (e) {
      case BdiEncoding::Zeros:
        out = CacheBlock();
        return;
      case BdiEncoding::Repeated8: {
        const u64 v = in.read(64);
        for (unsigned w = 0; w < 8; ++w)
            out.setWord64(w, v);
        return;
      }
      default:
        break;
    }

    Geometry g;
    COP_ASSERT(geometryOf(e, g));
    const unsigned elems = kBlockBytes / g.base_bytes;
    const i64 base = signExtend(in.read(8 * g.base_bytes), g.base_bytes);
    for (unsigned i = 0; i < elems; ++i) {
        const bool use_base = in.read(1) != 0;
        const i64 delta = signExtend(in.read(8 * g.delta_bytes),
                                     g.delta_bytes);
        const i64 v = use_base ? base + delta : delta;
        setElement(out, g.base_bytes, i, static_cast<u64>(v));
    }
}

} // namespace cop
