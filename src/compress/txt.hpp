/**
 * @file
 * Text compression (paper Section 3.2.4): if every byte of a block is an
 * ASCII character (MSB zero — which also covers the zero padding bytes of
 * UTF-16-encoded ASCII), the 64 most-significant bits can be elided,
 * compressing the block to 448 bits. That fits the 4-byte ECC budget
 * (478 bits) but not the 8-byte budget (446 bits), so TXT participates
 * only in the 4-byte combined scheme — exactly as in the paper, where TXT
 * appears in Figure 9 but not Figure 8.
 */

#ifndef COP_COMPRESS_TXT_HPP
#define COP_COMPRESS_TXT_HPP

#include "compress/compressor.hpp"

namespace cop {

/** ASCII MSB-elision compressor: 64 x 7-bit characters. */
class TxtCompressor : public BlockCompressor
{
  public:
    TxtCompressor() = default;

    const char *name() const override { return "TXT"; }
    SchemeId id() const override { return SchemeId::Txt; }
    int compressedBits(const CacheBlock &block) const override;
    bool compress(const CacheBlock &block, unsigned budget_bits,
                  BitWriter &out) const override;
    void decompress(BitReader &in, unsigned budget_bits,
                    CacheBlock &out) const override;
    bool canCompressDigest(const BlockDigest &digest,
                           const CacheBlock &block,
                           unsigned budget_bits) const override;
};

} // namespace cop

#endif // COP_COMPRESS_TXT_HPP
