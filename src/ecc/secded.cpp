#include "ecc/secded.hpp"

#include <bit>

namespace cop {

namespace {

/**
 * Enumerate candidate data columns for a Hsiao code: odd weight >= 3,
 * ordered by weight then value, so code construction is deterministic.
 *
 * Within one weight the walk uses the next-popcount-permutation trick
 * (Gosper's hack): each step produces the next-larger value with the
 * same popcount in O(1), so construction costs O(weights * count)
 * instead of O(weights * 2^r) — the difference between scanning 2^11
 * values eleven times and visiting only the 512 columns wide523()
 * actually uses. The enumeration order is identical to the original
 * full scan; tests/ecc_test.cpp asserts the generated columns are
 * unchanged against a brute-force recomputation.
 */
std::vector<u32>
hsiaoDataColumns(unsigned r, unsigned count)
{
    std::vector<u32> cols;
    cols.reserve(count);
    const u32 limit = 1u << r;
    for (unsigned weight = 3; weight <= r && cols.size() < count;
         weight += 2) {
        u32 v = (1u << weight) - 1; // smallest value of this weight
        while (v < limit && cols.size() < count) {
            cols.push_back(v);
            const u32 low = v & (~v + 1u);
            const u32 ripple = v + low;
            v = ripple | (((v ^ ripple) >> 2) / low);
        }
    }
    return cols;
}

/** syndrome -> bit index map; every column must be distinct. */
std::vector<int>
buildSynToBit(const std::vector<u32> &columns, unsigned r)
{
    std::vector<int> map(1u << r, -1);
    for (unsigned i = 0; i < columns.size(); ++i) {
        COP_ASSERT(map[columns[i]] == -1);
        map[columns[i]] = static_cast<int>(i);
    }
    return map;
}

/**
 * Per-(byte position, byte value) syndrome contribution table — the
 * software analogue of the parallel XOR trees in Figure 2(b). Shared by
 * HsiaoCode and HammingCode; bits at positions >= n contribute nothing.
 */
std::vector<u32>
buildByteSyndromeTable(const std::vector<u32> &columns, unsigned n)
{
    const unsigned num_bytes = (n + 7) / 8;
    std::vector<u32> table(static_cast<size_t>(num_bytes) * 256, 0);
    for (unsigned p = 0; p < num_bytes; ++p) {
        for (unsigned v = 0; v < 256; ++v) {
            u32 s = 0;
            for (unsigned b = 0; b < 8; ++b) {
                const unsigned idx = p * 8 + b;
                if ((v >> b & 1u) && idx < n)
                    s ^= columns[idx];
            }
            table[static_cast<size_t>(p) * 256 + v] = s;
        }
    }
    return table;
}

/** Table-driven syndrome: one lookup + XOR per codeword byte. */
u32
tableSyndrome(const std::vector<u32> &table, std::span<const u8> codeword,
              unsigned num_bytes)
{
    u32 s = 0;
    const u32 *t = table.data();
    for (unsigned p = 0; p < num_bytes; ++p)
        s ^= t[static_cast<size_t>(p) * 256 + codeword[p]];
    return s;
}

} // namespace

HsiaoCode::HsiaoCode(unsigned data_bits, unsigned check_bits)
    : k_(data_bits), r_(check_bits), n_(data_bits + check_bits)
{
    COP_ASSERT(r_ >= 3 && r_ <= 16);
    auto data_cols = hsiaoDataColumns(r_, k_);
    if (data_cols.size() < k_) {
        COP_FATAL("Hsiao(" + std::to_string(n_) + "," + std::to_string(k_) +
                  ") impossible: not enough odd-weight columns");
    }
    columns_ = std::move(data_cols);
    for (unsigned i = 0; i < r_; ++i)
        columns_.push_back(1u << i);
    synToBit_ = buildSynToBit(columns_, r_);
    byteSyn_ = buildByteSyndromeTable(columns_, n_);
}

void
HsiaoCode::encode(std::span<u8> codeword) const
{
    COP_ASSERT(codeword.size() >= codeBytes());
    // Zero the check-bit field, then the syndrome of the remaining data
    // bits is exactly the check-bit vector (check columns are unit
    // vectors, so setting check bits equal to the data syndrome zeroes
    // the total syndrome).
    setBits(codeword, k_, r_, 0);
    const u32 s = syndrome(codeword);
    setBits(codeword, k_, r_, s);
}

u32
HsiaoCode::syndrome(std::span<const u8> codeword) const
{
    return tableSyndrome(byteSyn_, codeword, codeBytes());
}

EccResult
HsiaoCode::decode(std::span<u8> codeword) const
{
    const u32 s = syndrome(codeword);
    if (s == 0)
        return {EccStatus::Ok, -1, false};

    const int bit = synToBit_[s];
    if (bit >= 0) {
        flipBit(codeword, static_cast<unsigned>(bit));
        return {EccStatus::Corrected, bit, false};
    }
    const bool even = (std::popcount(s) % 2) == 0;
    return {EccStatus::Uncorrectable, -1, even};
}

HammingCode::HammingCode(unsigned data_bits, unsigned check_bits)
    : k_(data_bits), r_(check_bits), n_(data_bits + check_bits)
{
    COP_ASSERT(r_ >= 2 && r_ <= 16);
    columns_.reserve(n_);
    for (u32 v = 3; v < (1u << r_) && columns_.size() < k_; ++v) {
        if (std::popcount(v) >= 2)
            columns_.push_back(v);
    }
    if (columns_.size() < k_) {
        COP_FATAL("Hamming(" + std::to_string(n_) + "," +
                  std::to_string(k_) + ") impossible");
    }
    for (unsigned i = 0; i < r_; ++i)
        columns_.push_back(1u << i);

    synToBit_ = buildSynToBit(columns_, r_);
    byteSyn_ = buildByteSyndromeTable(columns_, n_);
}

void
HammingCode::encode(std::span<u8> codeword) const
{
    setBits(codeword, k_, r_, 0);
    const u32 s = syndrome(codeword);
    setBits(codeword, k_, r_, s);
}

u32
HammingCode::syndrome(std::span<const u8> codeword) const
{
    return tableSyndrome(byteSyn_, codeword, codeBytes());
}

EccResult
HammingCode::decode(std::span<u8> codeword) const
{
    const u32 s = syndrome(codeword);
    if (s == 0)
        return {EccStatus::Ok, -1, false};
    const int bit = synToBit_[s];
    if (bit >= 0) {
        flipBit(codeword, static_cast<unsigned>(bit));
        return {EccStatus::Corrected, bit, false};
    }
    return {EccStatus::Uncorrectable, -1, false};
}

namespace codes {

const HsiaoCode &
dimm72()
{
    static const HsiaoCode code(64, 8);
    return code;
}

const HsiaoCode &
full128()
{
    static const HsiaoCode code(120, 8);
    return code;
}

const HsiaoCode &
short64()
{
    static const HsiaoCode code(56, 8);
    return code;
}

const HsiaoCode &
wide523()
{
    static const HsiaoCode code(512, 11);
    return code;
}

const HsiaoCode &
validBits512()
{
    static const HsiaoCode code(501, 11);
    return code;
}

const HammingCode &
pointer34()
{
    static const HammingCode code(28, 6);
    return code;
}

const HammingCode &
ondie136()
{
    static const HammingCode code(128, 8);
    return code;
}

} // namespace codes

} // namespace cop
