#include "ecc/secded.hpp"

#include <bit>

namespace cop {

namespace {

/**
 * Enumerate candidate data columns for a Hsiao code: odd weight >= 3,
 * ordered by weight then value, so code construction is deterministic.
 */
std::vector<u32>
hsiaoDataColumns(unsigned r, unsigned count)
{
    std::vector<u32> cols;
    cols.reserve(count);
    for (unsigned weight = 3; weight <= r && cols.size() < count;
         weight += 2) {
        for (u32 v = 0; v < (1u << r) && cols.size() < count; ++v) {
            if (static_cast<unsigned>(std::popcount(v)) == weight)
                cols.push_back(v);
        }
    }
    return cols;
}

} // namespace

HsiaoCode::HsiaoCode(unsigned data_bits, unsigned check_bits)
    : k_(data_bits), r_(check_bits), n_(data_bits + check_bits)
{
    COP_ASSERT(r_ >= 3 && r_ <= 16);
    auto data_cols = hsiaoDataColumns(r_, k_);
    if (data_cols.size() < k_) {
        COP_FATAL("Hsiao(" + std::to_string(n_) + "," + std::to_string(k_) +
                  ") impossible: not enough odd-weight columns");
    }
    columns_ = std::move(data_cols);
    for (unsigned i = 0; i < r_; ++i)
        columns_.push_back(1u << i);
    buildTables();
}

void
HsiaoCode::buildTables()
{
    synToBit_.assign(1u << r_, -1);
    for (unsigned i = 0; i < n_; ++i) {
        COP_ASSERT(synToBit_[columns_[i]] == -1);
        synToBit_[columns_[i]] = static_cast<int>(i);
    }

    const unsigned num_bytes = codeBytes();
    byteSyn_.assign(static_cast<size_t>(num_bytes) * 256, 0);
    for (unsigned p = 0; p < num_bytes; ++p) {
        for (unsigned v = 0; v < 256; ++v) {
            u32 s = 0;
            for (unsigned b = 0; b < 8; ++b) {
                const unsigned idx = p * 8 + b;
                if ((v >> b & 1u) && idx < n_)
                    s ^= columns_[idx];
            }
            byteSyn_[static_cast<size_t>(p) * 256 + v] = s;
        }
    }
}

void
HsiaoCode::encode(std::span<u8> codeword) const
{
    COP_ASSERT(codeword.size() >= codeBytes());
    // Zero the check-bit field, then the syndrome of the remaining data
    // bits is exactly the check-bit vector (check columns are unit
    // vectors, so setting check bits equal to the data syndrome zeroes
    // the total syndrome).
    setBits(codeword, k_, r_, 0);
    const u32 s = syndrome(codeword);
    setBits(codeword, k_, r_, s);
}

u32
HsiaoCode::syndrome(std::span<const u8> codeword) const
{
    u32 s = 0;
    const unsigned num_bytes = codeBytes();
    const u32 *table = byteSyn_.data();
    for (unsigned p = 0; p < num_bytes; ++p)
        s ^= table[static_cast<size_t>(p) * 256 + codeword[p]];
    return s;
}

EccResult
HsiaoCode::decode(std::span<u8> codeword) const
{
    const u32 s = syndrome(codeword);
    if (s == 0)
        return {EccStatus::Ok, -1, false};

    const int bit = synToBit_[s];
    if (bit >= 0) {
        flipBit(codeword, static_cast<unsigned>(bit));
        return {EccStatus::Corrected, bit, false};
    }
    const bool even = (std::popcount(s) % 2) == 0;
    return {EccStatus::Uncorrectable, -1, even};
}

HammingCode::HammingCode(unsigned data_bits, unsigned check_bits)
    : k_(data_bits), r_(check_bits), n_(data_bits + check_bits)
{
    COP_ASSERT(r_ >= 2 && r_ <= 16);
    columns_.reserve(n_);
    for (u32 v = 3; v < (1u << r_) && columns_.size() < k_; ++v) {
        if (std::popcount(v) >= 2)
            columns_.push_back(v);
    }
    if (columns_.size() < k_) {
        COP_FATAL("Hamming(" + std::to_string(n_) + "," +
                  std::to_string(k_) + ") impossible");
    }
    for (unsigned i = 0; i < r_; ++i)
        columns_.push_back(1u << i);

    synToBit_.assign(1u << r_, -1);
    for (unsigned i = 0; i < n_; ++i)
        synToBit_[columns_[i]] = static_cast<int>(i);
}

void
HammingCode::encode(std::span<u8> codeword) const
{
    setBits(codeword, k_, r_, 0);
    const u32 s = syndrome(codeword);
    setBits(codeword, k_, r_, s);
}

u32
HammingCode::syndrome(std::span<const u8> codeword) const
{
    u32 s = 0;
    for (unsigned i = 0; i < n_; ++i) {
        if (getBit(codeword, i))
            s ^= columns_[i];
    }
    return s;
}

EccResult
HammingCode::decode(std::span<u8> codeword) const
{
    const u32 s = syndrome(codeword);
    if (s == 0)
        return {EccStatus::Ok, -1, false};
    const int bit = synToBit_[s];
    if (bit >= 0) {
        flipBit(codeword, static_cast<unsigned>(bit));
        return {EccStatus::Corrected, bit, false};
    }
    return {EccStatus::Uncorrectable, -1, false};
}

namespace codes {

const HsiaoCode &
dimm72()
{
    static const HsiaoCode code(64, 8);
    return code;
}

const HsiaoCode &
full128()
{
    static const HsiaoCode code(120, 8);
    return code;
}

const HsiaoCode &
short64()
{
    static const HsiaoCode code(56, 8);
    return code;
}

const HsiaoCode &
wide523()
{
    static const HsiaoCode code(512, 11);
    return code;
}

const HsiaoCode &
validBits512()
{
    static const HsiaoCode code(501, 11);
    return code;
}

const HammingCode &
pointer34()
{
    static const HammingCode code(28, 6);
    return code;
}

} // namespace codes

} // namespace cop
