#include "ecc/reed_solomon.hpp"

namespace cop {

struct Gf256::Tables
{
    std::array<u8, 512> exp{};
    std::array<unsigned, 256> log{};

    Tables()
    {
        u8 x = 1;
        for (unsigned e = 0; e < 255; ++e) {
            exp[e] = x;
            log[x] = e;
            // multiply by alpha = 0x03 = x + 1: x*3 = (x<<1) ^ x.
            const u8 hi = static_cast<u8>(x & 0x80);
            u8 doubled = static_cast<u8>(x << 1);
            if (hi)
                doubled ^= 0x1B; // reduce modulo 0x11B
            x = static_cast<u8>(doubled ^ x);
        }
        for (unsigned e = 255; e < 512; ++e)
            exp[e] = exp[e - 255];
    }
};

const Gf256::Tables &
Gf256::tables()
{
    static const Tables t;
    return t;
}

u8
Gf256::mul(u8 a, u8 b)
{
    if (a == 0 || b == 0)
        return 0;
    const Tables &t = tables();
    return t.exp[t.log[a] + t.log[b]];
}

u8
Gf256::inv(u8 a)
{
    COP_ASSERT(a != 0);
    const Tables &t = tables();
    return t.exp[255 - t.log[a]];
}

u8
Gf256::exp(unsigned e)
{
    return tables().exp[e % 255];
}

unsigned
Gf256::log(u8 a)
{
    COP_ASSERT(a != 0);
    return tables().log[a];
}

RsCode::RsCode(unsigned data_symbols) : k_(data_symbols)
{
    // Positions must have distinct alpha powers.
    COP_ASSERT(k_ >= 1 && k_ + 2 <= 255);
}

void
RsCode::syndromes(std::span<const u8> codeword, u8 &s0, u8 &s1) const
{
    s0 = 0;
    s1 = 0;
    for (unsigned i = 0; i < codeSymbols(); ++i) {
        s0 = static_cast<u8>(s0 ^ codeword[i]);
        s1 = static_cast<u8>(s1 ^ Gf256::mul(codeword[i], Gf256::exp(i)));
    }
}

void
RsCode::encode(std::span<u8> codeword) const
{
    COP_ASSERT(codeword.size() >= codeSymbols());
    // Solve for c0 at position k and c1 at position k+1:
    //   c0 ^ c1 = A        (from S0)
    //   a^k c0 ^ a^{k+1} c1 = B  (from S1)
    u8 a = 0, b = 0;
    for (unsigned i = 0; i < k_; ++i) {
        a = static_cast<u8>(a ^ codeword[i]);
        b = static_cast<u8>(b ^ Gf256::mul(codeword[i], Gf256::exp(i)));
    }
    const u8 ak = Gf256::exp(k_);
    const u8 ak1 = Gf256::exp(k_ + 1);
    // c1 = (B ^ a^k * A) / (a^k ^ a^{k+1}); c0 = A ^ c1.
    const u8 denom = static_cast<u8>(ak ^ ak1);
    const u8 c1 = Gf256::mul(static_cast<u8>(b ^ Gf256::mul(ak, a)),
                             Gf256::inv(denom));
    const u8 c0 = static_cast<u8>(a ^ c1);
    codeword[k_] = c0;
    codeword[k_ + 1] = c1;
}

bool
RsCode::isValidCodeword(std::span<const u8> codeword) const
{
    u8 s0, s1;
    syndromes(codeword, s0, s1);
    return s0 == 0 && s1 == 0;
}

EccResult
RsCode::decode(std::span<u8> codeword) const
{
    u8 s0, s1;
    syndromes(codeword, s0, s1);
    if (s0 == 0 && s1 == 0)
        return {EccStatus::Ok, -1, false};
    if (s0 == 0 || s1 == 0) {
        // A single error at position p with magnitude m gives s0 = m,
        // s1 = m * a^p — neither can be zero alone.
        return {EccStatus::Uncorrectable, -1, false};
    }
    const unsigned pos_log =
        (Gf256::log(s1) + 255 - Gf256::log(s0)) % 255;
    if (pos_log >= codeSymbols())
        return {EccStatus::Uncorrectable, -1, false};
    codeword[pos_log] = static_cast<u8>(codeword[pos_log] ^ s0);
    return {EccStatus::Corrected, static_cast<int>(pos_log), false};
}

} // namespace cop
