/**
 * @file
 * General (n, k) Hsiao single-error-correcting, double-error-detecting
 * (SECDED) codes, constructed from odd-weight columns as in Hsiao 1970 —
 * the code family COP builds everything on:
 *
 *  - (72,64)   — the conventional ECC-DIMM reference code;
 *  - (128,120) — the full (untruncated) version of (72,64): four of these
 *                protect one compressed 64-byte COP block (4-byte config);
 *  - (64,56)   — eight of these protect one block in the 8-byte config;
 *  - (523,512) — the wide single-code-word block code used by the ECC
 *                region baseline and the COP-ER entries;
 *  - (512,501) — protects a COP-ER valid-bit block (501 bits + 11 parity).
 *
 * Codeword layout: data bits occupy bit positions [0, k), check bits
 * [k, k + r), LSB-first over the byte buffer (see common/bits.hpp). Bits
 * at positions >= n in the final byte are ignored by the syndrome and must
 * be kept zero by the caller.
 */

#ifndef COP_ECC_SECDED_HPP
#define COP_ECC_SECDED_HPP

#include <span>
#include <vector>

#include "common/bits.hpp"
#include "common/types.hpp"

namespace cop {

/** Outcome classification of one ECC decode. */
enum class EccStatus {
    Ok,             ///< Zero syndrome: valid code word.
    Corrected,      ///< Single-bit error found and repaired in place.
    Uncorrectable,  ///< Detected but not correctable (e.g. double error).
};

/** Result of HsiaoCode::decode / HammingCode::decode. */
struct EccResult
{
    EccStatus status = EccStatus::Ok;
    /** Corrected bit position (valid when status == Corrected). */
    int bitIndex = -1;
    /**
     * True when the syndrome weight is even and nonzero — for a Hsiao code
     * this is the signature of a double-bit error (valid only when status
     * == Uncorrectable).
     */
    bool doubleError = false;

    bool ok() const { return status == EccStatus::Ok; }
    bool corrected() const { return status == EccStatus::Corrected; }
    bool uncorrectable() const { return status == EccStatus::Uncorrectable; }
};

/**
 * A Hsiao SECDED code with k data bits and r check bits (n = k + r total).
 *
 * Data-bit columns are the odd-weight r-bit vectors of weight >= 3,
 * enumerated in increasing weight then increasing numeric value; check-bit
 * i's column is the unit vector 1 << i. Construction fails (fatal) if k
 * exceeds the number of available odd-weight columns.
 *
 * The implementation precomputes a per-(byte-position, byte-value)
 * syndrome table so that syndrome generation costs one table lookup and
 * XOR per codeword byte — the software analogue of the parallel XOR trees
 * in Figure 2(b) of the paper.
 */
class HsiaoCode
{
  public:
    HsiaoCode(unsigned data_bits, unsigned check_bits);

    unsigned dataBits() const { return k_; }
    unsigned checkBits() const { return r_; }
    unsigned codeBits() const { return n_; }
    /** Bytes needed to hold one codeword. */
    unsigned codeBytes() const { return (n_ + 7) / 8; }

    /**
     * Compute and deposit check bits for the data currently in
     * codeword[0, k); overwrites codeword bits [k, k + r).
     */
    void encode(std::span<u8> codeword) const;

    /** Syndrome of a full codeword (0 == valid). */
    u32 syndrome(std::span<const u8> codeword) const;

    /** True iff the codeword has a zero syndrome. */
    bool
    isValidCodeword(std::span<const u8> codeword) const
    {
        return syndrome(codeword) == 0;
    }

    /**
     * Decode and correct in place.
     * @return classification plus the corrected bit position, if any.
     */
    EccResult decode(std::span<u8> codeword) const;

    /** Column (syndrome signature) of bit @p idx — exposed for tests. */
    u32 column(unsigned idx) const { return columns_[idx]; }

    /**
     * Codeword bit the decoder would flip for syndrome @p s, or -1 when
     * @p s is not a single-error signature. Lets reliability models run
     * the decode algebra on flip *patterns* without materialising
     * codeword buffers.
     */
    int bitForSyndrome(u32 s) const { return synToBit_[s]; }

  private:
    unsigned k_;
    unsigned r_;
    unsigned n_;
    /** Column vector per codeword bit. */
    std::vector<u32> columns_;
    /** syndrome -> codeword bit index, -1 if not a single-error sig. */
    std::vector<int> synToBit_;
    /** [byte_pos * 256 + byte_value] -> syndrome contribution. */
    std::vector<u32> byteSyn_;
};

/**
 * A Hamming single-error-correcting (SEC, no guaranteed double detection)
 * code. COP-ER uses a (34,28) instance to protect the ECC-region pointer
 * embedded in incompressible blocks (Section 3.3): 6 check bits cannot
 * support SECDED for 28 data bits, and the paper only requires correction.
 *
 * Same codeword layout as HsiaoCode. Data columns are the non-power-of-two
 * nonzero r-bit values in increasing order; check columns are unit vectors.
 * Syndromes use the same per-byte lookup table as HsiaoCode.
 */
class HammingCode
{
  public:
    HammingCode(unsigned data_bits, unsigned check_bits);

    unsigned dataBits() const { return k_; }
    unsigned checkBits() const { return r_; }
    unsigned codeBits() const { return n_; }
    unsigned codeBytes() const { return (n_ + 7) / 8; }

    void encode(std::span<u8> codeword) const;
    u32 syndrome(std::span<const u8> codeword) const;
    EccResult decode(std::span<u8> codeword) const;

    /** Column (syndrome signature) of bit @p idx — exposed for tests. */
    u32 column(unsigned idx) const { return columns_[idx]; }

    /**
     * Codeword bit the decoder would flip for syndrome @p s, or -1 when
     * @p s is not a single-error signature (see HsiaoCode::bitForSyndrome).
     */
    int bitForSyndrome(u32 s) const { return synToBit_[s]; }

  private:
    unsigned k_;
    unsigned r_;
    unsigned n_;
    std::vector<u32> columns_;
    std::vector<int> synToBit_;
    /** [byte_pos * 256 + byte_value] -> syndrome contribution. */
    std::vector<u32> byteSyn_;
};

/** Lazily constructed shared instances of the codes COP uses. */
namespace codes {

/** (72,64): conventional ECC-DIMM SECDED. */
const HsiaoCode &dimm72();
/** (128,120): COP 4-byte configuration code word. */
const HsiaoCode &full128();
/** (64,56): COP 8-byte configuration code word. */
const HsiaoCode &short64();
/** (523,512): wide whole-block code (ECC region baseline, COP-ER entry). */
const HsiaoCode &wide523();
/** (512,501): COP-ER valid-bit block code. */
const HsiaoCode &validBits512();
/** (34,28): COP-ER pointer SEC code. */
const HammingCode &pointer34();
/**
 * (136,128): per-chip on-die SEC over one 128-bit internal word
 * (8 hidden check bits per word, Patel arXiv 2204.10387). Used by the
 * reliability layer's OndieEcc pre-filter, never by the stored format.
 */
const HammingCode &ondie136();

} // namespace codes

} // namespace cop

#endif // COP_ECC_SECDED_HPP
