/**
 * @file
 * GF(256) arithmetic and a single-symbol-correcting Reed-Solomon code,
 * the substrate for the chipkill extension the paper leaves as future
 * work ("The proposed approach can be naturally extended to provide
 * even greater resilience (e.g. chipkill support)", Section 5).
 *
 * On a x8 DIMM each burst beat delivers one byte per chip, so a chip
 * failure corrupts exactly one byte-symbol of every beat. An RS code
 * with two check symbols per beat corrects any single symbol error —
 * i.e. the failure of any one chip — which is precisely chipkill-
 * correct for x8 devices.
 */

#ifndef COP_ECC_REED_SOLOMON_HPP
#define COP_ECC_REED_SOLOMON_HPP

#include <array>
#include <span>

#include "common/types.hpp"
#include "ecc/secded.hpp"

namespace cop {

/** GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1 (0x11B). */
class Gf256
{
  public:
    /** Field multiply. */
    static u8 mul(u8 a, u8 b);
    /** Multiplicative inverse (a != 0). */
    static u8 inv(u8 a);
    /** alpha^e for the generator alpha = 0x03. */
    static u8 exp(unsigned e);
    /** Discrete log base alpha (a != 0). */
    static unsigned log(u8 a);

  private:
    struct Tables;
    static const Tables &tables();
};

/**
 * RS(k+2, k) over GF(256): k data symbols, 2 check symbols, corrects
 * any single symbol error and detects double symbol errors (with the
 * usual RS miscorrection caveat for >2).
 *
 * Codeword layout: data symbols d_0..d_{k-1} followed by check symbols
 * c_0, c_1 chosen so that both syndromes vanish:
 *   S0 = sum(all symbols) = 0
 *   S1 = sum(symbol_i * alpha^i) = 0.
 */
class RsCode
{
  public:
    explicit RsCode(unsigned data_symbols);

    unsigned dataSymbols() const { return k_; }
    unsigned codeSymbols() const { return k_ + 2; }

    /** Compute and place the two check symbols. */
    void encode(std::span<u8> codeword) const;

    /** Both syndromes zero? */
    bool isValidCodeword(std::span<const u8> codeword) const;

    /**
     * Decode in place.
     * @return Ok, Corrected (bitIndex = symbol position), or
     *         Uncorrectable.
     */
    EccResult decode(std::span<u8> codeword) const;

  private:
    void syndromes(std::span<const u8> codeword, u8 &s0, u8 &s1) const;

    unsigned k_;
};

} // namespace cop

#endif // COP_ECC_REED_SOLOMON_HPP
