#include "reliability/failure_modes.hpp"

#include <algorithm>

namespace cop {

const char *
failureModeName(FailureMode m)
{
    switch (m) {
      case FailureMode::SingleBit: return "single-bit";
      case FailureMode::SameWordMulti: return "same-word multi";
      case FailureMode::SingleColumn: return "single-column";
      case FailureMode::SameRow: return "same-row burst";
      case FailureMode::SingleChip: return "single-chip (x8)";
      case FailureMode::kCount: break;
    }
    COP_PANIC("bad failure mode");
}

double
failureModeFieldFraction(FailureMode m)
{
    switch (m) {
      case FailureMode::SingleBit: return 0.497;
      case FailureMode::SameWordMulti: return 0.025;
      case FailureMode::SingleColumn: return 0.105;
      case FailureMode::SameRow: return 0.127;
      case FailureMode::SingleChip: return 0.035;
      case FailureMode::kCount: break;
    }
    COP_PANIC("bad failure mode");
}

namespace {

void
pushDistinct(std::vector<unsigned> &bits, unsigned bit)
{
    if (std::find(bits.begin(), bits.end(), bit) == bits.end())
        bits.push_back(bit);
}

} // namespace

void
generateFailureFlips(FailureMode m, Rng &rng,
                     std::vector<unsigned> &bits)
{
    bits.clear();
    switch (m) {
      case FailureMode::SingleBit:
        bits.push_back(static_cast<unsigned>(rng.below(kBlockBits)));
        return;
      case FailureMode::SameWordMulti: {
        const unsigned word = rng.below(8);
        const unsigned flips = 2 + rng.below(3); // 2..4
        while (bits.size() < flips)
            pushDistinct(bits,
                         word * 64 + static_cast<unsigned>(rng.below(64)));
        return;
      }
      case FailureMode::SingleColumn:
        // A failing column strikes the same bit position of the
        // affected blocks; per block that is one flip.
        bits.push_back(static_cast<unsigned>(rng.below(kBlockBits)));
        return;
      case FailureMode::SameRow: {
        // Peripheral/row failure: a dense burst across the block.
        const unsigned flips = 8 + rng.below(57); // 8..64
        while (bits.size() < flips) {
            pushDistinct(bits,
                         static_cast<unsigned>(rng.below(kBlockBits)));
        }
        return;
      }
      case FailureMode::SingleChip: {
        // x8 rank: chip c supplies byte c of every 8-byte beat. Flip
        // 1..8 bits in each of that chip's bytes.
        const unsigned chip = rng.below(8);
        for (unsigned beat = 0; beat < 8; ++beat) {
            const unsigned base = (beat * 8 + chip) * 8;
            const unsigned flips = 1 + rng.below(8);
            std::vector<unsigned> lane;
            while (lane.size() < flips)
                pushDistinct(lane,
                             base + static_cast<unsigned>(rng.below(8)));
            bits.insert(bits.end(), lane.begin(), lane.end());
        }
        return;
      }
      case FailureMode::kCount:
        break;
    }
    COP_PANIC("bad failure mode");
}

} // namespace cop
