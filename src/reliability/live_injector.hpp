/**
 * @file
 * LiveInjector: soft-error arrivals over simulated time, applied to
 * the stored DRAM images of a running System's memory controller.
 *
 * Two sources of faults:
 *  - a Poisson process (exponential inter-arrival gaps derived from a
 *    configurable event rate, itself derivable from a FIT rate and the
 *    resident footprint) striking uniformly-random stored bits of
 *    uniformly-random footprint blocks;
 *  - a deterministic campaign script ("flip these bits in block X at
 *    cycle C", optionally persistent/stuck) for tests and targeted
 *    experiments.
 *
 * The injector also drives the patrol scrubber: when
 * FaultConfig::scrubIntervalCycles is nonzero, it walks the stored
 * images (a sorted snapshot, refreshed once per pass) at a per-block
 * stride of interval / images, calling MemoryController::patrolScrub
 * so every touched block is verified roughly once per interval — and
 * the scrub reads/writes are charged to the DRAM timing model.
 *
 * Everything is deterministic for a fixed (seed, seed_salt), which the
 * parallel experiment runner relies on for byte-identical output.
 */

#ifndef COP_RELIABILITY_LIVE_INJECTOR_HPP
#define COP_RELIABILITY_LIVE_INJECTOR_HPP

#include <vector>

#include "common/rng.hpp"
#include "mem/controller.hpp"

namespace cop {

/** One scripted fault of a campaign. */
struct PlannedFault
{
    /** Simulated cycle at (or after) which the fault strikes. */
    Cycle cycle = 0;
    /** Block address (data-region byte address). */
    Addr addr = 0;
    /** Stored-bit indices to flip (below storedBits(addr)). */
    std::vector<unsigned> bits;
    /** Stuck-at fault: re-applied whenever the image is rewritten. */
    bool persistent = false;
};

/** Live fault-injection configuration (SystemConfig::fault). */
struct FaultConfig
{
    bool enabled = false;
    /** Poisson fault-event rate, events per 10^6 simulated cycles. */
    double eventsPerMegacycle = 0.0;
    /** Bits flipped per Poisson event (within one block). */
    unsigned flipsPerEvent = 1;
    /**
     * Model per-chip on-die SEC beneath the rank-level scheme: Poisson
     * events are drawn over the *extended* geometry (stored bits plus
     * 8 hidden check bits per 128-bit on-die word) and run through the
     * OndieEcc filter; only the post-filter pattern reaches the stored
     * image. Campaign faults bypass the filter by design — their bit
     * lists are already post-on-die arrival patterns. Off by default;
     * when off, the raw-arrival draw stream is byte-identical to
     * builds without the on-die layer.
     */
    bool ondieEcc = false;
    /** Injector RNG seed (combined with the System's seed salt). */
    u64 seed = 0xFA157;
    /** Patrol-scrub full-pass interval; 0 disables the scrubber. */
    Cycle scrubIntervalCycles = 0;
    /** Recovery-pipeline policy. */
    RecoveryConfig recovery;
    /** Scripted faults, applied in cycle order. */
    std::vector<PlannedFault> campaign;

    /**
     * Event rate implied by a raw FIT rate (failures per 10^9 device
     * hours per Mbit) over a resident footprint, optionally
     * accelerated so that simulation-scale runs observe errors.
     */
    static double eventsPerMegacycleFromFit(double fit_per_mbit,
                                            u64 footprint_bytes,
                                            double core_ghz,
                                            double acceleration = 1.0);
};

/** Drives fault arrivals and the patrol scrubber for one System. */
class LiveInjector
{
  public:
    /**
     * @param footprint_bytes application-data bytes faults can strike
     *        (the workload's touched regions, not all of DRAM).
     * @param seed_salt per-System salt (the runner's per-cell salt) so
     *        grid cells draw independent arrival streams.
     */
    LiveInjector(const FaultConfig &cfg, MemoryController &ctl,
                 u64 footprint_bytes, u64 seed_salt);

    /**
     * Process every fault arrival and scrub step scheduled at or
     * before @p now. Called by System::run with the (non-decreasing)
     * clock of the core about to execute, so DRAM requests issued
     * here respect the channel's arrival-order requirement.
     */
    void advanceTo(Cycle now);

  private:
    static constexpr Cycle kNever = ~0ULL;

    void poissonEvent(Cycle now);
    void scrubStep(Cycle now);
    Cycle poissonGap();

    FaultConfig cfg_;
    MemoryController &ctl_;
    u64 footprintBlocks_;
    Rng rng_;
    std::vector<PlannedFault> campaign_; ///< Sorted by cycle.
    size_t campaignIdx_ = 0;
    Cycle nextPoisson_ = kNever;
    Cycle nextScrub_ = kNever;
    std::vector<Addr> scrubList_;
    size_t scrubIdx_ = 0;
};

} // namespace cop

#endif // COP_RELIABILITY_LIVE_INJECTOR_HPP
