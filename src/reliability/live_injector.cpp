#include "reliability/live_injector.hpp"

#include <algorithm>
#include <cmath>

#include "reliability/ondie_ecc.hpp"

namespace cop {

double
FaultConfig::eventsPerMegacycleFromFit(double fit_per_mbit,
                                       u64 footprint_bytes,
                                       double core_ghz,
                                       double acceleration)
{
    COP_ASSERT(fit_per_mbit >= 0 && core_ghz > 0 && acceleration >= 0);
    const double mbits =
        static_cast<double>(footprint_bytes) * 8.0 / (1u << 20);
    const double events_per_hour = fit_per_mbit * mbits * 1e-9;
    const double cycles_per_hour = 3600.0 * core_ghz * 1e9;
    return events_per_hour / cycles_per_hour * 1e6 * acceleration;
}

LiveInjector::LiveInjector(const FaultConfig &cfg, MemoryController &ctl,
                           u64 footprint_bytes, u64 seed_salt)
    : cfg_(cfg), ctl_(ctl),
      footprintBlocks_(footprint_bytes / kBlockBytes),
      rng_(cfg.seed ^ (seed_salt * 0x9e3779b97f4a7c15ULL)),
      campaign_(cfg.campaign)
{
    COP_ASSERT(cfg_.enabled);
    COP_ASSERT(cfg_.eventsPerMegacycle == 0 || footprintBlocks_ > 0);
    COP_ASSERT(cfg_.flipsPerEvent > 0 &&
               cfg_.flipsPerEvent <= kBlockBits);
    std::stable_sort(campaign_.begin(), campaign_.end(),
                     [](const PlannedFault &a, const PlannedFault &b) {
                         return a.cycle < b.cycle;
                     });
    if (cfg_.eventsPerMegacycle > 0 && footprintBlocks_ > 0)
        nextPoisson_ = poissonGap();
    if (cfg_.scrubIntervalCycles > 0)
        nextScrub_ = cfg_.scrubIntervalCycles;
}

Cycle
LiveInjector::poissonGap()
{
    const double rate = cfg_.eventsPerMegacycle * 1e-6; // per cycle
    const double u = rng_.uniform();
    const double gap = -std::log(1.0 - u) / rate;
    if (gap >= 1e18) // degenerate draw; keep the schedule finite
        return static_cast<Cycle>(1e18);
    return std::max<Cycle>(1, static_cast<Cycle>(std::llround(gap)));
}

void
LiveInjector::poissonEvent(Cycle now)
{
    const Addr addr = rng_.below(footprintBlocks_) * kBlockBytes;
    if (ctl_.imageOf(addr) == nullptr) {
        // Untouched block: no stored image exists to strike. Consume
        // no bit draws so the stream stays cheap and deterministic.
        ++ctl_.errorLog().coldFaults;
        return;
    }
    const unsigned nbits = ctl_.storedBits(addr);
    const unsigned draw_bits =
        cfg_.ondieEcc ? OndieEcc::extendedBits(nbits) : nbits;
    std::vector<unsigned> bits;
    bits.reserve(cfg_.flipsPerEvent);
    while (bits.size() < cfg_.flipsPerEvent) {
        const unsigned b = static_cast<unsigned>(rng_.below(draw_bits));
        if (std::find(bits.begin(), bits.end(), b) == bits.end())
            bits.push_back(b);
    }
    if (!cfg_.ondieEcc) {
        ctl_.injectFault(addr, bits, now, false);
        return;
    }
    // Per-chip SEC filters the raw pattern before it can reach the
    // stored image; only the post-filter flips strike.
    ErrorLog &log = ctl_.errorLog();
    ++log.ondieInjected;
    std::vector<unsigned> forwarded;
    switch (OndieEcc::filter(nbits, bits, forwarded)) {
      case OndieOutcome::Corrected:
        ++log.ondieCorrected;
        return;
      case OndieOutcome::Miscorrected:
        ++log.ondieMiscorrected;
        break;
      case OndieOutcome::Forwarded:
        ++log.ondieForwarded;
        break;
    }
    ctl_.injectFault(addr, forwarded, now, false);
}

void
LiveInjector::scrubStep(Cycle now)
{
    if (scrubIdx_ >= scrubList_.size()) {
        // New pass over a fresh (sorted => deterministic) snapshot.
        scrubList_ = ctl_.imageAddressesSorted();
        scrubIdx_ = 0;
        if (scrubList_.empty()) {
            nextScrub_ += cfg_.scrubIntervalCycles;
            return;
        }
    }
    ctl_.patrolScrub(scrubList_[scrubIdx_++], now);
    // One block every interval/N cycles completes a pass per interval.
    nextScrub_ += std::max<Cycle>(
        1, cfg_.scrubIntervalCycles / scrubList_.size());
}

void
LiveInjector::advanceTo(Cycle now)
{
    while (true) {
        // Earliest pending source; ties break campaign > poisson >
        // scrub, deterministically.
        Cycle due = kNever;
        enum { None, Campaign, Poisson, Scrub } what = None;
        if (campaignIdx_ < campaign_.size()) {
            due = campaign_[campaignIdx_].cycle;
            what = Campaign;
        }
        if (nextPoisson_ < due) {
            due = nextPoisson_;
            what = Poisson;
        }
        if (nextScrub_ < due) {
            due = nextScrub_;
            what = Scrub;
        }
        if (what == None || due > now)
            return;
        // DRAM requests must arrive in non-decreasing order across the
        // whole run, so everything issues at `now` (the clock of the
        // core about to run); `due` only orders the sources.
        switch (what) {
          case Campaign: {
            const PlannedFault &f = campaign_[campaignIdx_++];
            // A scripted pattern can outlive its geometry: a COP-ER
            // block re-compressing shrinks storedBits under the
            // script, and letting injectFault panic would kill the
            // whole campaign cell. Skip-and-count instead; direct
            // single-shot injectFault calls keep the hard panic.
            // (Persistent faults already tolerate shrinkage inside
            // injectFault, and cold blocks keep their cold-fault
            // accounting there too.)
            if (!f.persistent && ctl_.imageOf(f.addr) != nullptr) {
                const unsigned nbits = ctl_.storedBits(f.addr);
                const bool fits = std::all_of(
                    f.bits.begin(), f.bits.end(),
                    [nbits](unsigned b) { return b < nbits; });
                if (!fits) {
                    ++ctl_.errorLog().injectSkipped;
                    break;
                }
            }
            ctl_.injectFault(f.addr, f.bits, now, f.persistent);
            break;
          }
          case Poisson:
            poissonEvent(now);
            nextPoisson_ += poissonGap();
            break;
          case Scrub:
            scrubStep(now);
            break;
          case None:
            break;
        }
    }
}

} // namespace cop
