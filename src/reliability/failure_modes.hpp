/**
 * @file
 * DRAM field failure modes, after Sridharan & Liberty's field study as
 * discussed in paper Section 4: 49.7% of observed failures were
 * single-bit, 2.5% multi-bit within one word, 12.7% multi-bit within
 * one row; single-column failures "will generally corrupt only one bit
 * per block". The paper argues qualitatively which modes SECDED/COP
 * can and cannot repair; this module makes the argument quantitative
 * by generating each mode's bit-flip pattern for Monte-Carlo injection
 * through the real decoders (bench/failure_mode_study).
 */

#ifndef COP_RELIABILITY_FAILURE_MODES_HPP
#define COP_RELIABILITY_FAILURE_MODES_HPP

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace cop {

/** Failure modes, at 64-byte-block granularity. */
enum class FailureMode : u8 {
    /** One flipped bit (49.7% of field failures). */
    SingleBit,
    /** 2-4 flips inside one aligned 64-bit word (2.5%). */
    SameWordMulti,
    /** Column failure: corrupts one (fixed-position) bit per block. */
    SingleColumn,
    /** Row failure: a burst of flips across the whole block (12.7%). */
    SameRow,
    /** Whole-chip failure on a x8 rank: one byte lane corrupted. */
    SingleChip,
    kCount,
};

inline constexpr unsigned kFailureModes =
    static_cast<unsigned>(FailureMode::kCount);

const char *failureModeName(FailureMode m);

/**
 * Field-population fraction of a mode (Sridharan & Liberty, as quoted
 * in the paper). SingleColumn and SingleChip report the remainder
 * split used for presentation; the study's remaining categories are
 * bank/pin failures outside this model's scope.
 */
double failureModeFieldFraction(FailureMode m);

/**
 * Produce the flip positions (bit indices in [0, 512)) one event of
 * mode @p m inflicts on a block.
 */
void generateFailureFlips(FailureMode m, Rng &rng,
                          std::vector<unsigned> &bits);

} // namespace cop

#endif // COP_RELIABILITY_FAILURE_MODES_HPP
