/**
 * @file
 * Monte-Carlo fault injection: flips real bits in real stored images
 * and runs the real decoders, validating the analytic model end-to-end
 * (something the paper's purely analytic methodology could not do).
 * Used by the table3/ecc-comparison benches, the fault-injection
 * example, and the integration tests.
 */

#ifndef COP_RELIABILITY_FAULT_INJECTOR_HPP
#define COP_RELIABILITY_FAULT_INJECTOR_HPP

#include <functional>

#include "common/rng.hpp"
#include "core/chipkill_codec.hpp"
#include "core/coper_codec.hpp"
#include "ecc/secded.hpp"

namespace cop {

/** Classified results of an injection campaign. */
struct InjectionOutcome
{
    u64 trials = 0;
    u64 benign = 0;    ///< Decoded data identical without correction.
    u64 corrected = 0; ///< Errors repaired; data intact.
    u64 detected = 0;  ///< Flagged uncorrectable; data lost but known.
    u64 silent = 0;    ///< Wrong data returned with no indication.
    /**
     * Trials skipped because the block could not be injected at all
     * (alias-rejected encode under skipAliasRejected). Excluded from
     * `trials`, so the rate denominators stay meaningful.
     */
    u64 skipped = 0;

    double
    silentRate() const
    {
        return trials ? static_cast<double>(silent) / trials : 0.0;
    }

    double
    uncorrectedRate() const
    {
        return trials
                   ? static_cast<double>(silent + detected) / trials
                   : 0.0;
    }

    InjectionOutcome &
    operator+=(const InjectionOutcome &o)
    {
        trials += o.trials;
        benign += o.benign;
        corrected += o.corrected;
        detected += o.detected;
        silent += o.silent;
        skipped += o.skipped;
        return *this;
    }
};

/**
 * Fault-injection campaigns against each protection scheme. Each trial
 * encodes @p data, flips @p flips distinct random bits of the stored
 * image, decodes, and classifies the outcome.
 */
class FaultInjector
{
  public:
    /**
     * Produces the flip positions of one fault event (bit indices into
     * the 512-bit stored block).
     */
    using FlipGen = std::function<void(Rng &, std::vector<unsigned> &)>;

    explicit FaultInjector(u64 seed = 0xFau) : rng_(seed) {}

    /**
     * Campaign mode: an alias-rejected block skips its trials
     * (InjectionOutcome::skipped) instead of COP_FATALing, so a long
     * sweep survives blocks that cannot be stored protected. Off by
     * default — explicit single-shot injection keeps the hard failure.
     */
    void setSkipAliasRejected(bool on) { skipAliasRejected_ = on; }
    bool skipAliasRejected() const { return skipAliasRejected_; }

    /** Inject into a COP-protected (or raw, if incompressible) block. */
    InjectionOutcome injectCop(const CopCodec &codec,
                               const CacheBlock &data, unsigned flips,
                               u64 trials);

    /** Inject into a COP-ER incompressible block (stored + entry). */
    InjectionOutcome injectCopEr(const CoperCodec &coper,
                                 const CacheBlock &data, unsigned flips,
                                 u64 trials);

    /** Inject into an ECC-DIMM block (8 x (72,64), 576 stored bits). */
    InjectionOutcome injectEccDimm(const CacheBlock &data, unsigned flips,
                                   u64 trials);

    /** Inject into an unprotected raw block. */
    InjectionOutcome injectUnprotected(const CacheBlock &data,
                                       unsigned flips, u64 trials);

    /**
     * Pattern-based variants for the field failure-mode study: the
     * generator decides where each trial's flips land (e.g. confined
     * to one word, one chip lane, or a row burst).
     */
    InjectionOutcome injectCopPattern(const CopCodec &codec,
                                      const CacheBlock &data,
                                      const FlipGen &gen, u64 trials);
    InjectionOutcome injectCopErPattern(const CoperCodec &coper,
                                        const CacheBlock &data,
                                        const FlipGen &gen, u64 trials);
    InjectionOutcome injectEccDimmPattern(const CacheBlock &data,
                                          const FlipGen &gen,
                                          u64 trials);
    InjectionOutcome injectChipkillPattern(const ChipkillCodec &codec,
                                           const CacheBlock &data,
                                           const FlipGen &gen,
                                           u64 trials);

    Rng &rng() { return rng_; }

  private:
    /** Choose @p flips distinct bit positions below @p bits. */
    void pickBits(unsigned bits, unsigned flips,
                  std::vector<unsigned> &out);

    /** Uniform distinct-@p flips generator over 512 bits. */
    FlipGen uniformGen(unsigned flips);

    Rng rng_;
    bool skipAliasRejected_ = false;
};

} // namespace cop

#endif // COP_RELIABILITY_FAULT_INJECTOR_HPP
