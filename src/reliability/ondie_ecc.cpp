#include "reliability/ondie_ecc.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "ecc/secded.hpp"

namespace cop {

OndieOutcome
OndieEcc::filter(unsigned stored_bits,
                 const std::vector<unsigned> &raw_flips,
                 std::vector<unsigned> &out)
{
    out.clear();
    const HammingCode &code = codes::ondie136();
    const unsigned nwords = words(stored_bits);

    // Word index of one raw (extended-geometry) flip.
    const auto word_of = [&](unsigned r) {
        return r < stored_bits ? r / kWordBits
                               : (r - stored_bits) / kCheckBitsPerWord;
    };
    // Codeword position of one raw flip within its word.
    const auto pos_of = [&](unsigned r) {
        return r < stored_bits ? r % kWordBits
                               : kWordBits + (r - stored_bits) %
                                                 kCheckBitsPerWord;
    };

    std::vector<unsigned> struck;
    for (const unsigned r : raw_flips) {
        COP_ASSERT(r < extendedBits(stored_bits));
        const unsigned w = word_of(r);
        COP_ASSERT(w < nwords);
        if (std::find(struck.begin(), struck.end(), w) == struck.end())
            struck.push_back(w);
    }

    bool miscorrected = false;
    std::vector<unsigned> pos;
    for (const unsigned w : struck) {
        pos.clear();
        for (const unsigned r : raw_flips)
            if (word_of(r) == w)
                pos.push_back(pos_of(r));

        u32 syn = 0;
        for (const unsigned p : pos)
            syn ^= code.column(p);
        if (syn != 0) {
            const int fix = code.bitForSyndrome(syn);
            if (fix >= 0) {
                // The chip flips bit `fix`. A lone flip is undone (the
                // syndrome of a single flip is its own column); with
                // two or more flips the matched column is never one of
                // them, so the SEC *adds* a flip — a miscorrection
                // forwarded to the host.
                const auto it = std::find(pos.begin(), pos.end(),
                                          static_cast<unsigned>(fix));
                if (it != pos.end()) {
                    pos.erase(it);
                } else {
                    pos.push_back(static_cast<unsigned>(fix));
                    miscorrected = true;
                }
            }
            // No column match: detected on die, but the chip has no
            // reporting channel — the word forwards unchanged.
        }
        // syn == 0 with flips present: the flips alias to a valid
        // on-die codeword and forward unchanged.

        for (const unsigned p : pos) {
            if (p >= kWordBits)
                continue; // residue in hidden check bits: invisible
            const unsigned idx = w * kWordBits + p;
            // A miscorrection can target the zero-padded tail of a
            // shortened last word; no host-visible cell exists there.
            if (idx < stored_bits)
                out.push_back(idx);
        }
    }
    std::sort(out.begin(), out.end());

    if (out.empty())
        return OndieOutcome::Corrected;
    return miscorrected ? OndieOutcome::Miscorrected
                        : OndieOutcome::Forwarded;
}

OndieModelResult
OndieEcc::model(VulnClass cls, unsigned raw_flips, u64 trials, u64 seed)
{
    const unsigned stored = ErrorRateModel::storedBitsOf(cls);
    const unsigned ext = extendedBits(stored);
    COP_ASSERT(raw_flips > 0 && raw_flips <= ext && trials > 0);

    Rng rng(seed);
    std::vector<unsigned> raw;
    std::vector<unsigned> fwd;
    u64 corrected = 0, miscorrected = 0, forwarded = 0;
    u64 tally[4] = {0, 0, 0, 0};
    for (u64 t = 0; t < trials; ++t) {
        raw.clear();
        while (raw.size() < raw_flips) {
            const auto r = static_cast<unsigned>(rng.below(ext));
            if (std::find(raw.begin(), raw.end(), r) == raw.end())
                raw.push_back(r);
        }
        switch (filter(stored, raw, fwd)) {
          case OndieOutcome::Corrected:
            ++corrected;
            continue;
          case OndieOutcome::Miscorrected:
            ++miscorrected;
            break;
          case OndieOutcome::Forwarded:
            ++forwarded;
            break;
        }
        ++tally[static_cast<unsigned>(
            ErrorRateModel::classifyPattern(cls, fwd))];
    }

    OndieModelResult res;
    res.correctedOnDie = static_cast<double>(corrected) / trials;
    res.miscorrectedOnDie = static_cast<double>(miscorrected) / trials;
    res.forwardedOnDie = static_cast<double>(forwarded) / trials;
    const u64 arrived = miscorrected + forwarded;
    if (arrived > 0) {
        res.onArrival.benign = static_cast<double>(tally[0]) / arrived;
        res.onArrival.corrected = static_cast<double>(tally[1]) / arrived;
        res.onArrival.detected = static_cast<double>(tally[2]) / arrived;
        res.onArrival.silent = static_cast<double>(tally[3]) / arrived;
    }
    return res;
}

} // namespace cop
