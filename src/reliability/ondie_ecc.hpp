/**
 * @file
 * Per-chip on-die SEC model (Patel, arXiv 2204.10387) that sits
 * *between* the LiveInjector's raw flips and the stored image every
 * rank-level scheme reads. Modern DRAM chips run a single-error-
 * correcting code over 128-bit internal words with 8 hidden check bits
 * per word; the host never sees those check bits, and the chip has no
 * channel to report what it did. The model therefore acts as a pure
 * pre-filter on flip *patterns*:
 *
 *  - a raw fault event is drawn over the extended geometry (stored
 *    bits + 8 hidden check bits per 128-bit word);
 *  - each on-die word decodes independently: a zero syndrome forwards
 *    the word untouched, a syndrome matching a column flips that bit
 *    (a true correction only for single-flip words — for multi-flip
 *    words the matched bit is never one of the flipped bits, so the
 *    "correction" *adds* a flip: a miscorrection that can expand a
 *    2-flip input into 3), and an unmatched syndrome forwards the word
 *    unchanged (detection with nobody to tell);
 *  - only the surviving flips at *stored* (host-visible) positions are
 *    forwarded into the image; check-bit residue is invisible.
 *
 * Everything operates on the codes' column algebra (the codes are
 * linear, so flips compose by XOR of columns) — no codeword buffers,
 * no knowledge of the block's data. Composable with every scheme via
 * FaultConfig::ondieEcc; the recovery pipeline is untouched because it
 * only ever sees the post-filter image.
 */

#ifndef COP_RELIABILITY_ONDIE_ECC_HPP
#define COP_RELIABILITY_ONDIE_ECC_HPP

#include <vector>

#include "common/types.hpp"
#include "mem/vuln_log.hpp"
#include "reliability/error_model.hpp"

namespace cop {

class Rng;

/** What one on-die filtered fault event looked like to the host. */
enum class OndieOutcome : u8 {
    /** Every flip scrubbed (or confined to hidden check bits). */
    Corrected,
    /** At least one word's SEC added a flip; a nonzero pattern passed. */
    Miscorrected,
    /** A nonzero pattern passed through without any miscorrection. */
    Forwarded,
};

/**
 * Analytic split for a scheme with the on-die filter in front, the
 * counterpart of ErrorRateModel::conditionalOutcome for filtered
 * arrival. `onArrival` is conditioned on the event forwarding a
 * nonempty stored-bit pattern — the only events the rank-level
 * decoders (and the measured err_* split) can observe.
 */
struct OndieModelResult
{
    ConditionalOutcome onArrival;
    double correctedOnDie = 0;    ///< Fraction of raw events fully scrubbed.
    double miscorrectedOnDie = 0; ///< Fraction with an SEC-added flip.
    double forwardedOnDie = 0;    ///< Fraction forwarded unmodified.
};

class OndieEcc
{
  public:
    /** On-die internal word width (data portion). */
    static constexpr unsigned kWordBits = 128;
    /** Hidden check bits per on-die word. */
    static constexpr unsigned kCheckBitsPerWord = 8;

    /** On-die words covering @p stored_bits host-visible bits. */
    static unsigned
    words(unsigned stored_bits)
    {
        return (stored_bits + kWordBits - 1) / kWordBits;
    }

    /**
     * Raw fault geometry: the host-visible stored bits plus the hidden
     * on-die check bits behind them. Raw flip indices in
     * [0, stored_bits) address the stored image directly; indices in
     * [stored_bits, extendedBits) address check bit (i - stored_bits)
     * laid out 8 per word, word-major.
     */
    static unsigned
    extendedBits(unsigned stored_bits)
    {
        return stored_bits + kCheckBitsPerWord * words(stored_bits);
    }

    /**
     * Run one raw flip pattern (distinct indices < extendedBits) through
     * the per-word SEC filter. @p out receives the surviving flips at
     * stored-image positions (< stored_bits), sorted ascending. The
     * event is Corrected iff @p out comes back empty.
     */
    static OndieOutcome filter(unsigned stored_bits,
                               const std::vector<unsigned> &raw_flips,
                               std::vector<unsigned> &out);

    /**
     * Monte-Carlo estimate of the composed on-die + rank-level outcome
     * split for @p raw_flips uniform raw flips over the extended
     * geometry of @p cls (seeded, deterministic). `onArrival`
     * classifies each *forwarded* pattern with the same exact
     * column-algebra classifier the 3+-flip conditionalOutcome uses,
     * so it is directly comparable to a measured err_* split from a
     * campaign running with FaultConfig::ondieEcc on.
     */
    static OndieModelResult model(VulnClass cls, unsigned raw_flips,
                                  u64 trials, u64 seed);
};

} // namespace cop

#endif // COP_RELIABILITY_ONDIE_ECC_HPP
