#include "reliability/error_model.hpp"

#include <string>

namespace cop {

namespace {

/**
 * P(exactly 2 of @p total flipped bits share one of the words) to
 * second order: pairs * p^2, with pairs counted per word.
 */
double
doubleInOneWord(double p, unsigned word_bits, unsigned words)
{
    const double pairs_per_word =
        0.5 * static_cast<double>(word_bits) * (word_bits - 1);
    return words * pairs_per_word * p * p;
}

/** P(two flips land in two different words), second order. */
double
doubleAcrossWords(double p, unsigned word_bits, unsigned words)
{
    const double total_bits = static_cast<double>(word_bits) * words;
    const double all_pairs = 0.5 * total_bits * (total_bits - 1);
    return (all_pairs - doubleInOneWord(1.0, word_bits, words)) * p * p;
}

} // namespace

ExposureOutcome
ErrorRateModel::outcome(VulnClass cls, double cycles) const
{
    // Scrubbing caps the window in which a protected block can collect
    // the second error of a fatal pair; unprotected data sees no
    // benefit (there is nothing to correct at scrub time). A residency
    // of T with interval S is T/S independent S-length windows.
    double window_scale = 1.0;
    if (params_.scrubIntervalCycles > 0 &&
        cls != VulnClass::Unprotected &&
        cycles > params_.scrubIntervalCycles) {
        window_scale = cycles / params_.scrubIntervalCycles;
        cycles = params_.scrubIntervalCycles;
    }
    const double p = params_.bitFlipProbability(cycles);
    ExposureOutcome out;

    switch (cls) {
      case VulnClass::Unprotected:
        out.silent = 512.0 * p;
        break;
      case VulnClass::EccDimm:
        out.detected = doubleInOneWord(p, 72, 8);
        break;
      case VulnClass::CopProtected4:
        out.detected = doubleInOneWord(p, 128, 4);
        out.silent = doubleAcrossWords(p, 128, 4);
        break;
      case VulnClass::CopProtected8:
        // Pairs in distinct words are corrected (threshold 5-of-8);
        // only same-word doubles are lost, and they are detected.
        out.detected = doubleInOneWord(p, 64, 8);
        break;
      case VulnClass::WideCode:
      case VulnClass::CopErUncompressed:
        out.detected = doubleInOneWord(p, 523, 1);
        break;
      case VulnClass::kCount:
        COP_PANIC("bad vuln class");
    }
    out.silent *= window_scale;
    out.detected *= window_scale;
    return out;
}

ConditionalOutcome
ErrorRateModel::conditionalOutcome(VulnClass cls, unsigned flips)
{
    ConditionalOutcome out;
    if (flips == 0) {
        out.benign = 1.0;
        return out;
    }
    if (cls == VulnClass::Unprotected) {
        out.silent = 1.0; // any flip in raw data goes unnoticed
        return out;
    }
    if (flips == 1) {
        out.corrected = 1.0; // every class corrects singles
        return out;
    }
    if (flips > 2)
        COP_FATAL("conditionalOutcome supports at most 2 flips, got " +
                  std::to_string(flips));

    // Two uniform flips over N stored bits split into n words of w
    // bits: P(same word) = n * C(w,2) / C(N,2).
    const auto sameWord = [](unsigned w, unsigned n, unsigned N) {
        const double word_pairs = 0.5 * w * (w - 1) * n;
        const double all_pairs = 0.5 * static_cast<double>(N) * (N - 1);
        return word_pairs / all_pairs;
    };
    switch (cls) {
      case VulnClass::EccDimm: {
        // Eight (72,64) words over 576 stored bits; a cross-word pair
        // is two correctable singles.
        const double same = sameWord(72, 8, 576);
        out.detected = same;
        out.corrected = 1.0 - same;
        break;
      }
      case VulnClass::CopProtected4: {
        // Four (128,120) words; a cross-word pair leaves only two
        // zero-syndrome words, below the 3-of-4 threshold, so the
        // block is misclassified as raw -> silent (Section 3.1).
        const double same = sameWord(128, 4, 512);
        out.detected = same;
        out.silent = 1.0 - same;
        break;
      }
      case VulnClass::CopProtected8: {
        // Eight (64,56) words with a 5-of-8 threshold: cross-word
        // pairs are two corrected singles, same-word pairs a DUE.
        const double same = sameWord(64, 8, 512);
        out.detected = same;
        out.corrected = 1.0 - same;
        break;
      }
      case VulnClass::WideCode:
      case VulnClass::CopErUncompressed:
        // One (523,512) word: every double is a detected double.
        out.detected = 1.0;
        break;
      case VulnClass::Unprotected:
      case VulnClass::kCount:
        COP_PANIC("bad vuln class");
    }
    return out;
}

ErrorRateReport
ErrorRateModel::evaluate(const VulnLog &log) const
{
    ErrorRateReport report;
    for (unsigned c = 0; c < kVulnClasses; ++c) {
        const auto cls = static_cast<VulnClass>(c);
        const VulnLog::Entry &entry = log.of(cls);
        if (entry.reads == 0)
            continue;
        // The model is linear (first order) in exposure for the
        // unprotected class and quadratic for protected ones; evaluate
        // at the mean residency and scale by the read count. (Jensen
        // error is negligible at these probabilities.)
        const double mean_cycles =
            entry.totalCycles / static_cast<double>(entry.reads);
        const ExposureOutcome o = outcome(cls, mean_cycles);
        const auto reads = static_cast<double>(entry.reads);
        report.silent += o.silent * reads;
        report.detected += o.detected * reads;
        report.baselineUnprotected +=
            outcome(VulnClass::Unprotected, mean_cycles).silent * reads;
    }
    report.uncorrected = report.silent + report.detected;
    return report;
}

double
ErrorRateModel::copErVsEccDimmRatio(double cycles) const
{
    const double coper =
        outcome(VulnClass::CopErUncompressed, cycles).uncorrected();
    const double dimm = outcome(VulnClass::EccDimm, cycles).uncorrected();
    return dimm > 0 ? coper / dimm : 0.0;
}

} // namespace cop
