#include "reliability/error_model.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <string>

#include "common/rng.hpp"
#include "ecc/secded.hpp"

namespace cop {

namespace {

/**
 * P(exactly 2 of @p total flipped bits share one of the words) to
 * second order: pairs * p^2, with pairs counted per word.
 */
double
doubleInOneWord(double p, unsigned word_bits, unsigned words)
{
    const double pairs_per_word =
        0.5 * static_cast<double>(word_bits) * (word_bits - 1);
    return words * pairs_per_word * p * p;
}

/** P(two flips land in two different words), second order. */
double
doubleAcrossWords(double p, unsigned word_bits, unsigned words)
{
    const double total_bits = static_cast<double>(word_bits) * words;
    const double all_pairs = 0.5 * total_bits * (total_bits - 1);
    return (all_pairs - doubleInOneWord(1.0, word_bits, words)) * p * p;
}

/**
 * Word layout of one protection class for the pattern classifier:
 * which SECDED code guards each word, how a stored-bit index maps to
 * (word, codeword position), below which codeword position a residual
 * flip corrupts *data* (check residue is invisible to the data-compare
 * oracle), and COP's minimum valid-codeword count (0 = no threshold).
 */
struct ClassGeometry
{
    const HsiaoCode *code;
    unsigned words;
    unsigned dataPosLimit;
    unsigned validThreshold;
    /** Stored-bit index -> (word, codeword position). */
    void (*locate)(unsigned bit, unsigned &word, unsigned &pos);
};

ClassGeometry
geometryOf(VulnClass cls)
{
    switch (cls) {
      case VulnClass::EccDimm:
        // 512 data bits in 8x64 + 64 check bits appended 8 per word.
        return {&codes::dimm72(), 8, 64, 0,
                [](unsigned b, unsigned &w, unsigned &p) {
                    if (b < 512) {
                        w = b / 64;
                        p = b % 64;
                    } else {
                        w = (b - 512) / 8;
                        p = 64 + (b - 512) % 8;
                    }
                }};
      case VulnClass::CopProtected4:
        return {&codes::full128(), 4, 120, 3,
                [](unsigned b, unsigned &w, unsigned &p) {
                    w = b / 128;
                    p = b % 128;
                }};
      case VulnClass::CopProtected8:
        return {&codes::short64(), 8, 56, 5,
                [](unsigned b, unsigned &w, unsigned &p) {
                    w = b / 64;
                    p = b % 64;
                }};
      case VulnClass::WideCode:
      case VulnClass::CopErUncompressed:
        return {&codes::wide523(), 1, 512, 0,
                [](unsigned b, unsigned &w, unsigned &p) {
                    w = 0;
                    p = b;
                }};
      case VulnClass::Unprotected:
      case VulnClass::kCount:
        break;
    }
    COP_PANIC("bad vuln class");
}

} // namespace

ExposureOutcome
ErrorRateModel::outcome(VulnClass cls, double cycles) const
{
    // Scrubbing caps the window in which a protected block can collect
    // the second error of a fatal pair; unprotected data sees no
    // benefit (there is nothing to correct at scrub time). A residency
    // of T with interval S is T/S independent S-length windows.
    double window_scale = 1.0;
    if (params_.scrubIntervalCycles > 0 &&
        cls != VulnClass::Unprotected &&
        cycles > params_.scrubIntervalCycles) {
        window_scale = cycles / params_.scrubIntervalCycles;
        cycles = params_.scrubIntervalCycles;
    }
    const double p = params_.bitFlipProbability(cycles);
    ExposureOutcome out;

    switch (cls) {
      case VulnClass::Unprotected:
        out.silent = 512.0 * p;
        break;
      case VulnClass::EccDimm:
        out.detected = doubleInOneWord(p, 72, 8);
        break;
      case VulnClass::CopProtected4:
        out.detected = doubleInOneWord(p, 128, 4);
        out.silent = doubleAcrossWords(p, 128, 4);
        break;
      case VulnClass::CopProtected8:
        // Pairs in distinct words are corrected (threshold 5-of-8);
        // only same-word doubles are lost, and they are detected.
        out.detected = doubleInOneWord(p, 64, 8);
        break;
      case VulnClass::WideCode:
      case VulnClass::CopErUncompressed:
        out.detected = doubleInOneWord(p, 523, 1);
        break;
      case VulnClass::kCount:
        COP_PANIC("bad vuln class");
    }
    out.silent *= window_scale;
    out.detected *= window_scale;
    return out;
}

ConditionalOutcome
ErrorRateModel::conditionalOutcome(VulnClass cls, unsigned flips)
{
    ConditionalOutcome out;
    if (flips == 0) {
        out.benign = 1.0;
        return out;
    }
    if (cls == VulnClass::Unprotected) {
        out.silent = 1.0; // any flip in raw data goes unnoticed
        return out;
    }
    if (flips == 1) {
        out.corrected = 1.0; // every class corrects singles
        return out;
    }
    if (flips > 2) {
        // Beyond the closed-form regime (on-die miscorrection can
        // expand a 2-flip raw event into 3 stored flips): seeded
        // Monte-Carlo over uniform patterns, each classified exactly
        // by the column-algebra classifier. Cached per (class, flips);
        // deterministic, so campaigns can gate on the numbers.
        static std::mutex mutex;
        static std::map<std::pair<unsigned, unsigned>, ConditionalOutcome>
            cache;
        const std::pair<unsigned, unsigned> key{
            static_cast<unsigned>(cls), flips};
        std::lock_guard<std::mutex> lock(mutex);
        const auto it = cache.find(key);
        if (it != cache.end())
            return it->second;

        constexpr u64 kTrials = 200000;
        const unsigned nbits = storedBitsOf(cls);
        COP_ASSERT(flips <= nbits);
        Rng rng(0x0D1ECA57ULL ^ (static_cast<u64>(cls) << 32) ^ flips);
        std::vector<unsigned> bits;
        u64 tally[4] = {0, 0, 0, 0};
        for (u64 t = 0; t < kTrials; ++t) {
            bits.clear();
            while (bits.size() < flips) {
                const auto b = static_cast<unsigned>(rng.below(nbits));
                if (std::find(bits.begin(), bits.end(), b) == bits.end())
                    bits.push_back(b);
            }
            ++tally[static_cast<unsigned>(classifyPattern(cls, bits))];
        }
        out.benign = static_cast<double>(tally[0]) / kTrials;
        out.corrected = static_cast<double>(tally[1]) / kTrials;
        out.detected = static_cast<double>(tally[2]) / kTrials;
        out.silent = static_cast<double>(tally[3]) / kTrials;
        cache.emplace(key, out);
        return out;
    }

    // Two uniform flips over N stored bits split into n words of w
    // bits: P(same word) = n * C(w,2) / C(N,2).
    const auto sameWord = [](unsigned w, unsigned n, unsigned N) {
        const double word_pairs = 0.5 * w * (w - 1) * n;
        const double all_pairs = 0.5 * static_cast<double>(N) * (N - 1);
        return word_pairs / all_pairs;
    };
    switch (cls) {
      case VulnClass::EccDimm: {
        // Eight (72,64) words over 576 stored bits; a cross-word pair
        // is two correctable singles.
        const double same = sameWord(72, 8, 576);
        out.detected = same;
        out.corrected = 1.0 - same;
        break;
      }
      case VulnClass::CopProtected4: {
        // Four (128,120) words; a cross-word pair leaves only two
        // zero-syndrome words, below the 3-of-4 threshold, so the
        // block is misclassified as raw -> silent (Section 3.1).
        const double same = sameWord(128, 4, 512);
        out.detected = same;
        out.silent = 1.0 - same;
        break;
      }
      case VulnClass::CopProtected8: {
        // Eight (64,56) words with a 5-of-8 threshold: cross-word
        // pairs are two corrected singles, same-word pairs a DUE.
        const double same = sameWord(64, 8, 512);
        out.detected = same;
        out.corrected = 1.0 - same;
        break;
      }
      case VulnClass::WideCode:
      case VulnClass::CopErUncompressed:
        // One (523,512) word: every double is a detected double.
        out.detected = 1.0;
        break;
      case VulnClass::Unprotected:
      case VulnClass::kCount:
        COP_PANIC("bad vuln class");
    }
    return out;
}

OutcomeKind
ErrorRateModel::classifyPattern(VulnClass cls,
                                const std::vector<unsigned> &bits)
{
    if (bits.empty())
        return OutcomeKind::Benign;
    if (cls == VulnClass::Unprotected)
        return OutcomeKind::Silent; // all 512 stored bits are data

    const ClassGeometry geo = geometryOf(cls);
    const unsigned nbits = storedBitsOf(cls);

    // Gather the flips of each word as codeword positions; patterns
    // are tiny, so a per-word rescan beats allocating buckets.
    bool any_uncorrectable = false;
    bool any_corrected = false;
    bool wrong_data = false;
    unsigned invalid_words = 0;
    std::vector<unsigned> pos;
    for (unsigned w = 0; w < geo.words; ++w) {
        pos.clear();
        for (const unsigned b : bits) {
            COP_ASSERT(b < nbits);
            unsigned bw, bp;
            geo.locate(b, bw, bp);
            if (bw == w)
                pos.push_back(bp);
        }
        if (pos.empty())
            continue;

        u32 syn = 0;
        for (const unsigned p : pos)
            syn ^= geo.code->column(p);
        if (syn == 0) {
            // Flips form a codeword of the word's code: the decoder
            // sees a clean word and every flip survives (alias).
            for (const unsigned p : pos)
                wrong_data |= p < geo.dataPosLimit;
            continue;
        }
        ++invalid_words;
        const int fix = geo.code->bitForSyndrome(syn);
        if (fix < 0) {
            any_uncorrectable = true;
            continue;
        }
        // Single-error signature: the decoder flips bit `fix`. For a
        // lone flip that undoes it; for multi-flip words `fix` is (all
        // but degenerately) a *new* position — a miscorrection whose
        // residue is flips (+) {fix}.
        any_corrected = true;
        const auto it =
            std::find(pos.begin(), pos.end(), static_cast<unsigned>(fix));
        if (it != pos.end())
            pos.erase(it);
        else
            pos.push_back(static_cast<unsigned>(fix));
        for (const unsigned p : pos)
            wrong_data |= p < geo.dataPosLimit;
    }

    // COP first counts valid codewords; below the threshold the block
    // is misclassified as raw and handed over undecoded — the stored
    // (compressed + hashed) bits are not the data, so it is silent
    // regardless of where the flips sit (Section 3.1).
    if (geo.validThreshold != 0 &&
        geo.words - invalid_words < geo.validThreshold)
        return OutcomeKind::Silent;
    if (any_uncorrectable)
        return OutcomeKind::Detected;
    if (wrong_data)
        return OutcomeKind::Silent;
    if (any_corrected)
        return OutcomeKind::Corrected;
    return OutcomeKind::Benign; // residue confined to check bits
}

unsigned
ErrorRateModel::storedBitsOf(VulnClass cls)
{
    switch (cls) {
      case VulnClass::Unprotected:
      case VulnClass::CopProtected4:
      case VulnClass::CopProtected8:
        return 512;
      case VulnClass::EccDimm:
        return 576;
      case VulnClass::WideCode:
      case VulnClass::CopErUncompressed:
        return 523;
      case VulnClass::kCount:
        break;
    }
    COP_PANIC("bad vuln class");
}

ErrorRateReport
ErrorRateModel::evaluate(const VulnLog &log) const
{
    ErrorRateReport report;
    for (unsigned c = 0; c < kVulnClasses; ++c) {
        const auto cls = static_cast<VulnClass>(c);
        const VulnLog::Entry &entry = log.of(cls);
        if (entry.reads == 0)
            continue;
        // The model is linear (first order) in exposure for the
        // unprotected class and quadratic for protected ones; evaluate
        // at the mean residency and scale by the read count. (Jensen
        // error is negligible at these probabilities.)
        const double mean_cycles =
            entry.totalCycles / static_cast<double>(entry.reads);
        const ExposureOutcome o = outcome(cls, mean_cycles);
        const auto reads = static_cast<double>(entry.reads);
        report.silent += o.silent * reads;
        report.detected += o.detected * reads;
        report.baselineUnprotected +=
            outcome(VulnClass::Unprotected, mean_cycles).silent * reads;
    }
    report.uncorrected = report.silent + report.detected;
    return report;
}

double
ErrorRateModel::copErVsEccDimmRatio(double cycles) const
{
    const double coper =
        outcome(VulnClass::CopErUncompressed, cycles).uncorrected();
    const double dimm = outcome(VulnClass::EccDimm, cycles).uncorrected();
    return dimm > 0 ? coper / dimm : 0.0;
}

} // namespace cop
