#include "reliability/fault_injector.hpp"

#include <algorithm>
#include <cstring>
#include <string>

namespace cop {

namespace {

/**
 * A pattern generator that emits a flip position past the stored image
 * would index out of bounds downstream (e.g. `words[b / 64]` in the
 * DIMM path); reject it loudly instead of corrupting the injector.
 */
void
checkFlips(const std::vector<unsigned> &bits, unsigned limit)
{
    for (const unsigned b : bits) {
        if (b >= limit) {
            COP_PANIC("flip position " + std::to_string(b) +
                      " is outside the " + std::to_string(limit) +
                      "-bit stored image");
        }
    }
}

} // namespace

void
FaultInjector::pickBits(unsigned bits, unsigned flips,
                        std::vector<unsigned> &out)
{
    out.clear();
    while (out.size() < flips) {
        const auto bit = static_cast<unsigned>(rng_.below(bits));
        if (std::find(out.begin(), out.end(), bit) == out.end())
            out.push_back(bit);
    }
}

FaultInjector::FlipGen
FaultInjector::uniformGen(unsigned flips)
{
    return [flips](Rng &rng, std::vector<unsigned> &out) {
        out.clear();
        while (out.size() < flips) {
            const auto bit = static_cast<unsigned>(rng.below(kBlockBits));
            if (std::find(out.begin(), out.end(), bit) == out.end())
                out.push_back(bit);
        }
    };
}

InjectionOutcome
FaultInjector::injectCop(const CopCodec &codec, const CacheBlock &data,
                         unsigned flips, u64 trials)
{
    return injectCopPattern(codec, data, uniformGen(flips), trials);
}

InjectionOutcome
FaultInjector::injectCopPattern(const CopCodec &codec,
                                const CacheBlock &data,
                                const FlipGen &gen, u64 trials)
{
    InjectionOutcome outcome;
    outcome.trials = trials;

    const CopEncodeResult enc = codec.encode(data);
    if (enc.status == EncodeStatus::AliasRejected) {
        if (skipAliasRejected_) {
            outcome.trials = 0;
            outcome.skipped = trials;
            return outcome;
        }
        COP_FATAL("cannot inject into an alias-rejected block");
    }
    const bool was_protected = enc.isProtected();

    std::vector<unsigned> bits;
    for (u64 t = 0; t < trials; ++t) {
        CacheBlock stored = enc.stored;
        gen(rng_, bits);
        checkFlips(bits, kBlockBits);
        for (const unsigned b : bits)
            stored.flipBit(b);

        const CopDecodeResult dec = codec.decode(stored);
        if (dec.data == data) {
            if (dec.correctedWords > 0)
                ++outcome.corrected;
            else
                ++outcome.benign;
        } else if (was_protected && dec.detectedUncorrectable) {
            ++outcome.detected;
        } else {
            ++outcome.silent;
        }
    }
    return outcome;
}

InjectionOutcome
FaultInjector::injectCopEr(const CoperCodec &coper, const CacheBlock &data,
                           unsigned flips, u64 trials)
{
    return injectCopErPattern(coper, data, uniformGen(flips), trials);
}

InjectionOutcome
FaultInjector::injectCopErPattern(const CoperCodec &coper,
                                  const CacheBlock &data,
                                  const FlipGen &gen, u64 trials)
{
    InjectionOutcome outcome;
    outcome.trials = trials;

    const u32 index = 0x123456;
    const CoperEncodeResult enc =
        coper.encodeIncompressible(data, index);
    COP_ASSERT(enc.aliasFree);
    EccEntry entry{true, enc.displaced, enc.check};

    std::vector<unsigned> bits;
    for (u64 t = 0; t < trials; ++t) {
        CacheBlock stored = enc.stored;
        gen(rng_, bits);
        checkFlips(bits, kBlockBits);
        for (const unsigned b : bits)
            stored.flipBit(b);

        // Full read path: the COP decoder must still classify the block
        // as uncompressed, the pointer must decode, and the wide code
        // must correct.
        const CopDecodeResult dec = coper.base().decode(stored);
        if (dec.compressed) {
            // Errors turned the raw block into a pseudo-compressed one:
            // the decoder hands back decompressed garbage.
            ++outcome.silent;
            continue;
        }
        const PointerDecodeResult ptr = coper.extractPointer(stored);
        if (ptr.ecc.uncorrectable() || ptr.entryIndex != index) {
            ++outcome.detected;
            continue;
        }
        const CoperDecodeResult rec = coper.reconstruct(stored, entry);
        if (rec.data == data) {
            if (rec.blockEcc.corrected() || ptr.ecc.corrected())
                ++outcome.corrected;
            else
                ++outcome.benign;
        } else if (rec.blockEcc.uncorrectable()) {
            ++outcome.detected;
        } else {
            ++outcome.silent;
        }
    }
    return outcome;
}

InjectionOutcome
FaultInjector::injectEccDimm(const CacheBlock &data, unsigned flips,
                             u64 trials)
{
    InjectionOutcome outcome;
    outcome.trials = trials;
    const HsiaoCode &code = codes::dimm72();

    // Stored image: 8 words x 72 bits = 576 bits (the 9th chip).
    std::array<std::array<u8, 9>, 8> clean{};
    for (unsigned w = 0; w < 8; ++w) {
        std::memcpy(clean[w].data(), data.data() + w * 8, 8);
        code.encode(clean[w]);
    }

    std::vector<unsigned> bits;
    for (u64 t = 0; t < trials; ++t) {
        auto words = clean;
        pickBits(576, flips, bits);
        for (const unsigned b : bits)
            flipBit(words[b / 72], b % 72);

        bool wrong = false, detected = false, corrected = false;
        for (unsigned w = 0; w < 8; ++w) {
            const EccResult r = code.decode(words[w]);
            corrected |= r.corrected();
            if (r.uncorrectable())
                detected = true;
            if (std::memcmp(words[w].data(), clean[w].data(), 9) != 0)
                wrong = true;
        }
        if (detected)
            ++outcome.detected;
        else if (wrong)
            ++outcome.silent;
        else if (corrected)
            ++outcome.corrected;
        else
            ++outcome.benign;
    }
    return outcome;
}

InjectionOutcome
FaultInjector::injectEccDimmPattern(const CacheBlock &data,
                                    const FlipGen &gen, u64 trials)
{
    InjectionOutcome outcome;
    outcome.trials = trials;
    const HsiaoCode &code = codes::dimm72();

    std::array<std::array<u8, 9>, 8> clean{};
    for (unsigned w = 0; w < 8; ++w) {
        std::memcpy(clean[w].data(), data.data() + w * 8, 8);
        code.encode(clean[w]);
    }

    std::vector<unsigned> bits;
    for (u64 t = 0; t < trials; ++t) {
        auto words = clean;
        gen(rng_, bits);
        // Pattern positions address the 512 data bits; map each to its
        // (72,64) word's data section.
        checkFlips(bits, kBlockBits);
        for (const unsigned b : bits)
            flipBit(words[b / 64], b % 64);

        bool wrong = false, detected = false, corrected = false;
        for (unsigned w = 0; w < 8; ++w) {
            const EccResult r = code.decode(words[w]);
            corrected |= r.corrected();
            if (r.uncorrectable())
                detected = true;
            if (std::memcmp(words[w].data(), clean[w].data(), 9) != 0)
                wrong = true;
        }
        if (detected)
            ++outcome.detected;
        else if (wrong)
            ++outcome.silent;
        else if (corrected)
            ++outcome.corrected;
        else
            ++outcome.benign;
    }
    return outcome;
}

InjectionOutcome
FaultInjector::injectChipkillPattern(const ChipkillCodec &codec,
                                     const CacheBlock &data,
                                     const FlipGen &gen, u64 trials)
{
    InjectionOutcome outcome;
    outcome.trials = trials;

    const CopEncodeResult enc = codec.encode(data);
    if (enc.status == EncodeStatus::AliasRejected) {
        if (skipAliasRejected_) {
            outcome.trials = 0;
            outcome.skipped = trials;
            return outcome;
        }
        COP_FATAL("cannot inject into an alias-rejected block");
    }
    const bool was_protected = enc.isProtected();

    std::vector<unsigned> bits;
    for (u64 t = 0; t < trials; ++t) {
        CacheBlock stored = enc.stored;
        gen(rng_, bits);
        checkFlips(bits, kBlockBits);
        for (const unsigned b : bits)
            stored.flipBit(b);

        const ChipkillDecodeResult dec = codec.decode(stored);
        if (dec.data == data) {
            if (dec.correctedSymbols > 0)
                ++outcome.corrected;
            else
                ++outcome.benign;
        } else if (was_protected && dec.detectedUncorrectable) {
            ++outcome.detected;
        } else {
            ++outcome.silent;
        }
    }
    return outcome;
}

InjectionOutcome
FaultInjector::injectUnprotected(const CacheBlock &data, unsigned flips,
                                 u64 trials)
{
    (void)data;
    InjectionOutcome outcome;
    outcome.trials = trials;
    // Every nonzero flip count silently corrupts an unprotected block.
    if (flips == 0)
        outcome.benign = trials;
    else
        outcome.silent = trials;
    return outcome;
}

} // namespace cop
