/**
 * @file
 * PARMA-inspired analytic soft-error model (paper Section 4). Every
 * block read from DRAM was exposed for T cycles; given the raw FIT rate
 * (5000 FIT/Mbit, after Li et al.) the model computes, per protection
 * class, the probability the exposure ends in a silent corruption (SDC)
 * or a detected-uncorrectable error (DUE). Aggregated over a run's
 * VulnLog this yields the per-benchmark error rates behind Figure 10
 * and the COP-ER-vs-ECC-DIMM comparison of Section 4.
 */

#ifndef COP_RELIABILITY_ERROR_MODEL_HPP
#define COP_RELIABILITY_ERROR_MODEL_HPP

#include <vector>

#include "mem/vuln_log.hpp"

namespace cop {

/** One read's classification — the one-hot form of ConditionalOutcome. */
enum class OutcomeKind : u8 {
    Benign,    ///< No host-visible data effect.
    Corrected, ///< All flips repaired transparently.
    Detected,  ///< Detected but uncorrectable (DUE).
    Silent,    ///< Wrong data handed over with no error.
};

/** Physical parameters of the error model. */
struct ReliabilityParams
{
    /** Raw soft-error rate per Mbit (Section 4: 5000, from [11]). */
    double fitPerMbit = 5000.0;
    /** Core clock, converts cycles to seconds (Table 1: 3.2 GHz). */
    double coreGHz = 3.2;
    /**
     * Optional memory-scrubbing interval in cycles (0 = disabled).
     * A scrubber reads and corrects every block periodically, so a
     * *protected* block can accumulate errors for at most one interval
     * before singles are cleaned out; it cannot help unprotected
     * blocks. (Extension beyond the paper's model.)
     */
    double scrubIntervalCycles = 0;

    /** Per-bit flip probability over @p cycles of exposure. */
    double
    bitFlipProbability(double cycles) const
    {
        // FIT = failures per 1e9 device-hours; per Mbit -> per bit.
        const double per_bit_per_hour =
            fitPerMbit / (1024.0 * 1024.0) * 1e-9;
        const double hours = cycles / (coreGHz * 1e9) / 3600.0;
        return per_bit_per_hour * hours;
    }
};

/**
 * Outcome distribution conditioned on a known number of flips — the
 * analytic counterpart of one live fault-injection event, where the
 * flip count is chosen rather than Poisson-distributed. Probabilities
 * sum to 1.
 */
struct ConditionalOutcome
{
    double benign = 0;    ///< No flips: the read is unaffected.
    double corrected = 0; ///< All flips corrected transparently.
    double detected = 0;  ///< Detected but uncorrectable (DUE).
    double silent = 0;    ///< Wrong data handed over with no error.
};

/** Expected error outcomes of one exposure window. */
struct ExposureOutcome
{
    double silent = 0;   ///< Probability of silent data corruption.
    double detected = 0; ///< Probability of a detected, uncorrectable loss.

    double uncorrected() const { return silent + detected; }
};

/** Aggregate error-rate report for one run. */
struct ErrorRateReport
{
    /** Expected uncorrected errors with the run's protection. */
    double uncorrected = 0;
    double silent = 0;
    double detected = 0;
    /** Expected errors had every block been unprotected. */
    double baselineUnprotected = 0;

    /** Figure 10's metric: reduction in error rate vs no protection. */
    double
    reduction() const
    {
        return baselineUnprotected > 0
                   ? 1.0 - uncorrected / baselineUnprotected
                   : 0.0;
    }
};

/**
 * The analytic model. All probabilities use the small-rate expansion of
 * the Poisson distribution (m = bits * lambda * T is ~1e-10 at realistic
 * exposures), keeping second-order terms so that double-error modes —
 * the ones that separate the schemes — are represented.
 */
class ErrorRateModel
{
  public:
    explicit ErrorRateModel(
        const ReliabilityParams &params = ReliabilityParams{})
        : params_(params)
    {
    }

    /**
     * Outcome probabilities for one read after @p cycles of exposure
     * under @p cls. Derivations (per 64-byte block; p = per-bit flip
     * probability):
     *
     * - Unprotected: any flip is silent; P = 512 p.
     * - EccDimm: 576 stored bits in 8 (72,64) words; singles corrected;
     *   two flips in one word are detected (DUE).
     * - CopProtected4: 512 bits in 4 (128,120) words; one flip
     *   corrected; two flips in one word -> DUE; two flips in different
     *   words leave only 2 valid code words, so the decoder hands the
     *   block over as raw data -> silent (Section 3.1).
     * - CopProtected8: 8 (64,56) words with a 5-of-8 threshold: flips
     *   in up to 3 distinct words are all corrected; two flips in one
     *   word -> DUE.
     * - WideCode / CopErUncompressed: one (523,512) word; singles
     *   corrected, doubles detected. (COP-ER additionally SEC-protects
     *   the pointer, which is already inside the 523-bit word here.)
     */
    ExposureOutcome outcome(VulnClass cls, double cycles) const;

    /**
     * Outcome distribution for exactly @p flips bit flips placed
     * uniformly at random over one block's stored bits (geometry per
     * class: 512 inline bits for COP, 576 for an ECC DIMM, 523 for the
     * wide code). This is what a live fault-injection campaign at a
     * fixed flips-per-event samples, so measured class rates can be
     * checked against it directly. For flips <= 2 this is the exact
     * closed form (the regimes the second-order exposure model
     * distinguishes); for 3+ flips — reachable once on-die
     * miscorrection can expand a 2-flip raw event into 3 stored flips —
     * it degrades to a documented, seeded Monte-Carlo estimate: uniform
     * patterns classified exactly by classifyPattern(), cached per
     * (class, flips), deterministic run-to-run.
     */
    static ConditionalOutcome conditionalOutcome(VulnClass cls,
                                                 unsigned flips);

    /**
     * Exact classification of one explicit flip pattern (stored-bit
     * indices, no duplicates) under @p cls, obtained by running the
     * real codes' column algebra: per-word syndromes, single-error
     * correction, COP's valid-codeword threshold, and the data-versus-
     * check position of every residual flip (check-bit residue is
     * invisible to the verifyData oracle, which compares data bytes).
     */
    static OutcomeKind classifyPattern(VulnClass cls,
                                       const std::vector<unsigned> &bits);

    /**
     * Stored-bit count of the model geometry for @p cls (512 inline
     * bits for COP and unprotected, 576 for an ECC DIMM, 523 for the
     * wide code) — the space conditionalOutcome samples patterns over.
     */
    static unsigned storedBitsOf(VulnClass cls);

    /** Aggregate a run's vulnerability log. */
    ErrorRateReport evaluate(const VulnLog &log) const;

    /**
     * Ratio of COP-ER's uncorrected-error rate to a conventional ECC
     * DIMM's for the same exposure (Section 4 reports ~6x: one wide
     * (523,512) word suffers double hits ~523^2 / (8 * 72^2) more often
     * than eight (72,64) words).
     */
    double copErVsEccDimmRatio(double cycles) const;

    const ReliabilityParams &params() const { return params_; }

  private:
    ReliabilityParams params_;
};

} // namespace cop

#endif // COP_RELIABILITY_ERROR_MODEL_HPP
