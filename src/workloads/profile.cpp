#include "workloads/profile.hpp"

#include <algorithm>

namespace cop {

const char *
suiteName(Suite s)
{
    switch (s) {
      case Suite::SpecInt: return "SPECint 2006";
      case Suite::SpecFp: return "SPECfp 2006";
      case Suite::Parsec: return "PARSEC";
    }
    COP_PANIC("bad suite");
}

u64
WorkloadProfile::seed() const
{
    u64 h = 0xcbf29ce484222325ULL;
    for (const char c : name) {
        h ^= static_cast<u8>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

namespace {

using C = BlockCategory;

/** Fluent builder so the registry below stays table-like. */
struct Build
{
    WorkloadProfile p;

    Build(std::string name, Suite suite, bool mem_intensive)
    {
        p.name = std::move(name);
        p.suite = suite;
        p.memoryIntensive = mem_intensive;
        p.sharedFootprint = (suite == Suite::Parsec);
    }

    Build &
    mix(std::initializer_list<std::pair<C, double>> entries)
    {
        for (const auto &[c, w] : entries)
            p.mix[c] = w;
        return *this;
    }

    Build &
    perf(double ipc, double apki, unsigned mlp, double wf,
         u64 footprint_mb, double stream)
    {
        p.perfectIpc = ipc;
        p.l3Apki = apki;
        p.mlp = mlp;
        p.writeFraction = wf;
        p.footprintBlocks = footprint_mb * ((1ULL << 20) / kBlockBytes);
        p.streamFraction = stream;
        return *this;
    }

    Build &
    fp(double neg_prob, unsigned exp_spread)
    {
        p.gen.fpNegativeProb = neg_prob;
        p.gen.fpExponentSpread = exp_spread;
        return *this;
    }

    Build &
    ints(unsigned magnitude_bits, double neg_prob)
    {
        p.gen.intMagnitudeBits = magnitude_bits;
        p.gen.intNegativeProb = neg_prob;
        return *this;
    }

    Build &
    mixed(unsigned random_words)
    {
        p.gen.mixedRandomWords = random_words;
        return *this;
    }

    Build &
    sparse(unsigned runs)
    {
        p.gen.sparseRuns = runs;
        return *this;
    }

    WorkloadProfile
    done()
    {
        double total = 0;
        for (const double w : p.mix.weight)
            total += w;
        COP_ASSERT(total > 0);
        for (double &w : p.mix.weight)
            w /= total;
        return p;
    }
};

std::vector<WorkloadProfile>
buildRegistry()
{
    std::vector<WorkloadProfile> r;

    // ------------------------------------------------------------------
    // SPECint 2006. Table 2 members flagged memory-intensive.
    // ------------------------------------------------------------------
    r.push_back(Build("astar", Suite::SpecInt, true)
                    .mix({{C::Pointer, .30}, {C::SmallInt64, .22},
                          {C::SmallInt32, .15}, {C::Zero, .10},
                          {C::Sparse, .08}, {C::MixedWords, .05},
                          {C::Random, .05}})
                    .perf(1.4, 8, 2, .25, 96, .2)
                    .done());
    r.push_back(Build("bzip2", Suite::SpecInt, true)
                    .mix({{C::Random, .22}, {C::SmallInt32, .26},
                          {C::Sparse, .14}, {C::Text, .12},
                          {C::MixedWords, .10}, {C::Zero, .10}})
                    .perf(1.6, 6, 3, .35, 80, .4)
                    .done());
    r.push_back(Build("gcc", Suite::SpecInt, true)
                    .mix({{C::Pointer, .26}, {C::SmallInt32, .24},
                          {C::Zero, .20}, {C::Text, .10},
                          {C::Sparse, .10}, {C::Random, .05}})
                    .perf(1.5, 10, 3, .30, 64, .3)
                    .done());
    r.push_back(Build("gobmk", Suite::SpecInt, false)
                    .mix({{C::SmallInt32, .35}, {C::Pointer, .20},
                          {C::Zero, .15}, {C::Sparse, .10},
                          {C::Text, .05}, {C::Random, .15}})
                    .perf(1.6, 4, 2, .3, 32, .2)
                    .done());
    r.push_back(Build("h264ref", Suite::SpecInt, false)
                    .mix({{C::SmallInt32, .30}, {C::Sparse, .20},
                          {C::Zero, .15}, {C::SmallInt64, .10},
                          {C::Random, .25}})
                    .ints(12, .2)
                    .perf(2.0, 3, 3, .35, 48, .5)
                    .done());
    r.push_back(Build("hmmer", Suite::SpecInt, false)
                    .mix({{C::SmallInt32, .40}, {C::FpSimilar, .15},
                          {C::Zero, .15}, {C::Sparse, .15},
                          {C::Random, .15}})
                    .perf(1.9, 3, 2, .3, 32, .4)
                    .done());
    r.push_back(Build("libquantum", Suite::SpecInt, false)
                    .mix({{C::MixedWords, .62}, {C::FpSimilar, .12},
                          {C::Zero, .10}, {C::SmallInt64, .06},
                          {C::Random, .10}})
                    .mixed(12)
                    .fp(.3, 24)
                    .perf(1.0, 25, 8, .35, 256, .9)
                    .done());
    r.push_back(Build("mcf", Suite::SpecInt, true)
                    .mix({{C::Pointer, .44}, {C::SmallInt32, .28},
                          {C::Zero, .15}, {C::Sparse, .06},
                          {C::Random, .03}})
                    .perf(0.8, 35, 2, .25, 256, .05)
                    .done());
    r.push_back(Build("omnetpp", Suite::SpecInt, true)
                    .mix({{C::Pointer, .34}, {C::SmallInt64, .20},
                          {C::Zero, .15}, {C::Text, .10},
                          {C::Sparse, .09}, {C::Random, .06}})
                    .perf(1.0, 20, 2, .30, 128, .1)
                    .done());
    r.push_back(Build("perlbench", Suite::SpecInt, true)
                    .mix({{C::Text, .44}, {C::Pointer, .20},
                          {C::SmallInt32, .14}, {C::Zero, .10},
                          {C::Random, .06}})
                    .perf(1.8, 5, 2, .30, 48, .3)
                    .done());
    r.push_back(Build("sjeng", Suite::SpecInt, true)
                    .mix({{C::SmallInt64, .30}, {C::Random, .18},
                          {C::Pointer, .20}, {C::Zero, .14},
                          {C::MixedWords, .08}, {C::Sparse, .06}})
                    .ints(20, .35)
                    .perf(1.7, 4, 2, .30, 160, .1)
                    .done());
    r.push_back(Build("xalancbmk", Suite::SpecInt, true)
                    .mix({{C::Text, .30}, {C::Pointer, .30},
                          {C::SmallInt32, .14}, {C::Zero, .14},
                          {C::Random, .06}})
                    .perf(1.4, 12, 3, .30, 64, .2)
                    .done());

    // ------------------------------------------------------------------
    // SPECfp 2006 (Figure 4 set; Table 2 members flagged).
    // ------------------------------------------------------------------
    r.push_back(Build("bwaves", Suite::SpecFp, true)
                    .mix({{C::FpSimilar, .70}, {C::Zero, .10},
                          {C::SmallInt32, .08}, {C::Random, .05}})
                    .fp(.40, 8)
                    .perf(1.2, 25, 8, .30, 384, .8)
                    .done());
    r.push_back(Build("cactusADM", Suite::SpecFp, true)
                    .mix({{C::FpSimilar, .62}, {C::Zero, .14},
                          {C::Sparse, .08}, {C::SmallInt64, .05},
                          {C::Random, .06}})
                    .fp(.20, 12)
                    .perf(1.1, 15, 4, .35, 192, .6)
                    .done());
    r.push_back(Build("calculix", Suite::SpecFp, false)
                    .mix({{C::FpSimilar, .55}, {C::SmallInt32, .20},
                          {C::Zero, .10}, {C::Random, .15}})
                    .fp(.15, 16)
                    .perf(1.8, 4, 3, .3, 64, .5)
                    .done());
    r.push_back(Build("dealII", Suite::SpecFp, false)
                    .mix({{C::FpSimilar, .50}, {C::Pointer, .20},
                          {C::Zero, .10}, {C::Text, .05},
                          {C::Random, .15}})
                    .fp(.25, 10)
                    .perf(1.7, 6, 3, .3, 96, .4)
                    .done());
    r.push_back(Build("gamess", Suite::SpecFp, false)
                    .mix({{C::FpSimilar, .60}, {C::SmallInt32, .15},
                          {C::Zero, .10}, {C::Random, .15}})
                    .fp(.10, 14)
                    .perf(2.0, 2, 2, .3, 32, .5)
                    .done());
    r.push_back(Build("GemsFDTD", Suite::SpecFp, true)
                    .mix({{C::FpSimilar, .66}, {C::Zero, .14},
                          {C::Sparse, .08}, {C::Random, .06}})
                    .fp(.45, 6)
                    .perf(1.0, 22, 6, .30, 320, .7)
                    .done());
    r.push_back(Build("gromacs", Suite::SpecFp, false)
                    .mix({{C::FpSimilar, .55}, {C::SmallInt32, .20},
                          {C::Zero, .10}, {C::Random, .15}})
                    .fp(.35, 18)
                    .perf(1.7, 5, 3, .3, 64, .5)
                    .done());
    r.push_back(Build("lbm", Suite::SpecFp, true)
                    .mix({{C::FpSimilar, .74}, {C::Zero, .10},
                          {C::Sparse, .05}, {C::Random, .05}})
                    .fp(.30, 4)
                    .perf(0.9, 30, 8, .45, 384, .9)
                    .done());
    r.push_back(Build("leslie3d", Suite::SpecFp, false)
                    .mix({{C::FpSimilar, .64}, {C::Zero, .14},
                          {C::SmallInt32, .10}, {C::Random, .12}})
                    .fp(.30, 12)
                    .perf(1.2, 14, 5, .3, 192, .7)
                    .done());
    r.push_back(Build("milc", Suite::SpecFp, true)
                    .mix({{C::FpSimilar, .70}, {C::Zero, .10},
                          {C::SmallInt32, .08}, {C::Random, .06}})
                    .fp(.50, 5)
                    .perf(1.0, 25, 6, .35, 320, .7)
                    .done());
    r.push_back(Build("namd", Suite::SpecFp, false)
                    .mix({{C::FpSimilar, .60}, {C::SmallInt32, .15},
                          {C::Zero, .10}, {C::Random, .15}})
                    .fp(.40, 14)
                    .perf(1.9, 3, 3, .3, 48, .5)
                    .done());
    r.push_back(Build("povray", Suite::SpecFp, false)
                    .mix({{C::FpSimilar, .45}, {C::Pointer, .20},
                          {C::SmallInt32, .15}, {C::Zero, .10},
                          {C::Random, .10}})
                    .fp(.25, 16)
                    .perf(1.9, 1.5, 2, .3, 16, .3)
                    .done());
    r.push_back(Build("soplex", Suite::SpecFp, true)
                    .mix({{C::FpSimilar, .50}, {C::SmallInt32, .20},
                          {C::Pointer, .10}, {C::Zero, .10},
                          {C::Random, .05}})
                    .fp(.30, 6)
                    .perf(1.1, 25, 4, .30, 256, .4)
                    .done());
    r.push_back(Build("sphinx3", Suite::SpecFp, false)
                    .mix({{C::FpSimilar, .60}, {C::SmallInt32, .20},
                          {C::Zero, .10}, {C::Random, .10}})
                    .fp(.15, 12)
                    .perf(1.6, 10, 4, .3, 128, .6)
                    .done());
    r.push_back(Build("tonto", Suite::SpecFp, false)
                    .mix({{C::FpSimilar, .60}, {C::SmallInt32, .15},
                          {C::Zero, .15}, {C::Random, .10}})
                    .fp(.20, 14)
                    .perf(1.8, 3, 3, .3, 48, .5)
                    .done());
    r.push_back(Build("wrf", Suite::SpecFp, true)
                    .mix({{C::FpSimilar, .66}, {C::Zero, .10},
                          {C::SmallInt32, .08}, {C::Sparse, .05},
                          {C::Random, .05}})
                    .fp(.25, 6)
                    .perf(1.3, 12, 5, .30, 256, .7)
                    .done());
    r.push_back(Build("zeusmp", Suite::SpecFp, true)
                    .mix({{C::FpSimilar, .64}, {C::Zero, .15},
                          {C::Sparse, .05}, {C::Random, .08}})
                    .fp(.35, 7)
                    .perf(1.2, 15, 5, .30, 256, .7)
                    .done());

    // ------------------------------------------------------------------
    // PARSEC (4-threaded, shared footprint).
    // ------------------------------------------------------------------
    r.push_back(Build("canneal", Suite::Parsec, true)
                    .mix({{C::Pointer, .40}, {C::SmallInt32, .20},
                          {C::Zero, .10}, {C::Text, .05},
                          {C::Sparse, .10}, {C::Random, .08}})
                    .perf(1.0, 18, 3, .25, 384, .05)
                    .done());
    r.push_back(Build("fluidanimate", Suite::Parsec, true)
                    .mix({{C::FpSimilar, .64}, {C::Zero, .10},
                          {C::SmallInt32, .10}, {C::Sparse, .05},
                          {C::Random, .05}})
                    .fp(.45, 6)
                    .perf(1.5, 8, 4, .35, 128, .5)
                    .done());
    r.push_back(Build("streamcluster", Suite::Parsec, true)
                    .mix({{C::FpSimilar, .56}, {C::SmallInt32, .14},
                          {C::Zero, .10}, {C::Random, .12}})
                    .fp(.20, 9)
                    .perf(1.1, 22, 6, .30, 256, .8)
                    .done());
    r.push_back(Build("x264", Suite::Parsec, true)
                    .mix({{C::SmallInt32, .30}, {C::Sparse, .20},
                          {C::Zero, .15}, {C::Text, .10},
                          {C::Random, .16}})
                    .ints(10, .25)
                    .perf(2.0, 4, 4, .40, 96, .6)
                    .done());

    return r;
}

} // namespace

const std::vector<WorkloadProfile> &
WorkloadRegistry::all()
{
    static const std::vector<WorkloadProfile> registry = buildRegistry();
    return registry;
}

const WorkloadProfile &
WorkloadRegistry::byName(const std::string &name)
{
    for (const auto &p : all()) {
        if (p.name == name)
            return p;
    }
    COP_FATAL("unknown benchmark: " + name);
}

std::vector<const WorkloadProfile *>
WorkloadRegistry::memoryIntensive()
{
    std::vector<const WorkloadProfile *> out;
    for (const auto &p : all()) {
        if (p.memoryIntensive)
            out.push_back(&p);
    }
    return out;
}

std::vector<const WorkloadProfile *>
WorkloadRegistry::bySuite(Suite s)
{
    std::vector<const WorkloadProfile *> out;
    for (const auto &p : all()) {
        if (p.suite == s)
            out.push_back(&p);
    }
    return out;
}

std::vector<const WorkloadProfile *>
WorkloadRegistry::specFpFigure4()
{
    // The 17 SPECfp benchmarks of Figure 4.
    static const char *names[] = {
        "bwaves", "cactusADM", "calculix", "dealII", "gamess",
        "GemsFDTD", "gromacs", "lbm", "leslie3d", "milc", "namd",
        "povray", "soplex", "sphinx3", "tonto", "wrf", "zeusmp",
    };
    std::vector<const WorkloadProfile *> out;
    for (const char *n : names)
        out.push_back(&byName(n));
    return out;
}

std::vector<const WorkloadProfile *>
WorkloadRegistry::specIntFigure1()
{
    // Figure 1 plots astar, gcc, libquantum, mcf and the SPECint mean.
    static const char *names[] = {"astar", "gcc", "libquantum", "mcf"};
    std::vector<const WorkloadProfile *> out;
    for (const char *n : names)
        out.push_back(&byName(n));
    return out;
}

} // namespace cop
