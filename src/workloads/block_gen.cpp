#include "workloads/block_gen.hpp"

#include <array>
#include <utility>

namespace cop {

const char *
blockCategoryName(BlockCategory c)
{
    switch (c) {
      case BlockCategory::Zero: return "zero";
      case BlockCategory::SmallInt64: return "int64";
      case BlockCategory::SmallInt32: return "int32";
      case BlockCategory::FpSimilar: return "fp";
      case BlockCategory::Text: return "text";
      case BlockCategory::Pointer: return "pointer";
      case BlockCategory::Sparse: return "sparse";
      case BlockCategory::MixedWords: return "mixed";
      case BlockCategory::Random: return "random";
      case BlockCategory::kCount: break;
    }
    COP_PANIC("bad block category");
}

namespace {

CacheBlock
genSmallInt64(const BlockGenParams &p, Rng &rng)
{
    CacheBlock b;
    const u64 mask = (1ULL << p.intMagnitudeBits) - 1;
    for (unsigned w = 0; w < 8; ++w) {
        i64 v = static_cast<i64>(rng.next() & mask);
        if (rng.chance(p.intNegativeProb))
            v = -v;
        b.setWord64(w, static_cast<u64>(v));
    }
    return b;
}

CacheBlock
genSmallInt32(const BlockGenParams &p, Rng &rng)
{
    CacheBlock b;
    const unsigned bits = p.intMagnitudeBits < 30 ? p.intMagnitudeBits : 30;
    const u32 mask = (1u << bits) - 1;
    for (unsigned w = 0; w < 16; ++w) {
        auto v = static_cast<std::int32_t>(rng.next() & mask);
        if (rng.chance(p.intNegativeProb))
            v = -v;
        b.setWord32(w, static_cast<u32>(v));
    }
    return b;
}

CacheBlock
genFpSimilar(const BlockGenParams &p, Rng &rng)
{
    // IEEE-754 doubles: sign(1) | exponent(11) | mantissa(52). Most
    // array blocks hold values of one magnitude (identical exponents);
    // a minority mix nearby magnitudes within the configured spread.
    // The jittered minority is what separates the 8-byte MSB compare
    // (10 bits deep into the exponent) from the 4-byte one (5 bits).
    // Signs are block-correlated: most arrays hold same-sign stretches
    // (compressible even unshifted); fpNegativeProb is the probability
    // a block mixes signs, which only the *shifted* comparison
    // tolerates — the Figure 4 effect.
    CacheBlock b;
    const u64 base_exp = 1023 + rng.below(40); // magnitudes 1 .. 2^40
    const bool jittered = p.fpExponentSpread > 0 && rng.chance(0.3);
    const bool mixed_signs = rng.chance(p.fpNegativeProb);
    const u64 block_sign = rng.next() & 1;
    for (unsigned w = 0; w < 8; ++w) {
        u64 exp = base_exp;
        if (jittered)
            exp += rng.below(p.fpExponentSpread + 1);
        const u64 sign = mixed_signs ? (rng.next() & 1) : block_sign;
        const u64 mantissa = rng.next() & ((1ULL << 52) - 1);
        b.setWord64(w, (sign << 63) | ((exp & 0x7FF) << 52) | mantissa);
    }
    return b;
}

CacheBlock
genText(Rng &rng)
{
    // Letter-frequency-ish ASCII: spaces, lower case, some punctuation.
    static constexpr char alphabet[] =
        "  eeeettaaoinshrdlucmfwypvbgkqjxz.,;'\"()0123456789ETAOIN\n\t";
    CacheBlock b;
    for (unsigned i = 0; i < kBlockBytes; ++i) {
        b.setByte(i, static_cast<u8>(
                         alphabet[rng.below(sizeof(alphabet) - 1)]));
    }
    return b;
}

CacheBlock
genPointer(const BlockGenParams &p, Rng &rng)
{
    // Eight pointers into one heap arena: high bits shared, low bits
    // random. Typical of pointer-chasing workloads (mcf, canneal).
    CacheBlock b;
    const u64 arena = 0x00007F0000000000ULL |
                      (rng.below(16) << p.pointerLowBits);
    const u64 low_mask = (1ULL << p.pointerLowBits) - 1;
    for (unsigned w = 0; w < 8; ++w)
        b.setWord64(w, arena | (rng.next() & low_mask & ~0x7ULL));
    return b;
}

CacheBlock
genSparse(const BlockGenParams &p, Rng &rng)
{
    CacheBlock b;
    for (unsigned w = 0; w < 8; ++w)
        b.setWord64(w, rng.next());
    for (unsigned r = 0; r < p.sparseRuns; ++r) {
        const unsigned word = rng.below(31);
        b.setByte(2 * word, 0);
        b.setByte(2 * word + 1, 0);
        b.setByte(2 * word + 2, 0);
    }
    return b;
}

CacheBlock
genMixedWords(const BlockGenParams &p, Rng &rng)
{
    // Shuffle which word positions carry random data so runs land at
    // varying offsets.
    CacheBlock b;
    std::array<unsigned, 16> order;
    for (unsigned i = 0; i < 16; ++i)
        order[i] = i;
    for (unsigned i = 15; i > 0; --i)
        std::swap(order[i], order[rng.below(i + 1)]);

    const unsigned random_words =
        p.mixedRandomWords < 16 ? p.mixedRandomWords : 16;
    for (unsigned i = 0; i < 16; ++i) {
        if (i < random_words) {
            b.setWord32(order[i], static_cast<u32>(rng.next()) | 1u);
        } else {
            b.setWord32(order[i], static_cast<u32>(rng.below(128)));
        }
    }
    return b;
}

CacheBlock
genRandom(Rng &rng)
{
    CacheBlock b;
    for (unsigned w = 0; w < 8; ++w)
        b.setWord64(w, rng.next());
    return b;
}

} // namespace

CacheBlock
generateBlock(BlockCategory c, const BlockGenParams &params, Rng &rng)
{
    switch (c) {
      case BlockCategory::Zero: return CacheBlock();
      case BlockCategory::SmallInt64: return genSmallInt64(params, rng);
      case BlockCategory::SmallInt32: return genSmallInt32(params, rng);
      case BlockCategory::FpSimilar: return genFpSimilar(params, rng);
      case BlockCategory::Text: return genText(rng);
      case BlockCategory::Pointer: return genPointer(params, rng);
      case BlockCategory::Sparse: return genSparse(params, rng);
      case BlockCategory::MixedWords: return genMixedWords(params, rng);
      case BlockCategory::Random: return genRandom(rng);
      case BlockCategory::kCount: break;
    }
    COP_PANIC("bad block category");
}

} // namespace cop
