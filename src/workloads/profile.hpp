/**
 * @file
 * Benchmark workload profiles — the synthetic stand-ins for the
 * SPEC CPU2006 and PARSEC workloads of the paper's evaluation
 * (Tables 1-2, Figures 1, 4, 8-12). Each profile pairs a block-content
 * mix (what the data looks like, which drives compressibility) with an
 * access model (footprint, L3 reference rate, memory-level parallelism,
 * perfect-L3 IPC — the inputs of the interval performance model).
 *
 * The numbers are calibrated judgments, not measurements of the real
 * benchmarks; DESIGN.md section 1 explains why this substitution
 * preserves the behaviours COP's evaluation depends on.
 */

#ifndef COP_WORKLOADS_PROFILE_HPP
#define COP_WORKLOADS_PROFILE_HPP

#include <array>
#include <string>
#include <vector>

#include "workloads/block_gen.hpp"

namespace cop {

/** Benchmark suite tags (Table 2 groups results by suite). */
enum class Suite : u8 { SpecInt, SpecFp, Parsec };

const char *suiteName(Suite s);

/** Weights over block categories; normalised by the registry. */
struct BlockMix
{
    std::array<double, kBlockCategories> weight{};

    double &
    operator[](BlockCategory c)
    {
        return weight[static_cast<unsigned>(c)];
    }

    double
    of(BlockCategory c) const
    {
        return weight[static_cast<unsigned>(c)];
    }
};

/** One benchmark's synthetic model. */
struct WorkloadProfile
{
    std::string name;
    Suite suite = Suite::SpecInt;
    /** In the paper's memory-intensive set (Table 2, Figures 8-12). */
    bool memoryIntensive = false;

    BlockMix mix;
    BlockGenParams gen;

    // --- access model (interval simulation inputs) ---
    /** IPC with a perfect (always-hitting) L3. */
    double perfectIpc = 1.5;
    /** L3 references per kilo-instruction. */
    double l3Apki = 10.0;
    /** Average overlappable misses per epoch (memory-level parallelism). */
    unsigned mlp = 3;
    /** Fraction of L3 references that are writes. */
    double writeFraction = 0.3;
    /** Working-set size in 64-byte blocks. */
    u64 footprintBlocks = 1u << 20;
    /** Fraction of references that stream sequentially. */
    double streamFraction = 0.3;
    /** PARSEC-style shared footprint across cores (vs. rate mode). */
    bool sharedFootprint = false;

    /** Deterministic per-benchmark base seed. */
    u64 seed() const;
};

/** The profile registry. */
class WorkloadRegistry
{
  public:
    /** All known profiles. */
    static const std::vector<WorkloadProfile> &all();

    /** Look up by name; fatal if unknown. */
    static const WorkloadProfile &byName(const std::string &name);

    /** The paper's Table 2 memory-intensive set (20 benchmarks). */
    static std::vector<const WorkloadProfile *> memoryIntensive();

    /** All benchmarks of one suite. */
    static std::vector<const WorkloadProfile *> bySuite(Suite s);

    /** The SPECfp set used in Figure 4. */
    static std::vector<const WorkloadProfile *> specFpFigure4();

    /** The SPECint set used in Figure 1. */
    static std::vector<const WorkloadProfile *> specIntFigure1();
};

} // namespace cop

#endif // COP_WORKLOADS_PROFILE_HPP
