#include "workloads/profile_io.hpp"

#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

namespace cop {

namespace {

std::string
trim(const std::string &s)
{
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

Suite
parseSuite(const std::string &value)
{
    if (value == "specint")
        return Suite::SpecInt;
    if (value == "specfp")
        return Suite::SpecFp;
    if (value == "parsec")
        return Suite::Parsec;
    COP_FATAL("unknown suite: " + value);
}

const char *
suiteKeyword(Suite s)
{
    switch (s) {
      case Suite::SpecInt: return "specint";
      case Suite::SpecFp: return "specfp";
      case Suite::Parsec: return "parsec";
    }
    COP_PANIC("bad suite");
}

BlockCategory
parseCategory(const std::string &value)
{
    for (unsigned c = 0; c < kBlockCategories; ++c) {
        const auto cat = static_cast<BlockCategory>(c);
        if (value == blockCategoryName(cat))
            return cat;
    }
    COP_FATAL("unknown block category: " + value);
}

double
parseDouble(const std::string &key, const std::string &value)
{
    try {
        size_t used = 0;
        const double v = std::stod(value, &used);
        if (used != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        COP_FATAL("bad numeric value for " + key + ": " + value);
    }
}

} // namespace

WorkloadProfile
parseProfile(std::istream &in)
{
    WorkloadProfile p;
    bool have_name = false;
    bool have_mix = false;
    bool shared_set = false;

    std::string line;
    unsigned line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            COP_FATAL("profile line " + std::to_string(line_no) +
                      ": expected key = value");
        }
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));

        if (key == "name") {
            p.name = value;
            have_name = true;
        } else if (key == "suite") {
            p.suite = parseSuite(value);
        } else if (key == "memory_intensive") {
            p.memoryIntensive = parseDouble(key, value) != 0;
        } else if (key.rfind("mix.", 0) == 0) {
            p.mix[parseCategory(key.substr(4))] =
                parseDouble(key, value);
            have_mix = true;
        } else if (key == "perfect_ipc") {
            p.perfectIpc = parseDouble(key, value);
        } else if (key == "l3_apki") {
            p.l3Apki = parseDouble(key, value);
        } else if (key == "mlp") {
            p.mlp = static_cast<unsigned>(parseDouble(key, value));
        } else if (key == "write_fraction") {
            p.writeFraction = parseDouble(key, value);
        } else if (key == "footprint_mb") {
            p.footprintBlocks = static_cast<u64>(
                parseDouble(key, value) * ((1 << 20) / kBlockBytes));
        } else if (key == "stream_fraction") {
            p.streamFraction = parseDouble(key, value);
        } else if (key == "shared_footprint") {
            p.sharedFootprint = parseDouble(key, value) != 0;
            shared_set = true;
        } else if (key == "gen.int_magnitude_bits") {
            p.gen.intMagnitudeBits =
                static_cast<unsigned>(parseDouble(key, value));
        } else if (key == "gen.int_negative_prob") {
            p.gen.intNegativeProb = parseDouble(key, value);
        } else if (key == "gen.fp_negative_prob") {
            p.gen.fpNegativeProb = parseDouble(key, value);
        } else if (key == "gen.fp_exponent_spread") {
            p.gen.fpExponentSpread =
                static_cast<unsigned>(parseDouble(key, value));
        } else if (key == "gen.sparse_runs") {
            p.gen.sparseRuns =
                static_cast<unsigned>(parseDouble(key, value));
        } else if (key == "gen.mixed_random_words") {
            p.gen.mixedRandomWords =
                static_cast<unsigned>(parseDouble(key, value));
        } else if (key == "gen.pointer_low_bits") {
            p.gen.pointerLowBits =
                static_cast<unsigned>(parseDouble(key, value));
        } else {
            COP_FATAL("unknown profile key: " + key);
        }
    }

    if (!have_name)
        COP_FATAL("profile is missing a name");
    if (!have_mix)
        COP_FATAL("profile " + p.name + " defines no mix.* weights");
    if (!shared_set)
        p.sharedFootprint = (p.suite == Suite::Parsec);

    // Normalise the mix like the built-in registry does.
    double total = 0;
    for (const double w : p.mix.weight)
        total += w;
    if (total <= 0)
        COP_FATAL("profile " + p.name + " has non-positive mix total");
    for (double &w : p.mix.weight)
        w /= total;
    if (p.perfectIpc <= 0 || p.l3Apki <= 0 || p.mlp == 0 ||
        p.footprintBlocks == 0) {
        COP_FATAL("profile " + p.name + " has non-positive rate fields");
    }
    return p;
}

WorkloadProfile
loadProfile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        COP_FATAL("cannot open profile file: " + path);
    return parseProfile(in);
}

void
writeProfile(const WorkloadProfile &p, std::ostream &out)
{
    out << "name = " << p.name << "\n";
    out << "suite = " << suiteKeyword(p.suite) << "\n";
    out << "memory_intensive = " << (p.memoryIntensive ? 1 : 0) << "\n";
    for (unsigned c = 0; c < kBlockCategories; ++c) {
        if (p.mix.weight[c] > 0) {
            out << "mix."
                << blockCategoryName(static_cast<BlockCategory>(c))
                << " = " << p.mix.weight[c] << "\n";
        }
    }
    out << "perfect_ipc = " << p.perfectIpc << "\n";
    out << "l3_apki = " << p.l3Apki << "\n";
    out << "mlp = " << p.mlp << "\n";
    out << "write_fraction = " << p.writeFraction << "\n";
    out << "footprint_mb = "
        << p.footprintBlocks / ((1 << 20) / kBlockBytes) << "\n";
    out << "stream_fraction = " << p.streamFraction << "\n";
    out << "shared_footprint = " << (p.sharedFootprint ? 1 : 0) << "\n";
    out << "gen.int_magnitude_bits = " << p.gen.intMagnitudeBits << "\n";
    out << "gen.int_negative_prob = " << p.gen.intNegativeProb << "\n";
    out << "gen.fp_negative_prob = " << p.gen.fpNegativeProb << "\n";
    out << "gen.fp_exponent_spread = " << p.gen.fpExponentSpread << "\n";
    out << "gen.sparse_runs = " << p.gen.sparseRuns << "\n";
    out << "gen.mixed_random_words = " << p.gen.mixedRandomWords << "\n";
    out << "gen.pointer_low_bits = " << p.gen.pointerLowBits << "\n";
}

} // namespace cop
