/**
 * @file
 * Synthetic 64-byte block content generators. These stand in for the
 * data contents of SPEC2006/PARSEC cache blocks that the paper captured
 * with Pin (Section 4); each generator produces the bit-level structure
 * one data category exhibits, so the compression and alias machinery
 * sees realistic inputs. DESIGN.md section 1 documents the substitution.
 */

#ifndef COP_WORKLOADS_BLOCK_GEN_HPP
#define COP_WORKLOADS_BLOCK_GEN_HPP

#include "common/cache_block.hpp"
#include "common/rng.hpp"

namespace cop {

/** Data categories a block can belong to. */
enum class BlockCategory : u8 {
    Zero = 0,      ///< Untouched/zeroed memory.
    SmallInt64,    ///< 8 sign-extended 64-bit values, mixed signs.
    SmallInt32,    ///< 16 sign-extended 32-bit values.
    FpSimilar,     ///< Doubles with clustered exponents, mixed signs.
    Text,          ///< ASCII characters.
    Pointer,       ///< Heap pointers sharing high bits.
    Sparse,        ///< Random bytes with embedded zero runs.
    MixedWords,    ///< Mostly random 32-bit words, a few small values:
                   ///< compressible only by a small amount (Figure 1's
                   ///< low-target-ratio population).
    Random,        ///< Uniform random (incompressible).
    kCount,
};

/** Number of categories. */
inline constexpr unsigned kBlockCategories =
    static_cast<unsigned>(BlockCategory::kCount);

/** Human-readable category name. */
const char *blockCategoryName(BlockCategory c);

/** Knobs shaping the generators, set per benchmark profile. */
struct BlockGenParams
{
    /** Max magnitude (power of two) of small-int values. */
    unsigned intMagnitudeBits = 16;
    /** Probability a small-int value is negative. */
    double intNegativeProb = 0.3;
    /** Exponent spread within an FpSimilar block (0 = identical). */
    unsigned fpExponentSpread = 0;
    /** Probability an FP value is negative (drives Figure 4's shift). */
    double fpNegativeProb = 0.4;
    /** Zero-run count in a Sparse block. */
    unsigned sparseRuns = 4;
    /** Random high bits of the shared pointer base (entropy below). */
    unsigned pointerLowBits = 24;
    /** Random (incompressible) 32-bit words in a MixedWords block. */
    unsigned mixedRandomWords = 12;
};

/**
 * Generate the content of category @p c using @p rng. Deterministic for
 * a given RNG state, so block contents are a pure function of
 * (profile seed, address, version).
 */
CacheBlock generateBlock(BlockCategory c, const BlockGenParams &params,
                         Rng &rng);

} // namespace cop

#endif // COP_WORKLOADS_BLOCK_GEN_HPP
