/**
 * @file
 * Textual workload-profile definitions. The built-in registry covers
 * the paper's benchmarks; downstream users bring their own workloads
 * by describing them in a small key = value format instead of
 * recompiling:
 *
 *   name = mydb
 *   suite = specint          # specint | specfp | parsec
 *   memory_intensive = 1
 *   mix.pointer = 0.4        # block-category weights (normalised)
 *   mix.int32 = 0.3
 *   mix.random = 0.3
 *   perfect_ipc = 1.2
 *   l3_apki = 18
 *   mlp = 4
 *   write_fraction = 0.3
 *   footprint_mb = 192
 *   stream_fraction = 0.2
 *   shared_footprint = 0
 *   gen.int_magnitude_bits = 16
 *   gen.int_negative_prob = 0.3
 *   gen.fp_negative_prob = 0.4
 *   gen.fp_exponent_spread = 8
 *   gen.sparse_runs = 4
 *   gen.mixed_random_words = 12
 *
 * '#' starts a comment; unknown keys are fatal (catching typos beats
 * silently ignoring them).
 */

#ifndef COP_WORKLOADS_PROFILE_IO_HPP
#define COP_WORKLOADS_PROFILE_IO_HPP

#include <iosfwd>
#include <string>

#include "workloads/profile.hpp"

namespace cop {

/** Parse one profile from a stream; fatal on malformed input. */
WorkloadProfile parseProfile(std::istream &in);

/** Parse one profile from a file path. */
WorkloadProfile loadProfile(const std::string &path);

/** Serialise a profile in the same format (round-trippable). */
void writeProfile(const WorkloadProfile &profile, std::ostream &out);

} // namespace cop

#endif // COP_WORKLOADS_PROFILE_IO_HPP
