/**
 * @file
 * Trace synthesis: turns a WorkloadProfile into the epoch-structured L3
 * reference stream the interval performance model consumes (the paper's
 * Section 4 methodology: "references were divided into epochs, each
 * containing independent (overlappable) requests"), plus the functional
 * block-content pool that stands in for the Pin-captured data contents.
 */

#ifndef COP_WORKLOADS_TRACE_GEN_HPP
#define COP_WORKLOADS_TRACE_GEN_HPP

#include <functional>
#include <memory>
#include <vector>

#include "common/flat_map.hpp"
#include "common/plru.hpp"
#include "workloads/profile.hpp"

namespace cop {

/**
 * Default blockFor content-cache slots per pool (~1.3 MB). Plenty for
 * the hot working set the trace generator clusters on (1/16th of the
 * footprint); SystemConfig::contentCacheEntries overrides.
 */
inline constexpr unsigned kDefaultContentCacheEntries = 1u << 14;

/**
 * Warm functional-memory content, precomputed by shard workers for the
 * thread-parallel simulation core (SystemConfig::simThreads > 1).
 * 4-way set-associative on the block index under a tree pseudo-LRU
 * (common/plru.hpp — direct mapping was conflict-prone on big
 * footprints), keyed on the full (addr, version) pair — content is a
 * pure function of (profile, addr, version), so a warm hit substitutes
 * an identical block for the RNG regeneration a pool miss would
 * otherwise run. A version bump reuses the address's way, so one block
 * never occupies two ways. Written only by the coordinator thread at
 * deterministic bundle-install points; the telemetry counters stay out
 * of the results JSON / StatsRegistry (see core/warm_codec.hpp for the
 * byte-identity argument).
 */
class WarmContentStore
{
  public:
    static constexpr unsigned kWays = 4;

    /** @param entries total capacity; sets = entries / kWays (pow2). */
    explicit WarmContentStore(unsigned entries)
    {
        unsigned sets = 1;
        while (sets * kWays < entries)
            sets <<= 1;
        sets_.resize(sets);
        mask_ = sets - 1;
    }

    const CacheBlock *
    lookup(Addr addr, u32 version) const
    {
        ++lookups_;
        const Set &set = sets_[(addr / kBlockBytes) & mask_];
        for (unsigned w = 0; w < kWays; ++w) {
            const Entry &e = set.ways[w];
            if (e.valid && e.addr == addr && e.version == version) {
                ++hits_;
                set.plru.touch(w);
                return &e.block;
            }
        }
        return nullptr;
    }

    void
    install(Addr addr, u32 version, const CacheBlock &block)
    {
        Set &set = sets_[(addr / kBlockBytes) & mask_];
        unsigned way = kWays;
        for (unsigned w = 0; w < kWays && way == kWays; ++w)
            if (set.ways[w].valid && set.ways[w].addr == addr)
                way = w; // new version of a resident block: same way
        for (unsigned w = 0; w < kWays && way == kWays; ++w)
            if (!set.ways[w].valid)
                way = w;
        if (way == kWays) {
            way = set.plru.victim();
            ++conflictEvictions_;
        }
        Entry &e = set.ways[way];
        e.addr = addr;
        e.version = version;
        e.valid = true;
        e.block = block;
        set.plru.touch(way);
        ++installs_;
    }

    u64 lookups() const { return lookups_; }
    u64 hits() const { return hits_; }
    u64 installs() const { return installs_; }
    /** Installs that displaced a valid entry of a different address. */
    u64 conflictEvictions() const { return conflictEvictions_; }

  private:
    struct Entry
    {
        Addr addr = 0;
        u32 version = 0;
        bool valid = false;
        CacheBlock block;
    };

    struct Set
    {
        Entry ways[kWays];
        /** Advanced on hits too, so mutable like the counters. */
        mutable Plru4 plru;
    };

    std::vector<Set> sets_;
    u64 mask_ = 0;
    /** Telemetry only (lookup is logically const). */
    mutable u64 lookups_ = 0;
    mutable u64 hits_ = 0;
    u64 installs_ = 0;
    u64 conflictEvictions_ = 0;
};

/**
 * Deterministic functional memory: the content of every block is a pure
 * function of (profile, address, version); stores bump the version.
 * The category of an address never changes — data structures keep their
 * type — so compressibility is stationary per benchmark, as in reality.
 *
 * blockFor is memoised through a direct-mapped cache keyed on
 * (addr, version): a repeated call for an unchanged block is a copy,
 * not a regeneration through the RNG. Because content is a pure
 * function of the key, the cache cannot change any result — only the
 * hit/miss counters observe it (see DESIGN.md "functional-memory
 * purity"). 0 entries disables caching but keeps the counters.
 */
class BlockContentPool
{
  public:
    explicit BlockContentPool(
        const WorkloadProfile &profile, u64 seed_salt = 0,
        unsigned cache_entries = kDefaultContentCacheEntries);

    /** Stationary data category of an address. */
    BlockCategory categoryOf(Addr block_addr) const;

    /**
     * Category for one uniform draw in [0,1): the CDF walk shared by
     * categoryOf (hashed-address draw) and sample (RNG draw).
     */
    BlockCategory categoryFromUniform(double u) const;

    /** Current content of a block. */
    CacheBlock blockFor(Addr block_addr) const
    {
        return blockForRef(block_addr);
    }

    /**
     * Current content of a block, without the copy. The reference is
     * valid until the next blockFor/blockForRef call on this pool (it
     * points into the content cache, or into a scratch slot when
     * caching is disabled).
     */
    const CacheBlock &blockForRef(Addr block_addr) const;

    /** Record a store: the block's content changes deterministically. */
    void bumpVersion(Addr block_addr);

    // --- fast-timing version reconciliation (sim/system.cpp) ----------
    /**
     * Start logging the addresses bumpVersion touches. The fast-timing
     * coordinator drains the log at each quantum barrier to merge the
     * shards' views of a shared footprint; off (the default) the log
     * costs nothing.
     */
    void enableBumpLog() { bumpLogEnabled_ = true; }

    /** Move out (and clear) the bump log; one entry per bumpVersion. */
    std::vector<Addr>
    drainBumpLog()
    {
        std::vector<Addr> out = std::move(bumpLog_);
        bumpLog_.clear();
        return out;
    }

    /** Current version of a block (0 when never written). */
    u32
    versionOf(Addr block_addr) const
    {
        if (versions_.empty())
            return 0;
        const auto it = versions_.find(block_addr);
        return it != versions_.end() ? it->second : 0;
    }

    /**
     * Force a block's version (fast-timing merge only: advance this
     * shard's view to the globally merged count). Does not touch the
     * content cache — the stale cached image, if any, is tolerated by
     * the fast-timing divergence contract and replaced on the next
     * version-keyed miss.
     */
    void setVersion(Addr block_addr, u32 version)
    {
        versions_[block_addr] = version;
    }

    /**
     * Generate the content of @p block_addr at an explicit @p version,
     * bypassing the version map, the content cache and every counter.
     * A pure function of immutable state (profile, seed, CDF) — safe
     * to call concurrently from shard workers on a replica pool.
     */
    CacheBlock generateAt(Addr block_addr, u32 version) const;

    /**
     * Attach a shard-worker warm store (sharded mode only). A content-
     * cache miss copies the warm block instead of regenerating it; the
     * blockForCalls / contentCacheHits counters are untouched.
     */
    void attachWarmStore(const WarmContentStore *warm) { warm_ = warm; }

    const WorkloadProfile &profile() const { return profile_; }

    /**
     * Draw @p n i.i.d. blocks from the profile's mix — the sampling the
     * compressibility experiments (Figures 1, 4, 8, 9) use directly.
     */
    std::vector<CacheBlock> sample(unsigned n, u64 seed) const;

    /** Pre-size the version map for an expected store footprint. */
    void reserveVersions(u64 blocks) { versions_.reserve(blocks); }

    // --- perf observability (pool.* gauges, results JSON) -------------
    /** Total blockFor invocations (hot-path dedup regression metric). */
    u64 blockForCalls() const { return blockForCalls_; }
    /** blockFor calls served from the content cache. */
    u64 contentCacheHits() const { return contentCacheHits_; }
    u64
    contentCacheMisses() const
    {
        return blockForCalls_ - contentCacheHits_;
    }
    /** Version-map load-factor observability. */
    u64 versionMapEntries() const { return versions_.size(); }
    u64 versionMapSlots() const { return versions_.capacity(); }

  private:
    /** One direct-mapped content-cache slot. */
    struct CacheSlot
    {
        Addr addr = 0;
        u32 version = 0;
        bool valid = false;
        CacheBlock block;
    };

    u64 mixHash(Addr block_addr) const;

    const WorkloadProfile &profile_;
    u64 seed_;
    /** Cumulative mix distribution for category sampling. */
    std::array<double, kBlockCategories> cdf_{};
    FlatMap<u32> versions_;
    /**
     * blockFor is logically const; the cache and counters are not.
     * Allocated lazily on the first blockFor call — pools on cores
     * that never miss (or Systems built only to read config) skip the
     * multi-megabyte zero-fill entirely.
     */
    mutable std::vector<CacheSlot> cache_;
    u64 cacheSlots_ = 0;
    u64 cacheMask_ = 0;
    /** blockForRef return storage when the cache is disabled. */
    mutable CacheBlock scratch_;
    mutable u64 blockForCalls_ = 0;
    mutable u64 contentCacheHits_ = 0;
    const WarmContentStore *warm_ = nullptr;
    /** Fast-timing merge support (see enableBumpLog). */
    bool bumpLogEnabled_ = false;
    std::vector<Addr> bumpLog_;
};

/** One L3 reference. */
struct TraceAccess
{
    Addr addr = 0;
    bool isWrite = false;
};

/** One interval-simulation epoch: compute, then overlappable misses. */
struct Epoch
{
    u64 instructions = 0;
    std::vector<TraceAccess> accesses;
};

/**
 * Replay-progress counters an EpochSource may expose (trace-driven
 * sources only; synthetic generators report none). The System exports
 * them as trace.* gauges so agg_stats.py --check can verify that every
 * epoch and access read off disk was replayed.
 */
struct ReplaySourceCounters
{
    u64 epochs = 0;
    u64 accesses = 0;
};

/**
 * One core's epoch stream plus the functional-memory pool backing its
 * address region — what the System consumes, whether the epochs come
 * from the synthetic TraceGenerator or from a captured trace
 * (TraceReplayGenerator in src/trace/). Implementations own a
 * BlockContentPool so the simulator's content/version machinery is
 * identical for both.
 */
class EpochSource
{
  public:
    virtual ~EpochSource() = default;

    EpochSource(const EpochSource &) = delete;
    EpochSource &operator=(const EpochSource &) = delete;

    /**
     * Produce the next epoch. The reference stays valid until the next
     * call on this source (buffers are reused — no per-epoch
     * allocation); copy-construct an Epoch to retain one. A source with
     * a finite stream is fatal on exhaustion — the System sizes
     * epochsPerCore to what the trace holds.
     */
    virtual const Epoch &next() = 0;

    /** Block content pool for this core's address region. */
    virtual BlockContentPool &pool() = 0;
    virtual const BlockContentPool &pool() const = 0;

    /** Replay counters, when this source reads a trace. */
    virtual bool
    replayCounters(ReplaySourceCounters &) const
    {
        return false;
    }

  protected:
    EpochSource() = default;
};

/**
 * Builds one EpochSource per core — SystemConfig::epochSource and the
 * shard workers (which need independent replicas of every core's
 * stream) both call it. @p content_cache_entries is 0 for replicas that
 * only need the pure generateAt path.
 */
using EpochSourceFactory = std::function<std::unique_ptr<EpochSource>(
    unsigned core, unsigned content_cache_entries)>;

/**
 * Pool seed salt for @p core_id under @p profile — the value
 * TraceGenerator bakes into its pool. Exposed so a trace replay can
 * construct a byte-identical functional memory for the same core.
 */
u64 contentPoolSalt(const WorkloadProfile &profile, unsigned core_id);

/**
 * Per-core epoch generator. SPEC benchmarks run in rate mode (each core
 * gets a disjoint copy of the footprint); PARSEC profiles share one
 * footprint across cores.
 */
class TraceGenerator : public EpochSource
{
  public:
    TraceGenerator(const WorkloadProfile &profile, unsigned core_id,
                   u64 seed_salt = 0,
                   unsigned content_cache_entries =
                       kDefaultContentCacheEntries);

    const Epoch &next() override;

    BlockContentPool &pool() override { return pool_; }
    const BlockContentPool &pool() const override { return pool_; }

    /** First byte address of this core's footprint region. */
    Addr regionBase() const { return base_; }

  private:
    Addr pickAddress();

    const WorkloadProfile &profile_;
    Rng rng_;
    Addr base_;
    u64 cursor_ = 0;
    BlockContentPool pool_;
    /** Reused next() buffer — avoids a heap round-trip per epoch. */
    Epoch epoch_;
};

} // namespace cop

#endif // COP_WORKLOADS_TRACE_GEN_HPP
