/**
 * @file
 * Trace synthesis: turns a WorkloadProfile into the epoch-structured L3
 * reference stream the interval performance model consumes (the paper's
 * Section 4 methodology: "references were divided into epochs, each
 * containing independent (overlappable) requests"), plus the functional
 * block-content pool that stands in for the Pin-captured data contents.
 */

#ifndef COP_WORKLOADS_TRACE_GEN_HPP
#define COP_WORKLOADS_TRACE_GEN_HPP

#include <unordered_map>
#include <vector>

#include "workloads/profile.hpp"

namespace cop {

/**
 * Deterministic functional memory: the content of every block is a pure
 * function of (profile, address, version); stores bump the version.
 * The category of an address never changes — data structures keep their
 * type — so compressibility is stationary per benchmark, as in reality.
 */
class BlockContentPool
{
  public:
    explicit BlockContentPool(const WorkloadProfile &profile,
                              u64 seed_salt = 0);

    /** Stationary data category of an address. */
    BlockCategory categoryOf(Addr block_addr) const;

    /** Current content of a block. */
    CacheBlock blockFor(Addr block_addr) const;

    /** Record a store: the block's content changes deterministically. */
    void bumpVersion(Addr block_addr);

    const WorkloadProfile &profile() const { return profile_; }

    /**
     * Draw @p n i.i.d. blocks from the profile's mix — the sampling the
     * compressibility experiments (Figures 1, 4, 8, 9) use directly.
     */
    std::vector<CacheBlock> sample(unsigned n, u64 seed) const;

  private:
    u64 mixHash(Addr block_addr) const;

    const WorkloadProfile &profile_;
    u64 seed_;
    /** Cumulative mix distribution for category sampling. */
    std::array<double, kBlockCategories> cdf_{};
    std::unordered_map<Addr, u32> versions_;
};

/** One L3 reference. */
struct TraceAccess
{
    Addr addr = 0;
    bool isWrite = false;
};

/** One interval-simulation epoch: compute, then overlappable misses. */
struct Epoch
{
    u64 instructions = 0;
    std::vector<TraceAccess> accesses;
};

/**
 * Per-core epoch generator. SPEC benchmarks run in rate mode (each core
 * gets a disjoint copy of the footprint); PARSEC profiles share one
 * footprint across cores.
 */
class TraceGenerator
{
  public:
    TraceGenerator(const WorkloadProfile &profile, unsigned core_id,
                   u64 seed_salt = 0);

    /** Produce the next epoch. */
    Epoch next();

    /** Block content pool for this core's address region. */
    BlockContentPool &pool() { return pool_; }
    const BlockContentPool &pool() const { return pool_; }

    /** First byte address of this core's footprint region. */
    Addr regionBase() const { return base_; }

  private:
    Addr pickAddress();

    const WorkloadProfile &profile_;
    Rng rng_;
    Addr base_;
    u64 cursor_ = 0;
    BlockContentPool pool_;
};

} // namespace cop

#endif // COP_WORKLOADS_TRACE_GEN_HPP
