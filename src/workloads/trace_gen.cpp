#include "workloads/trace_gen.hpp"

#include <algorithm>

namespace cop {

namespace {

/** splitmix64 finaliser — cheap, well-mixed hash. */
u64
mix64(u64 z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Power-of-two content-cache slot count (0 stays 0: counting only). */
u64
cacheSlotsFor(unsigned entries)
{
    if (entries == 0)
        return 0;
    u64 slots = 1;
    while (slots < entries)
        slots <<= 1;
    return slots;
}

} // namespace

BlockContentPool::BlockContentPool(const WorkloadProfile &profile,
                                   u64 seed_salt, unsigned cache_entries)
    : profile_(profile), seed_(profile.seed() ^ seed_salt),
      cacheSlots_(cacheSlotsFor(cache_entries)),
      cacheMask_(cacheSlots_ == 0 ? 0 : cacheSlots_ - 1)
{
    double acc = 0;
    for (unsigned c = 0; c < kBlockCategories; ++c) {
        acc += profile.mix.weight[c];
        cdf_[c] = acc;
    }
}

u64
BlockContentPool::mixHash(Addr block_addr) const
{
    return mix64(seed_ ^ (block_addr / kBlockBytes) * 0x9E3779B185EBCA87ULL);
}

BlockCategory
BlockContentPool::categoryFromUniform(double u) const
{
    for (unsigned c = 0; c < kBlockCategories; ++c) {
        if (u < cdf_[c])
            return static_cast<BlockCategory>(c);
    }
    return BlockCategory::Random;
}

BlockCategory
BlockContentPool::categoryOf(Addr block_addr) const
{
    const double u =
        static_cast<double>(mixHash(block_addr) >> 11) * 0x1.0p-53;
    return categoryFromUniform(u);
}

CacheBlock
BlockContentPool::generateAt(Addr block_addr, u32 version) const
{
    Rng rng(mixHash(block_addr) ^ mix64(version * 0xD6E8FEB86659FD93ULL));
    return generateBlock(categoryOf(block_addr), profile_.gen, rng);
}

const CacheBlock &
BlockContentPool::blockForRef(Addr block_addr) const
{
    ++blockForCalls_;
    u32 version = 0;
    if (!versions_.empty()) {
        if (auto it = versions_.find(block_addr); it != versions_.end())
            version = it->second;
    }

    if (cacheSlots_ == 0) {
        if (warm_ != nullptr) {
            if (const CacheBlock *b = warm_->lookup(block_addr, version)) {
                scratch_ = *b;
                return scratch_;
            }
        }
        scratch_ = generateAt(block_addr, version);
        return scratch_;
    }
    if (cache_.empty())
        cache_.resize(cacheSlots_);

    // Direct-mapped on the block index: the hot working set is a
    // contiguous slice of the footprint, so it maps conflict-free. A
    // version bump leaves the stale entry in place — the full
    // (addr, version) compare rejects it and the regeneration below
    // overwrites the slot, so old versions can never be returned.
    CacheSlot &slot = cache_[(block_addr / kBlockBytes) & cacheMask_];
    if (slot.valid && slot.addr == block_addr &&
        slot.version == version) {
        ++contentCacheHits_;
        return slot.block;
    }
    // Cache miss: a shard-worker warm block (identical by purity)
    // replaces the regeneration when one is staged; either way the
    // slot is filled as if regenerated, so the hit/miss stream — and
    // every counter — is what the serial path produces.
    if (warm_ != nullptr) {
        if (const CacheBlock *b = warm_->lookup(block_addr, version)) {
            slot.block = *b;
        } else {
            slot.block = generateAt(block_addr, version);
        }
    } else {
        slot.block = generateAt(block_addr, version);
    }
    slot.addr = block_addr;
    slot.version = version;
    slot.valid = true;
    return slot.block;
}

void
BlockContentPool::bumpVersion(Addr block_addr)
{
    ++versions_[block_addr];
    if (bumpLogEnabled_)
        bumpLog_.push_back(block_addr);
}

std::vector<CacheBlock>
BlockContentPool::sample(unsigned n, u64 seed) const
{
    Rng rng(seed_ ^ mix64(seed));
    std::vector<CacheBlock> blocks;
    blocks.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        const BlockCategory c = categoryFromUniform(rng.uniform());
        blocks.push_back(generateBlock(c, profile_.gen, rng));
    }
    return blocks;
}

u64
contentPoolSalt(const WorkloadProfile &profile, unsigned core_id)
{
    return profile.sharedFootprint ? 0 : mix64(core_id);
}

TraceGenerator::TraceGenerator(const WorkloadProfile &profile,
                               unsigned core_id, u64 seed_salt,
                               unsigned content_cache_entries)
    : profile_(profile),
      rng_(profile.seed() ^ mix64(core_id + 1) ^ seed_salt),
      base_(profile.sharedFootprint
                ? 0
                : core_id * profile.footprintBlocks * kBlockBytes),
      pool_(profile, contentPoolSalt(profile, core_id),
            content_cache_entries)
{
    cursor_ = rng_.below(profile.footprintBlocks);
}

Addr
TraceGenerator::pickAddress()
{
    if (rng_.chance(profile_.streamFraction)) {
        cursor_ = (cursor_ + 1) % profile_.footprintBlocks;
    } else if (rng_.chance(0.75)) {
        // Non-streaming references cluster on a hot working set
        // (1/16th of the footprint) — the temporal locality that lets
        // cached ECC metadata blocks get reused.
        const u64 hot = std::max<u64>(1, profile_.footprintBlocks / 16);
        cursor_ = rng_.below(hot);
    } else {
        cursor_ = rng_.below(profile_.footprintBlocks);
    }
    return base_ + cursor_ * kBlockBytes;
}

const Epoch &
TraceGenerator::next()
{
    Epoch &epoch = epoch_;
    epoch.accesses.clear();
    // Epoch length: profile.mlp overlappable references per epoch, with
    // the instruction count implied by the L3 reference rate. Jitter of
    // +/- 50% keeps the stream from being perfectly periodic.
    const double mean_instr =
        profile_.mlp / profile_.l3Apki * 1000.0;
    epoch.instructions = static_cast<u64>(
        mean_instr * (0.5 + rng_.uniform()));
    if (epoch.instructions == 0)
        epoch.instructions = 1;

    const unsigned count =
        1 + static_cast<unsigned>(rng_.below(2 * profile_.mlp));
    epoch.accesses.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        epoch.accesses.push_back(
            {pickAddress(), rng_.chance(profile_.writeFraction)});
    }
    return epoch;
}

} // namespace cop
