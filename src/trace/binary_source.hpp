/**
 * @file
 * Binary COPTRC readers: a buffered-stream parser (works on any
 * istream, including pipes and the gzip inflater) and an mmap fast
 * path for seekable regular files. Both accept the v1 (u32 header
 * count) and v2 (u64) formats and validate every declared length
 * against what the stream can actually deliver before allocating —
 * a corrupt epoch header claiming 4 billion accesses dies with a
 * clean "declares N accesses but only M bytes remain", not a 32 GB
 * bad_alloc.
 */

#ifndef COP_TRACE_BINARY_SOURCE_HPP
#define COP_TRACE_BINARY_SOURCE_HPP

#include <iosfwd>
#include <memory>
#include <string>

#include "trace/trace_source.hpp"

namespace cop {

/**
 * Streaming binary reader over any istream. When the stream is
 * seekable its total size is measured once up front and every epoch's
 * declared access count is validated against the bytes that remain;
 * on unseekable streams the reserve is capped (push_back grows past
 * the cap) and truncation still fails loudly at the short read.
 */
class BinaryTraceSource : public TraceSource
{
  public:
    /** Parse the header eagerly; fatal on bad magic / short header. */
    explicit BinaryTraceSource(std::istream &in);

    /** Owning variant (the factory's path-opened streams). */
    explicit BinaryTraceSource(std::unique_ptr<std::istream> in);

    bool next(Epoch &epoch) override;

    u64 declaredEpochs() const override { return declared_; }
    const char *formatName() const override { return "binary"; }

    /** On-disk format version parsed from the magic (1 or 2). */
    unsigned formatVersion() const { return version_; }

  private:
    void readHeader();

    std::unique_ptr<std::istream> owned_;
    std::istream &in_;
    u64 declared_ = 0;
    unsigned version_ = 2;
    /** Total stream bytes when seekable, else 0 (unknown). */
    u64 streamBytes_ = 0;
    bool sizeKnown_ = false;
    /** Bytes consumed so far (header + parsed records). */
    u64 consumed_ = 0;
};

/**
 * mmap fast path: the whole file is mapped read-only and parsed in
 * place with exact bounds checks (madvise(SEQUENTIAL) keeps the page
 * cache streaming, so resident memory stays bounded by the kernel's
 * readahead, not the file size). Construction fails loudly on
 * non-regular files; openTraceSource falls back to the buffered
 * reader instead of calling this blindly.
 */
class MmapTraceSource : public TraceSource
{
  public:
    explicit MmapTraceSource(const std::string &path);
    ~MmapTraceSource() override;

    bool next(Epoch &epoch) override;

    u64 declaredEpochs() const override { return declared_; }
    const char *formatName() const override { return "binary/mmap"; }
    unsigned formatVersion() const { return version_; }

    /** Whether this platform can mmap at all (POSIX only). */
    static bool supported();

  private:
    std::string path_;
    const unsigned char *base_ = nullptr;
    u64 size_ = 0;
    u64 pos_ = 0;
    u64 declared_ = 0;
    unsigned version_ = 2;
};

} // namespace cop

#endif // COP_TRACE_BINARY_SOURCE_HPP
