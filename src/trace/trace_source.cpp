#include "trace/trace_source.hpp"

#include <cstring>
#include <fstream>

#include "trace/binary_source.hpp"
#include "trace/format.hpp"
#include "trace/gzip_source.hpp"
#include "trace/text_source.hpp"

namespace cop {

const char *
traceFormatName(TraceFormat f)
{
    switch (f) {
    case TraceFormat::Auto: return "auto";
    case TraceFormat::Binary: return "bin";
    case TraceFormat::Text: return "text";
    case TraceFormat::Gzip: return "gz";
    }
    COP_PANIC("bad TraceFormat");
}

TraceFormat
parseTraceFormat(const std::string &s)
{
    if (s == "auto")
        return TraceFormat::Auto;
    if (s == "bin" || s == "binary")
        return TraceFormat::Binary;
    if (s == "text" || s == "txt")
        return TraceFormat::Text;
    if (s == "gz" || s == "gzip")
        return TraceFormat::Gzip;
    COP_FATAL("unknown trace format '" + s +
              "' (expected auto|bin|text|gz)");
}

namespace {

std::unique_ptr<std::ifstream>
openFile(const std::string &path)
{
    auto in = std::make_unique<std::ifstream>(path, std::ios::binary);
    if (!*in)
        COP_FATAL("cannot open trace " + path);
    return in;
}

/** Sniff the leading bytes of a fresh stream, then rewind it. */
TraceFormat
sniff(std::istream &in, const std::string &path)
{
    unsigned char head[trace::kMagicBytes] = {};
    in.read(reinterpret_cast<char *>(head), sizeof(head));
    const std::streamsize got = in.gcount();
    in.clear();
    in.seekg(0);
    if (!in)
        COP_FATAL("cannot rewind trace " + path + " after sniffing");
    if (got >= 2 && head[0] == 0x1f && head[1] == 0x8b)
        return TraceFormat::Gzip;
    if (got >= 6 && std::memcmp(head, "COPTRC", 6) == 0)
        return TraceFormat::Binary;
    // Anything else is treated as text; a genuinely alien file dies in
    // the text parser with a line number rather than here with a guess.
    return TraceFormat::Text;
}

} // namespace

std::unique_ptr<TraceSource>
openTraceSource(const std::string &path, TraceFormat format)
{
    auto in = openFile(path);
    if (format == TraceFormat::Auto)
        format = sniff(*in, path);

    switch (format) {
    case TraceFormat::Binary:
        // mmap fast path for regular files; anything it cannot map
        // (FIFOs, /dev/stdin) streams through the buffered reader.
        if (MmapTraceSource::supported()) {
            // The mmap ctor is fatal on non-regular files, so only
            // take it when the stream is seekable to a real end
            // (regular-file behaviour).
            in->seekg(0, std::ios::end);
            const bool seekable = static_cast<bool>(*in);
            in->clear();
            in->seekg(0);
            if (seekable) {
                in.reset(); // release the fd before mapping
                return std::make_unique<MmapTraceSource>(path);
            }
        }
        return std::make_unique<BinaryTraceSource>(std::move(in));
    case TraceFormat::Text:
        return std::make_unique<TextTraceSource>(std::move(in));
    case TraceFormat::Gzip:
        return std::make_unique<GzipTraceSource>(std::move(in));
    case TraceFormat::Auto:
        break;
    }
    COP_PANIC("bad TraceFormat");
}

} // namespace cop
