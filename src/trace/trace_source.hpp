/**
 * @file
 * Streaming trace ingestion (ROADMAP item 3, in the style of the
 * prospero text/binary/gzip readers): a `TraceSource` yields the
 * epoch-structured L3 reference stream one epoch at a time, so a
 * multi-gigabyte trace replays with bounded resident memory — no
 * implementation may ever materialise more than one epoch plus a fixed
 * I/O buffer.
 *
 * Three formats, all interchangeable behind this interface:
 *   binary  the compact COPTRC format (v1 and v2; see trace/format.hpp),
 *           with an mmap fast path for seekable regular files;
 *   text    one `<addr> R|W` access per line with `#epoch <instr>`
 *           markers — greppable, diffable, writable by any tool;
 *   gzip    the binary format behind a bounded-buffer zlib inflater
 *           (compressed traces stream straight from disk).
 *
 * `openTraceSource` sniffs the leading bytes so callers rarely need to
 * name the format. Corruption is always fatal and loud (COP_FATAL with
 * the offending structure named); a clean end-of-stream is the only
 * path that returns false from next().
 */

#ifndef COP_TRACE_TRACE_SOURCE_HPP
#define COP_TRACE_TRACE_SOURCE_HPP

#include <memory>
#include <string>

#include "workloads/trace_gen.hpp"

namespace cop {

/** How a trace file is encoded on disk. */
enum class TraceFormat : u8 {
    Auto,   ///< Sniff the leading bytes (gzip magic / COPTRC / text).
    Binary, ///< COPTRC v1/v2.
    Text,   ///< `#epoch` markers + `<addr> R|W` lines.
    Gzip,   ///< gzip-wrapped COPTRC.
};

const char *traceFormatName(TraceFormat f);

/** Parse a --trace-format value (auto|bin|text|gz); fatal on junk. */
TraceFormat parseTraceFormat(const std::string &s);

/**
 * One streaming epoch source over a trace. Implementations read
 * incrementally: next() parses exactly one epoch and never buffers the
 * remainder of the stream.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    TraceSource(const TraceSource &) = delete;
    TraceSource &operator=(const TraceSource &) = delete;

    /**
     * Parse the next epoch into @p epoch (buffers reused).
     * @return false at a clean end of stream; corruption/truncation is
     * fatal, never a silent short read.
     */
    virtual bool next(Epoch &epoch) = 0;

    /**
     * Epoch count the header declared, when the format carries one
     * (0 = unknown, read to EOF — text traces and pipe-written binary
     * traces).
     */
    virtual u64 declaredEpochs() const { return 0; }

    /** The format this source parses (for reports and errors). */
    virtual const char *formatName() const = 0;

    u64 epochsRead() const { return epochs_; }
    u64 accessesRead() const { return accesses_; }

  protected:
    TraceSource() = default;

    /** Epochs/accesses successfully parsed (kept by implementations). */
    u64 epochs_ = 0;
    u64 accesses_ = 0;
};

/**
 * Open @p path as a streaming trace source. Format Auto sniffs the
 * first bytes; binary sources on seekable regular files take the mmap
 * fast path automatically (falling back to buffered stream reads when
 * mapping fails). Fatal on unreadable files, unknown formats, or — for
 * Gzip — a build without zlib.
 */
std::unique_ptr<TraceSource> openTraceSource(
    const std::string &path, TraceFormat format = TraceFormat::Auto);

} // namespace cop

#endif // COP_TRACE_TRACE_SOURCE_HPP
