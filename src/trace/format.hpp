/**
 * @file
 * The on-disk COP trace format, shared by the writer (sim/trace_io)
 * and every streaming reader (trace/binary_source, trace/mmap path).
 *
 * v2 (current, magic "COPTRC2\0"):
 *   header : magic (8 bytes), u64 epoch count (0 if unknown at write
 *            time -> read until EOF)
 *   epoch  : u64 instructions, u32 access count,
 *            accesses as u64 words: (block address) | 1 if write
 *            (block addresses are 64-byte aligned, so bit 0 is free).
 *
 * v1 (magic "COPTRC1\0") differs only in the header count width (u32);
 * readers keep accepting it, writers emit v2 only.
 *
 * All scalars are pinned to little-endian byte order on disk — the
 * helpers below serialise byte-by-byte instead of memcpy'ing host
 * representations, so traces captured on one machine replay bit-exactly
 * on any other (the pre-fix code wrote host endianness, which made a
 * big-endian capture unreadable everywhere else).
 */

#ifndef COP_TRACE_FORMAT_HPP
#define COP_TRACE_FORMAT_HPP

#include <cstddef>
#include <istream>
#include <ostream>

#include "common/types.hpp"

namespace cop::trace {

inline constexpr char kMagicV1[8] = {'C', 'O', 'P', 'T', 'R', 'C',
                                     '1', '\0'};
inline constexpr char kMagicV2[8] = {'C', 'O', 'P', 'T', 'R', 'C',
                                     '2', '\0'};
inline constexpr size_t kMagicBytes = 8;

/** Per-epoch record framing: u64 instructions + u32 access count. */
inline constexpr size_t kEpochHeaderBytes = 12;
inline constexpr size_t kAccessBytes = 8;

/** Assemble a little-endian scalar from @p sizeof(T) raw bytes. */
template <typename T>
inline T
loadLe(const unsigned char *bytes)
{
    T value = 0;
    for (size_t i = 0; i < sizeof(T); ++i)
        value |= static_cast<T>(bytes[i]) << (8 * i);
    return value;
}

/** Serialise @p value into @p bytes in little-endian order. */
template <typename T>
inline void
storeLe(unsigned char *bytes, T value)
{
    for (size_t i = 0; i < sizeof(T); ++i)
        bytes[i] = static_cast<unsigned char>(value >> (8 * i));
}

/** Write one little-endian scalar to a stream. */
template <typename T>
inline void
writeScalarLe(std::ostream &out, T value)
{
    unsigned char bytes[sizeof(T)];
    storeLe(bytes, value);
    out.write(reinterpret_cast<const char *>(bytes), sizeof(bytes));
}

/** Read one little-endian scalar; false on short read. */
template <typename T>
inline bool
readScalarLe(std::istream &in, T &value)
{
    unsigned char bytes[sizeof(T)];
    in.read(reinterpret_cast<char *>(bytes), sizeof(bytes));
    if (in.gcount() != static_cast<std::streamsize>(sizeof(bytes)))
        return false;
    value = loadLe<T>(bytes);
    return true;
}

} // namespace cop::trace

#endif // COP_TRACE_FORMAT_HPP
