/**
 * @file
 * Trace-driven epoch source: TraceReplayGenerator feeds a captured
 * trace into the System where the synthetic TraceGenerator would run,
 * with the same functional-memory pool wiring (contentPoolSalt keeps
 * the pool byte-identical to the capture run's pool for the same core
 * and profile). DESIGN.md §9 states the determinism contract: a replay
 * of `captureTrace(profile, core, N)` under the profile that captured
 * it produces byte-identical results JSON to the synthetic run, serial
 * or sharded.
 */

#ifndef COP_TRACE_REPLAY_HPP
#define COP_TRACE_REPLAY_HPP

#include <string>
#include <vector>

#include "trace/trace_source.hpp"

namespace cop {

/**
 * One core's epoch stream read from a trace. Exhaustion is fatal — the
 * caller sizes epochsPerCore to the trace (see replayEpochCount).
 */
class TraceReplayGenerator : public EpochSource
{
  public:
    TraceReplayGenerator(const WorkloadProfile &profile,
                         unsigned core_id,
                         std::unique_ptr<TraceSource> source,
                         unsigned content_cache_entries =
                             kDefaultContentCacheEntries);

    const Epoch &next() override;

    BlockContentPool &pool() override { return pool_; }
    const BlockContentPool &pool() const override { return pool_; }

    bool replayCounters(ReplaySourceCounters &out) const override;

    const TraceSource &source() const { return *src_; }

  private:
    std::unique_ptr<TraceSource> src_;
    BlockContentPool pool_;
    /** Reused next() buffer, mirroring TraceGenerator. */
    Epoch epoch_;
};

/**
 * EpochSourceFactory over one trace file per core (core c replays
 * paths[c]). Every factory call opens a fresh source, so the System
 * core and any shard-worker replicas each stream the file
 * independently. @p profile is captured by reference — the caller
 * keeps it alive for the System's lifetime, as usual.
 */
EpochSourceFactory
makeTraceReplayFactory(const WorkloadProfile &profile,
                       std::vector<std::string> paths,
                       TraceFormat format = TraceFormat::Auto);

/**
 * Epochs available in @p path: the header's declared count when it
 * carries one, else a streaming scan (bounded memory, full read).
 */
u64 replayEpochCount(const std::string &path,
                     TraceFormat format = TraceFormat::Auto);

} // namespace cop

#endif // COP_TRACE_REPLAY_HPP
