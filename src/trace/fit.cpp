#include "trace/fit.hpp"

#include <algorithm>
#include <cmath>

namespace cop {

WorkloadProfile
fitProfileFromTrace(TraceSource &src, const std::string &name,
                    const TraceFitOptions &opts, TraceFitReport *report)
{
    TraceFitReport r;
    Addr minAddr = ~0ULL;
    Addr maxAddr = 0;
    u64 writes = 0;
    u64 seqPairs = 0;
    u64 transitions = 0;

    Epoch epoch;
    while ((opts.maxEpochs == 0 || r.epochsScanned < opts.maxEpochs) &&
           src.next(epoch)) {
        ++r.epochsScanned;
        r.instructionsScanned += epoch.instructions;
        Addr prev = ~0ULL; // sequentiality never spans epochs
        for (const TraceAccess &access : epoch.accesses) {
            ++r.accessesScanned;
            writes += access.isWrite;
            minAddr = std::min(minAddr, access.addr);
            maxAddr = std::max(maxAddr, access.addr);
            if (prev != ~0ULL) {
                ++transitions;
                if (access.addr == prev + kBlockBytes)
                    ++seqPairs;
            }
            prev = access.addr;
        }
    }
    if (r.epochsScanned == 0)
        COP_FATAL("cannot fit a profile to an empty trace");
    if (r.accessesScanned == 0)
        COP_FATAL("cannot fit a profile to a trace with no accesses");

    r.spanBlocks = (maxAddr - minAddr) / kBlockBytes + 1;
    r.apki = r.instructionsScanned
                 ? 1000.0 * static_cast<double>(r.accessesScanned) /
                       static_cast<double>(r.instructionsScanned)
                 : 0.0;
    r.writeFraction = static_cast<double>(writes) /
                      static_cast<double>(r.accessesScanned);
    r.meanAccessesPerEpoch = static_cast<double>(r.accessesScanned) /
                             static_cast<double>(r.epochsScanned);
    r.streamFraction =
        transitions
            ? static_cast<double>(seqPairs) /
                  static_cast<double>(transitions)
            : 0.0;

    WorkloadProfile profile;
    if (opts.contentTemplate != nullptr) {
        profile = *opts.contentTemplate;
    } else {
        // Neutral content stand-in: a uniform category mix. Content is
        // not recoverable from an address trace, so the fit makes the
        // substitution explicit rather than guessing a benchmark.
        for (unsigned c = 0; c < kBlockCategories; ++c)
            profile.mix.weight[c] = 1.0 / kBlockCategories;
    }
    profile.name = name;
    profile.memoryIntensive = false;
    profile.sharedFootprint = false;
    profile.footprintBlocks = std::max<u64>(1, r.spanBlocks);
    profile.l3Apki = r.apki > 0 ? r.apki : profile.l3Apki;
    profile.writeFraction = r.writeFraction;
    profile.streamFraction = r.streamFraction;
    // The synthetic generator draws 1 + below(2*mlp) accesses per
    // epoch (mean mlp + 0.5); invert that for the MLP proxy.
    profile.mlp = static_cast<unsigned>(std::max<long>(
        1, std::lround(r.meanAccessesPerEpoch - 0.5)));

    if (report != nullptr)
        *report = r;
    return profile;
}

} // namespace cop
