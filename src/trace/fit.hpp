/**
 * @file
 * Profile fitting: estimate a WorkloadProfile's access-model knobs
 * from a bounded prefix of a captured trace, so a user-supplied trace
 * can be compared against the synthetic suite on equal terms — "what
 * synthetic benchmark does this trace behave like?".
 *
 * Only the access model is measurable from an address trace (footprint,
 * APKI, write fraction, MLP, sequentiality); block *content* is not in
 * the trace, so the mix / generator parameters / perfect-L3 IPC come
 * from a content template (a named synthetic profile, default a
 * balanced mix). A fitted profile is therefore a comparison twin — it
 * drives the same simulator honestly — but it is NOT the byte-identity
 * replay path: that uses the original capture profile (DESIGN.md §9).
 */

#ifndef COP_TRACE_FIT_HPP
#define COP_TRACE_FIT_HPP

#include <string>

#include "trace/trace_source.hpp"

namespace cop {

struct TraceFitOptions
{
    /**
     * Epochs of the trace prefix the estimators run over. Bounded by
     * default so fitting a multi-gigabyte trace stays cheap; 0 means
     * the whole trace.
     */
    u64 maxEpochs = 10000;
    /**
     * Profile supplying the unmeasurable content knobs (mix, generator
     * params, perfectIpc, suite). Null uses a neutral balanced mix.
     */
    const WorkloadProfile *contentTemplate = nullptr;
};

/** What fitProfileFromTrace measured (reporting / tests). */
struct TraceFitReport
{
    u64 epochsScanned = 0;
    u64 accessesScanned = 0;
    u64 instructionsScanned = 0;
    u64 spanBlocks = 0;  ///< Address span, in blocks (footprint bound).
    double apki = 0;
    double writeFraction = 0;
    double meanAccessesPerEpoch = 0;
    double streamFraction = 0;
};

/**
 * Estimate a profile named @p name from a prefix of @p src. The
 * returned profile plugs straight into System / makeTraceReplayFactory
 * for single-trace (cores=1) replay — the one-core path uses a single
 * shared pool, so the span-based footprint estimate can never fault
 * poolFor's multi-core region partitioning.
 * @p report (optional) receives the raw measurements.
 */
WorkloadProfile
fitProfileFromTrace(TraceSource &src, const std::string &name,
                    const TraceFitOptions &opts = {},
                    TraceFitReport *report = nullptr);

} // namespace cop

#endif // COP_TRACE_FIT_HPP
