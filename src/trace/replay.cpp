#include "trace/replay.hpp"

namespace cop {

TraceReplayGenerator::TraceReplayGenerator(
    const WorkloadProfile &profile, unsigned core_id,
    std::unique_ptr<TraceSource> source,
    unsigned content_cache_entries)
    : src_(std::move(source)),
      pool_(profile, contentPoolSalt(profile, core_id),
            content_cache_entries)
{
    COP_ASSERT(src_ != nullptr);
}

const Epoch &
TraceReplayGenerator::next()
{
    if (!src_->next(epoch_)) {
        COP_FATAL("trace exhausted after " +
                  std::to_string(src_->epochsRead()) +
                  " epochs but the simulation asked for more (size "
                  "epochsPerCore to the trace, or re-capture longer)");
    }
    return epoch_;
}

bool
TraceReplayGenerator::replayCounters(ReplaySourceCounters &out) const
{
    out.epochs = src_->epochsRead();
    out.accesses = src_->accessesRead();
    return true;
}

EpochSourceFactory
makeTraceReplayFactory(const WorkloadProfile &profile,
                       std::vector<std::string> paths,
                       TraceFormat format)
{
    COP_ASSERT(!paths.empty());
    return [&profile, paths = std::move(paths),
            format](unsigned core,
                    unsigned cache_entries) -> std::unique_ptr<EpochSource> {
        if (core >= paths.size()) {
            COP_FATAL("replay has " + std::to_string(paths.size()) +
                      " trace file(s) but the system asked for core " +
                      std::to_string(core) +
                      " (pass one --trace-in per core)");
        }
        return std::make_unique<TraceReplayGenerator>(
            profile, core, openTraceSource(paths[core], format),
            cache_entries);
    };
}

u64
replayEpochCount(const std::string &path, TraceFormat format)
{
    auto src = openTraceSource(path, format);
    if (src->declaredEpochs() != 0)
        return src->declaredEpochs();
    // No declared count (text traces, pipe-written binaries): scan.
    // One epoch buffered at a time — bounded memory even for huge
    // traces, at the cost of a second pass over the file.
    Epoch epoch;
    while (src->next(epoch)) {
    }
    return src->epochsRead();
}

} // namespace cop
