#include "trace/binary_source.hpp"

#include <algorithm>
#include <cstring>
#include <istream>

#if defined(__unix__) || defined(__APPLE__)
#define COP_TRACE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define COP_TRACE_HAVE_MMAP 0
#endif

#include "trace/format.hpp"

namespace cop {

namespace {

/**
 * Reserve cap when the stream size is unknown (pipes, gzip): big
 * enough that honest epochs never reallocate, small enough that a
 * corrupt 0xFFFFFFFF count cannot demand a ~32 GB allocation before
 * the truncated-access read catches it.
 */
constexpr u32 kUnboundedReserveCap = 4096;

[[noreturn]] void
truncatedAccesses(u64 declared, u64 deliverable)
{
    COP_FATAL("trace epoch declares " + std::to_string(declared) +
              " accesses but only " + std::to_string(deliverable) +
              " more fit in the remaining stream bytes");
}

} // namespace

BinaryTraceSource::BinaryTraceSource(std::istream &in) : in_(in)
{
    readHeader();
}

BinaryTraceSource::BinaryTraceSource(std::unique_ptr<std::istream> in)
    : owned_(std::move(in)), in_(*owned_)
{
    readHeader();
}

void
BinaryTraceSource::readHeader()
{
    // Measure the stream once so per-epoch access counts can be
    // validated before any allocation. tellg/seekg fail harmlessly on
    // pipes — the reader then runs in capped-reserve mode.
    const std::streampos here = in_.tellg();
    if (here != std::streampos(-1)) {
        in_.seekg(0, std::ios::end);
        const std::streampos end = in_.tellg();
        if (end != std::streampos(-1) && end >= here) {
            streamBytes_ =
                static_cast<u64>(end) - static_cast<u64>(here);
            sizeKnown_ = true;
        }
        in_.seekg(here);
    }
    in_.clear(); // failed seeks on pipes must not poison the stream

    char magic[trace::kMagicBytes];
    in_.read(magic, sizeof(magic));
    if (in_.gcount() != sizeof(magic)) {
        COP_FATAL("not a COP trace stream (short magic)");
    } else if (std::memcmp(magic, trace::kMagicV2, sizeof(magic)) == 0) {
        version_ = 2;
        if (!trace::readScalarLe(in_, declared_))
            COP_FATAL("truncated trace header");
        consumed_ = trace::kMagicBytes + sizeof(u64);
    } else if (std::memcmp(magic, trace::kMagicV1, sizeof(magic)) == 0) {
        version_ = 1;
        u32 declared32 = 0;
        if (!trace::readScalarLe(in_, declared32))
            COP_FATAL("truncated trace header");
        declared_ = declared32;
        consumed_ = trace::kMagicBytes + sizeof(u32);
    } else {
        COP_FATAL("not a COP trace stream (bad magic)");
    }
}

bool
BinaryTraceSource::next(Epoch &epoch)
{
    u64 instructions;
    if (!trace::readScalarLe(in_, instructions)) {
        // End of stream at an epoch boundary: only legitimate when the
        // header declared no count or exactly this many epochs.
        if (declared_ != 0 && epochs_ != declared_) {
            COP_FATAL("trace declares " + std::to_string(declared_) +
                      " epochs but the stream ended after " +
                      std::to_string(epochs_));
        }
        return false;
    }
    u32 count;
    if (!trace::readScalarLe(in_, count))
        COP_FATAL("truncated trace epoch header");
    consumed_ += trace::kEpochHeaderBytes;

    epoch.instructions = instructions;
    epoch.accesses.clear();
    if (sizeKnown_) {
        // The whole point of the up-front measurement: an untrusted
        // count is checked against bytes that actually exist before
        // the reserve, so corruption cannot drive the allocator.
        const u64 remaining = streamBytes_ - consumed_;
        if (static_cast<u64>(count) * trace::kAccessBytes > remaining)
            truncatedAccesses(count, remaining / trace::kAccessBytes);
        epoch.accesses.reserve(count);
    } else {
        epoch.accesses.reserve(std::min(count, kUnboundedReserveCap));
    }
    for (u32 i = 0; i < count; ++i) {
        u64 word;
        if (!trace::readScalarLe(in_, word))
            COP_FATAL("truncated trace access record");
        epoch.accesses.push_back(
            {word & ~static_cast<u64>(1), (word & 1) != 0});
    }
    consumed_ += static_cast<u64>(count) * trace::kAccessBytes;
    ++epochs_;
    accesses_ += count;
    return true;
}

// ---------------------------------------------------------------- mmap

bool
MmapTraceSource::supported()
{
    return COP_TRACE_HAVE_MMAP != 0;
}

#if COP_TRACE_HAVE_MMAP

MmapTraceSource::MmapTraceSource(const std::string &path) : path_(path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        COP_FATAL("cannot open trace " + path);
    struct stat st;
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        ::close(fd);
        COP_FATAL("cannot mmap trace " + path + " (not a regular file)");
    }
    size_ = static_cast<u64>(st.st_size);
    if (size_ > 0) {
        void *map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
        if (map == MAP_FAILED) {
            ::close(fd);
            COP_FATAL("cannot mmap trace " + path);
        }
        // Sequential readahead + drop-behind: the mapping streams
        // through the page cache instead of accumulating residency.
        ::madvise(map, size_, MADV_SEQUENTIAL);
        base_ = static_cast<const unsigned char *>(map);
    }
    ::close(fd); // the mapping keeps its own reference

    if (size_ < trace::kMagicBytes + sizeof(u32))
        COP_FATAL("not a COP trace stream (short magic): " + path);
    if (std::memcmp(base_, trace::kMagicV2, trace::kMagicBytes) == 0) {
        version_ = 2;
        if (size_ < trace::kMagicBytes + sizeof(u64))
            COP_FATAL("truncated trace header: " + path);
        declared_ = trace::loadLe<u64>(base_ + trace::kMagicBytes);
        pos_ = trace::kMagicBytes + sizeof(u64);
    } else if (std::memcmp(base_, trace::kMagicV1,
                           trace::kMagicBytes) == 0) {
        version_ = 1;
        declared_ = trace::loadLe<u32>(base_ + trace::kMagicBytes);
        pos_ = trace::kMagicBytes + sizeof(u32);
    } else {
        COP_FATAL("not a COP trace stream (bad magic): " + path);
    }
}

MmapTraceSource::~MmapTraceSource()
{
    if (base_ != nullptr)
        ::munmap(const_cast<unsigned char *>(base_), size_);
}

bool
MmapTraceSource::next(Epoch &epoch)
{
    if (pos_ == size_) {
        if (declared_ != 0 && epochs_ != declared_) {
            COP_FATAL("trace declares " + std::to_string(declared_) +
                      " epochs but the stream ended after " +
                      std::to_string(epochs_));
        }
        return false;
    }
    if (size_ - pos_ < trace::kEpochHeaderBytes)
        COP_FATAL("truncated trace epoch header: " + path_);
    epoch.instructions = trace::loadLe<u64>(base_ + pos_);
    const u32 count = trace::loadLe<u32>(base_ + pos_ + sizeof(u64));
    pos_ += trace::kEpochHeaderBytes;

    const u64 remaining = size_ - pos_;
    if (static_cast<u64>(count) * trace::kAccessBytes > remaining) {
        COP_FATAL("trace epoch declares " + std::to_string(count) +
                  " accesses but only " +
                  std::to_string(remaining / trace::kAccessBytes) +
                  " more fit in the remaining stream bytes");
    }
    epoch.accesses.clear();
    epoch.accesses.reserve(count);
    for (u32 i = 0; i < count; ++i) {
        const u64 word = trace::loadLe<u64>(base_ + pos_);
        pos_ += trace::kAccessBytes;
        epoch.accesses.push_back(
            {word & ~static_cast<u64>(1), (word & 1) != 0});
    }
    ++epochs_;
    accesses_ += count;
    return true;
}

#else // !COP_TRACE_HAVE_MMAP

MmapTraceSource::MmapTraceSource(const std::string &path) : path_(path)
{
    COP_FATAL("mmap trace ingestion is not supported on this platform; "
              "use the buffered binary reader for " + path);
}

MmapTraceSource::~MmapTraceSource() = default;

bool
MmapTraceSource::next(Epoch &)
{
    COP_FATAL("mmap trace ingestion is not supported on this platform");
}

#endif // COP_TRACE_HAVE_MMAP

} // namespace cop
