/**
 * @file
 * gzip-wrapped binary traces: a bounded-buffer zlib inflater exposed
 * as a std::streambuf, so GzipTraceSource is just BinaryTraceSource
 * reading through it — one code path parses both .coptrc and
 * .coptrc.gz, and a multi-gigabyte compressed trace streams with two
 * fixed 256 KiB buffers. The matching deflater backs `trace_tool
 * convert --format gz` and gzip capture.
 *
 * Builds without zlib keep the symbols but every constructor dies with
 * COP_FATAL("built without zlib…") — callers never silently read
 * garbage from a .gz file.
 */

#ifndef COP_TRACE_GZIP_SOURCE_HPP
#define COP_TRACE_GZIP_SOURCE_HPP

#include <iosfwd>
#include <memory>
#include <streambuf>
#include <vector>

#include "trace/binary_source.hpp"
#include "trace/trace_source.hpp"

namespace cop {

/** Whether this build can inflate/deflate gzip (CMake found zlib). */
bool gzipSupported();

/**
 * Read-side streambuf: pulls compressed bytes from an underlying
 * istream in fixed-size chunks and inflates into a fixed-size get
 * area. Corrupt streams and trailing garbage are fatal.
 */
class GzipInflateBuf : public std::streambuf
{
  public:
    explicit GzipInflateBuf(std::unique_ptr<std::istream> in);
    ~GzipInflateBuf() override;

    GzipInflateBuf(const GzipInflateBuf &) = delete;
    GzipInflateBuf &operator=(const GzipInflateBuf &) = delete;

  protected:
    int_type underflow() override;

  private:
    struct Impl; // hides z_stream so zlib.h stays out of this header
    std::unique_ptr<Impl> impl_;
};

/**
 * Write-side streambuf: deflates into gzip framing (deflateInit2 with
 * windowBits 15+16) and flushes compressed chunks to the underlying
 * ostream. The destructor finishes the gzip member; call sync() first
 * if you need to observe write failures as COP_FATAL rather than a
 * destructor abort.
 */
class GzipDeflateBuf : public std::streambuf
{
  public:
    explicit GzipDeflateBuf(std::unique_ptr<std::ostream> out);
    ~GzipDeflateBuf() override;

    GzipDeflateBuf(const GzipDeflateBuf &) = delete;
    GzipDeflateBuf &operator=(const GzipDeflateBuf &) = delete;

    /** Finish the gzip stream and flush; fatal on failure. Idempotent. */
    void finish();

  protected:
    int_type overflow(int_type ch) override;
    int sync() override;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** An istream whose buffer inflates @p in on the fly. */
std::unique_ptr<std::istream>
makeGzipIstream(std::unique_ptr<std::istream> in);

/**
 * An ostream whose buffer deflates into @p out. The stream owns the
 * deflate buffer; destroying it finishes the gzip member.
 */
std::unique_ptr<std::ostream>
makeGzipOstream(std::unique_ptr<std::ostream> out);

/**
 * gzip-wrapped binary trace: BinaryTraceSource over an inflating
 * stream. The inflater is unseekable, so this reader always runs in
 * capped-reserve mode and truncation is caught at the short read.
 */
class GzipTraceSource : public TraceSource
{
  public:
    explicit GzipTraceSource(std::unique_ptr<std::istream> compressed);

    bool next(Epoch &epoch) override;

    u64 declaredEpochs() const override { return inner_->declaredEpochs(); }
    const char *formatName() const override { return "gzip"; }
    unsigned formatVersion() const { return inner_->formatVersion(); }

  private:
    std::unique_ptr<BinaryTraceSource> inner_;
};

} // namespace cop

#endif // COP_TRACE_GZIP_SOURCE_HPP
