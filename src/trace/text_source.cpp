#include "trace/text_source.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <string>

namespace cop {

namespace {

constexpr const char *kEpochMarker = "#epoch";

[[noreturn]] void
badLine(u64 line, const std::string &text, const std::string &why)
{
    COP_FATAL("text trace line " + std::to_string(line) + ": " + why +
              ": \"" + text + "\"");
}

/** Parse a hex (0x…) or decimal block address; fatal on junk. */
Addr
parseAddr(const std::string &token, u64 line, const std::string &text)
{
    if (token.empty())
        badLine(line, text, "missing address");
    char *end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(token.c_str(), &end, 0);
    if (errno != 0 || end == token.c_str() || *end != '\0')
        badLine(line, text, "malformed address '" + token + "'");
    if (value % kBlockBytes != 0) {
        badLine(line, text,
                "address is not " + std::to_string(kBlockBytes) +
                    "-byte block aligned");
    }
    return value;
}

} // namespace

TextTraceSource::TextTraceSource(std::istream &in) : in_(in) {}

TextTraceSource::TextTraceSource(std::unique_ptr<std::istream> in)
    : owned_(std::move(in)), in_(*owned_)
{
}

bool
TextTraceSource::fill()
{
    std::string raw;
    while (std::getline(in_, raw)) {
        ++line_;
        // Trim trailing CR (tolerate CRLF captures) and whitespace.
        size_t end = raw.size();
        while (end > 0 &&
               std::isspace(static_cast<unsigned char>(raw[end - 1])))
            --end;
        size_t begin = 0;
        while (begin < end &&
               std::isspace(static_cast<unsigned char>(raw[begin])))
            ++begin;
        const std::string text = raw.substr(begin, end - begin);
        if (text.empty())
            continue;

        if (text[0] == '#') {
            if (text.compare(0, 6, kEpochMarker) != 0)
                continue; // plain comment
            // '#epoch <instructions>' opens the next epoch; the one
            // being accumulated (if any) is complete.
            const std::string arg = text.substr(6);
            const size_t pos = arg.find_first_not_of(" \t");
            if (pos == std::string::npos)
                badLine(line_, text, "missing instruction count");
            char *endp = nullptr;
            errno = 0;
            const unsigned long long instr =
                std::strtoull(arg.c_str() + pos, &endp, 10);
            if (errno != 0 || endp == arg.c_str() + pos || *endp != '\0')
                badLine(line_, text, "malformed instruction count");
            if (open_) {
                const u64 pendingInstr = pending_.instructions;
                // Emit the finished epoch, stash the new marker.
                nextInstr_ = instr;
                markerPending_ = true;
                pending_.instructions = pendingInstr;
                return true;
            }
            open_ = true;
            pending_.instructions = instr;
            pending_.accesses.clear();
            continue;
        }

        // '<addr> R|W'
        const size_t sp = text.find_first_of(" \t");
        if (sp == std::string::npos)
            badLine(line_, text, "expected '<addr> R|W'");
        const std::string addrTok = text.substr(0, sp);
        const size_t dir = text.find_first_not_of(" \t", sp);
        if (dir == std::string::npos ||
            text.find_first_not_of(" \t", dir + 1) != std::string::npos)
            badLine(line_, text, "expected '<addr> R|W'");
        const char rw = text[dir];
        if (rw != 'R' && rw != 'W')
            badLine(line_, text, "direction must be R or W");
        if (!open_)
            badLine(line_, text, "access before the first #epoch marker");
        pending_.accesses.push_back(
            {parseAddr(addrTok, line_, text), rw == 'W'});
    }
    if (in_.bad())
        COP_FATAL("text trace read failed at line " +
                  std::to_string(line_));
    // EOF: the accumulated epoch (if any) is the last one.
    if (open_) {
        open_ = false;
        return true;
    }
    return false;
}

bool
TextTraceSource::next(Epoch &epoch)
{
    if (!fill())
        return false;
    epoch.instructions = pending_.instructions;
    epoch.accesses.swap(pending_.accesses);
    pending_.accesses.clear();
    if (markerPending_) {
        // fill() returned because a new '#epoch' marker closed the
        // previous epoch; that marker's epoch starts accumulating now.
        pending_.instructions = nextInstr_;
        markerPending_ = false;
        open_ = true;
    }
    ++epochs_;
    accesses_ += epoch.accesses.size();
    return true;
}

u64
writeTextTrace(TraceSource &src, std::ostream &out)
{
    out << "# COP text trace (\"#epoch <instructions>\" then \"<addr> "
           "R|W\" per line)\n";
    Epoch epoch;
    char buf[64];
    u64 written = 0;
    while (src.next(epoch)) {
        std::snprintf(buf, sizeof(buf), "#epoch %llu\n",
                      static_cast<unsigned long long>(epoch.instructions));
        out << buf;
        for (const TraceAccess &access : epoch.accesses) {
            std::snprintf(buf, sizeof(buf), "0x%llx %c\n",
                          static_cast<unsigned long long>(access.addr),
                          access.isWrite ? 'W' : 'R');
            out << buf;
        }
        ++written;
        if (!out)
            COP_FATAL("text trace write failed (disk full?)");
    }
    out.flush();
    if (!out)
        COP_FATAL("text trace write failed (disk full?)");
    return written;
}

} // namespace cop
