/**
 * @file
 * Human-readable text trace format:
 *
 *   # comment                      ('#' alone starts a comment…)
 *   #epoch 1850                    (…but '#epoch N' opens an epoch of
 *                                   N instructions)
 *   0x1a40 R                       (one access per line: block
 *   6720 W                          address, hex or decimal, then R|W)
 *
 * Every access belongs to the most recent '#epoch' marker; an access
 * before the first marker, a malformed line, or an unaligned address
 * is fatal with the line number named. Blank lines are ignored. The
 * format carries no epoch count — a text source always reads to EOF.
 */

#ifndef COP_TRACE_TEXT_SOURCE_HPP
#define COP_TRACE_TEXT_SOURCE_HPP

#include <iosfwd>
#include <memory>

#include "trace/trace_source.hpp"

namespace cop {

/** Streaming line-by-line text reader (one epoch buffered, ever). */
class TextTraceSource : public TraceSource
{
  public:
    explicit TextTraceSource(std::istream &in);
    explicit TextTraceSource(std::unique_ptr<std::istream> in);

    bool next(Epoch &epoch) override;

    const char *formatName() const override { return "text"; }

  private:
    /** Parse lines until the next '#epoch' marker or EOF. */
    bool fill();

    std::unique_ptr<std::istream> owned_;
    std::istream &in_;
    u64 line_ = 0;
    /** Pending epoch state: marker seen, accesses accumulated. */
    bool open_ = false;
    Epoch pending_;
    /** A '#epoch' marker closed the pending epoch; its instruction
     *  count is stashed until next() hands the finished epoch out. */
    bool markerPending_ = false;
    u64 nextInstr_ = 0;
};

/**
 * Serialise @p src into the text format (the `trace_tool convert`
 * path). Streams epoch by epoch; fatal when @p out fails.
 */
u64 writeTextTrace(TraceSource &src, std::ostream &out);

} // namespace cop

#endif // COP_TRACE_TEXT_SOURCE_HPP
