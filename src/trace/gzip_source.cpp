#include "trace/gzip_source.hpp"

#include <istream>
#include <ostream>

#if COP_HAVE_ZLIB
#include <zlib.h>
#endif

namespace cop {

namespace {
/** Fixed compressed/uncompressed chunk size: bounded memory, few
 *  syscalls. Two of these per direction is the whole gzip footprint. */
constexpr size_t kChunkBytes = 256 * 1024;
} // namespace

bool
gzipSupported()
{
    return COP_HAVE_ZLIB != 0;
}

#if COP_HAVE_ZLIB

// ------------------------------------------------------------- inflate

struct GzipInflateBuf::Impl {
    std::unique_ptr<std::istream> in;
    z_stream zs{};
    std::vector<unsigned char> compressed;
    std::vector<char> plain;
    bool eof = false;
};

GzipInflateBuf::GzipInflateBuf(std::unique_ptr<std::istream> in)
    : impl_(std::make_unique<Impl>())
{
    impl_->in = std::move(in);
    impl_->compressed.resize(kChunkBytes);
    impl_->plain.resize(kChunkBytes);
    // windowBits 15+32: accept gzip or raw zlib framing, autodetect.
    if (inflateInit2(&impl_->zs, 15 + 32) != Z_OK)
        COP_FATAL("zlib inflateInit failed");
    setg(impl_->plain.data(), impl_->plain.data(), impl_->plain.data());
}

GzipInflateBuf::~GzipInflateBuf()
{
    inflateEnd(&impl_->zs);
}

GzipInflateBuf::int_type
GzipInflateBuf::underflow()
{
    if (gptr() < egptr())
        return traits_type::to_int_type(*gptr());
    Impl &im = *impl_;
    if (im.eof)
        return traits_type::eof();

    im.zs.next_out = reinterpret_cast<Bytef *>(im.plain.data());
    im.zs.avail_out = static_cast<uInt>(im.plain.size());
    while (im.zs.avail_out == im.plain.size()) {
        if (im.zs.avail_in == 0) {
            im.in->read(reinterpret_cast<char *>(im.compressed.data()),
                        static_cast<std::streamsize>(im.compressed.size()));
            if (im.in->bad())
                COP_FATAL("gzip trace: read of compressed stream failed");
            im.zs.next_in = im.compressed.data();
            im.zs.avail_in = static_cast<uInt>(im.in->gcount());
            if (im.zs.avail_in == 0) {
                COP_FATAL("gzip trace: compressed stream ended "
                          "mid-member (truncated .gz?)");
            }
        }
        const int rc = inflate(&im.zs, Z_NO_FLUSH);
        if (rc == Z_STREAM_END) {
            if (im.zs.avail_in != 0 || im.in->peek() != EOF)
                COP_FATAL("gzip trace: trailing garbage after the "
                          "gzip member");
            im.eof = true;
            break;
        }
        if (rc != Z_OK) {
            COP_FATAL(std::string("gzip trace: inflate failed (") +
                      (im.zs.msg != nullptr ? im.zs.msg : "corrupt data") +
                      ")");
        }
    }
    const size_t produced = im.plain.size() - im.zs.avail_out;
    if (produced == 0)
        return traits_type::eof();
    setg(im.plain.data(), im.plain.data(), im.plain.data() + produced);
    return traits_type::to_int_type(*gptr());
}

// ------------------------------------------------------------- deflate

struct GzipDeflateBuf::Impl {
    std::unique_ptr<std::ostream> out;
    z_stream zs{};
    std::vector<char> plain;
    std::vector<unsigned char> compressed;
    bool finished = false;
};

GzipDeflateBuf::GzipDeflateBuf(std::unique_ptr<std::ostream> out)
    : impl_(std::make_unique<Impl>())
{
    impl_->out = std::move(out);
    impl_->plain.resize(kChunkBytes);
    impl_->compressed.resize(kChunkBytes);
    // windowBits 15+16: emit gzip framing (header + CRC trailer).
    if (deflateInit2(&impl_->zs, Z_DEFAULT_COMPRESSION, Z_DEFLATED,
                     15 + 16, 8, Z_DEFAULT_STRATEGY) != Z_OK)
        COP_FATAL("zlib deflateInit failed");
    setp(impl_->plain.data(),
         impl_->plain.data() + impl_->plain.size());
}

GzipDeflateBuf::~GzipDeflateBuf()
{
    if (!impl_->finished)
        finish();
    deflateEnd(&impl_->zs);
}

GzipDeflateBuf::int_type
GzipDeflateBuf::overflow(int_type ch)
{
    if (sync() != 0)
        return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
        *pptr() = traits_type::to_char_type(ch);
        pbump(1);
    }
    return traits_type::not_eof(ch);
}

int
GzipDeflateBuf::sync()
{
    Impl &im = *impl_;
    im.zs.next_in = reinterpret_cast<Bytef *>(pbase());
    im.zs.avail_in = static_cast<uInt>(pptr() - pbase());
    while (im.zs.avail_in > 0) {
        im.zs.next_out = im.compressed.data();
        im.zs.avail_out = static_cast<uInt>(im.compressed.size());
        if (deflate(&im.zs, Z_NO_FLUSH) != Z_OK)
            COP_FATAL("gzip trace: deflate failed");
        const size_t produced = im.compressed.size() - im.zs.avail_out;
        if (produced > 0) {
            im.out->write(reinterpret_cast<const char *>(
                              im.compressed.data()),
                          static_cast<std::streamsize>(produced));
            if (!*im.out)
                COP_FATAL("gzip trace: write of compressed stream "
                          "failed (disk full?)");
        }
    }
    setp(im.plain.data(), im.plain.data() + im.plain.size());
    return 0;
}

void
GzipDeflateBuf::finish()
{
    Impl &im = *impl_;
    if (im.finished)
        return;
    sync(); // drain the put area first
    im.zs.next_in = nullptr;
    im.zs.avail_in = 0;
    int rc = Z_OK;
    do {
        im.zs.next_out = im.compressed.data();
        im.zs.avail_out = static_cast<uInt>(im.compressed.size());
        rc = deflate(&im.zs, Z_FINISH);
        if (rc != Z_OK && rc != Z_STREAM_END)
            COP_FATAL("gzip trace: deflate(Z_FINISH) failed");
        const size_t produced = im.compressed.size() - im.zs.avail_out;
        if (produced > 0) {
            im.out->write(reinterpret_cast<const char *>(
                              im.compressed.data()),
                          static_cast<std::streamsize>(produced));
        }
    } while (rc != Z_STREAM_END);
    im.out->flush();
    if (!*im.out)
        COP_FATAL("gzip trace: write of compressed stream failed "
                  "(disk full?)");
    im.finished = true;
}

namespace {

/** istream that owns its inflating buffer. */
class GzipIstream : public std::istream
{
  public:
    explicit GzipIstream(std::unique_ptr<std::istream> in)
        : std::istream(nullptr), buf_(std::move(in))
    {
        rdbuf(&buf_);
    }

  private:
    GzipInflateBuf buf_;
};

/** ostream that owns its deflating buffer; flush() finishes cleanly. */
class GzipOstream : public std::ostream
{
  public:
    explicit GzipOstream(std::unique_ptr<std::ostream> out)
        : std::ostream(nullptr), buf_(std::move(out))
    {
        rdbuf(&buf_);
    }

    ~GzipOstream() override { buf_.finish(); }

  private:
    GzipDeflateBuf buf_;
};

} // namespace

std::unique_ptr<std::istream>
makeGzipIstream(std::unique_ptr<std::istream> in)
{
    return std::make_unique<GzipIstream>(std::move(in));
}

std::unique_ptr<std::ostream>
makeGzipOstream(std::unique_ptr<std::ostream> out)
{
    return std::make_unique<GzipOstream>(std::move(out));
}

GzipTraceSource::GzipTraceSource(std::unique_ptr<std::istream> compressed)
    : inner_(std::make_unique<BinaryTraceSource>(
          makeGzipIstream(std::move(compressed))))
{
}

bool
GzipTraceSource::next(Epoch &epoch)
{
    if (!inner_->next(epoch))
        return false;
    ++epochs_;
    accesses_ += epoch.accesses.size();
    return true;
}

#else // !COP_HAVE_ZLIB

namespace {
[[noreturn]] void
noZlib()
{
    COP_FATAL("this build has no zlib: gzip traces are unavailable. "
              "Decompress with `gzip -d` first, or rebuild with zlib "
              "development headers installed.");
}
} // namespace

struct GzipInflateBuf::Impl {};
struct GzipDeflateBuf::Impl {};

GzipInflateBuf::GzipInflateBuf(std::unique_ptr<std::istream>) { noZlib(); }
GzipInflateBuf::~GzipInflateBuf() = default;
GzipInflateBuf::int_type GzipInflateBuf::underflow() { noZlib(); }

GzipDeflateBuf::GzipDeflateBuf(std::unique_ptr<std::ostream>) { noZlib(); }
GzipDeflateBuf::~GzipDeflateBuf() = default;
GzipDeflateBuf::int_type GzipDeflateBuf::overflow(int_type) { noZlib(); }
int GzipDeflateBuf::sync() { noZlib(); }
void GzipDeflateBuf::finish() { noZlib(); }

std::unique_ptr<std::istream>
makeGzipIstream(std::unique_ptr<std::istream>)
{
    noZlib();
}

std::unique_ptr<std::ostream>
makeGzipOstream(std::unique_ptr<std::ostream>)
{
    noZlib();
}

GzipTraceSource::GzipTraceSource(std::unique_ptr<std::istream>)
{
    noZlib();
}

bool
GzipTraceSource::next(Epoch &)
{
    noZlib();
}

#endif // COP_HAVE_ZLIB

} // namespace cop
