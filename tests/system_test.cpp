/**
 * @file
 * Integration tests for the interval simulator: end-to-end runs of the
 * full stack (trace -> LLC -> controller -> DRAM -> decode) for every
 * controller kind, with the built-in data-verification invariant armed.
 */

#include <gtest/gtest.h>

#include "sim/system.hpp"

namespace cop {
namespace {

SystemConfig
smallConfig(ControllerKind kind, unsigned cores = 2,
            u64 epochs = 1500)
{
    SystemConfig cfg;
    cfg.cores = cores;
    cfg.kind = kind;
    cfg.epochsPerCore = epochs;
    cfg.llc = CacheConfig{256ULL << 10, 8, 34}; // small LLC: more misses
    cfg.verifyData = true;
    return cfg;
}

class SystemKinds : public ::testing::TestWithParam<ControllerKind>
{
};

TEST_P(SystemKinds, RunsCleanWithDataVerification)
{
    const auto &profile = WorkloadRegistry::byName("gcc");
    System sys(profile, smallConfig(GetParam()));
    const SystemResults results = sys.run();
    EXPECT_GT(results.instructions, 0u);
    EXPECT_GT(results.cycles, 0u);
    EXPECT_GT(results.ipc, 0.0);
    EXPECT_LE(results.ipc, 2 * profile.perfectIpc * 2);
    EXPECT_GT(results.llcMisses, 0u);
    EXPECT_GT(results.vuln.totalReads(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SystemKinds,
    ::testing::Values(ControllerKind::Unprotected, ControllerKind::EccDimm,
                      ControllerKind::EccRegion, ControllerKind::Cop4,
                      ControllerKind::Cop8, ControllerKind::CopEr),
    [](const ::testing::TestParamInfo<ControllerKind> &info) {
        std::string name = controllerKindName(info.param);
        std::erase_if(name, [](char c) { return !std::isalnum(c); });
        return name;
    });

TEST(System, PerformanceOrderingMatchesPaper)
{
    // Figure 11's shape: Unprot >= COP >= COP-ER > ECC Reg. (mcf is
    // memory-bound, so the differences are visible).
    const auto &profile = WorkloadRegistry::byName("mcf");
    auto run = [&](ControllerKind kind) {
        System sys(profile, smallConfig(kind, 2, 2500));
        return sys.run().ipc;
    };
    const double unprot = run(ControllerKind::Unprotected);
    const double cop = run(ControllerKind::Cop4);
    const double coper = run(ControllerKind::CopEr);
    const double eccreg = run(ControllerKind::EccRegion);

    EXPECT_GE(unprot * 1.001, cop);
    EXPECT_GE(cop * 1.01, coper);
    EXPECT_GT(coper, eccreg * 0.99);
    // And the whole spread is modest (paper: within ~20% of unprot).
    EXPECT_GT(eccreg, unprot * 0.5);
}

TEST(System, CopVulnLogSplitsProtectedAndRaw)
{
    const auto &profile = WorkloadRegistry::byName("bzip2");
    System sys(profile, smallConfig(ControllerKind::Cop4));
    const SystemResults r = sys.run();
    // bzip2-like data has a solid incompressible fraction.
    EXPECT_GT(r.vuln.of(VulnClass::CopProtected4).reads, 0u);
    EXPECT_GT(r.vuln.of(VulnClass::Unprotected).reads, 0u);
}

TEST(System, CopErLogsNoUnprotectedReads)
{
    const auto &profile = WorkloadRegistry::byName("bzip2");
    System sys(profile, smallConfig(ControllerKind::CopEr));
    const SystemResults r = sys.run();
    EXPECT_EQ(r.vuln.of(VulnClass::Unprotected).reads, 0u);
    EXPECT_GT(r.vuln.of(VulnClass::CopErUncompressed).reads, 0u);
    EXPECT_GT(r.eccRegionBytes, 0u);
}

TEST(System, EverUncompressedTracksIncompressibleFraction)
{
    const auto &profile = WorkloadRegistry::byName("mcf");
    System sys(profile, smallConfig(ControllerKind::CopEr));
    const SystemResults r = sys.run();
    ASSERT_GT(r.touchedBlocks, 0u);
    const double frac = static_cast<double>(r.everUncompressedBlocks) /
                        static_cast<double>(r.touchedBlocks);
    // mcf-like content: a small minority incompressible.
    EXPECT_LT(frac, 0.25);
}

TEST(System, SharedFootprintParsecRuns)
{
    const auto &profile = WorkloadRegistry::byName("canneal");
    System sys(profile, smallConfig(ControllerKind::Cop4, 4, 800));
    const SystemResults r = sys.run();
    EXPECT_GT(r.ipc, 0.0);
}

TEST(System, DeterministicAcrossRuns)
{
    const auto &profile = WorkloadRegistry::byName("gcc");
    System a(profile, smallConfig(ControllerKind::Cop4));
    System b(profile, smallConfig(ControllerKind::Cop4));
    const SystemResults ra = a.run();
    const SystemResults rb = b.run();
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.instructions, rb.instructions);
    EXPECT_EQ(ra.llcMisses, rb.llcMisses);
}

TEST(System, ProactiveAliasCheckRunsClean)
{
    // Section 3.1's alternative policy: checking at LLC-write time.
    // Synthetic data essentially never aliases, so the run must agree
    // with the lazy policy bit-for-bit.
    const auto &profile = WorkloadRegistry::byName("gcc");
    SystemConfig lazy_cfg = smallConfig(ControllerKind::Cop4);
    SystemConfig eager_cfg = lazy_cfg;
    eager_cfg.proactiveAliasCheck = true;
    System lazy(profile, lazy_cfg);
    System eager(profile, eager_cfg);
    const SystemResults a = lazy.run();
    const SystemResults b = eager.run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(b.aliasPinEvents, 0u);
}

TEST(System, ClosedPagePolicyCostsPerformance)
{
    // lbm streams rows; auto-precharge throws the locality away.
    const auto &profile = WorkloadRegistry::byName("lbm");
    SystemConfig open_cfg = smallConfig(ControllerKind::Unprotected);
    SystemConfig closed_cfg = open_cfg;
    closed_cfg.dram.rowPolicy = RowPolicy::Closed;
    System open_sys(profile, open_cfg);
    System closed_sys(profile, closed_cfg);
    const double open_ipc = open_sys.run().ipc;
    const double closed_ipc = closed_sys.run().ipc;
    EXPECT_LT(closed_ipc, open_ipc);
}

TEST(System, NaiveCopErBetweenBaselineAndCopEr)
{
    const auto &profile = WorkloadRegistry::byName("mcf");
    auto run = [&](ControllerKind kind) {
        System sys(profile, smallConfig(kind, 2, 2500));
        return sys.run().ipc;
    };
    const double eccreg = run(ControllerKind::EccRegion);
    const double naive = run(ControllerKind::CopErNaive);
    EXPECT_GT(naive, eccreg);
}

TEST(System, AddressOutsideFootprintRegionsPanics)
{
    // mcf is a SPEC profile: per-core private footprints. An address at
    // exactly cores * region is one past the last region and must panic
    // (it used to be a compiled-out assert, i.e. UB in release builds).
    const auto &profile = WorkloadRegistry::byName("mcf");
    ASSERT_FALSE(profile.sharedFootprint);
    const u64 region = profile.footprintBlocks * kBlockBytes;

    System sys(profile, smallConfig(ControllerKind::Unprotected, 2, 10));
    // Just below the boundary: last block of the last core's region.
    EXPECT_NO_FATAL_FAILURE(
        sys.controller().read(2 * region - kBlockBytes, 0));
    EXPECT_DEATH(sys.controller().read(2 * region, 0),
                 "outside the 2 per-core footprint regions");
}

TEST(System, MoreCoresMoreContention)
{
    const auto &profile = WorkloadRegistry::byName("lbm");
    System one(profile, smallConfig(ControllerKind::Unprotected, 1, 2000));
    System four(profile, smallConfig(ControllerKind::Unprotected, 4, 2000));
    const double ipc1 = one.run().ipc; // aggregate IPC of 1 core
    const double ipc4 = four.run().ipc / 4.0; // per-core
    EXPECT_LT(ipc4, ipc1 * 1.001);
}

} // namespace
} // namespace cop
