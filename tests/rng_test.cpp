/**
 * @file
 * Sanity tests for the deterministic xoshiro RNG.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace cop {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const u64 v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIsInUnitInterval)
{
    Rng rng(13);
    double sum = 0;
    constexpr int n = 10000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng rng(21);
    const u64 first = rng.next();
    rng.next();
    rng.reseed(21);
    EXPECT_EQ(rng.next(), first);
}

} // namespace
} // namespace cop
