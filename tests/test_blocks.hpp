/**
 * @file
 * Shared block builders for the compression / codec test suites.
 */

#ifndef COP_TESTS_TEST_BLOCKS_HPP
#define COP_TESTS_TEST_BLOCKS_HPP

#include <string_view>

#include "common/cache_block.hpp"
#include "common/rng.hpp"

namespace cop::testblocks {

/** Fully random (virtually incompressible) block. */
inline CacheBlock
random(Rng &rng)
{
    CacheBlock b;
    for (unsigned w = 0; w < 8; ++w)
        b.setWord64(w, rng.next());
    return b;
}

/** Eight 64-bit words sharing their top bits: MSB-compressible. */
inline CacheBlock
similarWords(Rng &rng, u64 base = 0x00007F4200000000ULL,
             u64 spread = 1ULL << 40)
{
    CacheBlock b;
    for (unsigned w = 0; w < 8; ++w)
        b.setWord64(w, base + rng.below(spread));
    return b;
}

/** ASCII-only block. */
inline CacheBlock
text(Rng &rng)
{
    CacheBlock b;
    constexpr std::string_view alphabet =
        " abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.,";
    for (unsigned i = 0; i < kBlockBytes; ++i)
        b.setByte(i, static_cast<u8>(alphabet[rng.below(alphabet.size())]));
    return b;
}

/** Random block with a few zero-byte runs: RLE-compressible. */
inline CacheBlock
sparse(Rng &rng, unsigned zero_runs = 3)
{
    CacheBlock b = random(rng);
    for (unsigned r = 0; r < zero_runs; ++r) {
        const unsigned w = rng.below(30);
        b.setByte(2 * w, 0);
        b.setByte(2 * w + 1, 0);
        b.setByte(2 * w + 2, 0);
    }
    return b;
}

/** Block of small sign-extended 32-bit values: FPC-compressible. */
inline CacheBlock
smallInts(Rng &rng, u32 magnitude = 100)
{
    CacheBlock b;
    for (unsigned w = 0; w < 16; ++w) {
        const auto v = static_cast<std::int32_t>(rng.below(2 * magnitude)) -
                       static_cast<std::int32_t>(magnitude);
        b.setWord32(w, static_cast<u32>(v));
    }
    return b;
}

} // namespace cop::testblocks

#endif // COP_TESTS_TEST_BLOCKS_HPP
