/**
 * @file
 * Tests for the DRAM energy model: component accounting and the
 * relative relationships the paper's motivation rests on.
 */

#include <gtest/gtest.h>

#include "dram/energy.hpp"

namespace cop {
namespace {

DramStats
someStats()
{
    DramStats s;
    s.reads = 1000;
    s.writes = 400;
    s.rowMisses = 500;
    s.rowConflicts = 200;
    s.rowHits = 700;
    return s;
}

TEST(Energy, ComponentsSumToTotal)
{
    const DramEnergyModel model;
    const DramEnergyReport r = model.evaluate(someStats(), 1000000, 8);
    EXPECT_NEAR(r.totalMj(), r.activateMj + r.readMj + r.writeMj +
                                 r.ioMj + r.backgroundMj,
                1e-12);
    EXPECT_GT(r.totalMj(), 0.0);
}

TEST(Energy, EccDimmCostsOneNinthMore)
{
    // Same traffic, 9 chips instead of 8: dynamic and background scale
    // by exactly 9/8 (I/O too: 72 bits per beat vs 64).
    const DramEnergyModel model;
    const DramStats stats = someStats();
    const DramEnergyReport e8 = model.evaluate(stats, 1000000, 8);
    const DramEnergyReport e9 = model.evaluate(stats, 1000000, 9);
    EXPECT_NEAR(e9.totalMj() / e8.totalMj(), 9.0 / 8.0, 1e-9);
}

TEST(Energy, MoreAccessesMoreEnergy)
{
    const DramEnergyModel model;
    DramStats more = someStats();
    more.reads *= 2;
    more.rowMisses *= 2;
    const DramEnergyReport base =
        model.evaluate(someStats(), 1000000, 8);
    const DramEnergyReport doubled = model.evaluate(more, 1000000, 8);
    EXPECT_GT(doubled.totalMj(), base.totalMj());
    EXPECT_NEAR(doubled.readMj, 2 * base.readMj, 1e-12);
    EXPECT_DOUBLE_EQ(doubled.writeMj, base.writeMj);
}

TEST(Energy, BackgroundScalesWithTime)
{
    const DramEnergyModel model;
    const DramEnergyReport a = model.evaluate(someStats(), 1000000, 8);
    const DramEnergyReport b = model.evaluate(someStats(), 3000000, 8);
    EXPECT_NEAR(b.backgroundMj, 3 * a.backgroundMj, 1e-12);
    EXPECT_DOUBLE_EQ(b.readMj, a.readMj);
}

TEST(Energy, RowHitsCostNoActivateEnergy)
{
    const DramEnergyModel model;
    DramStats hits = someStats();
    hits.rowHits += 1000;
    const DramEnergyReport a = model.evaluate(someStats(), 1000000, 8);
    const DramEnergyReport b = model.evaluate(hits, 1000000, 8);
    EXPECT_DOUBLE_EQ(a.activateMj, b.activateMj);
}

} // namespace
} // namespace cop
