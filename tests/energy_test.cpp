/**
 * @file
 * Tests for the DRAM energy model: component accounting and the
 * relative relationships the paper's motivation rests on.
 */

#include <gtest/gtest.h>

#include "dram/energy.hpp"

namespace cop {
namespace {

DramStats
someStats()
{
    DramStats s;
    s.reads = 1000;
    s.writes = 400;
    s.rowMisses = 500;
    s.rowConflicts = 200;
    s.rowHits = 700;
    return s;
}

TEST(Energy, ComponentsSumToTotal)
{
    const DramEnergyModel model;
    const DramEnergyReport r = model.evaluate(someStats(), 1000000, 8);
    EXPECT_NEAR(r.totalMj(), r.activateMj + r.readMj + r.writeMj +
                                 r.ioMj + r.backgroundMj,
                1e-12);
    EXPECT_GT(r.totalMj(), 0.0);
}

TEST(Energy, EccDimmCostsOneNinthMore)
{
    // Same traffic, 9 chips instead of 8: dynamic and background scale
    // by exactly 9/8 (I/O too: 72 bits per beat vs 64).
    const DramEnergyModel model;
    const DramStats stats = someStats();
    const DramEnergyReport e8 = model.evaluate(stats, 1000000, 8);
    const DramEnergyReport e9 = model.evaluate(stats, 1000000, 9);
    EXPECT_NEAR(e9.totalMj() / e8.totalMj(), 9.0 / 8.0, 1e-9);
}

TEST(Energy, MoreAccessesMoreEnergy)
{
    const DramEnergyModel model;
    DramStats more = someStats();
    more.reads *= 2;
    more.rowMisses *= 2;
    const DramEnergyReport base =
        model.evaluate(someStats(), 1000000, 8);
    const DramEnergyReport doubled = model.evaluate(more, 1000000, 8);
    EXPECT_GT(doubled.totalMj(), base.totalMj());
    EXPECT_NEAR(doubled.readMj, 2 * base.readMj, 1e-12);
    EXPECT_DOUBLE_EQ(doubled.writeMj, base.writeMj);
}

TEST(Energy, BackgroundScalesWithTime)
{
    const DramEnergyModel model;
    const DramEnergyReport a = model.evaluate(someStats(), 1000000, 8);
    const DramEnergyReport b = model.evaluate(someStats(), 3000000, 8);
    EXPECT_NEAR(b.backgroundMj, 3 * a.backgroundMj, 1e-12);
    EXPECT_DOUBLE_EQ(b.readMj, a.readMj);
}

TEST(Energy, FullBeatCountsMatchLegacyAccounting)
{
    // Stats carrying beat counters at exactly 8 beats per access must
    // report the same energy as beat-less legacy stats: the per-beat
    // scaling is a refinement of the fixed-burst assumption, not a
    // re-calibration.
    const DramEnergyModel model;
    DramStats with_beats = someStats();
    with_beats.readBeats = with_beats.reads * 8;
    with_beats.writeBeats = with_beats.writes * 8;
    const DramEnergyReport legacy = model.evaluate(someStats(), 1000000, 8);
    const DramEnergyReport beats = model.evaluate(with_beats, 1000000, 8);
    EXPECT_DOUBLE_EQ(beats.readMj, legacy.readMj);
    EXPECT_DOUBLE_EQ(beats.writeMj, legacy.writeMj);
    EXPECT_DOUBLE_EQ(beats.ioMj, legacy.ioMj);
    EXPECT_DOUBLE_EQ(beats.totalMj(), legacy.totalMj());
}

TEST(Energy, ShortenedBurstsScaleBurstAndIoEnergy)
{
    // Bandwidth mode at 6 beats per transfer: burst and I/O energy drop
    // to exactly 6/8; activate and background are untouched (the bank
    // still activates, the chips still idle).
    const DramEnergyModel model;
    DramStats full = someStats();
    full.readBeats = full.reads * 8;
    full.writeBeats = full.writes * 8;
    DramStats shortened = someStats();
    shortened.readBeats = shortened.reads * 6;
    shortened.writeBeats = shortened.writes * 6;
    const DramEnergyReport f = model.evaluate(full, 1000000, 8);
    const DramEnergyReport s = model.evaluate(shortened, 1000000, 8);
    EXPECT_NEAR(s.readMj, f.readMj * 6.0 / 8.0, 1e-12);
    EXPECT_NEAR(s.writeMj, f.writeMj * 6.0 / 8.0, 1e-12);
    EXPECT_NEAR(s.ioMj, f.ioMj * 6.0 / 8.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.activateMj, f.activateMj);
    EXPECT_DOUBLE_EQ(s.backgroundMj, f.backgroundMj);
}

TEST(Energy, RowHitsCostNoActivateEnergy)
{
    const DramEnergyModel model;
    DramStats hits = someStats();
    hits.rowHits += 1000;
    const DramEnergyReport a = model.evaluate(someStats(), 1000000, 8);
    const DramEnergyReport b = model.evaluate(hits, 1000000, 8);
    EXPECT_DOUBLE_EQ(a.activateMj, b.activateMj);
}

} // namespace
} // namespace cop
