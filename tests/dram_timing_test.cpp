/**
 * @file
 * Regression tests for the DRAM-timing bugfix sweep: column commands
 * (not just activates) stall during tRFC refresh windows, the
 * four-activate window binds the fifth activate, bankReadyHint agrees
 * with the schedule access() actually produces (including rank and
 * refresh constraints it used to ignore), and closed-page forces
 * re-activation. Each timing assertion is computed by hand from the
 * DramConfig constants so a model change that shifts any of these
 * first-order effects fails loudly.
 */

#include <gtest/gtest.h>

#include "dram/dram_system.hpp"

namespace cop {
namespace {

DramConfig
quietConfig()
{
    DramConfig cfg;
    cfg.refreshEnabled = false;
    return cfg;
}

/** Address of bank @p bank (rank 0, channel 0, row 0). */
Addr
bankAddr(const DramConfig &cfg, unsigned bank)
{
    return static_cast<Addr>(bank) * cfg.blocksPerRow() * kBlockBytes *
           cfg.channels;
}

/** Address of row @p row (bank 0, rank 0, channel 0). */
Addr
rowAddr(const DramConfig &cfg, u64 row)
{
    return row * cfg.rowBytes * cfg.banksPerRank * cfg.ranksPerChannel *
           cfg.channels;
}

TEST(DramRefresh, RowHitCasInsideWindowIsDelayed)
{
    DramConfig cfg;
    cfg.refreshEnabled = true;
    DramSystem dram(cfg);

    // Open the row just past the first refresh window: the ACT at
    // phase tRFC is unobstructed.
    const DramResult first = dram.access({0, false, cfg.tRFC});
    EXPECT_FALSE(first.rowHit);
    EXPECT_EQ(first.complete, cfg.tRFC + cfg.tRCD + cfg.tCL + cfg.tBURST);
    EXPECT_EQ(dram.stats().refreshStalls, 0u);
    EXPECT_EQ(dram.stats().refreshStallsCas, 0u);

    // A row hit arriving exactly at the second refresh interval lands
    // at phase 0 — inside the tRFC window. The CAS (a column command)
    // must slip to the window's end; the old model issued it
    // immediately, under-counting read latency by up to tRFC cycles.
    const DramResult hit = dram.access({128, false, cfg.tREFI});
    EXPECT_TRUE(hit.rowHit);
    EXPECT_EQ(hit.complete,
              cfg.tREFI + cfg.tRFC + cfg.tCL + cfg.tBURST);
    EXPECT_EQ(dram.stats().refreshStallsCas, 1u);
    // Booked as a column stall, not an ACT stall.
    EXPECT_EQ(dram.stats().refreshStalls, 0u);
}

TEST(DramRefresh, ActAndCasStallsCountedSeparately)
{
    DramConfig cfg;
    cfg.refreshEnabled = true;
    DramSystem dram(cfg);

    // Arrival inside the first window: the ACT stalls to tRFC, and the
    // CAS at tRFC + tRCD is clear of the window — one ACT stall only.
    dram.access({0, false, 0});
    EXPECT_EQ(dram.stats().refreshStalls, 1u);
    EXPECT_EQ(dram.stats().refreshStallsCas, 0u);
}

TEST(DramTiming, FifthActivateWaitsForFourActivateWindow)
{
    DramSystem dram(quietConfig());
    const DramConfig &cfg = dram.config();

    // Activates to five distinct banks of rank 0, all arriving at 0.
    // ACT issue cycles: 0, tRRD, 2*tRRD, 3*tRRD, then the fifth must
    // wait for the first activate's tFAW window (tFAW > 4*tRRD).
    ASSERT_GT(cfg.tFAW, 4 * cfg.tRRD);
    Cycle complete = 0;
    for (unsigned b = 0; b < 5; ++b)
        complete = dram.access({bankAddr(cfg, b), false, 0}).complete;
    EXPECT_EQ(complete, cfg.tFAW + cfg.tRCD + cfg.tCL + cfg.tBURST);
}

TEST(DramTiming, HintMatchesAccessOnFreshBank)
{
    DramSystem dram(quietConfig());
    const DramConfig &cfg = dram.config();
    const Cycle hint = dram.bankReadyHint(0);
    EXPECT_EQ(hint, 0u);
    const DramResult r = dram.access({0, false, 0});
    EXPECT_EQ(r.complete, hint + cfg.tRCD + cfg.tCL + cfg.tBURST);
}

TEST(DramTiming, HintMatchesAccessOnRowHit)
{
    DramSystem dram(quietConfig());
    const DramConfig &cfg = dram.config();
    dram.access({0, false, 0});
    // Open row: the hint is the earliest CAS; the next same-row access
    // starts its column phase exactly there.
    const Cycle hint = dram.bankReadyHint(128);
    const DramResult r = dram.access({128, false, 0});
    EXPECT_TRUE(r.rowHit);
    EXPECT_EQ(r.complete, hint + cfg.tCL + cfg.tBURST);
}

TEST(DramTiming, HintMatchesAccessOnRowConflict)
{
    DramSystem dram(quietConfig());
    const DramConfig &cfg = dram.config();
    dram.access({0, false, 0});
    // Conflicting row in the same bank: precharge then activate.
    const Addr other = rowAddr(cfg, 1);
    const Cycle hint = dram.bankReadyHint(other);
    const DramResult r = dram.access({other, false, 0});
    EXPECT_TRUE(r.rowConflict);
    EXPECT_EQ(r.complete, hint + cfg.tRCD + cfg.tCL + cfg.tBURST);
}

TEST(DramTiming, HintSeesFourActivateWindow)
{
    DramSystem dram(quietConfig());
    const DramConfig &cfg = dram.config();
    for (unsigned b = 0; b < 4; ++b)
        dram.access({bankAddr(cfg, b), false, 0});

    // The fifth bank of the rank is idle, but the rank's tFAW window
    // pins its next activate; the old hint reported the bank as ready
    // at cycle 0.
    const Addr fifth = bankAddr(cfg, 4);
    const Cycle hint = dram.bankReadyHint(fifth);
    EXPECT_EQ(hint, cfg.tFAW);
    const DramResult r = dram.access({fifth, false, 0});
    EXPECT_EQ(r.complete, hint + cfg.tRCD + cfg.tCL + cfg.tBURST);
}

TEST(DramTiming, HintSeesRefreshWithoutMutatingStats)
{
    DramConfig cfg;
    cfg.refreshEnabled = true;
    const DramSystem dram(cfg); // const: the hint cannot mutate stats
    // A fresh bank could activate at cycle 0 — but cycle 0 is inside
    // the first refresh window, so readiness is really tRFC.
    EXPECT_EQ(dram.bankReadyHint(0), cfg.tRFC);
    EXPECT_EQ(dram.stats().refreshStalls, 0u);
    EXPECT_EQ(dram.stats().refreshStallsCas, 0u);
}

TEST(DramTiming, ClosedRowForcesReactivation)
{
    DramConfig cfg = quietConfig();
    cfg.rowPolicy = RowPolicy::Closed;
    DramSystem dram(cfg);

    const DramResult first = dram.access({0, false, 0});
    EXPECT_FALSE(first.rowHit);

    // Same row again, arriving after the auto-precharge completed: the
    // access must pay a full activate, not a column-only hit.
    const Cycle arrival = 1000;
    const Cycle hint = dram.bankReadyHint(0);
    const DramResult again = dram.access({0, false, arrival});
    EXPECT_FALSE(again.rowHit);
    EXPECT_EQ(dram.stats().rowHits, 0u);
    EXPECT_EQ(dram.stats().rowMisses, 2u);
    EXPECT_GE(arrival, hint); // bank was ready before the request
    EXPECT_EQ(again.complete,
              arrival + cfg.tRCD + cfg.tCL + cfg.tBURST);

    // Open-row control: the identical sequence scores a hit.
    DramSystem open_dram(quietConfig());
    open_dram.access({0, false, 0});
    EXPECT_TRUE(open_dram.access({0, false, arrival}).rowHit);
}

TEST(DramTiming, OpenAndClosedAgreeOnActReadyBookkeeping)
{
    // The dedup of the row-policy branches must not change either
    // policy's activate bookkeeping: after one access, a conflicting
    // row's schedule is identical under both policies.
    DramConfig open_cfg = quietConfig();
    DramConfig closed_cfg = quietConfig();
    closed_cfg.rowPolicy = RowPolicy::Closed;
    DramSystem open_dram(open_cfg), closed_dram(closed_cfg);
    open_dram.access({0, false, 0});
    closed_dram.access({0, false, 0});

    const Addr other = rowAddr(open_cfg, 1);
    // Closed-page has already precharged, so the conflict row is a
    // plain miss gated by actReady; open-row pays the precharge path.
    // Both end at the same cycle because actReady == preReady + tRP.
    EXPECT_EQ(open_dram.access({other, false, 0}).complete,
              closed_dram.access({other, false, 0}).complete);
}

TEST(DramTiming, WriteToReadTurnaroundPaysTwtr)
{
    DramSystem dram(quietConfig());
    const DramConfig &cfg = dram.config();

    // Write to a fresh bank: ACT at 0, CAS at tRCD, data after tCWL.
    const DramResult w = dram.access({0, true, 0});
    EXPECT_EQ(w.complete, cfg.tRCD + cfg.tCWL + cfg.tBURST);

    // Same-row read on the same channel: its column command is ready at
    // effective-CAS + tCCD = (tRCD + tCWL - tCWL) + tCCD, but the bus
    // must first drain the write burst AND pay the write->read
    // turnaround, which here is the binding constraint:
    //   data = writeComplete + tWTR, complete = data + tBURST.
    // The pre-fix model skipped tWTR and finished tWTR cycles early.
    const DramResult r = dram.access({128, false, 0});
    EXPECT_TRUE(r.rowHit);
    EXPECT_EQ(r.complete, w.complete + cfg.tWTR + cfg.tBURST);
    EXPECT_EQ(dram.stats().busTurnarounds, 1u);
}

TEST(DramTiming, ReadToWriteTurnaroundPaysTrtw)
{
    DramSystem dram(quietConfig());
    const DramConfig &cfg = dram.config();

    const DramResult r = dram.access({0, false, 0});
    EXPECT_EQ(r.complete, cfg.tRCD + cfg.tCL + cfg.tBURST);

    // Same-row write: CAS could issue at effective-CAS + tCCD with data
    // tCWL later (tRCD + tCCD + tCWL = 92 < readComplete), so the bus —
    // free at readComplete plus the read->write gap — binds:
    //   complete = readComplete + tRTW + tBURST.
    const DramResult w = dram.access({128, true, 0});
    EXPECT_TRUE(w.rowHit);
    EXPECT_EQ(w.complete, r.complete + cfg.tRTW + cfg.tBURST);
    EXPECT_EQ(dram.stats().busTurnarounds, 1u);
}

TEST(DramTiming, SameDirectionBurstsPayNoTurnaround)
{
    DramSystem dram(quietConfig());
    const DramConfig &cfg = dram.config();

    // Two same-row reads: the second's burst starts the cycle the
    // first's ends — bus serialisation only, no turnaround gap.
    const DramResult first = dram.access({0, false, 0});
    const DramResult second = dram.access({128, false, 0});
    EXPECT_TRUE(second.rowHit);
    EXPECT_EQ(second.complete, first.complete + cfg.tBURST);
    EXPECT_EQ(dram.stats().busTurnarounds, 0u);
}

TEST(DramTiming, ShortenedBurstScalesBusOccupancy)
{
    DramSystem dram(quietConfig());
    const DramConfig &cfg = dram.config();

    // A 5-beat burst (the smallest a compressed COP block can reach:
    // 2 tag + 240 stream + 32 check bits = 274 bits) occupies the bus
    // for 5/8 of tBURST; command timing is unchanged.
    const DramResult r = dram.access({0, false, 0, 5});
    EXPECT_EQ(r.complete, cfg.tRCD + cfg.tCL + cfg.tBURST * 5 / 8);

    const DramStats &s = dram.stats();
    EXPECT_EQ(s.readBeats, 5u);
    EXPECT_EQ(s.beatsSaved, 3u);
    EXPECT_EQ(s.busBusyCycles, cfg.tBURST * 5 / 8);
}

TEST(DramTiming, ShortenedWriteBurstCountsWriteBeats)
{
    DramSystem dram(quietConfig());
    const DramConfig &cfg = dram.config();

    const DramResult w = dram.access({0, true, 0, 6});
    EXPECT_EQ(w.complete, cfg.tRCD + cfg.tCWL + cfg.tBURST * 6 / 8);

    const DramStats &s = dram.stats();
    EXPECT_EQ(s.writeBeats, 6u);
    EXPECT_EQ(s.readBeats, 0u);
    EXPECT_EQ(s.beatsSaved, 2u);
}

TEST(DramTiming, FullBurstsAccrueBeatsWithNothingSaved)
{
    DramSystem dram(quietConfig());
    dram.access({0, false, 0});
    dram.access({128, true, 0});
    const DramStats &s = dram.stats();
    EXPECT_EQ(s.readBeats, 8u);
    EXPECT_EQ(s.writeBeats, 8u);
    EXPECT_EQ(s.beatsSaved, 0u);
}

TEST(DramTiming, ReadLatencyHistogramTracksAccesses)
{
    DramSystem dram(quietConfig());
    const DramConfig &cfg = dram.config();
    const DramResult r = dram.access({0, false, 0});
    dram.access({1 * kBlockBytes, true, 0}); // other channel, a write
    const DramStats &s = dram.stats();
    EXPECT_EQ(s.readLatency.count(), 1u);
    EXPECT_EQ(s.writeLatency.count(), 1u);
    EXPECT_EQ(s.readLatency.maxValue(), r.complete);
    EXPECT_EQ(s.readLatency.sum(), s.totalReadLatency);
    EXPECT_LE(s.readLatency.percentile(50), r.complete);
    (void)cfg;
}

} // namespace
} // namespace cop
