/**
 * @file
 * Tests for the vulnerability log (the PARMA-style exposure ledger).
 */

#include <gtest/gtest.h>

#include "mem/vuln_log.hpp"

namespace cop {
namespace {

TEST(VulnLog, RecordAccumulates)
{
    VulnLog log;
    log.record(VulnClass::Unprotected, 100);
    log.record(VulnClass::Unprotected, 300);
    log.record(VulnClass::CopProtected4, 50);
    EXPECT_EQ(log.of(VulnClass::Unprotected).reads, 2u);
    EXPECT_DOUBLE_EQ(log.of(VulnClass::Unprotected).totalCycles, 400.0);
    EXPECT_EQ(log.of(VulnClass::CopProtected4).reads, 1u);
    EXPECT_EQ(log.totalReads(), 3u);
    EXPECT_DOUBLE_EQ(log.totalCycles(), 450.0);
}

TEST(VulnLog, EmptyByDefault)
{
    const VulnLog log;
    EXPECT_EQ(log.totalReads(), 0u);
    EXPECT_DOUBLE_EQ(log.totalCycles(), 0.0);
    for (unsigned c = 0; c < kVulnClasses; ++c)
        EXPECT_EQ(log.of(static_cast<VulnClass>(c)).reads, 0u);
}

TEST(VulnLog, ClassNamesAreDistinct)
{
    std::set<std::string> names;
    for (unsigned c = 0; c < kVulnClasses; ++c)
        names.insert(vulnClassName(static_cast<VulnClass>(c)));
    EXPECT_EQ(names.size(), kVulnClasses);
}

TEST(VulnLog, ZeroResidencyIsLegal)
{
    VulnLog log;
    log.record(VulnClass::EccDimm, 0);
    EXPECT_EQ(log.of(VulnClass::EccDimm).reads, 1u);
    EXPECT_DOUBLE_EQ(log.of(VulnClass::EccDimm).totalCycles, 0.0);
}

} // namespace
} // namespace cop
