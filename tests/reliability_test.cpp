/**
 * @file
 * Tests for the analytic error model and the Monte-Carlo fault
 * injector, including cross-validation between the two and the
 * paper's headline reliability relationships.
 */

#include <gtest/gtest.h>

#include "reliability/error_model.hpp"
#include "reliability/fault_injector.hpp"
#include "test_blocks.hpp"

namespace cop {
namespace {

TEST(ErrorModel, BitFlipProbabilityScale)
{
    const ReliabilityParams params;
    // 5000 FIT/Mbit ~= 1.325e-15 per bit per second; one second of
    // exposure is 3.2e9 cycles.
    const double p = params.bitFlipProbability(3.2e9);
    EXPECT_NEAR(p, 5000.0 / (1 << 20) * 1e-9 / 3600.0, 1e-18);
}

TEST(ErrorModel, UnprotectedScalesLinearly)
{
    const ErrorRateModel model;
    const double a = model.outcome(VulnClass::Unprotected, 1e9).silent;
    const double b = model.outcome(VulnClass::Unprotected, 2e9).silent;
    EXPECT_NEAR(b / a, 2.0, 1e-9);
}

TEST(ErrorModel, ProtectedClassesAreQuadratic)
{
    const ErrorRateModel model;
    const double a =
        model.outcome(VulnClass::CopProtected4, 1e9).uncorrected();
    const double b =
        model.outcome(VulnClass::CopProtected4, 2e9).uncorrected();
    EXPECT_NEAR(b / a, 4.0, 1e-9);
}

TEST(ErrorModel, ProtectionOrdering)
{
    // For equal exposure: unprotected >> any protected scheme, and the
    // wide-code classes are weaker than ECC DIMM or COP-8B.
    const ErrorRateModel model;
    const double cycles = 1e12;
    const double unprot =
        model.outcome(VulnClass::Unprotected, cycles).uncorrected();
    const double cop4 =
        model.outcome(VulnClass::CopProtected4, cycles).uncorrected();
    const double cop8 =
        model.outcome(VulnClass::CopProtected8, cycles).uncorrected();
    const double dimm =
        model.outcome(VulnClass::EccDimm, cycles).uncorrected();
    const double wide =
        model.outcome(VulnClass::WideCode, cycles).uncorrected();
    EXPECT_GT(unprot, wide * 100);
    EXPECT_GT(wide, dimm);
    EXPECT_GT(cop4, cop8);
    EXPECT_GT(dimm, cop8); // 64-bit words beat 72-bit words
}

TEST(ErrorModel, CopErVsEccDimmAboutSixX)
{
    // Section 4: "COP-ER's error rate is 6x that of an ECC DIMM".
    // The word-width argument gives 523^2 / (8 * 72^2) ~= 6.6.
    const ErrorRateModel model;
    const double ratio = model.copErVsEccDimmRatio(1e12);
    EXPECT_GT(ratio, 5.0);
    EXPECT_LT(ratio, 8.0);
}

TEST(ErrorModel, EvaluateAggregatesLog)
{
    const ErrorRateModel model;
    VulnLog log;
    for (int i = 0; i < 1000; ++i)
        log.record(VulnClass::CopProtected4, 1000000);
    for (int i = 0; i < 60; ++i)
        log.record(VulnClass::Unprotected, 1000000);

    const ErrorRateReport report = model.evaluate(log);
    EXPECT_GT(report.baselineUnprotected, 0.0);
    // ~94% of reads protected => ~94% reduction (double-error terms are
    // negligible at these exposures).
    EXPECT_NEAR(report.reduction(), 1000.0 / 1060.0, 1e-3);
}

TEST(ErrorModel, AllProtectedIsNearlyPerfect)
{
    const ErrorRateModel model;
    VulnLog log;
    for (int i = 0; i < 1000; ++i)
        log.record(VulnClass::CopErUncompressed, 1e9);
    const ErrorRateReport report = model.evaluate(log);
    EXPECT_GT(report.reduction(), 0.999999);
}

TEST(ErrorModel, ScrubbingReducesProtectedUncorrected)
{
    ReliabilityParams scrubbed;
    scrubbed.scrubIntervalCycles = 1e9;
    const ErrorRateModel with(scrubbed);
    const ErrorRateModel without;

    const double long_residency = 1e12; // 1000 scrub intervals
    const double u_with =
        with.outcome(VulnClass::CopProtected4, long_residency)
            .uncorrected();
    const double u_without =
        without.outcome(VulnClass::CopProtected4, long_residency)
            .uncorrected();
    // T/S windows of S^2 risk vs one window of T^2 risk: factor ~ S/T.
    EXPECT_NEAR(u_without / u_with, 1000.0, 1.0);
}

TEST(ErrorModel, ScrubbingDoesNotHelpUnprotectedData)
{
    ReliabilityParams scrubbed;
    scrubbed.scrubIntervalCycles = 1e6;
    const ErrorRateModel with(scrubbed);
    const ErrorRateModel without;
    const double t = 1e12;
    EXPECT_DOUBLE_EQ(
        with.outcome(VulnClass::Unprotected, t).silent,
        without.outcome(VulnClass::Unprotected, t).silent);
}

TEST(ErrorModel, ScrubbingNoEffectOnShortResidency)
{
    ReliabilityParams scrubbed;
    scrubbed.scrubIntervalCycles = 1e9;
    const ErrorRateModel with(scrubbed);
    const ErrorRateModel without;
    const double t = 1e8; // below the interval
    EXPECT_DOUBLE_EQ(
        with.outcome(VulnClass::CopProtected4, t).uncorrected(),
        without.outcome(VulnClass::CopProtected4, t).uncorrected());
}

// ---------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------

TEST(FaultInjector, CopSingleBitAlwaysCorrected)
{
    const CopCodec codec(CopConfig::fourByte());
    FaultInjector inj(1);
    Rng rng(2);
    const CacheBlock data = testblocks::similarWords(rng);
    const InjectionOutcome out = inj.injectCop(codec, data, 1, 2000);
    EXPECT_EQ(out.corrected, out.trials);
    EXPECT_EQ(out.silent + out.detected, 0u);
}

TEST(FaultInjector, CopDoubleBitSplitsDetectedAndSilent)
{
    // Two flips: same code word (p=~1/4) -> detected; different words
    // -> silent (the paper's documented 4-byte weakness).
    const CopCodec codec(CopConfig::fourByte());
    FaultInjector inj(3);
    Rng rng(4);
    const CacheBlock data = testblocks::similarWords(rng);
    const InjectionOutcome out = inj.injectCop(codec, data, 2, 4000);
    EXPECT_EQ(out.corrected, 0u);
    const double detected_frac =
        static_cast<double>(out.detected) / out.trials;
    EXPECT_NEAR(detected_frac, 127.0 / 511.0, 0.03);
    // Both flips landing in one word's *check bits* damage nothing
    // (benign); that happens for ~0.09% of pairs. Everything else is
    // lost one way or the other.
    EXPECT_GE(out.silent + out.detected, out.trials * 99 / 100);
    EXPECT_EQ(out.silent + out.detected + out.benign, out.trials);
}

TEST(FaultInjector, Cop8DoubleBitMostlyCorrected)
{
    const CopCodec codec(CopConfig::eightByte());
    FaultInjector inj(5);
    Rng rng(6);
    const CacheBlock data = testblocks::similarWords(rng);
    const InjectionOutcome out = inj.injectCop(codec, data, 2, 4000);
    // Different words (prob 448/511) -> corrected.
    const double corrected_frac =
        static_cast<double>(out.corrected) / out.trials;
    EXPECT_NEAR(corrected_frac, 448.0 / 511.0, 0.03);
    EXPECT_EQ(out.silent, 0u);
}

TEST(FaultInjector, CopIncompressibleSingleBitIsSilent)
{
    // Raw (unprotected) blocks under plain COP: any flip is SDC.
    const CopCodec codec(CopConfig::fourByte());
    FaultInjector inj(7);
    Rng rng(8);
    CacheBlock data = testblocks::random(rng);
    while (codec.encode(data).status != EncodeStatus::Unprotected)
        data = testblocks::random(rng);
    const InjectionOutcome out = inj.injectCop(codec, data, 1, 1000);
    EXPECT_EQ(out.silent, out.trials);
}

TEST(FaultInjector, CopErSingleBitAlwaysRecovered)
{
    const CopCodec codec(CopConfig::fourByte());
    const CoperCodec coper(codec);
    FaultInjector inj(9);
    Rng rng(10);
    CacheBlock data = testblocks::random(rng);
    while (codec.encode(data).status != EncodeStatus::Unprotected)
        data = testblocks::random(rng);
    const InjectionOutcome out = inj.injectCopEr(coper, data, 1, 2000);
    EXPECT_EQ(out.silent, 0u);
    EXPECT_EQ(out.detected, 0u);
    EXPECT_EQ(out.corrected, out.trials);
}

TEST(FaultInjector, CopErDoubleBitDetectedNotSilent)
{
    const CopCodec codec(CopConfig::fourByte());
    const CoperCodec coper(codec);
    FaultInjector inj(11);
    Rng rng(12);
    CacheBlock data = testblocks::random(rng);
    while (codec.encode(data).status != EncodeStatus::Unprotected)
        data = testblocks::random(rng);
    const InjectionOutcome out = inj.injectCopEr(coper, data, 2, 2000);
    // The wide code detects double errors; silent corruption requires
    // >= 3 valid code words to appear by chance (~never).
    EXPECT_EQ(out.silent, 0u);
    EXPECT_GT(out.detected, 0u);
}

TEST(FaultInjector, EccDimmSingleCorrectedDoubleDetected)
{
    FaultInjector inj(13);
    Rng rng(14);
    const CacheBlock data = testblocks::random(rng);
    const InjectionOutcome one = inj.injectEccDimm(data, 1, 2000);
    EXPECT_EQ(one.corrected, one.trials);
    const InjectionOutcome two = inj.injectEccDimm(data, 2, 4000);
    EXPECT_EQ(two.silent, 0u);
    // Same word (prob ~71/575) -> detected; else both corrected.
    const double detected_frac =
        static_cast<double>(two.detected) / two.trials;
    EXPECT_NEAR(detected_frac, 71.0 / 575.0, 0.03);
}

TEST(FaultInjector, UnprotectedAnyFlipIsSilent)
{
    FaultInjector inj(15);
    Rng rng(16);
    const CacheBlock data = testblocks::random(rng);
    EXPECT_EQ(inj.injectUnprotected(data, 1, 100).silent, 100u);
    EXPECT_EQ(inj.injectUnprotected(data, 0, 100).benign, 100u);
}

TEST(FaultInjector, PatternZeroFlipsIsBenign)
{
    const CopCodec codec(CopConfig::fourByte());
    FaultInjector inj(17);
    Rng rng(18);
    const CacheBlock data = testblocks::similarWords(rng);
    const auto none = [](Rng &, std::vector<unsigned> &out) {
        out.clear();
    };
    const InjectionOutcome out =
        inj.injectCopPattern(codec, data, none, 100);
    EXPECT_EQ(out.benign, out.trials);
}

TEST(FaultInjector, PatternDuplicatePositionsCancel)
{
    // A generator may emit the same position twice; the two XORs
    // cancel and the stored image is untouched.
    const CopCodec codec(CopConfig::fourByte());
    FaultInjector inj(19);
    Rng rng(20);
    const CacheBlock data = testblocks::similarWords(rng);
    const auto dup = [](Rng &, std::vector<unsigned> &out) {
        out.assign({37, 37});
    };
    const InjectionOutcome out =
        inj.injectCopPattern(codec, data, dup, 100);
    EXPECT_EQ(out.benign, out.trials);
}

TEST(FaultInjector, PatternFlipPastImageDies)
{
    const CopCodec codec(CopConfig::fourByte());
    FaultInjector inj(21);
    Rng rng(22);
    const CacheBlock data = testblocks::similarWords(rng);
    const auto oob = [](Rng &, std::vector<unsigned> &out) {
        out.assign({kBlockBits});
    };
    EXPECT_DEATH(inj.injectCopPattern(codec, data, oob, 1),
                 "outside the 512-bit stored image");
    EXPECT_DEATH(inj.injectEccDimmPattern(data, oob, 1),
                 "outside the 512-bit stored image");
}

TEST(ErrorModel, ConditionalOutcomeMatchesGeometry)
{
    using M = ErrorRateModel;
    // Zero flips: nothing happened.
    EXPECT_DOUBLE_EQ(
        M::conditionalOutcome(VulnClass::CopProtected4, 0).benign, 1.0);
    // Unprotected data: every flip count is silent.
    EXPECT_DOUBLE_EQ(
        M::conditionalOutcome(VulnClass::Unprotected, 1).silent, 1.0);
    EXPECT_DOUBLE_EQ(
        M::conditionalOutcome(VulnClass::Unprotected, 2).silent, 1.0);
    // Singles are corrected by every protected class.
    EXPECT_DOUBLE_EQ(
        M::conditionalOutcome(VulnClass::EccDimm, 1).corrected, 1.0);
    EXPECT_DOUBLE_EQ(
        M::conditionalOutcome(VulnClass::CopProtected4, 1).corrected,
        1.0);
    // Doubles split by word geometry (cross-checked against the
    // Monte-Carlo fractions above).
    const ConditionalOutcome cop4 =
        M::conditionalOutcome(VulnClass::CopProtected4, 2);
    EXPECT_NEAR(cop4.detected, 127.0 / 511.0, 1e-12);
    EXPECT_NEAR(cop4.silent, 1.0 - 127.0 / 511.0, 1e-12);
    const ConditionalOutcome dimm =
        M::conditionalOutcome(VulnClass::EccDimm, 2);
    EXPECT_NEAR(dimm.detected, 71.0 / 575.0, 1e-12);
    EXPECT_NEAR(dimm.corrected, 1.0 - 71.0 / 575.0, 1e-12);
    const ConditionalOutcome cop8 =
        M::conditionalOutcome(VulnClass::CopProtected8, 2);
    EXPECT_NEAR(cop8.detected, 63.0 / 511.0, 1e-12);
    // One wide word: every double is detected.
    EXPECT_DOUBLE_EQ(
        M::conditionalOutcome(VulnClass::WideCode, 2).detected, 1.0);
    // Three-plus flips fall back to the seeded Monte-Carlo estimate: a
    // proper distribution, deterministic across calls, and a triple in
    // one 72-bit DIMM word can never be silently corrected away.
    const ConditionalOutcome dimm3 =
        M::conditionalOutcome(VulnClass::EccDimm, 3);
    EXPECT_NEAR(dimm3.benign + dimm3.corrected + dimm3.detected +
                    dimm3.silent,
                1.0, 1e-12);
    EXPECT_GT(dimm3.detected, 0.0);
    EXPECT_DOUBLE_EQ(dimm3.detected,
                     M::conditionalOutcome(VulnClass::EccDimm, 3).detected);
    // A wide-code triple always has a nonzero (odd-weight) syndrome:
    // never benign, and the miscorrection path makes some fraction
    // silent rather than detected.
    const ConditionalOutcome wide3 =
        M::conditionalOutcome(VulnClass::WideCode, 3);
    EXPECT_DOUBLE_EQ(wide3.benign, 0.0);
    EXPECT_GT(wide3.detected, 0.0);
    EXPECT_GT(wide3.silent, 0.0);
}

TEST(FaultInjector, MonteCarloMatchesAnalyticDoubleErrorSplit)
{
    // Cross-validation: the analytic CopProtected4 detected/silent
    // split must match injection. Analytic: detected fraction =
    // same-word pairs / all pairs = (4 * C(128,2)) / C(512,2).
    const ErrorRateModel model;
    const double cycles = 1e12;
    const ExposureOutcome o =
        model.outcome(VulnClass::CopProtected4, cycles);
    const double analytic_detected_frac =
        o.detected / (o.detected + o.silent);
    EXPECT_NEAR(analytic_detected_frac, 127.0 / 511.0, 1e-6);
}

} // namespace
} // namespace cop
