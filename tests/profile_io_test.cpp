/**
 * @file
 * Tests for the textual workload-profile format: parsing, validation,
 * normalisation, and write/parse round trips against the built-in
 * registry.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "workloads/profile_io.hpp"
#include "workloads/trace_gen.hpp"

namespace cop {
namespace {

constexpr const char *kSample = R"(
# a custom database-like workload
name = mydb
suite = specint
memory_intensive = 1
mix.pointer = 0.4
mix.int32 = 0.3
mix.random = 0.3
perfect_ipc = 1.2
l3_apki = 18
mlp = 4
write_fraction = 0.35
footprint_mb = 192
stream_fraction = 0.2
gen.int_magnitude_bits = 20
)";

TEST(ProfileIo, ParsesSample)
{
    std::istringstream in(kSample);
    const WorkloadProfile p = parseProfile(in);
    EXPECT_EQ(p.name, "mydb");
    EXPECT_EQ(p.suite, Suite::SpecInt);
    EXPECT_TRUE(p.memoryIntensive);
    EXPECT_NEAR(p.mix.of(BlockCategory::Pointer), 0.4, 1e-9);
    EXPECT_NEAR(p.mix.of(BlockCategory::SmallInt32), 0.3, 1e-9);
    EXPECT_DOUBLE_EQ(p.perfectIpc, 1.2);
    EXPECT_DOUBLE_EQ(p.l3Apki, 18.0);
    EXPECT_EQ(p.mlp, 4u);
    EXPECT_EQ(p.footprintBlocks, 192u * ((1 << 20) / kBlockBytes));
    EXPECT_EQ(p.gen.intMagnitudeBits, 20u);
    EXPECT_FALSE(p.sharedFootprint); // specint default
}

TEST(ProfileIo, NormalisesMix)
{
    std::istringstream in("name = x\nmix.zero = 2\nmix.random = 2\n");
    const WorkloadProfile p = parseProfile(in);
    EXPECT_NEAR(p.mix.of(BlockCategory::Zero), 0.5, 1e-9);
    EXPECT_NEAR(p.mix.of(BlockCategory::Random), 0.5, 1e-9);
}

TEST(ProfileIo, ParsecDefaultsToSharedFootprint)
{
    std::istringstream in("name = x\nsuite = parsec\nmix.zero = 1\n");
    EXPECT_TRUE(parseProfile(in).sharedFootprint);
    std::istringstream in2(
        "name = x\nsuite = parsec\nmix.zero = 1\nshared_footprint = 0\n");
    EXPECT_FALSE(parseProfile(in2).sharedFootprint);
}

TEST(ProfileIo, RejectsUnknownKey)
{
    std::istringstream in("name = x\nmix.zero = 1\nbogus_key = 3\n");
    EXPECT_DEATH(parseProfile(in), "unknown profile key");
}

TEST(ProfileIo, RejectsUnknownCategory)
{
    std::istringstream in("name = x\nmix.quantum = 1\n");
    EXPECT_DEATH(parseProfile(in), "unknown block category");
}

TEST(ProfileIo, RejectsMissingName)
{
    std::istringstream in("mix.zero = 1\n");
    EXPECT_DEATH(parseProfile(in), "missing a name");
}

TEST(ProfileIo, RejectsEmptyMix)
{
    std::istringstream in("name = x\nperfect_ipc = 1\n");
    EXPECT_DEATH(parseProfile(in), "no mix");
}

TEST(ProfileIo, RejectsBadNumber)
{
    std::istringstream in("name = x\nmix.zero = 1\nperfect_ipc = fast\n");
    EXPECT_DEATH(parseProfile(in), "bad numeric value");
}

TEST(ProfileIo, WriteParseRoundTripsRegistry)
{
    for (const auto &original : WorkloadRegistry::all()) {
        std::stringstream buf;
        writeProfile(original, buf);
        const WorkloadProfile parsed = parseProfile(buf);
        EXPECT_EQ(parsed.name, original.name);
        EXPECT_EQ(parsed.suite, original.suite);
        EXPECT_EQ(parsed.memoryIntensive, original.memoryIntensive);
        EXPECT_EQ(parsed.mlp, original.mlp);
        EXPECT_EQ(parsed.sharedFootprint, original.sharedFootprint);
        EXPECT_NEAR(parsed.writeFraction, original.writeFraction, 1e-6);
        EXPECT_NEAR(parsed.streamFraction, original.streamFraction, 1e-6);
        for (unsigned c = 0; c < kBlockCategories; ++c) {
            EXPECT_NEAR(parsed.mix.weight[c], original.mix.weight[c],
                        1e-6)
                << original.name << " category " << c;
        }
        EXPECT_EQ(parsed.gen.intMagnitudeBits,
                  original.gen.intMagnitudeBits);
        EXPECT_EQ(parsed.gen.fpExponentSpread,
                  original.gen.fpExponentSpread);
    }
}

TEST(ProfileIo, ParsedProfileDrivesGenerators)
{
    std::istringstream in(kSample);
    const WorkloadProfile p = parseProfile(in);
    const BlockContentPool pool(p);
    const auto blocks = pool.sample(500, 3);
    EXPECT_EQ(blocks.size(), 500u);
    TraceGenerator gen(p, 0);
    const Epoch e = gen.next();
    EXPECT_GT(e.instructions, 0u);
}

} // namespace
} // namespace cop
