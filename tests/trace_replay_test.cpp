/**
 * @file
 * The replay determinism contract (DESIGN.md §9): feeding a captured
 * trace back through TraceReplayGenerator under the profile that
 * captured it produces results JSON byte-identical to the synthetic
 * run that the capture recorded — for every controller kind, serial
 * and sharded, and for every trace encoding. Also covers the replay
 * conservation counters and the exhaustion guard.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "sim/trace_io.hpp"
#include "trace/gzip_source.hpp"
#include "trace/replay.hpp"
#include "trace/text_source.hpp"

namespace cop {
namespace {

constexpr ControllerKind kAllKinds[] = {
    ControllerKind::Unprotected, ControllerKind::EccDimm,
    ControllerKind::EccRegion,   ControllerKind::Cop4,
    ControllerKind::Cop8,        ControllerKind::CopEr,
    ControllerKind::CopErNaive,
};

constexpr unsigned kCores = 2;
constexpr u64 kEpochs = 400;

SystemConfig
smallConfig(ControllerKind kind)
{
    SystemConfig cfg;
    cfg.cores = kCores;
    cfg.kind = kind;
    cfg.epochsPerCore = kEpochs;
    cfg.llc = CacheConfig{256ULL << 10, 8, 34};
    cfg.verifyData = true;
    return cfg;
}

std::string
resultsJson(const SystemResults &r)
{
    std::string out;
    appendResultsJson(out, r);
    return out;
}

std::string
runJson(const WorkloadProfile &profile, SystemConfig cfg)
{
    System sys(profile, cfg);
    return resultsJson(sys.run());
}

/**
 * Capture per-core binary traces for @p profile under a unique
 * @p stem, returning the per-core paths.
 */
std::vector<std::string>
captureCores(const WorkloadProfile &profile, const std::string &stem)
{
    std::vector<std::string> paths;
    for (unsigned c = 0; c < kCores; ++c) {
        const std::string path = ::testing::TempDir() + stem + ".c" +
                                 std::to_string(c) + ".coptrc";
        std::ofstream out(path, std::ios::binary);
        EXPECT_TRUE(out.is_open());
        captureTrace(profile, c, kEpochs, out);
        paths.push_back(path);
    }
    return paths;
}

/** Sum every occurrence of `"key":<int>` in @p text. */
u64
sumOf(const std::string &text, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    u64 total = 0;
    size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
        pos += needle.size();
        total += std::strtoull(text.c_str() + pos, nullptr, 10);
    }
    return total;
}

TEST(TraceReplay, MatchesSyntheticRunForEveryScheme)
{
    const auto &profile = WorkloadRegistry::byName("gcc");
    const auto paths = captureCores(profile, "replay_all_schemes");
    for (const ControllerKind kind : kAllKinds) {
        const SystemConfig cfg = smallConfig(kind);
        SystemConfig replay = cfg;
        replay.epochSource = makeTraceReplayFactory(profile, paths);
        EXPECT_EQ(runJson(profile, cfg), runJson(profile, replay))
            << controllerKindName(kind)
            << ": replay diverged from the synthetic run";
    }
}

TEST(TraceReplay, ShardedReplayMatchesSerialReplay)
{
    const auto &profile = WorkloadRegistry::byName("mcf");
    const auto paths = captureCores(profile, "replay_sharded");
    for (const ControllerKind kind :
         {ControllerKind::Cop4, ControllerKind::CopEr}) {
        SystemConfig serial = smallConfig(kind);
        serial.epochSource = makeTraceReplayFactory(profile, paths);
        SystemConfig sharded = serial;
        serial.simThreads = 1;
        sharded.simThreads = 3;
        EXPECT_EQ(runJson(profile, serial), runJson(profile, sharded))
            << controllerKindName(kind)
            << ": sharded replay diverged from serial replay";
    }
}

TEST(TraceReplay, TextAndGzipReplaysMatchBinary)
{
    const auto &profile = WorkloadRegistry::byName("gcc");
    const auto bin = captureCores(profile, "replay_encodings");

    std::vector<std::string> text;
    std::vector<std::string> gz;
    for (const std::string &path : bin) {
        const std::string text_path = path + ".txt";
        {
            const auto src = openTraceSource(path);
            std::ofstream out(text_path);
            writeTextTrace(*src, out);
        }
        text.push_back(text_path);
        if (gzipSupported()) {
            const std::string gz_path = path + ".gz";
            const auto src = openTraceSource(path);
            auto sink = std::make_unique<std::ofstream>(
                gz_path, std::ios::binary);
            {
                const auto out = makeGzipOstream(std::move(sink));
                TraceWriter writer(*out, src->declaredEpochs());
                Epoch epoch;
                while (src->next(epoch))
                    writer.write(epoch);
                writer.finish();
            }
            gz.push_back(gz_path);
        }
    }

    SystemConfig cfg = smallConfig(ControllerKind::Cop4);
    cfg.epochSource = makeTraceReplayFactory(profile, bin);
    const std::string reference = runJson(profile, cfg);

    cfg.epochSource = makeTraceReplayFactory(profile, text);
    EXPECT_EQ(reference, runJson(profile, cfg))
        << "text replay diverged from binary replay";
    if (gzipSupported()) {
        cfg.epochSource = makeTraceReplayFactory(profile, gz);
        EXPECT_EQ(reference, runJson(profile, cfg))
            << "gzip replay diverged from binary replay";
    }
}

TEST(TraceReplay, ConservationCountersBalance)
{
    // Every epoch and access the sources hand out must be consumed by
    // the simulation: trace.epochs_read == trace.epochs_replayed and
    // likewise for accesses, summed over the stats-trace snapshots.
    const auto &profile = WorkloadRegistry::byName("gcc");
    const auto paths = captureCores(profile, "replay_conservation");
    SystemConfig cfg = smallConfig(ControllerKind::Cop4);
    cfg.epochSource = makeTraceReplayFactory(profile, paths);
    cfg.traceStatsPath =
        ::testing::TempDir() + "replay_conservation.jsonl";
    cfg.traceStatsEpochInterval = 128;
    (void)runJson(profile, cfg);

    std::ifstream in(cfg.traceStatsPath);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string trace = buf.str();
    ASSERT_FALSE(trace.empty());
    const u64 epochs_read = sumOf(trace, "trace.epochs_read");
    const u64 epochs_replayed = sumOf(trace, "trace.epochs_replayed");
    const u64 accesses_read = sumOf(trace, "trace.accesses_read");
    const u64 accesses_replayed =
        sumOf(trace, "trace.accesses_replayed");
    EXPECT_EQ(epochs_read, kCores * kEpochs);
    EXPECT_EQ(epochs_read, epochs_replayed);
    EXPECT_GT(accesses_read, 0u);
    EXPECT_EQ(accesses_read, accesses_replayed);
}

TEST(TraceReplay, SyntheticRunHasNoTraceCounters)
{
    // The trace.* gauges only exist on replay runs; a synthetic run's
    // stats trace must not mention them (byte-identity with builds
    // that predate the ingestion subsystem).
    const auto &profile = WorkloadRegistry::byName("gcc");
    SystemConfig cfg = smallConfig(ControllerKind::Cop4);
    cfg.traceStatsPath =
        ::testing::TempDir() + "replay_no_counters.jsonl";
    cfg.traceStatsEpochInterval = 128;
    (void)runJson(profile, cfg);
    std::ifstream in(cfg.traceStatsPath);
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str().find("trace."), std::string::npos);
}

TEST(TraceReplayDeath, ExhaustedTraceIsFatal)
{
    const auto &profile = WorkloadRegistry::byName("gcc");
    const auto paths = captureCores(profile, "replay_exhausted");
    SystemConfig cfg = smallConfig(ControllerKind::Unprotected);
    cfg.epochsPerCore = kEpochs + 1; // one more than the trace holds
    cfg.epochSource = makeTraceReplayFactory(profile, paths);
    EXPECT_DEATH({ (void)runJson(profile, cfg); }, "trace exhausted");
}

TEST(TraceReplayDeath, MissingPerCoreTraceIsFatal)
{
    const auto &profile = WorkloadRegistry::byName("gcc");
    const auto paths = captureCores(profile, "replay_missing_core");
    SystemConfig cfg = smallConfig(ControllerKind::Unprotected);
    cfg.cores = kCores + 1; // more cores than trace files
    cfg.epochSource = makeTraceReplayFactory(profile, paths);
    EXPECT_DEATH({ (void)runJson(profile, cfg); },
                 "one --trace-in per core");
}

TEST(TraceReplay, ReplayEpochCountReadsTheHeader)
{
    const auto &profile = WorkloadRegistry::byName("gcc");
    const auto paths = captureCores(profile, "replay_count");
    EXPECT_EQ(replayEpochCount(paths[0]), kEpochs);
}

} // namespace
} // namespace cop
