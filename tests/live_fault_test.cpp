/**
 * @file
 * Tests for live in-simulation fault injection and the error-recovery
 * pipeline: per-variant detection through the real decoders
 * (scrub-on-read, bounded retry, page retirement), the Poisson /
 * campaign / patrol-scrub event sources of LiveInjector, and
 * system-level acceptance runs where verifyData acts as the
 * ground-truth SDC oracle.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "mem/coper_controller.hpp"
#include "mem/coper_naive_controller.hpp"
#include "reliability/error_model.hpp"
#include "sim/runner.hpp"
#include "workloads/trace_gen.hpp"

namespace cop {
namespace {

/** Fixture with a quiet DRAM and an mcf-like content pool. */
class LiveFaultTest : public ::testing::Test
{
  protected:
    LiveFaultTest()
        : profile(WorkloadRegistry::byName("mcf")), pool(profile)
    {
        DramConfig cfg;
        cfg.refreshEnabled = false;
        dram = std::make_unique<DramSystem>(cfg);
    }

    MemoryController::ContentSource
    source()
    {
        return [this](Addr a) -> const CacheBlock & {
            return pool.blockForRef(a);
        };
    }

    /** First address whose fill under @p ctrl is compressed (or not). */
    Addr
    findAddr(MemoryController &ctrl, bool want_uncompressed)
    {
        for (Addr a = 0; a < 5000 * kBlockBytes; a += kBlockBytes) {
            const MemReadResult r = ctrl.read(a, 0);
            if (r.wasUncompressed == want_uncompressed && !r.aliasPinned)
                return a;
        }
        ADD_FAILURE() << "no suitable block in footprint";
        return 0;
    }

    const WorkloadProfile &profile;
    BlockContentPool pool;
    std::unique_ptr<DramSystem> dram;
};

TEST_F(LiveFaultTest, CopSingleFlipCorrectedAndScrubbedOnRead)
{
    CopController ctrl(*dram, source());
    ctrl.enableFaultInjection(RecoveryConfig{});
    const Addr addr = findAddr(ctrl, false);

    EXPECT_TRUE(ctrl.injectFault(addr, {5}, 100, false));
    const MemReadResult r = ctrl.read(addr, 200);
    EXPECT_EQ(r.data, pool.blockFor(addr));
    EXPECT_TRUE(r.correctedError);
    EXPECT_TRUE(r.faultedBlock);
    EXPECT_FALSE(r.detectedUncorrectable);
    EXPECT_EQ(ctrl.errorLog().corrected, 1u);
    EXPECT_EQ(ctrl.errorLog().scrubOnReadWrites, 1u);
    EXPECT_EQ(ctrl.errorLog().of(VulnClass::CopProtected4).corrected,
              1u);

    // Scrub-on-read restored the clean image: no second correction.
    const MemReadResult again = ctrl.read(addr, 300);
    EXPECT_FALSE(again.correctedError);
    EXPECT_FALSE(again.faultedBlock);
    EXPECT_EQ(ctrl.errorLog().corrected, 1u);
}

TEST_F(LiveFaultTest, CopSameWordDoubleRetriesThenRecovers)
{
    CopController ctrl(*dram, source());
    ctrl.enableFaultInjection(RecoveryConfig{});
    const Addr addr = findAddr(ctrl, false);

    // Two flips in one (128,120) word: detected-uncorrectable.
    EXPECT_TRUE(ctrl.injectFault(addr, {0, 1}, 100, false));
    const MemReadResult r = ctrl.read(addr, 200);
    EXPECT_TRUE(r.detectedUncorrectable);
    EXPECT_EQ(r.retries, 2u); // default maxReadRetries
    // Recovery replaced the fill with the functional truth.
    EXPECT_EQ(r.data, pool.blockFor(addr));
    const ErrorLog &log = ctrl.errorLog();
    EXPECT_EQ(log.detected, 1u);
    EXPECT_EQ(log.readRetries, 2u);
    EXPECT_GT(log.retryDramReads, 0u);
    EXPECT_EQ(log.recoveryRewrites, 1u);
    ASSERT_FALSE(log.events.empty());
    const ErrorEvent &ev = log.events.back();
    EXPECT_EQ(ev.kind, ErrorEventKind::Detected);
    EXPECT_EQ(ev.addr, addr);
    EXPECT_EQ(ev.cycle, 200u);
    EXPECT_EQ(ev.retries, 2u);

    // The rewrite healed the image.
    const MemReadResult again = ctrl.read(addr, 300);
    EXPECT_FALSE(again.detectedUncorrectable);
    EXPECT_EQ(again.data, pool.blockFor(addr));
    EXPECT_EQ(ctrl.errorLog().detected, 1u);
}

TEST_F(LiveFaultTest, PersistentFaultRetiresPageThenAccessesSucceed)
{
    EccDimmController ctrl(*dram, source());
    RecoveryConfig cfg;
    cfg.retirePageThreshold = 3;
    ctrl.enableFaultInjection(cfg);
    const Addr addr = 17 * kBlockBytes;
    ctrl.read(addr, 0); // materialise the image

    // A stuck double in one (72,64) word: every read is a DUE and the
    // recovery rewrite re-acquires the fault, until retirement.
    EXPECT_TRUE(ctrl.injectFault(addr, {0, 2}, 100, true));
    for (unsigned i = 1; i <= 3; ++i) {
        const MemReadResult r = ctrl.read(addr, 100 + i * 100);
        EXPECT_TRUE(r.detectedUncorrectable) << "read " << i;
        EXPECT_EQ(ctrl.errorLog().detected, i);
    }
    EXPECT_TRUE(ctrl.pageRetired(addr));
    EXPECT_EQ(ctrl.errorLog().retiredPages, 1u);

    // The page was remapped to a healthy frame: accesses now succeed.
    const MemReadResult after = ctrl.read(addr, 1000);
    EXPECT_FALSE(after.detectedUncorrectable);
    EXPECT_FALSE(after.faultedBlock);
    EXPECT_EQ(after.data, pool.blockFor(addr));
    EXPECT_EQ(ctrl.errorLog().detected, 3u);

    // Later strikes on the retired page are dropped.
    EXPECT_FALSE(ctrl.injectFault(addr, {7}, 2000, false));
    EXPECT_EQ(ctrl.errorLog().faultsOnRetiredPages, 1u);
}

TEST_F(LiveFaultTest, EccDimmCheckBitStrikesAreCorrected)
{
    EccDimmController ctrl(*dram, source());
    ctrl.enableFaultInjection(RecoveryConfig{});
    const Addr addr = 3 * kBlockBytes;
    ctrl.read(addr, 0);
    EXPECT_EQ(ctrl.storedBits(addr), 576u);

    // Bit 512 is the first check bit of word 0: a single, corrected.
    EXPECT_TRUE(ctrl.injectFault(addr, {512}, 100, false));
    const MemReadResult r = ctrl.read(addr, 200);
    EXPECT_TRUE(r.correctedError);
    EXPECT_FALSE(r.detectedUncorrectable);
    EXPECT_EQ(r.data, pool.blockFor(addr));

    // A data bit + a check bit of the same word: an uncorrectable pair.
    EXPECT_TRUE(ctrl.injectFault(addr, {0, 512}, 300, false));
    const MemReadResult due = ctrl.read(addr, 400);
    EXPECT_TRUE(due.detectedUncorrectable);
}

TEST_F(LiveFaultTest, EccRegionWideCodeCoversCheckSidecar)
{
    EccRegionController ctrl(*dram, source(), 64 << 10);
    ctrl.enableFaultInjection(RecoveryConfig{});
    const Addr addr = 11 * kBlockBytes;
    ctrl.read(addr, 0);
    EXPECT_EQ(ctrl.storedBits(addr), kBlockBits + 11);

    // Single data-bit flip: the (523,512) code corrects it.
    EXPECT_TRUE(ctrl.injectFault(addr, {17}, 100, false));
    const MemReadResult one = ctrl.read(addr, 200);
    EXPECT_TRUE(one.correctedError);
    EXPECT_EQ(one.data, pool.blockFor(addr));

    // Single check-bit flip (bit 512): also corrected, data intact.
    EXPECT_TRUE(ctrl.injectFault(addr, {512}, 300, false));
    const MemReadResult chk = ctrl.read(addr, 400);
    EXPECT_TRUE(chk.correctedError);
    EXPECT_EQ(chk.data, pool.blockFor(addr));

    // A double in the wide word: detected.
    EXPECT_TRUE(ctrl.injectFault(addr, {40, 41}, 500, false));
    const MemReadResult due = ctrl.read(addr, 600);
    EXPECT_TRUE(due.detectedUncorrectable);
    EXPECT_EQ(due.data, pool.blockFor(addr)); // recovered from truth
}

TEST_F(LiveFaultTest, CopErEntryStrikesCoverValidBit)
{
    CopErController ctrl(*dram, source(), 4, 64 << 10);
    ctrl.enableFaultInjection(RecoveryConfig{});
    const Addr addr = findAddr(ctrl, true); // incompressible
    ASSERT_EQ(ctrl.storedBits(addr), kBlockBits + 46);

    // A displaced-data bit in the ECC-region entry: wide code corrects.
    EXPECT_TRUE(ctrl.injectFault(addr, {kBlockBits}, 100, false));
    const MemReadResult disp = ctrl.read(addr, 200);
    EXPECT_TRUE(disp.correctedError);
    EXPECT_EQ(disp.data, pool.blockFor(addr));

    // The valid bit (index 557): the entry vanishes, the pointer chase
    // fails, and the read is a detected loss recovered from truth.
    EXPECT_TRUE(ctrl.injectFault(addr, {kBlockBits + 45}, 300, false));
    const MemReadResult due = ctrl.read(addr, 400);
    EXPECT_TRUE(due.detectedUncorrectable);
    EXPECT_EQ(due.data, pool.blockFor(addr));
    // Recovery re-stored the block (fresh entry): reads are clean.
    const MemReadResult after = ctrl.read(addr, 500);
    EXPECT_FALSE(after.detectedUncorrectable);
    EXPECT_EQ(after.data, pool.blockFor(addr));
}

TEST_F(LiveFaultTest, UnprotectedFlipIsSilentCountedOnce)
{
    UnprotectedController ctrl(*dram, source());
    ctrl.enableFaultInjection(RecoveryConfig{});
    const Addr addr = 5 * kBlockBytes;
    ctrl.read(addr, 0);

    EXPECT_TRUE(ctrl.injectFault(addr, {9}, 100, false));
    const MemReadResult r = ctrl.read(addr, 200);
    EXPECT_FALSE(r.detectedUncorrectable);
    EXPECT_FALSE(r.correctedError);
    EXPECT_NE(r.data, pool.blockFor(addr)); // wrong, silently

    // The SDC oracle (System::handleMiss) reports the mismatch.
    ctrl.noteSilentFill(addr, r.fillClass, 200);
    EXPECT_EQ(ctrl.errorLog().silent, 1u);
    EXPECT_EQ(ctrl.errorLog().of(VulnClass::Unprotected).silent, 1u);

    // Re-reading the same corrupt image is not a second corruption.
    const MemReadResult again = ctrl.read(addr, 300);
    EXPECT_NE(again.data, pool.blockFor(addr));
    ctrl.noteSilentFill(addr, again.fillClass, 300);
    EXPECT_EQ(ctrl.errorLog().silent, 1u);
}

TEST_F(LiveFaultTest, SilentFillWithoutFaultStillPanics)
{
    // The oracle keeps catching genuine encoder bugs: a mismatch on a
    // block nobody injected into must abort, faults enabled or not.
    UnprotectedController ctrl(*dram, source());
    ctrl.enableFaultInjection(RecoveryConfig{});
    ctrl.read(0, 0);
    EXPECT_DEATH(ctrl.noteSilentFill(0, VulnClass::Unprotected, 100),
                 "no fault injected there");
}

TEST_F(LiveFaultTest, InjectFaultBitOutOfRangePanics)
{
    EccDimmController ctrl(*dram, source());
    ctrl.enableFaultInjection(RecoveryConfig{});
    ctrl.read(0, 0);
    EXPECT_DEATH(ctrl.injectFault(0, {600}, 100, false),
                 "out of range for a 576-bit stored image");
}

TEST_F(LiveFaultTest, StoredBitsFollowDecodeGeometry)
{
    CopErNaiveController naive(*dram, source(), 4, 64 << 10);
    naive.enableFaultInjection(RecoveryConfig{});
    const Addr comp = findAddr(naive, false);
    const Addr raw = findAddr(naive, true);
    EXPECT_EQ(naive.storedBits(comp), kBlockBits);
    EXPECT_EQ(naive.storedBits(raw), kBlockBits + 11);

    CopErController coper(*dram, source(), 4, 64 << 10);
    coper.enableFaultInjection(RecoveryConfig{});
    const Addr comp2 = findAddr(coper, false);
    EXPECT_EQ(coper.storedBits(comp2), kBlockBits);
}

// ---------------------------------------------------------------------
// LiveInjector event sources.
// ---------------------------------------------------------------------

TEST_F(LiveFaultTest, CampaignFaultsFireInCycleOrder)
{
    EccDimmController ctrl(*dram, source());
    ctrl.enableFaultInjection(RecoveryConfig{});
    ctrl.read(0, 0);
    ctrl.read(kBlockBytes, 0);

    FaultConfig cfg;
    cfg.enabled = true;
    cfg.campaign = {
        PlannedFault{500, kBlockBytes, {3}, false},
        PlannedFault{100, 0, {1}, false},
    };
    LiveInjector inj(cfg, ctrl, 0, 0);

    inj.advanceTo(99);
    EXPECT_EQ(ctrl.errorLog().faultEvents, 0u);
    inj.advanceTo(100);
    EXPECT_EQ(ctrl.errorLog().faultEvents, 1u);
    inj.advanceTo(10000);
    EXPECT_EQ(ctrl.errorLog().faultEvents, 2u);
    EXPECT_EQ(ctrl.errorLog().bitsFlipped, 2u);
}

TEST_F(LiveFaultTest, PoissonStreamIsDeterministic)
{
    auto run = [&]() {
        DramConfig dcfg;
        dcfg.refreshEnabled = false;
        DramSystem d(dcfg);
        UnprotectedController ctrl(d, source());
        ctrl.enableFaultInjection(RecoveryConfig{});
        for (Addr a = 0; a < 64 * kBlockBytes; a += kBlockBytes)
            ctrl.read(a, 0);
        FaultConfig cfg;
        cfg.enabled = true;
        cfg.eventsPerMegacycle = 5000.0;
        cfg.seed = 42;
        LiveInjector inj(cfg, ctrl, 64 * kBlockBytes, 7);
        inj.advanceTo(1000000);
        const ErrorLog &log = ctrl.errorLog();
        return std::pair<u64, u64>(log.faultEvents, log.bitsFlipped);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a, b);
    EXPECT_GT(a.first, 0u);
}

TEST_F(LiveFaultTest, PatrolScrubHealsBeforeDemandRead)
{
    EccDimmController ctrl(*dram, source());
    ctrl.enableFaultInjection(RecoveryConfig{});
    const Addr addr = 2 * kBlockBytes;
    ctrl.read(addr, 0);
    EXPECT_TRUE(ctrl.injectFault(addr, {8}, 100, false));

    FaultConfig cfg;
    cfg.enabled = true;
    cfg.scrubIntervalCycles = 1000;
    LiveInjector inj(cfg, ctrl, 0, 0);
    inj.advanceTo(100000); // many passes over the one stored image

    const ErrorLog &log = ctrl.errorLog();
    EXPECT_GT(log.scrubbedBlocks, 0u);
    EXPECT_GT(log.scrubReads, 0u);
    EXPECT_EQ(log.scrubCorrected, 1u);

    // The demand read finds a clean image: no correction, no event.
    const MemReadResult r = ctrl.read(addr, 200000);
    EXPECT_FALSE(r.correctedError);
    EXPECT_FALSE(r.faultedBlock);
    EXPECT_EQ(log.corrected, 0u);
}

// ---------------------------------------------------------------------
// System-level acceptance.
// ---------------------------------------------------------------------

/** Small-footprint copy of a profile so Poisson strikes land warm. */
WorkloadProfile
warmProfile(const char *name)
{
    WorkloadProfile p = WorkloadRegistry::byName(name);
    p.footprintBlocks = 1u << 12;
    return p;
}

SystemConfig
faultyConfig(ControllerKind kind, unsigned flips, double rate,
             Cycle scrub_interval = 0)
{
    SystemConfig cfg;
    cfg.cores = 2;
    cfg.kind = kind;
    cfg.epochsPerCore = 1200;
    cfg.llc = CacheConfig{64ULL << 10, 8, 34};
    cfg.verifyData = true;
    cfg.fault.enabled = true;
    cfg.fault.eventsPerMegacycle = rate;
    cfg.fault.flipsPerEvent = flips;
    cfg.fault.seed = 0xBEEF;
    cfg.fault.scrubIntervalCycles = scrub_interval;
    return cfg;
}

class LiveFaultKinds : public ::testing::TestWithParam<ControllerKind>
{
};

TEST_P(LiveFaultKinds, CompletesUnderFaultsWithOracleArmed)
{
    const WorkloadProfile profile = warmProfile("mcf");
    System sys(profile, faultyConfig(GetParam(), 2, 150.0));
    const SystemResults r = sys.run();
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.errors.faultEvents, 0u);
    // Every injected event was either observed at a fill, healed, or
    // never read again — but nothing aborted the run.
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, LiveFaultKinds,
    ::testing::Values(ControllerKind::Unprotected,
                      ControllerKind::EccDimm, ControllerKind::EccRegion,
                      ControllerKind::Cop4, ControllerKind::Cop8,
                      ControllerKind::CopEr, ControllerKind::CopErNaive),
    [](const ::testing::TestParamInfo<ControllerKind> &info) {
        std::string name = controllerKindName(info.param);
        std::erase_if(name, [](char c) { return !std::isalnum(c); });
        return name;
    });

TEST(LiveFaultSystem, ErrorLogDeterministicForFixedSeed)
{
    const WorkloadProfile profile = warmProfile("lbm");
    auto run = [&]() {
        System sys(profile, faultyConfig(ControllerKind::Cop4, 2, 150.0,
                                         500000));
        return sys.run();
    };
    const SystemResults a = run();
    const SystemResults b = run();
    std::string ja, jb;
    appendResultsJson(ja, a);
    appendResultsJson(jb, b);
    EXPECT_EQ(ja, jb);
    ASSERT_EQ(a.errors.events.size(), b.errors.events.size());
    for (size_t i = 0; i < a.errors.events.size(); ++i) {
        EXPECT_EQ(a.errors.events[i].cycle, b.errors.events[i].cycle);
        EXPECT_EQ(a.errors.events[i].addr, b.errors.events[i].addr);
        EXPECT_EQ(a.errors.events[i].kind, b.errors.events[i].kind);
    }
}

TEST(LiveFaultSystem, PatrolScrubberConsumesBandwidthAndCorrects)
{
    const WorkloadProfile profile = warmProfile("mcf");
    System sys(profile,
               faultyConfig(ControllerKind::EccDimm, 1, 400.0, 100000));
    const SystemResults r = sys.run();
    EXPECT_GT(r.errors.scrubbedBlocks, 0u);
    EXPECT_GT(r.errors.scrubReads, 0u);
    EXPECT_GT(r.errors.scrubCorrected, 0u);
    // Single-bit faults never become uncorrectable or silent.
    EXPECT_EQ(r.errors.detected, 0u);
    EXPECT_EQ(r.errors.silent, 0u);
}

TEST(LiveFaultSystem, Cop4TwoFlipOutcomesMatchConditionalModel)
{
    // Acceptance band: the measured silent share of uncorrected 2-flip
    // outcomes under COP-4B must sit within the analytic conditional
    // prediction band. Note the cross-word patterns that go silent are
    // misdecoded as raw, so the silent fills are logged under the raw
    // class — the split only makes sense at run level (same-word DUEs
    // land in CopProtected4, cross-word silents in Unprotected).
    WorkloadProfile profile = warmProfile("mcf");
    profile.footprintBlocks = 1u << 11;
    SystemConfig cfg = faultyConfig(ControllerKind::Cop4, 2, 1500.0);
    cfg.epochsPerCore = 8000;
    System sys(profile, cfg);
    const SystemResults r = sys.run();
    EXPECT_GT(r.errors.of(VulnClass::CopProtected4).detected, 0u);
    const u64 uncorrected = r.errors.detected + r.errors.silent;
    ASSERT_GE(uncorrected, 40u)
        << "campaign too small for a stable fraction";
    const double silent_frac = static_cast<double>(r.errors.silent) /
                               static_cast<double>(uncorrected);
    const ConditionalOutcome model =
        ErrorRateModel::conditionalOutcome(VulnClass::CopProtected4, 2);
    const double model_silent_frac =
        model.silent / (model.silent + model.detected);
    EXPECT_NEAR(silent_frac, model_silent_frac, 0.15);
}

} // namespace
} // namespace cop
