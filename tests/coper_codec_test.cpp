/**
 * @file
 * Tests for the COP-ER incompressible-block transformations (paper
 * Section 3.3): pointer embedding, entry construction, reconstruction,
 * and whole-block single-error correction through the (523,512) code.
 */

#include <gtest/gtest.h>

#include "core/coper_codec.hpp"
#include "test_blocks.hpp"

namespace cop {
namespace {

class CoperTest : public ::testing::Test
{
  protected:
    CoperTest() : codec(CopConfig::fourByte()), coper(codec) {}

    /** Encode an incompressible block into (stored, entry). */
    std::pair<CacheBlock, EccEntry>
    store(const CacheBlock &data, u32 idx)
    {
        const auto enc = coper.encodeIncompressible(data, idx);
        EXPECT_TRUE(enc.aliasFree);
        EccEntry entry;
        entry.valid = true;
        entry.displaced = enc.displaced;
        entry.check = enc.check;
        return {enc.stored, entry};
    }

    CopCodec codec;
    CoperCodec coper;
};

TEST_F(CoperTest, CleanRoundTrip)
{
    Rng rng(1);
    for (int iter = 0; iter < 200; ++iter) {
        const CacheBlock data = testblocks::random(rng);
        const u32 idx = static_cast<u32>(rng.below(1u << 28));
        auto [stored, entry] = store(data, idx);

        // Read path: pointer extraction...
        const auto ptr = coper.extractPointer(stored);
        ASSERT_TRUE(ptr.ecc.ok());
        ASSERT_EQ(ptr.entryIndex, idx);
        // ...then reconstruction.
        const auto rec = coper.reconstruct(stored, entry);
        ASSERT_TRUE(rec.blockEcc.ok());
        ASSERT_EQ(rec.data, data);
    }
}

TEST_F(CoperTest, StoredImageReadsAsUncompressed)
{
    Rng rng(2);
    const CacheBlock data = testblocks::random(rng);
    auto [stored, entry] = store(data, 1234);
    const auto dec = codec.decode(stored);
    EXPECT_FALSE(dec.compressed);
}

TEST_F(CoperTest, SingleBitErrorAnywhereInStoredBlockCorrected)
{
    Rng rng(3);
    const CacheBlock data = testblocks::random(rng);
    auto [stored, entry] = store(data, 0x0FEDCBA);

    for (unsigned bit = 0; bit < kBlockBits; ++bit) {
        CacheBlock damaged = stored;
        damaged.flipBit(bit);

        // Pointer first: SEC corrects flips inside the pointer field.
        const auto ptr = coper.extractPointer(damaged);
        ASSERT_NE(ptr.ecc.status, EccStatus::Uncorrectable) << bit;
        ASSERT_EQ(ptr.entryIndex, 0x0FEDCBAu) << bit;

        const auto rec = coper.reconstruct(damaged, entry);
        ASSERT_NE(rec.blockEcc.status, EccStatus::Uncorrectable) << bit;
        ASSERT_EQ(rec.data, data) << "bit " << bit;
    }
}

TEST_F(CoperTest, WideCheckMatchesManualEncoding)
{
    Rng rng(4);
    const CacheBlock data = testblocks::random(rng);
    const u16 check = CoperCodec::wideCheck(data);
    // Verify against the wide code directly.
    std::array<u8, 66> buf{};
    std::memcpy(buf.data(), data.data(), kBlockBytes);
    setBits(buf, 512, 11, check);
    EXPECT_TRUE(codes::wide523().isValidCodeword(buf));
}

TEST_F(CoperTest, DoubleErrorInBlockDetected)
{
    Rng rng(5);
    const CacheBlock data = testblocks::random(rng);
    auto [stored, entry] = store(data, 99);
    CacheBlock damaged = stored;
    // Two flips outside the pointer field (bits 40 and 300 are outside
    // the 9/9/8/8 scatter slices at offsets 0/128/256/384).
    damaged.flipBit(40);
    damaged.flipBit(300);
    const auto rec = coper.reconstruct(damaged, entry);
    EXPECT_TRUE(rec.blockEcc.uncorrectable());
}

TEST_F(CoperTest, RequiresFourByteConfig)
{
    const CopCodec eight(CopConfig::eightByte());
    EXPECT_DEATH({ CoperCodec c(eight); }, "4-byte");
}

TEST_F(CoperTest, DeAliasingByEntryReselection)
{
    // If a stored image aliases with one entry index, a different index
    // perturbs all four code words and (overwhelmingly) de-aliases it.
    // Aliases are ~2e-7, so we can't craft one from random data; instead
    // verify that different indices give different stored images that
    // all reconstruct correctly.
    Rng rng(6);
    const CacheBlock data = testblocks::random(rng);
    const auto a = coper.encodeIncompressible(data, 1);
    const auto b = coper.encodeIncompressible(data, 2);
    EXPECT_NE(a.stored, b.stored);
    EXPECT_TRUE(a.aliasFree);
    EXPECT_TRUE(b.aliasFree);

    EccEntry ea{true, a.displaced, a.check};
    EccEntry eb{true, b.displaced, b.check};
    EXPECT_EQ(coper.reconstruct(a.stored, ea).data, data);
    EXPECT_EQ(coper.reconstruct(b.stored, eb).data, data);
    // The displaced application data is identical regardless of index.
    EXPECT_EQ(a.displaced, b.displaced);
    EXPECT_EQ(a.check, b.check);
}

} // namespace
} // namespace cop
