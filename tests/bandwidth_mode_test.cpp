/**
 * @file
 * System-level contracts of the bandwidth-compression mode. The mode's
 * only legal effect is bus occupancy: with the beat floor forced to 8
 * every burst stays full-length, so a mode-enabled run must produce
 * byte-identical results JSON to a mode-disabled run — for every
 * controller kind, serially and under the parallel runner, with fault
 * injection, and with stats tracing. With the default floor the mode
 * must actually save beats on compressible workloads without touching
 * protection semantics.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/runner.hpp"
#include "sim/system.hpp"
#include "workloads/trace_gen.hpp"

namespace cop {
namespace {

constexpr ControllerKind kAllKinds[] = {
    ControllerKind::Unprotected, ControllerKind::EccDimm,
    ControllerKind::EccRegion,   ControllerKind::Cop4,
    ControllerKind::Cop8,        ControllerKind::CopEr,
    ControllerKind::CopErNaive,
};

SystemConfig
smallConfig(ControllerKind kind)
{
    SystemConfig cfg;
    cfg.cores = 2;
    cfg.kind = kind;
    cfg.epochsPerCore = 800;
    cfg.llc = CacheConfig{256ULL << 10, 8, 34};
    cfg.verifyData = true;
    return cfg;
}

SystemConfig
floorEightConfig(ControllerKind kind)
{
    SystemConfig cfg = smallConfig(kind);
    cfg.bandwidthCompression = true;
    cfg.bandwidthBeatFloor = 8; // every burst full-length, paths live
    return cfg;
}

std::string
resultsJson(const SystemResults &r)
{
    std::string out;
    appendResultsJson(out, r);
    return out;
}

TEST(BandwidthMode, FloorEightByteIdenticalForEveryScheme)
{
    // No blanking: the beats counters accrue 8 per access in both runs,
    // so even the new dram_bus_* fields must match bit-for-bit.
    const auto &profile = WorkloadRegistry::byName("gcc");
    for (const ControllerKind kind : kAllKinds) {
        System off(profile, smallConfig(kind));
        System on(profile, floorEightConfig(kind));
        EXPECT_EQ(resultsJson(off.run()), resultsJson(on.run()))
            << controllerKindName(kind)
            << ": floor-8 bandwidth mode diverged from mode-off";
    }
}

TEST(BandwidthMode, FloorEightByteIdenticalUnderParallelRunner)
{
    // The same identity must hold when the cells execute on the
    // parallel experiment runner — grid results are keyed by cell, not
    // completion order, so worker count cannot perturb them.
    const auto &profile = WorkloadRegistry::byName("mcf");
    std::vector<SystemConfig> cfgs;
    for (const ControllerKind kind :
         {ControllerKind::Cop4, ControllerKind::CopEr}) {
        cfgs.push_back(smallConfig(kind));
        cfgs.push_back(floorEightConfig(kind));
    }
    auto runAll = [&](bool serial) {
        RunnerOptions opts;
        opts.serial = serial;
        opts.jobs = serial ? 0 : 4;
        return runCollected<std::string>(
            cfgs.size(),
            [&](size_t i) {
                System sys(profile, cfgs[i]);
                return resultsJson(sys.run());
            },
            opts);
    };
    const std::vector<std::string> serial = runAll(true);
    const std::vector<std::string> parallel = runAll(false);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); i += 2) {
        EXPECT_EQ(serial[i], serial[i + 1]) << "serial cell " << i;
        EXPECT_EQ(parallel[i], parallel[i + 1]) << "parallel cell " << i;
        EXPECT_EQ(serial[i], parallel[i]) << "jobs changed cell " << i;
    }
}

TEST(BandwidthMode, FloorEightByteIdenticalUnderFaultInjection)
{
    const auto &profile = WorkloadRegistry::byName("mcf");
    auto faulty = [&](bool bandwidth) {
        SystemConfig cfg = bandwidth
                               ? floorEightConfig(ControllerKind::Cop4)
                               : smallConfig(ControllerKind::Cop4);
        cfg.fault.enabled = true;
        cfg.fault.eventsPerMegacycle = 20000.0;
        cfg.fault.flipsPerEvent = 2;
        cfg.fault.scrubIntervalCycles = 500000;
        return cfg;
    };
    System off(profile, faulty(false));
    System on(profile, faulty(true));
    const SystemResults roff = off.run();
    EXPECT_GT(roff.errors.faultEvents + roff.errors.coldFaults, 0u)
        << "campaign must inject";
    EXPECT_EQ(resultsJson(roff), resultsJson(on.run()));
}

TEST(BandwidthMode, FloorEightByteIdenticalWithStatsTracing)
{
    const auto &profile = WorkloadRegistry::byName("gcc");
    SystemConfig plain = smallConfig(ControllerKind::CopEr);
    SystemConfig traced = floorEightConfig(ControllerKind::CopEr);
    traced.traceStatsPath =
        ::testing::TempDir() + "bandwidth_mode_trace.jsonl";
    traced.traceStatsEpochInterval = 128;
    System a(profile, plain);
    System b(profile, traced);
    EXPECT_EQ(resultsJson(a.run()), resultsJson(b.run()))
        << "tracing + floor-8 mode must not perturb results";
}

TEST(BandwidthMode, DefaultFloorSavesBeatsWithoutHurtingIpc)
{
    // With the real floor, compressible fills/writebacks must actually
    // ship short — and cutting bus occupancy can only help timing.
    const auto &profile = WorkloadRegistry::byName("gcc");
    for (const ControllerKind kind :
         {ControllerKind::Cop4, ControllerKind::Cop8,
          ControllerKind::CopEr, ControllerKind::CopErNaive}) {
        System base(profile, smallConfig(kind));
        SystemConfig bw_cfg = smallConfig(kind);
        bw_cfg.bandwidthCompression = true; // default floor of 4
        System bw(profile, bw_cfg);
        const SystemResults rbase = base.run();
        const SystemResults rbw = bw.run();
        EXPECT_GT(rbw.dram.beatsSaved, 0u)
            << controllerKindName(kind) << ": no burst ever shortened";
        EXPECT_GE(rbw.ipc, rbase.ipc)
            << controllerKindName(kind)
            << ": shorter bursts must not cost IPC";
        EXPECT_LT(rbw.dram.busBusyCycles, rbase.dram.busBusyCycles)
            << controllerKindName(kind);
        // Protection semantics untouched: verifyData crosschecks every
        // fill, and no fault was injected, so nothing may be flagged.
        EXPECT_EQ(rbw.errors.detected, 0u);
        EXPECT_EQ(rbw.errors.silent, 0u);
    }
}

TEST(BandwidthMode, InertForControllersWithoutCompressor)
{
    // Unprotected / ECC DIMM / ECC region have no compressed image to
    // shorten: the mode runs but never records a sub-8 transfer.
    const auto &profile = WorkloadRegistry::byName("gcc");
    for (const ControllerKind kind :
         {ControllerKind::Unprotected, ControllerKind::EccDimm,
          ControllerKind::EccRegion}) {
        SystemConfig cfg = smallConfig(kind);
        cfg.bandwidthCompression = true; // default floor of 4
        System off(profile, smallConfig(kind));
        System on(profile, cfg);
        const SystemResults ron = on.run();
        EXPECT_EQ(ron.dram.beatsSaved, 0u) << controllerKindName(kind);
        EXPECT_EQ(resultsJson(off.run()), resultsJson(ron))
            << controllerKindName(kind);
    }
}

TEST(BandwidthMode, RejectsOutOfRangeBeatFloor)
{
    const auto &profile = WorkloadRegistry::byName("gcc");
    SystemConfig cfg = smallConfig(ControllerKind::Cop4);
    cfg.bandwidthCompression = true;
    cfg.bandwidthBeatFloor = 0;
    EXPECT_DEATH({ System sys(profile, cfg); }, "bandwidthBeatFloor");
    cfg.bandwidthBeatFloor = 9;
    EXPECT_DEATH({ System sys(profile, cfg); }, "bandwidthBeatFloor");
}

} // namespace
} // namespace cop
