/**
 * @file
 * Equivalence suite for the digest-based admission fast paths: for
 * every scheme, canCompressDigest(computeDigest(b), b, budget) and the
 * budget-threaded canCompress overrides must answer exactly what the
 * base class's compressedBits()-from-scratch rule answers, for random
 * blocks of every generator category and for crafted boundary blocks.
 * The scheme selection in CombinedCompressor (and hence every stored
 * DRAM image) rides on this equivalence.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "compress/bdi.hpp"
#include "compress/combined.hpp"
#include "compress/fpc.hpp"
#include "workloads/block_gen.hpp"

namespace cop {
namespace {

/** The base-class admission rule, computed the slow way. */
bool
slowCanCompress(const BlockCompressor &comp, const CacheBlock &block,
                unsigned budget)
{
    const int n = comp.compressedBits(block);
    return n >= 0 && static_cast<unsigned>(n) <= budget;
}

std::vector<CacheBlock>
testCorpus()
{
    std::vector<CacheBlock> blocks;
    Rng rng(77);
    BlockGenParams params;
    for (unsigned c = 0; c < kBlockCategories; ++c) {
        for (unsigned i = 0; i < 64; ++i) {
            blocks.push_back(generateBlock(static_cast<BlockCategory>(c),
                                           params, rng));
        }
    }
    // Crafted boundaries: all-zero, all-ones, single set bit, a block
    // whose high byte-bits are clean except one word (TXT edge), and
    // a near-uniform block with one deviant byte (RLE/BDI edge).
    CacheBlock zero{};
    blocks.push_back(zero);
    blocks.push_back(CacheBlock::filled(0xFF));
    CacheBlock onebit{};
    onebit.setByte(63, 0x80);
    blocks.push_back(onebit);
    CacheBlock text{};
    for (unsigned i = 0; i < kBlockBytes; ++i)
        text.setByte(i, static_cast<u8>(0x20 + i % 0x5F));
    blocks.push_back(text);
    CacheBlock texthi = text;
    texthi.setByte(37, 0xC3);
    blocks.push_back(texthi);
    CacheBlock runs{};
    for (unsigned i = 0; i < kBlockBytes; ++i)
        runs.setByte(i, i < 30 ? 0x00 : (i < 50 ? 0xFF : 0x42));
    blocks.push_back(runs);
    return blocks;
}

const unsigned kBudgets[] = {0,   100, 200, 300, 350, 400, 446,
                             460, 478, 500, 512, 560, 600};

TEST(Digest, CanCompressDigestMatchesSlowPathAllSchemes)
{
    std::vector<std::unique_ptr<BlockCompressor>> schemes;
    schemes.push_back(std::make_unique<MsbCompressor>(5, true));
    schemes.push_back(std::make_unique<MsbCompressor>(10, true));
    schemes.push_back(std::make_unique<MsbCompressor>(5, false));
    schemes.push_back(std::make_unique<RleCompressor>());
    schemes.push_back(std::make_unique<TxtCompressor>());
    schemes.push_back(std::make_unique<FpcCompressor>());
    schemes.push_back(std::make_unique<BdiCompressor>());

    const auto blocks = testCorpus();
    for (const auto &scheme : schemes) {
        for (const auto &block : blocks) {
            const BlockDigest digest = computeDigest(block);
            for (const unsigned budget : kBudgets) {
                const bool slow = slowCanCompress(*scheme, block, budget);
                ASSERT_EQ(scheme->canCompress(block, budget), slow)
                    << scheme->name() << " budget=" << budget;
                ASSERT_EQ(
                    scheme->canCompressDigest(digest, block, budget),
                    slow)
                    << scheme->name() << " budget=" << budget;
            }
        }
    }
}

TEST(Digest, ZeroByteMaskMatchesByteScan)
{
    Rng rng(78);
    for (int iter = 0; iter < 5000; ++iter) {
        u64 w = rng.next();
        // Bias toward bytes that are exactly 0x00 or 0xFF.
        for (unsigned b = 0; b < 8; ++b) {
            const unsigned roll = rng.below(4);
            if (roll == 0)
                w &= ~(0xFFULL << (8 * b));
            else if (roll == 1)
                w |= 0xFFULL << (8 * b);
        }
        unsigned expect = 0;
        for (unsigned b = 0; b < 8; ++b) {
            if (((w >> (8 * b)) & 0xFF) == 0)
                expect |= 1u << b;
        }
        ASSERT_EQ(zeroByteMask(w), expect) << "w=" << w;
    }
}

TEST(Digest, FieldsMatchDefinition)
{
    const auto blocks = testCorpus();
    for (const auto &block : blocks) {
        const BlockDigest d = computeDigest(block);
        u64 diff = 0, all = 0, zeros = 0, ones = 0;
        for (unsigned w = 0; w < 8; ++w) {
            const u64 v = block.word64(w);
            diff |= v ^ block.word64(0);
            all |= v;
            zeros |= static_cast<u64>(zeroByteMask(v)) << (8 * w);
            ones |= static_cast<u64>(zeroByteMask(~v)) << (8 * w);
        }
        ASSERT_EQ(d.diffMask, diff);
        ASSERT_EQ(d.orAll, all);
        ASSERT_EQ(d.zeroBytes, zeros);
        ASSERT_EQ(d.onesBytes, ones);
    }
}

TEST(Digest, CombinedTrialCounterCountsAtMostConfiguredSchemes)
{
    // The pre-classifier must never *add* trials: with the counter
    // threaded through, each block reports at most one trial per
    // configured scheme, and compressibility is unchanged.
    const CombinedCompressor comp(4);
    const auto blocks = testCorpus();
    for (const auto &block : blocks) {
        unsigned trials = 0;
        const bool yes = comp.compressible(block, &trials);
        ASSERT_LE(trials, comp.schemes().size());
        ASSERT_EQ(yes, comp.compressible(block));
    }
}

} // namespace
} // namespace cop
